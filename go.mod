module flowpulse

go 1.24
