#!/usr/bin/env bash
# Record a benchmark snapshot as BENCH_<date>.json at the repo root,
# seeding the performance trajectory across PRs. Each snapshot captures
# `go test -bench . -benchmem` in machine-readable form:
#
#   scripts/bench.sh                 # full suite (minutes)
#   scripts/bench.sh FabricForwarding|TrainingIteration
#
# The JSON is a small stable schema: {date, go, cpu, benchmarks:
# [{name, ns_per_op, bytes_per_op, allocs_per_op, extra}]}. Compare two
# snapshots with jq or feed them to benchstat-style tooling.
set -euo pipefail

cd "$(dirname "$0")/.."

pattern="${1:-.}"
date="$(date -u +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "${BENCHTIME:-1s}" . ./internal/trace ./internal/resilience ./internal/control ./internal/serve | tee "$raw"

awk -v date="$date" '
  /^goos:/ { goos = $2 }
  /^cpu:/  { sub(/^cpu: /, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 2; i <= NF; i++) {
      if ($(i) == "ns/op")     ns = $(i-1)
      if ($(i) == "B/op")      bytes = $(i-1)
      if ($(i) == "allocs/op") allocs = $(i-1)
      if ($(i) ~ /\/op$/ && $(i) != "ns/op" && $(i) != "B/op" && $(i) != "allocs/op")
        extra = $(i-1) " " $(i)
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"extra\": \"%s\"}", \
      name, (ns == "" ? "null" : ns), (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs), extra
  }
  END { printf "\n" }
' "$raw" > "${raw}.rows"

{
  printf '{\n  "date": "%s",\n  "go": "%s",\n  "cpu": "%s",\n  "benchmarks": [\n' \
    "$date" "$(go version | awk "{print \$3}")" "$(grep '^cpu:' "$raw" | head -1 | sed 's/^cpu: //')"
  cat "${raw}.rows"
  printf '  ]\n}\n'
} > "$out"
rm -f "${raw}.rows"

echo "wrote $out"
