package flowpulse

// Benchmark harness: one benchmark per paper table/figure (see
// DESIGN.md §3 for the experiment index) plus design-choice ablations
// and substrate micro-benchmarks. Benchmarks run scaled-down
// configurations so `go test -bench=.` completes in minutes on one
// core; the flowpulse-eval CLI runs the full-scale versions and
// EXPERIMENTS.md records their output.

import (
	"fmt"
	"testing"

	"flowpulse/internal/core"
	"flowpulse/internal/experiments"
	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/spray"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// BenchmarkFig2AnalyticalVsSim regenerates Figure 2: analytical
// per-port prediction vs simulated observation for a single flow.
func BenchmarkFig2AnalyticalVsSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(experiments.Fig2Config{
			Leaves: 16, Spines: 8, FlowBytes: 8 << 20, Iterations: 2, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxRelErr > 0.05 {
			b.Fatalf("prediction diverged: %v", res.MaxRelErr)
		}
	}
}

// BenchmarkFig3LearnedRebaseline regenerates Figure 3: the learned
// model replacing its baseline after a transient fault heals.
func BenchmarkFig3LearnedRebaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.Fig3Config{
			Leaves: 8, Spines: 4, BytesPerRank: 4 << 20,
			Iterations: 12, HealAfter: 5,
			Fault: core.LeafSpineLink{LeafOrd: 2, SpineOrd: 1},
			Seed:  uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.RebaselinedAtIter == 0 {
			b.Fatal("no rebaseline")
		}
	}
}

// BenchmarkFig4Localization regenerates Figure 4: local vs remote link
// attribution under all-to-all.
func BenchmarkFig4Localization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Fig4Config{
			Leaves: 8, Spines: 4, BytesPerRank: 16 << 20,
			Trials: 1, Iterations: 2, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Downstream.Local == 0 {
			b.Fatal("downstream case produced no local verdicts")
		}
	}
}

// BenchmarkFig5aROC regenerates Figure 5(a): the threshold ROC across
// drop rates.
func BenchmarkFig5aROC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig5aConfig{
			DropRates: []float64{0.008, 0.03},
			Trials:    1, CleanIters: 2, FaultIters: 2,
		}
		cfg.Scenario = core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Seed: uint64(i)}
		if _, err := experiments.Fig5a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bRadixSweep regenerates Figure 5(b): FPR/FNR across
// switch radixes at a fixed drop rate.
func BenchmarkFig5bRadixSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5b(experiments.Fig5bConfig{
			Radixes:      []int{8, 16},
			BytesPerRank: 4 << 20,
			Trials:       1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5cSizeSweep regenerates Figure 5(c): FPR/FNR across
// collective sizes.
func BenchmarkFig5cSizeSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5c(experiments.Fig5cConfig{
			Leaves: 8, Spines: 4,
			Sizes:     []int64{1 << 20, 8 << 20},
			DropRates: []float64{0.025},
			Trials:    1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreExistingFaults regenerates the §6 pre-existing-faults
// table: new-fault classification with known disconnections present.
func BenchmarkPreExistingFaults(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PreExisting(experiments.PreExistingConfig{
			Leaves: 8, Spines: 4, BytesPerRank: 8 << 20,
			Counts:    []int{0, 2},
			DropRates: []float64{0.03},
			Trials:    1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineDetection regenerates the abstract's headline: a
// 1.5% faulty link caught on the 32-leaf fat tree during
// Ring-AllReduce.
func BenchmarkHeadlineDetection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(experiments.HeadlineConfig{
			BytesPerRank: 16 << 20,
			CleanIters:   1, FaultIters: 2,
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkAblationSprayPolicy quantifies DESIGN.md decision 2: the
// clean-network noise floor under each load-balancing policy, which
// bounds the usable detection threshold.
func BenchmarkAblationSprayPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(experiments.AblationConfig{
			Policies: []spray.Kind{spray.LeastLoaded, spray.Random},
			Leaves:   8, Spines: 4, BytesPerRank: 4 << 20,
			CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPredictors compares the three §5.2 load models on
// the same faulty scenario (detection quality aside, this measures the
// cost of each pipeline, including the simulation model's reference
// run).
func BenchmarkAblationPredictors(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range []core.PredictorKind{core.AnalyticalModel, core.SimulationModel, core.LearnedModel} {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := experiments.Trial{
					Scenario:   core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Seed: uint64(i)},
					Kind:       kind,
					Fault:      core.LeafSpineLink{LeafOrd: 3, SpineOrd: 1},
					DropRate:   0.05,
					CleanIters: 3, FaultIters: 2,
				}
				if _, err := tr.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingIteration measures the simulator's cost for one
// full Ring-AllReduce iteration on the paper topology (the unit every
// experiment above is built from).
func BenchmarkTrainingIteration(b *testing.B) {
	b.ReportAllocs()
	cluster, err := New(Scenario{Leaves: 32, Spines: 16, BytesPerRank: 4 << 20, Iterations: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Warm one run to size the pools, then measure fresh clusters.
	cluster.Train(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(Scenario{Leaves: 32, Spines: 16, BytesPerRank: 4 << 20, Iterations: 1, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		c.Train(nil)
	}
}

// BenchmarkTrainingIterationParallel is BenchmarkTrainingIteration on
// the sharded engine across worker counts. Results are bit-identical
// at every shard count (DESIGN.md decision 12); what varies is
// wall-clock. On a single-core runner the shards>1 rows measure the
// synchronization overhead ceiling; on 8+ cores they show the parallel
// speedup recorded in README's Performance section.
func BenchmarkTrainingIterationParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			// Warm one run to size the pools, then measure fresh clusters.
			warm, err := New(Scenario{Leaves: 32, Spines: 16, BytesPerRank: 4 << 20, Iterations: 1, Seed: 1, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			warm.Train(nil)
			warm.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := New(Scenario{Leaves: 32, Spines: 16, BytesPerRank: 4 << 20, Iterations: 1, Seed: uint64(i), Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				c.Train(nil)
				c.Close()
			}
		})
	}
}

// BenchmarkEngineEvents measures the raw discrete-event scheduler.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	count := 0
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		count++
		if count < b.N {
			eng.After(10, tick)
		}
	}
	b.ResetTimer()
	eng.After(10, tick)
	eng.Run()
}

// BenchmarkFabricForwarding measures raw packet forwarding through the
// fat tree (no transport, no monitoring).
func BenchmarkFabricForwarding(b *testing.B) {
	b.ReportAllocs()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 8, Spines: 4})
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 1})
	delivered := 0
	net.SetReceiver(topology.HostID(3), func(sim.Time, *fabric.Packet) { delivered++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(fabric.SendSpec{Src: 0, Dst: 3, Size: 4096, Msg: uint64(i)})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
	b.ReportMetric(float64(delivered)/float64(b.N), "delivered/op")
}

// BenchmarkECNDCQCNTransport measures the transport-loop cost of the
// congestion machinery: "off" is the plain stack, "on" adds fabric CE
// marking at a sensitive knee plus DCQCN pacing reacting to the echoed
// marks. One op is one 64 KiB message in a 7→1 incast — the traffic
// shape that actually exercises marking — so the delta prices the whole
// ECN→ACK-echo→rate-limiter loop, not just the mark branch.
func BenchmarkECNDCQCNTransport(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 8, Spines: 4})
			if err != nil {
				b.Fatal(err)
			}
			eng := sim.NewEngine()
			cfg := fabric.Config{Topo: topo, Engine: eng, Seed: 1}
			if mode.on {
				cfg.ECN = fabric.ECNConfig{Enabled: true, KMinBytes: 16 << 10, KMaxBytes: 64 << 10}
			}
			net := fabric.MustNew(cfg)
			stack := transport.NewStack(net, transport.Config{DCQCN: transport.DCQCNConfig{Enabled: mode.on}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stack.Send(&transport.Message{
					Src:   topology.HostID(1 + i%7),
					Dst:   0,
					Bytes: 64 << 10,
				})
				if i%64 == 63 {
					eng.Run()
				}
			}
			eng.Run()
		})
	}
}

// BenchmarkSharedTapMultiJob measures the per-packet dataplane cost of
// monitoring N concurrent jobs: the shared plane's ONE demuxing tap
// per switch versus N job-filtered taps each inspecting every packet
// (the pre-plane alternative). One op is one ingress packet through
// the full tap stack, so the shared tap's cost must stay flat as N
// grows — and allocation-free in steady state (the gate lives in
// internal/telemetry), which is what lets multi-job monitoring ride
// the zero-allocation forwarding hot path.
func BenchmarkSharedTapMultiJob(b *testing.B) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 8, Spines: 4})
	if err != nil {
		b.Fatal(err)
	}
	leaf := topo.Leaves()[0]
	src := topo.HostsOf(topo.Leaves()[1])[0]
	hostPorts := len(topo.HostsOf(leaf))
	uplinks := len(topo.Switch(leaf).Ports) - hostPorts
	for _, n := range []int{1, 2, 4} {
		pkts := make([]*fabric.Packet, n)
		for j := range pkts {
			pkts[j] = &fabric.Packet{
				Src: src, Size: 4096, Kind: fabric.Data,
				Tag: fabric.FlowTag{Sentinel: true, Job: uint16(j + 1), Iter: 1},
			}
		}
		warm := func(m *telemetry.LeafMonitor) {
			for i, p := range pkts {
				m.OnPacket(0, hostPorts+i%uplinks, p)
			}
		}
		// Jobs interleave in bursts of 8, the shape collective traffic
		// actually has on a shared uplink (and what the demux's
		// current-window cache is designed for); strict per-packet
		// alternation would instead measure the map-lookup slow path.
		b.Run(fmt.Sprintf("shared/jobs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mon := telemetry.NewLeafMonitor(topo, leaf, telemetry.JobAny, func(*telemetry.Window) {})
			warm(mon)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.OnPacket(0, hostPorts+i%uplinks, pkts[i/8%n])
			}
		})
		b.Run(fmt.Sprintf("filtered/jobs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mons := make([]*telemetry.LeafMonitor, n)
			for j := range mons {
				mons[j] = telemetry.NewLeafMonitor(topo, leaf, j+1, func(*telemetry.Window) {})
				warm(mons[j])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, m := range mons {
					m.OnPacket(0, hostPorts+i%uplinks, pkts[i/8%n])
				}
			}
		})
	}
}

// BenchmarkMonitorOverhead measures the telemetry + detection pipeline
// cost per iteration relative to an unmonitored run — the paper's
// "low-overhead" claim, in simulator terms.
func BenchmarkMonitorOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, monitored bool) {
		for i := 0; i < b.N; i++ {
			c, err := New(Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Iterations: 2, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if monitored {
				if _, err := c.Monitor(MonitorConfig{}); err != nil {
					b.Fatal(err)
				}
			}
			c.Train(nil)
		}
	}
	b.Run("bare", func(b *testing.B) { b.ReportAllocs(); run(b, false) })
	b.Run("monitored", func(b *testing.B) { b.ReportAllocs(); run(b, true) })
}

// BenchmarkFaultTypes regenerates the §7 fault-type table: Bernoulli,
// black-hole, Gilbert-Elliott, and bit-error faults all detected via
// their drop signature.
func BenchmarkFaultTypes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FaultTypes(experiments.FaultTypesConfig{
			Leaves: 8, Spines: 4, BytesPerRank: 8 << 20,
			Trials: 1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJitterSweep regenerates the §7 jitter-sensitivity table.
func BenchmarkJitterSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Jitter(experiments.JitterConfig{
			Leaves: 8, Spines: 4, BytesPerRank: 8 << 20,
			JitterMaxes: []sim.Duration{0, 10 * sim.Microsecond},
			Trials:      1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrunkFault regenerates the §7 parallel-links table.
func BenchmarkTrunkFault(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Trunks(experiments.TrunkConfig{
			Leaves: 8, Spines: 4, Trunk: 2, BytesPerRank: 8 << 20,
			Trials: 1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClos3DualLevel regenerates the §7 three-level-Clos
// experiment: dual-level monitoring catching spine-leaf and core-spine
// faults.
func BenchmarkClos3DualLevel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Clos3(experiments.Clos3Config{
			Pods: 2, LeavesPerPod: 4, SpinesPerPod: 2, CoresPerGroup: 2,
			BytesPerRank: 8 << 20,
			Iterations:   8, InjectAt: 4,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockingNetwork regenerates the §7 blocking-network
// experiment: oversubscription plus saturating background, with the
// prioritized collective still cleanly measurable.
func BenchmarkBlockingNetwork(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Blocking(experiments.BlockingConfig{
			Leaves: 8, Spines: 4, HostsPerLeaf: 2, BytesPerRank: 8 << 20,
			Trials: 1, CleanIters: 2, FaultIters: 2,
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
