package flowpulse_test

import (
	"fmt"

	"flowpulse"
)

// Example demonstrates the end-to-end flow: build the paper's cluster
// (scaled down), deploy FlowPulse, silently break a link mid-training,
// and read the detections.
func Example() {
	cluster, err := flowpulse.New(flowpulse.Scenario{
		Leaves:       8,
		Spines:       4,
		BytesPerRank: 4 << 20,
		Iterations:   4,
		Seed:         42,
	})
	if err != nil {
		panic(err)
	}
	monitor, err := cluster.Monitor(flowpulse.MonitorConfig{})
	if err != nil {
		panic(err)
	}

	cluster.Train(func(_ flowpulse.Duration, iter uint32) {
		if iter == 2 {
			cluster.BreakLink(flowpulse.Link{LeafOrd: 3, SpineOrd: 1}, 0.05)
		}
	})

	deficits := 0
	for _, e := range monitor.Events() {
		if e.Alert.Deviation < 0 && e.Alert.LeafOrdinal == 3 && e.Alert.Uplink == 1 {
			deficits++
		}
	}
	fmt.Printf("windows measured: %d\n", monitor.Windows())
	fmt.Printf("faulty port flagged in %d of 2 fault iterations\n", deficits)
	// Output:
	// windows measured: 32
	// faulty port flagged in 2 of 2 fault iterations
}
