// Command flowpulse-eval regenerates the paper's evaluation (§6):
// every figure and table, printed as the rows/series the paper
// reports.
//
// Usage:
//
//	flowpulse-eval                  # run everything at default scale
//	flowpulse-eval -exp fig5a       # one experiment
//	flowpulse-eval -exp headline -size 64 -drop 0.015
//	flowpulse-eval -quick           # scaled-down smoke run
//
// Experiments: fig2, fig3, fig4, fig5a, fig5b, fig5c, preexisting,
// headline, faulttypes, jitter, trunks, clos3, blocking, remediate,
// resilience, paralleljobs, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"flowpulse/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (fig2|fig3|fig4|fig5a|fig5b|fig5c|preexisting|headline|faulttypes|jitter|trunks|clos3|blocking|remediate|resilience|paralleljobs|ablation|all)")
		quick  = flag.Bool("quick", false, "scaled-down configuration (smaller fabric and collectives)")
		sizeMB = flag.Int64("size", 0, "override collective size per rank in MiB")
		drop   = flag.Float64("drop", 0, "override injected drop rate (headline)")
		trials = flag.Int("trials", 0, "override trials per configuration")
		seed   = flag.Uint64("seed", 1, "root random seed")
		csvDir = flag.String("csv", "", "also write plottable results as CSV files into this directory")
		trcDir = flag.String("trace-dir", "", "record trace-capable experiments (fig5a) as .fpt traces into this directory")
		shards = flag.Int("shards", runtime.GOMAXPROCS(0), "engine worker shards for sharded experiments (fig5a, fig5b); results are identical for every value >= 1 (0 = classic single-threaded engine, byte-compatible with older releases)")
		cpu    = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		mem    = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()

	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		defer func() {
			f, err := os.Create(*mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	// The experiment registry lives in internal/experiments so the
	// golden-file regression test drives the exact same configurations.
	if *trcDir != "" {
		if err := os.MkdirAll(*trcDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "trace-dir: %v\n", err)
			os.Exit(1)
		}
	}
	runs := experiments.EvalExperiments(experiments.EvalOverrides{
		Quick: *quick, SizeMB: *sizeMB, Drop: *drop, Trials: *trials, Seed: *seed,
		TraceDir: *trcDir, Shards: *shards,
	})

	var selected []string
	if *exp == "all" {
		selected = experiments.EvalOrder
	} else {
		if _, ok := runs[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s, all\n", *exp, strings.Join(experiments.EvalOrder, ", "))
			os.Exit(2)
		}
		selected = []string{*exp}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(res.String())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if c, ok := res.(interface{ CSV() string }); ok {
				path := filepath.Join(*csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
}
