// Command flowpulse-eval regenerates the paper's evaluation (§6):
// every figure and table, printed as the rows/series the paper
// reports.
//
// Usage:
//
//	flowpulse-eval                  # run everything at default scale
//	flowpulse-eval -exp fig5a       # one experiment
//	flowpulse-eval -exp headline -size 64 -drop 0.015
//	flowpulse-eval -quick           # scaled-down smoke run
//
// Experiments: fig2, fig3, fig4, fig5a, fig5b, fig5c, preexisting,
// headline, faulttypes, jitter, trunks, clos3, blocking, remediate,
// ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"flowpulse/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (fig2|fig3|fig4|fig5a|fig5b|fig5c|preexisting|headline|faulttypes|jitter|trunks|clos3|blocking|remediate|ablation|all)")
		quick  = flag.Bool("quick", false, "scaled-down configuration (smaller fabric and collectives)")
		sizeMB = flag.Int64("size", 0, "override collective size per rank in MiB")
		drop   = flag.Float64("drop", 0, "override injected drop rate (headline)")
		trials = flag.Int("trials", 0, "override trials per configuration")
		seed   = flag.Uint64("seed", 1, "root random seed")
		csvDir = flag.String("csv", "", "also write plottable results as CSV files into this directory")
		cpu    = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		mem    = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()

	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		defer func() {
			f, err := os.Create(*mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	runs := map[string]func() (fmt.Stringer, error){
		"fig2": func() (fmt.Stringer, error) {
			cfg := experiments.Fig2Config{Seed: *seed}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.FlowBytes = 8, 4, 4<<20
			}
			if *sizeMB > 0 {
				cfg.FlowBytes = *sizeMB << 20
			}
			return experiments.Fig2(cfg)
		},
		"fig3": func() (fmt.Stringer, error) {
			cfg := experiments.Fig3Config{Seed: *seed}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank = 8, 4, 4<<20
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Fig3(cfg)
		},
		"fig4": func() (fmt.Stringer, error) {
			cfg := experiments.Fig4Config{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 16<<20, 1
			}
			return experiments.Fig4(cfg)
		},
		"fig5a": func() (fmt.Stringer, error) {
			cfg := experiments.Fig5aConfig{Trials: *trials}
			cfg.Scenario.Seed = *seed
			if *quick {
				cfg.Scenario.Leaves, cfg.Scenario.Spines = 8, 4
				cfg.Scenario.BytesPerRank = 4 << 20
				cfg.Trials = 1
			}
			if *sizeMB > 0 {
				cfg.Scenario.BytesPerRank = *sizeMB << 20
			}
			return experiments.Fig5a(cfg)
		},
		"fig5b": func() (fmt.Stringer, error) {
			cfg := experiments.Fig5bConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Radixes = []int{8, 16}
				cfg.BytesPerRank = 4 << 20
				cfg.Trials = 1
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Fig5b(cfg)
		},
		"fig5c": func() (fmt.Stringer, error) {
			cfg := experiments.Fig5cConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines = 8, 4
				cfg.Sizes = []int64{1 << 20, 8 << 20}
				cfg.Trials = 1
			}
			return experiments.Fig5c(cfg)
		},
		"preexisting": func() (fmt.Stringer, error) {
			cfg := experiments.PreExistingConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank = 8, 4, 8<<20
				cfg.Counts = []int{0, 2, 4}
				cfg.Trials = 1
			}
			return experiments.PreExisting(cfg)
		},
		"headline": func() (fmt.Stringer, error) {
			cfg := experiments.HeadlineConfig{Seed: *seed, DropRate: *drop}
			if *quick {
				cfg.BytesPerRank = 16 << 20
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Headline(cfg)
		},
		"faulttypes": func() (fmt.Stringer, error) {
			cfg := experiments.FaultTypesConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.FaultTypes(cfg)
		},
		"jitter": func() (fmt.Stringer, error) {
			cfg := experiments.JitterConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Jitter(cfg)
		},
		"trunks": func() (fmt.Stringer, error) {
			cfg := experiments.TrunkConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Trunks(cfg)
		},
		"clos3": func() (fmt.Stringer, error) {
			cfg := experiments.Clos3Config{Seed: *seed}
			if *quick {
				cfg.Pods, cfg.LeavesPerPod, cfg.SpinesPerPod, cfg.CoresPerGroup = 2, 4, 2, 2
				cfg.Iterations, cfg.InjectAt = 8, 4
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Clos3(cfg)
		},
		"blocking": func() (fmt.Stringer, error) {
			cfg := experiments.BlockingConfig{Seed: *seed, Trials: *trials}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Blocking(cfg)
		},
		"remediate": func() (fmt.Stringer, error) {
			// Already small-scale (8×4): -quick needs no extra scaling.
			cfg := experiments.RemediationConfig{Seed: *seed, DropRate: *drop}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Remediation(cfg)
		},
		"ablation": func() (fmt.Stringer, error) {
			cfg := experiments.AblationConfig{Seed: *seed}
			if *quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank = 8, 4, 4<<20
			}
			if *sizeMB > 0 {
				cfg.BytesPerRank = *sizeMB << 20
			}
			return experiments.Ablation(cfg)
		},
	}
	order := []string{"fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c", "preexisting", "headline", "faulttypes", "jitter", "trunks", "clos3", "blocking", "remediate", "ablation"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := runs[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s, all\n", *exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		selected = []string{*exp}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(res.String())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if c, ok := res.(interface{ CSV() string }); ok {
				path := filepath.Join(*csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
}
