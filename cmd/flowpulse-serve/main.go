// Command flowpulse-serve runs FlowPulse detection as a standalone
// streaming service: producers (flowpulse-sim -stream, flowpulse-trace
// cat -stream, or anything speaking the one-line FPS1 preamble + raw
// .fpt bytes) connect over TCP or HTTP chunked POST, their frames are
// demuxed onto a sharded allocation-free ingestion path, and the
// detect → localize stack runs server-side per job. Results surface
// operationally:
//
//	GET  /metrics   Prometheus text (windows/sec, shard depth, deviation, alerts)
//	GET  /alerts    streaming NDJSON alert feed
//	GET  /healthz   200 while serving, 503 once draining
//	POST /ingest    HTTP producer endpoint (?mode=&label=)
//
// Usage:
//
//	flowpulse-serve                                  # TCP :9465, HTTP :9466
//	flowpulse-serve -listen :7000 -http :7001 -token hunter2
//	flowpulse-serve -rule 'min_dev=0.05,sink=log' \
//	                -rule 'job=2,sink=file,path=/var/log/fp-job2.ndjson'
//	flowpulse-serve -shards 8 -ring 512
//
// SIGTERM/SIGINT triggers a graceful drain: listeners close, in-flight
// sessions get -drain-timeout to finish, every queued record is
// flushed, and each session's parity verdict is logged.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flowpulse/internal/serve"
)

// ruleFlags collects repeatable -rule occurrences.
type ruleFlags []serve.Rule

func (r *ruleFlags) String() string { return fmt.Sprintf("%d rule(s)", len(*r)) }

func (r *ruleFlags) Set(s string) error {
	rule, err := serve.ParseRule(s)
	if err != nil {
		return err
	}
	*r = append(*r, rule)
	return nil
}

func main() {
	var rules ruleFlags
	var (
		listen   = flag.String("listen", ":9465", "TCP raw-stream listener address (empty: disabled)")
		httpAddr = flag.String("http", ":9466", "HTTP listener address for /metrics, /alerts, /healthz, /ingest (empty: disabled)")
		token    = flag.String("token", "", "require this producer token (TCP preamble token=, HTTP bearer)")
		shards   = flag.Int("shards", 4, "ingestion shard goroutines")
		ring     = flag.Int("ring", 256, "per-bucket SPSC ring capacity (full ring stalls its producer)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight sessions on shutdown")
	)
	flag.Var(&rules, "rule", "alert routing rule, k=v CSV (min_dev=, job=, kind=, actions=, sink=stream|log|file, path=, name=); repeatable")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	srv, err := serve.New(serve.Config{
		Token:    *token,
		Shards:   *shards,
		RingSize: *ring,
		Rules:    rules,
		Logf:     logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *listen == "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "flowpulse-serve: both -listen and -http disabled, nothing to do")
		os.Exit(1)
	}

	var httpSrv *http.Server
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Printf("serve: TCP producers on %s", l.Addr())
		go srv.ServeTCP(l)
	}
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Printf("serve: HTTP on %s (/metrics /alerts /healthz /ingest)", hl.Addr())
		httpSrv = &http.Server{Handler: srv.HTTPHandler()}
		go httpSrv.Serve(hl)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	logger.Printf("serve: %v — draining (timeout %v)", got, *drainTO)
	clean := srv.Drain(*drainTO)
	if httpSrv != nil {
		httpSrv.Close()
	}
	if !clean {
		logger.Printf("serve: drain deadline hit, streams were cut off")
		os.Exit(1)
	}
}
