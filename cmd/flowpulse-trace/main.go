// Command flowpulse-trace records and analyzes .fpt traces: versioned
// binary recordings of a monitored run (measurement windows with their
// live predictions, detections, remediation actions, probe rounds, and
// the injected fault schedule as ground truth).
//
// A recording decouples simulation from analysis: `replay` re-runs the
// detect → localize → remediate stack offline — bit-identically, or
// under what-if overrides — and `sweep` reproduces a full ROC curve
// from one recording without re-simulating anything.
//
// Usage:
//
//	flowpulse-trace record -o run.fpt -drop 0.02          # simulate + record
//	flowpulse-trace replay run.fpt                        # verify bit-identical replay
//	flowpulse-trace replay -threshold 0.02 run.fpt        # what-if: different threshold
//	flowpulse-trace replay -predictor learned run.fpt     # what-if: learned model
//	flowpulse-trace sweep run.fpt                         # ROC across thresholds
//	flowpulse-trace sweep -at 0.01 a.fpt b.fpt            # one operating point, many traces
//	flowpulse-trace stat run.fpt                          # header + record counts
//	flowpulse-trace cat run.fpt                           # dump every record
//	flowpulse-trace cat -stream localhost:9465 run.fpt    # replay into flowpulse-serve
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"flowpulse/internal/core"
	"flowpulse/internal/experiments"
	"flowpulse/internal/metrics"
	"flowpulse/internal/serve"
	"flowpulse/internal/sim"
	"flowpulse/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: flowpulse-trace <command> [flags] [trace.fpt ...]

commands:
  record   simulate one faulted training run and record it
  replay   re-run a recording through detect -> localize -> remediate offline
  sweep    compute ROC points across thresholds from recording(s)
  stat     print header, record counts, and fingerprint
  cat      dump every record, or -stream it into a flowpulse-serve instance

Run 'flowpulse-trace <command> -h' for command flags.`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "record":
		return cmdRecord(rest, stdout, stderr)
	case "replay":
		return cmdReplay(rest, stdout, stderr)
	case "sweep":
		return cmdSweep(rest, stdout, stderr)
	case "stat":
		return cmdStat(rest, stdout, stderr)
	case "cat":
		return cmdCat(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, usage)
		return 0
	}
	fmt.Fprintf(stderr, "flowpulse-trace: unknown command %q\n%s\n", cmd, usage)
	return 2
}

// ratesLine is the shared operating-point format: `record` prints the
// online rates and `sweep -at` the offline ones, so equality of the two
// lines is a string-comparable replay check.
func ratesLine(threshold float64, samples []metrics.Sample) string {
	fpr, fnr := metrics.RatesAt(samples, threshold)
	return fmt.Sprintf("@ %.2f%%: FPR %.2f%% / FNR %.2f%%", 100*threshold, 100*fpr, 100*fnr)
}

func cmdRecord(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("o", "trace.fpt", "output trace file")
		leaves     = fs.Int("leaves", 8, "leaf switches")
		spines     = fs.Int("spines", 4, "spine switches")
		sizeMB     = fs.Int64("size", 4, "collective size per rank (MiB)")
		clean      = fs.Int("clean", 3, "fault-free iterations before injection")
		faultIters = fs.Int("fault-iters", 5, "iterations with the fault active")
		drop       = fs.Float64("drop", 0.02, "silent drop rate (0 = clean run)")
		faultLeaf  = fs.Int("fault-leaf", 2, "faulty link: leaf ordinal")
		faultSpine = fs.Int("fault-spine", 1, "faulty link: spine ordinal")
		upstream   = fs.Bool("upstream", false, "fault the leaf-to-spine direction instead")
		remediated = fs.Bool("remediate", false, "attach the closed-loop remediator")
		predictor  = fs.String("predictor", "analytical", "load model (analytical|simulation|learned)")
		noiseUS    = fs.Int64("background-us", 4, "background-traffic interval (µs, 0 = none)")
		at         = fs.Float64("at", 0.01, "report the online operating point at this threshold")
		label      = fs.String("label", "flowpulse-trace record", "trace header label")
		seed       = fs.Uint64("seed", 1, "random seed")
		shards     = fs.Int("shards", 0, "engine worker shards (0 = classic single-threaded engine, byte-compatible with existing recordings; traces are identical for every value >= 1)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tr := experiments.Trial{
		Scenario: core.Scenario{
			Leaves: *leaves, Spines: *spines,
			BytesPerRank: *sizeMB << 20,
			Background:   sim.Duration(*noiseUS) * sim.Microsecond,
			Seed:         *seed,
			Shards:       *shards,
		},
		Kind:       core.PredictorKind(*predictor),
		Fault:      core.LeafSpineLink{LeafOrd: *faultLeaf, SpineOrd: *faultSpine},
		DropRate:   *drop,
		Upstream:   *upstream,
		CleanIters: *clean,
		FaultIters: *faultIters,
		Remediate:  *remediated,
		TracePath:  *out,
		TraceLabel: *label,
	}
	res, err := tr.Run()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "recorded %s: %d iterations (%d clean + %d faulty), %d event(s)\n",
		*out, tr.CleanIters+tr.FaultIters, tr.CleanIters, tr.FaultIters, len(res.Events))
	fmt.Fprintln(stdout, ratesLine(*at, res.Samples))
	return 0
}

func openTrace(path string, stderr io.Writer) (*os.File, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, false
	}
	return f, true
}

func cmdReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0, "override the detection threshold (0 = recorded)")
		predictor = fs.String("predictor", "", "override the load model: recorded|learned")
		first     = fs.Uint("first", 0, "replay iterations >= this (0 = from start)")
		last      = fs.Uint("last", 0, "replay iterations <= this (0 = to end)")
		verbose   = fs.Bool("v", false, "print every offline event and action")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: flowpulse-trace replay [flags] <trace.fpt>")
		return 2
	}
	f, ok := openTrace(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	defer f.Close()
	opts := trace.ReplayOptions{
		Threshold: *threshold,
		Predictor: *predictor,
		FirstIter: uint32(*first),
		LastIter:  uint32(*last),
	}
	rr, err := trace.Replay(f, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	whatIf := *threshold != 0 || *predictor == "learned" || *first != 0 || *last != 0

	fmt.Fprintf(stdout, "replayed %d window(s) through detect -> localize -> remediate\n", rr.Windows)
	fmt.Fprintf(stdout, "offline: %d event(s), %d action(s); recorded online: %d event(s), %d action(s)\n",
		len(rr.Events), len(rr.Actions), len(rr.RecordedEvents), len(rr.RecordedActions))
	if *verbose {
		for _, e := range rr.Events {
			fmt.Fprintf(stdout, "  event  %v\n", e.Alert)
			if e.Alert.Deviation < 0 {
				fmt.Fprintf(stdout, "         %v\n", e.Verdict)
			}
		}
		for _, a := range rr.Actions {
			fmt.Fprintf(stdout, "  action %v\n", a)
		}
	}
	switch {
	case whatIf:
		fmt.Fprintln(stdout, "fingerprint: what-if replay (overrides active, no equality expected)")
	case rr.Trailer == nil:
		fmt.Fprintln(stdout, "fingerprint: recording truncated (no trailer); cannot verify")
		return 1
	case rr.Matches():
		fmt.Fprintf(stdout, "fingerprint: match (%#016x) — offline replay is bit-identical to the online run\n", rr.Fingerprint)
	default:
		fmt.Fprintf(stdout, "fingerprint: MISMATCH (offline %#016x, online %#016x)\n",
			rr.Fingerprint, rr.Trailer.Fingerprint)
		return 1
	}
	return 0
}

func parseThresholds(s string) ([]float64, error) {
	if s == "" {
		return experiments.DefaultThresholds(), nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ths = fs.String("thresholds", "", "comma-separated thresholds (default: the paper's 0.1%..5% sweep)")
		at  = fs.Float64("at", 0, "also report the operating point at this threshold")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: flowpulse-trace sweep [flags] <trace.fpt ...>")
		return 2
	}
	thresholds, err := parseThresholds(*ths)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var samples []metrics.Sample
	for _, path := range fs.Args() {
		f, ok := openTrace(path, stderr)
		if !ok {
			return 1
		}
		rr, err := trace.Replay(f, trace.ReplayOptions{})
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			return 1
		}
		samples = append(samples, rr.Samples()...)
	}
	fmt.Fprintf(stdout, "%d sample(s) from %d recording(s)\n", len(samples), fs.NArg())
	fmt.Fprintf(stdout, "%-10s %8s %8s\n", "threshold", "FPR", "FNR")
	for _, p := range metrics.ROC(samples, thresholds) {
		fmt.Fprintf(stdout, "%9.2f%% %7.2f%% %7.2f%%\n", 100*p.Threshold, 100*p.FPR, 100*p.FNR)
	}
	if *at > 0 {
		fmt.Fprintln(stdout, ratesLine(*at, samples))
	}
	return 0
}

func cmdStat(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: flowpulse-trace stat <trace.fpt>")
		return 2
	}
	f, ok := openTrace(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	hdr := rd.Header()
	fmt.Fprintf(stdout, "trace:       v%d", hdr.FormatVersion)
	if hdr.Label != "" {
		fmt.Fprintf(stdout, " (label %q)", hdr.Label)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "topology:    %dx%d fat tree, %d host(s)/leaf, trunk %d, %g Gb/s\n",
		hdr.Leaves, hdr.Spines, hdr.HostsPerLeaf, hdr.Trunk, float64(hdr.LinkRateBPS)/1e9)
	plane := "single-job"
	if hdr.Shared {
		plane = fmt.Sprintf("shared (%d jobs)", len(hdr.Jobs))
	}
	fmt.Fprintf(stdout, "plane:       %s\n", plane)
	for _, j := range hdr.Jobs {
		fmt.Fprintf(stdout, "job %-5d    predictor=%s threshold=%.2f%% min-predicted=%g agg-symmetry=%t\n",
			j.Job, j.Predictor, 100*j.Threshold, j.MinPredicted, j.AggregateSymmetry)
	}
	if hdr.Remediate != nil {
		fmt.Fprintf(stdout, "remediation: on (K=%d, M=%d, probes=%d)\n",
			hdr.Remediate.ConfirmWindows, hdr.Remediate.CleanProbes, hdr.Remediate.ProbePackets)
	} else {
		fmt.Fprintln(stdout, "remediation: off")
	}

	var t trace.Trailer
	var trailer *trace.Trailer
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		switch rec.Kind {
		case trace.KindWindow:
			t.Windows++
		case trace.KindEvent:
			t.Events++
		case trace.KindAction:
			t.Actions++
		case trace.KindProbe:
			t.ProbeRounds++
		case trace.KindFault:
			t.Faults++
		case trace.KindTrailer:
			trailer = rec.Trailer
		}
	}
	fmt.Fprintf(stdout, "records:     windows=%d events=%d actions=%d probe-rounds=%d faults=%d\n",
		t.Windows, t.Events, t.Actions, t.ProbeRounds, t.Faults)
	if trailer == nil {
		fmt.Fprintln(stdout, "trailer:     MISSING (recording truncated)")
		return 1
	}
	if t.Windows != trailer.Windows || t.Events != trailer.Events || t.Actions != trailer.Actions ||
		t.ProbeRounds != trailer.ProbeRounds || t.Faults != trailer.Faults {
		fmt.Fprintf(stdout, "trailer:     COUNT MISMATCH (trailer says windows=%d events=%d actions=%d probe-rounds=%d faults=%d)\n",
			trailer.Windows, trailer.Events, trailer.Actions, trailer.ProbeRounds, trailer.Faults)
		return 1
	}
	fmt.Fprintln(stdout, "trailer:     present, counts match")
	fmt.Fprintf(stdout, "fingerprint: %#016x\n", trailer.Fingerprint)
	fmt.Fprintf(stdout, "end time:    %v\n", sim.Duration(trailer.EndTime))
	return 0
}

// catStream turns a recording into a producer: pipe the raw .fpt bytes
// to a flowpulse-serve instance and print the session status it
// returns — the streamed/offline parity check from the command line.
func catStream(f *os.File, path, addr, token, mode, label string, stdout, stderr io.Writer) int {
	if label == "" {
		label = filepath.Base(path)
	}
	p, err := serve.DialProducer(addr, token, mode, label, 5*time.Second)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if _, err := io.Copy(p, f); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	st, err := p.Close()
	if err != nil {
		fmt.Fprintln(stderr, err)
		if st != nil && st.Error != "" {
			fmt.Fprintf(stderr, "server: %s\n", st.Error)
		}
		return 1
	}
	fmt.Fprintf(stdout, "streamed %s to %s\n", path, addr)
	fmt.Fprintf(stdout, "session=%s mode=%s windows=%d events=%d actions=%d\n",
		st.Session, st.Mode, st.Windows, st.Events, st.Actions)
	fmt.Fprintf(stdout, "fingerprint: %#016x (trailer %#016x) parity=%s\n",
		st.Fingerprint, st.TrailerFingerprint, st.Parity)
	if st.Parity == "mismatch" {
		return 1
	}
	return 0
}

func cmdCat(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		stream = fs.String("stream", "", "instead of dumping, replay the recording into a flowpulse-serve instance at this host:port and print its status")
		token  = fs.String("token", "", "producer token for -stream")
		mode   = fs.String("mode", "", "serve ingestion mode for -stream (seq|fanout; default seq)")
		label  = fs.String("label", "", "session label for -stream (default: the file name)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: flowpulse-trace cat [-stream host:port] <trace.fpt>")
		return 2
	}
	f, ok := openTrace(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	defer f.Close()
	if *stream != "" {
		return catStream(f, fs.Arg(0), *stream, *token, *mode, *label, stdout, stderr)
	}
	rd, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return 0
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		switch rec.Kind {
		case trace.KindWindow:
			w := rec.Window
			ready := ""
			if !w.Ready {
				ready = " (predictor warming up)"
			}
			fmt.Fprintf(stdout, "window  job=%d leaf=%d iter=%d ports=%d senders=%d packets=%d closed=%v%s\n",
				w.Job, w.LeafOrd, w.Iter, len(w.PortBytes), len(w.SenderBytes), w.Packets,
				sim.Duration(w.ClosedAt), ready)
		case trace.KindEvent:
			fmt.Fprintf(stdout, "event   %v | %v\n", rec.Event.Alert, rec.Event.Verdict)
		case trace.KindAction:
			fmt.Fprintf(stdout, "action  %v\n", *rec.Action)
		case trace.KindProbe:
			p := rec.Probe
			fmt.Fprintf(stdout, "probe   link=%d sent=%d lost=%d at=%v\n", p.Link, p.Sent, p.Lost, sim.Duration(p.At))
		case trace.KindFault:
			ft := rec.Fault
			verb := "inject"
			if ft.Clear {
				verb = "clear"
			}
			fmt.Fprintf(stdout, "fault   %s %s leaf=%d spine=%d trunk=%d upstream=%t rate=%.4f onset-iter=%d at=%v\n",
				verb, ft.Kind, ft.LeafOrd, ft.SpineOrd, ft.Trunk, ft.Upstream, ft.Rate, ft.OnsetIter, sim.Duration(ft.At))
		case trace.KindTrailer:
			t := rec.Trailer
			fmt.Fprintf(stdout, "trailer windows=%d events=%d actions=%d probe-rounds=%d faults=%d fingerprint=%#016x end=%v\n",
				t.Windows, t.Events, t.Actions, t.ProbeRounds, t.Faults, t.Fingerprint, sim.Duration(t.EndTime))
		}
	}
}
