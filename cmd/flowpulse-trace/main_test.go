package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "re-record testdata/quick.fpt and rewrite testdata/stat.golden")

// fixture is a small committed recording: a 6x3 fabric, 2 clean + 8
// faulty iterations at 5% drop with remediation on, so the trace
// holds every record kind (windows, events, actions, probe rounds,
// fault, trailer).
var fixture = filepath.Join("testdata", "quick.fpt")

// TestStatGolden pins the exact text `flowpulse-trace stat` prints for
// the committed fixture. Recording is deterministic at a fixed seed,
// so any diff is a real format or output change: either a regression,
// or an intentional change to be blessed with
//
//	go test ./cmd/flowpulse-trace -run TestStatGolden -update
//
// (-update also re-records the fixture itself, which is the upgrade
// path when the format version bumps.)
func TestStatGolden(t *testing.T) {
	golden := filepath.Join("testdata", "stat.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		code := run([]string{"record", "-o", fixture,
			"-leaves", "6", "-spines", "3", "-size", "2",
			"-clean", "2", "-fault-iters", "8", "-drop", "0.05",
			"-remediate", "-label", "stat-golden fixture", "-seed", "7",
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("record exited %d: %s", code, errb.String())
		}
	}

	var out, errb bytes.Buffer
	if code := run([]string{"stat", fixture}, &out, &errb); code != 0 {
		t.Fatalf("stat exited %d: %s%s", code, out.String(), errb.String())
	}
	got := out.String()

	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("stat output drifted from %s:\n--- want\n%s--- got\n%s(bless intentional changes with -update)",
			golden, want, got)
	}
}

// TestReplayFixture proves the committed fixture still replays
// bit-identically — the compatibility guarantee a reader owes every
// trace an older writer produced.
func TestReplayFixture(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"replay", fixture}, &out, &errb); code != 0 {
		t.Fatalf("replay exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("fingerprint: match")) {
		t.Fatalf("replay did not report a fingerprint match:\n%s", out.String())
	}
}
