// Command flowpulse-sim runs one simulated training job with FlowPulse
// monitoring and prints a human-readable incident report: the
// scenario, the injected fault, every alert with its localization
// verdict, and traffic/transport statistics.
//
// Usage:
//
//	flowpulse-sim                                  # paper defaults, 1.5% fault
//	flowpulse-sim -leaves 16 -spines 8 -size 32
//	flowpulse-sim -drop 0.008 -fault-leaf 7 -fault-spine 2
//	flowpulse-sim -predictor learned -iters 12 -heal-after 6
//	flowpulse-sim -drop 0                          # clean run
//	flowpulse-sim -remediate                       # closed-loop quarantine
//	flowpulse-sim -remediate -leaves 8 -spines 4 -size 8 -iters 48 \
//	    -fault-leaf 4 -drop 0.3 -flap-period 2040 -flap-down 1020
//	flowpulse-sim -jobs 2 -leaves 8 -spines 4 -size 4 -remediate
//	                                               # two jobs, one shared plane
//	flowpulse-sim -resilience -interleave -leaves 8 -spines 2 -hosts 4 \
//	    -size 2 -iters 20 -fault-leaf 4 -fault-spine 0 -drop 0.05
//	                                               # quarantine + ring re-plan
//	flowpulse-sim -remediate -fail-pushes 1        # drop the quarantine push;
//	                                               # verify-own-writes re-pushes it
//	flowpulse-sim -remediate -drop 0 -stale-at 900 # corrupt the LSDB mid-run;
//	                                               # the audit reconciles it
//	flowpulse-sim -stream localhost:9465           # live producer: stream the
//	                                               # trace to flowpulse-serve,
//	                                               # detection runs server-side
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"flowpulse"
	"flowpulse/internal/serve"
	"flowpulse/internal/sim"
	"flowpulse/internal/trace"
)

func main() {
	var (
		leaves     = flag.Int("leaves", 32, "leaf switches")
		spines     = flag.Int("spines", 16, "spine switches")
		hosts      = flag.Int("hosts", 1, "hosts per leaf")
		sizeMB     = flag.Int64("size", 16, "collective size per rank (MiB)")
		iters      = flag.Int("iters", 6, "training iterations")
		coll       = flag.String("collective", "ring-allreduce", "collective (ring-allreduce|reduce-scatter|all-gather|all-to-all)")
		predictor  = flag.String("predictor", "analytical", "load model (analytical|simulation|learned)")
		threshold  = flag.Float64("threshold", 0.01, "detection threshold")
		drop       = flag.Float64("drop", 0.015, "silent fault drop rate (0 = clean run)")
		faultLeaf  = flag.Int("fault-leaf", 3, "faulty link: leaf ordinal")
		faultSpine = flag.Int("fault-spine", 1, "faulty link: spine ordinal")
		faultIter  = flag.Int("fault-at", 2, "inject after this iteration (0 = from start)")
		healAfter  = flag.Int("heal-after", 0, "heal the fault after this iteration (0 = never)")
		upstream   = flag.Bool("upstream", false, "fault the leaf-to-spine direction instead")
		preDown    = flag.Int("preexisting", 0, "number of pre-existing disconnected links")
		jitterUS   = flag.Int64("jitter", 0, "per-rank start jitter (µs)")
		remediated = flag.Bool("remediate", false, "close the loop: confirm, quarantine, probe, re-admit")
		resilient  = flag.Bool("resilience", false, "extend the loop into the workload: re-plan the ring when a quarantine degrades a leaf below 90% capacity (implies -remediate)")
		interleave = flag.Bool("interleave", false, "interleave the ring across leaves (placement-oblivious rank order) so every ring edge crosses the fabric")
		flapPeriod = flag.Int64("flap-period", 0, "make the fault a lossy flap with this period (µs, 0 = persistent)")
		flapDown   = flag.Int64("flap-down", 0, "flap down-phase length (µs, default period/2)")
		jobs       = flag.Int("jobs", 1, "concurrent training jobs on one shared monitoring plane")
		failSkip   = flag.Int("fail-skip", 0, "divergence: let this many control-plane pushes through before dropping starts")
		failPushes = flag.Int("fail-pushes", 0, "divergence: silently drop this many control-plane pushes after -fail-skip (verify-own-writes re-pushes; -unverified commits the lie)")
		partialOps = flag.Int("partial-ops", 0, "divergence: land only the first N operations of the next multi-op ChangeSet")
		staleAtUS  = flag.Int64("stale-at", 0, "divergence: corrupt the LSDB advertisement for the fault link at this time (µs); lands on the next remediation tick, so needs -remediate")
		staleUp    = flag.Bool("stale-up", false, "advertise the stale link as up instead of down")
		unverified = flag.Bool("unverified", false, "divergence baseline: the plane trusts every push — no verify-own-writes, no reconciliation, no audit")
		auditUS    = flag.Int64("audit-every", 0, "divergence: audit belief against truth at this cadence (µs; verified planes only)")
		tracePath  = flag.String("trace", "", "record the run to this .fpt trace file for offline replay (see flowpulse-trace)")
		stream     = flag.String("stream", "", "stream the live trace to a flowpulse-serve instance at this host:port (combine with -trace for a local copy)")
		streamTok  = flag.String("stream-token", "", "producer token for -stream")
		streamMode = flag.String("stream-mode", "", "serve ingestion mode for -stream (seq|fanout; default seq)")
		seed       = flag.Uint64("seed", 1, "random seed")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "engine worker shards; results are identical for every value >= 1 (0 = classic single-threaded engine, byte-compatible with older releases)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (shard workers carry pprof shard=N labels)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *resilient {
		*remediated = true
	}
	if *jobs > 1 && *hosts < *jobs {
		*hosts = *jobs // one host column per job
	}
	sc := flowpulse.Scenario{
		Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts,
		Collective:     flowpulse.CollectiveKind(*coll),
		InterleaveRing: *interleave,
		BytesPerRank:   *sizeMB << 20,
		Iterations:     *iters,
		JitterMax:      flowpulse.Duration(*jitterUS) * flowpulse.Microsecond,
		Seed:           *seed,
		Shards:         *shards,
	}
	for j := 1; j <= *jobs && *jobs > 1; j++ {
		sc.Jobs = append(sc.Jobs, flowpulse.JobSpec{Job: uint16(j), HostIx: j - 1})
	}
	for i := 0; i < *preDown; i++ {
		sc.PreExisting = append(sc.PreExisting, flowpulse.Link{
			LeafOrd:  (i*7 + 1) % *leaves,
			SpineOrd: (i*3 + 2) % *spines,
		})
	}
	sc.Divergence = flowpulse.DivergenceSpec{
		FailSkip:   *failSkip,
		FailPushes: *failPushes,
		PartialOps: *partialOps,
		Unverified: *unverified,
		AuditEvery: flowpulse.Duration(*auditUS) * flowpulse.Microsecond,
	}
	if *staleAtUS > 0 {
		sc.Divergence.Stale = append(sc.Divergence.Stale, flowpulse.StaleSpec{
			At:   sim.Time(sim.Duration(*staleAtUS) * sim.Microsecond),
			Link: flowpulse.Link{LeafOrd: *faultLeaf, SpineOrd: *faultSpine},
			Up:   *staleUp,
		})
	}

	cluster, err := flowpulse.New(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cluster.Close()
	monCfg := flowpulse.MonitorConfig{
		Predictor:  flowpulse.PredictorKind(*predictor),
		Threshold:  *threshold,
		TracePath:  *tracePath,
		TraceLabel: "flowpulse-sim",
	}
	// -stream turns this run into a live producer: the same .fpt frames
	// that would land in -trace go down a TCP connection to a
	// flowpulse-serve instance, which detects server-side and reports
	// parity back when the stream closes.
	var producer *serve.Producer
	if *stream != "" {
		p, err := serve.DialProducer(*stream, *streamTok, *streamMode, "flowpulse-sim", 5*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		producer = p
		monCfg.TracePath = ""
		monCfg.TraceSink = io.Writer(p)
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			monCfg.TraceSink = io.MultiWriter(f, p)
		}
	}
	if *remediated {
		monCfg.Remediate = &flowpulse.RemediateConfig{}
	}
	if *resilient {
		monCfg.Resilience = &flowpulse.ResilienceConfig{}
	}
	mon, err := cluster.Monitor(monCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var goodput *flowpulse.GoodputTimeline
	if *resilient && *jobs <= 1 {
		goodput = cluster.TrackGoodput()
	}

	target := flowpulse.Link{LeafOrd: *faultLeaf, SpineOrd: *faultSpine}
	// groundTruth appends the injection (or heal) to the trace so an
	// offline sweep can label iterations without re-simulating.
	groundTruth := func(clear bool, onset int) {
		trc := mon.TraceWriter()
		if trc == nil {
			return
		}
		f := trace.FaultRecord{
			At:       sim.Time(cluster.Now()),
			Kind:     "bernoulli",
			LeafOrd:  target.LeafOrd,
			SpineOrd: target.SpineOrd,
			Upstream: *upstream,
			Rate:     *drop,
			Clear:    clear,
			OnsetIter: func() uint32 {
				if onset < 0 {
					return 0
				}
				return uint32(onset)
			}(),
		}
		if *flapPeriod > 0 {
			f.Kind = "flap"
			f.FlapPeriod = sim.Duration(*flapPeriod) * sim.Microsecond
			f.FlapDown = f.FlapPeriod / 2
			if *flapDown > 0 {
				f.FlapDown = sim.Duration(*flapDown) * sim.Microsecond
			}
		}
		trc.Fault(f)
	}
	inject := func() {
		if *drop <= 0 {
			return
		}
		if goodput != nil {
			goodput.MarkFault(int64(cluster.Now()))
		}
		if *flapPeriod > 0 {
			period := flowpulse.Duration(*flapPeriod) * flowpulse.Microsecond
			down := period / 2
			if *flapDown > 0 {
				down = flowpulse.Duration(*flapDown) * flowpulse.Microsecond
			}
			cluster.FlapLink(target, period, down, 0, *drop)
		} else if *upstream {
			cluster.BreakLinkUpstream(target, *drop)
		} else {
			cluster.BreakLink(target, *drop)
		}
		groundTruth(false, *faultIter)
	}

	fmt.Printf("FlowPulse simulation: %dx%d fat tree, %d host(s)/leaf, %s, %d MiB/rank, %d iterations\n",
		*leaves, *spines, *hosts, *coll, *sizeMB, *iters)
	if *jobs > 1 {
		fmt.Printf("jobs: %d concurrent (one shared tap per switch, per-job pipelines)\n", *jobs)
	}
	fmt.Printf("predictor=%s threshold=%.2f%% pre-existing=%d\n", *predictor, *threshold*100, *preDown)
	if *shards >= 1 {
		fmt.Printf("engine: sharded (%d workers, one domain per switch)\n", *shards)
	} else {
		fmt.Println("engine: single-threaded")
	}
	switch {
	case *drop > 0 && *flapPeriod > 0:
		fmt.Printf("fault: lossy flap (%.2f%% while down, period %dµs) on leaf %d / spine %d, after iteration %d\n",
			*drop*100, *flapPeriod, *faultLeaf, *faultSpine, *faultIter)
	case *drop > 0:
		dir := "downstream (spine->leaf)"
		if *upstream {
			dir = "upstream (leaf->spine)"
		}
		fmt.Printf("fault: %.2f%% drop on leaf %d / spine %d, %s, after iteration %d\n",
			*drop*100, *faultLeaf, *faultSpine, dir, *faultIter)
	default:
		fmt.Println("fault: none (clean run)")
	}
	if *remediated {
		fmt.Println("remediation: enabled (confirm K=3, probe M=3, flap damping)")
	}
	if *resilient {
		fmt.Println("resilience: enabled (ring re-plan when a quarantine degrades a leaf)")
	}
	if sc.Divergence.Enabled() {
		posture := "verified (verify-own-writes + reconciliation)"
		if *unverified {
			posture = "UNVERIFIED (pushes trusted blindly)"
		}
		fmt.Printf("control plane: %s; injecting fail-pushes=%d (skip %d) partial-ops=%d stale-flips=%d audit-every=%dµs\n",
			posture, *failPushes, *failSkip, *partialOps, len(sc.Divergence.Stale), *auditUS)
	}
	fmt.Println()

	if *faultIter <= 0 {
		inject()
	}
	injected := false
	cluster.TrainAll(func(now flowpulse.Duration, job uint16, iter uint32) {
		if *jobs > 1 {
			fmt.Printf("job %d iteration %2d complete at %v\n", job, iter, now)
		} else {
			fmt.Printf("iteration %2d complete at %v\n", iter, now)
		}
		// Multi-job runs key fault timing on the first job's clock.
		if (*jobs <= 1 || job == 1) && int(iter) == *faultIter && !injected {
			injected = true
			inject()
			fmt.Printf("  >> fault injected\n")
		}
		if (*jobs <= 1 || job == 1) && *healAfter > 0 && int(iter) == *healAfter {
			cluster.HealLink(target)
			groundTruth(true, *healAfter)
			fmt.Printf("  >> fault healed\n")
		}
	})
	if trc := mon.TraceWriter(); trc != nil {
		if err := trc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *tracePath != "" {
			fmt.Printf("trace recorded to %s\n", *tracePath)
		}
	}
	if producer != nil {
		st, err := producer.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("streamed to %s: session=%s mode=%s windows=%d events=%d actions=%d fingerprint=%016x parity=%s\n",
			*stream, st.Session, st.Mode, st.Windows, st.Events, st.Actions, st.Fingerprint, st.Parity)
	}

	printEvents := func(prefix string, events []flowpulse.Event) {
		if len(events) == 0 {
			fmt.Printf("%sno faults detected\n", prefix)
			return
		}
		fmt.Printf("%s%d alert(s):\n", prefix, len(events))
		for _, e := range events {
			fmt.Printf("%s  %v\n", prefix, e.Alert)
			if e.Alert.Deviation < 0 {
				fmt.Printf("%s    localization: %v\n", prefix, e.Verdict)
			}
		}
	}
	printScores := func(prefix string, scores map[uint32]float64) {
		iterKeys := make([]int, 0, len(scores))
		for it := range scores {
			iterKeys = append(iterKeys, int(it))
		}
		sort.Ints(iterKeys)
		for _, it := range iterKeys {
			fmt.Printf("%s  iter %2d: %6.3f%%\n", prefix, it, 100*scores[uint32(it)])
		}
	}

	fmt.Println()
	if jms := mon.Jobs(); len(jms) > 0 {
		for _, jm := range jms {
			fmt.Printf("job %d:\n", jm.ID())
			printEvents("  ", jm.Events())
			fmt.Println("  per-iteration max |deviation| across all leaf ports:")
			printScores("  ", jm.IterationScores())
		}
	} else {
		printEvents("", mon.Events())
		fmt.Println()
		fmt.Println("per-iteration max |deviation| across all leaf ports:")
		printScores("", mon.IterationScores())
	}

	if *remediated {
		fmt.Println()
		timeline := mon.RemediationTimeline()
		if len(timeline) == 0 {
			fmt.Println("remediation timeline: (no actions)")
		} else {
			fmt.Println("remediation timeline:")
			for _, a := range timeline {
				fmt.Printf("  %v\n", a)
			}
		}
		rs := mon.RemediationStats()
		fmt.Printf("remediation: confirmations=%d quarantines=%d probe-rounds=%d readmissions=%d suppressed=%d\n",
			rs.Confirmations, rs.Quarantines, rs.ProbeRounds, rs.Readmissions, rs.SuppressedReadmits)
		if q := mon.Quarantined(); len(q) > 0 {
			fmt.Printf("still quarantined: links %v\n", q)
		}
	}

	if goodput != nil {
		rep := goodput.Report(0.9)
		fmt.Println()
		fmt.Printf("goodput: baseline=%.3f it/ms during=%.3f it/ms stall=%v\n",
			rep.Baseline*float64(flowpulse.Millisecond),
			rep.During*float64(flowpulse.Millisecond),
			flowpulse.Duration(rep.Stall))
		switch {
		case !rep.Faulted:
			fmt.Println("recovery: n/a (no fault marked)")
		case rep.Recovered:
			fmt.Printf("recovery: %v after the fault (iteration %d, post rate %.3f it/ms)\n",
				flowpulse.Duration(rep.RecoveryTime), rep.RecoveryIter,
				rep.Post*float64(flowpulse.Millisecond))
		default:
			fmt.Println("recovery: NOT RECOVERED (run ended below 90% of baseline)")
		}
	}

	if sc.Divergence.Enabled() {
		plane := cluster.ControlPlane()
		ps := plane.Stats()
		fmt.Println()
		fmt.Printf("control plane: changesets=%d committed=%d rolled-back=%d retries=%d verify-mismatches=%d pushes-dropped=%d\n",
			ps.ChangeSets, ps.Committed, ps.RolledBack, ps.Retries, ps.VerifyMismatches, ps.PushesDropped)
		fmt.Printf("divergence: episodes=%d reconciles=%d audits=%d audit-repairs=%d stale-adopted=%d total-diverged=%v\n",
			ps.Divergences, ps.Reconciles, ps.Audits, ps.AuditRepairs, ps.StaleAdopted, ps.TotalDiverged)
		if d := plane.Divergent(); len(d) > 0 {
			fmt.Printf("STILL DIVERGENT at end of run: links %v\n", d)
		} else {
			fmt.Println("belief == truth at end of run")
		}
	}

	fmt.Println()
	ns := cluster.NetworkStats()
	ts := cluster.TransportStats()
	fmt.Printf("network: sent=%d delivered=%d silently-dropped=%d pfc-pauses=%d\n",
		ns.Sent, ns.Delivered, ns.FaultDropped, ns.PFCPauses)
	fmt.Printf("transport: messages=%d retransmits=%d spurious=%d duplicates=%d\n",
		ts.MessagesSent, ts.Retransmits, ts.SpuriousRetransmits, ts.DuplicatesReceived)
	fmt.Printf("simulated time: %v\n", cluster.Now())
}
