// Command flowpulse-check is the deterministic simulation fuzzer: it
// derives whole scenarios (topology, workload, fault schedule) from
// 64-bit seeds, runs the full detect → localize → remediate pipeline
// over each, and checks the simtest invariant oracles — byte
// conservation, clean-run silence, detection/localization deadlines,
// damped remediation, and bit-identical replay. Failing seeds are
// shrunk to a minimal spec and reported as a one-line repro command.
//
// Scan a seed range:
//
//	flowpulse-check -seeds 200
//
// Reproduce a failure:
//
//	flowpulse-check -seed 17
//	flowpulse-check -spec '{"seed":17,...}'
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"flowpulse/internal/simtest"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "scan this many seeds starting at -start")
		start    = flag.Uint64("start", 0, "first seed of the scan")
		seed     = flag.Uint64("seed", 0, "run a single seed (ignored when -seeds or -spec is set)")
		specJSON = flag.String("spec", "", "run one explicit spec (compact JSON, as printed by a shrunk repro)")
		deadline = flag.Int("deadline", 0, "detection deadline in iterations after fault onset (default 4)")
		noShrink = flag.Bool("no-shrink", false, "report failures unshrunk")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel seed workers")
		verbose  = flag.Bool("v", false, "print a line per seed")
	)
	flag.Parse()

	opts := simtest.Options{Deadline: *deadline}
	switch {
	case *specJSON != "":
		spec, err := simtest.ParseSpec(*specJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Exit(runOne(spec, opts, *noShrink))
	case *seeds > 0:
		os.Exit(scan(*start, *seeds, *workers, opts, *noShrink, *verbose))
	default:
		os.Exit(runOne(simtest.Generate(*seed), opts, *noShrink))
	}
}

// runOne fuzzes a single spec, shrinking on failure.
func runOne(spec simtest.Spec, opts simtest.Options, noShrink bool) int {
	res := simtest.Run(spec, opts)
	if res.OK() {
		fmt.Printf("seed %d ok: %s topology, %s/%s, fault %s — %d windows, %d alerts, fingerprint %016x\n",
			spec.Seed, spec.Topo.Kind, spec.Work.Collective, spec.Work.Predictor,
			spec.Fault.Kind, res.Windows, res.Alerts, res.Fingerprint)
		return 0
	}
	report(res, opts, noShrink)
	return 1
}

// scan fuzzes seeds [start, start+n) on a worker pool.
func scan(start uint64, n, workers int, opts simtest.Options, noShrink, verbose bool) int {
	if workers < 1 {
		workers = 1
	}
	t0 := time.Now()
	seedCh := make(chan uint64)
	results := make(chan *simtest.Result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range seedCh {
				results <- simtest.Run(simtest.Generate(s), opts)
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			seedCh <- start + uint64(i)
		}
		close(seedCh)
		wg.Wait()
		close(results)
	}()

	failed := 0
	var failures []*simtest.Result
	for res := range results {
		if verbose {
			status := "ok"
			if !res.OK() {
				status = "FAIL"
			}
			fmt.Printf("seed %-6d %-4s %-9s %-14s %-8s fault=%-15s windows=%-4d alerts=%-3d fp=%016x\n",
				res.Spec.Seed, status, res.Spec.Topo.Kind, res.Spec.Work.Collective,
				res.Spec.Work.Predictor, res.Spec.Fault.Kind, res.Windows, res.Alerts, res.Fingerprint)
		}
		if !res.OK() {
			failed++
			failures = append(failures, res)
		}
	}
	fmt.Printf("%d seeds, %d failed (%v, %d workers)\n", n, failed, time.Since(t0).Round(time.Millisecond), workers)
	for _, res := range failures {
		report(res, opts, noShrink)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// report prints a failure, shrinking it first unless disabled.
func report(res *simtest.Result, opts simtest.Options, noShrink bool) {
	fmt.Printf("\nFAIL seed %d (%s topology, %s/%s, fault %s at onset %d):\n",
		res.Spec.Seed, res.Spec.Topo.Kind, res.Spec.Work.Collective,
		res.Spec.Work.Predictor, res.Spec.Fault.Kind, res.Spec.Fault.Onset)
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	spec := res.Spec
	if !noShrink {
		shrunk, runs := simtest.Shrink(spec, opts, 0)
		if shrunk != spec {
			fmt.Printf("  shrunk after %d runs:\n", runs)
			final := simtest.Run(shrunk, opts)
			for _, v := range final.Violations {
				fmt.Printf("    %s\n", v)
			}
			spec = shrunk
		}
	}
	fmt.Printf("  repro: %s\n", spec.ReproCommand())
}
