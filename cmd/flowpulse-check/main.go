// Command flowpulse-check is the deterministic simulation fuzzer: it
// derives whole scenarios (topology, workload, fault schedule) from
// 64-bit seeds, runs the full detect → localize → remediate pipeline
// over each, and checks the simtest invariant oracles — byte
// conservation, clean-run silence, detection/localization deadlines,
// damped remediation, and bit-identical replay. Failing seeds are
// shrunk to a minimal spec and reported as a one-line repro command.
//
// Scan a seed range:
//
//	flowpulse-check -seeds 200
//	flowpulse-check -seeds 200 -resilience   # every control-loop seed also re-plans
//	flowpulse-check -seeds 200 -congestion   # adversarial traffic storms under ECN/DCQCN
//	flowpulse-check -seeds 200 -divergence   # control-plane belief/truth faults on remediated seeds
//
// Reproduce a failure:
//
//	flowpulse-check -seed 17
//	flowpulse-check -spec '{"seed":17,...}'
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"flowpulse/internal/simtest"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "scan this many seeds starting at -start")
		start    = flag.Uint64("start", 0, "first seed of the scan")
		seed     = flag.Uint64("seed", 0, "run a single seed (ignored when -seeds or -spec is set)")
		specJSON = flag.String("spec", "", "run one explicit spec (compact JSON, as printed by a shrunk repro)")
		deadline = flag.Int("deadline", 0, "detection deadline in iterations after fault onset (default 4)")
		noShrink = flag.Bool("no-shrink", false, "report failures unshrunk")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel seed workers (clamped to the seed count)")
		shards   = flag.Int("shards", 0, "engine worker shards per simulation (0 = classic single-threaded engine); fingerprints depend on the mode (0 vs >= 1) but not on the count, so reproduce failures with the same -shards mode")
		resil    = flag.Bool("resilience", false, "force the workload re-planner on for every remediated seed, so each control-loop scenario exercises the full quarantine -> re-plan -> recover path (forced specs repro via -spec, not -seed)")
		congest  = flag.Bool("congestion", false, "run every fat-tree seed under ECN/DCQCN with seed-drawn incast bursts, traffic storms, and stragglers, checking that pure congestion never quarantines and faults still meet their deadlines (forced specs repro via -spec, not -seed)")
		diverge  = flag.Bool("divergence", false, "inject seed-drawn control-plane belief/truth faults (failed pushes, stale LSDB advertisements) into every remediated seed, checking that belief reconverges to truth and no healthy link is left wrongly down (forced specs repro via -spec, not -seed)")
		verbose  = flag.Bool("v", false, "print a line per seed")
	)
	flag.Parse()

	opts := simtest.Options{Deadline: *deadline, Shards: *shards}
	gen := simtest.Generate
	if *resil {
		gen = func(s uint64) simtest.Spec { return simtest.WithResilience(simtest.Generate(s)) }
	}
	if *congest {
		base := gen
		gen = func(s uint64) simtest.Spec { return simtest.WithCongestion(base(s)) }
	}
	if *diverge {
		base := gen
		gen = func(s uint64) simtest.Spec { return simtest.WithDivergence(base(s)) }
	}
	switch {
	case *specJSON != "":
		spec, err := simtest.ParseSpec(*specJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Exit(runOne(spec, opts, *noShrink))
	case *seeds > 0:
		os.Exit(scan(gen, *start, *seeds, *workers, opts, *noShrink, *verbose))
	default:
		os.Exit(runOne(gen(*seed), opts, *noShrink))
	}
}

// runOne fuzzes a single spec, shrinking on failure.
func runOne(spec simtest.Spec, opts simtest.Options, noShrink bool) int {
	res := simtest.Run(spec, opts)
	if res.OK() {
		fmt.Printf("seed %d ok: %s topology, %s/%s, fault %s — %d windows, %d alerts, fingerprint %016x\n",
			spec.Seed, spec.Topo.Kind, spec.Work.Collective, spec.Work.Predictor,
			spec.Fault.Kind, res.Windows, res.Alerts, res.Fingerprint)
		return 0
	}
	report(res, opts, noShrink)
	return 1
}

// scan fuzzes seeds [start, start+n) on a worker pool. Workers are
// clamped to the seed count so small scans don't spawn idle
// goroutines, and each seed's wall time is measured so slow or
// degenerate scenarios stand out.
func scan(gen func(uint64) simtest.Spec, start uint64, n, workers int, opts simtest.Options, noShrink, verbose bool) int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	type timedResult struct {
		res     *simtest.Result
		elapsed time.Duration
	}
	t0 := time.Now()
	seedCh := make(chan uint64)
	results := make(chan timedResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range seedCh {
				s0 := time.Now()
				res := simtest.Run(gen(s), opts)
				results <- timedResult{res, time.Since(s0)}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			seedCh <- start + uint64(i)
		}
		close(seedCh)
		wg.Wait()
		close(results)
	}()

	failed := 0
	var failures []*simtest.Result
	var busy, slowest time.Duration
	var slowestSeed uint64
	for tr := range results {
		res := tr.res
		busy += tr.elapsed
		if tr.elapsed > slowest {
			slowest, slowestSeed = tr.elapsed, res.Spec.Seed
		}
		if verbose {
			status := "ok"
			if !res.OK() {
				status = "FAIL"
			}
			fmt.Printf("seed %-6d %-4s %-9s %-14s %-8s fault=%-15s windows=%-4d alerts=%-3d fp=%016x %8v\n",
				res.Spec.Seed, status, res.Spec.Topo.Kind, res.Spec.Work.Collective,
				res.Spec.Work.Predictor, res.Spec.Fault.Kind, res.Windows, res.Alerts, res.Fingerprint,
				tr.elapsed.Round(time.Millisecond))
		}
		if !res.OK() {
			failed++
			failures = append(failures, res)
		}
	}
	mean := time.Duration(0)
	if n > 0 {
		mean = busy / time.Duration(n)
	}
	fmt.Printf("%d seeds, %d failed (%v wall, %d workers; per seed mean %v, max %v on seed %d)\n",
		n, failed, time.Since(t0).Round(time.Millisecond), workers,
		mean.Round(time.Millisecond), slowest.Round(time.Millisecond), slowestSeed)
	for _, res := range failures {
		report(res, opts, noShrink)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// report prints a failure, shrinking it first unless disabled.
func report(res *simtest.Result, opts simtest.Options, noShrink bool) {
	fmt.Printf("\nFAIL seed %d (%s topology, %s/%s, fault %s at onset %d):\n",
		res.Spec.Seed, res.Spec.Topo.Kind, res.Spec.Work.Collective,
		res.Spec.Work.Predictor, res.Spec.Fault.Kind, res.Spec.Fault.Onset)
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	spec := res.Spec
	if !noShrink {
		shrunk, runs := simtest.Shrink(spec, opts, 0)
		if shrunk != spec {
			fmt.Printf("  shrunk after %d runs:\n", runs)
			final := simtest.Run(shrunk, opts)
			for _, v := range final.Violations {
				fmt.Printf("    %s\n", v)
			}
			spec = shrunk
		}
	}
	fmt.Printf("  repro: %s\n", spec.ReproCommand())
}
