// Radix sweep: the Figure-5(b) experiment as a library call. Higher
// switch radixes spread every flow across more spines, shrinking each
// port's share of the collective and making the same 0.8% fault harder
// to see against the measurement noise.
package main

import (
	"fmt"

	"flowpulse/internal/experiments"
)

func main() {
	res, err := experiments.Fig5b(experiments.Fig5bConfig{
		Radixes:      []int{8, 16, 32},
		DropRate:     0.008,
		BytesPerRank: 8 << 20,
		Trials:       2,
		Seed:         21,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.String())
	fmt.Println("\nreading: the per-port volume shrinks as 1/spines, so both the")
	fmt.Println("single-packet noise quantum and the fault's absolute byte deficit")
	fmt.Println("shrink with radix — higher radixes are more challenging (§6).")
}
