// Three-level Clos monitoring (§7 "Network Topology"): FlowPulse
// deployed at BOTH the leaf level (watching spine→leaf links) and the
// spine level (watching core→spine links). A fault on a core→spine
// link is invisible to every leaf monitor — only the spine deployment
// catches it.
//
// Both levels use the learned load model: the analytical closed form
// is specific to two-level spray geometry, while the measured baseline
// works at any level unchanged.
package main

import (
	"fmt"

	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
)

func main() {
	sc := core.Clos3Scenario{
		Pods:          4,
		LeavesPerPod:  4,
		SpinesPerPod:  2,
		CoresPerGroup: 4,
		BytesPerRank:  8 << 20,
		Iterations:    10,
		Seed:          5,
	}
	rt, err := sc.Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("fabric: %d pods x %d leaves x %d spines + %d cores, ring over %d hosts\n",
		sc.Pods, sc.LeavesPerPod, sc.SpinesPerPod,
		sc.SpinesPerPod*sc.CoresPerGroup, len(rt.Group))

	sys := core.AttachClos3(rt, detect.Config{}, predict.LearnedConfig{Warmup: 3})

	// After warm-up, a core→spine link in pod 2 starts dropping 8% of
	// its packets. No leaf is attached to that link.
	rt.StartTraining(func(_ sim.Time, iter uint32) {
		if iter == 5 {
			link := rt.InjectCoreSpineDrop(2, 1, 0, 0.08)
			fmt.Printf("iteration 5: silent 8%% fault injected on core->spine link %d\n", link)
		}
	})
	rt.Run()
	sys.Flush(rt.Engine.Now())

	fmt.Printf("\nleaf-level alerts:  %d\n", len(sys.LeafEvents))
	fmt.Printf("spine-level alerts: %d\n", len(sys.SpineEvents))
	for _, a := range sys.SpineEvents {
		fmt.Printf("  spine monitor: %v\n", a)
	}
	if len(sys.SpineEvents) > 0 {
		fmt.Println("\nthe spine deployment caught a fault no leaf monitor could see.")
	}
}
