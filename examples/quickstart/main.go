// Quickstart: build the paper's evaluation cluster, train, break a
// link silently mid-run, and watch FlowPulse catch it within one
// iteration.
package main

import (
	"fmt"

	"flowpulse"
)

func main() {
	// The paper's setup: 32-leaf × 16-spine non-blocking fat tree, one
	// GPU host per leaf, Ring-AllReduce over all 32 hosts, adaptive
	// per-packet spraying, lossless 400 Gb/s Ethernet.
	cluster, err := flowpulse.New(flowpulse.Scenario{
		Leaves:       32,
		Spines:       16,
		BytesPerRank: 16 << 20, // 16 MiB of gradients per rank
		Iterations:   6,
		Seed:         42,
	})
	if err != nil {
		panic(err)
	}

	// Deploy FlowPulse on every leaf switch: analytical load model,
	// the paper's 1% detection threshold.
	monitor, err := cluster.Monitor(flowpulse.MonitorConfig{
		OnEvent: func(e flowpulse.Event) {
			fmt.Printf("  ALERT %v\n", e.Alert)
			if e.Alert.Deviation < 0 {
				fmt.Printf("        %v\n", e.Verdict)
			}
		},
	})
	if err != nil {
		panic(err)
	}

	// Train; after iteration 3 a transceiver starts silently corrupting
	// 1.5% of packets on the link between leaf 11 and spine 5 — no
	// counter anywhere sees it.
	faulty := flowpulse.Link{LeafOrd: 11, SpineOrd: 5}
	fmt.Println("training...")
	cluster.Train(func(now flowpulse.Duration, iter uint32) {
		fmt.Printf("iteration %d done at %v\n", iter, now)
		if iter == 3 {
			cluster.BreakLink(faulty, 0.015)
			fmt.Println("  (silent fault injected: 1.5% drop on leaf 11 / spine 5)")
		}
	})

	fmt.Printf("\n%d measurement windows, %d alert(s), predictor %q\n",
		monitor.Windows(), len(monitor.Events()), monitor.PredictorName())
	ns := cluster.NetworkStats()
	fmt.Printf("packets: %d sent, %d silently dropped by the fault\n", ns.Sent, ns.FaultDropped)
}
