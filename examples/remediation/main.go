// Remediation: close the loop end to end. Two acts on one small
// cluster:
//
//  1. A persistent 1.5% silent fault appears mid-training. FlowPulse
//     confirms it over K=3 consecutive deviating windows, quarantines
//     the link (admin-down + model re-baseline), and keeps probing it;
//     the probes keep losing packets, so the link stays out.
//  2. A flapping link — degraded for half of every cycle — passes its
//     probe rounds while up and earns re-admission, then fails again.
//     BGP-style flap damping charges a penalty per quarantine; once it
//     crosses the suppress threshold, the link is pinned down and the
//     FIB churn stops.
package main

import (
	"fmt"

	"flowpulse"
)

func run(title string, iters int, rcfg flowpulse.RemediateConfig,
	setup func(c *flowpulse.Cluster), onIter func(c *flowpulse.Cluster, iter uint32)) {
	fmt.Printf("=== %s ===\n", title)
	cluster, err := flowpulse.New(flowpulse.Scenario{
		Leaves:       8,
		Spines:       4,
		BytesPerRank: 8 << 20,
		Iterations:   iters,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	monitor, err := cluster.Monitor(flowpulse.MonitorConfig{Remediate: &rcfg})
	if err != nil {
		panic(err)
	}
	if setup != nil {
		setup(cluster)
	}
	cluster.Train(func(_ flowpulse.Duration, iter uint32) {
		if onIter != nil {
			onIter(cluster, iter)
		}
	})

	for _, a := range monitor.RemediationTimeline() {
		fmt.Printf("  %v\n", a)
	}
	st := monitor.RemediationStats()
	fmt.Printf("quarantines=%d readmissions=%d suppressed=%d still-out=%v\n\n",
		st.Quarantines, st.Readmissions, st.SuppressedReadmits, monitor.Quarantined())
}

func main() {
	faulty := flowpulse.Link{LeafOrd: 4, SpineOrd: 1}

	// Act 1: a persistent fault is quarantined once and never returns —
	// every probe round over the lossy cable fails.
	run("persistent 1.5% fault: quarantine, then silence", 12,
		flowpulse.RemediateConfig{}, nil,
		func(c *flowpulse.Cluster, iter uint32) {
			if iter == 2 {
				c.BreakLink(faulty, 0.015)
			}
		})

	// Act 2: a lossy flap (30% loss for half of every ~2-iteration
	// cycle). Suppress is lowered so the second quarantine already pins
	// the link; with the default 2200 the third would.
	iterDur := 340 * flowpulse.Microsecond // ≈ one clean iteration at this scale
	run("flapping link: re-admission, then damping pins it down", 36,
		flowpulse.RemediateConfig{Suppress: 1500},
		func(c *flowpulse.Cluster) {
			c.FlapLink(faulty, 6*iterDur, 3*iterDur, 2*iterDur, 0.3)
		}, nil)
}
