// Localization: reproduce the Figure-4 inference interactively. An
// expert-parallel all-to-all workload puts traffic from many senders
// on every monitored port, so a receiving leaf can tell a fault on its
// own spine link (every sender depressed) from a fault on a remote
// sender's link (one sender depressed).
package main

import (
	"fmt"

	"flowpulse"
)

func run(title string, breakIt func(c *flowpulse.Cluster, l flowpulse.Link)) {
	fmt.Printf("=== %s ===\n", title)
	cluster, err := flowpulse.New(flowpulse.Scenario{
		Leaves:       16,
		Spines:       8,
		Collective:   flowpulse.AllToAll,
		BytesPerRank: 32 << 20,
		Iterations:   4,
		Seed:         7,
	})
	if err != nil {
		panic(err)
	}
	monitor, err := cluster.Monitor(flowpulse.MonitorConfig{})
	if err != nil {
		panic(err)
	}

	faulty := flowpulse.Link{LeafOrd: 5, SpineOrd: 2}
	breakIt(cluster, faulty)
	cluster.Train(nil)

	for _, e := range monitor.Events() {
		if e.Alert.Deviation >= 0 {
			continue // surpluses are retransmit spillover
		}
		fmt.Printf("alert:   %v\n", e.Alert)
		fmt.Printf("verdict: %v\n", e.Verdict)
	}
	fmt.Println()
}

func main() {
	// Case 1: the fault is on the DOWNSTREAM spine→leaf link of the
	// detecting leaf. Every sender's traffic through that port suffers
	// equally, so the verdict is local-link.
	run("downstream fault on leaf 5 / spine 2 (expect local-link)",
		func(c *flowpulse.Cluster, l flowpulse.Link) { c.BreakLink(l, 0.08) })

	// Case 2: the fault is UPSTREAM, on leaf 5's own uplink to spine 2.
	// Other leaves now see a deficit on their spine-2 ports, but only
	// in the bytes sent by leaf 5 — the verdict is remote-link, blaming
	// exactly the leaf5↔spine2 cable.
	run("upstream fault on leaf 5 / spine 2 (expect remote-link at other leaves)",
		func(c *flowpulse.Cluster, l flowpulse.Link) { c.BreakLinkUpstream(l, 0.15) })
}
