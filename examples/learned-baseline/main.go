// Learned baseline: the Figure-3 story. A transient fault is already
// present when training starts, so the learned model's warm-up
// baseline absorbs the skewed load. When the fault heals, the observed
// distribution re-balances; FlowPulse notices the healthier state and
// replaces its baseline instead of alerting forever.
package main

import (
	"fmt"
	"sort"

	"flowpulse"
)

func main() {
	cluster, err := flowpulse.New(flowpulse.Scenario{
		Leaves:       16,
		Spines:       8,
		BytesPerRank: 16 << 20,
		Iterations:   14,
		Seed:         3,
	})
	if err != nil {
		panic(err)
	}
	monitor, err := cluster.Monitor(flowpulse.MonitorConfig{
		Predictor: flowpulse.Learned,
	})
	if err != nil {
		panic(err)
	}

	// A flapping transceiver drops 20% on leaf 4 / spine 3 from the
	// very first iteration — the warm-up measurements see a broken
	// network and learn it as "normal".
	transient := flowpulse.Link{LeafOrd: 4, SpineOrd: 3}
	cluster.BreakLink(transient, 0.2)

	cluster.Train(func(_ flowpulse.Duration, iter uint32) {
		if iter == 6 {
			cluster.HealLink(transient)
			fmt.Println("iteration 6: transient fault healed")
		}
	})

	fmt.Printf("\nre-baselines performed: %d\n", monitor.Rebaselines())
	fmt.Println("alerts (the healed network briefly looks anomalous, then the model adapts):")
	byIter := map[uint32]int{}
	for _, e := range monitor.Events() {
		byIter[e.Alert.Iter]++
	}
	iters := make([]int, 0, len(byIter))
	for it := range byIter {
		iters = append(iters, int(it))
	}
	sort.Ints(iters)
	for _, it := range iters {
		fmt.Printf("  iteration %2d: %d alert(s)\n", it, byIter[uint32(it)])
	}
	if pred := monitor.PortPrediction(4); pred != nil {
		fmt.Printf("\nfinal learned baseline for leaf 4 (port 3 was the faulty one):\n")
		for u, v := range pred {
			fmt.Printf("  uplink %d: %.0f bytes/iteration\n", u, v)
		}
	}
}
