// Multi-job cluster (§7 "Parallel Jobs"): two independent training
// jobs share the fabric on disjoint host halves. FlowPulse measures
// only the tagged, prioritized collective of the job it monitors, so
// the second job's traffic — and low-priority background flows — do
// not break temporal symmetry.
//
// This example drives the simulation through Cluster.Runtime(), the
// advanced escape hatch into the internal packages.
package main

import (
	"fmt"

	"flowpulse"
	"flowpulse/internal/collective"
	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/sim"
	"flowpulse/internal/workload"
)

func main() {
	// 16 leaves: hosts 0-7 run job 1 (monitored), hosts 8-15 run job 2.
	cluster, err := flowpulse.New(flowpulse.Scenario{
		Leaves:       16,
		Spines:       8,
		BytesPerRank: 8 << 20,
		Iterations:   6,
		Job:          1,
		Background:   4 * flowpulse.Microsecond, // plus unrelated datacenter chatter
		Seed:         11,
	})
	if err != nil {
		panic(err)
	}
	rt := cluster.Runtime()

	// Restrict job 1's ring to the first half of the hosts.
	groupA := rt.Group[:8]
	collA := &collective.RingAllReduce{Group: groupA, BytesPerRank: 8 << 20}
	rt.Coll = collA

	// FlowPulse monitors job 1 only.
	sys, err := core.Attach(core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: collA.Demand(),
		Kind: core.AnalyticalModel, Job: 1,
		Detect: detect.Config{Threshold: 0.01},
	})
	if err != nil {
		panic(err)
	}

	// Job 2: a separate ring on the other half, different size and
	// cadence, also sentinel-tagged (its own FlowPulse could watch it).
	workload.StartJob(rt.Stack, workload.JobConfig{
		Job:        2,
		Collective: &collective.RingAllReduce{Group: rt.Group[8:], BytesPerRank: 12 << 20},
		Iterations: 5,
		Sentinel:   true,
		Priority:   1, // fabric.High
		Seed:       12,
	})

	// Break a link used by job 1 (leaf 3 hosts job-1 rank 3) after two
	// clean iterations.
	faulty := flowpulse.Link{LeafOrd: 3, SpineOrd: 2}
	rt.StartTraining(func(_ sim.Time, iter uint32) {
		fmt.Printf("job 1 iteration %d complete\n", iter)
		if iter == 2 {
			rt.InjectSilentDrop(faulty, 0.03)
			fmt.Println("  (3% silent fault injected on leaf 3 / spine 2)")
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())

	fmt.Printf("\njob-1 windows measured: %d (job 2 and background excluded by tag/job filter)\n", sys.Windows)
	for _, e := range sys.Events {
		fmt.Printf("ALERT %v\n", e.Alert)
	}
	if len(sys.Events) == 0 {
		fmt.Println("no alerts — unexpected; the fault should have been caught")
	}
}
