package flowpulse

import (
	"testing"
)

// fastScenario keeps facade tests quick: 8 leaves, 4 spines, 4 MiB.
func fastScenario(seed uint64) Scenario {
	return Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Iterations: 4, Seed: seed}
}

func TestQuickstartFlow(t *testing.T) {
	cluster, err := New(fastScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.BreakLink(Link{LeafOrd: 3, SpineOrd: 1}, 0.05)
	cluster.Train(nil)

	if len(mon.Events()) == 0 {
		t.Fatal("no detections")
	}
	// Deficit alerts (negative deviation) name the faulty port;
	// retransmit spillover may also raise surplus alerts elsewhere.
	foundDeficit := false
	for _, e := range mon.Events() {
		if e.Alert.Deviation >= 0 {
			continue
		}
		foundDeficit = true
		if e.Alert.LeafOrdinal != 3 || e.Alert.Uplink != 1 {
			t.Fatalf("deficit alert at wrong port: %v", e.Alert)
		}
	}
	if !foundDeficit {
		t.Fatal("no deficit alert at the faulty port")
	}
	if mon.PredictorName() != "analytical" {
		t.Fatalf("predictor = %q", mon.PredictorName())
	}
	if mon.Windows() != 8*4 {
		t.Fatalf("windows = %d", mon.Windows())
	}
}

func TestCleanClusterSilent(t *testing.T) {
	cluster, err := New(fastScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Train(nil)
	if len(mon.Events()) != 0 {
		t.Fatalf("clean cluster alerted: %v", mon.Events()[0].Alert)
	}
	st := cluster.NetworkStats()
	if st.Sent == 0 || st.Sent != st.Delivered {
		t.Fatalf("traffic accounting: %+v", st)
	}
}

func TestMidTrainingInjection(t *testing.T) {
	cluster, err := New(fastScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Train(func(_ Duration, iter uint32) {
		if iter == 2 {
			cluster.BreakLink(Link{LeafOrd: 5, SpineOrd: 0}, 0.05)
		}
	})
	events := mon.Events()
	if len(events) == 0 {
		t.Fatal("mid-training fault not detected")
	}
	if events[0].Alert.Iter != 3 {
		t.Fatalf("first alert in iteration %d, want 3", events[0].Alert.Iter)
	}
}

func TestHealLink(t *testing.T) {
	cluster, err := New(Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Iterations: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	target := Link{LeafOrd: 2, SpineOrd: 3}
	cluster.BreakLink(target, 0.05)
	cluster.Train(func(_ Duration, iter uint32) {
		if iter == 3 {
			cluster.HealLink(target)
		}
	})
	sawLate := false
	for _, e := range mon.Events() {
		if e.Alert.Iter > 4 {
			sawLate = true
		}
	}
	if sawLate {
		t.Fatal("alerts continued after the fault healed")
	}
	if len(mon.Events()) == 0 {
		t.Fatal("fault phase never alerted")
	}
}

func TestDisconnectKnownFault(t *testing.T) {
	cluster, err := New(fastScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	// Known fault BEFORE monitoring: the model must absorb it.
	cluster.DisconnectLink(Link{LeafOrd: 1, SpineOrd: 2})
	mon, err := cluster.Monitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Train(nil)
	if len(mon.Events()) != 0 {
		t.Fatalf("known fault raised alerts: %v", mon.Events()[0].Alert)
	}
	// The model predicts zero on the disconnected port.
	pred := mon.PortPrediction(1)
	if pred == nil || pred[2] != 0 {
		t.Fatalf("prediction does not reflect the known fault: %v", pred)
	}
}

func TestSimulationPredictorFacade(t *testing.T) {
	cluster, err := New(fastScenario(6))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(MonitorConfig{Predictor: Simulation})
	if err != nil {
		t.Fatal(err)
	}
	cluster.BreakLink(Link{LeafOrd: 4, SpineOrd: 2}, 0.05)
	cluster.Train(nil)
	if len(mon.Events()) == 0 {
		t.Fatal("simulation predictor missed the fault")
	}
	if mon.PredictorName() != "simulation" {
		t.Fatalf("predictor = %q", mon.PredictorName())
	}
}

func TestLearnedPredictorFacade(t *testing.T) {
	sc := fastScenario(7)
	sc.Iterations = 10
	cluster, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(MonitorConfig{Predictor: Learned})
	if err != nil {
		t.Fatal(err)
	}
	target := Link{LeafOrd: 6, SpineOrd: 1}
	cluster.BreakLink(target, 0.2) // transient, present during warmup
	cluster.Train(func(_ Duration, iter uint32) {
		if iter == 5 {
			cluster.HealLink(target)
		}
	})
	if mon.Rebaselines() == 0 {
		t.Fatal("learned model never re-baselined")
	}
}

func TestMonitorTwiceFails(t *testing.T) {
	cluster, err := New(fastScenario(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Monitor(MonitorConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Monitor(MonitorConfig{}); err == nil {
		t.Fatal("second Monitor call succeeded")
	}
}

func TestCustomThreshold(t *testing.T) {
	cluster, err := New(fastScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	// A huge threshold suppresses detection of a modest fault.
	mon, err := cluster.Monitor(MonitorConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cluster.BreakLink(Link{LeafOrd: 3, SpineOrd: 1}, 0.05)
	cluster.Train(nil)
	if len(mon.Events()) != 0 {
		t.Fatal("50% threshold still alerted on a 5% fault")
	}
	// But the scores still show it.
	found := false
	for _, s := range mon.IterationScores() {
		if s > 0.01 {
			found = true
		}
	}
	if !found {
		t.Fatal("iteration scores lost the deviation")
	}
}
