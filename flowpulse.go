// Package flowpulse is a library reproduction of "FlowPulse: Catching
// Network Failures in ML Clusters" (HotNets '25): rapid, low-overhead
// detection of silent network faults in per-packet-spraying training
// fabrics, by checking the temporal symmetry of per-port traffic
// volumes during repeated collectives.
//
// The package bundles a packet-level simulator of a lossless Ethernet
// fat tree (the evaluation substrate), NCCL-style ring collectives, a
// RoCE-like transport, and the FlowPulse system itself: in-switch
// telemetry, three load-prediction models, threshold detection, and
// link localization.
//
// Quick start:
//
//	cluster, _ := flowpulse.New(flowpulse.Scenario{
//		Leaves: 32, Spines: 16, BytesPerRank: 16 << 20, Iterations: 6,
//	})
//	mon, _ := cluster.Monitor(flowpulse.MonitorConfig{})
//	cluster.BreakLink(flowpulse.Link{LeafOrd: 3, SpineOrd: 1}, 0.015)
//	cluster.Train(nil)
//	for _, e := range mon.Events() {
//		fmt.Println(e.Alert, e.Verdict)
//	}
package flowpulse

import (
	"fmt"

	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// Scenario describes the simulated cluster and training workload; see
// the field documentation on core.Scenario. The zero value is the
// paper's evaluation setup: a 32-leaf × 16-spine non-blocking fat
// tree, one GPU host per leaf, Ring-AllReduce over all hosts,
// adaptive per-packet spraying, lossless PFC Ethernet at 400 Gb/s.
type Scenario = core.Scenario

// Link names a leaf-spine link by (leaf ordinal, spine ordinal, trunk).
type Link = core.LeafSpineLink

// LinkID is a raw topology link identifier (as reported by the
// remediation timeline and localization verdicts).
type LinkID = topology.LinkID

// Event is one fault detection with its localization verdict.
type Event = core.Event

// Alert is a single port's deviation beyond the detection threshold.
type Alert = detect.Alert

// Verdict is the localizer's attribution of an alert to link(s).
type Verdict = localize.Verdict

// Window is one leaf's measurement of one collective iteration.
type Window = telemetry.Window

// Duration is simulated time (picoseconds); use the sim constants
// re-exported below.
type Duration = sim.Duration

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// CollectiveKind names a workload pattern for Scenario.Collective.
type CollectiveKind = core.CollectiveKind

// Collective kinds for Scenario.Collective.
const (
	RingAllReduce = core.RingAllReduce
	ReduceScatter = core.ReduceScatter
	AllGather     = core.AllGatherKind
	AllToAll      = core.AllToAllKind
)

// PredictorKind selects the load model (§5.2).
type PredictorKind = core.PredictorKind

// The three load models of §5.2.
const (
	Analytical PredictorKind = core.AnalyticalModel
	Simulation PredictorKind = core.SimulationModel
	Learned    PredictorKind = core.LearnedModel
)

// RemediateConfig tunes the closed-loop remediator: alert confirmation
// (K consecutive deviating windows), probed re-admission (M clean probe
// rounds), and BGP-style flap damping. The zero value uses the
// documented defaults.
type RemediateConfig = remediate.Config

// RemediationAction is one entry of the remediation timeline.
type RemediationAction = remediate.Action

// RemediationStats counts remediation activity.
type RemediationStats = remediate.Stats

// MonitorConfig tunes the FlowPulse deployment on a cluster.
type MonitorConfig struct {
	// Predictor selects the load model; defaults to Analytical (the
	// paper's evaluation choice).
	Predictor PredictorKind
	// Threshold is the detection threshold; defaults to the paper's 1%.
	Threshold float64
	// ReferenceIterations sizes the reference run for the Simulation
	// model (default 3).
	ReferenceIterations int
	// OnEvent streams detections as they happen.
	OnEvent func(e Event)
	// Remediate, when non-nil, closes the loop: confirmed faults are
	// quarantined (admin-down + model re-baseline) and probed for
	// re-admission, with flap damping. Use &RemediateConfig{} for the
	// defaults.
	Remediate *RemediateConfig
}

// Cluster is a simulated training cluster: fabric, transport,
// collective workload, and (optionally) a FlowPulse monitor.
type Cluster struct {
	rt  *core.Runtime
	sys *core.System
}

// New builds a cluster from a scenario.
func New(sc Scenario) (*Cluster, error) {
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	return &Cluster{rt: rt}, nil
}

// Monitor deploys FlowPulse on every leaf switch. Call it before
// Train. Deploying twice is an error.
func (c *Cluster) Monitor(cfg MonitorConfig) (*Monitor, error) {
	if c.sys != nil {
		return nil, fmt.Errorf("flowpulse: monitor already attached")
	}
	coreCfg := core.Config{
		Net:       c.rt.Net,
		Stack:     c.rt.Stack,
		Demand:    c.rt.Coll.Demand(),
		Kind:      cfg.Predictor,
		Job:       int(c.rt.Scenario.Job),
		Detect:    detect.Config{Threshold: cfg.Threshold},
		Remediate: cfg.Remediate,
		OnEvent: func(e Event) {
			if cfg.OnEvent != nil {
				cfg.OnEvent(e)
			}
		},
	}
	if coreCfg.Kind == "" {
		coreCfg.Kind = core.AnalyticalModel
	}
	if coreCfg.Kind == core.SimulationModel {
		iters := cfg.ReferenceIterations
		if iters == 0 {
			iters = 3
		}
		ref, err := core.ReferenceRun(c.rt.Scenario, iters)
		if err != nil {
			return nil, err
		}
		coreCfg.ReferenceWindows = ref
	}
	sys, err := core.Attach(coreCfg)
	if err != nil {
		return nil, err
	}
	c.sys = sys
	return &Monitor{sys: sys}, nil
}

// BreakLink injects a silent Bernoulli packet-drop fault on the
// downstream (spine→leaf) direction of a link. Routing does not react:
// the fault is silent.
func (c *Cluster) BreakLink(l Link, dropRate float64) { c.rt.InjectSilentDrop(l, dropRate) }

// BreakLinkUpstream faults the leaf→spine direction instead.
func (c *Cluster) BreakLinkUpstream(l Link, dropRate float64) {
	c.rt.InjectSilentDropUpstream(l, dropRate)
}

// HealLink removes silent faults from a link.
func (c *Cluster) HealLink(l Link) { c.rt.ClearSilent(l) }

// DisconnectLink administratively removes a link: routing reconverges
// around it, exactly like a switch OS disabling a detected-faulty
// port. FlowPulse's analytical model reads the updated routing state
// only if the monitor is attached afterwards (known faults at job
// start, as in §6).
func (c *Cluster) DisconnectLink(l Link) { c.rt.Net.SetLinkAdmin(c.rt.Link(l), false) }

// ReconnectLink administratively restores a disconnected link; routing
// reconverges to include it again.
func (c *Cluster) ReconnectLink(l Link) { c.rt.Net.SetLinkAdmin(c.rt.Link(l), true) }

// FlapLink makes a link periodically degrade: for downFor out of every
// period it silently drops each packet with probability lossRate (both
// directions), then runs clean for the rest of the cycle — the
// intermittent-optics adversary the remediator's flap damping exists
// for.
func (c *Cluster) FlapLink(l Link, period, downFor, phase Duration, lossRate float64) {
	c.rt.InjectLossyFlap(l, period, downFor, phase, lossRate)
}

// Train runs the scenario's training job to completion. onIteration
// (optional) fires after each iteration with the simulated time and
// iteration number — inject or heal faults from it to script
// mid-training events.
func (c *Cluster) Train(onIteration func(now Duration, iter uint32)) {
	var cb func(sim.Time, uint32)
	if onIteration != nil {
		cb = func(now sim.Time, iter uint32) { onIteration(Duration(now), iter) }
	}
	c.rt.StartTraining(cb, nil)
	c.rt.Engine.Run()
	if c.sys != nil {
		c.sys.Flush(c.rt.Engine.Now())
	}
}

// Now returns the current simulated time.
func (c *Cluster) Now() Duration { return Duration(c.rt.Engine.Now()) }

// NetworkStats returns fabric-level packet counters.
func (c *Cluster) NetworkStats() fabric.Stats { return c.rt.Net.Stats() }

// TransportStats returns transport-level counters.
func (c *Cluster) TransportStats() transport.Stats { return c.rt.Stack.Stats() }

// Scenario returns the (defaulted) scenario the cluster was built from.
func (c *Cluster) Scenario() Scenario { return c.rt.Scenario }

// Runtime exposes the underlying simulation objects for advanced use
// (direct fault models, custom telemetry, 3-level fabrics).
func (c *Cluster) Runtime() *core.Runtime { return c.rt }

// Monitor is a deployed FlowPulse system.
type Monitor struct {
	sys *core.System
}

// Events returns every detection so far, in order.
func (m *Monitor) Events() []Event { return m.sys.Events }

// Windows returns the number of measurement windows processed.
func (m *Monitor) Windows() int { return m.sys.Windows }

// IterationScores returns, per iteration, the maximum absolute
// relative deviation observed across all leaves and ports — the
// statistic the paper's classifier thresholds.
func (m *Monitor) IterationScores() map[uint32]float64 { return m.sys.IterationScores() }

// DetectorStats returns detector counters.
func (m *Monitor) DetectorStats() detect.Stats { return m.sys.Detector().Stats() }

// Rebaselines reports how many times the learned model replaced its
// baseline (0 for other predictors).
func (m *Monitor) Rebaselines() int {
	if l := m.sys.Learned(); l != nil {
		return l.Rebaselines
	}
	return 0
}

// PredictorName reports the active load model.
func (m *Monitor) PredictorName() string { return m.sys.Predictor().Name() }

// PortPrediction returns the model's expected per-uplink volume for a
// leaf (nil while a learned model warms up).
func (m *Monitor) PortPrediction(leafOrdinal int) []float64 {
	if !m.sys.Predictor().Ready(leafOrdinal) {
		return nil
	}
	return m.sys.Predictor().PortLoad(leafOrdinal)
}

// RemediationTimeline returns the remediator's action log (nil when
// MonitorConfig.Remediate was not set).
func (m *Monitor) RemediationTimeline() []RemediationAction {
	if r := m.sys.Remediator(); r != nil {
		return r.Timeline
	}
	return nil
}

// RemediationStats returns remediation counters (zero when
// MonitorConfig.Remediate was not set).
func (m *Monitor) RemediationStats() RemediationStats {
	if r := m.sys.Remediator(); r != nil {
		return r.Stats()
	}
	return RemediationStats{}
}

// Quarantined returns the links currently held out of service by the
// remediator, in quarantine order.
func (m *Monitor) Quarantined() []LinkID {
	if r := m.sys.Remediator(); r != nil {
		return r.Quarantined()
	}
	return nil
}

// System exposes the underlying core.System for advanced use.
func (m *Monitor) System() *core.System { return m.sys }
