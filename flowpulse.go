// Package flowpulse is a library reproduction of "FlowPulse: Catching
// Network Failures in ML Clusters" (HotNets '25): rapid, low-overhead
// detection of silent network faults in per-packet-spraying training
// fabrics, by checking the temporal symmetry of per-port traffic
// volumes during repeated collectives.
//
// The package bundles a packet-level simulator of a lossless Ethernet
// fat tree (the evaluation substrate), NCCL-style ring collectives, a
// RoCE-like transport, and the FlowPulse system itself: in-switch
// telemetry, three load-prediction models, threshold detection, and
// link localization.
//
// Quick start:
//
//	cluster, _ := flowpulse.New(flowpulse.Scenario{
//		Leaves: 32, Spines: 16, BytesPerRank: 16 << 20, Iterations: 6,
//	})
//	mon, _ := cluster.Monitor(flowpulse.MonitorConfig{})
//	cluster.BreakLink(flowpulse.Link{LeafOrd: 3, SpineOrd: 1}, 0.015)
//	cluster.Train(nil)
//	for _, e := range mon.Events() {
//		fmt.Println(e.Alert, e.Verdict)
//	}
package flowpulse

import (
	"fmt"
	"io"

	"flowpulse/internal/control"
	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/metrics"
	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
	"flowpulse/internal/resilience"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/trace"
	"flowpulse/internal/transport"
)

// Scenario describes the simulated cluster and training workload; see
// the field documentation on core.Scenario. The zero value is the
// paper's evaluation setup: a 32-leaf × 16-spine non-blocking fat
// tree, one GPU host per leaf, Ring-AllReduce over all hosts,
// adaptive per-packet spraying, lossless PFC Ethernet at 400 Gb/s.
// Populate Scenario.Jobs to run several concurrent training jobs on
// one fabric (§7 "Parallel Jobs").
type Scenario = core.Scenario

// JobSpec describes one training job of a multi-job scenario
// (Scenario.Jobs); see core.JobScenario for the field semantics and
// defaulting rules.
type JobSpec = core.JobScenario

// Link names a leaf-spine link by (leaf ordinal, spine ordinal, trunk).
type Link = core.LeafSpineLink

// DivergenceSpec configures Scenario.Divergence: injected control-plane
// belief/truth splits and the control plane's verification posture.
type DivergenceSpec = core.DivergenceSpec

// StaleSpec is one scheduled link-state advertisement corruption for
// DivergenceSpec.Stale.
type StaleSpec = core.StaleSpec

// ControlStats counts control-plane activity: ChangeSets committed and
// rolled back, verification mismatches, reconciliations, and the
// belief/truth divergence episodes with their durations.
type ControlStats = control.Stats

// LinkID is a raw topology link identifier (as reported by the
// remediation timeline and localization verdicts).
type LinkID = topology.LinkID

// Event is one fault detection with its localization verdict.
type Event = core.Event

// Alert is a single port's deviation beyond the detection threshold.
type Alert = detect.Alert

// Verdict is the localizer's attribution of an alert to link(s).
type Verdict = localize.Verdict

// Window is one leaf's measurement of one collective iteration.
type Window = telemetry.Window

// Duration is simulated time (picoseconds); use the sim constants
// re-exported below.
type Duration = sim.Duration

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// CollectiveKind names a workload pattern for Scenario.Collective.
type CollectiveKind = core.CollectiveKind

// Collective kinds for Scenario.Collective.
const (
	RingAllReduce = core.RingAllReduce
	ReduceScatter = core.ReduceScatter
	AllGather     = core.AllGatherKind
	AllToAll      = core.AllToAllKind
)

// PredictorKind selects the load model (§5.2).
type PredictorKind = core.PredictorKind

// The three load models of §5.2.
const (
	Analytical PredictorKind = core.AnalyticalModel
	Simulation PredictorKind = core.SimulationModel
	Learned    PredictorKind = core.LearnedModel
)

// RemediateConfig tunes the closed-loop remediator: alert confirmation
// (K consecutive deviating windows), probed re-admission (M clean probe
// rounds), and BGP-style flap damping. The zero value uses the
// documented defaults.
type RemediateConfig = remediate.Config

// RemediationAction is one entry of the remediation timeline.
type RemediationAction = remediate.Action

// RemediationStats counts remediation activity.
type RemediationStats = remediate.Stats

// ResilienceConfig tunes the workload re-planner: the goodput fraction
// below which a quarantined leaf triggers a collective re-plan, and
// the smallest ring degraded mode may leave. The zero value uses the
// documented defaults (0.9, 2).
type ResilienceConfig = resilience.Config

// GoodputTimeline accumulates per-iteration training throughput; arm
// one with Cluster.TrackGoodput before Train and read its Report
// afterwards.
type GoodputTimeline = metrics.GoodputTimeline

// GoodputReport summarizes a training run's throughput around a fault:
// baseline/during/post rates, total stall, and time-to-recovery.
type GoodputReport = metrics.GoodputReport

// MonitorConfig tunes the FlowPulse deployment on a cluster.
type MonitorConfig struct {
	// Predictor selects the load model; defaults to Analytical (the
	// paper's evaluation choice).
	Predictor PredictorKind
	// Threshold is the detection threshold; defaults to the paper's 1%.
	Threshold float64
	// ReferenceIterations sizes the reference run for the Simulation
	// model (default 3).
	ReferenceIterations int
	// OnEvent streams detections as they happen.
	OnEvent func(e Event)
	// Remediate, when non-nil, closes the loop: confirmed faults are
	// quarantined (admin-down + model re-baseline) and probed for
	// re-admission, with flap damping. Use &RemediateConfig{} for the
	// defaults.
	Remediate *RemediateConfig
	// Resilience, when non-nil (requires Remediate), extends the loop
	// into the workload: a quarantine that degrades a leaf below the
	// recovery target re-plans the training collective (ring re-rank,
	// or a degraded-mode ring when the leaf is unreachable) at the next
	// iteration barrier, and the load model re-baselines against the
	// new demand matrix. Use &ResilienceConfig{} for the defaults. Not
	// supported with the Simulation predictor.
	Resilience *ResilienceConfig
	// TracePath records the run — every measurement window with the
	// prediction in effect, every detection, every remediation action,
	// and the fault schedule — to a .fpt trace file for offline replay
	// and threshold sweeps with flowpulse-trace. TraceLabel annotates
	// the trace header.
	TracePath, TraceLabel string
	// TraceSink streams the same .fpt recording to an arbitrary writer
	// instead of a file — e.g. a serve.Producer connected to a
	// flowpulse-serve instance, turning the live run into a producer.
	// Mutually exclusive with TracePath (wrap both in an io.MultiWriter
	// to get a local copy while streaming).
	TraceSink io.Writer
}

// Cluster is a simulated training cluster: fabric, transport,
// collective workload, and (optionally) a FlowPulse monitor.
type Cluster struct {
	rt     *core.Runtime
	sys    *core.System
	shared *core.SharedSystem
}

// New builds a cluster from a scenario.
func New(sc Scenario) (*Cluster, error) {
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	return &Cluster{rt: rt}, nil
}

// Monitor deploys FlowPulse on every leaf switch. Call it before
// Train. Deploying twice is an error.
//
// On a multi-job cluster (Scenario.Jobs with two or more entries) this
// deploys the shared monitoring plane: ONE telemetry tap per switch
// feeds a per-job analysis pipeline for every job, and — when
// Remediate is set — a single arbiter quarantines confirmed links
// exactly once, with cross-job corroboration. Per-job results are on
// Monitor.Jobs; the Simulation predictor is not supported there.
func (c *Cluster) Monitor(cfg MonitorConfig) (*Monitor, error) {
	if c.sys != nil || c.shared != nil {
		return nil, fmt.Errorf("flowpulse: monitor already attached")
	}
	if len(c.rt.Jobs) > 1 {
		return c.monitorShared(cfg)
	}
	coreCfg := core.Config{
		Net:        c.rt.Net,
		Control:    c.rt.Plane,
		Stack:      c.rt.Stack,
		Demand:     c.rt.Coll.Demand(),
		Kind:       cfg.Predictor,
		Job:        int(c.rt.Scenario.Job),
		Detect:     detect.Config{Threshold: cfg.Threshold},
		Remediate:  cfg.Remediate,
		Resilience: cfg.Resilience,
		TracePath:  cfg.TracePath,
		TraceLabel: cfg.TraceLabel,
		Trace:      sinkWriter(cfg.TraceSink),
		OnEvent: func(e Event) {
			if cfg.OnEvent != nil {
				cfg.OnEvent(e)
			}
		},
	}
	if coreCfg.Kind == "" {
		coreCfg.Kind = core.AnalyticalModel
	}
	if coreCfg.Kind == core.SimulationModel {
		iters := cfg.ReferenceIterations
		if iters == 0 {
			iters = 3
		}
		ref, err := core.ReferenceRun(c.rt.Scenario, iters)
		if err != nil {
			return nil, err
		}
		coreCfg.ReferenceWindows = ref
	}
	sys, err := core.Attach(coreCfg)
	if err != nil {
		return nil, err
	}
	c.sys = sys
	return &Monitor{sys: sys}, nil
}

// sinkWriter wraps a MonitorConfig.TraceSink into the trace writer the
// core attaches; nil stays nil (tracing off or TracePath-driven).
func sinkWriter(sink io.Writer) *trace.Writer {
	if sink == nil {
		return nil
	}
	return trace.NewWriter(sink)
}

// monitorShared is Monitor's multi-job branch.
func (c *Cluster) monitorShared(cfg MonitorConfig) (*Monitor, error) {
	kind := cfg.Predictor
	if kind == "" {
		kind = core.AnalyticalModel
	}
	if kind == core.SimulationModel {
		return nil, fmt.Errorf("flowpulse: the Simulation predictor needs a per-job reference run and is not supported on multi-job clusters")
	}
	scfg := core.SharedConfig{
		Net: c.rt.Net, Control: c.rt.Plane, Stack: c.rt.Stack, Remediate: cfg.Remediate,
		Resilience: cfg.Resilience,
		TracePath:  cfg.TracePath, TraceLabel: cfg.TraceLabel,
		Trace:      sinkWriter(cfg.TraceSink),
	}
	for _, jr := range c.rt.Jobs {
		scfg.Jobs = append(scfg.Jobs, core.SharedJobConfig{
			Job:     jr.Spec.Job,
			Demand:  jr.Coll.Demand(),
			Kind:    kind,
			Detect:  detect.Config{Threshold: cfg.Threshold},
			OnEvent: cfg.OnEvent,
		})
	}
	shared, err := core.AttachShared(scfg)
	if err != nil {
		return nil, err
	}
	c.shared = shared
	m := &Monitor{shared: shared}
	for _, job := range shared.Jobs() {
		m.jobs = append(m.jobs, &JobMonitor{job: job, pipe: shared.Pipeline(job)})
	}
	return m, nil
}

// BreakLink injects a silent Bernoulli packet-drop fault on the
// downstream (spine→leaf) direction of a link. Routing does not react:
// the fault is silent.
func (c *Cluster) BreakLink(l Link, dropRate float64) { c.rt.InjectSilentDrop(l, dropRate) }

// BreakLinkUpstream faults the leaf→spine direction instead.
func (c *Cluster) BreakLinkUpstream(l Link, dropRate float64) {
	c.rt.InjectSilentDropUpstream(l, dropRate)
}

// HealLink removes silent faults from a link.
func (c *Cluster) HealLink(l Link) { c.rt.ClearSilent(l) }

// DisconnectLink administratively removes a link: routing reconverges
// around it, exactly like a switch OS disabling a detected-faulty
// port. FlowPulse's analytical model reads the updated routing state
// only if the monitor is attached afterwards (known faults at job
// start, as in §6). The change goes through the control plane as a
// verified ChangeSet, like every administrative mutation.
func (c *Cluster) DisconnectLink(l Link) {
	c.rt.Plane.Apply(c.rt.Engine.Now(), "disconnect", []control.Op{{Link: c.rt.Link(l), Up: false}})
}

// ReconnectLink administratively restores a disconnected link; routing
// reconverges to include it again.
func (c *Cluster) ReconnectLink(l Link) {
	c.rt.Plane.Apply(c.rt.Engine.Now(), "reconnect", []control.Op{{Link: c.rt.Link(l), Up: true}})
}

// ControlPlane exposes the cluster's control plane — the believed
// topology view, the ChangeSet ledger, and the divergence episode
// metrics — for advanced use.
func (c *Cluster) ControlPlane() *control.Plane { return c.rt.Plane }

// FlapLink makes a link periodically degrade: for downFor out of every
// period it silently drops each packet with probability lossRate (both
// directions), then runs clean for the rest of the cycle — the
// intermittent-optics adversary the remediator's flap damping exists
// for.
func (c *Cluster) FlapLink(l Link, period, downFor, phase Duration, lossRate float64) {
	c.rt.InjectLossyFlap(l, period, downFor, phase, lossRate)
}

// TrackGoodput arms the per-iteration goodput timeline on the
// (single-job) training loop and returns it. Call before Train; mark
// fault onset on the returned timeline (MarkFault) and read Report
// after training. Repeated calls return the same timeline.
func (c *Cluster) TrackGoodput() *GoodputTimeline {
	if c.rt.Goodput == nil {
		c.rt.Goodput = &metrics.GoodputTimeline{}
	}
	return c.rt.Goodput
}

// Train runs the scenario's training job to completion. onIteration
// (optional) fires after each iteration with the simulated time and
// iteration number — inject or heal faults from it to script
// mid-training events.
func (c *Cluster) Train(onIteration func(now Duration, iter uint32)) {
	var cb func(sim.Time, uint32)
	if onIteration != nil {
		cb = func(now sim.Time, iter uint32) { onIteration(Duration(now), iter) }
	}
	job := c.rt.StartTraining(cb, nil)
	if c.sys != nil {
		if err := c.sys.BindWorkload(job); err != nil {
			panic(err) // scenario collective changed after Monitor validated it
		}
	}
	c.rt.Run()
	c.flush()
}

// TrainAll runs every job of a multi-job scenario to completion (it is
// Train for clusters built with Scenario.Jobs; on a single-job cluster
// it behaves exactly like Train). onIteration, when set, fires after
// each iteration of EACH job.
func (c *Cluster) TrainAll(onIteration func(now Duration, job uint16, iter uint32)) {
	if len(c.rt.Jobs) == 0 {
		job := c.rt.Scenario.Job
		var cb func(now Duration, iter uint32)
		if onIteration != nil {
			cb = func(now Duration, iter uint32) { onIteration(now, job, iter) }
		}
		c.Train(cb)
		return
	}
	var cb func(sim.Time, uint16, uint32)
	if onIteration != nil {
		cb = func(now sim.Time, job uint16, iter uint32) { onIteration(Duration(now), job, iter) }
	}
	jobs := c.rt.StartAllJobs(cb, nil)
	if c.shared != nil {
		for i, j := range jobs {
			if err := c.shared.BindWorkload(c.rt.Jobs[i].Spec.Job, j); err != nil {
				panic(err) // job specs validated when the monitor attached
			}
		}
	}
	c.rt.Run()
	c.flush()
}

func (c *Cluster) flush() {
	if c.sys != nil {
		c.sys.Flush(c.rt.Engine.Now())
	}
	if c.shared != nil {
		c.shared.Flush(c.rt.Engine.Now())
	}
}

// Close releases the worker pool of a sharded cluster (Scenario.Shards
// ≥ 1). It is a no-op for single-threaded clusters and safe to call
// more than once.
func (c *Cluster) Close() { c.rt.Close() }

// Now returns the current simulated time.
func (c *Cluster) Now() Duration { return Duration(c.rt.Engine.Now()) }

// NetworkStats returns fabric-level packet counters.
func (c *Cluster) NetworkStats() fabric.Stats { return c.rt.Net.Stats() }

// TransportStats returns transport-level counters.
func (c *Cluster) TransportStats() transport.Stats { return c.rt.Stack.Stats() }

// Scenario returns the (defaulted) scenario the cluster was built from.
func (c *Cluster) Scenario() Scenario { return c.rt.Scenario }

// Runtime exposes the underlying simulation objects for advanced use
// (direct fault models, custom telemetry, 3-level fabrics).
func (c *Cluster) Runtime() *core.Runtime { return c.rt }

// Monitor is a deployed FlowPulse system: a single-job deployment, or
// — on a multi-job cluster — the shared monitoring plane with one
// analysis pipeline per job (see Jobs).
type Monitor struct {
	sys    *core.System       // single-job form
	shared *core.SharedSystem // multi-job form
	jobs   []*JobMonitor
}

// Jobs returns the per-job monitor handles of a multi-job deployment,
// in Scenario.Jobs order (nil for a single-job monitor).
func (m *Monitor) Jobs() []*JobMonitor { return m.jobs }

// Job returns the handle for one job id (nil if absent or single-job).
func (m *Monitor) Job(id uint16) *JobMonitor {
	for _, j := range m.jobs {
		if j.job == id {
			return j
		}
	}
	return nil
}

// Events returns every detection so far, in order. On a multi-job
// monitor the jobs' events are concatenated in Scenario.Jobs order;
// use Jobs for the per-job view.
func (m *Monitor) Events() []Event {
	if m.sys != nil {
		return m.sys.Events
	}
	var all []Event
	for _, j := range m.jobs {
		all = append(all, j.Events()...)
	}
	return all
}

// Windows returns the number of measurement windows processed (summed
// across jobs on a multi-job monitor).
func (m *Monitor) Windows() int {
	if m.sys != nil {
		return m.sys.Windows
	}
	n := 0
	for _, j := range m.jobs {
		n += j.Windows()
	}
	return n
}

// IterationScores returns, per iteration, the maximum absolute
// relative deviation observed across all leaves and ports — the
// statistic the paper's classifier thresholds. Iteration clocks are
// per job, so on a multi-job monitor this is only defined per job
// (Jobs); it returns nil there.
func (m *Monitor) IterationScores() map[uint32]float64 {
	if m.sys == nil {
		return nil
	}
	return m.sys.IterationScores()
}

// DetectorStats returns detector counters (zero on a multi-job
// monitor, whose detectors are per job).
func (m *Monitor) DetectorStats() detect.Stats {
	if m.sys == nil {
		return detect.Stats{}
	}
	return m.sys.Detector().Stats()
}

// Rebaselines reports how many times the learned model replaced its
// baseline (0 for other predictors and for multi-job monitors).
func (m *Monitor) Rebaselines() int {
	if m.sys == nil {
		return 0
	}
	if l := m.sys.Learned(); l != nil {
		return l.Rebaselines
	}
	return 0
}

// PredictorName reports the active load model.
func (m *Monitor) PredictorName() string {
	if m.sys != nil {
		return m.sys.Predictor().Name()
	}
	return m.jobs[0].pipe.Predictor().Name()
}

// PortPrediction returns the model's expected per-uplink volume for a
// leaf (nil while a learned model warms up, and on multi-job monitors,
// where expectations are per job).
func (m *Monitor) PortPrediction(leafOrdinal int) []float64 {
	if m.sys == nil {
		return nil
	}
	if !m.sys.Predictor().Ready(leafOrdinal) {
		return nil
	}
	return m.sys.Predictor().PortLoad(leafOrdinal)
}

// remediator returns the active control plane from either form.
func (m *Monitor) remediator() *remediate.Remediator {
	if m.sys != nil {
		return m.sys.Remediator()
	}
	return m.shared.Remediator()
}

// RemediationTimeline returns the remediator's action log (nil when
// MonitorConfig.Remediate was not set). On a multi-job monitor this is
// the ONE shared arbiter's log: cross-job confirmations appear here
// once, regardless of how many jobs flagged the link.
func (m *Monitor) RemediationTimeline() []RemediationAction {
	if r := m.remediator(); r != nil {
		return r.Timeline
	}
	return nil
}

// RemediationStats returns remediation counters (zero when
// MonitorConfig.Remediate was not set).
func (m *Monitor) RemediationStats() RemediationStats {
	if r := m.remediator(); r != nil {
		return r.Stats()
	}
	return RemediationStats{}
}

// Quarantined returns the links currently held out of service by the
// remediator, in quarantine order.
func (m *Monitor) Quarantined() []LinkID {
	if r := m.remediator(); r != nil {
		return r.Quarantined()
	}
	return nil
}

// TraceWriter returns the attached trace writer (nil when
// MonitorConfig.TracePath was not set). Harnesses use it to append
// ground-truth fault records alongside the injections they script, and
// to check Err once training ends.
func (m *Monitor) TraceWriter() *trace.Writer {
	if m.sys != nil {
		return m.sys.TraceWriter()
	}
	return m.shared.TraceWriter()
}

// System exposes the underlying core.System for advanced use (nil on a
// multi-job monitor; see SharedSystem).
func (m *Monitor) System() *core.System { return m.sys }

// SharedSystem exposes the underlying shared plane for advanced use
// (nil on a single-job monitor).
func (m *Monitor) SharedSystem() *core.SharedSystem { return m.shared }

// JobMonitor is one job's view of a multi-job monitor: the results of
// that job's analysis pipeline on the shared plane.
type JobMonitor struct {
	job  uint16
	pipe *monitor.Pipeline
}

// ID returns the job id this handle monitors.
func (j *JobMonitor) ID() uint16 { return j.job }

// Events returns this job's detections so far, in order.
func (j *JobMonitor) Events() []Event { return j.pipe.Events }

// Windows returns the number of this job's windows processed.
func (j *JobMonitor) Windows() int { return j.pipe.Windows }

// IterationScores returns this job's per-iteration max deviation.
func (j *JobMonitor) IterationScores() map[uint32]float64 { return j.pipe.IterationScores() }

// Pipeline exposes the underlying analysis pipeline for advanced use.
func (j *JobMonitor) Pipeline() *monitor.Pipeline { return j.pipe }
