package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{50, 10, 30, 10, 0} {
		e.After(d, func(now Time) { fired = append(fired, now) })
	}
	e.Run()
	want := []Time{0, 10, 10, 30, 50}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.After(10, func(Time) { fired = true })
	if !e.Cancel(ref) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(ref) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelFiredEvent(t *testing.T) {
	e := NewEngine()
	ref := e.After(1, func(Time) {})
	e.Run()
	if e.Cancel(ref) {
		t.Fatal("Cancel of already-fired event returned true")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func(now Time) {
		fired = append(fired, now)
		e.After(5, func(now Time) { fired = append(fired, now) })
	})
	end := e.Run()
	if end != 15 {
		t.Fatalf("final time = %v, want 15", end)
	}
	if len(fired) != 2 || fired[1] != 15 {
		t.Fatalf("nested event did not fire at 15: %v", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{10, 20, 30} {
		e.After(d, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v after RunUntil(20), want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("resumed Run fired %d total, want 3", len(fired))
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("idle RunUntil left clock at %v, want 1000", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the run: fired %d events", count)
	}
	// The queue must be resumable after Stop.
	e.Run()
	if count != 10 {
		t.Fatalf("resume after Stop fired %d total, want 10", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.After(100, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(Time) {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.After(5, func(Time) { n++ })
	e.After(10, func(Time) { n++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if n != 1 || e.Now() != 5 {
		t.Fatalf("after one Step: n=%d now=%v", n, e.Now())
	}
	if !e.Step() || e.Step() {
		t.Fatal("Step count mismatch")
	}
}

func TestEnginePendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	e.After(1, func(Time) {})
	ref := e.After(2, func(Time) {})
	e.Cancel(ref)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

// Property: for any batch of randomly ordered delays, events fire in
// nondecreasing time order and all of them fire.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d), func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving cancellations never loses or duplicates the
// surviving events.
func TestEngineCancelProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		e := NewEngine()
		fired := map[int]int{}
		refs := make([]EventRef, n)
		for i := 0; i < int(n); i++ {
			i := i
			refs[i] = e.After(Duration(rng.IntN(100)), func(Time) { fired[i]++ })
		}
		cancelled := map[int]bool{}
		for i := range refs {
			if rng.IntN(2) == 0 {
				e.Cancel(refs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < int(n); i++ {
			want := 1
			if cancelled[i] {
				want = 0
			}
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEventPoolReuse(t *testing.T) {
	e := NewEngine()
	// Exercise the free list across many schedule/fire cycles.
	total := 0
	var tick func(now Time)
	tick = func(now Time) {
		total++
		if total < 1000 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if total != 1000 {
		t.Fatalf("fired %d, want 1000", total)
	}
	if e.Executed() != 1000 {
		t.Fatalf("Executed = %d, want 1000", e.Executed())
	}
}
