package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// stableSortPosts sorts the barrier scratch through the sort.Interface
// on *mergeBuf; the pointer conversion avoids the per-call allocation a
// slice-to-interface conversion would pay.
func stableSortPosts(m *mergeBuf) { sort.Stable(m) }

// Group is a conservative parallel discrete-event scheduler: a set of
// Engines (one per simulation domain) advanced in lockstep time
// windows. Domain 0 is the control domain (monitoring, workload
// orchestration, remediation); domains 1..N-1 are worker domains
// (typically one per switch plus its directly attached hosts).
//
// Synchronization is window-barrier conservative PDES: every window
// covers [start, start+lookahead), where lookahead is the minimum
// cross-domain link latency. Within a window the worker domains run
// concurrently — they cannot affect each other before the horizon, by
// the lookahead property — then the barrier drains cross-domain posts
// in a canonical order, the control domain runs its share of the
// window sequentially (so monitor pipelines observe a consistent
// global state), and control's own posts are drained.
//
// Determinism does not depend on the worker count: the logical
// execution order is a pure function of the domain partition, the
// window schedule, and the canonical (time, from-domain, emission
// index) mailbox drain order. Workers only pack domains onto OS
// threads; runs with 1 worker and 64 workers are bit-identical.
type Group struct {
	engines   []*Engine
	lookahead Duration
	workers   int

	// windowStart/windowEnd bound the window currently executing.
	// They are written by the coordinator before workers are released
	// and are read-only until the barrier, so workers may read them
	// without further synchronization.
	windowStart Time
	windowEnd   Time

	// outbox[from] is the mailbox of posts emitted by domain `from`
	// during the current window. Each is written by exactly one worker
	// (the one executing that domain), so no locking is needed; the
	// barrier drains them all on the coordinator goroutine.
	outbox [][]post
	merged mergeBuf

	running bool
	stopped bool
	closed  bool

	startCh chan Time
	doneWG  sync.WaitGroup
	nextDom atomic.Int64
}

// post is one cross-domain event handoff. Exactly one of fn and tm is
// set. Posts are stored by value in per-domain mailboxes and copied to
// the destination heap at the barrier, so steady-state handoff does
// not allocate.
type post struct {
	at Time
	to int32
	fn Handler
	tm Timer
}

// mergeBuf is the barrier's reusable sort scratch. Sorting is stable
// on time alone: posts are appended in ascending (from-domain,
// emission-index) order, so stability yields the canonical
// (time, from, index) total order without comparing secondary keys.
type mergeBuf struct{ a []*post }

func (m *mergeBuf) Len() int           { return len(m.a) }
func (m *mergeBuf) Less(i, j int) bool { return m.a[i].at < m.a[j].at }
func (m *mergeBuf) Swap(i, j int)      { m.a[i], m.a[j] = m.a[j], m.a[i] }

// GroupConfig configures a Group.
type GroupConfig struct {
	// Domains is the number of domains including the control domain.
	// Must be at least 2 (control plus one worker domain).
	Domains int
	// Lookahead is the synchronization window width: the minimum
	// latency of any cross-domain interaction. Posts between worker
	// domains must land at least this far past the window start.
	Lookahead Duration
	// Workers is the number of concurrent OS workers executing worker
	// domains; 0 defaults to GOMAXPROCS. 1 runs windows inline on the
	// coordinator (same logical schedule, no goroutines). The value
	// never affects simulation results.
	Workers int
}

// NewGroup builds a domain group. Engines are created fresh, clock at
// zero; retrieve them with Engine/Control.
func NewGroup(cfg GroupConfig) *Group {
	if cfg.Domains < 2 {
		panic(fmt.Sprintf("sim: group needs >= 2 domains, got %d", cfg.Domains))
	}
	if cfg.Lookahead <= 0 {
		panic(fmt.Sprintf("sim: group lookahead must be positive, got %v", cfg.Lookahead))
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := cfg.Domains - 1; w > max {
		w = max
	}
	g := &Group{
		engines:   make([]*Engine, cfg.Domains),
		lookahead: cfg.Lookahead,
		workers:   w,
		outbox:    make([][]post, cfg.Domains),
	}
	for d := range g.engines {
		g.engines[d] = &Engine{dom: d, grp: g}
	}
	if g.workers > 1 {
		g.startCh = make(chan Time)
		for i := 0; i < g.workers; i++ {
			go g.worker(i)
		}
	}
	return g
}

// worker executes domains pulled from the shared per-window work queue.
// Domain-to-worker assignment is first-come (work stealing), which is
// safe precisely because domains are isolated within a window; the
// pprof label makes shard imbalance visible in CPU profiles.
func (g *Group) worker(id int) {
	pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(id)), func(context.Context) {
		for end := range g.startCh {
			for {
				d := int(g.nextDom.Add(1)) - 1
				if d >= len(g.engines) {
					break
				}
				g.engines[d].runWindow(end)
			}
			g.doneWG.Done()
		}
	})
}

// Domains returns the number of domains, including control.
func (g *Group) Domains() int { return len(g.engines) }

// Workers returns the effective worker count.
func (g *Group) Workers() int { return g.workers }

// Lookahead returns the synchronization window width.
func (g *Group) Lookahead() Duration { return g.lookahead }

// Engine returns the engine of one domain.
func (g *Group) Engine(dom int) *Engine { return g.engines[dom] }

// Running reports whether a Run is in progress. Outside a run the
// group is single-goroutine and callers may touch any domain directly
// (setup, teardown flushes).
func (g *Group) Running() bool { return g.running }

// Control returns the control domain's engine (domain 0).
func (g *Group) Control() *Engine { return g.engines[0] }

// Post schedules fn at absolute time `at` on domain `to`, emitted by
// domain `from`. During a window, posts between distinct worker
// domains must satisfy at >= windowEnd (the lookahead contract);
// violating it panics, because it means the caller found a
// cross-domain interaction faster than the configured lookahead — a
// partitioning bug. Posts to the control domain may land anywhere in
// the current window (control runs after the barrier). Posts within a
// domain are ordinary local scheduling.
func (g *Group) Post(from, to int, at Time, fn Handler) {
	if fn == nil {
		panic("sim: nil post handler")
	}
	g.post(from, to, post{at: at, to: int32(to), fn: fn}, false)
}

// PostTimer is Post with a pre-bound Timer; steady-state cross-domain
// handoff through pooled timers does not allocate.
func (g *Group) PostTimer(from, to int, at Time, tm Timer) {
	if tm == nil {
		panic("sim: nil post timer")
	}
	g.post(from, to, post{at: at, to: int32(to), tm: tm}, false)
}

// PostLax is Post for callers whose natural delay may undercut the
// lookahead (workload start jitter, background injection gaps): instead
// of panicking, the event is deterministically deferred to the window
// end. The deferral is bounded by the lookahead (sub-microsecond) and
// is identical for every worker count.
func (g *Group) PostLax(from, to int, at Time, fn Handler) {
	if fn == nil {
		panic("sim: nil post handler")
	}
	g.post(from, to, post{at: at, to: int32(to), fn: fn}, true)
}

func (g *Group) post(from int, to int, p post, lax bool) {
	if to < 0 || to >= len(g.engines) {
		panic(fmt.Sprintf("sim: post to unknown domain %d", to))
	}
	if !g.running {
		// Setup phase: single goroutine, schedule directly.
		e := g.engines[to]
		if p.at < e.now {
			p.at = e.now
		}
		e.scheduleLocal(p)
		return
	}
	if to == from {
		g.engines[to].scheduleLocal(p)
		return
	}
	if to != 0 && p.at < g.windowEnd {
		if !lax {
			panic(fmt.Sprintf("sim: post from domain %d to %d at %v undercuts window end %v (lookahead %v)",
				from, to, p.at, g.windowEnd, g.lookahead))
		}
		p.at = g.windowEnd
	}
	if p.at < g.windowStart {
		panic(fmt.Sprintf("sim: post from domain %d to %d at %v before window start %v",
			from, to, p.at, g.windowStart))
	}
	g.outbox[from] = append(g.outbox[from], p)
}

// Run executes all domains until no events remain anywhere or Stop is
// called. It returns the final simulated time, which all domain clocks
// agree on afterwards.
func (g *Group) Run() Time { return g.RunUntil(Never) }

// RunUntil executes events with timestamps <= deadline across all
// domains; see Engine.RunUntil for the clock semantics at the deadline.
func (g *Group) RunUntil(deadline Time) Time {
	if g.running {
		panic("sim: Group.Run called reentrantly")
	}
	if g.closed {
		panic("sim: Group.Run after Close")
	}
	g.running = true
	g.stopped = false
	defer func() { g.running = false }()

	for !g.stopped {
		start := g.minNextTime()
		if start == Never || start > deadline {
			break
		}
		end := start.Add(g.lookahead)
		if end < start { // overflow near Never
			end = Never
		}
		if deadline != Never && end > deadline+1 {
			end = deadline + 1
		}
		g.windowStart, g.windowEnd = start, end

		g.runParallel(end)
		g.drainPosts()
		g.engines[0].runWindow(end)
		g.drainPosts()
		if g.engines[0].stopped {
			g.stopped = true
		}
	}

	final := Time(0)
	for _, e := range g.engines {
		if e.now > final {
			final = e.now
		}
	}
	if deadline != Never && deadline > final && !g.stopped {
		final = deadline
	}
	for _, e := range g.engines {
		if final > e.now {
			e.now = final
		}
	}
	return final
}

// Stop halts a Run in progress at the next window boundary.
func (g *Group) Stop() { g.stopped = true }

// Close shuts down the worker pool. The group must not be used after.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	if g.startCh != nil {
		close(g.startCh)
	}
}

func (g *Group) minNextTime() Time {
	min := Never
	for _, e := range g.engines {
		if next := e.queue.peek(); next != nil && next.at < min {
			min = next.at
		}
	}
	return min
}

// runParallel executes one window over the worker domains (1..N-1).
func (g *Group) runParallel(end Time) {
	if g.workers <= 1 {
		for d := 1; d < len(g.engines); d++ {
			g.engines[d].runWindow(end)
		}
		return
	}
	g.nextDom.Store(1)
	g.doneWG.Add(g.workers)
	for i := 0; i < g.workers; i++ {
		g.startCh <- end
	}
	g.doneWG.Wait()
}

// drainPosts is the barrier: it moves every mailbox entry onto its
// destination heap in the canonical order — time-major, then emitting
// domain, then emission index — so destination-side sequence numbers
// (and therefore intra-destination tie-breaking) are independent of
// how domains were packed onto workers.
func (g *Group) drainPosts() {
	m := g.merged.a[:0]
	for from := range g.outbox {
		ob := g.outbox[from]
		for i := range ob {
			m = append(m, &ob[i])
		}
	}
	if len(m) > 1 {
		g.merged.a = m
		stableSortPosts(&g.merged)
		m = g.merged.a
	}
	for _, p := range m {
		g.engines[p.to].scheduleLocal(*p)
	}
	g.merged.a = m[:0]
	for from := range g.outbox {
		clear(g.outbox[from]) // drop closure/timer refs
		g.outbox[from] = g.outbox[from][:0]
	}
}
