package sim

import "testing"

// Regression: event structs are pooled, and EventRefs are generation-
// stamped. A stale ref (to an event that already fired) must never
// cancel the pooled struct's NEXT occupant. The original bug silently
// killed unrelated events — in the full system, a transport RTO ref
// cancelled a NIC transmit-complete event and wedged the simulation.
func TestStaleEventRefCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	fired := map[string]bool{}

	var stale EventRef
	stale = e.After(1, func(Time) { fired["first"] = true })

	e.Run() // "first" fires; its struct returns to the pool

	// The next scheduled event reuses the pooled struct.
	e.After(1, func(Time) { fired["second"] = true })
	if e.Cancel(stale) {
		t.Fatal("stale ref cancelled something")
	}
	e.Run()
	if !fired["first"] || !fired["second"] {
		t.Fatalf("fired = %v; stale ref killed the recycled event", fired)
	}
}

func TestStaleRefAcrossManyRecycles(t *testing.T) {
	e := NewEngine()
	var refs []EventRef
	count := 0
	for round := 0; round < 50; round++ {
		refs = append(refs, e.After(1, func(Time) { count++ }))
		e.Run()
		// Try every stale ref each round; none may cancel live events.
		for _, r := range refs[:len(refs)-1] {
			if e.Cancel(r) {
				t.Fatal("stale ref cancelled a live event")
			}
		}
	}
	if count != 50 {
		t.Fatalf("fired %d, want 50", count)
	}
}

// A still-pending ref must remain cancellable even after OTHER events
// recycled structs around it.
func TestLiveRefSurvivesPoolChurn(t *testing.T) {
	e := NewEngine()
	fired := false
	long := e.After(1000, func(Time) { fired = true })
	for i := 0; i < 20; i++ {
		e.After(Duration(i+1), func(Time) {})
	}
	e.RunUntil(500)
	if !e.Cancel(long) {
		t.Fatal("live ref not cancellable after pool churn")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired anyway")
	}
}
