package sim

import (
	"fmt"
)

// Handler is a callback invoked when an event fires. The engine passes
// itself so handlers can schedule follow-up events without capturing
// the engine in every closure.
type Handler func(now Time)

// Timer is a pre-bound event callback: a long-lived object whose Fire
// method the engine invokes instead of a fresh closure. Hot paths that
// schedule per-packet work keep one Timer resident (or pooled) and
// rearm it via AtTimer/AfterTimer, so steady-state scheduling performs
// zero heap allocations — storing a pointer in the interface field of a
// pooled event struct does not allocate, while every closure passed to
// At/After does.
type Timer interface {
	Fire(now Time)
}

// event is a scheduled callback. seq breaks ties between events
// scheduled for the same instant so execution order is deterministic
// (FIFO among same-time events). Exactly one of fn and tm is set.
type event struct {
	at      Time
	seq     uint64
	gen     uint64 // incremented on every reuse of this struct
	fn      Handler
	tm      Timer
	stopped bool
	index   int // heap index, -1 when popped
}

// EventRef refers to a scheduled event and allows cancellation. The
// zero EventRef is invalid. Refs are generation-stamped: event structs
// are pooled, so a ref to an already-fired event never aliases the
// struct's next occupant.
type EventRef struct {
	ev  *event
	gen uint64
}

// Valid reports whether the reference points at a scheduled event.
func (r EventRef) Valid() bool { return r.ev != nil }

// eventHeap is a 4-ary min-heap ordered by (at, seq). A hand-rolled
// d-ary heap beats container/heap here by a wide margin: the scheduler
// is the simulator's hottest structure, and the interface-dispatched
// Less/Swap calls plus the binary heap's extra levels account for half
// the profile otherwise.
type eventHeap struct {
	a []*event
}

func eventLess(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) peek() *event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *eventHeap) push(ev *event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	h.a[i].index = i
	h.siftUp(i)
}

func (h *eventHeap) pop() *event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[0].index = 0
	a[n] = nil
	h.a = a[:n]
	if n > 0 {
		h.siftDown(0)
	}
	top.index = -1
	return top
}

func (h *eventHeap) siftUp(i int) {
	a := h.a
	ev := a[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(ev, a[parent]) {
			break
		}
		a[i] = a[parent]
		a[i].index = i
		i = parent
	}
	a[i] = ev
	ev.index = i
}

func (h *eventHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	ev := a[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(a[c], a[best]) {
				best = c
			}
		}
		if !eventLess(a[best], ev) {
			break
		}
		a[i] = a[best]
		a[i].index = i
		i = best
	}
	a[i] = ev
	ev.index = i
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; run independent simulations in separate Engines
// (they share nothing), one per goroutine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	running bool
	stopped bool

	executed uint64 // number of events fired, for diagnostics
	pending  int    // scheduled, uncancelled events (live counter)

	free []*event // recycled event structs

	// dom/grp identify this engine's domain within a Group; grp is nil
	// for a standalone (single-threaded) engine.
	dom int
	grp *Group
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (uncancelled) events. It is
// O(1): the engine maintains a live counter instead of scanning the
// heap, so drivers may poll it in a loop.
func (e *Engine) Pending() int { return e.pending }

// Executed returns the number of events fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		*ev = event{gen: ev.gen + 1}
		return ev
	}
	return &event{}
}

// schedule allocates and enqueues an event at t; the caller attaches
// the callback.
func (e *Engine) schedule(t Time) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	e.pending++
	return ev
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a causality bug in the caller.
func (e *Engine) At(t Time, fn Handler) EventRef {
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := e.schedule(t)
	ev.fn = fn
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// AtTimer schedules tm.Fire to run at absolute time t. Unlike At it
// takes a pre-bound callback object, so steady-state rearming does not
// allocate.
func (e *Engine) AtTimer(t Time, tm Timer) EventRef {
	if tm == nil {
		panic("sim: nil timer")
	}
	ev := e.schedule(t)
	ev.tm = tm
	return EventRef{ev: ev, gen: ev.gen}
}

// AfterTimer schedules tm.Fire to run d after the current time.
func (e *Engine) AfterTimer(d Duration, tm Timer) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtTimer(e.now.Add(d), tm)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or already cancelled event is a no-op and returns false.
func (e *Engine) Cancel(r EventRef) bool {
	ev := r.ev
	if ev == nil || ev.gen != r.gen || ev.stopped || ev.index < 0 {
		return false
	}
	ev.stopped = true
	e.pending--
	return true
}

// Run executes events in timestamp order until the queue is empty or
// Stop is called. It returns the final simulated time.
func (e *Engine) Run() Time {
	return e.RunUntil(Never)
}

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline remain queued; the clock advances to the deadline only
// if an event at or beyond it exists, otherwise it stays at the last
// fired event. It returns the final simulated time.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for e.queue.len() > 0 && !e.stopped {
		next := e.queue.peek()
		if next.at > deadline {
			break
		}
		e.queue.pop()
		if next.stopped {
			e.free = append(e.free, next)
			continue
		}
		if next.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = next.at
		fn, tm := next.fn, next.tm
		e.free = append(e.free, next)
		e.executed++
		e.pending--
		if fn != nil {
			fn(e.now)
		} else {
			tm.Fire(e.now)
		}
	}
	if deadline != Never && deadline > e.now && !e.stopped {
		e.now = deadline
	}
	return e.now
}

// Domain returns this engine's domain id within its Group (0 for a
// standalone engine, which behaves like the control domain).
func (e *Engine) Domain() int { return e.dom }

// Group returns the Group this engine belongs to, or nil for a
// standalone engine.
func (e *Engine) Group() *Group { return e.grp }

// runWindow executes events with timestamps strictly below end — one
// conservative synchronization window. Unlike RunUntil it never
// advances the clock past the last fired event: an idle domain's clock
// simply stays behind until its next event arrives.
func (e *Engine) runWindow(end Time) {
	if e.running {
		panic("sim: Engine window run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for e.queue.len() > 0 && !e.stopped {
		next := e.queue.peek()
		if next.at >= end {
			break
		}
		e.queue.pop()
		if next.stopped {
			e.free = append(e.free, next)
			continue
		}
		if next.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = next.at
		fn, tm := next.fn, next.tm
		e.free = append(e.free, next)
		e.executed++
		e.pending--
		if fn != nil {
			fn(e.now)
		} else {
			tm.Fire(e.now)
		}
	}
}

// scheduleLocal enqueues a drained post on this engine's heap. The
// caller (the group barrier, or the engine's own domain during its
// window) guarantees p.at is not in this engine's past.
func (e *Engine) scheduleLocal(p post) {
	if p.at < e.now {
		panic(fmt.Sprintf("sim: post delivered at %v before domain %d clock %v", p.at, e.dom, e.now))
	}
	ev := e.alloc()
	ev.at = p.at
	ev.seq = e.seq
	e.seq++
	ev.fn = p.fn
	ev.tm = p.tm
	e.queue.push(ev)
	e.pending++
}

// Step fires exactly one pending event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	for e.queue.len() > 0 {
		next := e.queue.pop()
		if next.stopped {
			e.free = append(e.free, next)
			continue
		}
		e.now = next.at
		fn, tm := next.fn, next.tm
		e.free = append(e.free, next)
		e.executed++
		e.pending--
		if fn != nil {
			fn(e.now)
		} else {
			tm.Fire(e.now)
		}
		return true
	}
	return false
}

// Stop halts a Run in progress after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
