package sim

import (
	"testing"
	"testing/quick"
)

// recTimer is a Timer that records its firing for order comparison.
type recTimer struct {
	id    int
	log   *[]firing
	eng   *Engine
	chain []Duration // follow-up delays scheduled on fire
}

type firing struct {
	id int
	at Time
}

func (t *recTimer) Fire(now Time) {
	*t.log = append(*t.log, firing{t.id, now})
	if len(t.chain) > 0 {
		d := t.chain[0]
		t.chain = t.chain[1:]
		t.eng.AfterTimer(d, t)
	}
}

// Property: a schedule executed through typed timers (AtTimer /
// AfterTimer) fires in exactly the same order, at the same times, as
// the identical schedule executed through closure handlers (At /
// After), including follow-up events scheduled from inside callbacks.
func TestTypedTimerOrderMatchesClosures(t *testing.T) {
	f := func(delays []uint16, chains []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		chainFor := func(i int) []Duration {
			if len(chains) == 0 {
				return nil
			}
			chain := make([]Duration, int(chains[i%len(chains)]%3))
			for j := range chain {
				chain[j] = Duration(delays[(i+j+1)%len(delays)])
			}
			return chain
		}
		// Closure-based reference run.
		ce := NewEngine()
		var cLog []firing
		for i, d := range delays {
			id := i
			chain := chainFor(i)
			var fire Handler
			fire = func(now Time) {
				cLog = append(cLog, firing{id, now})
				if len(chain) > 0 {
					d := chain[0]
					chain = chain[1:]
					ce.After(d, fire)
				}
			}
			ce.After(Duration(d), fire)
		}
		ce.Run()

		// Typed-timer run of the same schedule.
		te := NewEngine()
		var tLog []firing
		for i, d := range delays {
			te.AfterTimer(Duration(d), &recTimer{id: i, log: &tLog, eng: te, chain: chainFor(i)})
		}
		te.Run()

		if ce.Executed() != te.Executed() || len(cLog) != len(tLog) {
			return false
		}
		for i := range cLog {
			if cLog[i] != tLog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	var log []firing
	ref := e.AfterTimer(10, &recTimer{id: 1, log: &log})
	e.AfterTimer(20, &recTimer{id: 2, log: &log})
	if !e.Cancel(ref) {
		t.Fatal("Cancel returned false for a pending timer")
	}
	e.Run()
	if len(log) != 1 || log[0].id != 2 {
		t.Fatalf("log = %v, want only timer 2", log)
	}
}

// Property: the O(1) Pending counter agrees with a reference count
// maintained through arbitrary schedule/cancel/run interleavings.
func TestPendingCounterProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		e := NewEngine()
		var refs []EventRef
		live := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // schedule a closure event
				refs = append(refs, e.After(Duration(op)%50, func(Time) {}))
				live++
			case 1: // schedule a typed timer
				var log []firing
				refs = append(refs, e.AfterTimer(Duration(op)%50, &recTimer{id: int(op), log: &log}))
				live++
			case 2: // cancel some earlier ref (may already be cancelled)
				if len(refs) > 0 {
					if e.Cancel(refs[int(op)%len(refs)]) {
						live--
					}
				}
			}
			if e.Pending() != live {
				return false
			}
		}
		for e.Step() {
			live--
			if e.Pending() != live {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// selfRearm rearms itself a fixed number of times, modelling a hot
// path's resident timer.
type selfRearm struct {
	eng  *Engine
	left int
}

func (t *selfRearm) Fire(Time) {
	if t.left > 0 {
		t.left--
		t.eng.AfterTimer(5, t)
	}
}

// Steady-state typed-timer rearming must not allocate: the engine's
// event pool plus the pre-bound callback object make the whole
// schedule-fire-rearm cycle allocation-free.
func TestTimerRearmDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	tm := &selfRearm{eng: e}
	// Warm the event pool.
	tm.left = 8
	e.AfterTimer(5, tm)
	e.Run()

	avg := testing.AllocsPerRun(100, func() {
		tm.left = 4
		e.AfterTimer(5, tm)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("typed-timer rearm allocates %.1f per run, want 0", avg)
	}
}
