package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSerializationDelay(t *testing.T) {
	tests := []struct {
		name    string
		size    int
		rateBPS int64
		want    Duration
	}{
		{"4KiB at 400G", 4096, 400e9, Duration(4096 * 8 * 1e12 / 400e9)},
		{"64B at 400G", 64, 400e9, 1280},                 // 64*8 bits / 400e9 = 1.28ns
		{"1500B at 100G", 1500, 100e9, 120 * Nanosecond}, // 12000 bits / 100Gbps = 120ns
		{"one byte at 1bps", 1, 1, 8 * Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SerializationDelay(tt.size, tt.rateBPS); got != tt.want {
				t.Errorf("SerializationDelay(%d, %d) = %v, want %v", tt.size, tt.rateBPS, got, tt.want)
			}
		})
	}
}

func TestSerializationDelayExactAt400G(t *testing.T) {
	// 400 Gb/s moves 50 bytes per nanosecond; 4096 bytes take exactly
	// 81.92 ns = 81920 ps. This exactness is why Time is in picoseconds.
	got := SerializationDelay(4096, 400e9)
	if got != 81920*Picosecond {
		t.Fatalf("4096B @ 400G = %v, want 81920ps", got)
	}
}

func TestSerializationDelayPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero rate")
		}
	}()
	SerializationDelay(1, 0)
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	if got := t0.Add(50); got != 150 {
		t.Errorf("Add: got %v", got)
	}
	if got := Time(150).Sub(t0); got != 50 {
		t.Errorf("Sub: got %v", got)
	}
	if !t0.Before(150) || t0.After(150) {
		t.Error("Before/After comparisons wrong")
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{5 * Second, "5s"},
		{-2 * Nanosecond, "-2ns"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.d), got, tt.want)
		}
	}
}

func TestStdConversionRoundTrip(t *testing.T) {
	d := 123456 * Nanosecond
	if got := FromStd(time.Duration(123456) * time.Nanosecond); got != d {
		t.Fatalf("FromStd = %v, want %v", got, d)
	}
	if got := Time(d).Std(); got != 123456*time.Nanosecond {
		t.Fatalf("Std = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "spray")
	b := NewRNG(42, "spray")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, name) produced different streams")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNG(42, "spray")
	b := NewRNG(42, "fault")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names collided %d/64 times", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(1, "b")
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(7, "rate")
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.015) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.013 || rate > 0.017 {
		t.Fatalf("Bernoulli(0.015) empirical rate = %v", rate)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(9, "jitter")
	f := func(lo, span uint32) bool {
		l := Duration(lo)
		h := l + Duration(span) + 1
		j := r.Jitter(l, h)
		return j >= l && j < h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if r.Jitter(5, 5) != 5 {
		t.Fatal("degenerate jitter interval must return lo")
	}
}

func TestUniformDuration(t *testing.T) {
	r := NewRNG(11, "u")
	if r.UniformDuration(0) != 0 || r.UniformDuration(-5) != 0 {
		t.Fatal("non-positive max must return 0")
	}
	for i := 0; i < 1000; i++ {
		d := r.UniformDuration(100)
		if d < 0 || d >= 100 {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(13, "exp")
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exponential(1000))
	}
	mean := sum / n
	if mean < 950 || mean > 1050 {
		t.Fatalf("Exponential(1000) empirical mean = %v", mean)
	}
	if r.Exponential(0) != 0 {
		t.Fatal("Exponential(0) must be 0")
	}
}
