package sim

import (
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic random stream. Every stochastic component in
// the simulator draws from its own named stream derived from the
// scenario seed, so adding a new consumer never perturbs the draws seen
// by existing ones, and independent trials are reproducible from their
// seed alone.
type RNG struct {
	*rand.Rand
}

// NewRNG derives an independent stream from a root seed and a stream
// name. The same (seed, name) pair always yields the same sequence.
func NewRNG(seed uint64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &RNG{rand.New(rand.NewPCG(seed, h.Sum64()))}
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// UniformDuration returns a duration uniformly distributed in [0, max).
// A non-positive max returns 0.
func (r *RNG) UniformDuration(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(r.Int64N(int64(max)))
}

// Jitter returns a duration uniformly distributed in [lo, hi). It
// panics if hi < lo.
func (r *RNG) Jitter(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: jitter bounds inverted")
	}
	if hi == lo {
		return lo
	}
	return lo + Duration(r.Int64N(int64(hi-lo)))
}

// PickN returns a uniformly random index in [0, n). It panics if n <= 0.
func (r *RNG) PickN(n int) int { return r.IntN(n) }

// Exponential returns an exponentially distributed duration with the
// given mean.
func (r *RNG) Exponential(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	return Duration(r.ExpFloat64() * float64(mean))
}
