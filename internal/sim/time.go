// Package sim provides the discrete-event simulation substrate used by
// every other FlowPulse package: a picosecond-resolution clock, a
// binary-heap event scheduler, and deterministic named random-number
// streams.
//
// Time is kept in integer picoseconds so that serialization delays of
// high-speed links (e.g. 400 Gb/s, where a 4 KiB frame takes 81.92 ns)
// are represented exactly. Systematic rounding of per-packet delays
// would otherwise bias the per-port volume measurements that FlowPulse
// compares against its load model.
package sim

import (
	"fmt"
	mathbits "math/bits"
	"time"
)

// Time is a point in simulated time, in picoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulated time, in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation time.
const Never Time = 1<<63 - 1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Nanoseconds returns the time as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Std converts a simulated time to a time.Duration from the simulation
// epoch, saturating at the maximum representable value.
func (t Time) Std() time.Duration {
	const maxNS = int64(1<<63-1) / 1000
	if int64(t) > maxNS*1000 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(int64(t) / 1000)
}

// String formats the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds returns the duration as a float64 nanosecond count.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", float64(d)/float64(Nanosecond))
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(d)/float64(Second))
	}
}

// FromNanos converts a nanosecond count to a Duration.
func FromNanos(ns float64) Duration { return Duration(ns * float64(Nanosecond)) }

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// SerializationDelay returns the time to serialize size bytes onto a
// link of rate bits per second. It panics if rateBPS is not positive.
func SerializationDelay(sizeBytes int, rateBPS int64) Duration {
	if rateBPS <= 0 {
		panic("sim: non-positive link rate")
	}
	nbits := uint64(sizeBytes) * 8
	// bits * 1e12 / rate with a 128-bit intermediate: a 4 MiB frame's
	// bit count times 1e12 overflows int64.
	hi, lo := mathbits.Mul64(nbits, uint64(Second))
	q, _ := mathbits.Div64(hi, lo, uint64(rateBPS))
	return Duration(q)
}
