package sim

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
)

// groupTrace records, per domain, the (time, label) sequence of fired
// events. Each domain appends only to its own row, so recording is
// race-free under any worker count; the fingerprint folds the rows in
// domain order.
type groupTrace struct {
	rows [][]string
}

func newGroupTrace(domains int) *groupTrace {
	return &groupTrace{rows: make([][]string, domains)}
}

func (tr *groupTrace) add(dom int, now Time, label string) {
	tr.rows[dom] = append(tr.rows[dom], fmt.Sprintf("%d@%d", now, label_hash(label)))
}

func label_hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func (tr *groupTrace) fingerprint() uint64 {
	h := fnv.New64a()
	for d, row := range tr.rows {
		fmt.Fprintf(h, "dom%d:", d)
		for _, e := range row {
			h.Write([]byte(e))
			h.Write([]byte{';'})
		}
	}
	return h.Sum64()
}

// pingPong builds a deterministic cross-domain workload: every worker
// domain runs a local event train and relays a token to the next
// domain with exactly-lookahead latency, occasionally reporting to
// control within the same window.
func pingPong(t *testing.T, workers int) uint64 {
	t.Helper()
	const domains = 9
	const L = 100 * Nanosecond
	g := NewGroup(GroupConfig{Domains: domains, Lookahead: L, Workers: workers})
	defer g.Close()
	tr := newGroupTrace(domains)

	var relay func(dom, hops int) Handler
	relay = func(dom, hops int) Handler {
		return func(now Time) {
			tr.add(dom, now, fmt.Sprintf("token/%d/%d", dom, hops))
			// Local follow-up work inside the same window.
			g.Engine(dom).After(3*Nanosecond, func(now Time) {
				tr.add(dom, now, fmt.Sprintf("local/%d/%d", dom, hops))
			})
			// Report to control at the current instant (same-window
			// delivery to the control phase).
			g.Post(dom, 0, now, func(now Time) {
				tr.add(0, now, fmt.Sprintf("report/%d/%d", dom, hops))
			})
			if hops > 0 {
				next := 1 + dom%(domains-1)
				g.Post(dom, next, now.Add(L), relay(next, hops-1))
			}
		}
	}

	// Several interleaved tokens starting from different domains at
	// staggered times, so windows carry multiple same-time posts from
	// different senders (exercising the canonical drain order).
	for i := 1; i < domains; i++ {
		g.Engine(i).At(Time(i%3)*Time(Nanosecond), relay(i, 20))
	}
	final := g.Run()
	if final == 0 {
		t.Fatal("simulation did not advance")
	}
	return tr.fingerprint()
}

func TestGroupDeterministicAcrossWorkerCounts(t *testing.T) {
	want := pingPong(t, 1)
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		if got := pingPong(t, w); got != want {
			t.Fatalf("workers=%d: fingerprint %x, want %x (workers=1)", w, got, want)
		}
	}
}

func TestGroupCanonicalDrainOrder(t *testing.T) {
	// Same-timestamp posts from several source domains to one
	// destination must fire in ascending (from-domain, emission-index)
	// order regardless of worker count.
	const L = 50 * Nanosecond
	run := func(workers int) []string {
		g := NewGroup(GroupConfig{Domains: 6, Lookahead: L, Workers: workers})
		defer g.Close()
		var got []string
		at := Time(L) // all posts land exactly at the first window end
		for from := 1; from <= 4; from++ {
			from := from
			g.Engine(from).At(0, func(now Time) {
				for i := 0; i < 3; i++ {
					i := i
					g.Post(from, 5, at, func(Time) {
						got = append(got, fmt.Sprintf("%d.%d", from, i))
					})
				}
			})
		}
		g.Run()
		return got
	}
	want := []string{"1.0", "1.1", "1.2", "2.0", "2.1", "2.2", "3.0", "3.1", "3.2", "4.0", "4.1", "4.2"}
	for _, w := range []int{1, 2, 4} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: order %v, want %v", w, got, want)
			}
		}
	}
}

func TestGroupLookaheadViolationPanics(t *testing.T) {
	g := NewGroup(GroupConfig{Domains: 3, Lookahead: 100 * Nanosecond, Workers: 1})
	defer g.Close()
	g.Engine(1).At(0, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("post undercutting lookahead did not panic")
			}
		}()
		// Cross-domain post 1ns ahead: far below the 100ns window end.
		g.Post(1, 2, now.Add(Nanosecond), func(Time) {})
	})
	g.Run()
}

func TestGroupPostLaxClampsToWindowEnd(t *testing.T) {
	const L = 100 * Nanosecond
	g := NewGroup(GroupConfig{Domains: 3, Lookahead: L, Workers: 1})
	defer g.Close()
	var fired Time
	g.Engine(1).At(0, func(now Time) {
		g.PostLax(1, 2, now.Add(Nanosecond), func(now Time) { fired = now })
	})
	g.Run()
	if fired != Time(L) {
		t.Fatalf("lax post fired at %v, want clamp to window end %v", fired, Time(L))
	}
}

func TestGroupEmptyDomain(t *testing.T) {
	// A domain with no events at all (an "empty shard") must neither
	// stall the window loop nor perturb results.
	g := NewGroup(GroupConfig{Domains: 4, Lookahead: 10 * Nanosecond, Workers: 2})
	defer g.Close()
	fired := 0
	g.Engine(1).At(5*Time(Nanosecond), func(Time) { fired++ })
	g.Engine(1).At(25*Time(Nanosecond), func(Time) { fired++ })
	final := g.Run()
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if final != 25*Time(Nanosecond) {
		t.Fatalf("final time %v, want 25ns", final)
	}
	// Domains 2 and 3 never ran; their clocks still agree at the end.
	for d := 0; d < g.Domains(); d++ {
		if now := g.Engine(d).Now(); now != final {
			t.Fatalf("domain %d clock %v, want %v", d, now, final)
		}
	}
}

func TestGroupZeroLatencyIntraDomain(t *testing.T) {
	// Same-timestamp events within one domain fire in scheduling
	// (FIFO) order — the zero-latency intra-domain case.
	g := NewGroup(GroupConfig{Domains: 2, Lookahead: 10 * Nanosecond, Workers: 1})
	defer g.Close()
	var got []int
	g.Engine(1).At(0, func(now Time) {
		for i := 0; i < 5; i++ {
			i := i
			g.Engine(1).At(now, func(Time) { got = append(got, i) })
		}
	})
	g.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("zero-delay events fired out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestGroupNoCrossTraffic(t *testing.T) {
	// Windows with zero cross-domain posts: the barrier must cost
	// nothing semantically and terminate cleanly.
	g := NewGroup(GroupConfig{Domains: 5, Lookahead: Microsecond, Workers: 3})
	defer g.Close()
	total := make([]int, 5)
	for d := 1; d < 5; d++ {
		d := d
		var tick Handler
		n := 0
		tick = func(now Time) {
			total[d]++
			n++
			if n < 100 {
				g.Engine(d).After(Duration(d)*Nanosecond+Nanosecond, tick)
			}
		}
		g.Engine(d).At(0, tick)
	}
	g.Run()
	for d := 1; d < 5; d++ {
		if total[d] != 100 {
			t.Fatalf("domain %d fired %d, want 100", d, total[d])
		}
	}
}

func TestGroupRunUntilDeadline(t *testing.T) {
	g := NewGroup(GroupConfig{Domains: 3, Lookahead: 10 * Nanosecond, Workers: 1})
	defer g.Close()
	var fired []Time
	for _, at := range []Time{5, 15, 25, 35} {
		at := at * Time(Nanosecond)
		g.Engine(1).At(at, func(now Time) { fired = append(fired, now) })
	}
	final := g.RunUntil(20 * Time(Nanosecond))
	if len(fired) != 2 {
		t.Fatalf("fired %d events by deadline, want 2 (%v)", len(fired), fired)
	}
	if final != 20*Time(Nanosecond) {
		t.Fatalf("final %v, want deadline 20ns", final)
	}
	// Resume to completion.
	final = g.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
	if final != 35*Time(Nanosecond) {
		t.Fatalf("final %v, want 35ns", final)
	}
}

func TestGroupControlStopHaltsRun(t *testing.T) {
	g := NewGroup(GroupConfig{Domains: 3, Lookahead: 10 * Nanosecond, Workers: 1})
	defer g.Close()
	fired := 0
	g.Engine(1).At(0, func(now Time) {
		g.Post(1, 0, now, func(Time) { g.Control().Stop() })
	})
	g.Engine(1).At(Time(Microsecond), func(Time) { fired++ })
	g.Run()
	if fired != 0 {
		t.Fatal("event beyond Stop window fired")
	}
}

func TestGroupSetupPhasePosts(t *testing.T) {
	// Posts before Run (setup) schedule directly; the simulation then
	// sees them like any other initial event.
	g := NewGroup(GroupConfig{Domains: 3, Lookahead: 10 * Nanosecond, Workers: 2})
	defer g.Close()
	var fired Time = -1
	g.PostLax(0, 2, 7*Time(Nanosecond), func(now Time) { fired = now })
	g.Run()
	if fired != 7*Time(Nanosecond) {
		t.Fatalf("setup post fired at %v, want 7ns", fired)
	}
}
