package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flowpulse/internal/core"
	"flowpulse/internal/experiments"
	"flowpulse/internal/sim"
	"flowpulse/internal/trace"
)

// quickTrial is a small faulted run that records to path: 6×3 fabric,
// 2 clean + 5 faulty iterations with a 2% silent drop, background
// noise on (as the evaluation harness runs).
func quickTrial(path string) experiments.Trial {
	return experiments.Trial{
		Scenario: core.Scenario{
			Leaves: 6, Spines: 3,
			BytesPerRank: 2 << 20,
			Seed:         7,
			Background:   4 * sim.Microsecond,
		},
		Fault:      core.LeafSpineLink{LeafOrd: 2, SpineOrd: 1},
		DropRate:   0.02,
		CleanIters: 2,
		FaultIters: 5,
		TracePath:  path,
		TraceLabel: "quick-trial",
	}
}

// record runs the trial and returns its online result plus the raw
// trace bytes.
func record(t *testing.T, tr experiments.Trial) (*experiments.TrialResult, []byte) {
	t.Helper()
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("Trial.Run: %v", err)
	}
	raw, err := os.ReadFile(tr.TracePath)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	return res, raw
}

func replay(t *testing.T, raw []byte, opts trace.ReplayOptions) *trace.ReplayResult {
	t.Helper()
	rr, err := trace.Replay(bytes.NewReader(raw), opts)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return rr
}

func TestReplayMatchesOnline(t *testing.T) {
	tr := quickTrial(filepath.Join(t.TempDir(), "t.fpt"))
	res, raw := record(t, tr)
	if len(res.Events) == 0 {
		t.Fatal("online run raised no events; trial too weak to test replay")
	}

	rr := replay(t, raw, trace.ReplayOptions{})
	if rr.Trailer == nil {
		t.Fatal("no trailer decoded")
	}
	if !rr.Matches() {
		t.Errorf("offline fingerprint %#x != recorded %#x", rr.Fingerprint, rr.Trailer.Fingerprint)
	}
	if got, want := len(rr.Events), len(res.Events); got != want {
		t.Errorf("offline events = %d, online = %d", got, want)
	}
	if got, want := len(rr.RecordedEvents), len(res.Events); got != want {
		t.Errorf("recorded events = %d, online = %d", got, want)
	}
	if got, want := uint64(rr.Windows), rr.Trailer.Windows; got != want {
		t.Errorf("replayed windows = %d, trailer says %d", got, want)
	}
	if got, want := rr.Trailer.Events, uint64(len(res.Events)); got != want {
		t.Errorf("trailer events = %d, online = %d", got, want)
	}
	if len(rr.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(rr.Faults))
	}
	f := rr.Faults[0]
	if f.LeafOrd != tr.Fault.LeafOrd || f.SpineOrd != tr.Fault.SpineOrd ||
		f.Rate != tr.DropRate || int(f.OnsetIter) != tr.CleanIters {
		t.Errorf("fault record %+v does not match injected fault", *f)
	}
	// The offline events must be field-identical to the online ones,
	// not just fingerprint-equal.
	for i := range rr.Events {
		if !reflect.DeepEqual(rr.Events[i], res.Events[i]) {
			t.Errorf("event %d differs:\noffline %+v\nonline  %+v", i, rr.Events[i], res.Events[i])
		}
	}
}

func TestReplayRemediation(t *testing.T) {
	tr := quickTrial(filepath.Join(t.TempDir(), "t.fpt"))
	tr.Remediate = true
	// A harder fault alerts every iteration, so the K=3 consecutive-
	// window streak confirms and quarantine (plus probe rounds) makes
	// it into the trace.
	tr.DropRate = 0.05
	tr.FaultIters = 8
	_, raw := record(t, tr)

	rr := replay(t, raw, trace.ReplayOptions{})
	if rr.Header.Remediate == nil {
		t.Fatal("header lost the remediation config")
	}
	if rr.Remediator == nil {
		t.Fatal("replay did not attach a remediator")
	}
	if !rr.Matches() {
		t.Errorf("offline fingerprint %#x != recorded %#x", rr.Fingerprint, rr.Trailer.Fingerprint)
	}
	if len(rr.RecordedActions) == 0 {
		t.Fatal("online run took no remediation actions; trial too weak to test replay")
	}
	if got, want := len(rr.Actions), len(rr.RecordedActions); got != want {
		t.Fatalf("offline actions = %d, recorded = %d", got, want)
	}
	for i := range rr.Actions {
		if !reflect.DeepEqual(rr.Actions[i], *rr.RecordedActions[i]) {
			t.Errorf("action %d differs:\noffline %+v\nrecorded %+v", i, rr.Actions[i], *rr.RecordedActions[i])
		}
	}
	if got, want := rr.Trailer.Actions, uint64(len(rr.Actions)); got != want {
		t.Errorf("trailer actions = %d, offline = %d", got, want)
	}
}

func TestSweepMatchesOnline(t *testing.T) {
	tr := quickTrial(filepath.Join(t.TempDir(), "t.fpt"))
	res, raw := record(t, tr)

	rr := replay(t, raw, trace.ReplayOptions{})
	got := rr.Samples()
	if !reflect.DeepEqual(got, res.Samples) {
		t.Fatalf("offline samples differ from online:\noffline %+v\nonline  %+v", got, res.Samples)
	}
	// Identical samples make every derived ROC point identical; spot
	// check the paper threshold anyway.
	ths := experiments.DefaultThresholds()
	off := rr.Sweep(ths)
	if len(off) != len(ths) {
		t.Fatalf("sweep returned %d points for %d thresholds", len(off), len(ths))
	}
}

func TestReplayThresholdOverride(t *testing.T) {
	tr := quickTrial(filepath.Join(t.TempDir(), "t.fpt"))
	res, raw := record(t, tr)
	if len(res.Events) == 0 {
		t.Fatal("online run raised no events")
	}

	// An absurdly high threshold suppresses every detection: the
	// what-if stream diverges from the recording by design.
	rr := replay(t, raw, trace.ReplayOptions{Threshold: 10})
	if len(rr.Events) != 0 {
		t.Errorf("events at 1000%% threshold = %d, want 0", len(rr.Events))
	}
	if rr.Matches() {
		t.Error("what-if replay claims to match the recording")
	}
	if got, want := len(rr.RecordedEvents), len(res.Events); got != want {
		t.Errorf("recorded events = %d, online = %d", got, want)
	}
}

func TestReplayLearnedPredictor(t *testing.T) {
	tr := quickTrial(filepath.Join(t.TempDir(), "t.fpt"))
	tr.Remediate = true
	_, raw := record(t, tr)

	rr := replay(t, raw, trace.ReplayOptions{Predictor: "learned"})
	if rr.Remediator != nil {
		t.Error("learned counterfactual must not attach a remediator")
	}
	if rr.Windows == 0 {
		t.Error("no windows replayed")
	}

	if _, err := trace.Replay(bytes.NewReader(raw), trace.ReplayOptions{Predictor: "oracle"}); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestReplayWindowFilter(t *testing.T) {
	tr := quickTrial(filepath.Join(t.TempDir(), "t.fpt"))
	_, raw := record(t, tr)

	full := replay(t, raw, trace.ReplayOptions{})
	clipped := replay(t, raw, trace.ReplayOptions{LastIter: uint32(tr.CleanIters)})
	if clipped.Windows == 0 || clipped.Windows >= full.Windows {
		t.Errorf("clipped windows = %d, full = %d; want 0 < clipped < full", clipped.Windows, full.Windows)
	}
	tail := replay(t, raw, trace.ReplayOptions{FirstIter: uint32(tr.CleanIters + 1)})
	if tail.Windows+clipped.Windows != full.Windows {
		t.Errorf("head %d + tail %d != full %d", clipped.Windows, tail.Windows, full.Windows)
	}
}
