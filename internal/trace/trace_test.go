package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"flowpulse/internal/detect"
	"flowpulse/internal/localize"
	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

func testHeader() Header {
	return Header{
		Label:  "unit",
		Leaves: 4, Spines: 2, HostsPerLeaf: 1, Trunk: 1,
		Jobs: []JobHeader{{Job: 0, Predictor: "analytical", Threshold: 0.01}},
	}
}

// record runs body against a fresh Writer and returns the sealed
// trace bytes.
func record(t *testing.T, h Header, body func(w *Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(h); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	body(w)
	if err := w.Finish(42 * sim.Time(sim.Millisecond)); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

// readAll decodes every record of raw.
func readAll(t *testing.T, raw []byte) (*Header, []*Record) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var recs []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return r.Header(), recs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, rec)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := testHeader()
	h.Shared = true
	h.LinkRateBPS = 400e9 / 8
	h.Jobs = append(h.Jobs, JobHeader{
		Job: 7, Predictor: "learned", Threshold: 0.02,
		MinPredicted: 1 << 16, AggregateSymmetry: true,
	})
	h.Remediate = &remediate.Config{
		ConfirmWindows: 3, CleanProbes: 2,
		ProbeInterval: 100 * sim.Microsecond, ProbePackets: 128, ProbeBytes: 256,
		Penalty: 0.5, Suppress: 0.9, Reuse: 0.1, HalfLife: sim.Millisecond,
		CorroborateWindows: 2, CorroborateHorizon: 50 * sim.Microsecond,
	}
	got, _ := readAll(t, record(t, h, func(w *Writer) {}))
	h.FormatVersion = Version
	if !reflect.DeepEqual(got, &h) {
		t.Fatalf("header round-trip:\n got %+v\nwant %+v", got, &h)
	}
}

func TestWindowRoundTripAggModes(t *testing.T) {
	base := telemetry.Window{
		LeafOrdinal: 1,
		Iter:        3,
		OpenedAt:    sim.Time(10 * sim.Microsecond),
		ClosedAt:    sim.Time(60 * sim.Microsecond),
		Packets:     999,
		PortBytes:   []int64{1000, 2000},
		SenderBytes: [][]int64{{100, 200, 300, 400}, {150, 250, 350, 450}},
	}
	cases := []struct {
		name string
		agg  []int64
	}{
		{"absent", nil},
		{"same", []int64{1000, 2000}},
		{"delta", []int64{1003, 2007}},
		{"explicit", []int64{5, 6, 7}}, // different length than PortBytes
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			win := base
			win.AggPortBytes = tc.agg
			raw := record(t, testHeader(), func(w *Writer) {
				w.Window(&win, false, nil, nil)
			})
			_, recs := readAll(t, raw)
			if len(recs) != 2 || recs[0].Window == nil {
				t.Fatalf("records: %d", len(recs))
			}
			got := recs[0].Window
			want := &WindowRecord{
				Job: win.Job, LeafOrd: win.LeafOrdinal, Iter: win.Iter,
				OpenedAt: win.OpenedAt, ClosedAt: win.ClosedAt,
				Packets: win.Packets, PortBytes: win.PortBytes,
				AggPortBytes: tc.agg, SenderBytes: win.SenderBytes,
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window round-trip:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestWindowRoundTripPredictions(t *testing.T) {
	// Non-finite and extreme values survive the XOR fold bit-for-bit,
	// and an unchanged prediction on the next window decodes back to
	// the same values from its one-byte-per-float encoding.
	port := []float64{math.Inf(1), math.Inf(-1), 1e300, -5e-324, 0}
	sender := [][]float64{{1.5, math.Inf(1)}, {0, -0.0}}
	win := telemetry.Window{
		LeafOrdinal: 2,
		ClosedAt:    sim.Time(5 * sim.Microsecond),
		PortBytes:   []int64{1, 2, 3, 4, 5},
		SenderBytes: [][]int64{{9, 8}, {7, 6}},
	}
	raw := record(t, testHeader(), func(w *Writer) {
		w.Window(&win, true, port, sender)
		win2 := win
		win2.Iter = 1
		win2.ClosedAt += sim.Time(50 * sim.Microsecond)
		w.Window(&win2, true, port, sender)
	})
	_, recs := readAll(t, raw)
	if len(recs) != 3 {
		t.Fatalf("records: %d", len(recs))
	}
	for i, rec := range recs[:2] {
		w := rec.Window
		if !w.Ready {
			t.Fatalf("window %d: not ready", i)
		}
		if !reflect.DeepEqual(w.PortPred, port) || !reflect.DeepEqual(w.SenderPred, sender) {
			t.Fatalf("window %d predictions:\n got %v %v\nwant %v %v",
				i, w.PortPred, w.SenderPred, port, sender)
		}
	}
}

func TestEventActionProbeFaultRoundTrip(t *testing.T) {
	ev := monitor.Event{
		Alert: detect.Alert{
			Leaf: 1, LeafOrdinal: 1, Level: topology.Leaf, Uplink: 1,
			Job: 3, Iter: 4, At: sim.Time(70 * sim.Microsecond),
			Predicted: 1 << 20, Observed: 900_000, Deviation: -0.14,
		},
		Verdict: localize.Verdict{
			Kind:            localize.LocalLink,
			Links:           []topology.LinkID{12},
			AffectedSenders: []int{0, 2},
			CleanSenders:    []int{1, 3},
		},
	}
	act := remediate.Action{
		At: sim.Time(80 * sim.Microsecond), Kind: remediate.ActionQuarantine,
		Link: 12, Detail: "leaf 1 / spine 0",
	}
	fault := FaultRecord{
		At: sim.Time(30 * sim.Microsecond), Kind: "flap",
		LeafOrd: 1, SpineOrd: 0, Upstream: true, Rate: 0.05, OnsetIter: 2,
		FlapPeriod: 2 * sim.Millisecond, FlapDown: sim.Millisecond,
	}
	raw := record(t, testHeader(), func(w *Writer) {
		w.Fault(fault)
		w.Event(ev)
		w.Action(act)
		w.ProbeRound(sim.Time(90*sim.Microsecond), 12, 128, 3)
	})
	_, recs := readAll(t, raw)
	if len(recs) != 5 {
		t.Fatalf("records: %d", len(recs))
	}
	// The decoder resolves Alert.Leaf from the rebuilt topology.
	if !reflect.DeepEqual(recs[0].Fault, &fault) {
		t.Fatalf("fault: got %+v want %+v", recs[0].Fault, &fault)
	}
	if !reflect.DeepEqual(recs[1].Event, &ev) {
		t.Fatalf("event: got %+v want %+v", recs[1].Event, &ev)
	}
	if !reflect.DeepEqual(recs[2].Action, &act) {
		t.Fatalf("action: got %+v want %+v", recs[2].Action, &act)
	}
	wantProbe := &ProbeRecord{At: sim.Time(90 * sim.Microsecond), Link: 12, Sent: 128, Lost: 3}
	if !reflect.DeepEqual(recs[3].Probe, wantProbe) {
		t.Fatalf("probe: got %+v want %+v", recs[3].Probe, wantProbe)
	}
	tr := recs[4].Trailer
	if tr == nil || tr.Events != 1 || tr.Actions != 1 || tr.ProbeRounds != 1 || tr.Faults != 1 {
		t.Fatalf("trailer: %+v", tr)
	}
	if tr.EndTime != 42*sim.Time(sim.Millisecond) {
		t.Fatalf("trailer end time: %v", tr.EndTime)
	}
}

// frameRaw appends payload as one framed record to b, exactly as the
// Writer does.
func frameRaw(b []byte, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
}

func TestReaderSkipsUnknownKinds(t *testing.T) {
	raw := record(t, testHeader(), func(w *Writer) {
		w.ProbeRound(sim.Time(sim.Microsecond), 3, 10, 0)
	})
	// Splice a future-kind record between the probe and the trailer: a
	// version-1 reader must skip it by frame and keep going.
	frames := splitFrames(t, raw)
	spliced := append([]byte{}, raw[:frames[1]]...)
	spliced = frameRaw(spliced, []byte{200, 0xde, 0xad, 0xbe, 0xef})
	spliced = append(spliced, raw[frames[1]:]...)

	_, recs := readAll(t, spliced)
	if len(recs) != 2 || recs[0].Probe == nil || recs[1].Trailer == nil {
		t.Fatalf("unknown kind not skipped cleanly: %d records", len(recs))
	}
}

// splitFrames returns the byte offset of each frame end (magic skipped).
func splitFrames(t *testing.T, raw []byte) []int {
	t.Helper()
	var ends []int
	off := len(Magic)
	for off < len(raw) {
		n, sz := binary.Uvarint(raw[off:])
		if sz <= 0 {
			t.Fatalf("bad frame length at offset %d", off)
		}
		off += sz + int(n) + 4
		ends = append(ends, off)
	}
	return ends
}

func TestReaderErrors(t *testing.T) {
	valid := record(t, testHeader(), func(w *Writer) {
		w.ProbeRound(sim.Time(sim.Microsecond), 3, 10, 0)
	})

	t.Run("bad magic", func(t *testing.T) {
		raw := append([]byte{}, valid...)
		raw[0] = 'X'
		if _, err := NewReader(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated magic", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader(valid[:5])); err == nil {
			t.Fatal("no error")
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		// Patch the header's FormatVersion varint (payload byte 1) and
		// re-checksum the frame.
		raw := append([]byte{}, valid...)
		off := len(Magic)
		n, sz := binary.Uvarint(raw[off:])
		payload := raw[off+sz : off+sz+int(n)]
		payload[1] = Version + 1
		binary.LittleEndian.PutUint32(raw[off+sz+int(n):], crc32.Checksum(payload, castagnoli))
		if _, err := NewReader(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("corrupt frame", func(t *testing.T) {
		raw := append([]byte{}, valid...)
		frames := splitFrames(t, raw)
		raw[frames[0]+3] ^= 0x40 // flip a bit inside the probe payload
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated frame", func(t *testing.T) {
		frames := splitFrames(t, valid)
		r, err := NewReader(bytes.NewReader(valid[:frames[0]+2]))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate header", func(t *testing.T) {
		frames := splitFrames(t, valid)
		raw := append([]byte{}, valid...)
		raw = append(raw, valid[len(Magic):frames[0]]...)
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		for {
			_, err = r.Next()
			if err != nil {
				break
			}
		}
		if !strings.Contains(err.Error(), "duplicate header") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad topology", func(t *testing.T) {
		h := testHeader()
		h.Leaves = 0
		h.Spines = 0
		raw := record(t, h, func(w *Writer) {})
		if _, err := NewReader(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "topology") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestWriterMisuse(t *testing.T) {
	t.Run("begin twice", func(t *testing.T) {
		w := NewWriter(io.Discard)
		if err := w.Begin(testHeader()); err != nil {
			t.Fatal(err)
		}
		if err := w.Begin(testHeader()); err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("record before begin", func(t *testing.T) {
		w := NewWriter(io.Discard)
		w.ProbeRound(0, 1, 1, 0)
		if err := w.Err(); err == nil || !strings.Contains(err.Error(), "before Begin") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("finish before begin", func(t *testing.T) {
		w := NewWriter(io.Discard)
		if err := w.Finish(0); err == nil || !strings.Contains(err.Error(), "Begin") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("record after finish is dropped", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Begin(testHeader()); err != nil {
			t.Fatal(err)
		}
		if err := w.Finish(0); err != nil {
			t.Fatal(err)
		}
		n := buf.Len()
		w.ProbeRound(0, 1, 1, 0)
		if err := w.Err(); err != nil {
			t.Fatalf("post-finish record errored: %v", err)
		}
		if buf.Len() != n {
			t.Fatal("post-finish record reached the stream")
		}
	})
}
