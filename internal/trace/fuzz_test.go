package trace

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
)

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the committed fuzz seed corpus under testdata/fuzz")

// validTrace builds a small complete recording: header, a ready
// window, a probe round, a fault, trailer.
func validTrace() []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(testHeader()); err != nil {
		panic(err)
	}
	win := telemetry.Window{
		LeafOrdinal: 1,
		ClosedAt:    sim.Time(50 * sim.Microsecond),
		Packets:     64,
		PortBytes:   []int64{1000, 2000},
		SenderBytes: [][]int64{{100, 200, 300, 400}, {500, 600, 700, 800}},
	}
	w.Window(&win, true, []float64{1000, 2000}, [][]float64{{100, 200, 300, 400}, {500, 600, 700, 800}})
	w.ProbeRound(sim.Time(60*sim.Microsecond), 3, 10, 1)
	w.Fault(FaultRecord{At: sim.Time(30 * sim.Microsecond), Kind: "bernoulli", LeafOrd: 1, Rate: 0.02, OnsetIter: 2})
	if err := w.Finish(sim.Time(sim.Millisecond)); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReaderRobust feeds arbitrary bytes through the reader: it must
// reject garbage with an error, never panic, and never allocate out
// of proportion to the input.
func FuzzReaderRobust(f *testing.F) {
	valid := validTrace()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated mid-trailer
	f.Add(valid[:len(Magic)])   // magic only
	f.Add([]byte{})
	corrupt := append([]byte{}, valid...)
	corrupt[20] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A stream of len(data) bytes can hold at most len(data)
		// records (every frame is ≥ 1 byte + CRC); anything more means
		// the reader is spinning.
		for i := 0; i <= len(data); i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
		t.Fatalf("reader produced more records than the stream can hold")
	})
}

// FuzzWindowRoundTrip drives scalar window fields and predictions
// through a write→read cycle and demands exact reconstruction,
// including the XOR fold across two consecutive windows of the same
// leaf.
func FuzzWindowRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint8(1), uint32(3), int64(100), int64(1000), int64(2000), int64(7), 1.5, -2.5, true)
	f.Add(uint16(9), uint8(0), uint32(0), int64(-5), int64(0), int64(-1), int64(2), math.Inf(1), 0.0, true)
	f.Add(uint16(1), uint8(3), uint32(1<<30), int64(1)<<60, int64(-1)<<60, int64(1), int64(0), 1e-300, -1e300, false)
	f.Fuzz(func(t *testing.T, job uint16, leafOrd uint8, iter uint32, packets, b0, b1, agg int64, p0, p1 float64, ready bool) {
		win := telemetry.Window{
			Job:         job,
			LeafOrdinal: int(leafOrd % 4),
			Iter:        iter,
			OpenedAt:    sim.Time(packets),
			ClosedAt:    sim.Time(packets) + sim.Time(50*sim.Microsecond),
			Packets:     packets,
			PortBytes:   []int64{b0, b1},
			SenderBytes: [][]int64{{b0 + agg, b1}, {agg, b0 ^ b1}},
		}
		switch agg & 3 {
		case 1:
			win.AggPortBytes = []int64{b0, b1}
		case 2:
			win.AggPortBytes = []int64{b0 + agg, b1 - agg}
		case 3:
			win.AggPortBytes = []int64{agg, b0, b1}
		}
		port := []float64{p0, p1}
		sender := [][]float64{{p1, p0}, {p0 / 2, p1 * 3}}

		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Begin(testHeader()); err != nil {
			t.Fatal(err)
		}
		w.Window(&win, ready, port, sender)
		win2 := win
		win2.ClosedAt += sim.Time(50 * sim.Microsecond)
		w.Window(&win2, ready, port, sender) // unchanged prediction: pure XOR-fold path
		if err := w.Finish(win2.ClosedAt); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []*telemetry.Window{&win, &win2} {
			rec, err := r.Next()
			if err != nil {
				t.Fatalf("window %d: %v", i, err)
			}
			g := rec.Window
			if g == nil {
				t.Fatalf("window %d: wrong record kind %d", i, rec.Kind)
			}
			if g.Job != want.Job || g.LeafOrd != want.LeafOrdinal || g.Iter != want.Iter ||
				g.OpenedAt != want.OpenedAt || g.ClosedAt != want.ClosedAt || g.Packets != want.Packets {
				t.Fatalf("window %d scalars: got %+v want %+v", i, g, want)
			}
			if !reflect.DeepEqual(g.PortBytes, want.PortBytes) ||
				!reflect.DeepEqual(g.AggPortBytes, want.AggPortBytes) ||
				!reflect.DeepEqual(g.SenderBytes, want.SenderBytes) {
				t.Fatalf("window %d counters: got %+v want %+v", i, g, want)
			}
			if g.Ready != ready {
				t.Fatalf("window %d ready: %v", i, g.Ready)
			}
			if ready {
				if !floatsBitEqual(g.PortPred, port) {
					t.Fatalf("window %d port pred: got %v want %v", i, g.PortPred, port)
				}
				for u := range sender {
					if !floatsBitEqual(g.SenderPred[u], sender[u]) {
						t.Fatalf("window %d sender pred row %d: got %v want %v", i, u, g.SenderPred[u], sender[u])
					}
				}
			}
		}
	})
}

// floatsBitEqual compares by bit pattern, so NaN inputs still have a
// well-defined round-trip requirement.
func floatsBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestRegenFuzzCorpus rewrites the committed seed corpus (the same
// inputs the f.Add calls register, in `go test fuzz v1` form) when run
// with -regen-corpus, mirroring the golden files' -update convention.
func TestRegenFuzzCorpus(t *testing.T) {
	if !*regenCorpus {
		t.Skip("run with -regen-corpus to rewrite testdata/fuzz")
	}
	valid := validTrace()
	corrupt := append([]byte{}, valid...)
	corrupt[20] ^= 0xff
	write := func(fuzz, name string, lines ...string) {
		dir := filepath.Join("testdata", "fuzz", fuzz)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n"
		for _, l := range lines {
			body += l + "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("FuzzReaderRobust", "seed-valid", fmt.Sprintf("[]byte(%q)", valid))
	write("FuzzReaderRobust", "seed-truncated", fmt.Sprintf("[]byte(%q)", valid[:len(valid)-5]))
	write("FuzzReaderRobust", "seed-magic-only", fmt.Sprintf("[]byte(%q)", valid[:len(Magic)]))
	write("FuzzReaderRobust", "seed-corrupt", fmt.Sprintf("[]byte(%q)", corrupt))
	write("FuzzWindowRoundTrip", "seed-basic",
		"uint16(0)", "byte(1)", "uint32(3)", "int64(100)", "int64(1000)", "int64(2000)", "int64(7)",
		"float64(1.5)", "float64(-2.5)", "bool(true)")
	write("FuzzWindowRoundTrip", "seed-extremes",
		"uint16(1)", "byte(3)", "uint32(1073741824)", "int64(1152921504606846976)",
		"int64(-1152921504606846976)", "int64(1)", "int64(0)",
		"float64(1e-300)", "float64(-1e+300)", "bool(false)")
}
