package trace

import (
	"fmt"
	"io"

	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/metrics"
	"flowpulse/internal/monitor"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// ReplayOptions are the what-if knobs of an offline replay. The zero
// value replays the recording exactly as it ran online.
type ReplayOptions struct {
	// Threshold overrides every job's detection threshold (0: recorded).
	Threshold float64
	// Predictor selects the offline load model: "" or "recorded" uses
	// the per-window prediction snapshots; "learned" trains a fresh
	// learned model on the replayed windows (the would-the-learned-
	// model-have-caught-it counterfactual). Remediation is skipped for
	// "learned": its quarantine schedule could not match the recorded
	// probe stream.
	Predictor string
	// FirstIter/LastIter clip the replay to an iteration range
	// (0: open end).
	FirstIter, LastIter uint32
}

// JobReplay is one job's offline pipeline after a replay.
type JobReplay struct {
	Job uint16
	// Pipeline holds the offline Scores and Events, exactly as a
	// monitor.Pipeline accumulates them online.
	Pipeline *monitor.Pipeline
	// MaxIter is the highest iteration any replayed window carried.
	MaxIter uint32
}

// ReplayResult is everything an offline replay produced.
type ReplayResult struct {
	Header *Header
	Topo   *topology.Topology
	Jobs   []*JobReplay

	// Events and Actions are the offline detection/remediation stream
	// in emission order; Fingerprint is its FNV-64a sum. On a replay
	// with no overrides it must equal Trailer.Fingerprint — that is the
	// bit-identical-replay guarantee the simtest oracle enforces.
	Events      []monitor.Event
	Actions     []remediate.Action
	Fingerprint uint64

	// Remediator is the offline control plane (nil when the recording
	// ran without one, or under the learned-predictor counterfactual).
	Remediator *remediate.Remediator

	// Faults is the recorded ground-truth fault schedule; Windows
	// counts replayed windows; Trailer is nil for truncated recordings.
	Faults  []*FaultRecord
	Windows int
	Trailer *Trailer

	// RecordedEvents and RecordedActions are the online streams as
	// decoded from the trace, for side-by-side comparison.
	RecordedEvents  []*monitor.Event
	RecordedActions []*remediate.Action
}

// Matches reports whether the offline stream reproduced the online one
// bit-identically (false when the recording has no trailer).
func (r *ReplayResult) Matches() bool {
	return r.Trailer != nil && r.Fingerprint == r.Trailer.Fingerprint
}

// Samples labels every replayed (job, iteration) with its offline
// detection score and the ground-truth fault schedule — the exact
// sample construction the online evaluation uses, so ROC points from
// one recording match re-simulated ones.
func (r *ReplayResult) Samples() []metrics.Sample {
	var out []metrics.Sample
	for _, jr := range r.Jobs {
		scores := jr.Pipeline.IterationScores()
		for iter := uint32(1); iter <= jr.MaxIter; iter++ {
			out = append(out, metrics.Sample{Score: scores[iter], Positive: faultActiveAt(r.Faults, iter)})
		}
	}
	return out
}

// Sweep computes ROC points across thresholds from this one replay.
// Scores are threshold-independent, so a single recording answers the
// whole sweep — fig5a without re-simulation.
func (r *ReplayResult) Sweep(thresholds []float64) []metrics.ROCPoint {
	return metrics.ROC(r.Samples(), thresholds)
}

// faultActiveAt reports whether any recorded fault is active during
// iter: injected before it (strictly after OnsetIter, matching the
// online evaluation's "faulty from the iteration after onset" label)
// and not yet cleared.
func faultActiveAt(faults []*FaultRecord, iter uint32) bool {
	for _, f := range faults {
		if f.Clear || iter <= f.OnsetIter {
			continue
		}
		cleared := false
		for _, c := range faults {
			if c.Clear && sameFaultSite(c, f) && c.OnsetIter >= f.OnsetIter && iter > c.OnsetIter {
				cleared = true
				break
			}
		}
		if !cleared {
			return true
		}
	}
	return false
}

func sameFaultSite(a, b *FaultRecord) bool {
	return a.LeafOrd == b.LeafOrd && a.SpineOrd == b.SpineOrd && a.Trunk == b.Trunk && a.Upstream == b.Upstream
}

// replayPredictor serves the recorded per-window prediction snapshot.
// It implements IterPredictor so the detector takes the same
// iteration-aligned code path it took online; every method answers
// from the window currently being replayed, which is exactly the
// snapshot the online detector consumed for it.
type replayPredictor struct {
	ready  bool
	port   []float64
	sender [][]float64
}

func (p *replayPredictor) Name() string                         { return "recorded" }
func (p *replayPredictor) Ready(int) bool                       { return p.ready }
func (p *replayPredictor) PortLoad(int) []float64               { return p.port }
func (p *replayPredictor) SenderLoad(int) [][]float64           { return p.sender }
func (p *replayPredictor) PortLoadAt(int, uint32) []float64     { return p.port }
func (p *replayPredictor) SenderLoadAt(int, uint32) [][]float64 { return p.sender }

// offlinePlane answers the remediator's control-plane calls during
// replay: quarantine/re-admit ChangeSets commit unconditionally as
// no-ops (there is no fabric to push to), reconciliation never finds
// divergence (the recording carries no belief/truth state to
// re-derive, so divergence runs replay for their data, not their
// fingerprints — see DESIGN.md decision 15), and probes queue until
// the recorded round result reaches them in the stream — at exactly
// the position (between ticks) the callbacks fired online.
type offlinePlane struct {
	topo    *topology.Topology
	pending map[topology.LinkID][]func(sim.Time, bool)
}

func (f *offlinePlane) Topology() *topology.Topology              { return f.topo }
func (f *offlinePlane) Quarantine(sim.Time, topology.LinkID) bool { return true }
func (f *offlinePlane) Readmit(sim.Time, topology.LinkID) bool    { return true }
func (f *offlinePlane) Reconcile(sim.Time) bool                   { return false }
func (f *offlinePlane) Tick(sim.Time)                             {}
func (f *offlinePlane) ProbeLink(link topology.LinkID, _ fabric.Direction, _ int, onResult func(sim.Time, bool)) {
	f.pending[link] = append(f.pending[link], onResult)
}

// deliver resolves one recorded probe round against the queued
// callbacks. The per-callback split of losses is immaterial — the
// remediator only counts them — so the first Lost callbacks report
// undelivered. Rounds with no queued probes (a what-if override
// diverged from the recorded quarantine schedule) are ignored.
func (f *offlinePlane) deliver(p *ProbeRecord) {
	cbs := f.pending[p.Link]
	if len(cbs) == 0 {
		return
	}
	delete(f.pending, p.Link)
	for i, cb := range cbs {
		cb(p.At, i >= p.Lost)
	}
}

// replayJob is one job's offline stack while the stream is replayed.
type replayJob struct {
	jr      *JobReplay
	pred    *replayPredictor // nil under the learned counterfactual
	learned *predict.Learned // nil unless Predictor == "learned"
}

// Replay runs a recorded trace back through the detect → localize →
// remediate stack offline, entirely without the fabric.
func Replay(src io.Reader, opts ReplayOptions) (*ReplayResult, error) {
	rd, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	hdr, topo := rd.Header(), rd.Topo()
	if len(hdr.Jobs) == 0 {
		return nil, fmt.Errorf("trace: header lists no jobs")
	}
	useLearned := false
	switch opts.Predictor {
	case "", "recorded":
	case "learned":
		useLearned = true
	default:
		return nil, fmt.Errorf("trace: unknown replay predictor %q (want recorded or learned)", opts.Predictor)
	}

	res := &ReplayResult{Header: hdr, Topo: topo}
	fp := newFP()

	faults := predict.NewFaultSet()
	fab := &offlinePlane{topo: topo, pending: map[topology.LinkID][]func(sim.Time, bool){}}
	if hdr.Remediate != nil && !useLearned {
		res.Remediator = remediate.New(fab, faults, nil, *hdr.Remediate)
		res.Remediator.OnAction = func(a remediate.Action) {
			fpAction(&fp, &a)
			res.Actions = append(res.Actions, a)
		}
	}

	jobs := make(map[uint16]*replayJob, len(hdr.Jobs))
	for _, jh := range hdr.Jobs {
		dcfg := detect.Config{
			Threshold:         jh.Threshold,
			MinPredicted:      jh.MinPredicted,
			AggregateSymmetry: jh.AggregateSymmetry,
			CEDiscount:        jh.CEDiscount,
		}
		if opts.Threshold != 0 {
			dcfg.Threshold = opts.Threshold
		}
		j := &replayJob{jr: &JobReplay{Job: jh.Job}}
		var pred predict.Predictor
		if useLearned {
			j.learned = predict.NewLearned(len(topo.Leaves()), predict.LearnedConfig{})
			pred = j.learned
		} else {
			j.pred = &replayPredictor{}
			pred = j.pred
		}
		det := detect.New(topo, pred, dcfg)
		det.SetKnownFaults(faults)
		pc := monitor.PipelineConfig{
			Pred:     pred,
			Detect:   det,
			Localize: localize.New(topo, det.Threshold(), 0),
			OnEvent: func(e monitor.Event) {
				fpEvent(&fp, &e)
				res.Events = append(res.Events, e)
			},
		}
		if j.learned != nil {
			pc.Observer = j.learned
		}
		if res.Remediator != nil {
			pc.Remediate = res.Remediator
		}
		j.jr.Pipeline = monitor.NewPipeline(pc)
		if jobs[jh.Job] != nil {
			return nil, fmt.Errorf("trace: duplicate job %d in header", jh.Job)
		}
		jobs[jh.Job] = j
		res.Jobs = append(res.Jobs, j.jr)
	}
	// A single-system recording routes every window through its one
	// pipeline, exactly as core.System's collector does online; a
	// shared-plane recording demuxes by job id.
	route := func(job uint16) *replayJob {
		if hdr.Shared {
			return jobs[job]
		}
		return jobs[hdr.Jobs[0].Job]
	}

	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Kind {
		case KindWindow:
			wr := rec.Window
			if opts.FirstIter > 0 && wr.Iter < opts.FirstIter {
				continue
			}
			if opts.LastIter > 0 && wr.Iter > opts.LastIter {
				continue
			}
			j := route(wr.Job)
			if j == nil {
				return nil, fmt.Errorf("trace: window for job %d not in header", wr.Job)
			}
			if wr.LeafOrd < 0 || wr.LeafOrd >= len(topo.Leaves()) {
				return nil, fmt.Errorf("trace: window leaf ordinal %d out of range", wr.LeafOrd)
			}
			if j.pred != nil {
				j.pred.ready = wr.Ready
				j.pred.port = wr.PortPred
				j.pred.sender = wr.SenderPred
			}
			if wr.Iter > j.jr.MaxIter {
				j.jr.MaxIter = wr.Iter
			}
			j.jr.Pipeline.OnWindow(&telemetry.Window{
				Leaf:         topo.Leaves()[wr.LeafOrd],
				LeafOrdinal:  wr.LeafOrd,
				Job:          wr.Job,
				Iter:         wr.Iter,
				PortBytes:    wr.PortBytes,
				SenderBytes:  wr.SenderBytes,
				Packets:      wr.Packets,
				CEBytes:      wr.CEBytes,
				AggPortBytes: wr.AggPortBytes,
				OpenedAt:     wr.OpenedAt,
				ClosedAt:     wr.ClosedAt,
			})
			res.Windows++
		case KindProbe:
			fab.deliver(rec.Probe)
		case KindEvent:
			res.RecordedEvents = append(res.RecordedEvents, rec.Event)
		case KindAction:
			res.RecordedActions = append(res.RecordedActions, rec.Action)
		case KindFault:
			res.Faults = append(res.Faults, rec.Fault)
		case KindTrailer:
			res.Trailer = rec.Trailer
		}
	}
	res.Fingerprint = fp.h
	return res, nil
}
