package trace

import (
	"fmt"
	"io"

	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/metrics"
	"flowpulse/internal/monitor"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// ReplayOptions are the what-if knobs of an offline replay. The zero
// value replays the recording exactly as it ran online.
type ReplayOptions struct {
	// Threshold overrides every job's detection threshold (0: recorded).
	Threshold float64
	// Predictor selects the offline load model: "" or "recorded" uses
	// the per-window prediction snapshots; "learned" trains a fresh
	// learned model on the replayed windows (the would-the-learned-
	// model-have-caught-it counterfactual). Remediation is skipped for
	// "learned": its quarantine schedule could not match the recorded
	// probe stream.
	Predictor string
	// FirstIter/LastIter clip the replay to an iteration range
	// (0: open end).
	FirstIter, LastIter uint32
	// NoHistory drops per-window retention (Scores, Events, Actions,
	// recorded streams): the replay keeps only fingerprints, counters
	// and callbacks. Long-running consumers (flowpulse-serve sessions)
	// set it so memory stays flat however long the stream runs;
	// ReplayResult.Samples and Sweep are unavailable with it.
	NoHistory bool
}

// JobReplay is one job's offline pipeline after a replay.
type JobReplay struct {
	Job uint16
	// Pipeline holds the offline Scores and Events, exactly as a
	// monitor.Pipeline accumulates them online.
	Pipeline *monitor.Pipeline
	// MaxIter is the highest iteration any replayed window carried.
	MaxIter uint32
}

// ReplayResult is everything an offline replay produced.
type ReplayResult struct {
	Header *Header
	Topo   *topology.Topology
	Jobs   []*JobReplay

	// Events and Actions are the offline detection/remediation stream
	// in emission order; Fingerprint is its FNV-64a sum. On a replay
	// with no overrides it must equal Trailer.Fingerprint — that is the
	// bit-identical-replay guarantee the simtest oracle enforces.
	Events      []monitor.Event
	Actions     []remediate.Action
	Fingerprint uint64

	// BucketFingerprint is the order-insensitive variant: events fold
	// into one FNV-64a stream per (job, leaf) bucket — the subsequence
	// order a sharded consumer preserves — and the per-bucket sums XOR
	// together. flowpulse-serve's fan-out ingestion path, which
	// processes (job, leaf) streams on concurrent shards, reproduces
	// exactly this sum; when all events came from a single bucket it
	// equals Fingerprint. Actions never fold here (fan-out streams run
	// without a remediator).
	BucketFingerprint uint64

	// EventCount and ActionCount survive NoHistory replays.
	EventCount, ActionCount int

	// Remediator is the offline control plane (nil when the recording
	// ran without one, or under the learned-predictor counterfactual).
	Remediator *remediate.Remediator

	// Faults is the recorded ground-truth fault schedule; Windows
	// counts replayed windows; Trailer is nil for truncated recordings.
	Faults  []*FaultRecord
	Windows int
	Trailer *Trailer

	// RecordedEvents and RecordedActions are the online streams as
	// decoded from the trace, for side-by-side comparison.
	RecordedEvents  []*monitor.Event
	RecordedActions []*remediate.Action
}

// Matches reports whether the offline stream reproduced the online one
// bit-identically (false when the recording has no trailer).
func (r *ReplayResult) Matches() bool {
	return r.Trailer != nil && r.Fingerprint == r.Trailer.Fingerprint
}

// Samples labels every replayed (job, iteration) with its offline
// detection score and the ground-truth fault schedule — the exact
// sample construction the online evaluation uses, so ROC points from
// one recording match re-simulated ones.
func (r *ReplayResult) Samples() []metrics.Sample {
	var out []metrics.Sample
	for _, jr := range r.Jobs {
		scores := jr.Pipeline.IterationScores()
		for iter := uint32(1); iter <= jr.MaxIter; iter++ {
			out = append(out, metrics.Sample{Score: scores[iter], Positive: faultActiveAt(r.Faults, iter)})
		}
	}
	return out
}

// Sweep computes ROC points across thresholds from this one replay.
// Scores are threshold-independent, so a single recording answers the
// whole sweep — fig5a without re-simulation.
func (r *ReplayResult) Sweep(thresholds []float64) []metrics.ROCPoint {
	return metrics.ROC(r.Samples(), thresholds)
}

// faultActiveAt reports whether any recorded fault is active during
// iter: injected before it (strictly after OnsetIter, matching the
// online evaluation's "faulty from the iteration after onset" label)
// and not yet cleared.
func faultActiveAt(faults []*FaultRecord, iter uint32) bool {
	for _, f := range faults {
		if f.Clear || iter <= f.OnsetIter {
			continue
		}
		cleared := false
		for _, c := range faults {
			if c.Clear && sameFaultSite(c, f) && c.OnsetIter >= f.OnsetIter && iter > c.OnsetIter {
				cleared = true
				break
			}
		}
		if !cleared {
			return true
		}
	}
	return false
}

func sameFaultSite(a, b *FaultRecord) bool {
	return a.LeafOrd == b.LeafOrd && a.SpineOrd == b.SpineOrd && a.Trunk == b.Trunk && a.Upstream == b.Upstream
}

// SnapshotPredictor serves a per-window recorded prediction snapshot.
// It implements predict.IterPredictor so the detector takes the same
// iteration-aligned code path it took online; every method answers
// from the window currently being replayed, which is exactly the
// snapshot the online detector consumed for it. The offline replay and
// flowpulse-serve's fan-out buckets both drive their pipelines with
// one.
type SnapshotPredictor struct {
	ready  bool
	port   []float64
	sender [][]float64
}

// Set loads the snapshot recorded with the window about to be fed.
func (p *SnapshotPredictor) Set(ready bool, port []float64, sender [][]float64) {
	p.ready, p.port, p.sender = ready, port, sender
}

func (p *SnapshotPredictor) Name() string                         { return "recorded" }
func (p *SnapshotPredictor) Ready(int) bool                       { return p.ready }
func (p *SnapshotPredictor) PortLoad(int) []float64               { return p.port }
func (p *SnapshotPredictor) SenderLoad(int) [][]float64           { return p.sender }
func (p *SnapshotPredictor) PortLoadAt(int, uint32) []float64     { return p.port }
func (p *SnapshotPredictor) SenderLoadAt(int, uint32) [][]float64 { return p.sender }

// StreamFP accumulates the alert/remediation stream fingerprint: the
// same FNV-64a fold the online Writer seals into the trailer and the
// offline replay reproduces. flowpulse-serve folds one per (job, leaf)
// bucket on its fan-out path.
type StreamFP struct {
	s fpState
	n uint64
}

// NewStreamFP returns an empty fingerprint accumulator.
func NewStreamFP() StreamFP { return StreamFP{s: newFP()} }

// Event folds one localized detection.
func (f *StreamFP) Event(e *monitor.Event) { fpEvent(&f.s, e); f.n++ }

// Action folds one remediation action.
func (f *StreamFP) Action(a *remediate.Action) { fpAction(&f.s, a); f.n++ }

// Sum returns the fingerprint so far.
func (f *StreamFP) Sum() uint64 { return f.s.h }

// Count returns how many events and actions folded in.
func (f *StreamFP) Count() uint64 { return f.n }

// offlinePlane answers the remediator's control-plane calls during
// replay: quarantine/re-admit ChangeSets commit unconditionally as
// no-ops (there is no fabric to push to), reconciliation never finds
// divergence (the recording carries no belief/truth state to
// re-derive, so divergence runs replay for their data, not their
// fingerprints — see DESIGN.md decision 15), and probes queue until
// the recorded round result reaches them in the stream — at exactly
// the position (between ticks) the callbacks fired online.
type offlinePlane struct {
	topo    *topology.Topology
	pending map[topology.LinkID][]func(sim.Time, bool)
}

func (f *offlinePlane) Topology() *topology.Topology              { return f.topo }
func (f *offlinePlane) Quarantine(sim.Time, topology.LinkID) bool { return true }
func (f *offlinePlane) Readmit(sim.Time, topology.LinkID) bool    { return true }
func (f *offlinePlane) Reconcile(sim.Time) bool                   { return false }
func (f *offlinePlane) Tick(sim.Time)                             {}
func (f *offlinePlane) ProbeLink(link topology.LinkID, _ fabric.Direction, _ int, onResult func(sim.Time, bool)) {
	f.pending[link] = append(f.pending[link], onResult)
}

// deliver resolves one recorded probe round against the queued
// callbacks. The per-callback split of losses is immaterial — the
// remediator only counts them — so the first Lost callbacks report
// undelivered. Rounds with no queued probes (a what-if override
// diverged from the recorded quarantine schedule) are ignored.
func (f *offlinePlane) deliver(p *ProbeRecord) {
	cbs := f.pending[p.Link]
	if len(cbs) == 0 {
		return
	}
	delete(f.pending, p.Link)
	for i, cb := range cbs {
		cb(p.At, i >= p.Lost)
	}
}

// replayJob is one job's offline stack while the stream is replayed.
type replayJob struct {
	jr      *JobReplay
	pred    *SnapshotPredictor // nil under the learned counterfactual
	learned *predict.Learned   // nil unless Predictor == "learned"
	win     telemetry.Window   // reused per fed window
}

// Replayer re-drives the detect → localize → remediate stack from
// decoded trace records, one Feed call at a time — the incremental
// core of Replay that flowpulse-serve runs against live streams. Feed
// records in stream order; Result seals the fingerprints.
type Replayer struct {
	hdr  *Header
	topo *topology.Topology
	opts ReplayOptions

	res     *ReplayResult
	fp      fpState
	buckets map[uint64]*StreamFP
	fab     *offlinePlane
	jobs    map[uint16]*replayJob

	// OnEvent and OnAction, when set, observe the offline stream as it
	// is re-derived (flowpulse-serve routes them to its alert hub).
	OnEvent  func(e monitor.Event)
	OnAction func(a remediate.Action)
}

// NewReplayer builds the offline stack for a decoded header. topo must
// be the topology rebuilt from that header (Reader.Topo).
func NewReplayer(hdr *Header, topo *topology.Topology, opts ReplayOptions) (*Replayer, error) {
	if len(hdr.Jobs) == 0 {
		return nil, fmt.Errorf("trace: header lists no jobs")
	}
	useLearned := false
	switch opts.Predictor {
	case "", "recorded":
	case "learned":
		useLearned = true
	default:
		return nil, fmt.Errorf("trace: unknown replay predictor %q (want recorded or learned)", opts.Predictor)
	}

	rp := &Replayer{
		hdr:     hdr,
		topo:    topo,
		opts:    opts,
		res:     &ReplayResult{Header: hdr, Topo: topo},
		fp:      newFP(),
		buckets: map[uint64]*StreamFP{},
		fab:     &offlinePlane{topo: topo, pending: map[topology.LinkID][]func(sim.Time, bool){}},
		jobs:    make(map[uint16]*replayJob, len(hdr.Jobs)),
	}

	faults := predict.NewFaultSet()
	if hdr.Remediate != nil && !useLearned {
		rp.res.Remediator = remediate.New(rp.fab, faults, nil, *hdr.Remediate)
		rp.res.Remediator.OnAction = func(a remediate.Action) {
			fpAction(&rp.fp, &a)
			rp.res.ActionCount++
			if !opts.NoHistory {
				rp.res.Actions = append(rp.res.Actions, a)
			}
			if rp.OnAction != nil {
				rp.OnAction(a)
			}
		}
	}

	for _, jh := range hdr.Jobs {
		dcfg := detect.Config{
			Threshold:         jh.Threshold,
			MinPredicted:      jh.MinPredicted,
			AggregateSymmetry: jh.AggregateSymmetry,
			CEDiscount:        jh.CEDiscount,
		}
		if opts.Threshold != 0 {
			dcfg.Threshold = opts.Threshold
		}
		j := &replayJob{jr: &JobReplay{Job: jh.Job}}
		var pred predict.Predictor
		if useLearned {
			j.learned = predict.NewLearned(len(topo.Leaves()), predict.LearnedConfig{})
			pred = j.learned
		} else {
			j.pred = &SnapshotPredictor{}
			pred = j.pred
		}
		det := detect.New(topo, pred, dcfg)
		det.SetKnownFaults(faults)
		pc := monitor.PipelineConfig{
			Pred:      pred,
			Detect:    det,
			Localize:  localize.New(topo, det.Threshold(), 0),
			NoHistory: opts.NoHistory,
			OnEvent: func(e monitor.Event) {
				fpEvent(&rp.fp, &e)
				bk := cacheKey(e.Alert.Job, e.Alert.LeafOrdinal)
				b := rp.buckets[bk]
				if b == nil {
					b = &StreamFP{s: newFP()}
					rp.buckets[bk] = b
				}
				b.Event(&e)
				rp.res.EventCount++
				if !rp.opts.NoHistory {
					rp.res.Events = append(rp.res.Events, e)
				}
				if rp.OnEvent != nil {
					rp.OnEvent(e)
				}
			},
		}
		if j.learned != nil {
			pc.Observer = j.learned
		}
		if rp.res.Remediator != nil {
			pc.Remediate = rp.res.Remediator
		}
		j.jr.Pipeline = monitor.NewPipeline(pc)
		if rp.jobs[jh.Job] != nil {
			return nil, fmt.Errorf("trace: duplicate job %d in header", jh.Job)
		}
		rp.jobs[jh.Job] = j
		rp.res.Jobs = append(rp.res.Jobs, j.jr)
	}
	return rp, nil
}

// route resolves the pipeline for one window's job id. A single-system
// recording routes every window through its one pipeline, exactly as
// core.System's collector does online; a shared-plane recording
// demuxes by job id.
func (rp *Replayer) route(job uint16) *replayJob {
	if rp.hdr.Shared {
		return rp.jobs[job]
	}
	return rp.jobs[rp.hdr.Jobs[0].Job]
}

// Feed advances the offline stack by one decoded record. Window
// storage may be reused by the caller between calls (NextInto slots):
// the pipeline clones what it retains.
func (rp *Replayer) Feed(rec *Record) error {
	switch rec.Kind {
	case KindWindow:
		wr := rec.Window
		if rp.opts.FirstIter > 0 && wr.Iter < rp.opts.FirstIter {
			return nil
		}
		if rp.opts.LastIter > 0 && wr.Iter > rp.opts.LastIter {
			return nil
		}
		j := rp.route(wr.Job)
		if j == nil {
			return fmt.Errorf("trace: window for job %d not in header", wr.Job)
		}
		if wr.LeafOrd < 0 || wr.LeafOrd >= len(rp.topo.Leaves()) {
			return fmt.Errorf("trace: window leaf ordinal %d out of range", wr.LeafOrd)
		}
		if j.pred != nil {
			j.pred.Set(wr.Ready, wr.PortPred, wr.SenderPred)
		}
		if wr.Iter > j.jr.MaxIter {
			j.jr.MaxIter = wr.Iter
		}
		j.win = telemetry.Window{
			Leaf:         rp.topo.Leaves()[wr.LeafOrd],
			LeafOrdinal:  wr.LeafOrd,
			Job:          wr.Job,
			Iter:         wr.Iter,
			PortBytes:    wr.PortBytes,
			SenderBytes:  wr.SenderBytes,
			Packets:      wr.Packets,
			CEBytes:      wr.CEBytes,
			AggPortBytes: wr.AggPortBytes,
			OpenedAt:     wr.OpenedAt,
			ClosedAt:     wr.ClosedAt,
		}
		j.jr.Pipeline.OnWindow(&j.win)
		rp.res.Windows++
	case KindProbe:
		rp.fab.deliver(rec.Probe)
	case KindEvent:
		if !rp.opts.NoHistory {
			rp.res.RecordedEvents = append(rp.res.RecordedEvents, rec.Event)
		}
	case KindAction:
		if !rp.opts.NoHistory {
			rp.res.RecordedActions = append(rp.res.RecordedActions, rec.Action)
		}
	case KindFault:
		rp.res.Faults = append(rp.res.Faults, rec.Fault)
	case KindTrailer:
		rp.res.Trailer = rec.Trailer
	}
	return nil
}

// Fingerprint returns the offline event/action fingerprint so far.
func (rp *Replayer) Fingerprint() uint64 { return rp.fp.h }

// BucketFingerprint returns the order-insensitive per-(job, leaf)
// combined fingerprint so far (see ReplayResult.BucketFingerprint).
func (rp *Replayer) BucketFingerprint() uint64 {
	var x uint64
	for _, b := range rp.buckets {
		if b.Count() > 0 {
			x ^= b.Sum()
		}
	}
	return x
}

// Trailer returns the decoded trailer, nil before it streams in.
func (rp *Replayer) Trailer() *Trailer { return rp.res.Trailer }

// Result seals and returns the replay outcome. The Replayer may keep
// being fed afterwards; Result reflects everything fed so far.
func (rp *Replayer) Result() *ReplayResult {
	rp.res.Fingerprint = rp.fp.h
	rp.res.BucketFingerprint = rp.BucketFingerprint()
	return rp.res
}

// Replay runs a recorded trace back through the detect → localize →
// remediate stack offline, entirely without the fabric.
func Replay(src io.Reader, opts ReplayOptions) (*ReplayResult, error) {
	rd, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	rp, err := NewReplayer(rd.Header(), rd.Topo(), opts)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := rp.Feed(rec); err != nil {
			return nil, err
		}
	}
	return rp.Result(), nil
}
