package trace_test

import (
	"io"
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/trace"
)

// benchWriter returns a Writer past its header with a representative
// window: an 8-leaf fabric's uplink vector and sender matrix, the
// shape every fig5a trial records per (leaf, iteration).
func benchWriter(tb testing.TB) (*trace.Writer, *telemetry.Window, []float64, [][]float64) {
	tb.Helper()
	w := trace.NewWriter(io.Discard)
	h := trace.Header{
		Label:  "bench",
		Leaves: 8, Spines: 4, HostsPerLeaf: 1, Trunk: 1,
		Jobs: []trace.JobHeader{{Predictor: "analytical", Threshold: 0.01}},
	}
	if err := w.Begin(h); err != nil {
		tb.Fatalf("Begin: %v", err)
	}
	win := &telemetry.Window{
		LeafOrdinal: 3,
		PortBytes:   make([]int64, 4),
		SenderBytes: make([][]int64, 4),
		Packets:     4096,
	}
	port := make([]float64, 4)
	sender := make([][]float64, 4)
	for u := range win.SenderBytes {
		win.PortBytes[u] = int64(1 << 20)
		win.SenderBytes[u] = make([]int64, 8)
		port[u] = float64(uint64(1) << 20)
		sender[u] = make([]float64, 8)
		for l := range sender[u] {
			win.SenderBytes[u][l] = int64(128 << 10)
			sender[u][l] = float64(128 << 10)
		}
	}
	return w, win, port, sender
}

// advance mutates the window the way a live run does between closes:
// the clock moves, counters drift slightly.
func advance(win *telemetry.Window, i int) {
	win.Iter = uint32(i)
	win.OpenedAt = win.ClosedAt
	win.ClosedAt += sim.Time(50 * sim.Microsecond)
	win.Packets += int64(i & 7)
	win.PortBytes[i&3] += int64(i & 1023)
	win.SenderBytes[i&3][i&7] += int64(i & 255)
}

func BenchmarkTraceEncode(b *testing.B) {
	w, win, port, sender := benchWriter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advance(win, i)
		w.Window(win, true, port, sender)
	}
	b.StopTimer()
	if err := w.Err(); err != nil {
		b.Fatal(err)
	}
	// bytes/op of trace output, for eyeballing encoding efficiency.
	b.SetBytes(int64(len(win.PortBytes)*8 + len(win.SenderBytes)*8*8))
}

// TestTraceEncodeAllocs is the allocation budget: once the payload
// buffer and prediction caches have warmed up, recording a window must
// not allocate — the Writer sits on the monitor's window-close path.
func TestTraceEncodeAllocs(t *testing.T) {
	w, win, port, sender := benchWriter(t)
	i := 0
	rec := func() {
		advance(win, i)
		i++
		w.Window(win, true, port, sender)
	}
	for n := 0; n < 16; n++ { // warm up buffer growth and caches
		rec()
	}
	if avg := testing.AllocsPerRun(200, rec); avg != 0 {
		t.Fatalf("steady-state window record allocates: %v allocs/op", avg)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}
