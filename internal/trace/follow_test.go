package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"flowpulse/internal/detect"
	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// faucet serves data[:cut] and then reports io.EOF until open() widens
// the cut — a growing file, as a follow Reader sees one.
type faucet struct {
	data []byte
	cut  int
	pos  int
}

func (f *faucet) Read(p []byte) (int, error) {
	if f.pos >= f.cut {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:f.cut])
	f.pos += n
	return n, nil
}

func (f *faucet) open() { f.cut = len(f.data) }

// followFixture records a trace exercising every record kind, with
// prediction snapshots (XOR-cache state spans frames, so a torn frame
// that corrupted resume state would surface as a value mismatch).
func followFixture(t *testing.T) []byte {
	t.Helper()
	win := telemetry.Window{
		LeafOrdinal: 1, Iter: 1,
		OpenedAt: sim.Time(10 * sim.Microsecond), ClosedAt: sim.Time(60 * sim.Microsecond),
		Packets:   7,
		PortBytes: []int64{1000, 2000}, AggPortBytes: []int64{1000, 2000},
		SenderBytes: [][]int64{{400, 600}, {900, 1100}},
		CEBytes:     64,
	}
	win2 := win
	win2.Iter = 2
	win2.OpenedAt, win2.ClosedAt = win.ClosedAt, sim.Time(110*sim.Microsecond)
	win2.PortBytes = []int64{1100, 1900}
	return record(t, testHeader(), func(w *Writer) {
		w.Window(&win, true, []float64{1500, 1500}, [][]float64{{500, 500}, {1000, 1000}})
		w.Window(&win2, true, []float64{1500, 1500}, [][]float64{{480, 520}, {990, 1010}})
		w.Event(monitor.Event{Alert: detect.Alert{
			LeafOrdinal: 1, Level: topology.Leaf, Uplink: 0, Iter: 2,
			Predicted: 1500, Observed: 1000, Deviation: -0.33,
			At: sim.Time(150 * sim.Microsecond),
		}})
		w.Action(remediate.Action{Kind: remediate.ActionQuarantine, Link: topology.LinkID(2), At: sim.Time(200 * sim.Microsecond)})
		w.ProbeRound(sim.Time(210*sim.Microsecond), 3, 10, 1)
		w.Fault(FaultRecord{Kind: "drop", LeafOrd: 1, SpineOrd: 0, Rate: 0.5, OnsetIter: 1})
	})
}

// drain reads records until the reader runs out of bytes, returning
// the terminal error (ErrAwaitMore or io.EOF).
func drain(t *testing.T, r *Reader, into *[]*Record) error {
	t.Helper()
	for {
		rec, err := r.Next()
		if err != nil {
			if err != ErrAwaitMore && err != io.EOF {
				t.Fatalf("Next: %v", err)
			}
			return err
		}
		*into = append(*into, rec)
	}
}

// TestFollowTornAtEveryByteOffset is the satellite guarantee: a stream
// cut at ANY byte offset — inside the magic, the header, any frame's
// length prefix, payload, or CRC — is a torn tail, not corruption. The
// follow Reader reports ErrAwaitMore (or a clean io.EOF exactly at a
// frame boundary), then resumes when the rest arrives and decodes the
// identical record sequence.
func TestFollowTornAtEveryByteOffset(t *testing.T) {
	raw := followFixture(t)
	wantHdr, want := readAll(t, raw)

	for cut := 0; cut <= len(raw); cut++ {
		f := &faucet{data: raw, cut: cut}
		r := NewFollowReader(f)
		var got []*Record

		err := drain(t, r, &got)
		if cut < len(raw) && err == io.EOF {
			// io.EOF before the end is legal only at a frame boundary —
			// follow callers retry on either signal. Everything staged
			// must have been consumed.
			if r.Buffered() != 0 {
				t.Fatalf("cut %d: io.EOF with %d staged bytes", cut, r.Buffered())
			}
		}
		// Torn mid-stream must not be sticky: retrying without new bytes
		// reports the same torn state.
		if err == ErrAwaitMore {
			if _, err2 := r.Next(); err2 != ErrAwaitMore {
				t.Fatalf("cut %d: retry without bytes: %v", cut, err2)
			}
		}

		f.open()
		if err := drain(t, r, &got); err != io.EOF {
			t.Fatalf("cut %d: terminal error %v, want io.EOF", cut, err)
		}
		if !reflect.DeepEqual(r.Header(), wantHdr) {
			t.Fatalf("cut %d: header diverged", cut)
		}
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("cut %d: record %d diverged:\n got %+v\nwant %+v", cut, i, got[i], want[i])
			}
		}
	}
}

// TestFollowReaderCorruptionStillFatal: follow mode forgives short
// reads, never bad bytes — a CRC mismatch is sticky even with retries.
func TestFollowReaderCorruptionStillFatal(t *testing.T) {
	raw := followFixture(t)
	frames := splitFrames(t, raw)
	raw[frames[0]+3] ^= 0x40 // flip a bit in the first window frame
	r := NewFollowReader(bytes.NewReader(raw))
	var err error
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if err == ErrAwaitMore || err == io.EOF {
		t.Fatalf("corruption reported as %v", err)
	}
	if _, err2 := r.Next(); err2 != err {
		t.Fatalf("corruption not sticky: %v then %v", err, err2)
	}
}

// TestNextIntoReusesSlots: NextInto decodes windows into caller-owned
// storage — same values as Next, same backing record per (job, leaf)
// on every visit.
func TestNextIntoReusesSlots(t *testing.T) {
	raw := followFixture(t)
	_, want := readAll(t, raw)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	slots := map[uint64]*WindowRecord{}
	var seen []*WindowRecord
	var gotWins []WindowRecord
	for {
		rec, err := r.NextInto(func(job uint16, leafOrd int) *WindowRecord {
			k := cacheKey(job, leafOrd)
			if slots[k] == nil {
				slots[k] = &WindowRecord{}
			}
			return slots[k]
		})
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Kind == KindWindow {
			seen = append(seen, rec.Window)
			// Snapshot the values before the slot is overwritten.
			cp := *rec.Window
			cp.PortBytes = append([]int64(nil), cp.PortBytes...)
			gotWins = append(gotWins, cp)
		}
	}

	var wantWins []*WindowRecord
	for _, rec := range want {
		if rec.Kind == KindWindow {
			wantWins = append(wantWins, rec.Window)
		}
	}
	if len(gotWins) != len(wantWins) {
		t.Fatalf("%d windows, want %d", len(gotWins), len(wantWins))
	}
	for i := range gotWins {
		if gotWins[i].Iter != wantWins[i].Iter || !reflect.DeepEqual(gotWins[i].PortBytes, wantWins[i].PortBytes) {
			t.Fatalf("window %d diverged: got iter %d ports %v, want iter %d ports %v",
				i, gotWins[i].Iter, gotWins[i].PortBytes, wantWins[i].Iter, wantWins[i].PortBytes)
		}
	}
	if len(seen) < 2 || seen[0] != seen[1] {
		t.Fatalf("slot not reused: %p vs %p", seen[0], seen[1])
	}
}
