package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// castagnoli is the CRC32C table every frame checksum uses (the
// polynomial with hardware support on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// enc builds one record payload in a reusable buffer. Integers are
// varints (zigzag for signed), floats either raw 8-byte words (rare
// records) or XOR-folded against a prediction cache (windows), strings
// length-prefixed.
type enc struct {
	b []byte
}

func (e *enc) reset() { e.b = e.b[:0] }

func (e *enc) kind(k byte)    { e.b = append(e.b, k) }
func (e *enc) u(v uint64)     { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i(v int64)      { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) raw64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f(v float64)    { e.raw64(math.Float64bits(v)) }
func (e *enc) bit(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) s(v string) {
	e.u(uint64(len(v)))
	e.b = append(e.b, v...)
}

// dec walks one record payload. The first decode error sticks; all
// subsequent reads return zero values, so record decoders can run
// straight-line and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) kind() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("trace: truncated record")
		return 0
	}
	k := d.b[d.off]
	d.off++
	return k
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("trace: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("trace: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) raw64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("trace: truncated 8-byte word at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f() float64 { return math.Float64frombits(d.raw64()) }

func (d *dec) bit() bool { return d.kind() != 0 }

func (d *dec) s() string {
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("trace: string length %d exceeds payload", n)
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

// count reads a collection length and bounds it against the remaining
// payload (minBytes is the smallest possible encoding of one element),
// so a corrupt length cannot drive a giant allocation.
func (d *dec) count(minBytes int) int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if n > uint64((len(d.b)-d.off)/minBytes+1) {
		d.fail("trace: collection length %d exceeds payload", n)
		return 0
	}
	return int(n)
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("trace: %d trailing bytes in record", len(d.b)-d.off)
	}
	return nil
}

// predCache is the per-(job, leaf) previous-prediction state the float
// XOR folding runs against: a prediction that did not change since the
// leaf's previous window encodes as a single zero byte.
type predCache struct {
	port   []uint64
	sender []uint64
}

func (c *predCache) size(ports, senders int) {
	if len(c.port) != ports {
		c.port = make([]uint64, ports)
	}
	if len(c.sender) != senders {
		c.sender = make([]uint64, senders)
	}
}

func cacheKey(job uint16, leafOrd int) uint64 {
	return uint64(job)<<32 | uint64(uint32(leafOrd))
}

// fnv64Offset/fnv64Prime are the FNV-64a parameters of the event
// fingerprint (same family the simtest replay oracle uses).
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// fpState accumulates the alert/remediation stream fingerprint without
// allocating: the online Writer and the offline replay both fold every
// event and action through it, and equality of the two sums is the
// bit-identical-replay guarantee.
type fpState struct {
	h uint64
}

func newFP() fpState { return fpState{h: fnv64Offset} }

func (f *fpState) u64(v uint64) {
	for i := 0; i < 8; i++ {
		f.h = (f.h ^ uint64(byte(v>>(8*i)))) * fnv64Prime
	}
}

func (f *fpState) i64(v int64)   { f.u64(uint64(v)) }
func (f *fpState) f64(v float64) { f.u64(math.Float64bits(v)) }

func (f *fpState) str(s string) {
	for i := 0; i < len(s); i++ {
		f.h = (f.h ^ uint64(s[i])) * fnv64Prime
	}
	f.u64(uint64(len(s)))
}
