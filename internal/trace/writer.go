package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"flowpulse/internal/monitor"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// Writer streams a trace. It is attached to a live run by core
// (Config.TracePath / Config.Trace): Begin writes the header, then the
// monitor and remediator hooks feed it windows, events, actions and
// probe rounds, and Finish seals the trailer. Errors are sticky — the
// hot path never returns them; check Err (or Finish) once at the end.
//
// Steady-state recording is allocation-free: one reusable payload
// buffer, per-(job, leaf) prediction caches built on first sight of
// each leaf, and a bufio.Writer in front of the sink.
type Writer struct {
	w   *bufio.Writer
	f   *os.File // owned when opened via Create
	e   enc
	err error

	began    bool
	finished bool

	lastTime sim.Time
	caches   map[uint64]*predCache
	fp       fpState
	t        Trailer

	scratch [binary.MaxVarintLen64]byte
}

// Create opens path (truncating) and returns a Writer that owns the
// file; Finish closes it.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	w := NewWriter(f)
	w.f = f
	return w, nil
}

// NewWriter returns a Writer streaming to sink. The caller owns sink;
// Finish flushes but does not close it.
func NewWriter(sink io.Writer) *Writer {
	return &Writer{
		w:      bufio.NewWriterSize(sink, 1<<16),
		caches: make(map[uint64]*predCache),
		fp:     newFP(),
	}
}

// Begin writes the magic and header. It must be called exactly once,
// before any other record; core calls it from Attach.
func (w *Writer) Begin(h Header) error {
	if w.err != nil {
		return w.err
	}
	if w.began {
		w.err = fmt.Errorf("trace: Begin called twice")
		return w.err
	}
	w.began = true
	h.FormatVersion = Version
	if _, err := w.w.Write(Magic[:]); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return w.err
	}
	w.e.reset()
	encodeHeader(&w.e, &h)
	w.frame()
	return w.err
}

// frame emits the reusable payload buffer as one framed record:
// uvarint(len) ‖ payload ‖ CRC32C(payload).
func (w *Writer) frame() {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], uint64(len(w.e.b)))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return
	}
	if _, err := w.w.Write(w.e.b); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return
	}
	binary.LittleEndian.PutUint32(w.scratch[:4], crc32.Checksum(w.e.b, castagnoli))
	if _, err := w.w.Write(w.scratch[:4]); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
	}
}

func (w *Writer) recordable() bool {
	if w.err != nil || w.finished {
		return false
	}
	if !w.began {
		w.err = fmt.Errorf("trace: record before Begin")
		return false
	}
	return true
}

func (w *Writer) cache(job uint16, leafOrd int) *predCache {
	k := cacheKey(job, leafOrd)
	c := w.caches[k]
	if c == nil {
		c = &predCache{}
		w.caches[k] = c
	}
	return c
}

// WindowOf records win with the prediction pred holds for it right
// now — the same snapshot the online detector just consumed
// (iteration-aligned when pred is an IterPredictor). This is the
// monitor-hook entry point.
func (w *Writer) WindowOf(pred predict.Predictor, win *telemetry.Window) {
	ready := pred != nil && pred.Ready(win.LeafOrdinal)
	var port []float64
	var sender [][]float64
	if ready {
		port = pred.PortLoad(win.LeafOrdinal)
		sender = pred.SenderLoad(win.LeafOrdinal)
		if ip, ok := pred.(predict.IterPredictor); ok {
			port = ip.PortLoadAt(win.LeafOrdinal, win.Iter)
			sender = ip.SenderLoadAt(win.LeafOrdinal, win.Iter)
		}
	}
	w.Window(win, ready, port, sender)
}

// Window records one closed measurement window plus its live
// prediction (port and sender are ignored unless ready).
func (w *Writer) Window(win *telemetry.Window, ready bool, port []float64, sender [][]float64) {
	if !w.recordable() {
		return
	}
	e := &w.e
	e.reset()
	e.kind(KindWindow)
	e.u(uint64(win.Job))
	e.u(uint64(win.LeafOrdinal))
	e.u(uint64(win.Iter))
	e.i(int64(win.ClosedAt) - int64(w.lastTime))
	e.i(int64(win.OpenedAt) - int64(win.ClosedAt))
	w.lastTime = win.ClosedAt
	e.i(win.Packets)

	e.u(uint64(len(win.PortBytes)))
	var prev int64
	for _, b := range win.PortBytes {
		e.i(b - prev)
		prev = b
	}

	// AggPortBytes: under single-job monitoring it equals PortBytes
	// (mode 0, one byte); under a shared plane it differs per element
	// (mode 1, small deltas); mode 2 = absent, mode 3 = explicit.
	switch {
	case win.AggPortBytes == nil:
		e.kind(aggAbsent)
	case int64sEqual(win.AggPortBytes, win.PortBytes):
		e.kind(aggSame)
	case len(win.AggPortBytes) == len(win.PortBytes):
		e.kind(aggDelta)
		for i, b := range win.AggPortBytes {
			e.i(b - win.PortBytes[i])
		}
	default:
		e.kind(aggExplicit)
		e.u(uint64(len(win.AggPortBytes)))
		prev = 0
		for _, b := range win.AggPortBytes {
			e.i(b - prev)
			prev = b
		}
	}

	e.u(uint64(len(win.SenderBytes)))
	nSender := 0
	for _, row := range win.SenderBytes {
		e.u(uint64(len(row)))
		prev = 0
		for _, b := range row {
			e.i(b - prev)
			prev = b
		}
		nSender += len(row)
	}

	e.bit(ready)
	if ready {
		c := w.cache(win.Job, win.LeafOrdinal)
		nPred := 0
		for _, row := range sender {
			nPred += len(row)
		}
		c.size(len(port), nPred)
		e.u(uint64(len(port)))
		for i, v := range port {
			bits := math.Float64bits(v)
			e.u(bits ^ c.port[i])
			c.port[i] = bits
		}
		// The flattened sender-prediction count precedes the rows so a
		// reader can (re)size its XOR cache before decoding them.
		e.u(uint64(nPred))
		e.u(uint64(len(sender)))
		k := 0
		for _, row := range sender {
			e.u(uint64(len(row)))
			for _, v := range row {
				bits := math.Float64bits(v)
				e.u(bits ^ c.sender[k])
				c.sender[k] = bits
				k++
			}
		}
	}
	e.i(win.CEBytes)
	w.frame()
	w.t.Windows++
}

// Event records one localized detection and folds it into the stream
// fingerprint.
func (w *Writer) Event(ev monitor.Event) {
	if !w.recordable() {
		return
	}
	fpEvent(&w.fp, &ev)
	w.e.reset()
	encodeEvent(&w.e, &ev, w.lastTime)
	w.lastTime = ev.Alert.At
	w.frame()
	w.t.Events++
}

// Action records one remediation action and folds it into the stream
// fingerprint. Workload-level actions (re-plan/restore) are recorded
// for the operator timeline but kept OUT of the fingerprint: offline
// replay re-derives the fabric control loop from the windows, not the
// workload loop, so fingerprinting them would make every resilient
// run fail verification against its own trace.
func (w *Writer) Action(a remediate.Action) {
	if !w.recordable() {
		return
	}
	if !a.Kind.Workload() {
		fpAction(&w.fp, &a)
	}
	w.e.reset()
	encodeAction(&w.e, &a, w.lastTime)
	w.lastTime = a.At
	w.frame()
	w.t.Actions++
}

// ProbeRound records one completed OAM probe round.
func (w *Writer) ProbeRound(at sim.Time, link topology.LinkID, sent, lost int) {
	if !w.recordable() {
		return
	}
	p := ProbeRecord{At: at, Link: link, Sent: sent, Lost: lost}
	w.e.reset()
	encodeProbe(&w.e, &p, w.lastTime)
	w.lastTime = at
	w.frame()
	w.t.ProbeRounds++
}

// Fault records one ground-truth fault injection (or heal).
func (w *Writer) Fault(f FaultRecord) {
	if !w.recordable() {
		return
	}
	w.e.reset()
	encodeFault(&w.e, &f, w.lastTime)
	w.lastTime = f.At
	w.frame()
	w.t.Faults++
}

// Fingerprint returns the FNV-64a sum over all events and actions
// recorded so far — the replay-equivalence reference the trailer pins.
func (w *Writer) Fingerprint() uint64 { return w.fp.h }

// Err returns the first error the Writer hit, if any.
func (w *Writer) Err() error { return w.err }

// Finish writes the trailer, flushes, and (for Create'd writers)
// closes the file. Idempotent; returns the first error of the whole
// recording.
func (w *Writer) Finish(now sim.Time) error {
	if w.finished {
		return w.err
	}
	w.finished = true
	if w.err == nil && !w.began {
		w.err = fmt.Errorf("trace: Finish before Begin")
	}
	if w.err == nil {
		w.t.EndTime = now
		w.t.Fingerprint = w.fp.h
		w.e.reset()
		encodeTrailer(&w.e, &w.t, w.lastTime)
		w.frame()
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = fmt.Errorf("trace: %w", err)
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = fmt.Errorf("trace: %w", err)
		}
	}
	return w.err
}

// Agg modes of a window record.
const (
	aggSame     byte = 0 // AggPortBytes == PortBytes
	aggDelta    byte = 1 // same length, per-element delta vs PortBytes
	aggAbsent   byte = 2 // nil
	aggExplicit byte = 3 // own length, consecutive-delta encoded
)

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
