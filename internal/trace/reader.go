package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Reader decodes a trace stream record by record. It validates the
// magic and header up front, rebuilds the recorded topology (so link
// and switch IDs in decoded records resolve exactly as they did
// online), verifies every frame's CRC, and skips record kinds newer
// than it knows (the frame length makes any record skippable).
type Reader struct {
	br   *bufio.Reader
	hdr  *Header
	topo *topology.Topology

	lastTime sim.Time
	caches   map[uint64]*predCache
	buf      []byte
}

// NewReader wraps r, reads the magic and header, and rebuilds the
// recorded topology.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReaderSize(r, 1<<16), caches: make(map[uint64]*predCache)}
	var magic [8]byte
	if _, err := io.ReadFull(rd.br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if !bytes.Equal(magic[:], Magic[:]) {
		return nil, fmt.Errorf("trace: bad magic %q (not a .fpt trace)", magic)
	}
	payload, err := rd.readFrame()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	d := dec{b: payload}
	if k := d.kind(); k != KindHeader {
		return nil, fmt.Errorf("trace: first record kind %d, want header", k)
	}
	h := decodeHeader(&d)
	if err := d.done(); err != nil {
		return nil, err
	}
	if h.FormatVersion < 1 || h.FormatVersion > Version {
		return nil, fmt.Errorf("trace: format version %d unsupported (reader speaks ≤ %d)", h.FormatVersion, Version)
	}
	// Bound the fabric before building it, so a corrupt header cannot
	// drive a giant allocation (same spirit as maxFrame).
	for _, dim := range [...]int{h.Leaves, h.Spines, h.HostsPerLeaf, h.Trunk} {
		if dim < 0 || dim > maxTopoDim {
			return nil, fmt.Errorf("trace: header topology dimension %d out of range", dim)
		}
	}
	topo, err := topology.NewFatTree(topology.FatTreeConfig{
		Leaves:       h.Leaves,
		Spines:       h.Spines,
		HostsPerLeaf: h.HostsPerLeaf,
		Trunk:        h.Trunk,
		LinkRateBPS:  h.LinkRateBPS,
	})
	if err != nil {
		return nil, fmt.Errorf("trace: rebuilding recorded topology: %w", err)
	}
	rd.hdr = h
	rd.topo = topo
	return rd, nil
}

// Header returns the trace header.
func (r *Reader) Header() *Header { return r.hdr }

// Topo returns the topology rebuilt from the header; link and switch
// IDs in decoded records belong to it.
func (r *Reader) Topo() *topology.Topology { return r.topo }

// Next returns the next record, or io.EOF after the last one. Records
// with kinds this reader does not know are skipped.
func (r *Reader) Next() (*Record, error) {
	for {
		payload, err := r.readFrame()
		if err != nil {
			return nil, err
		}
		d := dec{b: payload}
		rec := &Record{Kind: d.kind()}
		switch rec.Kind {
		case KindHeader:
			return nil, fmt.Errorf("trace: duplicate header record")
		case KindWindow:
			rec.Window = r.decodeWindow(&d)
		case KindEvent:
			rec.Event, r.lastTime = decodeEvent(&d, r.topo, r.lastTime)
		case KindAction:
			rec.Action, r.lastTime = decodeAction(&d, r.lastTime)
		case KindProbe:
			rec.Probe, r.lastTime = decodeProbe(&d, r.lastTime)
		case KindFault:
			rec.Fault, r.lastTime = decodeFault(&d, r.lastTime)
		case KindTrailer:
			rec.Trailer = decodeTrailer(&d, r.lastTime)
		default:
			continue // newer kind than this reader: skip by frame
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		return rec, nil
	}
}

// readFrame reads one uvarint-length-prefixed, CRC32C-suffixed frame
// into the reusable buffer.
func (r *Reader) readFrame() ([]byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("trace: reading frame length: %w", err)
	}
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("trace: frame length %d out of range", n)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("trace: truncated frame: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return nil, fmt.Errorf("trace: truncated frame checksum: %w", err)
	}
	if got, want := crc32.Checksum(buf, castagnoli), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("trace: frame CRC mismatch (corrupt record)")
	}
	return buf, nil
}

func (r *Reader) cache(job uint16, leafOrd int) *predCache {
	k := cacheKey(job, leafOrd)
	c := r.caches[k]
	if c == nil {
		c = &predCache{}
		r.caches[k] = c
	}
	return c
}

func (r *Reader) decodeWindow(d *dec) *WindowRecord {
	w := &WindowRecord{}
	w.Job = uint16(d.u())
	w.LeafOrd = int(d.u())
	w.Iter = uint32(d.u())
	w.ClosedAt = r.lastTime + sim.Time(d.i())
	w.OpenedAt = w.ClosedAt + sim.Time(d.i())
	w.Packets = d.i()

	nPorts := d.count(1)
	w.PortBytes = make([]int64, nPorts)
	var prev int64
	for i := range w.PortBytes {
		prev += d.i()
		w.PortBytes[i] = prev
	}

	switch mode := d.kind(); mode {
	case aggSame:
		w.AggPortBytes = append([]int64(nil), w.PortBytes...)
	case aggDelta:
		w.AggPortBytes = make([]int64, nPorts)
		for i := range w.AggPortBytes {
			w.AggPortBytes[i] = w.PortBytes[i] + d.i()
		}
	case aggAbsent:
	case aggExplicit:
		n := d.count(1)
		w.AggPortBytes = make([]int64, n)
		prev = 0
		for i := range w.AggPortBytes {
			prev += d.i()
			w.AggPortBytes[i] = prev
		}
	default:
		d.fail("trace: bad agg mode %d", mode)
	}

	nRows := d.count(1)
	w.SenderBytes = make([][]int64, nRows)
	for i := 0; i < nRows && d.err == nil; i++ {
		n := d.count(1)
		row := make([]int64, n)
		prev = 0
		for j := range row {
			prev += d.i()
			row[j] = prev
		}
		w.SenderBytes[i] = row
	}

	w.Ready = d.bit()
	if w.Ready && d.err == nil {
		c := r.cache(w.Job, w.LeafOrd)
		nPort := d.count(1)
		if d.err != nil {
			return w
		}
		c.size(nPort, len(c.sender))
		w.PortPred = make([]float64, nPort)
		for i := range w.PortPred {
			bits := d.u() ^ c.port[i]
			c.port[i] = bits
			w.PortPred[i] = math.Float64frombits(bits)
		}
		// The flattened sender count precedes the rows (see Writer) so
		// the XOR cache can be sized before their lengths are known.
		nPred := d.count(1)
		if d.err != nil {
			return w
		}
		c.size(nPort, nPred)
		nPredRows := d.count(1)
		w.SenderPred = make([][]float64, nPredRows)
		k := 0
		for i := 0; i < nPredRows && d.err == nil; i++ {
			n := d.count(1)
			if k+n > nPred {
				d.fail("trace: sender prediction rows exceed declared count %d", nPred)
				return w
			}
			row := make([]float64, n)
			for j := range row {
				bits := d.u() ^ c.sender[k]
				c.sender[k] = bits
				row[j] = math.Float64frombits(bits)
				k++
			}
			w.SenderPred[i] = row
		}
		if d.err == nil && k != nPred {
			d.fail("trace: sender prediction count %d, declared %d", k, nPred)
		}
	}
	if r.hdr.FormatVersion >= 2 {
		w.CEBytes = d.i()
	}
	if d.err == nil {
		r.lastTime = w.ClosedAt
	}
	return w
}
