package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// ErrAwaitMore reports a torn tail frame on a follow-mode Reader: the
// source ran out of bytes in the middle of a frame (or before the
// header completed). A short read is not corruption — the Reader keeps
// every byte it has staged, and the same call can be retried once more
// bytes arrive (a growing file re-read past EOF, a reconnected pipe).
// Non-follow Readers keep the historical behavior and report a torn
// tail as a truncation error.
var ErrAwaitMore = errors.New("trace: stream ends mid-frame (awaiting more bytes)")

// Reader decodes a trace stream record by record. It validates the
// magic and header up front, rebuilds the recorded topology (so link
// and switch IDs in decoded records resolve exactly as they did
// online), verifies every frame's CRC, and skips record kinds newer
// than it knows (the frame length makes any record skippable).
//
// A Reader built with NewFollowReader additionally tolerates torn
// tail frames: when the source ends mid-frame, Next returns
// ErrAwaitMore instead of a truncation error, and decoding resumes
// exactly where it stopped once the source yields more bytes.
type Reader struct {
	src    io.Reader
	follow bool
	err    error // sticky: corruption, not torn tails

	hdr  *Header
	topo *topology.Topology

	// Framing state: stash[off:] holds bytes read from src but not yet
	// consumed (the prefix is dead space reclaimed before the next
	// refill); pending is the finished frame (length prefix + payload
	// + CRC) still occupying the stash front, consumed lazily so the
	// returned payload stays valid while the caller decodes it.
	stash     []byte
	off       int
	pending   int
	magicDone bool

	lastTime sim.Time
	caches   map[uint64]*predCache
	scratch  Record
}

// NewReader wraps r, reads the magic and header, and rebuilds the
// recorded topology. The source must already hold a complete header;
// use NewFollowReader to decode a stream that is still being written.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{src: r, caches: make(map[uint64]*predCache)}
	if err := rd.ensureHeader(); err != nil {
		return nil, err
	}
	return rd, nil
}

// NewFollowReader wraps a source that may not yet hold a complete
// trace: the magic and header are decoded lazily by the first Next
// call that finds them complete, and any read that runs out of bytes
// mid-frame returns ErrAwaitMore instead of failing. Callers retry
// after the source grows (os.File reads return fresh bytes after a
// previous EOF) or block in r's own Read (net.Conn).
func NewFollowReader(r io.Reader) *Reader {
	return &Reader{src: r, follow: true, caches: make(map[uint64]*predCache)}
}

// Header returns the trace header (nil on a follow Reader that has not
// yet seen a complete header).
func (r *Reader) Header() *Header { return r.hdr }

// Topo returns the topology rebuilt from the header; link and switch
// IDs in decoded records belong to it.
func (r *Reader) Topo() *topology.Topology { return r.topo }

// Buffered returns how many staged bytes the Reader holds beyond the
// last consumed frame — non-zero after ErrAwaitMore exactly when the
// stream ended inside a frame.
func (r *Reader) Buffered() int { return len(r.stash) - r.off - r.pending }

// staged returns the unconsumed byte view.
func (r *Reader) staged() []byte { return r.stash[r.off:] }

// ensureHeader decodes the magic and header once. In follow mode an
// incomplete prefix returns ErrAwaitMore and keeps all staged bytes.
func (r *Reader) ensureHeader() error {
	if r.hdr != nil || r.err != nil {
		if r.err != nil {
			return r.err
		}
		return nil
	}
	if !r.magicDone {
		if err := r.fillTo(len(Magic)); err != nil {
			if err == ErrAwaitMore || err == io.EOF {
				if r.follow {
					return ErrAwaitMore
				}
				if len(r.staged()) == 0 {
					return r.fail(fmt.Errorf("trace: reading magic: %w", io.EOF))
				}
				return r.fail(fmt.Errorf("trace: reading magic: %w", io.ErrUnexpectedEOF))
			}
			return r.fail(fmt.Errorf("trace: reading magic: %w", err))
		}
		if !bytes.Equal(r.staged()[:len(Magic)], Magic[:]) {
			return r.fail(fmt.Errorf("trace: bad magic %q (not a .fpt trace)", r.staged()[:len(Magic)]))
		}
		r.consume(len(Magic))
		r.magicDone = true
	}
	payload, err := r.readFrame()
	if err != nil {
		if err == ErrAwaitMore {
			return err
		}
		if err == io.EOF {
			// A clean frame boundary, but the header frame itself has
			// not arrived yet: still awaiting in follow mode.
			if r.follow {
				return ErrAwaitMore
			}
			err = io.ErrUnexpectedEOF
		}
		return r.fail(fmt.Errorf("trace: reading header: %w", err))
	}
	d := dec{b: payload}
	if k := d.kind(); k != KindHeader {
		return r.fail(fmt.Errorf("trace: first record kind %d, want header", k))
	}
	h := decodeHeader(&d)
	if err := d.done(); err != nil {
		return r.fail(err)
	}
	if h.FormatVersion < 1 || h.FormatVersion > Version {
		return r.fail(fmt.Errorf("trace: format version %d unsupported (reader speaks ≤ %d)", h.FormatVersion, Version))
	}
	// Bound the fabric before building it, so a corrupt header cannot
	// drive a giant allocation (same spirit as maxFrame).
	for _, dim := range [...]int{h.Leaves, h.Spines, h.HostsPerLeaf, h.Trunk} {
		if dim < 0 || dim > maxTopoDim {
			return r.fail(fmt.Errorf("trace: header topology dimension %d out of range", dim))
		}
	}
	topo, err := topology.NewFatTree(topology.FatTreeConfig{
		Leaves:       h.Leaves,
		Spines:       h.Spines,
		HostsPerLeaf: h.HostsPerLeaf,
		Trunk:        h.Trunk,
		LinkRateBPS:  h.LinkRateBPS,
	})
	if err != nil {
		return r.fail(fmt.Errorf("trace: rebuilding recorded topology: %w", err))
	}
	r.hdr = h
	r.topo = topo
	return nil
}

// WindowSlot supplies reusable window storage to NextInto: given the
// window's routing key it returns the WindowRecord to decode into
// (slices are grown as needed and fully overwritten, so a slot reused
// for the same stream reaches a steady state with zero allocations).
// Returning nil falls back to a freshly allocated record.
type WindowSlot func(job uint16, leafOrd int) *WindowRecord

// Next returns the next record, or io.EOF after the last one. Records
// with kinds this reader does not know are skipped. On a follow
// Reader, a torn tail frame returns ErrAwaitMore (retry when the
// source has more bytes).
func (r *Reader) Next() (*Record, error) {
	rec, err := r.NextInto(nil)
	if err != nil {
		return nil, err
	}
	out := rec
	return &out, nil
}

// NextInto is Next with caller-owned window storage: window records
// decode into the slot the dest callback picks (see WindowSlot), other
// kinds allocate as usual. The returned Record is valid until the next
// call. dest == nil behaves like Next.
func (r *Reader) NextInto(dest WindowSlot) (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	if err := r.ensureHeader(); err != nil {
		return Record{}, err
	}
	for {
		payload, err := r.readFrame()
		if err == io.EOF || err == ErrAwaitMore {
			return Record{}, err
		}
		if err != nil {
			return Record{}, r.fail(err)
		}
		d := dec{b: payload}
		rec := &r.scratch
		*rec = Record{Kind: d.kind()}
		switch rec.Kind {
		case KindHeader:
			return Record{}, r.fail(fmt.Errorf("trace: duplicate header record"))
		case KindWindow:
			rec.Window = r.decodeWindow(&d, dest)
		case KindEvent:
			rec.Event, r.lastTime = decodeEvent(&d, r.topo, r.lastTime)
		case KindAction:
			rec.Action, r.lastTime = decodeAction(&d, r.lastTime)
		case KindProbe:
			rec.Probe, r.lastTime = decodeProbe(&d, r.lastTime)
		case KindFault:
			rec.Fault, r.lastTime = decodeFault(&d, r.lastTime)
		case KindTrailer:
			rec.Trailer = decodeTrailer(&d, r.lastTime)
		default:
			continue // newer kind than this reader: skip by frame
		}
		if err := d.done(); err != nil {
			return Record{}, r.fail(err)
		}
		return *rec, nil
	}
}

// fail makes a real decode error sticky (torn tails are not errors in
// follow mode and never stick).
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// readFrame stages one uvarint-length-prefixed, CRC32C-suffixed frame
// and returns its payload, which stays valid until the next call.
func (r *Reader) readFrame() ([]byte, error) {
	if r.pending > 0 {
		r.consume(r.pending)
		r.pending = 0
	}
	var n uint64
	var w int
	for {
		n, w = binary.Uvarint(r.staged())
		if w > 0 {
			break
		}
		if w < 0 {
			return nil, fmt.Errorf("trace: frame length overflows uvarint")
		}
		// Not enough staged bytes for the length prefix yet.
		if err := r.fillTo(len(r.staged()) + 1); err != nil {
			if err == io.EOF && len(r.staged()) == 0 {
				return nil, io.EOF // clean end at a frame boundary
			}
			return r.torn(err)
		}
	}
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("trace: frame length %d out of range", n)
	}
	total := w + int(n) + 4
	if err := r.fillTo(total); err != nil {
		return r.torn(err)
	}
	frame := r.staged()[:total]
	payload := frame[w : w+int(n)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(frame[w+int(n):]); got != want {
		return nil, fmt.Errorf("trace: frame CRC mismatch (corrupt record)")
	}
	r.pending = total
	return payload, nil
}

// torn maps an out-of-bytes condition mid-frame: resumable in follow
// mode, a truncation error otherwise.
func (r *Reader) torn(err error) ([]byte, error) {
	if err == io.EOF || err == ErrAwaitMore {
		if r.follow {
			return nil, ErrAwaitMore
		}
		return nil, fmt.Errorf("trace: truncated frame: %w", io.ErrUnexpectedEOF)
	}
	return nil, fmt.Errorf("trace: truncated frame: %w", err)
}

// fillTo reads from src until the staged view holds at least total
// bytes. It returns io.EOF (every byte read so far stays staged) when
// the source runs dry first.
func (r *Reader) fillTo(total int) error {
	for len(r.staged()) < total {
		// Reclaim the consumed prefix before growing or reading, so
		// steady-state framing reuses one buffer.
		if r.off > 0 {
			k := copy(r.stash, r.stash[r.off:])
			r.stash = r.stash[:k]
			r.off = 0
		}
		// Grow capacity in chunks and read whatever is available, not
		// just the remainder, to amortize syscalls on network sources.
		want := total
		if min := len(r.stash) + 4096; want < min {
			want = min
		}
		if cap(r.stash) < want {
			grown := make([]byte, len(r.stash), want)
			copy(grown, r.stash)
			r.stash = grown
		}
		k, err := r.src.Read(r.stash[len(r.stash):cap(r.stash)])
		if k > 0 {
			r.stash = r.stash[: len(r.stash)+k]
			continue
		}
		if err == nil {
			continue // a zero-byte read with no error: try again
		}
		if err == io.EOF {
			return io.EOF
		}
		return err
	}
	return nil
}

// consume drops the first n staged bytes.
func (r *Reader) consume(n int) { r.off += n }

func (r *Reader) cache(job uint16, leafOrd int) *predCache {
	k := cacheKey(job, leafOrd)
	c := r.caches[k]
	if c == nil {
		c = &predCache{}
		r.caches[k] = c
	}
	return c
}

// Slice-reuse helpers for NextInto: grow-only, fully overwritten by
// the decoders below.
func i64Slice(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

func f64Slice(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func i64Rows(s [][]int64, n int) [][]int64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([][]int64, n)
	copy(out, s[:cap(s)])
	return out
}

func f64Rows(s [][]float64, n int) [][]float64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([][]float64, n)
	copy(out, s[:cap(s)])
	return out
}

func (r *Reader) decodeWindow(d *dec, dest WindowSlot) *WindowRecord {
	job := uint16(d.u())
	leafOrd := int(d.u())
	var w *WindowRecord
	if dest != nil {
		w = dest(job, leafOrd)
	}
	if w == nil {
		w = &WindowRecord{}
	}
	w.Job = job
	w.LeafOrd = leafOrd
	w.Iter = uint32(d.u())
	w.ClosedAt = r.lastTime + sim.Time(d.i())
	w.OpenedAt = w.ClosedAt + sim.Time(d.i())
	w.Packets = d.i()
	w.CEBytes = 0

	nPorts := d.count(1)
	w.PortBytes = i64Slice(w.PortBytes, nPorts)
	var prev int64
	for i := range w.PortBytes {
		prev += d.i()
		w.PortBytes[i] = prev
	}

	switch mode := d.kind(); mode {
	case aggSame:
		w.AggPortBytes = i64Slice(w.AggPortBytes, nPorts)
		copy(w.AggPortBytes, w.PortBytes)
	case aggDelta:
		w.AggPortBytes = i64Slice(w.AggPortBytes, nPorts)
		for i := range w.AggPortBytes {
			w.AggPortBytes[i] = w.PortBytes[i] + d.i()
		}
	case aggAbsent:
		w.AggPortBytes = nil
	case aggExplicit:
		n := d.count(1)
		w.AggPortBytes = i64Slice(w.AggPortBytes, n)
		prev = 0
		for i := range w.AggPortBytes {
			prev += d.i()
			w.AggPortBytes[i] = prev
		}
	default:
		d.fail("trace: bad agg mode %d", mode)
	}

	nRows := d.count(1)
	w.SenderBytes = i64Rows(w.SenderBytes, nRows)
	for i := 0; i < nRows && d.err == nil; i++ {
		n := d.count(1)
		row := i64Slice(w.SenderBytes[i], n)
		prev = 0
		for j := range row {
			prev += d.i()
			row[j] = prev
		}
		w.SenderBytes[i] = row
	}

	w.Ready = d.bit()
	if !w.Ready {
		w.PortPred = w.PortPred[:0]
		w.SenderPred = w.SenderPred[:0]
	}
	if w.Ready && d.err == nil {
		c := r.cache(w.Job, w.LeafOrd)
		nPort := d.count(1)
		if d.err != nil {
			return w
		}
		c.size(nPort, len(c.sender))
		w.PortPred = f64Slice(w.PortPred, nPort)
		for i := range w.PortPred {
			bits := d.u() ^ c.port[i]
			c.port[i] = bits
			w.PortPred[i] = math.Float64frombits(bits)
		}
		// The flattened sender count precedes the rows (see Writer) so
		// the XOR cache can be sized before their lengths are known.
		nPred := d.count(1)
		if d.err != nil {
			return w
		}
		c.size(nPort, nPred)
		nPredRows := d.count(1)
		w.SenderPred = f64Rows(w.SenderPred, nPredRows)
		k := 0
		for i := 0; i < nPredRows && d.err == nil; i++ {
			n := d.count(1)
			if k+n > nPred {
				d.fail("trace: sender prediction rows exceed declared count %d", nPred)
				return w
			}
			row := f64Slice(w.SenderPred[i], n)
			for j := range row {
				bits := d.u() ^ c.sender[k]
				c.sender[k] = bits
				row[j] = math.Float64frombits(bits)
				k++
			}
			w.SenderPred[i] = row
		}
		if d.err == nil && k != nPred {
			d.fail("trace: sender prediction count %d, declared %d", k, nPred)
		}
	}
	if r.hdr.FormatVersion >= 2 {
		w.CEBytes = d.i()
	}
	if d.err == nil {
		r.lastTime = w.ClosedAt
	}
	return w
}
