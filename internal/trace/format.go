// Package trace is FlowPulse's record-once / analyze-many layer: a
// versioned, streamable binary format (.fpt) capturing everything the
// pipeline downstream of the dataplane consumes — measurement windows
// with their live per-window predictions and per-sender breakdowns,
// localized alerts, remediation actions and probe rounds, job and
// topology metadata, and the injected fault schedule as ground truth.
//
// Because detect → localize → remediate reads only windows and
// predictions, a recorded run can be replayed offline, entirely
// without the fabric: re-detection at a different threshold, a
// would-the-learned-model-have-caught-it counterfactual, or a full ROC
// sweep all cost one file scan instead of a re-simulation. The Writer
// attaches to a live core.System via telemetry/monitor hooks and
// encodes with zero steady-state allocations; the Reader and Replay
// drive the same detector/localizer/remediator code the online run
// used, and the shared event fingerprint proves the offline stream is
// bit-identical to the online one.
//
// Format: an 8-byte magic, then length-prefixed records, each framed
// as uvarint(len) ‖ payload ‖ CRC32C(payload). Payloads open with a
// one-byte record kind; integers are varints (zigzag + delta for
// counters and times), predictions XOR-fold against the previous
// window of the same (job, leaf) so stable baselines cost one byte per
// float. Compatibility rule: readers accept any trace whose header
// FormatVersion is ≤ their own Version and must tolerate unknown
// record kinds (skip; the frame length makes every record skippable);
// any change that breaks either property bumps Version.
package trace

import (
	"flowpulse/internal/localize"
	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Magic opens every trace file.
var Magic = [8]byte{'F', 'P', 'T', 'R', 'A', 'C', 'E', '\n'}

// Version is the current format version, written into the header.
// Version 2 appends ECN congestion fields: each job header carries the
// detector's CEDiscount and each window record its CE-marked byte
// count. Both are trailing fields, so version-1 traces decode with the
// fields zero — exactly the pre-ECN semantics they recorded.
const Version = 2

// The record kinds of format version 1.
const (
	KindHeader  byte = 1
	KindWindow  byte = 2
	KindEvent   byte = 3
	KindAction  byte = 4
	KindProbe   byte = 5
	KindFault   byte = 6
	KindTrailer byte = 7
)

// maxFrame bounds one record's payload: far above any real window
// record (a 64×64 fat tree's sender matrix is ~40 KiB), low enough
// that a corrupt length prefix cannot drive a giant allocation.
const maxFrame = 1 << 26

// maxTopoDim bounds each header topology dimension (leaves, spines,
// hosts per leaf, trunk) when the reader rebuilds the fabric.
const maxTopoDim = 4096

// Header is the trace's opening record: enough metadata to rebuild
// the monitored topology and every job's pipeline configuration
// offline.
type Header struct {
	// FormatVersion is the writer's format version.
	FormatVersion int
	// Label is free-form run metadata (scenario description).
	Label string
	// Leaves, Spines, HostsPerLeaf, Trunk, LinkRateBPS describe the
	// fat-tree fabric (trace v1 records two-level leaf/spine systems).
	Leaves, Spines, HostsPerLeaf, Trunk int
	LinkRateBPS                         int64
	// Shared marks a shared-plane (multi-job) recording: windows route
	// to pipelines by job id. Single-job recordings route every window
	// through the one pipeline, exactly as core.System does online.
	Shared bool
	// Jobs holds one entry per monitored pipeline, in registration
	// order.
	Jobs []JobHeader
	// Remediate is the effective (defaulted) configuration of the
	// attached control plane, nil when the recording ran without one.
	Remediate *remediate.Config
}

// JobHeader is one pipeline's configuration as it ran online.
type JobHeader struct {
	Job       uint16
	Predictor string
	// Threshold, MinPredicted, AggregateSymmetry, CEDiscount are the
	// effective (defaulted) detector configuration. CEDiscount is a
	// format-v2 field; v1 traces decode it as zero (disabled).
	Threshold         float64
	MinPredicted      float64
	AggregateSymmetry bool
	CEDiscount        float64
}

// WindowRecord is one recorded measurement window plus the prediction
// that was live when the online detector checked it. Snapshotting the
// prediction per window is what makes replay robust against baseline
// evolution (learned-model adoption, post-quarantine rebaselines)
// without re-running the load model's inputs.
type WindowRecord struct {
	Job                uint16
	LeafOrd            int
	Iter               uint32
	OpenedAt, ClosedAt sim.Time
	Packets            int64
	PortBytes          []int64
	AggPortBytes       []int64
	SenderBytes        [][]int64
	// Ready mirrors Predictor.Ready at window close; PortPred and
	// SenderPred are only present when true.
	Ready      bool
	PortPred   []float64
	SenderPred [][]float64
	// CEBytes is the window's ECN congestion-experienced byte count
	// (format v2; zero when replaying v1 traces or ECN-less fabrics).
	CEBytes int64
}

// ProbeRecord is one completed OAM probe round on a quarantined link.
type ProbeRecord struct {
	At         sim.Time
	Link       topology.LinkID
	Sent, Lost int
}

// FaultRecord is ground truth: one injected (or healed, Clear=true)
// fault. OnsetIter labels iterations: the fault is active for
// iterations strictly after OnsetIter, until a matching Clear record's
// OnsetIter.
type FaultRecord struct {
	At        sim.Time
	Kind      string // "bernoulli", "blackhole", "gilbert-elliott", "flap", ...
	LeafOrd   int
	SpineOrd  int
	Trunk     int
	Upstream  bool
	Rate      float64
	OnsetIter uint32
	Clear     bool
	// FlapPeriod, FlapDown, FlapPhase parameterize flap faults.
	FlapPeriod, FlapDown, FlapPhase sim.Duration
}

// Trailer closes a trace: record counts, the final simulation time,
// and the online event/action fingerprint (the replay-equivalence
// reference). A missing trailer means the recording was truncated.
type Trailer struct {
	Windows, Events, Actions, ProbeRounds, Faults uint64
	EndTime                                       sim.Time
	Fingerprint                                   uint64
}

// Record is one decoded trace record; exactly one pointer field is
// non-nil, selected by Kind.
type Record struct {
	Kind    byte
	Header  *Header
	Window  *WindowRecord
	Event   *monitor.Event
	Action  *remediate.Action
	Probe   *ProbeRecord
	Fault   *FaultRecord
	Trailer *Trailer
}

// --- header encoding ---

func encodeHeader(e *enc, h *Header) {
	e.kind(KindHeader)
	e.u(uint64(h.FormatVersion))
	e.u(0) // flags, reserved
	e.s(h.Label)
	e.u(uint64(h.Leaves))
	e.u(uint64(h.Spines))
	e.u(uint64(h.HostsPerLeaf))
	e.u(uint64(h.Trunk))
	e.u(uint64(h.LinkRateBPS))
	e.bit(h.Shared)
	e.u(uint64(len(h.Jobs)))
	for _, j := range h.Jobs {
		e.u(uint64(j.Job))
		e.s(j.Predictor)
		e.f(j.Threshold)
		e.f(j.MinPredicted)
		e.bit(j.AggregateSymmetry)
		e.f(j.CEDiscount)
	}
	e.bit(h.Remediate != nil)
	if h.Remediate != nil {
		r := h.Remediate
		e.u(uint64(r.ConfirmWindows))
		e.u(uint64(r.CleanProbes))
		e.i(int64(r.ProbeInterval))
		e.u(uint64(r.ProbePackets))
		e.u(uint64(r.ProbeBytes))
		e.f(r.Penalty)
		e.f(r.Suppress)
		e.f(r.Reuse)
		e.i(int64(r.HalfLife))
		e.i(int64(r.CorroborateWindows))
		e.i(int64(r.CorroborateHorizon))
	}
}

func decodeHeader(d *dec) *Header {
	h := &Header{}
	h.FormatVersion = int(d.u())
	d.u() // flags
	h.Label = d.s()
	h.Leaves = int(d.u())
	h.Spines = int(d.u())
	h.HostsPerLeaf = int(d.u())
	h.Trunk = int(d.u())
	h.LinkRateBPS = int64(d.u())
	h.Shared = d.bit()
	nJobs := d.count(12)
	for i := 0; i < nJobs && d.err == nil; i++ {
		jh := JobHeader{
			Job:               uint16(d.u()),
			Predictor:         d.s(),
			Threshold:         d.f(),
			MinPredicted:      d.f(),
			AggregateSymmetry: d.bit(),
		}
		if h.FormatVersion >= 2 {
			jh.CEDiscount = d.f()
		}
		h.Jobs = append(h.Jobs, jh)
	}
	if d.bit() {
		h.Remediate = &remediate.Config{
			ConfirmWindows:     int(d.u()),
			CleanProbes:        int(d.u()),
			ProbeInterval:      sim.Duration(d.i()),
			ProbePackets:       int(d.u()),
			ProbeBytes:         int(d.u()),
			Penalty:            d.f(),
			Suppress:           d.f(),
			Reuse:              d.f(),
			HalfLife:           sim.Duration(d.i()),
			CorroborateWindows: int(d.i()),
			CorroborateHorizon: sim.Duration(d.i()),
		}
	}
	return h
}

// --- event encoding ---

func encodeEvent(e *enc, ev *monitor.Event, last sim.Time) {
	a := ev.Alert
	e.kind(KindEvent)
	e.u(uint64(a.Job))
	e.u(uint64(a.LeafOrdinal))
	e.u(uint64(a.Level))
	e.u(uint64(a.Uplink))
	e.u(uint64(a.Iter))
	e.i(int64(a.At) - int64(last))
	e.f(a.Predicted)
	e.f(a.Observed)
	e.f(a.Deviation)
	v := ev.Verdict
	e.u(uint64(v.Kind))
	e.u(uint64(len(v.Links)))
	for _, l := range v.Links {
		e.u(uint64(l))
	}
	e.u(uint64(len(v.AffectedSenders)))
	for _, s := range v.AffectedSenders {
		e.u(uint64(s))
	}
	e.u(uint64(len(v.CleanSenders)))
	for _, s := range v.CleanSenders {
		e.u(uint64(s))
	}
}

func decodeEvent(d *dec, topo *topology.Topology, last sim.Time) (*monitor.Event, sim.Time) {
	ev := &monitor.Event{}
	a := &ev.Alert
	a.Job = uint16(d.u())
	a.LeafOrdinal = int(d.u())
	a.Level = topology.SwitchKind(d.u())
	a.Uplink = int(d.u())
	a.Iter = uint32(d.u())
	a.At = last + sim.Time(d.i())
	a.Predicted = d.f()
	a.Observed = d.f()
	a.Deviation = d.f()
	if d.err == nil && a.Level == topology.Leaf && a.LeafOrdinal < len(topo.Leaves()) {
		a.Leaf = topo.Leaves()[a.LeafOrdinal]
	}
	v := &ev.Verdict
	v.Kind = localize.Kind(d.u())
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		v.Links = append(v.Links, topology.LinkID(d.u()))
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		v.AffectedSenders = append(v.AffectedSenders, int(d.u()))
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		v.CleanSenders = append(v.CleanSenders, int(d.u()))
	}
	return ev, a.At
}

// --- action / probe / fault / trailer encoding ---

func encodeAction(e *enc, a *remediate.Action, last sim.Time) {
	e.kind(KindAction)
	e.i(int64(a.At) - int64(last))
	e.u(uint64(a.Kind))
	e.u(uint64(a.Link))
	e.s(a.Detail)
}

func decodeAction(d *dec, last sim.Time) (*remediate.Action, sim.Time) {
	a := &remediate.Action{}
	a.At = last + sim.Time(d.i())
	a.Kind = remediate.ActionKind(d.u())
	a.Link = topology.LinkID(d.u())
	a.Detail = d.s()
	return a, a.At
}

func encodeProbe(e *enc, p *ProbeRecord, last sim.Time) {
	e.kind(KindProbe)
	e.i(int64(p.At) - int64(last))
	e.u(uint64(p.Link))
	e.u(uint64(p.Sent))
	e.u(uint64(p.Lost))
}

func decodeProbe(d *dec, last sim.Time) (*ProbeRecord, sim.Time) {
	p := &ProbeRecord{}
	p.At = last + sim.Time(d.i())
	p.Link = topology.LinkID(d.u())
	p.Sent = int(d.u())
	p.Lost = int(d.u())
	return p, p.At
}

func encodeFault(e *enc, f *FaultRecord, last sim.Time) {
	e.kind(KindFault)
	e.i(int64(f.At) - int64(last))
	e.s(f.Kind)
	e.u(uint64(f.LeafOrd))
	e.u(uint64(f.SpineOrd))
	e.u(uint64(f.Trunk))
	e.bit(f.Upstream)
	e.f(f.Rate)
	e.u(uint64(f.OnsetIter))
	e.bit(f.Clear)
	e.i(int64(f.FlapPeriod))
	e.i(int64(f.FlapDown))
	e.i(int64(f.FlapPhase))
}

func decodeFault(d *dec, last sim.Time) (*FaultRecord, sim.Time) {
	f := &FaultRecord{}
	f.At = last + sim.Time(d.i())
	f.Kind = d.s()
	f.LeafOrd = int(d.u())
	f.SpineOrd = int(d.u())
	f.Trunk = int(d.u())
	f.Upstream = d.bit()
	f.Rate = d.f()
	f.OnsetIter = uint32(d.u())
	f.Clear = d.bit()
	f.FlapPeriod = sim.Duration(d.i())
	f.FlapDown = sim.Duration(d.i())
	f.FlapPhase = sim.Duration(d.i())
	return f, f.At
}

func encodeTrailer(e *enc, t *Trailer, last sim.Time) {
	e.kind(KindTrailer)
	e.u(t.Windows)
	e.u(t.Events)
	e.u(t.Actions)
	e.u(t.ProbeRounds)
	e.u(t.Faults)
	e.i(int64(t.EndTime) - int64(last))
	e.raw64(t.Fingerprint)
}

func decodeTrailer(d *dec, last sim.Time) *Trailer {
	t := &Trailer{}
	t.Windows = d.u()
	t.Events = d.u()
	t.Actions = d.u()
	t.ProbeRounds = d.u()
	t.Faults = d.u()
	t.EndTime = last + sim.Time(d.i())
	t.Fingerprint = d.raw64()
	return t
}

// --- fingerprint ---

// fpEvent folds one localized detection into the stream fingerprint.
// The online Writer and the offline replay call this with events
// produced by the same pipeline code, so sum equality means every
// field of every event matched bit for bit, in order.
func fpEvent(f *fpState, ev *monitor.Event) {
	f.u64('E')
	a := ev.Alert
	f.i64(int64(a.Leaf))
	f.i64(int64(a.LeafOrdinal))
	f.u64(uint64(a.Level))
	f.i64(int64(a.Uplink))
	f.u64(uint64(a.Job))
	f.u64(uint64(a.Iter))
	f.f64(a.Predicted)
	f.f64(a.Observed)
	f.f64(a.Deviation)
	f.i64(int64(a.At))
	v := ev.Verdict
	f.u64(uint64(v.Kind))
	f.u64(uint64(len(v.Links)))
	for _, l := range v.Links {
		f.i64(int64(l))
	}
	f.u64(uint64(len(v.AffectedSenders)))
	for _, s := range v.AffectedSenders {
		f.i64(int64(s))
	}
	f.u64(uint64(len(v.CleanSenders)))
	for _, s := range v.CleanSenders {
		f.i64(int64(s))
	}
}

// fpAction folds one remediation action into the stream fingerprint.
func fpAction(f *fpState, a *remediate.Action) {
	f.u64('A')
	f.i64(int64(a.At))
	f.u64(uint64(a.Kind))
	f.i64(int64(a.Link))
	f.str(a.Detail)
}
