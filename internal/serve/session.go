package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowpulse/internal/trace"
	"flowpulse/internal/topology"
)

// Stream modes. Sequential preserves the recording's global order
// through one bucket — the whole detect → localize → remediate stack
// replays and the alert/action fingerprint is bit-identical to offline
// replay (and to the trailer). Fanout splits the stream into (job,
// leaf) buckets across shards for parallelism; per-bucket fingerprints
// XOR into the order-insensitive combined sum offline replay exposes
// as BucketFingerprint. Remediated recordings force sequential: a
// fan-out stream cannot replay the probe loop's global order.
const (
	ModeSeq    = "seq"
	ModeFanout = "fanout"
)

// SessionStatus is the JSON status a producer receives when its
// stream ends.
type SessionStatus struct {
	Session string `json:"session"`
	Mode    string `json:"mode"`
	Windows int64  `json:"windows"`
	Events  int64  `json:"events"`
	Actions int64  `json:"actions"`
	// Fingerprint is the service-side alert/action stream fingerprint:
	// the global FNV-64a sum in sequential mode, the XOR-combined
	// per-bucket sum in fanout mode.
	Fingerprint uint64 `json:"fingerprint"`
	// TrailerFingerprint echoes the recording's own trailer (0 if the
	// stream ended without one); Parity reports the comparison:
	// "exact" (sequential, matched), "mismatch" (sequential, diverged),
	// "bucket" (fanout: compare against offline replay's
	// BucketFingerprint), or "none" (no trailer streamed).
	TrailerFingerprint uint64 `json:"trailer_fingerprint"`
	Parity             string `json:"parity"`
	Error              string `json:"error,omitempty"`
}

// session is one producer's stream through the service.
type session struct {
	srv   *Server
	id    uint64
	label string
	mode  string

	src   io.Reader
	conn  net.Conn // nil for HTTP/in-process streams
	rd    *trace.Reader
	hdr   *trace.Header
	topo  *topology.Topology
	jobMu sync.Mutex // guards buckets map against /metrics scrapes

	seq     *bucket
	buckets map[uint64]*bucket // fanout: (job, leafOrd) key
	trailer *trace.Trailer     // fanout: noted for the status line
	windows atomic.Int64
	events  atomic.Int64
	actions atomic.Int64

	errMu sync.Mutex
	err   error
}

func bucketKey(job uint16, leafOrd int) uint64 {
	return uint64(job)<<32 | uint64(uint32(leafOrd))
}

// poison records the first fatal processing error (shard side or
// session side); the read loop notices and aborts the stream.
func (s *session) poison(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

func (s *session) poisoned() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// abort cuts the producer's connection (drain deadline).
func (s *session) abort() {
	if s.conn != nil {
		s.conn.Close()
	}
}

// IngestStream runs one producer stream to completion: decode frames
// from src, shard the records, wait for the shards to finish, and
// return the session's status. mode is ModeSeq or ModeFanout (""
// defaults to ModeSeq); label names the session in alerts and logs.
// It blocks until the stream ends — callers own the goroutine.
func (s *Server) IngestStream(src io.Reader, mode, label string) (*SessionStatus, error) {
	if mode == "" {
		mode = ModeSeq
	}
	if mode != ModeSeq && mode != ModeFanout {
		return nil, fmt.Errorf("serve: unknown mode %q", mode)
	}
	sess := &session{
		srv:     s,
		id:      s.nextSession.Add(1),
		label:   label,
		mode:    mode,
		src:     src,
		buckets: map[uint64]*bucket{},
	}
	if sess.label == "" {
		sess.label = fmt.Sprintf("session-%d", sess.id)
	}
	if err := s.register(sess); err != nil {
		return nil, err
	}
	defer s.unregister(sess)
	return sess.run()
}

// run is the session read loop: the producer's goroutine decodes
// frames and publishes records onto bucket rings; shards do the rest.
func (s *session) run() (*SessionStatus, error) {
	s.rd = trace.NewFollowReader(&countingReader{r: s.src, n: &s.srv.met.bytesTotal})

	var reserved *entry
	var dst *bucket
	slot := func(job uint16, leafOrd int) *trace.WindowRecord {
		b, err := s.bucketFor(job, leafOrd)
		if err != nil {
			s.poison(err)
			return nil // decode into a throwaway record; loop aborts next
		}
		dst = b
		reserved = b.ring.reserve()
		return &reserved.win
	}

	var streamErr error
	for {
		if err := s.poisoned(); err != nil {
			streamErr = err
			break
		}
		dst, reserved = nil, nil
		rec, err := s.rd.NextInto(slot)
		if err == io.EOF {
			break
		}
		if err == trace.ErrAwaitMore {
			// The source ended mid-frame: a producer died. Everything
			// decoded so far stands; report the tear.
			streamErr = fmt.Errorf("serve: stream ended mid-frame (%d bytes torn)", s.rd.Buffered())
			break
		}
		if err != nil {
			streamErr = err
			break
		}
		if s.hdr == nil {
			s.adoptHeader()
		}
		switch {
		case rec.Kind == trace.KindWindow && dst != nil:
			// The window decoded straight into the reserved ring slot.
			reserved.rec = rec
			dst.ring.push()
			s.shardFor(dst).enqueue(dst)
			s.windows.Add(1)
			s.srv.met.windowsTotal.Add(1)
		case rec.Kind == trace.KindWindow:
			// Slot refused (poisoned while routing): drop and abort.
		case s.mode == ModeSeq:
			// Everything else flows through the sequential bucket in
			// stream order. Non-window payloads are freshly allocated by
			// the decoder, so publishing the Record copy is safe.
			b, err := s.bucketFor(0, 0)
			if err != nil {
				streamErr = err
				break
			}
			e := b.ring.reserve()
			e.rec = rec
			b.ring.push()
			s.shardFor(b).enqueue(b)
		case rec.Kind == trace.KindTrailer:
			s.trailer = rec.Trailer
		}
		if streamErr != nil {
			break
		}
		s.srv.met.recordsTotal.Add(1)
	}

	s.quiesce()
	st := s.status(streamErr)
	if streamErr == nil {
		if err := s.poisoned(); err != nil {
			streamErr = err
			st.Error = err.Error()
		}
	}
	s.srv.cfg.Logf("serve: %s done: mode=%s windows=%d events=%d actions=%d fp=%016x parity=%s err=%q",
		s.label, st.Mode, st.Windows, st.Events, st.Actions, st.Fingerprint, st.Parity, st.Error)
	return st, streamErr
}

// adoptHeader runs once the follow reader has decoded the stream
// header: resolve topology and the effective mode. Remediated
// recordings force sequential (see mode docs). The first window's slot
// callback fires mid-decode — before the read loop sees the record —
// so bucketFor adopts eagerly; the reader guarantees the header is
// decoded before any record.
func (s *session) adoptHeader() {
	s.hdr = s.rd.Header()
	s.topo = s.rd.Topo()
	if s.hdr.Remediate != nil && s.mode == ModeFanout {
		s.srv.cfg.Logf("serve: %s: remediated recording, forcing sequential mode", s.label)
		s.mode = ModeSeq
	}
}

// bucketFor resolves (and lazily opens) the bucket owning one record
// stream: the single sequential bucket, or the (job, leaf) fan-out
// bucket.
func (s *session) bucketFor(job uint16, leafOrd int) (*bucket, error) {
	if s.hdr == nil {
		s.adoptHeader()
	}
	if s.mode == ModeSeq {
		if s.seq == nil {
			b, err := newSeqBucket(s)
			if err != nil {
				return nil, err
			}
			s.jobMu.Lock()
			s.seq = b
			s.jobMu.Unlock()
		}
		return s.seq, nil
	}
	k := bucketKey(job, leafOrd)
	if b := s.buckets[k]; b != nil {
		return b, nil
	}
	b, err := newFanoutBucket(s, job, leafOrd)
	if err != nil {
		return nil, err
	}
	s.jobMu.Lock()
	s.buckets[k] = b
	s.jobMu.Unlock()
	return b, nil
}

func (s *session) shardFor(b *bucket) *shard {
	if b.shard == nil {
		b.shard = s.srv.shards[bucketShard(len(s.srv.shards), s.id, b.job, b.leafOrd)]
	}
	return b.shard
}

// quiesce waits until every record this session published has been
// consumed by its shard. Producers have stopped, so depth only falls;
// the atomic head/tail reads give the happens-before edge that makes
// the shard-side state (fingerprints, counters) safe to read after.
func (s *session) quiesce() {
	for {
		busy := false
		for _, b := range s.allBuckets() {
			if b.ring.depth() > 0 || b.queued.Load() != 0 {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (s *session) allBuckets() []*bucket {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	out := make([]*bucket, 0, len(s.buckets)+1)
	if s.seq != nil {
		out = append(out, s.seq)
	}
	for _, b := range s.buckets {
		out = append(out, b)
	}
	return out
}

// status seals the session outcome after quiesce.
func (s *session) status(streamErr error) *SessionStatus {
	st := &SessionStatus{
		Session: s.label,
		Mode:    s.mode,
		Events:  s.events.Load(),
		Actions: s.actions.Load(),
	}
	if streamErr != nil {
		st.Error = streamErr.Error()
	}
	switch {
	case s.seq != nil:
		st.Windows = int64(s.seq.rp.Result().Windows)
		st.Fingerprint = s.seq.rp.Fingerprint()
		if tr := s.seq.rp.Trailer(); tr != nil {
			st.TrailerFingerprint = tr.Fingerprint
			if st.Fingerprint == tr.Fingerprint {
				st.Parity = "exact"
			} else {
				st.Parity = "mismatch"
			}
		} else {
			st.Parity = "none"
		}
	default:
		for _, b := range s.allBuckets() {
			st.Windows += b.windows.Load()
			if b.fp.Count() > 0 {
				st.Fingerprint ^= b.fp.Sum()
			}
		}
		st.Parity = "bucket"
		if s.trailer != nil {
			st.TrailerFingerprint = s.trailer.Fingerprint
		}
	}
	return st
}

// handleConn speaks the TCP producer protocol: one preamble line
//
//	FPS1 token=<tok> mode=<seq|fanout> label=<name>\n
//
// then raw .fpt bytes until the producer half-closes; the server
// replies with one JSON SessionStatus line and closes.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4096)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "FPS1" {
		fmt.Fprintf(conn, `{"error":"bad preamble (want FPS1)"}`+"\n")
		return
	}
	var token, mode, label string
	for _, f := range fields[1:] {
		k, v, _ := strings.Cut(f, "=")
		switch k {
		case "token":
			token = v
		case "mode":
			mode = v
		case "label":
			label = v
		}
	}
	if s.cfg.Token != "" && token != s.cfg.Token {
		s.met.authFailures.Add(1)
		fmt.Fprintf(conn, `{"error":"bad token"}`+"\n")
		return
	}
	st, err := func() (*SessionStatus, error) {
		sess := &session{
			srv:     s,
			id:      s.nextSession.Add(1),
			label:   label,
			mode:    mode,
			src:     br,
			conn:    conn,
			buckets: map[uint64]*bucket{},
		}
		if sess.mode == "" {
			sess.mode = ModeSeq
		}
		if sess.mode != ModeSeq && sess.mode != ModeFanout {
			return nil, fmt.Errorf("serve: unknown mode %q", sess.mode)
		}
		if sess.label == "" {
			sess.label = fmt.Sprintf("%s-%d", conn.RemoteAddr(), sess.id)
		}
		if err := s.register(sess); err != nil {
			return nil, err
		}
		defer s.unregister(sess)
		return sess.run()
	}()
	if err != nil && st == nil {
		fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	json.NewEncoder(conn).Encode(st)
}

// countingReader tracks ingested byte volume for /metrics.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	k, err := c.r.Read(p)
	c.n.Add(int64(k))
	return k, err
}
