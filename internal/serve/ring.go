package serve

import (
	"sync/atomic"

	"flowpulse/internal/trace"
)

// entry is one ring slot: a decoded record plus the slot-owned window
// storage it decodes into. Window records point rec.Window at &win, so
// a slot reused for the same (job, leaf) stream reaches a steady state
// where decoding allocates nothing; other record kinds carry their own
// freshly decoded payloads.
type entry struct {
	rec trace.Record
	win trace.WindowRecord
}

// ring is the SPSC queue between one session's reader goroutine
// (producer) and the shard goroutine that owns the bucket (consumer).
// Single producer, single consumer, fixed capacity: the producer
// reserves the slot at tail, decodes into it, and publishes by
// advancing tail; the consumer processes [head, tail) and advances
// head. A full ring is backpressure — the producer waits on space,
// which stalls its TCP read loop, which stalls the remote producer:
// flow control end to end with no drops.
type ring struct {
	slots []entry
	mask  uint64
	head  atomic.Uint64 // consumer position
	tail  atomic.Uint64 // producer position
	space chan struct{} // consumer → producer: slots freed
}

// newRing sizes the queue to the next power of two ≥ capacity.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{
		slots: make([]entry, n),
		mask:  uint64(n - 1),
		space: make(chan struct{}, 1),
	}
}

// reserve returns the producer-side slot to decode into, blocking
// while the ring is full (backpressure). Only the producer calls it;
// reserving does not publish — the slot stays invisible to the
// consumer until push.
func (r *ring) reserve() *entry {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.slots)) {
			return &r.slots[t&r.mask]
		}
		// Full: wait for the consumer to free slots. The signal channel
		// holds at most one token, so re-check before sleeping again.
		<-r.space
	}
}

// push publishes the previously reserved slot.
func (r *ring) push() { r.tail.Add(1) }

// peek returns the consumer-side slot at head, nil when empty. Only
// the consumer calls it; the slot stays valid until pop.
func (r *ring) peek() *entry {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	return &r.slots[h&r.mask]
}

// pop releases the slot returned by peek and signals the producer.
func (r *ring) pop() {
	r.head.Add(1)
	select {
	case r.space <- struct{}{}:
	default:
	}
}

// depth reports the queued record count (either side may call it).
func (r *ring) depth() int { return int(r.tail.Load() - r.head.Load()) }
