package serve

import (
	"bytes"
	"fmt"
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/trace"
)

// buildCleanStream encodes a synthetic recording: header + nWindows
// clean measurement windows (prediction == observation, so the
// detector scores every one and alerts on none — the service's steady
// state) + trailer.
func buildCleanStream(tb testing.TB, nWindows int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	h := trace.Header{
		Label:  "bench",
		Leaves: 4, Spines: 2, HostsPerLeaf: 1, Trunk: 1,
		Jobs: []trace.JobHeader{{Job: 0, Predictor: "analytical", Threshold: 0.05, MinPredicted: 1}},
	}
	if err := w.Begin(h); err != nil {
		tb.Fatal(err)
	}
	port := []float64{1000, 1000}
	senders := [][]float64{{250, 250, 250, 250}, {250, 250, 250, 250}}
	win := telemetry.Window{
		Packets:     8,
		PortBytes:   []int64{1000, 1000},
		SenderBytes: [][]int64{{250, 250, 250, 250}, {250, 250, 250, 250}},
	}
	step := sim.Time(50 * sim.Microsecond)
	for i := 0; i < nWindows; i++ {
		win.LeafOrdinal = i % 4
		win.Iter = uint32(i/4 + 1)
		win.OpenedAt = sim.Time(i) * step
		win.ClosedAt = win.OpenedAt + step
		w.Window(&win, true, port, senders)
	}
	if err := w.Finish(sim.Time(nWindows) * step); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeIngestAllocFree is the acceptance gate for the hot path:
// past session setup (handshake, header, ring-slot and XOR-cache
// warm-up — identical for both stream lengths, so it cancels in the
// difference), ingesting one window allocates NOTHING, in both modes.
// RingSize is kept small so every ring slot's grow-only storage
// reaches steady state within the short stream.
func TestServeIngestAllocFree(t *testing.T) {
	const (
		base  = 64
		extra = 512
	)
	small := buildCleanStream(t, base)
	big := buildCleanStream(t, base+extra)
	for _, mode := range []string{ModeSeq, ModeFanout} {
		t.Run(mode, func(t *testing.T) {
			srv, err := New(Config{Shards: 2, RingSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Drain(0)
			measure := func(raw []byte) float64 {
				return testing.AllocsPerRun(10, func() {
					st, err := srv.IngestStream(bytes.NewReader(raw), mode, "alloc")
					if err != nil || st.Events != 0 {
						panic(fmt.Sprintf("ingest: %v %+v", err, st))
					}
				})
			}
			aSmall := measure(small)
			aBig := measure(big)
			perWindow := (aBig - aSmall) / extra
			if perWindow > 0.01 {
				t.Errorf("%s: %.3f allocs per window past handshake (small=%v big=%v), want 0",
					mode, perWindow, aSmall, aBig)
			}
		})
	}
}

// BenchmarkServeIngest measures end-to-end ingestion throughput of the
// sharded path: decode, ring hop, detect, score. Reported windows/s is
// the EXPERIMENTS.md "ingestion throughput" number.
func BenchmarkServeIngest(b *testing.B) {
	for _, mode := range []string{ModeSeq, ModeFanout} {
		b.Run(mode, func(b *testing.B) {
			srv, err := New(Config{Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain(0)
			raw := buildCleanStream(b, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			st, err := srv.IngestStream(bytes.NewReader(raw), mode, "bench")
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if st.Windows != int64(b.N) {
				b.Fatalf("ingested %d windows, want %d", st.Windows, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}
