package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// Producer is the client side of the TCP stream protocol: dial,
// preamble, then write raw .fpt bytes (it implements io.Writer, so a
// trace.Writer can point straight at it). Close half-closes the write
// side and reads back the server's one-line JSON status.
type Producer struct {
	conn net.Conn
}

// DialProducer connects to a flowpulse-serve TCP listener and sends
// the preamble. mode "" defaults server-side to sequential.
func DialProducer(addr, token, mode, label string, timeout time.Duration) (*Producer, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	pre := "FPS1"
	if token != "" {
		pre += " token=" + token
	}
	if mode != "" {
		pre += " mode=" + mode
	}
	if label != "" {
		pre += " label=" + label
	}
	if _, err := io.WriteString(conn, pre+"\n"); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: preamble: %w", err)
	}
	return &Producer{conn: conn}, nil
}

// Write streams raw trace bytes to the server.
func (p *Producer) Write(b []byte) (int, error) { return p.conn.Write(b) }

// Close half-closes the stream, waits for the server's status line,
// and returns it. The producer's own write errors surface here too.
func (p *Producer) Close() (*SessionStatus, error) {
	defer p.conn.Close()
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := p.conn.(closeWriter); ok {
		if err := cw.CloseWrite(); err != nil {
			return nil, fmt.Errorf("serve: close write: %w", err)
		}
	}
	var st SessionStatus
	if err := json.NewDecoder(p.conn).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: reading status: %w", err)
	}
	if st.Error != "" {
		return &st, fmt.Errorf("serve: server reported: %s", st.Error)
	}
	return &st, nil
}
