package serve

import (
	"sync"
)

// hub fans finished NDJSON alert lines out to /alerts subscribers.
// Publishers never block: a subscriber that falls behind its buffer
// has lines dropped (and counted), because a stalled curl must not
// backpressure the ingestion path.
type hub struct {
	mu      sync.Mutex
	subs    map[chan []byte]*subState
	closed  bool
	dropped int64
}

type subState struct{ dropped int64 }

func newHub() *hub {
	return &hub{subs: map[chan []byte]*subState{}}
}

// subscribe registers a new consumer. The returned cancel func must be
// called when the consumer goes away.
func (h *hub) subscribe(buffer int) (<-chan []byte, func()) {
	ch := make(chan []byte, buffer)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = &subState{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}

// publish delivers one line to every subscriber. line must not be
// mutated afterwards (callers hand over a fresh copy).
func (h *hub) publish(line []byte) {
	h.mu.Lock()
	for ch, st := range h.subs {
		select {
		case ch <- line:
		default:
			st.dropped++
			h.dropped++
		}
	}
	h.mu.Unlock()
}

func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}
