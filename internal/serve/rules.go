package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
)

// Rule routes matching alerts to one sink. Matchers AND together; the
// zero matcher matches everything.
type Rule struct {
	// Name labels the rule in logs and the flowpulse_rule_hits metric.
	Name string `json:"name"`
	// MinDeviation matches alerts whose |deviation| is at least this.
	MinDeviation float64 `json:"min_deviation"`
	// Job, when non-nil, matches only this job id.
	Job *uint16 `json:"job"`
	// Kind filters on the localization verdict ("local-link",
	// "remote-link", "indeterminate"; empty: any).
	Kind string `json:"kind"`
	// Actions extends the rule to remediation actions (sequential
	// sessions): they carry no deviation, so only Job/Sink apply.
	Actions bool `json:"actions"`
	// Sink: "stream" (the /alerts NDJSON feed), "log" (the server
	// log), or "file" (append NDJSON to Path — the webhook stand-in:
	// point Path at a FIFO or tail it into a real webhook relay).
	Sink string `json:"sink"`
	Path string `json:"path"`
}

// ParseRule compiles the compact CLI form, comma-separated k=v:
//
//	min_dev=0.1,job=3,kind=local-link,sink=file,path=/tmp/alerts.ndjson
func ParseRule(s string) (Rule, error) {
	r := Rule{Sink: "stream"}
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("serve: rule field %q is not k=v", f)
		}
		switch k {
		case "name":
			r.Name = v
		case "min_dev", "min_deviation":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return r, fmt.Errorf("serve: rule min_dev %q: %w", v, err)
			}
			r.MinDeviation = x
		case "job":
			x, err := strconv.ParseUint(v, 10, 16)
			if err != nil {
				return r, fmt.Errorf("serve: rule job %q: %w", v, err)
			}
			j := uint16(x)
			r.Job = &j
		case "kind":
			r.Kind = v
		case "actions":
			r.Actions = v == "true" || v == "1"
		case "sink":
			r.Sink = v
		case "path":
			r.Path = v
		default:
			return r, fmt.Errorf("serve: unknown rule field %q", k)
		}
	}
	return r, nil
}

// compiledRule is a Rule with its sink opened.
type compiledRule struct {
	Rule
	file *os.File
	hits int64
}

// ruleSet evaluates every alert against the configured routes. With no
// rules configured, one catch-all feeds the alert stream.
type ruleSet struct {
	mu    sync.Mutex
	rules []*compiledRule
	logf  func(format string, args ...any)
}

func compileRules(rules []Rule, logf func(string, ...any)) (*ruleSet, error) {
	rs := &ruleSet{logf: logf}
	if len(rules) == 0 {
		rules = []Rule{{Name: "default", Sink: "stream", Actions: true}}
	}
	for i, r := range rules {
		if r.Name == "" {
			r.Name = fmt.Sprintf("rule-%d", i)
		}
		cr := &compiledRule{Rule: r}
		switch r.Sink {
		case "stream", "log":
		case "file":
			if r.Path == "" {
				return nil, fmt.Errorf("serve: rule %s: file sink needs path", r.Name)
			}
			f, err := os.OpenFile(r.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("serve: rule %s: %w", r.Name, err)
			}
			cr.file = f
		default:
			return nil, fmt.Errorf("serve: rule %s: unknown sink %q", r.Name, r.Sink)
		}
		rs.rules = append(rs.rules, cr)
	}
	return rs, nil
}

func (rs *ruleSet) close() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, r := range rs.rules {
		if r.file != nil {
			r.file.Close()
		}
	}
}

// alertLine is the NDJSON schema for one server-side detection.
type alertLine struct {
	Type      string  `json:"type"` // "alert" | "action"
	Session   string  `json:"session"`
	Job       uint16  `json:"job"`
	Leaf      int     `json:"leaf"`
	Uplink    int     `json:"uplink,omitempty"`
	Iter      uint32  `json:"iter,omitempty"`
	Deviation float64 `json:"deviation,omitempty"`
	Predicted float64 `json:"predicted,omitempty"`
	Observed  float64 `json:"observed,omitempty"`
	Verdict   string  `json:"verdict,omitempty"`
	Links     []int   `json:"links,omitempty"`
	Action    string  `json:"action,omitempty"`
	Link      int     `json:"link,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	AtNanos   int64   `json:"at_ns"`
}

// dispatch routes one detection. Runs on the shard goroutine; the
// event may reference ring-slot storage, so the line is fully
// serialized here and only the copy travels.
func (rs *ruleSet) dispatch(h *hub, session string, e *monitor.Event) {
	al := alertLine{
		Type:      "alert",
		Session:   session,
		Job:       e.Alert.Job,
		Leaf:      e.Alert.LeafOrdinal,
		Uplink:    e.Alert.Uplink,
		Iter:      e.Alert.Iter,
		Deviation: e.Alert.Deviation,
		Predicted: e.Alert.Predicted,
		Observed:  e.Alert.Observed,
		Verdict:   e.Verdict.Kind.String(),
		AtNanos:   int64(e.Alert.At),
	}
	for _, l := range e.Verdict.Links {
		al.Links = append(al.Links, int(l))
	}
	rs.route(h, &al, math.Abs(e.Alert.Deviation), false)
}

// dispatchAction routes one replayed remediation action.
func (rs *ruleSet) dispatchAction(h *hub, session string, a *remediate.Action) {
	al := alertLine{
		Type:    "action",
		Session: session,
		Action:  a.Kind.String(),
		Link:    int(a.Link),
		Detail:  a.Detail,
		AtNanos: int64(a.At),
	}
	rs.route(h, &al, 0, true)
}

func (rs *ruleSet) route(h *hub, al *alertLine, absDev float64, isAction bool) {
	var line []byte
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, r := range rs.rules {
		if isAction {
			if !r.Actions {
				continue
			}
		} else {
			if absDev < r.MinDeviation {
				continue
			}
			if r.Kind != "" && r.Kind != al.Verdict {
				continue
			}
		}
		if r.Job != nil && *r.Job != al.Job {
			continue
		}
		if line == nil {
			var err error
			if line, err = json.Marshal(al); err != nil {
				rs.logf("serve: marshal alert: %v", err)
				return
			}
			line = append(line, '\n')
		}
		r.hits++
		switch r.Sink {
		case "stream":
			h.publish(line)
		case "log":
			rs.logf("serve: [%s] %s", r.Name, line[:len(line)-1])
		case "file":
			if _, err := r.file.Write(line); err != nil {
				rs.logf("serve: rule %s write: %v", r.Name, err)
			}
		}
	}
}
