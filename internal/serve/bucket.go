package serve

import (
	"fmt"
	"math"
	"sync/atomic"

	"flowpulse/internal/detect"
	"flowpulse/internal/localize"
	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/trace"
)

// bucket is the unit of sharded work: one ordered record stream with
// its own SPSC ring and its own detection state, pinned to one shard
// goroutine by hash. A fan-out session opens one bucket per (job,
// leaf) — the finest split that preserves the ordering the detector's
// baseline and the per-bucket fingerprint need. A sequential session
// opens exactly one bucket for the whole stream and runs the full
// offline Replayer through it, which preserves the global event/action
// order and therefore reproduces the trailer fingerprint bit for bit.
type bucket struct {
	sess  *session
	shard *shard
	ring  *ring

	// queued: 1 while the bucket sits in (or is being handed to) the
	// shard's work queue; the producer only enqueues on the 0→1 edge,
	// so a bucket is never queued twice.
	queued atomic.Int32

	// Sequential mode: the whole session replayed in stream order.
	rp *trace.Replayer

	// Fan-out mode: one (job, leaf) substream through its own
	// detect → localize pipeline, fed by recorded prediction snapshots.
	job     uint16
	leafOrd int
	pred    *trace.SnapshotPredictor
	pipe    *monitor.Pipeline
	fp      trace.StreamFP
	win     telemetry.Window // reused per record

	// lastScore is the bucket's most recent detector score bits
	// (math.Float64bits), exported as a deviation gauge.
	lastScore atomic.Uint64

	windows atomic.Int64
	err     error // first processing error; poisons the session
}

// newSeqBucket builds the single whole-session bucket.
func newSeqBucket(s *session) (*bucket, error) {
	rp, err := trace.NewReplayer(s.hdr, s.topo, trace.ReplayOptions{NoHistory: true})
	if err != nil {
		return nil, err
	}
	b := &bucket{sess: s, ring: newRing(s.srv.cfg.RingSize), rp: rp}
	rp.OnEvent = func(e monitor.Event) { s.srv.publishEvent(s, &e) }
	rp.OnAction = func(a remediate.Action) { s.srv.publishAction(s, &a) }
	return b, nil
}

// newFanoutBucket builds one (job, leaf) substream bucket.
func newFanoutBucket(s *session, job uint16, leafOrd int) (*bucket, error) {
	var jh *trace.JobHeader
	for i := range s.hdr.Jobs {
		if s.hdr.Jobs[i].Job == job {
			jh = &s.hdr.Jobs[i]
			break
		}
	}
	if jh == nil && !s.hdr.Shared {
		jh = &s.hdr.Jobs[0]
	}
	if jh == nil {
		return nil, fmt.Errorf("serve: window for job %d not in stream header", job)
	}
	if leafOrd < 0 || leafOrd >= len(s.topo.Leaves()) {
		return nil, fmt.Errorf("serve: window leaf ordinal %d out of range", leafOrd)
	}
	b := &bucket{
		sess: s, ring: newRing(s.srv.cfg.RingSize),
		job: job, leafOrd: leafOrd,
		pred: &trace.SnapshotPredictor{},
		fp:   trace.NewStreamFP(),
	}
	det := detect.New(s.topo, b.pred, detect.Config{
		Threshold:         jh.Threshold,
		MinPredicted:      jh.MinPredicted,
		AggregateSymmetry: jh.AggregateSymmetry,
		CEDiscount:        jh.CEDiscount,
	})
	b.pipe = monitor.NewPipeline(monitor.PipelineConfig{
		Pred:      b.pred,
		Detect:    det,
		Localize:  localize.New(s.topo, det.Threshold(), 0),
		NoHistory: true,
		OnEvent: func(e monitor.Event) {
			b.fp.Event(&e)
			s.srv.publishEvent(s, &e)
		},
		OnWindow: func(ws monitor.WindowScore) {
			if ws.Scored {
				b.lastScore.Store(math.Float64bits(ws.Score))
			}
		},
	})
	return b, nil
}

// process consumes one published ring entry on the shard goroutine.
func (b *bucket) process(e *entry) error {
	if b.rp != nil {
		return b.rp.Feed(&e.rec)
	}
	// Fan-out: only window records reach fan-out rings.
	wr := e.rec.Window
	b.pred.Set(wr.Ready, wr.PortPred, wr.SenderPred)
	b.win = telemetry.Window{
		Leaf:         b.sess.topo.Leaves()[wr.LeafOrd],
		LeafOrdinal:  wr.LeafOrd,
		Job:          wr.Job,
		Iter:         wr.Iter,
		PortBytes:    wr.PortBytes,
		SenderBytes:  wr.SenderBytes,
		Packets:      wr.Packets,
		CEBytes:      wr.CEBytes,
		AggPortBytes: wr.AggPortBytes,
		OpenedAt:     wr.OpenedAt,
		ClosedAt:     wr.ClosedAt,
	}
	b.pipe.OnOwnedWindow(&b.win)
	b.windows.Add(1)
	return nil
}

// drain processes every published entry, on the shard goroutine.
func (b *bucket) drain() {
	for {
		e := b.ring.peek()
		if e == nil {
			return
		}
		if b.err == nil {
			if err := b.process(e); err != nil {
				b.err = err
				b.sess.poison(err)
			}
		}
		b.ring.pop()
	}
}
