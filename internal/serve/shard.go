package serve

import (
	"hash/fnv"
	"sync"
)

// shard is one goroutine-owned lane of the ingestion path. Buckets are
// pinned to shards by (session, job, leaf) hash, so one bucket's
// records are always processed by the same goroutine, in ring order —
// the SPSC discipline every pipeline requires — while different
// buckets (different jobs, different leaves, different producers)
// progress in parallel across shards.
type shard struct {
	id   int
	work chan *bucket
	done chan struct{}
}

func newShard(id int, queue int) *shard {
	return &shard{id: id, work: make(chan *bucket, queue), done: make(chan struct{})}
}

// run is the shard goroutine: drain whichever bucket signals work.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case b := <-s.work:
			s.consume(b)
		case <-s.done:
			// Drain stragglers enqueued before the stop signal.
			for {
				select {
				case b := <-s.work:
					s.consume(b)
				default:
					return
				}
			}
		}
	}
}

// consume drains a bucket handed over through the work queue. queued
// clears BEFORE draining, so a producer publishing mid-drain either
// gets its record drained or wins the 0→1 edge; the re-check loop then
// reclaims the token locally instead of self-enqueueing (the shard
// must never block sending to its own queue).
func (s *shard) consume(b *bucket) {
	for {
		b.queued.Store(0)
		b.drain()
		if b.ring.depth() == 0 || !b.queued.CompareAndSwap(0, 1) {
			return
		}
	}
}

// enqueue hands a bucket with fresh records to its shard. Called by
// the producer after push; the 0→1 edge on queued deduplicates, and a
// full work queue blocks the producer (backpressure), never the shard.
func (s *shard) enqueue(b *bucket) {
	if b.queued.CompareAndSwap(0, 1) {
		s.work <- b
	}
}

func (s *shard) stop() { close(s.done) }

// bucketShard pins a bucket key to a shard.
func bucketShard(nShards int, sessionID uint64, job uint16, leafOrd int) int {
	h := fnv.New64a()
	var k [8 + 2 + 4]byte
	for i := 0; i < 8; i++ {
		k[i] = byte(sessionID >> (8 * i))
	}
	k[8], k[9] = byte(job), byte(job>>8)
	k[10], k[11], k[12], k[13] = byte(leafOrd), byte(leafOrd>>8), byte(leafOrd>>16), byte(leafOrd>>24)
	h.Write(k[:])
	return int(h.Sum64() % uint64(nShards))
}
