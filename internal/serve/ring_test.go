package serve

import (
	"fmt"
	"runtime"
	"testing"

	"flowpulse/internal/trace"
)

// TestRingSPSCOrder pushes records through a tiny ring from a producer
// goroutine while the consumer pops — capacity 4 forces wraparound and
// constant full-ring backpressure — and checks order and integrity.
func TestRingSPSCOrder(t *testing.T) {
	const n = 10000
	r := newRing(4)
	done := make(chan error, 1)
	go func() {
		next := uint32(1)
		for got := 0; got < n; {
			e := r.peek()
			if e == nil {
				runtime.Gosched()
				continue
			}
			if e.win.Iter != next {
				done <- fmt.Errorf("iter %d, want %d", e.win.Iter, next)
				return
			}
			next++
			got++
			r.pop()
		}
		done <- nil
	}()
	for i := 1; i <= n; i++ {
		e := r.reserve()
		e.win.Iter = uint32(i)
		e.rec = trace.Record{Kind: trace.KindWindow, Window: &e.win}
		r.push()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.depth() != 0 {
		t.Fatalf("depth %d after drain", r.depth())
	}
}

// TestRingSizesToPowerOfTwo: capacity rounds up so the mask works.
func TestRingSizesToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {256, 256}, {257, 512}} {
		if got := len(newRing(tc.in).slots); got != tc.want {
			t.Errorf("newRing(%d) -> %d slots, want %d", tc.in, got, tc.want)
		}
	}
}
