package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// metrics are the service counters, all lock-free atomics so the hot
// path never serializes on observability.
type metrics struct {
	windowsTotal   atomic.Int64
	recordsTotal   atomic.Int64
	bytesTotal     atomic.Int64
	alertsTotal    atomic.Int64
	actionsTotal   atomic.Int64
	sessionsActive atomic.Int64
	sessionsTotal  atomic.Int64
	authFailures   atomic.Int64
}

// writeMetrics renders the Prometheus text exposition: totals, a
// windows/sec rate, per-shard queue depth, and per-(session, job)
// deviation gauges from the fan-out buckets.
func (s *Server) writeMetrics(w io.Writer) {
	now := time.Now()
	s.rateMu.Lock()
	wins := s.met.windowsTotal.Load()
	rate := 0.0
	if !s.rateAt.IsZero() {
		if dt := now.Sub(s.rateAt).Seconds(); dt > 0 {
			rate = float64(wins-s.rateWins) / dt
		}
	}
	s.rateAt, s.rateWins = now, wins
	s.rateMu.Unlock()

	fmt.Fprintf(w, "# TYPE flowpulse_windows_total counter\nflowpulse_windows_total %d\n", wins)
	fmt.Fprintf(w, "# TYPE flowpulse_records_total counter\nflowpulse_records_total %d\n", s.met.recordsTotal.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_ingest_bytes_total counter\nflowpulse_ingest_bytes_total %d\n", s.met.bytesTotal.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_alerts_total counter\nflowpulse_alerts_total %d\n", s.met.alertsTotal.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_actions_total counter\nflowpulse_actions_total %d\n", s.met.actionsTotal.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_sessions_active gauge\nflowpulse_sessions_active %d\n", s.met.sessionsActive.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_sessions_total counter\nflowpulse_sessions_total %d\n", s.met.sessionsTotal.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_auth_failures_total counter\nflowpulse_auth_failures_total %d\n", s.met.authFailures.Load())
	fmt.Fprintf(w, "# TYPE flowpulse_windows_per_second gauge\nflowpulse_windows_per_second %g\n", rate)

	// Shard depth and deviation gauges walk the live session/bucket
	// registry; scrapes are rare, so the locks here are off the hot
	// path.
	depth := make([]int, len(s.shards))
	type devKey struct {
		label string
		job   uint16
	}
	devs := map[devKey]float64{}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		for _, b := range sess.allBuckets() {
			if b.shard != nil {
				depth[b.shard.id] += b.ring.depth()
			}
			if b.pipe != nil {
				d := math.Float64frombits(b.lastScore.Load())
				k := devKey{sess.label, b.job}
				if d > devs[k] {
					devs[k] = d
				}
			}
		}
	}
	fmt.Fprintf(w, "# TYPE flowpulse_shard_depth gauge\n")
	for i, d := range depth {
		fmt.Fprintf(w, "flowpulse_shard_depth{shard=\"%d\"} %d\n", i, d)
	}
	keys := make([]devKey, 0, len(devs))
	for k := range devs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].label != keys[j].label {
			return keys[i].label < keys[j].label
		}
		return keys[i].job < keys[j].job
	})
	fmt.Fprintf(w, "# TYPE flowpulse_deviation gauge\n")
	for _, k := range keys {
		fmt.Fprintf(w, "flowpulse_deviation{session=%q,job=\"%d\"} %g\n", k.label, k.job, devs[k])
	}
}
