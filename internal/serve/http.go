package serve

import (
	"encoding/json"
	"net/http"
	"strings"
)

// HTTPHandler serves the operational surface:
//
//	GET  /healthz  — liveness ("ok", or "draining" with 503)
//	GET  /metrics  — Prometheus text exposition
//	GET  /alerts   — streaming NDJSON alert subscription
//	POST /ingest   — one .fpt stream as the (chunked) request body;
//	                 ?mode=seq|fanout, ?label=...; auth via
//	                 Authorization: Bearer <token> or X-FlowPulse-Token
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.HandleFunc("/ingest", s.handleIngest)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ch, cancel := s.hub.subscribe(256)
	defer cancel()
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				return // hub closed: drain
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) authorized(r *http.Request) bool {
	if s.cfg.Token == "" {
		return true
	}
	if tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok && tok == s.cfg.Token {
		return true
	}
	return r.Header.Get("X-FlowPulse-Token") == s.cfg.Token
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a .fpt stream", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorized(r) {
		s.met.authFailures.Add(1)
		http.Error(w, "bad token", http.StatusUnauthorized)
		return
	}
	st, err := s.IngestStream(r.Body, r.URL.Query().Get("mode"), r.URL.Query().Get("label"))
	w.Header().Set("Content-Type", "application/json")
	if err != nil && st == nil {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	if st.Error != "" {
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	json.NewEncoder(w).Encode(st)
}
