// Package serve is FlowPulse's detection-as-a-product layer: a
// long-running, stdlib-only service that ingests streamed .fpt frames
// from many concurrent producers (simulators, recorded traces, and —
// eventually — real fabric taps), runs the per-job detect → localize
// stack server-side on a sharded allocation-free path, and exposes the
// results operationally: Prometheus-text metrics, a streaming NDJSON
// alert feed, and a rule engine routing alerts to sinks.
//
// The ingestion path is the same code that runs embedded: frames
// decode with the internal/trace follow Reader straight into
// ring-slot-owned storage, windows flow through internal/monitor
// pipelines, and alerts fold into the same FNV-64a fingerprints the
// trace trailer pins — which is what makes the service verifiable:
// alerts raised on a streamed recording are fingerprint-identical to
// an offline replay of the same file.
package serve

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flowpulse/internal/monitor"
	"flowpulse/internal/remediate"
)

// Config tunes a Server. The zero value works.
type Config struct {
	// Token, when non-empty, must be presented by every producer (TCP
	// preamble token=, HTTP Authorization: Bearer or X-FlowPulse-Token).
	Token string
	// Shards is the number of ingestion goroutines (0: 4).
	Shards int
	// RingSize is each bucket's SPSC ring capacity in records (0: 256).
	// A full ring stalls its producer — backpressure, not drops.
	RingSize int
	// ShardQueue bounds each shard's bucket work queue (0: 1024).
	ShardQueue int
	// Rules route alerts to sinks. Empty: one catch-all rule feeding
	// the /alerts stream.
	Rules []Rule
	// Logf receives operational log lines (nil: discarded).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.ShardQueue <= 0 {
		c.ShardQueue = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is one flowpulse-serve instance.
type Server struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup // shard goroutines

	mu        sync.Mutex
	sessions  map[uint64]*session
	listeners []net.Listener
	draining  bool

	nextSession atomic.Uint64
	sessWG      sync.WaitGroup

	met   metrics
	hub   *hub
	rules *ruleSet

	// windows/sec gauge state: delta since the previous scrape.
	rateMu   sync.Mutex
	rateAt   time.Time
	rateWins int64
}

// New builds and starts a Server's shard pool. Callers then attach
// listeners (ServeTCP / HTTPHandler) or feed streams directly
// (IngestStream), and finish with Drain.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	rules, err := compileRules(cfg.Rules, cfg.Logf)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		sessions: map[uint64]*session{},
		hub:      newHub(),
		rules:    rules,
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, cfg.ShardQueue)
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go sh.run(&s.wg)
	}
	return s, nil
}

// ServeTCP accepts raw-stream producers on l until the listener closes
// (Drain closes it). Each connection runs its own session goroutine.
func (s *Server) ServeTCP(l net.Listener) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.sessWG.Add(1)
		go func() {
			defer s.sessWG.Done()
			s.handleConn(conn)
		}()
	}
}

// register installs a session; refused while draining.
func (s *Server) register(sess *session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return fmt.Errorf("serve: draining, not accepting new streams")
	}
	s.sessions[sess.id] = sess
	s.met.sessionsActive.Add(1)
	s.met.sessionsTotal.Add(1)
	return nil
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.met.sessionsActive.Add(-1)
}

// Drain stops the service gracefully: close listeners (no new
// streams), wait up to timeout for in-flight sessions to finish, then
// stop the shard pool — flushing every queued record — and report each
// finished session's trailer fingerprints through Logf. It returns
// false if sessions were still running at the deadline (their
// producers were cut off mid-stream).
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	ls := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}

	done := make(chan struct{})
	go func() { s.sessWG.Wait(); close(done) }()
	clean := true
	select {
	case <-done:
	case <-time.After(timeout):
		clean = false
		// Cut the stragglers' connections so their goroutines end.
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.abort()
		}
		s.mu.Unlock()
		<-done
	}

	for _, sh := range s.shards {
		sh.stop()
	}
	s.wg.Wait()
	s.hub.close()
	s.rules.close()
	s.cfg.Logf("serve: drained (clean=%v, sessions=%d, windows=%d, alerts=%d)",
		clean, s.met.sessionsTotal.Load(), s.met.windowsTotal.Load(), s.met.alertsTotal.Load())
	return clean
}

// publishEvent fans one server-side detection out: counters, rule
// sinks, alert stream. It runs synchronously on the shard goroutine —
// the verdict may reference ring-slot storage, so everything
// serializes before returning.
func (s *Server) publishEvent(sess *session, e *monitor.Event) {
	s.met.alertsTotal.Add(1)
	sess.events.Add(1)
	s.rules.dispatch(s.hub, sess.label, e)
}

// publishAction mirrors publishEvent for replayed remediation actions
// (sequential sessions only).
func (s *Server) publishAction(sess *session, a *remediate.Action) {
	s.met.actionsTotal.Add(1)
	sess.actions.Add(1)
	s.rules.dispatchAction(s.hub, sess.label, a)
}
