package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flowpulse/internal/core"
	"flowpulse/internal/experiments"
	"flowpulse/internal/sim"
	"flowpulse/internal/trace"
)

// recordRun simulates one faulted training run and returns the .fpt
// recording bytes (the serve e2e input).
func recordRun(t *testing.T, remediated bool, seed uint64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.fpt")
	tr := experiments.Trial{
		Scenario: core.Scenario{
			Leaves: 4, Spines: 2,
			BytesPerRank: 1 << 20,
			Background:   4 * sim.Microsecond,
			Seed:         seed,
		},
		Fault:      core.LeafSpineLink{LeafOrd: 2, SpineOrd: 1},
		DropRate:   0.05,
		CleanIters: 2,
		FaultIters: 4,
		Remediate:  remediated,
		TracePath:  path,
		TraceLabel: fmt.Sprintf("serve-test-%d", seed),
	}
	if _, err := tr.Run(); err != nil {
		t.Fatalf("recording run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSequentialParity is the tentpole acceptance criterion: alerts
// (and remediation actions) raised by the service on a streamed
// recording are fingerprint-identical to offline replay of the same
// file — and to the trailer the recorder sealed online.
func TestSequentialParity(t *testing.T) {
	raw := recordRun(t, true, 7)
	rr, err := trace.Replay(bytes.NewReader(raw), trace.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Events) == 0 {
		t.Fatal("recording produced no events; fixture too tame for a parity test")
	}

	srv := newTestServer(t, Config{Shards: 3})
	defer srv.Drain(5 * time.Second)
	st, err := srv.IngestStream(bytes.NewReader(raw), ModeSeq, "parity")
	if err != nil {
		t.Fatalf("IngestStream: %v", err)
	}
	if st.Parity != "exact" {
		t.Fatalf("parity = %q (fp %016x, trailer %016x)", st.Parity, st.Fingerprint, st.TrailerFingerprint)
	}
	if st.Fingerprint != rr.Fingerprint {
		t.Fatalf("service fp %016x != offline replay fp %016x", st.Fingerprint, rr.Fingerprint)
	}
	if st.Events != int64(len(rr.Events)) || st.Actions != int64(len(rr.Actions)) {
		t.Fatalf("service %d events / %d actions, offline %d / %d",
			st.Events, st.Actions, len(rr.Events), len(rr.Actions))
	}
	if st.Windows != int64(rr.Windows) {
		t.Fatalf("service %d windows, offline %d", st.Windows, rr.Windows)
	}
}

// TestFanoutBucketParity: the sharded fan-out path preserves only
// per-(job, leaf) order, so its combined fingerprint must equal
// offline replay's order-insensitive BucketFingerprint.
func TestFanoutBucketParity(t *testing.T) {
	raw := recordRun(t, false, 11)
	rr, err := trace.Replay(bytes.NewReader(raw), trace.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Events) == 0 {
		t.Fatal("recording produced no events")
	}

	srv := newTestServer(t, Config{Shards: 4})
	defer srv.Drain(5 * time.Second)
	st, err := srv.IngestStream(bytes.NewReader(raw), ModeFanout, "fanout")
	if err != nil {
		t.Fatalf("IngestStream: %v", err)
	}
	if st.Mode != ModeFanout || st.Parity != "bucket" {
		t.Fatalf("mode=%q parity=%q", st.Mode, st.Parity)
	}
	if st.Fingerprint != rr.BucketFingerprint {
		t.Fatalf("service bucket fp %016x != offline bucket fp %016x", st.Fingerprint, rr.BucketFingerprint)
	}
	if st.Events != int64(len(rr.Events)) {
		t.Fatalf("service %d events, offline %d", st.Events, len(rr.Events))
	}
}

// TestRemediatedStreamForcesSequential: a fan-out request for a
// remediated recording is demoted to sequential (fan-out cannot replay
// the probe loop's global order) and still reaches exact parity.
func TestRemediatedStreamForcesSequential(t *testing.T) {
	raw := recordRun(t, true, 13)
	srv := newTestServer(t, Config{})
	defer srv.Drain(5 * time.Second)
	st, err := srv.IngestStream(bytes.NewReader(raw), ModeFanout, "forced")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != ModeSeq || st.Parity != "exact" {
		t.Fatalf("mode=%q parity=%q, want forced sequential exact", st.Mode, st.Parity)
	}
}

// TestTCPMultiProducer streams ≥8 recordings concurrently over real
// TCP connections and asserts per-producer isolation: every session's
// fingerprint equals its own file's offline replay — windows from one
// producer never bleed into another's detection state.
func TestTCPMultiProducer(t *testing.T) {
	const producers = 8
	raws := make([][]byte, producers)
	wants := make([]uint64, producers)
	var prep sync.WaitGroup
	errs := make([]error, producers)
	for i := 0; i < producers; i++ {
		prep.Add(1)
		go func(i int) {
			defer prep.Done()
			raws[i] = recordRun(t, i%2 == 0, uint64(20+i))
			rr, err := trace.Replay(bytes.NewReader(raws[i]), trace.ReplayOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			wants[i] = rr.Fingerprint
		}(i)
	}
	prep.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("producer %d prep: %v", i, err)
		}
	}

	srv := newTestServer(t, Config{Token: "hunter2", Shards: 4, RingSize: 32})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Drain(10 * time.Second)

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := DialProducer(l.Addr().String(), "hunter2", ModeSeq, fmt.Sprintf("prod-%d", i), 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			// Dribble the stream in small writes to interleave producers.
			raw := raws[i]
			for len(raw) > 0 {
				n := 4096
				if n > len(raw) {
					n = len(raw)
				}
				if _, err := p.Write(raw[:n]); err != nil {
					errs[i] = err
					return
				}
				raw = raw[n:]
			}
			st, err := p.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if st.Fingerprint != wants[i] {
				errs[i] = fmt.Errorf("producer %d: fp %016x, want %016x (parity %s)", i, st.Fingerprint, wants[i], st.Parity)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("producer %d: %v", i, err)
		}
	}
}

// TestTCPBadToken: a wrong token is refused before any frame decodes.
func TestTCPBadToken(t *testing.T) {
	srv := newTestServer(t, Config{Token: "secret"})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Drain(time.Second)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "FPS1 token=wrong\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.Contains(line, "bad token") {
		t.Fatalf("line=%q err=%v", line, err)
	}
	if srv.met.authFailures.Load() != 1 {
		t.Fatalf("auth failures = %d", srv.met.authFailures.Load())
	}
}

// TestHTTPSurface drives the whole operational surface over HTTP:
// subscribe to /alerts, POST a recording to /ingest, and check
// /metrics and /healthz.
func TestHTTPSurface(t *testing.T) {
	raw := recordRun(t, true, 31)
	srv := newTestServer(t, Config{Token: "tok"})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()
	defer srv.Drain(5 * time.Second)

	// Subscribe to the alert stream before ingesting.
	alertReq, _ := http.NewRequest("GET", ts.URL+"/alerts", nil)
	alertResp, err := http.DefaultClient.Do(alertReq)
	if err != nil {
		t.Fatal(err)
	}
	defer alertResp.Body.Close()
	alertLines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(alertResp.Body)
		for sc.Scan() {
			alertLines <- sc.Text()
		}
		close(alertLines)
	}()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}

	// Unauthenticated ingest is refused.
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated ingest: %s", resp.Status)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/ingest?label=http-prod", bytes.NewReader(raw))
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || st.Parity != "exact" || st.Events == 0 {
		t.Fatalf("ingest: %s %+v", resp.Status, st)
	}

	// The alert stream saw at least one NDJSON alert for this session.
	deadline := time.After(5 * time.Second)
	sawAlert := false
	for !sawAlert {
		select {
		case line := <-alertLines:
			if strings.Contains(line, `"type":"alert"`) && strings.Contains(line, `"session":"http-prod"`) {
				sawAlert = true
			}
		case <-deadline:
			t.Fatal("no alert on /alerts stream")
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metricsText := mbuf.String()
	for _, want := range []string{
		"flowpulse_windows_total", "flowpulse_alerts_total",
		"flowpulse_sessions_total 1", "flowpulse_shard_depth{shard=\"0\"}",
		"flowpulse_windows_per_second",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsText)
		}
	}
	if strings.Contains(metricsText, "flowpulse_windows_total 0\n") {
		t.Error("windows_total still zero after ingest")
	}
}

// TestRulesRouting: a file-sink rule receives exactly the alerts that
// match its deviation floor, and ParseRule round-trips the CLI form.
func TestRulesRouting(t *testing.T) {
	r, err := ParseRule("name=ops,min_dev=0.1,sink=file,path=" + filepath.Join(t.TempDir(), "x.ndjson"))
	if err != nil || r.Name != "ops" || r.MinDeviation != 0.1 || r.Sink != "file" {
		t.Fatalf("ParseRule: %+v %v", r, err)
	}
	if _, err := ParseRule("min_dev=abc"); err == nil {
		t.Fatal("bad min_dev accepted")
	}
	if _, err := ParseRule("sink"); err == nil {
		t.Fatal("non-k=v accepted")
	}

	raw := recordRun(t, false, 41)
	sinkPath := filepath.Join(t.TempDir(), "alerts.ndjson")
	srv := newTestServer(t, Config{Rules: []Rule{
		{Name: "everything", Sink: "file", Path: sinkPath},
		{Name: "impossible", MinDeviation: 99, Sink: "log"},
	}})
	st, err := srv.IngestStream(bytes.NewReader(raw), ModeFanout, "ruled")
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain(5 * time.Second)
	if st.Events == 0 {
		t.Fatal("no events")
	}
	sunk, err := os.ReadFile(sinkPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(sunk, []byte("\n"))
	if int64(lines) != st.Events {
		t.Fatalf("file sink got %d lines, want %d", lines, st.Events)
	}
	var first alertLine
	if err := json.Unmarshal(sunk[:bytes.IndexByte(sunk, '\n')], &first); err != nil {
		t.Fatalf("sink line not JSON: %v", err)
	}
	if first.Session != "ruled" || first.Type != "alert" {
		t.Fatalf("sink line: %+v", first)
	}
	if srv.rules.rules[1].hits != 0 {
		t.Fatalf("min_dev=99 rule matched %d alerts", srv.rules.rules[1].hits)
	}
}

// TestDrainRefusesNewStreams: after Drain begins, new sessions are
// refused and the drain reports clean.
func TestDrainRefusesNewStreams(t *testing.T) {
	srv := newTestServer(t, Config{})
	if !srv.Drain(time.Second) {
		t.Fatal("idle drain not clean")
	}
	if _, err := srv.IngestStream(bytes.NewReader(nil), ModeSeq, "late"); err == nil {
		t.Fatal("ingest accepted after drain")
	}
}

// TestTornStreamReported: a producer dying mid-frame yields a status
// with the torn-stream error, and everything decoded before the tear
// still processed.
func TestTornStreamReported(t *testing.T) {
	raw := recordRun(t, false, 51)
	srv := newTestServer(t, Config{})
	defer srv.Drain(5 * time.Second)
	st, err := srv.IngestStream(bytes.NewReader(raw[:len(raw)-7]), ModeSeq, "torn")
	if err == nil || !strings.Contains(err.Error(), "mid-frame") {
		t.Fatalf("err = %v", err)
	}
	if st == nil || st.Windows == 0 {
		t.Fatalf("pre-tear windows lost: %+v", st)
	}
}
