// Package spray implements the per-packet load-balancing policies of
// an APS fabric (§2 "Link layer"): adaptive least-loaded spraying (the
// deployment default the paper models), DRILL-style power-of-two-
// choices, uniform random spraying, deterministic round-robin, and a
// per-flow ECMP hash baseline (the traditional datacenter scheme the
// paper contrasts against in §1).
//
// A Policy instance is owned by a single switch and may keep state
// (DRILL memory, round-robin cursors); switches are simulated
// single-threaded so no locking is needed.
package spray

import (
	"fmt"

	"flowpulse/internal/sim"
)

// Candidate is one eligible egress port for a packet, with its current
// queue depth. Eligibility (FIB reachability, administratively-up) is
// decided by the switch before calling the policy: a policy never
// learns about ports the FIB has removed, which is what makes routing
// converge around *known* faults only.
type Candidate struct {
	// Port is the switch-local egress port index.
	Port int
	// QueueBytes is the port's current egress queue occupancy.
	QueueBytes int64
}

// Policy selects an egress port for each packet.
type Policy interface {
	// Pick returns an index into cands. flowKey identifies the packet's
	// flow for policies that balance per flow rather than per packet.
	// cands is non-empty and ordered by port index.
	Pick(cands []Candidate, flowKey uint64) int
	// Name identifies the policy in experiment records.
	Name() string
}

// Kind names a built-in policy.
type Kind string

// Built-in policy kinds.
const (
	// LeastLoaded scans all candidates and picks the minimum queue,
	// breaking ties uniformly at random. This is the "selecting the
	// least congested port" adaptive strategy of §1 and the default
	// everywhere in this repository.
	LeastLoaded Kind = "least-loaded"
	// DRILL samples two random candidates plus the best port from the
	// previous decision and picks the least loaded of the three
	// (Ghorbani et al., §1 [16]).
	DRILL Kind = "drill"
	// Random sprays uniformly at random per packet (§1 [12]).
	Random Kind = "random"
	// RoundRobin cycles deterministically through candidates.
	RoundRobin Kind = "round-robin"
	// ECMP hashes the flow key — per-flow load balancing, the
	// traditional baseline that performs poorly for training traffic.
	ECMP Kind = "ecmp"
)

// Kinds lists every built-in policy kind.
func Kinds() []Kind { return []Kind{LeastLoaded, DRILL, Random, RoundRobin, ECMP} }

// New builds a fresh policy instance of the given kind. Each switch
// must own its own instance.
func New(kind Kind, rng *sim.RNG) (Policy, error) {
	switch kind {
	case LeastLoaded:
		return &leastLoaded{rng: rng}, nil
	case DRILL:
		return &drill{rng: rng, samples: 2, lastBest: -1}, nil
	case Random:
		return &random{rng: rng}, nil
	case RoundRobin:
		return &roundRobin{}, nil
	case ECMP:
		return ecmp{}, nil
	default:
		return nil, fmt.Errorf("spray: unknown policy kind %q", kind)
	}
}

// MustNew is New for statically known kinds; it panics on error.
func MustNew(kind Kind, rng *sim.RNG) Policy {
	p, err := New(kind, rng)
	if err != nil {
		panic(err)
	}
	return p
}

type leastLoaded struct {
	rng  *sim.RNG
	ties []int // scratch, reused across calls
}

func (p *leastLoaded) Pick(cands []Candidate, _ uint64) int {
	best := cands[0].QueueBytes
	p.ties = p.ties[:0]
	p.ties = append(p.ties, 0)
	for i := 1; i < len(cands); i++ {
		switch q := cands[i].QueueBytes; {
		case q < best:
			best = q
			p.ties = p.ties[:0]
			p.ties = append(p.ties, i)
		case q == best:
			p.ties = append(p.ties, i)
		}
	}
	if len(p.ties) == 1 {
		return p.ties[0]
	}
	return p.ties[p.rng.PickN(len(p.ties))]
}

func (p *leastLoaded) Name() string { return string(LeastLoaded) }

type drill struct {
	rng      *sim.RNG
	samples  int
	lastBest int // port index (not candidate index) remembered across decisions
}

func (p *drill) Pick(cands []Candidate, _ uint64) int {
	bestIdx := -1
	consider := func(i int) {
		if bestIdx < 0 || cands[i].QueueBytes < cands[bestIdx].QueueBytes {
			bestIdx = i
		}
	}
	for s := 0; s < p.samples; s++ {
		consider(p.rng.PickN(len(cands)))
	}
	// Include the remembered best port if it is still a candidate.
	if p.lastBest >= 0 {
		for i := range cands {
			if cands[i].Port == p.lastBest {
				consider(i)
				break
			}
		}
	}
	if bestIdx < 0 {
		bestIdx = 0
	}
	p.lastBest = cands[bestIdx].Port
	return bestIdx
}

func (p *drill) Name() string { return string(DRILL) }

type random struct{ rng *sim.RNG }

func (p *random) Pick(cands []Candidate, _ uint64) int { return p.rng.PickN(len(cands)) }
func (p *random) Name() string                         { return string(Random) }

type roundRobin struct{ next int }

func (p *roundRobin) Pick(cands []Candidate, _ uint64) int {
	i := p.next % len(cands)
	p.next++
	return i
}

func (p *roundRobin) Name() string { return string(RoundRobin) }

type ecmp struct{}

func (ecmp) Pick(cands []Candidate, flowKey uint64) int {
	// Fibonacci hashing spreads consecutive flow keys.
	h := flowKey * 0x9e3779b97f4a7c15
	return int(h % uint64(len(cands)))
}

func (ecmp) Name() string { return string(ECMP) }
