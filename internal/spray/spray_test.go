package spray

import (
	"math"
	"testing"
	"testing/quick"

	"flowpulse/internal/sim"
)

func equalCands(n int) []Candidate {
	cands := make([]Candidate, n)
	for i := range cands {
		cands[i] = Candidate{Port: i}
	}
	return cands
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("bogus"), sim.NewRNG(1, "x")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestAllKindsConstruct(t *testing.T) {
	for _, k := range Kinds() {
		p := MustNew(k, sim.NewRNG(1, string(k)))
		if p.Name() != string(k) {
			t.Errorf("kind %q: Name() = %q", k, p.Name())
		}
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	p := MustNew(LeastLoaded, sim.NewRNG(2, "ll"))
	cands := []Candidate{{Port: 0, QueueBytes: 500}, {Port: 1, QueueBytes: 100}, {Port: 2, QueueBytes: 300}}
	for i := 0; i < 50; i++ {
		if got := p.Pick(cands, 0); got != 1 {
			t.Fatalf("picked candidate %d, want 1 (least loaded)", got)
		}
	}
}

func TestLeastLoadedTieBreakUniform(t *testing.T) {
	p := MustNew(LeastLoaded, sim.NewRNG(3, "ll"))
	cands := []Candidate{
		{Port: 0, QueueBytes: 100}, {Port: 1, QueueBytes: 100},
		{Port: 2, QueueBytes: 999}, {Port: 3, QueueBytes: 100},
	}
	counts := map[int]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[p.Pick(cands, 0)]++
	}
	if counts[2] != 0 {
		t.Fatal("picked a loaded port despite ties among unloaded ones")
	}
	for _, idx := range []int{0, 1, 3} {
		frac := float64(counts[idx]) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("tie-break not uniform: candidate %d got %v", idx, frac)
		}
	}
}

func TestRandomUniform(t *testing.T) {
	p := MustNew(Random, sim.NewRNG(4, "r"))
	cands := equalCands(16)
	counts := make([]int, 16)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[p.Pick(cands, 0)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/16) > 0.005 {
			t.Errorf("port %d frequency %v, want ~1/16", i, frac)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := MustNew(RoundRobin, nil)
	cands := equalCands(4)
	for i := 0; i < 12; i++ {
		if got := p.Pick(cands, 0); got != i%4 {
			t.Fatalf("round robin pick %d = %d, want %d", i, got, i%4)
		}
	}
}

func TestECMPStablePerFlow(t *testing.T) {
	p := MustNew(ECMP, nil)
	cands := equalCands(8)
	for flow := uint64(0); flow < 64; flow++ {
		first := p.Pick(cands, flow)
		for i := 0; i < 10; i++ {
			if p.Pick(cands, flow) != first {
				t.Fatalf("ECMP not stable for flow %d", flow)
			}
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	p := MustNew(ECMP, nil)
	cands := equalCands(8)
	used := map[int]bool{}
	for flow := uint64(0); flow < 1000; flow++ {
		used[p.Pick(cands, flow)] = true
	}
	if len(used) != 8 {
		t.Fatalf("ECMP used %d/8 ports across 1000 flows", len(used))
	}
}

func TestDRILLPrefersLessLoaded(t *testing.T) {
	p := MustNew(DRILL, sim.NewRNG(5, "d"))
	cands := make([]Candidate, 16)
	for i := range cands {
		cands[i] = Candidate{Port: i, QueueBytes: 1000}
	}
	cands[7].QueueBytes = 0
	// DRILL converges on the empty port via its memory: once sampled,
	// port 7 stays in the consideration set.
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if cands[p.Pick(cands, 0)].Port == 7 {
			hits++
		}
	}
	if float64(hits)/n < 0.5 {
		t.Fatalf("DRILL picked the empty port only %d/%d times", hits, n)
	}
}

func TestDRILLMemorySurvivesCandidateChanges(t *testing.T) {
	p := MustNew(DRILL, sim.NewRNG(6, "d2"))
	full := equalCands(8)
	p.Pick(full, 0) // establishes some memory
	// Shrink the candidate set; the remembered port may be gone.
	small := []Candidate{{Port: 6}, {Port: 7}}
	for i := 0; i < 100; i++ {
		got := p.Pick(small, 0)
		if got != 0 && got != 1 {
			t.Fatalf("DRILL returned out-of-range index %d", got)
		}
	}
}

// Property: every policy returns a valid candidate index for arbitrary
// queue depths.
func TestPoliciesReturnValidIndexProperty(t *testing.T) {
	policies := make([]Policy, 0, len(Kinds()))
	for _, k := range Kinds() {
		policies = append(policies, MustNew(k, sim.NewRNG(7, string(k))))
	}
	f := func(depths []uint32, flow uint64) bool {
		if len(depths) == 0 {
			depths = []uint32{0}
		}
		if len(depths) > 64 {
			depths = depths[:64]
		}
		cands := make([]Candidate, len(depths))
		for i, d := range depths {
			cands[i] = Candidate{Port: i, QueueBytes: int64(d)}
		}
		for _, p := range policies {
			got := p.Pick(cands, flow)
			if got < 0 || got >= len(cands) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The per-port volume noise ordering underpins the paper's threshold
// choice: adaptive spraying must balance far more tightly than random
// spraying over a burst of equal-size packets.
func TestAdaptiveBeatsRandomBalance(t *testing.T) {
	const ports, packets = 16, 16000
	imbalance := func(p Policy) float64 {
		queues := make([]int64, ports)
		cands := make([]Candidate, ports)
		for i := 0; i < packets; i++ {
			for j := range cands {
				cands[j] = Candidate{Port: j, QueueBytes: queues[j]}
			}
			pick := p.Pick(cands, uint64(i))
			queues[cands[pick].Port] += 4096
		}
		var min, max int64 = queues[0], queues[0]
		for _, q := range queues {
			if q < min {
				min = q
			}
			if q > max {
				max = q
			}
		}
		return float64(max-min) / (float64(packets) * 4096 / ports)
	}
	adaptive := imbalance(MustNew(LeastLoaded, sim.NewRNG(8, "a")))
	rnd := imbalance(MustNew(Random, sim.NewRNG(8, "r")))
	if adaptive > 0.01 {
		t.Errorf("least-loaded imbalance %v, want < 1%%", adaptive)
	}
	if rnd < 5*adaptive {
		t.Errorf("random (%v) should be far worse than adaptive (%v)", rnd, adaptive)
	}
}
