// Package resilience extends closed-loop remediation upward into the
// workload: where internal/remediate repairs the *fabric* (quarantine,
// probing, damping), this package repairs the *collective*. When a
// quarantine leaves a leaf with too little uplink capacity for the
// current ring schedule, the re-planner derives a new rank order —
// re-ranking the degraded leaf's ranks into one contiguous block so
// only two ring edges cross its uplinks, or, when the leaf has no
// uplinks left at all, a degraded-mode ring that excludes its hosts
// and proxies their chunks through the surviving ring — and the core
// system swaps the workload onto it at the next iteration barrier.
//
// The capacity test is deliberately physical. In a leaf–spine fabric a
// leaf whose ranks are already contiguous carries only two crossing
// ring edges (≈2D each way) over its uplinks while every host NIC
// carries ≈2D, so losing uplinks does not move the bottleneck until
// the very last one: contiguous leaves need no workload repair and get
// none. An interleaved (placement-oblivious) ring pushes every edge
// through the spines — H ranks mean ≈2·H·D crossing bytes — and there
// a lost uplink does gate the whole pipelined ring. That is the case
// the re-rank fixes, and the reason the planner keys on the surviving
// capacity fraction rather than on the quarantine count.
package resilience

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Config tunes the re-planner.
type Config struct {
	// RecoverTarget is the goodput fraction remediation alone must
	// preserve for the planner to stay idle: a quarantine that leaves
	// the victim leaf's schedule able to run at ≥ RecoverTarget of the
	// pre-fault rate needs no workload repair. Default 0.9 (the same
	// fraction the recovery metric scores against).
	RecoverTarget float64
	// MinRanks is the smallest ring degraded mode may leave. Default 2.
	MinRanks int
}

func (c *Config) setDefaults() {
	if c.RecoverTarget == 0 {
		c.RecoverTarget = 0.9
	}
	if c.MinRanks == 0 {
		c.MinRanks = 2
	}
}

// PlanKind classifies a re-plan.
type PlanKind uint8

const (
	// PlanRerank keeps every rank but reorders the ring so the
	// degraded leaf's ranks form one contiguous block (two crossing
	// edges instead of up to 2·H).
	PlanRerank PlanKind = iota
	// PlanDegrade drops the degraded leaf's hosts from the ring; their
	// chunks are re-split across the survivors, proxied by each
	// excluded rank's surviving ring successor.
	PlanDegrade
	// PlanRestore returns to the original schedule after re-admission.
	PlanRestore
)

// String names the plan kind.
func (k PlanKind) String() string {
	switch k {
	case PlanRerank:
		return "rerank"
	case PlanDegrade:
		return "degrade"
	case PlanRestore:
		return "restore"
	}
	return "unknown"
}

// Plan is one workload re-plan decision.
type Plan struct {
	// At is the decision time.
	At sim.Time
	// Kind is the remedy chosen.
	Kind PlanKind
	// Leaf is the leaf whose capacity change triggered the plan.
	Leaf topology.SwitchID
	// Group is the new ring order to run from the next iteration on.
	Group []topology.HostID
	// Excluded lists hosts dropped in degraded mode (nil otherwise).
	Excluded []topology.HostID
	// Proxies maps each excluded host to the surviving ring member
	// that carries its chunks (nil outside degraded mode).
	Proxies map[topology.HostID]topology.HostID
	// Detail is the operator-log line.
	Detail string
}

// leafState tracks one leaf's uplink capacity and active repair.
type leafState struct {
	uplinks int
	down    int
	repair  PlanKind
	active  bool
}

// Replanner derives workload re-plans from quarantine/re-admission
// events. It is deterministic: plans are a pure function of the event
// sequence, so a re-planned run still fingerprints identically across
// engine shard counts and against its recorded trace.
type Replanner struct {
	cfg      Config
	topo     *topology.Topology
	original []topology.HostID
	current  []topology.HostID

	linkLeaf map[topology.LinkID]topology.SwitchID
	leaves   map[topology.SwitchID]*leafState
	order    []topology.SwitchID // repair activation order, for determinism

	// Replans and Restores count emitted plans.
	Replans, Restores int
}

// New builds a re-planner for one job's ring group. Only leaf uplink
// links participate; quarantines elsewhere are ignored.
func New(topo *topology.Topology, group []topology.HostID, cfg Config) *Replanner {
	cfg.setDefaults()
	rp := &Replanner{
		cfg:      cfg,
		topo:     topo,
		original: append([]topology.HostID(nil), group...),
		current:  append([]topology.HostID(nil), group...),
		linkLeaf: map[topology.LinkID]topology.SwitchID{},
		leaves:   map[topology.SwitchID]*leafState{},
	}
	for _, leaf := range topo.Leaves() {
		sw := topo.Switch(leaf)
		hosts := len(topo.HostsOf(leaf))
		st := &leafState{uplinks: len(sw.Ports) - hosts}
		rp.leaves[leaf] = st
		for p := hosts; p < len(sw.Ports); p++ {
			rp.linkLeaf[sw.Ports[p].Link] = leaf
		}
	}
	return rp
}

// Group returns the ring order currently planned.
func (rp *Replanner) Group() []topology.HostID { return rp.current }

// fraction is the leaf's surviving uplink capacity share.
func (st *leafState) fraction() float64 {
	if st.uplinks == 0 {
		return 0
	}
	return float64(st.uplinks-st.down) / float64(st.uplinks)
}

// NoteQuarantine folds one quarantined link into the capacity model
// and returns a re-plan when the workload needs repair (nil when
// remediation alone preserves the target goodput).
func (rp *Replanner) NoteQuarantine(now sim.Time, link topology.LinkID) *Plan {
	leaf, ok := rp.linkLeaf[link]
	if !ok {
		return nil
	}
	st := rp.leaves[leaf]
	st.down++
	if st.fraction() >= rp.cfg.RecoverTarget {
		return nil
	}
	want := PlanRerank
	if st.down >= st.uplinks {
		want = PlanDegrade
	}
	if st.active && st.repair == want {
		return nil // already repaired this way
	}
	st.repair, st.active = want, true
	rp.noteOrder(leaf)
	return rp.emit(now, leaf, want)
}

// NoteReadmit folds one re-admitted link back in and returns a restore
// plan when the leaf no longer needs its repair.
func (rp *Replanner) NoteReadmit(now sim.Time, link topology.LinkID) *Plan {
	leaf, ok := rp.linkLeaf[link]
	if !ok {
		return nil
	}
	st := rp.leaves[leaf]
	if st.down > 0 {
		st.down--
	}
	if !st.active {
		return nil
	}
	if st.fraction() < rp.cfg.RecoverTarget {
		// Still short on capacity; a degrade may relax to a rerank.
		want := PlanRerank
		if st.down >= st.uplinks {
			want = PlanDegrade
		}
		if want == st.repair {
			return nil
		}
		st.repair = want
		return rp.emit(now, leaf, want)
	}
	st.active = false
	rp.dropOrder(leaf)
	return rp.emit(now, leaf, PlanRestore)
}

func (rp *Replanner) noteOrder(leaf topology.SwitchID) {
	for _, l := range rp.order {
		if l == leaf {
			return
		}
	}
	rp.order = append(rp.order, leaf)
}

func (rp *Replanner) dropOrder(leaf topology.SwitchID) {
	for i, l := range rp.order {
		if l == leaf {
			rp.order = append(rp.order[:i], rp.order[i+1:]...)
			return
		}
	}
}

// emit rebuilds the group from the original order and every active
// repair (in activation order), and wraps the difference in a Plan.
func (rp *Replanner) emit(now sim.Time, leaf topology.SwitchID, kind PlanKind) *Plan {
	group := append([]topology.HostID(nil), rp.original...)
	var excluded []topology.HostID
	proxies := map[topology.HostID]topology.HostID{}
	for _, l := range rp.order {
		st := rp.leaves[l]
		if !st.active {
			continue
		}
		switch st.repair {
		case PlanDegrade:
			group, excluded, proxies = rp.exclude(group, l, excluded, proxies)
		case PlanRerank:
			group = rp.contiguize(group, l)
		}
	}
	if len(group) < rp.cfg.MinRanks || sameGroup(group, rp.current) {
		return nil // unrepairable or no-op: keep the current plan
	}
	rp.current = group
	p := &Plan{At: now, Kind: kind, Leaf: leaf, Group: group}
	lo := rp.topo.LeafOrdinal(leaf)
	switch kind {
	case PlanRestore:
		rp.Restores++
		p.Detail = fmt.Sprintf("leaf %d back to %.0f%% capacity: original %d-rank schedule restored",
			lo, 100*rp.leaves[leaf].fraction(), len(group))
	case PlanDegrade:
		rp.Replans++
		p.Excluded, p.Proxies = excluded, proxies
		p.Detail = fmt.Sprintf("leaf %d unreachable: degraded ring %d->%d ranks, chunks proxied by ring successors",
			lo, len(rp.original), len(group))
	default:
		rp.Replans++
		p.Detail = fmt.Sprintf("leaf %d at %.0f%% capacity: ranks re-ranked contiguous (2 crossing edges)",
			lo, 100*rp.leaves[leaf].fraction())
	}
	return p
}

// exclude drops leaf's hosts from the group, recording each excluded
// host's surviving cyclic successor as its chunk proxy.
func (rp *Replanner) exclude(group []topology.HostID, leaf topology.SwitchID,
	excluded []topology.HostID, proxies map[topology.HostID]topology.HostID) ([]topology.HostID, []topology.HostID, map[topology.HostID]topology.HostID) {
	n := len(group)
	kept := make([]topology.HostID, 0, n)
	for i, h := range group {
		if rp.topo.LeafOf(h) != leaf {
			kept = append(kept, h)
			continue
		}
		excluded = append(excluded, h)
		for step := 1; step < n; step++ {
			succ := group[(i+step)%n]
			if rp.topo.LeafOf(succ) != leaf {
				proxies[h] = succ
				break
			}
		}
	}
	return kept, excluded, proxies
}

// contiguize reorders the group so leaf's ranks form one block at the
// position of their first occurrence, preserving everyone's relative
// order — the minimal permutation that leaves the degraded leaf with
// two crossing ring edges.
func (rp *Replanner) contiguize(group []topology.HostID, leaf topology.SwitchID) []topology.HostID {
	mine := make([]topology.HostID, 0, len(group))
	rest := make([]topology.HostID, 0, len(group))
	first := -1
	for _, h := range group {
		if rp.topo.LeafOf(h) == leaf {
			if first < 0 {
				first = len(rest)
			}
			mine = append(mine, h)
		} else {
			rest = append(rest, h)
		}
	}
	if len(mine) <= 1 || first < 0 {
		return group
	}
	out := make([]topology.HostID, 0, len(group))
	out = append(out, rest[:first]...)
	out = append(out, mine...)
	out = append(out, rest[first:]...)
	return out
}

func sameGroup(a, b []topology.HostID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
