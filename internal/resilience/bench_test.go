package resilience

import (
	"testing"

	"flowpulse/internal/collective"
	"flowpulse/internal/topology"
)

// BenchmarkReplan measures the full re-plan path the quarantine hook
// pays: capacity accounting, ring re-rank, collective rebuild, and
// demand-matrix re-extraction. It runs once per quarantine — a
// control-plane event — never per packet, and must stay
// allocation-bounded in the ring size (O(N) slices, no per-packet or
// per-byte allocations).
func BenchmarkReplan(b *testing.B) {
	topo, group := build(b)
	ring := &collective.RingAllReduce{Group: group, BytesPerRank: 16 << 20}
	link := uplink(topo, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp := New(topo, group, Config{})
		p := rp.NoteQuarantine(1000, link)
		if p == nil {
			b.Fatal("no plan")
		}
		if d := ring.Replan(p.Group).Demand(); d.N() != len(group) {
			b.Fatal("bad demand")
		}
	}
}

// BenchmarkReplanDecision isolates the planner's steady-state cost
// when capacity stays above target (the common case: every quarantine
// on a healthy-enough leaf) — this is the only work added to the
// remediation loop when no repair is needed.
func BenchmarkReplanDecision(b *testing.B) {
	topo, group := build(b)
	rp := New(topo, group, Config{RecoverTarget: 0.5})
	link := uplink(topo, 1, 0)
	readmit := uplink(topo, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := rp.NoteQuarantine(1000, link); p != nil {
			b.Fatal("unexpected plan")
		}
		rp.NoteReadmit(2000, readmit)
	}
}

var benchGroup []topology.HostID

// BenchmarkRerank pins the ring re-rank itself (the contiguize pass).
func BenchmarkRerank(b *testing.B) {
	topo, group := build(b)
	rp := New(topo, group, Config{})
	leaf := topo.Leaves()[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGroup = rp.contiguize(group, leaf)
	}
}
