package resilience

import (
	"testing"

	"flowpulse/internal/collective"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// build returns a 4-leaf × 4-spine fat tree with 4 hosts per leaf and
// a fully interleaved (column-major) ring: every ring edge crosses
// leaves, the placement-oblivious worst case.
func build(t testing.TB) (*topology.Topology, []topology.HostID) {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 4, HostsPerLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	var group []topology.HostID
	for ix := 0; ix < 4; ix++ {
		for leaf := 0; leaf < 4; leaf++ {
			group = append(group, topology.HostID(leaf*4+ix))
		}
	}
	return topo, group
}

// uplink returns the LinkID of the given leaf ordinal's n-th uplink.
func uplink(topo *topology.Topology, leafOrd, n int) topology.LinkID {
	leaf := topo.Leaves()[leafOrd]
	return topo.Switch(leaf).Ports[len(topo.HostsOf(leaf))+n].Link
}

func TestRerankMakesLeafContiguous(t *testing.T) {
	topo, group := build(t)
	rp := New(topo, group, Config{})
	victim := 1

	p := rp.NoteQuarantine(1000, uplink(topo, victim, 0))
	if p == nil {
		t.Fatal("losing 1 of 4 uplinks is 75% capacity < 90% target: must re-plan")
	}
	if p.Kind != PlanRerank || len(p.Group) != len(group) {
		t.Fatalf("want a full-membership rerank, got %+v", p)
	}
	// The victim's ranks must now be one contiguous block.
	leaf := topo.Leaves()[victim]
	first, last := -1, -1
	for i, h := range p.Group {
		if topo.LeafOf(h) == leaf {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if last-first != 3 {
		t.Fatalf("victim ranks not contiguous in %v", p.Group)
	}
	if rp.Replans != 1 {
		t.Fatalf("Replans = %d", rp.Replans)
	}

	// A second uplink loss on the same leaf changes capacity but not
	// the remedy: no duplicate plan.
	if p2 := rp.NoteQuarantine(2000, uplink(topo, victim, 1)); p2 != nil {
		t.Fatalf("same remedy already in place, got %+v", p2)
	}
}

func TestCapacityAboveTargetNeedsNoPlan(t *testing.T) {
	topo, group := build(t)
	// With a 16-spine-like tolerance (target below the 3/4 surviving
	// fraction), remediation alone recovers: the planner stays idle.
	rp := New(topo, group, Config{RecoverTarget: 0.7})
	if p := rp.NoteQuarantine(1000, uplink(topo, 1, 0)); p != nil {
		t.Fatalf("surviving fraction 0.75 >= target 0.7, got %+v", p)
	}
	if rp.Replans != 0 {
		t.Fatalf("Replans = %d", rp.Replans)
	}
}

func TestContiguousLeafNeedsNoRerank(t *testing.T) {
	topo, _ := build(t)
	// Leaf-major group: every leaf's ranks are already contiguous, so
	// its uplinks carry only two crossing edges and are never the
	// bottleneck — a rerank would be a no-op and must not be emitted.
	var group []topology.HostID
	for h := 0; h < 16; h++ {
		group = append(group, topology.HostID(h))
	}
	rp := New(topo, group, Config{})
	if p := rp.NoteQuarantine(1000, uplink(topo, 1, 0)); p != nil {
		t.Fatalf("contiguous leaf: got %+v", p)
	}
}

func TestDegradeExcludesLeafWithProxies(t *testing.T) {
	topo, group := build(t)
	rp := New(topo, group, Config{})
	victim := 2
	leaf := topo.Leaves()[victim]

	var last *Plan
	for n := 0; n < 4; n++ {
		if p := rp.NoteQuarantine(sim.Time(1000+n), uplink(topo, victim, n)); p != nil {
			last = p
		}
	}
	if last == nil || last.Kind != PlanDegrade {
		t.Fatalf("all uplinks quarantined: want degrade, got %+v", last)
	}
	if len(last.Group) != 12 || len(last.Excluded) != 4 {
		t.Fatalf("degraded ring: %d ranks, %d excluded", len(last.Group), len(last.Excluded))
	}
	for _, h := range last.Group {
		if topo.LeafOf(h) == leaf {
			t.Fatalf("excluded leaf's host %d still in ring", h)
		}
	}
	for _, e := range last.Excluded {
		proxy, ok := last.Proxies[e]
		if !ok {
			t.Fatalf("excluded host %d has no proxy", e)
		}
		if topo.LeafOf(proxy) == leaf {
			t.Fatalf("host %d proxied by excluded-leaf host %d", e, proxy)
		}
	}
	// The degraded ring must still feed a valid collective.
	ring := &collective.RingAllReduce{Group: group, BytesPerRank: 1 << 20}
	if d := ring.Replan(last.Group).Demand(); d.N() != 12 || d.Total() == 0 {
		t.Fatalf("replanned demand: %d ranks, %d bytes", d.N(), d.Total())
	}
}

func TestRestoreOnReadmit(t *testing.T) {
	topo, group := build(t)
	rp := New(topo, group, Config{})
	victim := 1
	if p := rp.NoteQuarantine(1000, uplink(topo, victim, 0)); p == nil {
		t.Fatal("expected rerank")
	}
	p := rp.NoteReadmit(2000, uplink(topo, victim, 0))
	if p == nil || p.Kind != PlanRestore {
		t.Fatalf("re-admission back to full capacity: want restore, got %+v", p)
	}
	if !sameGroup(p.Group, group) {
		t.Fatalf("restore must return the original order")
	}
	if rp.Restores != 1 {
		t.Fatalf("Restores = %d", rp.Restores)
	}
}

func TestNonUplinkQuarantineIgnored(t *testing.T) {
	topo, group := build(t)
	rp := New(topo, group, Config{})
	hostLink := topo.Host(0).Link
	if p := rp.NoteQuarantine(1000, hostLink); p != nil {
		t.Fatalf("host link is not a leaf uplink: got %+v", p)
	}
}

func TestMinRanksBlocksDegrade(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	group := []topology.HostID{0, 1}
	rp := New(topo, group, Config{})
	// Excluding either leaf would leave a 1-rank "ring": refuse.
	if p := rp.NoteQuarantine(1000, uplink(topo, 0, 0)); p != nil {
		t.Fatalf("2-rank ring cannot degrade, got %+v", p)
	}
	if p := rp.NoteQuarantine(2000, uplink(topo, 0, 1)); p != nil {
		t.Fatalf("2-rank ring cannot degrade, got %+v", p)
	}
}
