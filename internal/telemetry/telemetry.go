// Package telemetry implements the in-switch measurement program of
// §5.1: every leaf switch counts, per spine-facing ingress port, the
// bytes of sentinel-tagged collective packets, closing the
// per-iteration window when the first packet of the next iteration
// appears. The window-close rule makes the measurement oblivious to
// stragglers: synchronous data-parallel training guarantees iteration
// k's traffic has fully drained before any node starts k+1.
//
// Monitors also keep a per-(port, source-leaf) byte matrix — the
// information Fig. 4's localization compares across senders.
package telemetry

import (
	"fmt"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Window is one closed measurement interval: the traffic of one
// collective iteration as seen by one switch.
type Window struct {
	// Leaf is the observing switch; LeafOrdinal its ordinal within its
	// level. (The fields keep their historical names: for spine
	// windows — the §7 three-level extension — Leaf holds the spine's
	// id and LeafOrdinal its spine ordinal, with SwitchKind set to
	// topology.Spine.)
	Leaf        topology.SwitchID
	LeafOrdinal int
	// SwitchKind is the observing switch's level; the zero value is
	// topology.Leaf.
	SwitchKind topology.SwitchKind
	// Job and Iter identify the collective iteration measured.
	Job  uint16
	Iter uint32
	// PortBytes[u] is the tagged byte count on uplink ingress port u
	// (uplink index = switch port - host ports; one entry per
	// spine×trunk).
	PortBytes []int64
	// SenderBytes[u][l] is the tagged byte count on uplink u from
	// packets whose source host sits under leaf ordinal l.
	SenderBytes [][]int64
	// Packets is the tagged packet count across all uplinks.
	Packets int64
	// OpenedAt and ClosedAt bound the window in simulation time.
	OpenedAt, ClosedAt sim.Time
}

// Total returns the window's byte sum across uplink ports.
func (w *Window) Total() int64 {
	var sum int64
	for _, b := range w.PortBytes {
		sum += b
	}
	return sum
}

// Clone deep-copies the window.
func (w *Window) Clone() *Window {
	cp := *w
	cp.PortBytes = append([]int64(nil), w.PortBytes...)
	cp.SenderBytes = make([][]int64, len(w.SenderBytes))
	for i := range w.SenderBytes {
		cp.SenderBytes[i] = append([]int64(nil), w.SenderBytes[i]...)
	}
	return &cp
}

// LeafMonitor is the per-leaf switch program. It must be registered as
// the leaf's fabric ingress hook.
type LeafMonitor struct {
	topo        *topology.Topology
	leaf        topology.SwitchID
	leafOrdinal int
	hostPorts   int
	uplinks     int

	// Job filters measurements to one training job; JobAny measures
	// every sentinel-tagged packet.
	job int

	current *Window

	// LateBytes counts tagged bytes that arrived for an iteration
	// older than the open window (should stay zero in synchronous
	// training; nonzero values indicate a workload violating the
	// §5.1 assumptions).
	LateBytes int64

	onClose func(w *Window)

	srcLeafOrd []int // host -> leaf ordinal, precomputed
}

// JobAny disables job filtering.
const JobAny = -1

// NewLeafMonitor builds the monitor for one leaf. onClose receives
// every completed window (the detector attaches here). job restricts
// measurement to one job id, or JobAny.
func NewLeafMonitor(topo *topology.Topology, leaf topology.SwitchID, job int, onClose func(w *Window)) *LeafMonitor {
	if topo.Switch(leaf).Kind != topology.Leaf {
		panic(fmt.Sprintf("telemetry: switch %d is not a leaf", leaf))
	}
	hostPorts := len(topo.HostsOf(leaf))
	m := &LeafMonitor{
		topo:        topo,
		leaf:        leaf,
		leafOrdinal: topo.LeafOrdinal(leaf),
		hostPorts:   hostPorts,
		uplinks:     len(topo.Switch(leaf).Ports) - hostPorts,
		job:         job,
		onClose:     onClose,
		srcLeafOrd:  make([]int, len(topo.Hosts)),
	}
	for h := range topo.Hosts {
		m.srcLeafOrd[h] = topo.LeafOrdinal(topo.LeafOf(topology.HostID(h)))
	}
	return m
}

// Uplinks returns the number of monitored ingress ports.
func (m *LeafMonitor) Uplinks() int { return m.uplinks }

// OnPacket is the switch dataplane hook. It must see every packet
// accepted at the leaf's ingress.
func (m *LeafMonitor) OnPacket(now sim.Time, port int, pkt *fabric.Packet) {
	// The measured quantity is downstream traffic arriving from the
	// spines: only uplink ports, only tagged data packets.
	if port < m.hostPorts {
		return
	}
	if pkt.Kind != fabric.Data || !pkt.Tag.Sentinel {
		return
	}
	if m.job != JobAny && int(pkt.Tag.Job) != m.job {
		return
	}

	w := m.current
	switch {
	case w == nil:
		w = m.open(now, pkt.Tag)
	case pkt.Tag.Iter > w.Iter:
		// First packet of the next iteration: the previous collective
		// is complete by construction; close and report it.
		m.closeWindow(now)
		w = m.open(now, pkt.Tag)
	case pkt.Tag.Iter < w.Iter:
		m.LateBytes += int64(pkt.Size)
		return
	}

	u := port - m.hostPorts
	w.PortBytes[u] += int64(pkt.Size)
	w.SenderBytes[u][m.srcLeafOrd[pkt.Src]] += int64(pkt.Size)
	w.Packets++
}

func (m *LeafMonitor) open(now sim.Time, tag fabric.FlowTag) *Window {
	w := &Window{
		Leaf:        m.leaf,
		LeafOrdinal: m.leafOrdinal,
		Job:         tag.Job,
		Iter:        tag.Iter,
		PortBytes:   make([]int64, m.uplinks),
		SenderBytes: make([][]int64, m.uplinks),
		OpenedAt:    now,
	}
	for i := range w.SenderBytes {
		w.SenderBytes[i] = make([]int64, len(m.topo.Leaves()))
	}
	m.current = w
	return w
}

func (m *LeafMonitor) closeWindow(now sim.Time) {
	w := m.current
	m.current = nil
	if w == nil {
		return
	}
	w.ClosedAt = now
	if m.onClose != nil {
		m.onClose(w)
	}
}

// Flush closes the open window, if any — the end-of-training path,
// where no next iteration will ever arrive to close it.
func (m *LeafMonitor) Flush(now sim.Time) { m.closeWindow(now) }

// Collector attaches a LeafMonitor to every leaf of a network and
// funnels closed windows to one callback. There is deliberately no
// cross-switch state: each monitor is autonomous (§5, "in-switch,
// coordination-free").
type Collector struct {
	Monitors []*LeafMonitor // indexed by leaf ordinal
}

// AttachAll registers monitors on all leaves. onWindow receives every
// closed window from every leaf.
func AttachAll(net *fabric.Network, job int, onWindow func(w *Window)) *Collector {
	topo := net.Topology()
	c := &Collector{Monitors: make([]*LeafMonitor, len(topo.Leaves()))}
	for ord, leaf := range topo.Leaves() {
		m := NewLeafMonitor(topo, leaf, job, onWindow)
		c.Monitors[ord] = m
		net.SetIngressHook(leaf, m.OnPacket)
	}
	return c
}

// FlushAll closes every monitor's open window.
func (c *Collector) FlushAll(now sim.Time) {
	for _, m := range c.Monitors {
		m.Flush(now)
	}
}
