// Package telemetry implements the in-switch measurement program of
// §5.1: every leaf switch counts, per spine-facing ingress port, the
// bytes of sentinel-tagged collective packets, closing a job's
// per-iteration window when the first packet of that job's next
// iteration appears. The window-close rule makes the measurement
// oblivious to stragglers: synchronous data-parallel training
// guarantees iteration k's traffic has fully drained before any node
// starts k+1. Monitors demultiplex per job id, so one tap per switch
// measures every concurrent training job (§7 "Parallel Jobs").
//
// Monitors also keep a per-(port, source-leaf) byte matrix — the
// information Fig. 4's localization compares across senders.
package telemetry

import (
	"fmt"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Window is one closed measurement interval: the traffic of one
// collective iteration as seen by one switch.
type Window struct {
	// Leaf is the observing switch; LeafOrdinal its ordinal within its
	// level. (The fields keep their historical names: for spine
	// windows — the §7 three-level extension — Leaf holds the spine's
	// id and LeafOrdinal its spine ordinal, with SwitchKind set to
	// topology.Spine.)
	Leaf        topology.SwitchID
	LeafOrdinal int
	// SwitchKind is the observing switch's level; the zero value is
	// topology.Leaf.
	SwitchKind topology.SwitchKind
	// Job and Iter identify the collective iteration measured.
	Job  uint16
	Iter uint32
	// PortBytes[u] is the tagged byte count on uplink ingress port u
	// (uplink index = switch port - host ports; one entry per
	// spine×trunk).
	PortBytes []int64
	// SenderBytes[u][l] is the tagged byte count on uplink u from
	// packets whose source host sits under leaf ordinal l.
	SenderBytes [][]int64
	// Packets is the tagged packet count across all uplinks.
	Packets int64
	// CEBytes is the tagged byte count that arrived with the ECN
	// congestion-experienced codepoint set while this window was open
	// — the fabric's own signal that queue build-up, not loss, shaped
	// the traffic. Late stragglers from earlier iterations count too:
	// a marked packet that missed its own window is precisely the
	// delayed-not-lost evidence that distinguishes congestion from a
	// silent fault, and it can only ever surface in the successor
	// window (its own closed before the queue drained). CEBytes may
	// therefore exceed Total. Zero unless the fabric runs with ECN
	// marking enabled.
	CEBytes int64
	// AggPortBytes[u] is the ALL-jobs sentinel byte count on uplink u
	// over this window's interval, filled at close. Per-job spray
	// shares comb under adaptive spraying when several jobs share a
	// leaf's uplinks — only the aggregate keeps the paper's per-port
	// symmetry — so the shared monitoring plane (§7 "Parallel Jobs")
	// detects on this view. Equal to PortBytes when the window's job
	// is the only sentinel traffic.
	AggPortBytes []int64
	// OpenedAt and ClosedAt bound the window in simulation time.
	OpenedAt, ClosedAt sim.Time

	// aggOpen snapshots the monitor's cumulative per-port counters at
	// open; closeJob turns it into AggPortBytes.
	aggOpen []int64
}

// Total returns the window's byte sum across uplink ports.
func (w *Window) Total() int64 {
	var sum int64
	for _, b := range w.PortBytes {
		sum += b
	}
	return sum
}

// Clone deep-copies the window.
func (w *Window) Clone() *Window {
	cp := *w
	cp.PortBytes = append([]int64(nil), w.PortBytes...)
	cp.SenderBytes = make([][]int64, len(w.SenderBytes))
	for i := range w.SenderBytes {
		cp.SenderBytes[i] = append([]int64(nil), w.SenderBytes[i]...)
	}
	if w.AggPortBytes != nil {
		cp.AggPortBytes = append([]int64(nil), w.AggPortBytes...)
	}
	cp.aggOpen = nil
	return &cp
}

// LeafMonitor is the per-leaf switch program. It must be registered as
// the leaf's fabric ingress hook.
type LeafMonitor struct {
	topo        *topology.Topology
	leaf        topology.SwitchID
	leafOrdinal int
	hostPorts   int
	uplinks     int

	// Job filters measurements to one training job; JobAny measures
	// every sentinel-tagged packet, demultiplexed into per-job windows.
	job int

	dx demux

	// LateBytes counts tagged bytes that arrived for an iteration
	// older than their own job's open window (should stay zero in
	// synchronous training; nonzero values indicate a workload
	// violating the §5.1 assumptions). LateBytesFor breaks the count
	// down per job.
	LateBytes int64

	onClose func(w *Window)

	srcLeafOrd []int // host -> leaf ordinal, precomputed

	// aggCum is the cumulative ALL-jobs sentinel byte count per
	// uplink; window open/close snapshots turn it into AggPortBytes.
	aggCum []int64
}

// JobAny disables job filtering.
const JobAny = -1

// NewLeafMonitor builds the monitor for one leaf. onClose receives
// every completed window (the detector attaches here). job restricts
// measurement to one job id, or JobAny.
func NewLeafMonitor(topo *topology.Topology, leaf topology.SwitchID, job int, onClose func(w *Window)) *LeafMonitor {
	if topo.Switch(leaf).Kind != topology.Leaf {
		panic(fmt.Sprintf("telemetry: switch %d is not a leaf", leaf))
	}
	hostPorts := len(topo.HostsOf(leaf))
	m := &LeafMonitor{
		topo:        topo,
		leaf:        leaf,
		leafOrdinal: topo.LeafOrdinal(leaf),
		hostPorts:   hostPorts,
		uplinks:     len(topo.Switch(leaf).Ports) - hostPorts,
		job:         job,
		dx:          newDemux(),
		onClose:     onClose,
		srcLeafOrd:  make([]int, len(topo.Hosts)),
		aggCum:      make([]int64, len(topo.Switch(leaf).Ports)-hostPorts),
	}
	for h := range topo.Hosts {
		m.srcLeafOrd[h] = topo.LeafOrdinal(topo.LeafOf(topology.HostID(h)))
	}
	return m
}

// Uplinks returns the number of monitored ingress ports.
func (m *LeafMonitor) Uplinks() int { return m.uplinks }

// OnPacket is the switch dataplane hook. It must see every packet
// accepted at the leaf's ingress.
func (m *LeafMonitor) OnPacket(now sim.Time, port int, pkt *fabric.Packet) {
	// The measured quantity is downstream traffic arriving from the
	// spines: only uplink ports, only tagged data packets.
	if port < m.hostPorts {
		return
	}
	if pkt.Kind != fabric.Data || !pkt.Tag.Sentinel {
		return
	}
	u := port - m.hostPorts
	// The aggregate counter sees every sentinel packet, even under a
	// job filter: it is the fabric-level symmetry view. It is bumped
	// after any window close/open this packet triggers, so a window's
	// aggregate delta covers exactly the packets between its own
	// boundary packets (AggPortBytes == PortBytes for a lone job).
	if m.job != JobAny && int(pkt.Tag.Job) != m.job {
		m.aggCum[u] += int64(pkt.Size)
		return
	}

	w := m.dx.lookup(pkt.Tag.Job)
	switch {
	case w == nil:
		w = m.open(now, pkt.Tag)
	case pkt.Tag.Iter > w.Iter:
		// First packet of this job's next iteration: the previous
		// collective is complete by construction; close and report it.
		m.closeJob(now, pkt.Tag.Job)
		w = m.open(now, pkt.Tag)
	case pkt.Tag.Iter < w.Iter:
		m.LateBytes += int64(pkt.Size)
		m.dx.late(pkt.Tag.Job, int64(pkt.Size))
		m.aggCum[u] += int64(pkt.Size)
		if pkt.CE {
			w.CEBytes += int64(pkt.Size)
		}
		return
	}

	m.aggCum[u] += int64(pkt.Size)
	w.PortBytes[u] += int64(pkt.Size)
	w.SenderBytes[u][m.srcLeafOrd[pkt.Src]] += int64(pkt.Size)
	w.Packets++
	if pkt.CE {
		w.CEBytes += int64(pkt.Size)
	}
}

// OpenWindow returns the job's currently open (unclosed) window, or
// nil. The returned window is live: it keeps accumulating.
func (m *LeafMonitor) OpenWindow(job uint16) *Window { return m.dx.open[job] }

// LateBytesFor returns the late-byte count attributed to one job.
func (m *LeafMonitor) LateBytesFor(job uint16) int64 { return m.dx.lateByJob[job] }

func (m *LeafMonitor) open(now sim.Time, tag fabric.FlowTag) *Window {
	w := &Window{
		Leaf:        m.leaf,
		LeafOrdinal: m.leafOrdinal,
		Job:         tag.Job,
		Iter:        tag.Iter,
		PortBytes:   make([]int64, m.uplinks),
		SenderBytes: make([][]int64, m.uplinks),
		OpenedAt:    now,
		aggOpen:     append([]int64(nil), m.aggCum...),
	}
	for i := range w.SenderBytes {
		w.SenderBytes[i] = make([]int64, len(m.topo.Leaves()))
	}
	m.dx.put(w)
	return w
}

func (m *LeafMonitor) closeJob(now sim.Time, job uint16) {
	w := m.dx.take(job)
	if w == nil {
		return
	}
	w.ClosedAt = now
	w.AggPortBytes = make([]int64, len(m.aggCum))
	for i := range m.aggCum {
		w.AggPortBytes[i] = m.aggCum[i] - w.aggOpen[i]
	}
	w.aggOpen = nil
	if m.onClose != nil {
		m.onClose(w)
	}
}

// Flush closes every open window, in ascending job order — the
// end-of-training path, where no next iteration will ever arrive to
// close them.
func (m *LeafMonitor) Flush(now sim.Time) { m.dx.flush(now, m.closeJob) }

// Collector attaches a LeafMonitor to every leaf of a network and
// funnels closed windows to one callback. There is deliberately no
// cross-switch state: each monitor is autonomous (§5, "in-switch,
// coordination-free").
type Collector struct {
	Monitors []*LeafMonitor // indexed by leaf ordinal
}

// AttachAll registers monitors on all leaves. onWindow receives every
// closed window from every leaf. Monitors attach via AddIngressHook,
// so several collectors (or other observers) compose on one fabric.
//
// On a sharded network each monitor runs inside its switch's domain
// while onWindow is invoked on the control engine; see controlSink.
func AttachAll(net *fabric.Network, job int, onWindow func(w *Window)) *Collector {
	topo := net.Topology()
	c := &Collector{Monitors: make([]*LeafMonitor, len(topo.Leaves()))}
	for ord, leaf := range topo.Leaves() {
		m := NewLeafMonitor(topo, leaf, job, controlSink(net, leaf, onWindow))
		c.Monitors[ord] = m
		net.AddIngressHook(leaf, m.OnPacket)
	}
	return c
}

// controlSink adapts a window consumer to a sharded fabric: monitors
// close windows inside the domain that owns their switch, but the
// consumers (detector pipelines, collectors, trace recorders) are
// shared across switches and live on the control engine. The returned
// callback posts each closed window to the control domain; the barrier
// gives the handoff its happens-before, and the post carries the
// *Window exclusively (the monitor drops its reference at close).
// Posts from distinct switches in one window drain in canonical
// (time, domain, emission) order, so delivery order does not depend on
// the worker count. Single-engine networks — and flushes after the run
// has drained — invoke the consumer inline, preserving the historical
// behavior exactly.
func controlSink(net *fabric.Network, sw topology.SwitchID, onWindow func(w *Window)) func(w *Window) {
	g := net.Group()
	if g == nil || onWindow == nil {
		return onWindow
	}
	dom := net.DomainOfSwitch(sw)
	eng := net.EngineOfSwitch(sw)
	return func(w *Window) {
		if !g.Running() {
			onWindow(w)
			return
		}
		g.Post(dom, 0, eng.Now(), func(sim.Time) { onWindow(w) })
	}
}

// FlushAll closes every monitor's open window.
func (c *Collector) FlushAll(now sim.Time) {
	for _, m := range c.Monitors {
		m.Flush(now)
	}
}
