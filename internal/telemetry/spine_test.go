package telemetry

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/topology"
)

func clos3Topo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewClos3(topology.Clos3Config{
		Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSpineMonitorCountsCorePortsOnly(t *testing.T) {
	topo := clos3Topo(t)
	spine := topo.Spines()[0]
	var closed []*Window
	m := NewSpineMonitor(topo, spine, JobAny, func(w *Window) { closed = append(closed, w.Clone()) })
	if m.CorePorts() != 2 {
		t.Fatalf("core ports = %d, want 2", m.CorePorts())
	}

	tag := fabric.FlowTag{Sentinel: true, Iter: 1}
	// Leaf-facing ports (0, 1) must be ignored; core-facing (2, 3)
	// counted.
	m.OnPacket(1, 0, pkt(0, 4096, tag, fabric.Data))
	m.OnPacket(2, 2, pkt(0, 4096, tag, fabric.Data))
	m.OnPacket(3, 3, pkt(3, 1000, tag, fabric.Data))

	tag2 := tag
	tag2.Iter = 2
	m.OnPacket(9, 2, pkt(0, 64, tag2, fabric.Data))
	if len(closed) != 1 {
		t.Fatalf("windows = %d", len(closed))
	}
	w := closed[0]
	if w.SwitchKind != topology.Spine {
		t.Fatalf("window kind = %v", w.SwitchKind)
	}
	if w.PortBytes[0] != 4096 || w.PortBytes[1] != 1000 {
		t.Fatalf("port bytes: %v", w.PortBytes)
	}
	// Sender attribution: hosts map one per leaf (4 leaves), so host 0
	// is leaf ordinal 0 and host 3 leaf ordinal 3.
	if w.SenderBytes[0][0] != 4096 || w.SenderBytes[1][3] != 1000 {
		t.Fatalf("sender matrix: %v / %v", w.SenderBytes[0], w.SenderBytes[1])
	}
}

func TestSpineMonitorFiltersLikeLeaf(t *testing.T) {
	topo := clos3Topo(t)
	m := NewSpineMonitor(topo, topo.Spines()[1], 5, nil)
	tag := fabric.FlowTag{Sentinel: true, Job: 4, Iter: 1}
	m.OnPacket(1, 2, pkt(0, 100, tag, fabric.Data))                     // wrong job
	m.OnPacket(2, 2, pkt(0, 100, fabric.FlowTag{Iter: 1}, fabric.Data)) // no sentinel
	m.OnPacket(3, 2, pkt(0, 64, fabric.FlowTag{Sentinel: true, Job: 5, Iter: 1}, fabric.Ack))
	if m.OpenWindow(4) != nil {
		t.Fatal("filtered packets opened a spine window")
	}
	m.OnPacket(4, 2, pkt(0, 100, fabric.FlowTag{Sentinel: true, Job: 5, Iter: 1}, fabric.Data))
	if w := m.OpenWindow(5); w == nil || w.PortBytes[0] != 100 {
		t.Fatal("own job not measured")
	}
}

func TestSpineMonitorLateAndFlush(t *testing.T) {
	topo := clos3Topo(t)
	var closed []*Window
	m := NewSpineMonitor(topo, topo.Spines()[0], JobAny, func(w *Window) { closed = append(closed, w) })
	m.OnPacket(1, 2, pkt(0, 100, fabric.FlowTag{Sentinel: true, Iter: 3}, fabric.Data))
	m.OnPacket(2, 2, pkt(0, 70, fabric.FlowTag{Sentinel: true, Iter: 2}, fabric.Data))
	if m.LateBytes != 70 {
		t.Fatalf("LateBytes = %d", m.LateBytes)
	}
	m.Flush(50)
	m.Flush(60)
	if len(closed) != 1 || closed[0].Iter != 3 {
		t.Fatalf("flush behavior: %v", closed)
	}
}

func TestSpineMonitorRejectsNonSpine(t *testing.T) {
	topo := clos3Topo(t)
	defer func() {
		if recover() == nil {
			t.Fatal("accepted a leaf switch")
		}
	}()
	NewSpineMonitor(topo, topo.Leaves()[0], JobAny, nil)
}

func TestSpineMonitorRejectsTwoLevel(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("accepted a two-level spine (no core ports)")
		}
	}()
	NewSpineMonitor(topo, topo.Spines()[0], JobAny, nil)
}

func TestLeafWindowDefaultKind(t *testing.T) {
	topo := clos3Topo(t)
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, nil)
	m.OnPacket(1, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Iter: 1}, fabric.Data))
	if w := m.OpenWindow(0); w.SwitchKind != topology.Leaf {
		t.Fatalf("leaf window kind = %v", w.SwitchKind)
	}
}
