package telemetry

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func pkt(src topology.HostID, size int, tag fabric.FlowTag, kind fabric.PacketKind) *fabric.Packet {
	return &fabric.Packet{Src: src, Dst: 99, Size: size, Tag: tag, Kind: kind}
}

func TestMonitorCountsTaggedUplinkBytes(t *testing.T) {
	topo := testTopo(t)
	var closed []*Window
	m := NewLeafMonitor(topo, topo.Leaves()[1], JobAny, func(w *Window) { closed = append(closed, w.Clone()) })

	tag := fabric.FlowTag{Sentinel: true, Job: 0, Iter: 1}
	// Uplink ports start at 1 (one host).
	m.OnPacket(100, 1, pkt(0, 4096, tag, fabric.Data))
	m.OnPacket(110, 2, pkt(0, 4096, tag, fabric.Data))
	m.OnPacket(120, 2, pkt(0, 1000, tag, fabric.Data))

	// Next iteration closes the window.
	tag2 := tag
	tag2.Iter = 2
	m.OnPacket(200, 1, pkt(0, 64, tag2, fabric.Data))

	if len(closed) != 1 {
		t.Fatalf("closed %d windows, want 1", len(closed))
	}
	w := closed[0]
	if w.Iter != 1 || w.PortBytes[0] != 4096 || w.PortBytes[1] != 5096 {
		t.Fatalf("window: %+v", w)
	}
	if w.Total() != 9192 || w.Packets != 3 {
		t.Fatalf("total=%d packets=%d", w.Total(), w.Packets)
	}
	if w.OpenedAt != 100 || w.ClosedAt != 200 {
		t.Fatalf("window times: %v..%v", w.OpenedAt, w.ClosedAt)
	}
}

func TestMonitorIgnoresUntaggedAcksAndHostPorts(t *testing.T) {
	topo := testTopo(t)
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, nil)
	tag := fabric.FlowTag{Sentinel: true, Iter: 1}

	m.OnPacket(1, 0, pkt(0, 4096, tag, fabric.Data))                     // host port
	m.OnPacket(2, 1, pkt(0, 64, tag, fabric.Ack))                        // ack
	m.OnPacket(3, 1, pkt(0, 4096, fabric.FlowTag{Iter: 1}, fabric.Data)) // no sentinel
	if m.OpenWindow(0) != nil {
		t.Fatal("filtered packets opened a window")
	}
}

func TestMonitorJobFilter(t *testing.T) {
	topo := testTopo(t)
	m := NewLeafMonitor(topo, topo.Leaves()[0], 5, nil)
	m.OnPacket(1, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Job: 4, Iter: 1}, fabric.Data))
	if m.OpenWindow(4) != nil {
		t.Fatal("foreign job measured")
	}
	m.OnPacket(2, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Job: 5, Iter: 1}, fabric.Data))
	if w := m.OpenWindow(5); w == nil || w.PortBytes[0] != 100 {
		t.Fatal("own job not measured")
	}
}

func TestMonitorLatePacketsCounted(t *testing.T) {
	topo := testTopo(t)
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, nil)
	m.OnPacket(1, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Iter: 5}, fabric.Data))
	m.OnPacket(2, 1, pkt(0, 77, fabric.FlowTag{Sentinel: true, Iter: 4}, fabric.Data))
	if m.LateBytes != 77 {
		t.Fatalf("LateBytes = %d, want 77", m.LateBytes)
	}
	if m.OpenWindow(0).Total() != 100 {
		t.Fatal("late packet polluted the open window")
	}
}

func TestMonitorSenderAttribution(t *testing.T) {
	topo := testTopo(t)
	m := NewLeafMonitor(topo, topo.Leaves()[3], JobAny, nil)
	tag := fabric.FlowTag{Sentinel: true, Iter: 1}
	m.OnPacket(1, 1, pkt(0, 1000, tag, fabric.Data)) // host 0 under leaf ordinal 0
	m.OnPacket(2, 1, pkt(2, 500, tag, fabric.Data))  // host 2 under leaf ordinal 2
	w := m.OpenWindow(0)
	if w.SenderBytes[0][0] != 1000 || w.SenderBytes[0][2] != 500 {
		t.Fatalf("sender matrix wrong: %v", w.SenderBytes[0])
	}
}

func TestFlushClosesWindow(t *testing.T) {
	topo := testTopo(t)
	var closed []*Window
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, func(w *Window) { closed = append(closed, w) })
	m.OnPacket(1, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Iter: 9}, fabric.Data))
	m.Flush(50)
	if len(closed) != 1 || closed[0].Iter != 9 || closed[0].ClosedAt != 50 {
		t.Fatalf("flush: %+v", closed)
	}
	m.Flush(60) // idempotent
	if len(closed) != 1 {
		t.Fatal("double flush closed twice")
	}
}

func TestSkippedIterationStillCloses(t *testing.T) {
	// Iteration numbers may skip (e.g. unmeasured iterations between
	// measured ones); any higher iter closes the window.
	topo := testTopo(t)
	var closed []*Window
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, func(w *Window) { closed = append(closed, w) })
	m.OnPacket(1, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Iter: 1}, fabric.Data))
	m.OnPacket(2, 1, pkt(0, 100, fabric.FlowTag{Sentinel: true, Iter: 7}, fabric.Data))
	if len(closed) != 1 || closed[0].Iter != 1 {
		t.Fatal("skip-ahead did not close window")
	}
	if m.OpenWindow(0).Iter != 7 {
		t.Fatal("new window has wrong iteration")
	}
}

func TestNonLeafRejected(t *testing.T) {
	topo := testTopo(t)
	defer func() {
		if recover() == nil {
			t.Fatal("monitor accepted a spine switch")
		}
	}()
	NewLeafMonitor(topo, topo.Spines()[0], JobAny, nil)
}

func TestAttachAllEndToEnd(t *testing.T) {
	topo := testTopo(t)
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 1})
	var windows []*Window
	c := AttachAll(net, JobAny, func(w *Window) { windows = append(windows, w.Clone()) })

	tag1 := fabric.FlowTag{Sentinel: true, Iter: 1}
	tag2 := fabric.FlowTag{Sentinel: true, Iter: 2}
	for i := 0; i < 64; i++ {
		net.Send(fabric.SendSpec{Src: 0, Dst: 3, Size: 4096, Kind: fabric.Data, Tag: tag1, Msg: uint64(i)})
	}
	eng.Run()
	for i := 0; i < 64; i++ {
		net.Send(fabric.SendSpec{Src: 0, Dst: 3, Size: 4096, Kind: fabric.Data, Tag: tag2, Msg: uint64(i)})
	}
	eng.Run()
	c.FlushAll(eng.Now())

	// Only leaf ordinal 3 sees tagged uplink traffic; two windows.
	if len(windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(windows))
	}
	for i, w := range windows {
		if w.LeafOrdinal != 3 {
			t.Fatalf("window %d from leaf %d, want 3", i, w.LeafOrdinal)
		}
		if w.Total() != 64*4096 {
			t.Fatalf("window %d total %d, want %d", i, w.Total(), 64*4096)
		}
		if w.Iter != uint32(i+1) {
			t.Fatalf("window %d iter %d", i, w.Iter)
		}
	}
}
