package telemetry

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// tp is a compact packet event for the table-driven demux tests.
type tp struct {
	at   int64
	port int
	src  topology.HostID
	size int
	job  uint16
	iter uint32
}

func feed(m *LeafMonitor, events []tp) {
	for _, e := range events {
		m.OnPacket(sim.Time(e.at), e.port,
			pkt(e.src, e.size, fabric.FlowTag{Sentinel: true, Job: e.job, Iter: e.iter}, fabric.Data))
	}
}

// TestLeafMonitorDemux is the table-driven specification of the
// per-job window demux: interleaved jobs, out-of-order iterations,
// job filter vs JobAny, and flush with several open windows.
func TestLeafMonitorDemux(t *testing.T) {
	type want struct {
		job       uint16
		iter      uint32
		total     int64
		closedAt  int64
		flushOnly bool // closed by Flush, not by a next-iteration packet
	}
	cases := []struct {
		name    string
		job     int // monitor filter
		events  []tp
		flushAt int64
		closed  []want
		late    map[uint16]int64
	}{
		{
			name: "interleaved jobs do not close each other",
			job:  JobAny,
			events: []tp{
				{at: 10, port: 1, size: 100, job: 1, iter: 1},
				{at: 20, port: 1, size: 200, job: 2, iter: 1},
				{at: 30, port: 2, size: 300, job: 1, iter: 1},
				{at: 40, port: 2, size: 400, job: 2, iter: 1},
				// Job 1 advances; job 2's window must stay open.
				{at: 50, port: 1, size: 10, job: 1, iter: 2},
				{at: 60, port: 1, size: 20, job: 2, iter: 1},
				// Job 2 advances.
				{at: 70, port: 1, size: 30, job: 2, iter: 2},
			},
			flushAt: 100,
			closed: []want{
				{job: 1, iter: 1, total: 400, closedAt: 50},
				{job: 2, iter: 1, total: 620, closedAt: 70},
				{job: 1, iter: 2, total: 10, closedAt: 100, flushOnly: true},
				{job: 2, iter: 2, total: 30, closedAt: 100, flushOnly: true},
			},
		},
		{
			name: "out-of-order iterations are late per job",
			job:  JobAny,
			events: []tp{
				{at: 10, port: 1, size: 100, job: 1, iter: 5},
				{at: 20, port: 1, size: 100, job: 2, iter: 1},
				// Late for job 1 only; job 2 is still on iter 1.
				{at: 30, port: 1, size: 77, job: 1, iter: 4},
				{at: 40, port: 1, size: 55, job: 2, iter: 1},
			},
			flushAt: 100,
			closed: []want{
				{job: 1, iter: 5, total: 100, closedAt: 100, flushOnly: true},
				{job: 2, iter: 1, total: 155, closedAt: 100, flushOnly: true},
			},
			late: map[uint16]int64{1: 77, 2: 0},
		},
		{
			name: "job filter measures one job only",
			job:  2,
			events: []tp{
				{at: 10, port: 1, size: 100, job: 1, iter: 1},
				{at: 20, port: 1, size: 200, job: 2, iter: 1},
				{at: 30, port: 1, size: 100, job: 1, iter: 2},
				{at: 40, port: 1, size: 300, job: 2, iter: 2},
			},
			flushAt: 100,
			closed: []want{
				{job: 2, iter: 1, total: 200, closedAt: 40},
				{job: 2, iter: 2, total: 300, closedAt: 100, flushOnly: true},
			},
		},
		{
			name: "flush closes multiple open windows in job order",
			job:  JobAny,
			events: []tp{
				{at: 10, port: 1, size: 1, job: 3, iter: 1},
				{at: 20, port: 1, size: 2, job: 0, iter: 1},
				{at: 30, port: 1, size: 3, job: 7, iter: 1},
			},
			flushAt: 99,
			closed: []want{
				{job: 0, iter: 1, total: 2, closedAt: 99, flushOnly: true},
				{job: 3, iter: 1, total: 1, closedAt: 99, flushOnly: true},
				{job: 7, iter: 1, total: 3, closedAt: 99, flushOnly: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := testTopo(t)
			var closed []*Window
			m := NewLeafMonitor(topo, topo.Leaves()[0], tc.job, func(w *Window) { closed = append(closed, w) })
			feed(m, tc.events)
			m.Flush(sim.Time(tc.flushAt))
			if len(closed) != len(tc.closed) {
				t.Fatalf("closed %d windows, want %d: %+v", len(closed), len(tc.closed), closed)
			}
			for i, want := range tc.closed {
				w := closed[i]
				if w.Job != want.job || w.Iter != want.iter || w.Total() != want.total || int64(w.ClosedAt) != want.closedAt {
					t.Errorf("window %d: job=%d iter=%d total=%d closed=%d, want %+v",
						i, w.Job, w.Iter, w.Total(), w.ClosedAt, want)
				}
			}
			for job, want := range tc.late {
				if got := m.LateBytesFor(job); got != want {
					t.Errorf("LateBytesFor(%d) = %d, want %d", job, got, want)
				}
			}
		})
	}
}

// TestInterleavedJobsRegression is the ISSUE-4 bugfix regression: two
// jobs interleaving under JobAny must produce correct per-job
// PortBytes with zero LateBytes. Under the old single-current-window
// monitor, job B's first packet closed job A's half-full window and
// job A's next packet (lower Iter than B's) was miscounted as late.
func TestInterleavedJobsRegression(t *testing.T) {
	topo := testTopo(t)
	var closed []*Window
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, func(w *Window) { closed = append(closed, w) })

	// Job 7 is ahead of job 1 in iteration number — the cross-job Iter
	// comparison the old monitor tripped over.
	feed(m, []tp{
		{at: 10, port: 1, size: 1000, job: 1, iter: 1},
		{at: 11, port: 1, size: 2000, job: 7, iter: 6},
		{at: 12, port: 2, size: 1000, job: 1, iter: 1}, // NOT late: job 1 is on iter 1
		{at: 13, port: 2, size: 2000, job: 7, iter: 6},
		{at: 14, port: 1, size: 500, job: 1, iter: 2},
		{at: 15, port: 1, size: 600, job: 7, iter: 7},
	})
	m.Flush(20)

	if m.LateBytes != 0 {
		t.Fatalf("LateBytes = %d, want 0 — interleaved jobs misattributed as late", m.LateBytes)
	}
	byKey := map[[2]uint32]*Window{}
	for _, w := range closed {
		byKey[[2]uint32{uint32(w.Job), w.Iter}] = w
	}
	w11 := byKey[[2]uint32{1, 1}]
	if w11 == nil || w11.PortBytes[0] != 1000 || w11.PortBytes[1] != 1000 {
		t.Fatalf("job 1 iter 1 window wrong: %+v", w11)
	}
	w76 := byKey[[2]uint32{7, 6}]
	if w76 == nil || w76.PortBytes[0] != 2000 || w76.PortBytes[1] != 2000 {
		t.Fatalf("job 7 iter 6 window wrong: %+v", w76)
	}
	if len(closed) != 4 {
		t.Fatalf("closed %d windows, want 4 (2 jobs x 2 iters)", len(closed))
	}
}

// TestSpineMonitorDemuxInterleaved covers the same demux on the spine
// program (three-level fabrics).
func TestSpineMonitorDemuxInterleaved(t *testing.T) {
	topo := clos3Topo(t)
	var closed []*Window
	m := NewSpineMonitor(topo, topo.Spines()[0], JobAny, func(w *Window) { closed = append(closed, w) })
	core := -1
	for p := range topo.Switch(topo.Spines()[0]).Ports {
		if m.corePorts[p] >= 0 {
			core = p
			break
		}
	}
	m.OnPacket(1, core, pkt(0, 100, fabric.FlowTag{Sentinel: true, Job: 1, Iter: 1}, fabric.Data))
	m.OnPacket(2, core, pkt(0, 200, fabric.FlowTag{Sentinel: true, Job: 2, Iter: 3}, fabric.Data))
	m.OnPacket(3, core, pkt(0, 50, fabric.FlowTag{Sentinel: true, Job: 1, Iter: 1}, fabric.Data))
	if m.LateBytes != 0 {
		t.Fatalf("spine LateBytes = %d, want 0", m.LateBytes)
	}
	m.Flush(10)
	if len(closed) != 2 || closed[0].Job != 1 || closed[0].Total() != 150 ||
		closed[1].Job != 2 || closed[1].Total() != 200 {
		t.Fatalf("spine demux windows: %+v", closed)
	}
}

// TestSharedTapSteadyStateAllocsZero is the shared plane's alloc gate:
// once every job's window is open, a demuxing tap must account an
// interleaved multi-job packet stream without heap allocations — the
// property that lets N jobs ride the fabric's zero-allocation
// forwarding path on ONE tap per switch. (Window open/close may
// allocate; that is boundary work, two per job per iteration.)
func TestSharedTapSteadyStateAllocsZero(t *testing.T) {
	topo := testTopo(t)
	m := NewLeafMonitor(topo, topo.Leaves()[0], JobAny, func(w *Window) {})
	const jobs = 4
	pkts := make([]*fabric.Packet, jobs)
	for j := range pkts {
		pkts[j] = pkt(topo.HostsOf(topo.Leaves()[1])[0], 4096,
			fabric.FlowTag{Sentinel: true, Job: uint16(j + 1), Iter: 1}, fabric.Data)
	}
	hostPorts := len(topo.HostsOf(topo.Leaves()[0]))
	uplinks := m.Uplinks()
	for i, p := range pkts { // open every job's window
		m.OnPacket(sim.Time(i), hostPorts+i%uplinks, p)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		i++
		m.OnPacket(sim.Time(i), hostPorts+i%uplinks, pkts[i%jobs])
	})
	if avg != 0 {
		t.Fatalf("steady-state shared tap allocates %.2f per packet, want 0", avg)
	}
}
