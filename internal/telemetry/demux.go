package telemetry

import (
	"sort"

	"flowpulse/internal/sim"
)

// demux is the per-job window state shared by the leaf and spine
// monitor programs. §5.1's window-close rule — "the first packet of
// iteration k+1 closes window k" — is a per-job statement: each
// training job has its own iteration clock, so a monitor observing
// several jobs (JobAny on a shared fabric) must keep one open window
// per job id. A single shared window would let job B's packets close
// job A's window mid-iteration and make the cross-job Iter comparison
// (and therefore LateBytes) meaningless.
type demux struct {
	open map[uint16]*Window
	// cur caches the window of the most recent packet's job: collective
	// traffic is bursty per job, so nearly every packet hits this
	// pointer compare instead of the map.
	cur *Window

	// lateByJob tracks per-job late bytes (see LeafMonitor.LateBytes).
	lateByJob map[uint16]int64
}

func newDemux() demux {
	return demux{open: map[uint16]*Window{}}
}

// lookup returns the open window for a job, or nil.
func (d *demux) lookup(job uint16) *Window {
	if d.cur != nil && d.cur.Job == job {
		return d.cur
	}
	w := d.open[job]
	if w != nil {
		d.cur = w
	}
	return w
}

// put registers a freshly opened window.
func (d *demux) put(w *Window) {
	d.open[w.Job] = w
	d.cur = w
}

// take removes and returns a job's open window (nil if none).
func (d *demux) take(job uint16) *Window {
	w := d.open[job]
	if w == nil {
		return nil
	}
	delete(d.open, job)
	if d.cur == w {
		d.cur = nil
	}
	return w
}

// late charges a late packet against its job.
func (d *demux) late(job uint16, bytes int64) {
	if d.lateByJob == nil {
		d.lateByJob = map[uint16]int64{}
	}
	d.lateByJob[job] += bytes
}

// jobs returns the open-window job ids in ascending order — the
// deterministic flush order.
func (d *demux) jobs() []uint16 {
	out := make([]uint16, 0, len(d.open))
	for job := range d.open {
		out = append(out, job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// flush closes every open window in ascending job order.
func (d *demux) flush(now sim.Time, closeJob func(now sim.Time, job uint16)) {
	for _, job := range d.jobs() {
		closeJob(now, job)
	}
}
