package telemetry

import (
	"fmt"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// SpineMonitor is the §7 "Network Topology" extension: in a three-
// level Clos, leaf monitors cover spine→leaf links, and spine monitors
// cover core→spine links, so every inter-switch level is watched. A
// SpineMonitor counts tagged bytes per core-facing ingress port of one
// spine switch, with the same iteration-window semantics as the leaf
// program.
type SpineMonitor struct {
	topo         *topology.Topology
	spine        topology.SwitchID
	spineOrdinal int
	job          int

	// corePorts maps a switch port index to a dense "uplink" index
	// (-1 for leaf-facing ports).
	corePorts []int
	nCore     int

	dx demux

	// LateBytes mirrors LeafMonitor.LateBytes.
	LateBytes int64

	onClose func(w *Window)

	srcLeafOrd []int

	// aggCum mirrors LeafMonitor.aggCum for core-facing ports.
	aggCum []int64
}

// NewSpineMonitor builds the monitor for one spine switch of a
// three-level fabric. onClose receives every completed window; the
// window's LeafOrdinal field carries the SPINE ordinal and its
// SwitchKind is topology.Spine.
func NewSpineMonitor(topo *topology.Topology, spine topology.SwitchID, job int, onClose func(w *Window)) *SpineMonitor {
	if topo.Switch(spine).Kind != topology.Spine {
		panic(fmt.Sprintf("telemetry: switch %d is not a spine", spine))
	}
	m := &SpineMonitor{
		topo:         topo,
		spine:        spine,
		spineOrdinal: topo.SpineOrdinal(spine),
		job:          job,
		dx:           newDemux(),
		onClose:      onClose,
		srcLeafOrd:   make([]int, len(topo.Hosts)),
	}
	ports := topo.Switch(spine).Ports
	m.corePorts = make([]int, len(ports))
	for p, pd := range ports {
		m.corePorts[p] = -1
		if pd.Peer.Kind == topology.SwitchEnd && topo.Switch(pd.Peer.Switch).Kind == topology.Core {
			m.corePorts[p] = m.nCore
			m.nCore++
		}
	}
	if m.nCore == 0 {
		panic(fmt.Sprintf("telemetry: spine %d has no core-facing ports (two-level fabric?)", spine))
	}
	m.aggCum = make([]int64, m.nCore)
	for h := range topo.Hosts {
		m.srcLeafOrd[h] = topo.LeafOrdinal(topo.LeafOf(topology.HostID(h)))
	}
	return m
}

// CorePorts returns the number of monitored core-facing ports.
func (m *SpineMonitor) CorePorts() int { return m.nCore }

// OnPacket is the switch dataplane hook.
func (m *SpineMonitor) OnPacket(now sim.Time, port int, pkt *fabric.Packet) {
	u := m.corePorts[port]
	if u < 0 {
		return
	}
	if pkt.Kind != fabric.Data || !pkt.Tag.Sentinel {
		return
	}
	// See LeafMonitor.OnPacket: the aggregate counter counts every
	// sentinel packet, bumped after any close/open this packet causes.
	if m.job != JobAny && int(pkt.Tag.Job) != m.job {
		m.aggCum[u] += int64(pkt.Size)
		return
	}

	w := m.dx.lookup(pkt.Tag.Job)
	switch {
	case w == nil:
		w = m.open(now, pkt.Tag)
	case pkt.Tag.Iter > w.Iter:
		m.closeJob(now, pkt.Tag.Job)
		w = m.open(now, pkt.Tag)
	case pkt.Tag.Iter < w.Iter:
		m.LateBytes += int64(pkt.Size)
		m.dx.late(pkt.Tag.Job, int64(pkt.Size))
		m.aggCum[u] += int64(pkt.Size)
		return
	}

	m.aggCum[u] += int64(pkt.Size)
	w.PortBytes[u] += int64(pkt.Size)
	w.SenderBytes[u][m.srcLeafOrd[pkt.Src]] += int64(pkt.Size)
	w.Packets++
}

// OpenWindow returns the job's currently open window, or nil.
func (m *SpineMonitor) OpenWindow(job uint16) *Window { return m.dx.open[job] }

// LateBytesFor returns the late-byte count attributed to one job.
func (m *SpineMonitor) LateBytesFor(job uint16) int64 { return m.dx.lateByJob[job] }

func (m *SpineMonitor) open(now sim.Time, tag fabric.FlowTag) *Window {
	w := &Window{
		Leaf:        m.spine, // the observing switch
		LeafOrdinal: m.spineOrdinal,
		SwitchKind:  topology.Spine,
		Job:         tag.Job,
		Iter:        tag.Iter,
		PortBytes:   make([]int64, m.nCore),
		SenderBytes: make([][]int64, m.nCore),
		OpenedAt:    now,
		aggOpen:     append([]int64(nil), m.aggCum...),
	}
	for i := range w.SenderBytes {
		w.SenderBytes[i] = make([]int64, len(m.topo.Leaves()))
	}
	m.dx.put(w)
	return w
}

func (m *SpineMonitor) closeJob(now sim.Time, job uint16) {
	w := m.dx.take(job)
	if w == nil {
		return
	}
	w.ClosedAt = now
	w.AggPortBytes = make([]int64, len(m.aggCum))
	for i := range m.aggCum {
		w.AggPortBytes[i] = m.aggCum[i] - w.aggOpen[i]
	}
	w.aggOpen = nil
	if m.onClose != nil {
		m.onClose(w)
	}
}

// Flush closes every open window, in ascending job order.
func (m *SpineMonitor) Flush(now sim.Time) { m.dx.flush(now, m.closeJob) }

// Clos3Collector attaches monitors to every leaf AND every spine of a
// three-level fabric, funnelling windows to one callback per level.
type Clos3Collector struct {
	Leaves []*LeafMonitor  // indexed by leaf ordinal
	Spines []*SpineMonitor // indexed by spine ordinal
}

// AttachClos3 deploys both monitor levels. Leaf windows carry
// SwitchKind == topology.Leaf, spine windows topology.Spine.
func AttachClos3(net *fabric.Network, job int, onWindow func(w *Window)) *Clos3Collector {
	topo := net.Topology()
	c := &Clos3Collector{
		Leaves: make([]*LeafMonitor, len(topo.Leaves())),
		Spines: make([]*SpineMonitor, len(topo.Spines())),
	}
	for ord, leaf := range topo.Leaves() {
		m := NewLeafMonitor(topo, leaf, job, controlSink(net, leaf, onWindow))
		c.Leaves[ord] = m
		net.AddIngressHook(leaf, m.OnPacket)
	}
	for ord, spine := range topo.Spines() {
		m := NewSpineMonitor(topo, spine, job, controlSink(net, spine, onWindow))
		c.Spines[ord] = m
		net.AddIngressHook(spine, m.OnPacket)
	}
	return c
}

// FlushAll closes every monitor's open window.
func (c *Clos3Collector) FlushAll(now sim.Time) {
	for _, m := range c.Leaves {
		m.Flush(now)
	}
	for _, m := range c.Spines {
		m.Flush(now)
	}
}
