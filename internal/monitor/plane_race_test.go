package monitor

import (
	"sync"
	"sync/atomic"
	"testing"

	"flowpulse/internal/detect"
	"flowpulse/internal/telemetry"
)

// countingDetect is a DetectStage that just counts windows — enough to
// observe per-job isolation under the race detector.
type countingDetect struct{ windows atomic.Int64 }

func (d *countingDetect) Score(w *telemetry.Window) (float64, bool) {
	d.windows.Add(1)
	return 0, true
}
func (d *countingDetect) Check(w *telemetry.Window) []detect.Alert { return nil }

// TestPlaneConcurrentAttachDetach is the serve-shaped workload: one
// feeder goroutine per job streaming windows through the demux while
// another goroutine churns attach/detach on a disjoint set of job ids.
// Run under -race (CI does); the assertions check that every window
// either reached its own job's pipeline or was counted unrouted, and
// that no window ever crossed into another job's pipeline.
func TestPlaneConcurrentAttachDetach(t *testing.T) {
	const (
		feeders       = 8
		churned       = 4 // job ids that attach/detach mid-flight
		winsPerFeeder = 500
	)
	p := NewDetachedPlane()

	dets := make([]*countingDetect, feeders)
	for j := 0; j < feeders; j++ {
		dets[j] = &countingDetect{}
		pipe := NewPipeline(PipelineConfig{Detect: dets[j], NoHistory: true})
		if err := p.AttachJob(uint16(j), pipe); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AttachJob(0, NewPipeline(PipelineConfig{Detect: &countingDetect{}, NoHistory: true})); err == nil {
		t.Fatal("double attach not rejected")
	}

	var wg sync.WaitGroup
	// Churner: attach/detach job ids 100..100+churned while windows fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 200; round++ {
			for c := 0; c < churned; c++ {
				job := uint16(100 + c)
				if err := p.AttachJob(job, NewPipeline(PipelineConfig{Detect: &countingDetect{}, NoHistory: true})); err != nil {
					t.Errorf("attach %d: %v", job, err)
					return
				}
			}
			for c := 0; c < churned; c++ {
				if p.DetachJob(uint16(100+c)) == nil {
					t.Errorf("detach %d: not attached", 100+c)
					return
				}
			}
		}
	}()
	// Feeders: each job id has exactly one feeder (the per-pipeline
	// SPSC discipline the Plane documents), so per-pipeline state needs
	// no locks — the demux map is what's under test.
	for j := 0; j < feeders; j++ {
		wg.Add(1)
		go func(job uint16) {
			defer wg.Done()
			w := &telemetry.Window{Job: job, LeafOrdinal: 0, PortBytes: []int64{1, 2}}
			for i := 0; i < winsPerFeeder; i++ {
				w.Iter = uint32(i + 1)
				p.Route(w)
			}
		}(uint16(j))
	}
	// A stray feeder for a never-attached job: all its windows must
	// count as unrouted, none may be misattributed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &telemetry.Window{Job: 999, PortBytes: []int64{1}}
		for i := 0; i < winsPerFeeder; i++ {
			p.Route(w)
		}
	}()
	wg.Wait()

	for j, d := range dets {
		if got := d.windows.Load(); got != winsPerFeeder {
			t.Errorf("job %d saw %d windows, want %d", j, got, winsPerFeeder)
		}
	}
	if got := p.UnroutedWindows(); got != winsPerFeeder {
		t.Errorf("unrouted = %d, want %d", got, winsPerFeeder)
	}
	if got := len(p.Jobs()); got != feeders {
		t.Errorf("jobs after churn = %d, want %d", got, feeders)
	}
}
