package monitor

import (
	"reflect"
	"testing"

	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// fakeDetect returns canned scores and alerts and records the windows
// it saw.
type fakeDetect struct {
	score  float64
	scored bool
	alerts []detect.Alert
	seen   []*telemetry.Window
}

func (f *fakeDetect) Score(w *telemetry.Window) (float64, bool) { return f.score, f.scored }
func (f *fakeDetect) Check(w *telemetry.Window) []detect.Alert {
	f.seen = append(f.seen, w)
	return f.alerts
}

type fakeLocalize struct {
	calls   int
	verdict localize.Verdict
}

func (f *fakeLocalize) Localize(a detect.Alert, w *telemetry.Window, senderPred [][]float64) localize.Verdict {
	f.calls++
	return f.verdict
}

type fakeRemediate struct {
	trace []string // interleaving of Observe/Tick calls
}

func (f *fakeRemediate) Observe(a detect.Alert, v localize.Verdict) {
	f.trace = append(f.trace, "observe")
}
func (f *fakeRemediate) Tick(now sim.Time) { f.trace = append(f.trace, "tick") }

type fakeObserver struct{ windows int }

func (f *fakeObserver) Observe(w *telemetry.Window) { f.windows++ }

func win(job uint16, iter uint32, closedAt sim.Time) *telemetry.Window {
	return &telemetry.Window{
		Job: job, Iter: iter, ClosedAt: closedAt,
		PortBytes:   []int64{1, 2},
		SenderBytes: [][]int64{{1}, {2}},
	}
}

func TestPipelineOnWindowOrdering(t *testing.T) {
	det := &fakeDetect{score: 0.5, scored: true, alerts: []detect.Alert{{Uplink: 1}}}
	loc := &fakeLocalize{verdict: localize.Verdict{Kind: localize.LocalLink}}
	rem := &fakeRemediate{}
	obs := &fakeObserver{}
	var hooks []string
	p := NewPipeline(PipelineConfig{
		Detect:    det,
		Localize:  loc,
		Remediate: rem,
		Observer:  obs,
		OnEvent:   func(e Event) { hooks = append(hooks, "event") },
		OnWindow:  func(ws WindowScore) { hooks = append(hooks, "window") },
	})
	p.Subscribe(func(e Event) { hooks = append(hooks, "sub") })

	w := win(3, 1, 100)
	p.OnWindow(w)

	if p.Windows != 1 || len(p.Scores) != 1 || len(p.Events) != 1 {
		t.Fatalf("windows=%d scores=%d events=%d", p.Windows, len(p.Scores), len(p.Events))
	}
	if p.Scores[0].Score != 0.5 || !p.Scores[0].Scored {
		t.Fatalf("score record: %+v", p.Scores[0])
	}
	// The pipeline analyses a clone: the caller's window must not be
	// retained (the tap may reuse it).
	if p.Scores[0].Window == w || det.seen[0] == w {
		t.Fatal("pipeline retained the caller's window instead of a clone")
	}
	// OnWindow fires before OnEvent; Subscribe callbacks after OnEvent.
	if want := []string{"window", "event", "sub"}; !reflect.DeepEqual(hooks, want) {
		t.Fatalf("hook order %v, want %v", hooks, want)
	}
	// Remediator sees the observation before the end-of-window tick.
	if want := []string{"observe", "tick"}; !reflect.DeepEqual(rem.trace, want) {
		t.Fatalf("remediate trace %v, want %v", rem.trace, want)
	}
	if obs.windows != 1 {
		t.Fatalf("observer saw %d windows, want 1", obs.windows)
	}
	// Without a predictor the verdict stays empty (localize needs the
	// model's sender reference).
	if loc.calls != 0 || p.Events[0].Verdict.Kind != localize.Indeterminate {
		t.Fatalf("localize ran without a predictor: calls=%d verdict=%v", loc.calls, p.Events[0].Verdict)
	}
}

func TestPipelineIterationScores(t *testing.T) {
	det := &fakeDetect{scored: true}
	p := NewPipeline(PipelineConfig{Detect: det})

	det.score = 0.2
	p.OnWindow(win(1, 1, 10))
	det.score = 0.7
	p.OnWindow(win(1, 1, 20)) // same iteration, another leaf: max wins
	det.score = 0.1
	p.OnWindow(win(1, 2, 30))
	det.scored = false
	det.score = 9.9
	p.OnWindow(win(1, 3, 40)) // unscored windows are excluded

	got := p.IterationScores()
	want := map[uint32]float64{1: 0.7, 2: 0.1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration scores %v, want %v", got, want)
	}
}

func testNet(t *testing.T) *fabric.Network {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.New(fabric.Config{Topo: topo, Engine: sim.NewEngine()})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPlaneRoutesWindowsPerJob(t *testing.T) {
	net := testNet(t)
	pipes := map[uint16]*Pipeline{
		1: NewPipeline(PipelineConfig{Detect: &fakeDetect{}}),
		2: NewPipeline(PipelineConfig{Detect: &fakeDetect{}}),
	}
	plane := NewPlane(net, []uint16{1, 2}, pipes)

	if !reflect.DeepEqual(plane.Jobs(), []uint16{1, 2}) {
		t.Fatalf("jobs: %v", plane.Jobs())
	}
	// Drive the shared tap directly: interleaved packets from three
	// jobs, one of which (7) has no pipeline.
	m := plane.Collector().Monitors[0]
	for _, job := range []uint16{1, 2, 7} {
		m.OnPacket(10, 1, &fabric.Packet{
			Src: 0, Dst: 0, Size: 1000, Kind: fabric.Data,
			Tag: fabric.FlowTag{Sentinel: true, Job: job, Iter: 1},
		})
	}
	plane.Flush(50)

	for job, pipe := range pipes {
		if pipe.Windows != 1 {
			t.Errorf("job %d: %d windows, want 1", job, pipe.Windows)
		}
	}
	if plane.UnroutedWindows() != 1 {
		t.Errorf("unrouted windows = %d, want 1 (job 7 has no pipeline)", plane.UnroutedWindows())
	}
	if plane.Pipeline(1) != pipes[1] || plane.Pipeline(7) != nil {
		t.Error("Pipeline lookup wrong")
	}
}

func TestPlaneValidation(t *testing.T) {
	net := testNet(t)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("count mismatch", func() {
		NewPlane(net, []uint16{1}, map[uint16]*Pipeline{})
	})
	mustPanic("nil pipeline", func() {
		NewPlane(net, []uint16{1}, map[uint16]*Pipeline{1: nil})
	})
	mustPanic("missing Detect", func() {
		NewPipeline(PipelineConfig{})
	})
}
