package monitor

import (
	"flowpulse/internal/predict"
	"flowpulse/internal/telemetry"
)

// PipelineConfig assembles one job's analysis pipeline.
type PipelineConfig struct {
	// Pred is the job's load model (consulted for readiness and
	// per-sender references during localization).
	Pred predict.Predictor
	// Detect scores windows and raises alerts. Required.
	Detect DetectStage
	// Localize attributes alerts to links. Optional: without it,
	// events carry an empty verdict.
	Localize LocalizeStage
	// Remediate, when set, receives every localized detection and a
	// tick per window close. Shared across pipelines on a Plane.
	Remediate RemediateStage
	// Observer, when set, sees every window after detection (the
	// learned model's input).
	Observer WindowObserver
	// OnEvent receives every localized detection as it happens.
	OnEvent func(e Event)
	// OnWindow receives every closed window after scoring but before
	// the observer sees it.
	OnWindow func(ws WindowScore)
	// NoHistory drops per-window retention: Scores and Events stay
	// empty (and windows are not cloned), so memory stays flat however
	// long the pipeline runs. Long-running consumers (flowpulse-serve)
	// set it and take detections through OnEvent/Subscribe instead;
	// IterationScores is unavailable with it. Callbacks must not retain
	// the window past the call.
	NoHistory bool
}

// Pipeline is one job's window-analysis chain. It is fed closed
// telemetry windows (from a Plane's shared tap, or a single-job
// collector) and accumulates scores and events.
type Pipeline struct {
	cfg  PipelineConfig
	subs []func(e Event)

	// Events accumulates every detection with its localization.
	Events []Event
	// Windows counts closed windows processed.
	Windows int
	// Scores holds (per closed window, in arrival order) the max
	// absolute deviation and the window itself — the ROC analysis
	// input.
	Scores []WindowScore
}

// NewPipeline builds a pipeline. Detect is required.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Detect == nil {
		panic("monitor: PipelineConfig.Detect is required")
	}
	return &Pipeline{cfg: cfg}
}

// Predictor returns the pipeline's load model.
func (p *Pipeline) Predictor() predict.Predictor { return p.cfg.Pred }

// Subscribe registers a callback for every localized detection.
// Ordering guarantee: callbacks run synchronously from the window-close
// path — after the event is appended to Events and after
// PipelineConfig.OnEvent — in subscription order; events arrive in
// window-close order (per leaf, ascending iteration) and, within one
// window, in ascending uplink order. Subscribe must not be called from
// inside a callback.
func (p *Pipeline) Subscribe(fn func(e Event)) {
	if fn == nil {
		panic("monitor: Subscribe(nil)")
	}
	p.subs = append(p.subs, fn)
}

// OnWindow is the window-close path: score, detect, localize, then let
// the observer (learned model) see the window and the remediator tick.
// The window is cloned before anything retains it; callers may reuse
// its storage after the call.
func (p *Pipeline) OnWindow(w *telemetry.Window) {
	if p.cfg.NoHistory {
		// Nothing retains the window, so nothing needs the clone.
		p.OnOwnedWindow(w)
		return
	}
	p.process(w.Clone())
}

// OnOwnedWindow is OnWindow for callers that own (and reuse) the
// window's storage: the pipeline neither clones nor retains it, so the
// hot ingestion path stays allocation-free. Only valid with NoHistory
// set; stages and callbacks see the caller's storage and must be done
// with it when they return.
func (p *Pipeline) OnOwnedWindow(w *telemetry.Window) {
	if !p.cfg.NoHistory {
		panic("monitor: OnOwnedWindow without PipelineConfig.NoHistory")
	}
	p.process(w)
}

func (p *Pipeline) process(wc *telemetry.Window) {
	p.Windows++
	score, ok := p.cfg.Detect.Score(wc)
	ws := WindowScore{Window: wc, Score: score, Scored: ok}
	if !p.cfg.NoHistory {
		p.Scores = append(p.Scores, ws)
	}
	if p.cfg.OnWindow != nil {
		p.cfg.OnWindow(ws)
	}

	alerts := p.cfg.Detect.Check(wc)
	// The sender reference is snapshotted once per window, before any
	// alert reaches the remediator: all of a window's alerts share the
	// window's (leaf, iter), and a remediation triggered by an earlier
	// alert may re-baseline the model mid-loop — later alerts in the
	// same window must still be localized against the reference the
	// detector scored them with. (This is also what makes offline trace
	// replay bit-identical: the recorded per-window prediction is
	// exactly this snapshot.)
	var senders [][]float64
	haveSenders := false
	if len(alerts) > 0 && p.cfg.Localize != nil && p.cfg.Pred != nil && p.cfg.Pred.Ready(wc.LeafOrdinal) {
		senders = p.cfg.Pred.SenderLoad(wc.LeafOrdinal)
		if ip, ok := p.cfg.Pred.(predict.IterPredictor); ok {
			senders = ip.SenderLoadAt(wc.LeafOrdinal, wc.Iter)
		}
		haveSenders = true
	}
	for _, a := range alerts {
		e := Event{Alert: a}
		if haveSenders {
			e.Verdict = p.cfg.Localize.Localize(a, wc, senders)
		}
		if !p.cfg.NoHistory {
			p.Events = append(p.Events, e)
		}
		if p.cfg.OnEvent != nil {
			p.cfg.OnEvent(e)
		}
		for _, fn := range p.subs {
			fn(e)
		}
		if p.cfg.Remediate != nil {
			p.cfg.Remediate.Observe(e.Alert, e.Verdict)
		}
	}

	if p.cfg.Observer != nil {
		p.cfg.Observer.Observe(wc)
	}
	if p.cfg.Remediate != nil {
		p.cfg.Remediate.Tick(wc.ClosedAt)
	}
}

// IterationScores aggregates window scores per iteration across all
// leaves: the system-level statistic "was any port on any leaf
// deviant during iteration k" (the classifier the evaluation rates).
func (p *Pipeline) IterationScores() map[uint32]float64 {
	out := map[uint32]float64{}
	for _, ws := range p.Scores {
		if !ws.Scored {
			continue
		}
		if ws.Score > out[ws.Window.Iter] {
			out[ws.Window.Iter] = ws.Score
		}
	}
	return out
}
