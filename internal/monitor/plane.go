package monitor

import (
	"fmt"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
)

// Plane is the shared monitoring plane: ONE telemetry tap per switch
// (measuring every sentinel-tagged job, demultiplexed per job id by
// the monitors), fanning each closed window out to the owning job's
// pipeline. N jobs cost one per-packet hook instead of N — the tap is
// on the forwarding hot path, the pipelines are not (they run once per
// window close).
type Plane struct {
	collector *telemetry.Collector
	pipelines map[uint16]*Pipeline
	jobs      []uint16 // registration order

	// UnroutedWindows counts closed windows whose job id has no
	// registered pipeline (e.g. a tagged job deployed without a
	// monitor); they are dropped, not misattributed.
	UnroutedWindows int
}

// NewPlane deploys the shared tap on every leaf of the network and
// routes closed windows to the given per-job pipelines. jobs lists the
// pipeline keys in deterministic (registration) order.
func NewPlane(net *fabric.Network, jobs []uint16, pipelines map[uint16]*Pipeline) *Plane {
	if len(jobs) != len(pipelines) {
		panic(fmt.Sprintf("monitor: %d job ids for %d pipelines", len(jobs), len(pipelines)))
	}
	p := &Plane{pipelines: pipelines, jobs: append([]uint16(nil), jobs...)}
	for _, job := range p.jobs {
		if pipelines[job] == nil {
			panic(fmt.Sprintf("monitor: no pipeline for job %d", job))
		}
	}
	p.collector = telemetry.AttachAll(net, telemetry.JobAny, p.route)
	return p
}

// route is the demux point between the fabric-scoped tap and the
// job-scoped pipelines.
func (p *Plane) route(w *telemetry.Window) {
	pipe := p.pipelines[w.Job]
	if pipe == nil {
		p.UnroutedWindows++
		return
	}
	pipe.OnWindow(w)
}

// Jobs returns the registered job ids in registration order.
func (p *Plane) Jobs() []uint16 { return p.jobs }

// Pipeline returns the pipeline monitoring one job (nil if absent).
func (p *Plane) Pipeline(job uint16) *Pipeline { return p.pipelines[job] }

// Collector exposes the shared telemetry tap.
func (p *Plane) Collector() *telemetry.Collector { return p.collector }

// Flush closes all open telemetry windows (end of training). Windows
// flush per leaf in ascending job order.
func (p *Plane) Flush(now sim.Time) { p.collector.FlushAll(now) }
