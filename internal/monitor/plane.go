package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
)

// Plane is the shared monitoring plane: ONE telemetry tap per switch
// (measuring every sentinel-tagged job, demultiplexed per job id by
// the monitors), fanning each closed window out to the owning job's
// pipeline. N jobs cost one per-packet hook instead of N — the tap is
// on the forwarding hot path, the pipelines are not (they run once per
// window close).
//
// Routing is safe against concurrent AttachJob/DetachJob while windows
// are in flight (flowpulse-serve attaches jobs as producers connect):
// the demux takes a read lock per window — uncontended in the embedded
// single-threaded path — and attach/detach take the write lock. A
// detach does not interrupt a window already being processed by the
// departing pipeline; it returns once routing can no longer reach it.
// Calls INTO one pipeline are not synchronized by the Plane: each
// pipeline must keep a single feeder (the tap's window-close path, or
// one serve shard), which is the SPSC discipline every current caller
// follows.
type Plane struct {
	collector *telemetry.Collector

	mu        sync.RWMutex
	pipelines map[uint16]*Pipeline
	jobs      []uint16 // registration order

	// unrouted counts closed windows whose job id has no registered
	// pipeline (e.g. a tagged job deployed without a monitor); they are
	// dropped, not misattributed.
	unrouted atomic.Int64
}

// NewPlane deploys the shared tap on every leaf of the network and
// routes closed windows to the given per-job pipelines. jobs lists the
// pipeline keys in deterministic (registration) order.
func NewPlane(net *fabric.Network, jobs []uint16, pipelines map[uint16]*Pipeline) *Plane {
	if len(jobs) != len(pipelines) {
		panic(fmt.Sprintf("monitor: %d job ids for %d pipelines", len(jobs), len(pipelines)))
	}
	p := &Plane{pipelines: make(map[uint16]*Pipeline, len(pipelines)), jobs: append([]uint16(nil), jobs...)}
	for _, job := range p.jobs {
		if pipelines[job] == nil {
			panic(fmt.Sprintf("monitor: no pipeline for job %d", job))
		}
		p.pipelines[job] = pipelines[job]
	}
	p.collector = telemetry.AttachAll(net, telemetry.JobAny, p.route)
	return p
}

// NewDetachedPlane builds a plane with no fabric tap and no initial
// jobs: windows arrive via Route and jobs come and go via
// AttachJob/DetachJob. This is flowpulse-serve's configuration — the
// "tap" is the network ingestion path.
func NewDetachedPlane() *Plane {
	return &Plane{pipelines: map[uint16]*Pipeline{}}
}

// AttachJob registers a pipeline for a job id. It is safe while
// windows are in flight; windows for the job routed before the attach
// completes count as unrouted. Attaching an already-attached job id is
// an error (detach first).
func (p *Plane) AttachJob(job uint16, pipe *Pipeline) error {
	if pipe == nil {
		panic("monitor: AttachJob(nil pipeline)")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pipelines[job] != nil {
		return fmt.Errorf("monitor: job %d already attached", job)
	}
	p.pipelines[job] = pipe
	p.jobs = append(p.jobs, job)
	return nil
}

// DetachJob unregisters a job's pipeline and returns it (nil if the
// job was not attached). Once DetachJob returns, no new window will
// reach the pipeline; a window concurrently in flight through route
// may still complete against it.
func (p *Plane) DetachJob(job uint16) *Pipeline {
	p.mu.Lock()
	defer p.mu.Unlock()
	pipe := p.pipelines[job]
	if pipe == nil {
		return nil
	}
	delete(p.pipelines, job)
	for i, j := range p.jobs {
		if j == job {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	return pipe
}

// route is the demux point between the fabric-scoped tap and the
// job-scoped pipelines.
func (p *Plane) route(w *telemetry.Window) {
	p.mu.RLock()
	pipe := p.pipelines[w.Job]
	p.mu.RUnlock()
	if pipe == nil {
		p.unrouted.Add(1)
		return
	}
	pipe.OnWindow(w)
}

// Route feeds one closed window through the demux, for planes without
// a fabric tap (the pipeline clones what it retains, so the caller may
// reuse the window's storage).
func (p *Plane) Route(w *telemetry.Window) { p.route(w) }

// UnroutedWindows reports how many closed windows carried a job id
// with no registered pipeline.
func (p *Plane) UnroutedWindows() int64 { return p.unrouted.Load() }

// Jobs returns the registered job ids in registration order.
func (p *Plane) Jobs() []uint16 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]uint16(nil), p.jobs...)
}

// Pipeline returns the pipeline monitoring one job (nil if absent).
func (p *Plane) Pipeline(job uint16) *Pipeline {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pipelines[job]
}

// Collector exposes the shared telemetry tap (nil for detached
// planes).
func (p *Plane) Collector() *telemetry.Collector { return p.collector }

// Flush closes all open telemetry windows (end of training). Windows
// flush per leaf in ascending job order. No-op on detached planes.
func (p *Plane) Flush(now sim.Time) {
	if p.collector != nil {
		p.collector.FlushAll(now)
	}
}
