// Package monitor is the job-facing half of the FlowPulse monitoring
// plane: the per-job analysis pipeline (Predictor → Detector →
// Localizer → Remediator) behind explicit stage interfaces, and the
// Plane that fans one shared per-switch telemetry tap out to many such
// pipelines — one per concurrent training job (§7 "Parallel Jobs").
//
// The split mirrors a production deployment: telemetry is a fabric
// service (one tap per switch, owned by the operator), while each
// job's pipeline is job-scoped state (its own load model, detector
// baseline, and event log). Remediation is fabric-scoped again — one
// arbiter, because a quarantine reroutes everyone's traffic — so the
// Plane shares a single RemediateStage across pipelines.
package monitor

import (
	"flowpulse/internal/detect"
	"flowpulse/internal/localize"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
)

// Event is one detection, optionally localized.
type Event struct {
	Alert   detect.Alert
	Verdict localize.Verdict
}

// WindowScore pairs a window with its detector score.
type WindowScore struct {
	Window *telemetry.Window
	Score  float64
	// Scored is false while the model is warming up.
	Scored bool
}

// DetectStage scores closed windows against a load model and emits
// per-port alerts. *detect.Detector implements it.
type DetectStage interface {
	// Score returns the window's max |relative deviation| (false while
	// the model warms up).
	Score(w *telemetry.Window) (float64, bool)
	// Check returns one alert per deviating port.
	Check(w *telemetry.Window) []detect.Alert
}

// LocalizeStage attributes one alert to suspect links using the
// per-sender byte matrix (Fig. 4). *localize.Localizer implements it.
type LocalizeStage interface {
	Localize(a detect.Alert, w *telemetry.Window, senderPred [][]float64) localize.Verdict
}

// RemediateStage closes the loop on localized detections.
// *remediate.Remediator implements it.
type RemediateStage interface {
	// Observe feeds one localized detection into confirmation.
	Observe(a detect.Alert, v localize.Verdict)
	// Tick advances probing/re-admission; called at every window close.
	Tick(now sim.Time)
}

// WindowObserver is a stage that learns from closed windows after
// detection ran on them (the learned model's re-baselining input).
// *predict.Learned implements it.
type WindowObserver interface {
	Observe(w *telemetry.Window)
}
