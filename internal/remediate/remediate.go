// Package remediate closes the loop that detection (§5.3) opens: it
// confirms alerts over consecutive windows, quarantines the localized
// link (admin-down plus load-model update), re-baselines the
// predictors, and probes the quarantined link with OAM packets until
// it has earned re-admission — with BGP-style flap damping so an
// intermittent link cannot churn the fabric forever.
//
// The remediator never touches the fabric directly: every mutation is
// a declarative ChangeSet pushed through the control plane
// (internal/control), which verifies its own writes and reports
// whether the change committed. Failed commits leave the remediator's
// state armed so the action retries; and before acting on a confirmed
// deviation the remediator asks the plane to Reconcile — a deviation
// that is really a belief≠truth divergence gets the topology view
// repaired (ActionReconcile) instead of a healthy link quarantined.
//
// The remediator is tick-driven: it acts only from Observe (called per
// localized alert) and Tick (called at every window close), plus
// finite one-shot probe-result events, so it never keeps the event
// loop alive after training traffic ends.
package remediate

import (
	"fmt"

	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Config tunes the remediation loop.
type Config struct {
	// ConfirmWindows is K: how many consecutive deviating windows on
	// the same (leaf, uplink) confirm a fault. Defaults to 3.
	ConfirmWindows int
	// CleanProbes is M: how many consecutive loss-free probe rounds a
	// quarantined link needs for re-admission. Defaults to 3.
	CleanProbes int
	// ProbeInterval spaces probe rounds per quarantined link.
	// Defaults to 100µs.
	ProbeInterval sim.Duration
	// ProbePackets is the number of probes per direction per round.
	// Defaults to 128 — enough that a 1.5% lossy link passes a round
	// with probability 0.985^256 ≈ 2%, and M consecutive rounds with
	// ≈ 1e-5.
	ProbePackets int
	// ProbeBytes is the probe packet size. Defaults to 256.
	ProbeBytes int

	// Penalty is charged per quarantine of a link. Defaults to 1000.
	Penalty float64
	// Suppress is the penalty above which re-admission is suppressed.
	// Defaults to 2200: the first two quarantines re-admit freely, the
	// third pins the link down.
	Suppress float64
	// Reuse is the penalty below which suppression lifts. Defaults to
	// 1000.
	Reuse float64
	// HalfLife is the penalty's exponential decay half-life. Defaults
	// to 50ms — hundreds of training iterations at paper scale.
	HalfLife sim.Duration

	// CorroborateWindows is the cross-job fast path: when two different
	// jobs each accumulate this many consecutive deviating windows on
	// the same leaf–spine trunk within CorroborateHorizon of each
	// other, the fault is confirmed immediately — two independent
	// witnesses substitute for the full K-window streak. Defaults to 2;
	// negative disables corroboration. Never slower than ConfirmWindows
	// and inert with a single job.
	CorroborateWindows int
	// CorroborateHorizon bounds how far apart the two jobs' flags may
	// be and still corroborate. Defaults to 2ms.
	CorroborateHorizon sim.Duration
}

func (c *Config) setDefaults() {
	if c.ConfirmWindows == 0 {
		c.ConfirmWindows = 3
	}
	if c.CleanProbes == 0 {
		c.CleanProbes = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 100 * sim.Microsecond
	}
	if c.ProbePackets == 0 {
		c.ProbePackets = 128
	}
	if c.ProbeBytes == 0 {
		c.ProbeBytes = 256
	}
	if c.Penalty == 0 {
		c.Penalty = 1000
	}
	if c.Suppress == 0 {
		c.Suppress = 2200
	}
	if c.Reuse == 0 {
		c.Reuse = 1000
	}
	if c.HalfLife == 0 {
		c.HalfLife = 50 * sim.Millisecond
	}
	if c.CorroborateWindows == 0 {
		c.CorroborateWindows = 2
	}
	if c.CorroborateHorizon == 0 {
		c.CorroborateHorizon = 2 * sim.Millisecond
	}
}

// ActionKind classifies a timeline entry.
type ActionKind uint8

// The remediation actions, in the order a healthy loop emits them.
const (
	// ActionConfirm: K consecutive deviating windows on one port.
	ActionConfirm ActionKind = iota
	// ActionQuarantine: a confirmed link was admin-downed.
	ActionQuarantine
	// ActionReadmit: a quarantined link passed M clean probe rounds.
	ActionReadmit
	// ActionSuppress: a link earned re-admission but flap damping
	// held it down.
	ActionSuppress
	// ActionReplan: the resilience layer rebuilt the collective around
	// a quarantine-degraded leaf (workload-level; see Workload).
	ActionReplan
	// ActionRestore: a re-admission restored the original collective
	// plan (workload-level).
	ActionRestore
	// ActionReconcile: a confirmed deviation turned out to be
	// belief≠truth divergence; the control plane repaired its topology
	// view instead of quarantining a healthy link.
	ActionReconcile
)

// String names the action.
func (k ActionKind) String() string {
	switch k {
	case ActionConfirm:
		return "confirm"
	case ActionQuarantine:
		return "quarantine"
	case ActionReadmit:
		return "readmit"
	case ActionSuppress:
		return "suppress"
	case ActionReplan:
		return "replan"
	case ActionRestore:
		return "restore"
	case ActionReconcile:
		return "reconcile"
	}
	return "unknown"
}

// Workload reports whether the action is a workload-level repair
// (re-plan/restore) rather than a fabric action. Workload actions are
// recorded in traces like ground-truth fault records — as data, not as
// fingerprint material — because the offline replay re-derives fabric
// actions only (it has no workload to re-plan).
func (k ActionKind) Workload() bool { return k == ActionReplan || k == ActionRestore }

// Action is one remediation timeline entry.
type Action struct {
	At     sim.Time
	Kind   ActionKind
	Link   topology.LinkID
	Detail string
}

// String formats the action for operator logs.
func (a Action) String() string {
	return fmt.Sprintf("[%v] %s link %d: %s", a.At, a.Kind, a.Link, a.Detail)
}

// Stats counts remediation activity.
type Stats struct {
	// AlertsSeen counts every alert delivered to Observe.
	AlertsSeen uint64
	// DeficitAlerts counts leaf-level deficit alerts (the only kind
	// that drives quarantine).
	DeficitAlerts uint64
	// Confirmations counts K-window confirmations.
	Confirmations uint64
	// Quarantines counts links admin-downed (re-quarantines included).
	Quarantines uint64
	// ProbeRounds counts probe rounds launched.
	ProbeRounds uint64
	// CleanRounds counts loss-free probe rounds.
	CleanRounds uint64
	// Readmissions counts links returned to service.
	Readmissions uint64
	// SuppressedReadmits counts re-admissions blocked by damping.
	SuppressedReadmits uint64
	// Corroborations counts confirmations reached via the cross-job
	// fast path rather than a full K-window streak.
	Corroborations uint64
	// Reconciliations counts confirmed deviations resolved by
	// control-plane reconciliation (belief repair) instead of
	// quarantine.
	Reconciliations uint64
	// FailedCommits counts quarantine/re-admission ChangeSets the
	// control plane could not verify and commit; the remediator stays
	// armed and retries.
	FailedCommits uint64
}

// streakKey identifies one job's view of one leaf uplink: streaks are
// per job because each job has its own iteration clock and window
// cadence.
type streakKey struct {
	job     uint16
	leafOrd int
	uplink  int
}

// trunkKey identifies a leaf–spine trunk independent of job — the
// granularity at which jobs corroborate each other.
type trunkKey struct {
	leafOrd int
	uplink  int
}

type streak struct {
	count    int
	lastIter uint32
}

// quarLink is one quarantined link's probing state.
type quarLink struct {
	link        topology.LinkID
	nextProbeAt sim.Time
	inFlight    int // probe results still pending this round
	lost        int
	roundDone   bool
	cleanRounds int
	suppLogged  bool
}

// ControlPlane is the mutation surface the remediator drives:
// ChangeSet-verified admin-down / re-admit, OAM probing, divergence
// reconciliation, and the plane's own time-based machinery.
// *control.Plane implements it online; the trace replay substitutes a
// playback plane that answers probes from the recorded rounds and
// always commits.
type ControlPlane interface {
	Topology() *topology.Topology
	// Quarantine pushes admin-down through a verified ChangeSet and
	// reports whether it committed.
	Quarantine(now sim.Time, link topology.LinkID) bool
	// Readmit pushes admin-up through a verified ChangeSet and reports
	// whether it committed.
	Readmit(now sim.Time, link topology.LinkID) bool
	ProbeLink(link topology.LinkID, dir fabric.Direction, size int, onResult func(now sim.Time, delivered bool))
	// Reconcile reports whether the plane found (and repaired)
	// belief≠truth divergence — in which case the triggering deviation
	// is a control-plane fault, not a link fault.
	Reconcile(now sim.Time) bool
	// Tick drives the plane's audit and pending injections; the
	// remediator forwards its own window-close tick.
	Tick(now sim.Time)
}

// Remediator is the closed-loop control plane over one network. All
// methods must run on the engine goroutine (they do when driven from
// core.System's window-close path).
type Remediator struct {
	cfg        Config
	net        ControlPlane
	topo       *topology.Topology
	faults     *predict.FaultSet
	rebaseline func()

	// OnAction, when set, observes every timeline entry as it is
	// recorded. OnProbeRound observes every completed probe round
	// (trace capture taps both).
	OnAction     func(a Action)
	OnProbeRound func(now sim.Time, link topology.LinkID, sent, lost int)

	// OnQuarantine and OnReadmit, when set, observe fabric state
	// changes as they happen — the resilience layer's trigger to
	// re-plan the workload. OnQuarantine fires before the
	// post-confirmation rebaseline and OnReadmit before the
	// post-re-admission one, so a hook that swaps the predictors'
	// demand matrix is covered by the loop's own single rebaseline.
	OnQuarantine func(now sim.Time, link topology.LinkID)
	OnReadmit    func(now sim.Time, link topology.LinkID)

	streaks map[streakKey]*streak
	// flags records, per trunk, when each job last held a
	// CorroborateWindows-long streak there — the corroboration inbox.
	flags   map[trunkKey]map[uint16]sim.Time
	quar    []*quarLink // deterministic order: quarantine order
	quarIdx map[topology.LinkID]*quarLink
	dampers map[topology.LinkID]*damper

	stats Stats
	// Timeline records every remediation action in order.
	Timeline []Action
}

// New builds a remediator over a control plane. faults is the
// predictors' known-fault set (nil: quarantine only drives the FIB);
// rebaseline is invoked after every quarantine and re-admission so
// the load models track the new routing state (nil: no-op).
func New(net ControlPlane, faults *predict.FaultSet, rebaseline func(), cfg Config) *Remediator {
	cfg.setDefaults()
	if rebaseline == nil {
		rebaseline = func() {}
	}
	return &Remediator{
		cfg:        cfg,
		net:        net,
		topo:       net.Topology(),
		faults:     faults,
		rebaseline: rebaseline,
		streaks:    map[streakKey]*streak{},
		flags:      map[trunkKey]map[uint16]sim.Time{},
		quarIdx:    map[topology.LinkID]*quarLink{},
		dampers:    map[topology.LinkID]*damper{},
	}
}

// Stats returns a snapshot of remediation counters.
func (r *Remediator) Stats() Stats { return r.stats }

// Config returns the effective (defaulted) configuration.
func (r *Remediator) Config() Config { return r.cfg }

// record appends one timeline entry and notifies the OnAction tap.
func (r *Remediator) record(a Action) {
	r.Timeline = append(r.Timeline, a)
	if r.OnAction != nil {
		r.OnAction(a)
	}
}

// Quarantined returns the currently quarantined links in quarantine
// order.
func (r *Remediator) Quarantined() []topology.LinkID {
	out := make([]topology.LinkID, len(r.quar))
	for i, q := range r.quar {
		out[i] = q.link
	}
	return out
}

// Observe feeds one localized detection into the confirmation
// pipeline. Only leaf-level deficit alerts count: a surplus is
// retransmission spillover of a fault elsewhere, and ghost traffic
// (+Inf) has no localizable sender signature. Alerts whose blamed
// links are all already quarantined are dropped (the straddling window
// around a quarantine keeps alerting until the model re-baselines).
func (r *Remediator) Observe(a detect.Alert, v localize.Verdict) {
	r.stats.AlertsSeen++
	if a.Level != topology.Leaf || !(a.Deviation < 0) {
		return
	}
	r.stats.DeficitAlerts++

	links := make([]topology.LinkID, 0, len(v.Links))
	for _, l := range v.Links {
		if r.quarIdx[l] == nil {
			links = append(links, l)
		}
	}
	if len(v.Links) > 0 && len(links) == 0 {
		return // every suspect already handled
	}

	k := streakKey{job: a.Job, leafOrd: a.LeafOrdinal, uplink: a.Uplink}
	st := r.streaks[k]
	switch {
	case st != nil && a.Iter == st.lastIter:
		return // duplicate within one window
	case st == nil || a.Iter != st.lastIter+1:
		st = &streak{}
		r.streaks[k] = st
	}
	st.count++
	st.lastIter = a.Iter

	if st.count < r.cfg.ConfirmWindows || len(links) == 0 {
		if witness, ok := r.corroborate(k, st, a.At); ok {
			// Corroboration operates at trunk granularity: two
			// independent jobs deficient on the same leaf uplink IS the
			// localization, so when this window's verdict carries no
			// links (per-job sender signatures comb on a shared plane)
			// the deficient ingress port's own trunk link is blamed.
			if len(links) == 0 {
				if l, lok := r.uplinkLink(a); lok && r.quarIdx[l] == nil {
					links = append(links, l)
				}
			}
			if len(links) > 0 {
				r.confirm(a, st, links, fmt.Sprintf(
					"leaf %d uplink %d: job %d corroborated by job %d after %d windows (%.2f%%)",
					a.LeafOrdinal, a.Uplink, a.Job, witness, st.count, 100*a.Deviation))
				r.stats.Corroborations++
			}
		}
		return
	}
	r.confirm(a, st, links, fmt.Sprintf(
		"leaf %d uplink %d: %d consecutive deviating windows (%.2f%%)",
		a.LeafOrdinal, a.Uplink, st.count, 100*a.Deviation))
}

// confirm records one confirmation and quarantines the suspect links
// — unless the control plane's reconciliation finds the deviation is
// really a belief≠truth divergence, in which case the repaired view
// (plus a rebaseline against it) is the whole remediation and no link
// goes down. Reconcile is read-backs over live state: with no
// divergence injected it finds nothing and this path is inert.
func (r *Remediator) confirm(a detect.Alert, st *streak, links []topology.LinkID, detail string) {
	if r.net.Reconcile(a.At) {
		r.stats.Reconciliations++
		// Every in-flight streak was measured against the belief the
		// repair just rewrote — void them all, not just the trigger, or
		// sibling ports confirmed in the same window batch would sail
		// past the (now clean) reconcile check into quarantine.
		r.streaks = map[streakKey]*streak{}
		r.flags = map[trunkKey]map[uint16]sim.Time{}
		r.record(Action{At: a.At, Kind: ActionReconcile, Link: links[0],
			Detail: "belief/truth divergence repaired; quarantine withheld"})
		r.rebaseline()
		return
	}
	r.stats.Confirmations++
	r.record(Action{At: a.At, Kind: ActionConfirm, Link: links[0], Detail: detail})
	delete(r.streaks, streakKey{job: a.Job, leafOrd: a.LeafOrdinal, uplink: a.Uplink})
	delete(r.flags, trunkKey{leafOrd: a.LeafOrdinal, uplink: a.Uplink})
	for _, l := range links {
		r.quarantine(l, a.At)
	}
	r.rebaseline()
}

// corroborate implements the cross-job fast path: once this job's
// streak reaches CorroborateWindows it flags the trunk; if a different
// job flagged the same trunk within CorroborateHorizon, the two
// independent witnesses together confirm the fault ahead of the full
// K-window streak. Returns the (smallest-id, deterministic)
// corroborating job.
func (r *Remediator) corroborate(k streakKey, st *streak, at sim.Time) (uint16, bool) {
	if r.cfg.CorroborateWindows < 0 || st.count < r.cfg.CorroborateWindows {
		return 0, false
	}
	tk := trunkKey{leafOrd: k.leafOrd, uplink: k.uplink}
	jobs := r.flags[tk]
	if jobs == nil {
		jobs = map[uint16]sim.Time{}
		r.flags[tk] = jobs
	}
	jobs[k.job] = at
	witness, found := uint16(0), false
	for job, t := range jobs {
		if job == k.job || at-t > sim.Time(r.cfg.CorroborateHorizon) {
			continue
		}
		if !found || job < witness {
			witness, found = job, true
		}
	}
	return witness, found
}

// uplinkLink maps an alert's deviating leaf ingress port to the link
// attached there (the leaf–spine trunk member the port terminates).
func (r *Remediator) uplinkLink(a detect.Alert) (topology.LinkID, bool) {
	sw := r.topo.Switch(a.Leaf)
	p := a.Uplink + len(r.topo.HostsOf(a.Leaf))
	if p < 0 || p >= len(sw.Ports) {
		return 0, false
	}
	return sw.Ports[p].Link, true
}

// quarantine admin-downs one link through a verified ChangeSet and
// starts its probing clock. If the plane cannot commit the change the
// remediator records nothing: the deviation persists, the streak
// rebuilds, and the quarantine retries at the next confirmation.
func (r *Remediator) quarantine(link topology.LinkID, now sim.Time) {
	if !r.net.Quarantine(now, link) {
		r.stats.FailedCommits++
		return
	}
	if r.faults != nil {
		r.faults.Add(link)
	}
	d := r.dampers[link]
	if d == nil {
		d = &damper{}
		r.dampers[link] = d
	}
	d.bump(now, r.cfg.Penalty, r.cfg.Suppress, r.cfg.HalfLife)
	q := &quarLink{link: link, nextProbeAt: now + sim.Time(r.cfg.ProbeInterval)}
	r.quar = append(r.quar, q)
	r.quarIdx[link] = q
	r.stats.Quarantines++
	r.record(Action{
		At: now, Kind: ActionQuarantine, Link: link,
		Detail: fmt.Sprintf("admin-down, penalty %.0f", d.penalty),
	})
	if r.OnQuarantine != nil {
		r.OnQuarantine(now, link)
	}
}

// RecordWorkload appends a workload-level action (re-plan/restore) to
// the timeline, so fabric and workload repairs interleave in one
// operator log and one trace stream.
func (r *Remediator) RecordWorkload(a Action) {
	if !a.Kind.Workload() {
		panic("remediate: RecordWorkload is for workload-level actions only")
	}
	r.record(a)
}

// Tick advances the probing and re-admission state machine. core calls
// it at every window close; because probes are finite one-shot events,
// remediation never outlives the training traffic that drives it.
func (r *Remediator) Tick(now sim.Time) {
	// The control plane's own time-based machinery (pending divergence
	// injections, the belief-vs-truth audit) rides the same
	// window-close clock; with nothing injected this is two compares.
	r.net.Tick(now)
	changed := false
	kept := r.quar[:0]
	for _, q := range r.quar {
		if q.roundDone {
			q.roundDone = false
			if q.lost == 0 {
				q.cleanRounds++
				r.stats.CleanRounds++
			} else {
				q.cleanRounds = 0
				q.suppLogged = false
			}
		}
		if q.cleanRounds >= r.cfg.CleanProbes {
			d := r.dampers[q.link]
			if d.reusable(now, r.cfg.Reuse, r.cfg.HalfLife) {
				// Readmit through a verified ChangeSet; if the push fails
				// to commit, the link stays quarantined with its clean
				// streak intact and the re-admission retries next tick.
				if r.net.Readmit(now, q.link) {
					if r.faults != nil {
						r.faults.Remove(q.link)
					}
					delete(r.quarIdx, q.link)
					r.stats.Readmissions++
					r.record(Action{
						At: now, Kind: ActionReadmit, Link: q.link,
						Detail: fmt.Sprintf("%d clean probe rounds", q.cleanRounds),
					})
					if r.OnReadmit != nil {
						r.OnReadmit(now, q.link)
					}
					changed = true
					continue
				}
				r.stats.FailedCommits++
			} else if !q.suppLogged {
				q.suppLogged = true
				r.stats.SuppressedReadmits++
				r.record(Action{
					At: now, Kind: ActionSuppress, Link: q.link,
					Detail: fmt.Sprintf("damped, penalty %.0f", d.penalty),
				})
			}
		}
		if q.inFlight == 0 && now >= q.nextProbeAt {
			r.startRound(q, now)
		}
		kept = append(kept, q)
	}
	r.quar = kept
	if changed {
		r.rebaseline()
	}
}

// startRound launches one bidirectional probe round over a quarantined
// link. Probes are OAM traffic: they bypass the forwarding plane,
// traverse admin-down links, and never enter telemetry, so they cannot
// disturb the temporal symmetry the detector measures.
func (r *Remediator) startRound(q *quarLink, now sim.Time) {
	q.inFlight = 2 * r.cfg.ProbePackets
	q.lost = 0
	q.nextProbeAt = now + sim.Time(r.cfg.ProbeInterval)
	r.stats.ProbeRounds++
	for i := 0; i < r.cfg.ProbePackets; i++ {
		for _, dir := range []fabric.Direction{fabric.DirAtoB, fabric.DirBtoA} {
			r.net.ProbeLink(q.link, dir, r.cfg.ProbeBytes, func(now sim.Time, delivered bool) {
				q.inFlight--
				if !delivered {
					q.lost++
				}
				if q.inFlight == 0 {
					q.roundDone = true
					if r.OnProbeRound != nil {
						r.OnProbeRound(now, q.link, 2*r.cfg.ProbePackets, q.lost)
					}
				}
			})
		}
	}
}
