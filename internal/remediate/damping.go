package remediate

import (
	"math"

	"flowpulse/internal/sim"
)

// damper is per-link flap damping in the style of BGP route flap
// damping (RFC 2439): every quarantine adds a fixed penalty, the
// penalty decays exponentially with a configured half-life, and once
// it crosses the suppress threshold the link may not be re-admitted
// until the penalty has decayed below the reuse threshold. A link that
// fails once pays one penalty and re-admits freely; a link that flaps
// accumulates penalty faster than it decays and gets pinned out of the
// fabric, bounding FIB churn.
type damper struct {
	penalty    float64
	at         sim.Time
	suppressed bool
}

// decayed brings the penalty forward to now and returns it.
func (d *damper) decayed(now sim.Time, halfLife sim.Duration) float64 {
	if now > d.at && d.penalty > 0 {
		d.penalty *= math.Pow(0.5, float64(now-d.at)/float64(halfLife))
	}
	if now > d.at {
		d.at = now
	}
	return d.penalty
}

// bump charges one quarantine's penalty and updates suppression.
func (d *damper) bump(now sim.Time, penalty, suppress float64, halfLife sim.Duration) {
	d.decayed(now, halfLife)
	d.penalty += penalty
	if d.penalty >= suppress {
		d.suppressed = true
	}
}

// reusable reports whether re-admission is currently permitted,
// clearing suppression once the penalty has decayed below reuse.
func (d *damper) reusable(now sim.Time, reuse float64, halfLife sim.Duration) bool {
	p := d.decayed(now, halfLife)
	if d.suppressed && p >= reuse {
		return false
	}
	d.suppressed = false
	return true
}
