package remediate_test

import (
	"reflect"
	"testing"

	"flowpulse/internal/core"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
)

// runRemediated builds a scenario, attaches FlowPulse with the
// remediation loop, runs training, and returns the system plus the
// per-iteration completion times.
func runRemediated(t *testing.T, sc core.Scenario, rcfg *remediate.Config,
	setup func(rt *core.Runtime), onIter func(rt *core.Runtime, now sim.Time, iter uint32)) (*core.Runtime, *core.System, map[uint32]sim.Time) {
	t.Helper()
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Attach(core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Job: int(sc.Job), Remediate: rcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(rt)
	}
	iterEnd := map[uint32]sim.Time{}
	rt.StartTraining(func(now sim.Time, iter uint32) {
		iterEnd[iter] = now
		if onIter != nil {
			onIter(rt, now, iter)
		}
	}, nil)
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())
	return rt, sys, iterEnd
}

// TestPersistentFaultQuarantinedE2E is the acceptance scenario: a
// Bernoulli 1.5% silent fault on the paper's default 32×16 fat tree is
// confirmed after K consecutive deviating windows, quarantined,
// re-baselined, and the system is alert-free afterwards. The lossy
// link never earns re-admission: its probe rounds keep losing packets.
func TestPersistentFaultQuarantinedE2E(t *testing.T) {
	const onset = 3 // fault injected after iteration 2 completes
	sc := core.Scenario{BytesPerRank: 8 << 20, Iterations: 10, Seed: 42}
	ref := core.LeafSpineLink{LeafOrd: 3, SpineOrd: 1}
	rt, sys, iterEnd := runRemediated(t, sc, &remediate.Config{}, nil,
		func(rt *core.Runtime, _ sim.Time, iter uint32) {
			if iter == onset-1 {
				rt.InjectSilentDrop(ref, 0.015)
			}
		})
	link := rt.Link(ref)
	r := sys.Remediator()
	st := r.Stats()

	if st.Confirmations != 1 || st.Quarantines != 1 {
		t.Fatalf("remediation stats: %+v\ntimeline: %v", st, r.Timeline)
	}
	if q := r.Quarantined(); len(q) != 1 || q[0] != link {
		t.Fatalf("quarantined the wrong link: %v, want %d", q, link)
	}
	if rt.Net.LinkAdminUp(link) || !sys.KnownFaults().Has(link) {
		t.Fatal("quarantine did not take")
	}

	// Confirmed and quarantined within K+2 iterations of onset.
	var qAt sim.Time
	for _, a := range r.Timeline {
		if a.Kind == remediate.ActionQuarantine {
			qAt = a.At
		}
	}
	if deadline := iterEnd[onset+3+2-1]; qAt == 0 || qAt > deadline {
		t.Fatalf("quarantine at %v, deadline %v (K+2 iterations after onset)", qAt, deadline)
	}

	// Re-baselined: after one straddling iteration, no alerts at all.
	for _, e := range sys.Events {
		if e.Alert.Iter >= 7 {
			t.Fatalf("alert after quarantine settled: %v", e.Alert)
		}
	}

	// The 1.5% lossy link keeps failing probe rounds: no re-admission.
	if st.Readmissions != 0 {
		t.Fatalf("lossy link re-admitted: %+v", st)
	}
	if st.ProbeRounds == 0 {
		t.Fatal("no probe rounds launched")
	}
	// One quarantine, no re-admission: exactly one FIB reconvergence.
	if got := rt.Net.FIBRecomputes(); got != 1 {
		t.Fatalf("FIB recomputes = %d, want 1", got)
	}
	// Training itself completed: 32 leaves × 10 iterations of windows.
	if sys.Windows != 32*10 {
		t.Fatalf("windows = %d, want 320", sys.Windows)
	}
}

// TestFlappingLinkDampedE2E drives a periodically degraded link
// through quarantine → probe-clean → re-admission cycles and checks
// that flap damping bounds the FIB churn: the first cycle re-admits
// freely, then suppression pins the link down for good. The flap is
// lossy rather than dead — a dead link stalls the collective's barrier
// so each down phase collapses into one stretched iteration, which is
// exactly the evasion the consecutive-window rule must not reward.
func TestFlappingLinkDampedE2E(t *testing.T) {
	base := core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Seed: 7}

	// Calibrate the iteration duration on a clean 2-iteration run.
	cal := base
	cal.Iterations = 2
	_, _, calEnd := runRemediated(t, cal, nil, nil, nil)
	iterDur := sim.Duration(calEnd[2] - calEnd[1])
	if iterDur <= 0 {
		t.Fatalf("calibration failed: %v", calEnd)
	}

	sc := base
	sc.Iterations = 30
	ref := core.LeafSpineLink{LeafOrd: 3, SpineOrd: 1}
	// Suppress at 1500 so the second quarantine (penalty ≈ 2000) pins
	// the link; the run then only needs two flap cycles to prove
	// damping instead of the default three.
	rt, sys, _ := runRemediated(t, sc, &remediate.Config{Suppress: 1500}, func(rt *core.Runtime) {
		// Degraded (30% loss) for 3 iterations out of every 6,
		// starting after iteration 2.
		rt.InjectLossyFlap(ref, 6*iterDur, 3*iterDur, 2*iterDur, 0.3)
	}, nil)
	link := rt.Link(ref)
	r := sys.Remediator()
	st := r.Stats()

	if st.Quarantines < 2 {
		t.Fatalf("flap not repeatedly quarantined: %+v\ntimeline: %v", st, r.Timeline)
	}
	if st.SuppressedReadmits == 0 {
		t.Fatalf("damping never suppressed a re-admission: %+v\ntimeline: %v", st, r.Timeline)
	}
	if st.Readmissions >= st.Quarantines {
		t.Fatalf("re-admissions not behind quarantines: %+v", st)
	}
	// The link ends pinned down despite passing probe rounds while up.
	if rt.Net.LinkAdminUp(link) || !sys.KnownFaults().Has(link) {
		t.Fatal("flapping link not suppressed at end of run")
	}
	// Bounded churn: every FIB recompute is one quarantine or one
	// re-admission; damping caps the cycle count even though the flap
	// keeps going to the end of the run.
	churn := st.Quarantines + st.Readmissions
	if got := rt.Net.FIBRecomputes(); got != churn {
		t.Fatalf("FIB recomputes = %d, want quarantines+readmissions = %d", got, churn)
	}
	if churn > 7 {
		t.Fatalf("churn unbounded: %d FIB events\ntimeline: %v", churn, r.Timeline)
	}
}

// TestRemediationDeterministic runs the same faulty scenario twice and
// requires byte-identical remediation timelines and stats.
func TestRemediationDeterministic(t *testing.T) {
	run := func() ([]remediate.Action, remediate.Stats) {
		sc := core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Iterations: 8, Seed: 11}
		ref := core.LeafSpineLink{LeafOrd: 5, SpineOrd: 2}
		_, sys, _ := runRemediated(t, sc, &remediate.Config{}, nil,
			func(rt *core.Runtime, _ sim.Time, iter uint32) {
				if iter == 2 {
					rt.InjectSilentDrop(ref, 0.05)
				}
			})
		return sys.Remediator().Timeline, sys.Remediator().Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("timelines diverge:\n%v\n%v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	if s1.Quarantines != 1 {
		t.Fatalf("5%% fault not quarantined: %+v\n%v", s1, t1)
	}
}
