package remediate

import (
	"strings"
	"testing"

	"flowpulse/internal/control"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/localize"
	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// testPlane wraps a fabric in a verified control plane — the production
// mutation path the remediator drives.
func testPlane(net *fabric.Network) *control.Plane {
	return control.New(control.Config{Verify: true}, net)
}

func testNet(t *testing.T) (*topology.Topology, *fabric.Network, *sim.Engine) {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	return topo, fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 1}), eng
}

// fastCfg keeps probe rounds small for unit tests.
func fastCfg() Config {
	return Config{ProbePackets: 8, ProbeInterval: 10 * sim.Microsecond}
}

func deficit(leafOrd, uplink int, iter uint32, at sim.Time) detect.Alert {
	return detect.Alert{LeafOrdinal: leafOrd, Uplink: uplink, Iter: iter, Deviation: -0.05,
		Predicted: 1e6, Observed: 0.95e6, At: at}
}

func blame(links ...topology.LinkID) localize.Verdict {
	return localize.Verdict{Kind: localize.LocalLink, Links: links}
}

func TestConfirmAfterKWindows(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[0])[0]
	fs := predict.NewFaultSet()
	rebaselines := 0
	r := New(testPlane(net), fs, func() { rebaselines++ }, fastCfg())

	for iter := uint32(1); iter <= 2; iter++ {
		r.Observe(deficit(0, 1, iter, sim.Time(iter)*1000), blame(link))
	}
	if !net.LinkAdminUp(link) || r.Stats().Quarantines != 0 {
		t.Fatal("quarantined before K windows")
	}
	r.Observe(deficit(0, 1, 3, 3000), blame(link))
	st := r.Stats()
	if net.LinkAdminUp(link) || st.Confirmations != 1 || st.Quarantines != 1 {
		t.Fatalf("no quarantine at K windows: admin=%v stats=%+v", net.LinkAdminUp(link), st)
	}
	if !fs.Has(link) {
		t.Fatal("known-fault set not updated")
	}
	if rebaselines != 1 {
		t.Fatalf("rebaselines = %d, want 1", rebaselines)
	}
	if q := r.Quarantined(); len(q) != 1 || q[0] != link {
		t.Fatalf("Quarantined() = %v", q)
	}
	if len(r.Timeline) != 2 || r.Timeline[0].Kind != ActionConfirm || r.Timeline[1].Kind != ActionQuarantine {
		t.Fatalf("timeline: %v", r.Timeline)
	}
	if s := r.Timeline[0].String(); !strings.Contains(s, "confirm") {
		t.Fatalf("timeline formatting: %q", s)
	}
}

func TestStreakResetOnGap(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[0], topo.Leaves()[1])[0]
	r := New(testPlane(net), nil, nil, fastCfg())

	// Iterations 1, 2, 4: the gap resets the streak.
	r.Observe(deficit(1, 0, 1, 100), blame(link))
	r.Observe(deficit(1, 0, 2, 200), blame(link))
	r.Observe(deficit(1, 0, 4, 400), blame(link))
	if r.Stats().Quarantines != 0 {
		t.Fatal("non-consecutive windows confirmed")
	}
	// 4, 5, 6 is a fresh streak.
	r.Observe(deficit(1, 0, 5, 500), blame(link))
	r.Observe(deficit(1, 0, 6, 600), blame(link))
	if r.Stats().Quarantines != 1 {
		t.Fatal("fresh streak did not confirm")
	}
}

func TestSurplusAndSpineAlertsIgnored(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[0], topo.Leaves()[0])[0]
	r := New(testPlane(net), nil, nil, fastCfg())

	for iter := uint32(1); iter <= 5; iter++ {
		a := deficit(0, 0, iter, sim.Time(iter)*100)
		a.Deviation = 0.08 // surplus: retransmit spillover
		r.Observe(a, blame(link))
		b := deficit(0, 0, iter, sim.Time(iter)*100)
		b.Level = topology.Spine // §7 spine monitor: not actionable here
		r.Observe(b, blame(link))
	}
	if st := r.Stats(); st.Quarantines != 0 || st.DeficitAlerts != 0 {
		t.Fatalf("non-actionable alerts drove remediation: %+v", st)
	}
}

func TestDuplicateIterationCountsOnce(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[2], topo.Leaves()[0])[0]
	r := New(testPlane(net), nil, nil, fastCfg())
	// Three alerts within the same iteration are one deviating window.
	for i := 0; i < 3; i++ {
		r.Observe(deficit(0, 2, 7, 700), blame(link))
	}
	if r.Stats().Quarantines != 0 {
		t.Fatal("one window confirmed a fault")
	}
}

func TestIndeterminateHoldsUntilLocalized(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[3], topo.Leaves()[2])[0]
	r := New(testPlane(net), nil, nil, fastCfg())

	for iter := uint32(1); iter <= 4; iter++ {
		r.Observe(deficit(2, 3, iter, sim.Time(iter)*100), localize.Verdict{Kind: localize.Indeterminate})
	}
	if r.Stats().Quarantines != 0 {
		t.Fatal("quarantined without a localized link")
	}
	// The streak is held; the first localized alert confirms.
	r.Observe(deficit(2, 3, 5, 500), blame(link))
	if r.Stats().Quarantines != 1 || net.LinkAdminUp(link) {
		t.Fatal("held confirmation did not fire once localized")
	}
}

func TestAlreadyQuarantinedSuspectDropped(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[3])[0]
	r := New(testPlane(net), nil, nil, fastCfg())
	for iter := uint32(1); iter <= 3; iter++ {
		r.Observe(deficit(3, 1, iter, sim.Time(iter)*100), blame(link))
	}
	if r.Stats().Quarantines != 1 {
		t.Fatal("setup quarantine missing")
	}
	// The straddling window keeps alerting; the suspect is handled.
	for iter := uint32(4); iter <= 8; iter++ {
		r.Observe(deficit(3, 1, iter, sim.Time(iter)*100), blame(link))
	}
	if st := r.Stats(); st.Quarantines != 1 || st.Confirmations != 1 {
		t.Fatalf("re-quarantined a handled link: %+v", st)
	}
}

// drive runs the engine dry, then ticks the remediator — one
// "window close" worth of remediation progress.
func drive(eng *sim.Engine, r *Remediator, now *sim.Time) {
	eng.Run()
	if eng.Now() > *now {
		*now = eng.Now()
	}
	*now += sim.Time(20 * sim.Microsecond)
	r.Tick(*now)
}

func TestProbedReadmission(t *testing.T) {
	topo, net, eng := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[0], topo.Leaves()[0])[0]
	fs := predict.NewFaultSet()
	rebaselines := 0
	r := New(testPlane(net), fs, func() { rebaselines++ }, fastCfg())

	for iter := uint32(1); iter <= 3; iter++ {
		r.Observe(deficit(0, 0, iter, sim.Time(iter)), blame(link))
	}
	if net.LinkAdminUp(link) {
		t.Fatal("setup quarantine missing")
	}

	// The link is healthy (no fault model): M=3 clean rounds re-admit.
	now := sim.Time(0)
	for i := 0; i < 8 && len(r.Quarantined()) > 0; i++ {
		drive(eng, r, &now)
	}
	st := r.Stats()
	if !net.LinkAdminUp(link) || st.Readmissions != 1 {
		t.Fatalf("healthy link not re-admitted: %+v", st)
	}
	if fs.Has(link) {
		t.Fatal("known-fault set still lists re-admitted link")
	}
	if st.ProbeRounds < 3 || st.CleanRounds < 3 {
		t.Fatalf("re-admitted with too few probe rounds: %+v", st)
	}
	if rebaselines != 2 {
		t.Fatalf("rebaselines = %d, want quarantine + readmit", rebaselines)
	}
	last := r.Timeline[len(r.Timeline)-1]
	if last.Kind != ActionReadmit {
		t.Fatalf("timeline tail: %v", last)
	}
}

func TestLossyLinkStaysQuarantined(t *testing.T) {
	topo, net, eng := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[0], topo.Leaves()[0])[0]
	net.InjectFault(link, fabric.DirBoth, fault.BlackHole{})
	r := New(testPlane(net), nil, nil, fastCfg())

	for iter := uint32(1); iter <= 3; iter++ {
		r.Observe(deficit(0, 0, iter, sim.Time(iter)), blame(link))
	}
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		drive(eng, r, &now)
	}
	st := r.Stats()
	if net.LinkAdminUp(link) || st.Readmissions != 0 || st.CleanRounds != 0 {
		t.Fatalf("blackholed link re-admitted: %+v", st)
	}
	if st.ProbeRounds < 5 {
		t.Fatalf("probing stopped: %+v", st)
	}
}

func TestFlapDampingSuppressesThirdReadmit(t *testing.T) {
	topo, net, eng := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[0], topo.Leaves()[0])[0]
	cfg := fastCfg()
	cfg.HalfLife = 2 * sim.Millisecond
	r := New(testPlane(net), nil, nil, cfg)

	now := sim.Time(0)
	iter := uint32(0)
	cycle := func() {
		for k := 0; k < 3; k++ {
			iter++
			r.Observe(deficit(0, 0, iter, now), blame(link))
		}
		for i := 0; i < 8 && len(r.Quarantined()) > 0; i++ {
			drive(eng, r, &now)
		}
		iter += 2 // windows pass between flap cycles
	}

	cycle()
	cycle()
	if st := r.Stats(); st.Quarantines != 2 || st.Readmissions != 2 || st.SuppressedReadmits != 0 {
		t.Fatalf("first two cycles not free: %+v", st)
	}

	// Third quarantine crosses the suppress threshold: clean probes no
	// longer re-admit.
	for k := 0; k < 3; k++ {
		iter++
		r.Observe(deficit(0, 0, iter, now), blame(link))
	}
	for i := 0; i < 8; i++ {
		drive(eng, r, &now)
	}
	st := r.Stats()
	if st.Quarantines != 3 || st.Readmissions != 2 {
		t.Fatalf("third cycle re-admitted: %+v", st)
	}
	if st.SuppressedReadmits == 0 || net.LinkAdminUp(link) {
		t.Fatal("suppression not recorded")
	}

	// Once the penalty decays below reuse, the link returns.
	now += sim.Time(10 * sim.Millisecond) // five half-lives: 3000 → ~94
	for i := 0; i < 8 && len(r.Quarantined()) > 0; i++ {
		drive(eng, r, &now)
	}
	if st := r.Stats(); st.Readmissions != 3 || !net.LinkAdminUp(link) {
		t.Fatalf("decayed link not re-admitted: %+v", st)
	}
}

func TestDamperMath(t *testing.T) {
	d := &damper{}
	half := 10 * sim.Microsecond
	d.bump(0, 1000, 2200, half)
	if d.suppressed {
		t.Fatal("suppressed below threshold")
	}
	if !d.reusable(0, 1000, half) {
		t.Fatal("unsuppressed damper not reusable")
	}
	d.bump(0, 1000, 2200, half) // 2000: still free
	d.bump(0, 1000, 2200, half) // 3000: suppressed
	if !d.suppressed {
		t.Fatal("not suppressed above threshold")
	}
	if d.reusable(0, 1000, half) {
		t.Fatal("suppressed damper reusable immediately")
	}
	// After two half-lives the penalty is 750 < reuse.
	if !d.reusable(sim.Time(2*half), 1000, half) {
		t.Fatalf("damper not reusable after decay: penalty %v", d.penalty)
	}
	if d.suppressed {
		t.Fatal("suppression not cleared after decay")
	}
}

// deficitJob is deficit with an explicit owning job id.
func deficitJob(job uint16, leafOrd, uplink int, iter uint32, at sim.Time) detect.Alert {
	a := deficit(leafOrd, uplink, iter, at)
	a.Job = job
	return a
}

func TestCrossJobCorroborationConfirmsEarly(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[0])[0]
	r := New(testPlane(net), nil, nil, fastCfg())

	// Each job alone is below K=3; two 2-window streaks on the same
	// trunk within the horizon corroborate.
	r.Observe(deficitJob(1, 0, 1, 10, 100), blame(link))
	r.Observe(deficitJob(2, 0, 1, 20, 150), blame(link))
	r.Observe(deficitJob(1, 0, 1, 11, 200), blame(link))
	if r.Stats().Quarantines != 0 {
		t.Fatal("one flagged job quarantined alone")
	}
	r.Observe(deficitJob(2, 0, 1, 21, 250), blame(link))
	st := r.Stats()
	if st.Quarantines != 1 || st.Confirmations != 1 || st.Corroborations != 1 {
		t.Fatalf("corroboration did not confirm: %+v", st)
	}
	if net.LinkAdminUp(link) {
		t.Fatal("corroborated link still up")
	}
	if d := r.Timeline[0].Detail; !strings.Contains(d, "corroborated by job 1") {
		t.Fatalf("confirm detail: %q", d)
	}
}

func TestCorroborationDisabled(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[0])[0]
	cfg := fastCfg()
	cfg.CorroborateWindows = -1
	r := New(testPlane(net), nil, nil, cfg)

	for iter := uint32(1); iter <= 2; iter++ {
		r.Observe(deficitJob(1, 0, 1, iter, sim.Time(iter)*100), blame(link))
		r.Observe(deficitJob(2, 0, 1, iter+10, sim.Time(iter)*100+50), blame(link))
	}
	if st := r.Stats(); st.Quarantines != 0 || st.Corroborations != 0 {
		t.Fatalf("disabled corroboration fired: %+v", st)
	}
	// The full K-window streak still confirms, through the normal path.
	r.Observe(deficitJob(1, 0, 1, 3, 300), blame(link))
	st := r.Stats()
	if st.Quarantines != 1 || st.Corroborations != 0 {
		t.Fatalf("normal confirm broken with corroboration off: %+v", st)
	}
	if d := r.Timeline[0].Detail; strings.Contains(d, "corroborated") {
		t.Fatalf("confirm detail: %q", d)
	}
}

func TestCorroborationHorizonExpires(t *testing.T) {
	topo, net, _ := testNet(t)
	link := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[0])[0]
	r := New(testPlane(net), nil, nil, fastCfg()) // horizon defaults to 2ms

	r.Observe(deficitJob(1, 0, 1, 10, 100), blame(link))
	r.Observe(deficitJob(1, 0, 1, 11, 200), blame(link)) // job 1 flags at t=200
	// Job 2's flag lands more than 2ms later: stale, no corroboration.
	late := sim.Time(200 + 3*sim.Millisecond)
	r.Observe(deficitJob(2, 0, 1, 20, late), blame(link))
	r.Observe(deficitJob(2, 0, 1, 21, late+100), blame(link))
	if st := r.Stats(); st.Quarantines != 0 || st.Corroborations != 0 {
		t.Fatalf("stale flag corroborated: %+v", st)
	}
}

func TestCorroborationDistinctTrunksIndependent(t *testing.T) {
	topo, net, _ := testNet(t)
	linkA := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[0])[0]
	linkB := topo.TrunkLinks(topo.Spines()[2], topo.Leaves()[0])[0]
	r := New(testPlane(net), nil, nil, fastCfg())

	// Jobs flag different uplinks of the same leaf: no corroboration.
	r.Observe(deficitJob(1, 0, 1, 10, 100), blame(linkA))
	r.Observe(deficitJob(1, 0, 1, 11, 200), blame(linkA))
	r.Observe(deficitJob(2, 0, 2, 20, 250), blame(linkB))
	r.Observe(deficitJob(2, 0, 2, 21, 350), blame(linkB))
	if st := r.Stats(); st.Quarantines != 0 || st.Corroborations != 0 {
		t.Fatalf("different trunks corroborated each other: %+v", st)
	}
}

func TestActionKindStrings(t *testing.T) {
	for _, k := range []ActionKind{ActionConfirm, ActionQuarantine, ActionReadmit, ActionSuppress} {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("ActionKind %d has no name", k)
		}
	}
}
