package metrics

// GoodputTimeline collects per-iteration training throughput samples —
// the metric family that measures what a fault costs the *workload*
// (iterations/sec, stall time, time-to-recovery), complementing the
// detector-centric FPR/FNR family above. Time units are whatever the
// caller samples in (the simulator uses picoseconds); rates come back
// in iterations per time unit.
type GoodputTimeline struct {
	points   []IterPoint
	faultAt  int64
	hasFault bool
}

// IterPoint is one completed training iteration.
type IterPoint struct {
	// Iter is the iteration number.
	Iter uint32
	// End is the completion time.
	End int64
	// Dur is the iteration's duration (completion minus start).
	Dur int64
}

// Add records one completed iteration.
func (t *GoodputTimeline) Add(iter uint32, end, dur int64) {
	t.points = append(t.points, IterPoint{Iter: iter, End: end, Dur: dur})
}

// MarkFault records the fault injection time. Iterations completing at
// or before the mark form the pre-fault baseline; everything after is
// scored against it. Only the first mark is kept.
func (t *GoodputTimeline) MarkFault(at int64) {
	if !t.hasFault {
		t.faultAt, t.hasFault = at, true
	}
}

// Points returns the recorded samples in completion order.
func (t *GoodputTimeline) Points() []IterPoint { return t.points }

// GoodputReport reduces a timeline to the before/during/after numbers.
type GoodputReport struct {
	// Iterations is the number of samples.
	Iterations int
	// Faulted reports whether a fault was marked.
	Faulted bool
	// Baseline is the pre-fault rate (iterations per time unit). With
	// no fault marked it covers the whole run.
	Baseline float64
	// During is the rate between the fault and recovery (or the end of
	// the run when recovery never happens). Zero without a fault.
	During float64
	// Post is the rate from the recovery iteration on. Zero when the
	// run never recovered.
	Post float64
	// Stall is total excess time over the baseline iteration duration,
	// summed across post-fault iterations.
	Stall int64
	// Recovered reports whether any post-fault iteration reached the
	// target fraction of the baseline rate. Vacuously true without a
	// fault; always false when the fault precedes the first completed
	// iteration (no baseline to recover to).
	Recovered bool
	// RecoveryTime is the recovery iteration's completion time minus
	// the fault time (0 unless Faulted && Recovered: an unrecovered run
	// reports Recovered=false, never a zero recovery time).
	RecoveryTime int64
	// RecoveryIter is the first iteration back at target rate.
	RecoveryIter uint32
}

// sustainIters is how many consecutive at-target iterations recovery
// requires (see Report).
const sustainIters = 3

// rate converts a sample subset to iterations per time unit.
func rate(points []IterPoint) float64 {
	var sum int64
	for _, p := range points {
		sum += p.Dur
	}
	if sum <= 0 {
		return 0
	}
	return float64(len(points)) / float64(sum)
}

// Report scores the timeline: recovery means an iteration whose rate
// is back to at least target (e.g. 0.9) times the pre-fault baseline,
// i.e. Dur ≤ baselineDur/target.
func (t *GoodputTimeline) Report(target float64) GoodputReport {
	r := GoodputReport{Iterations: len(t.points), Faulted: t.hasFault}
	if !t.hasFault {
		r.Baseline = rate(t.points)
		r.Recovered = true
		return r
	}
	var pre, post []IterPoint
	for _, p := range t.points {
		if p.End <= t.faultAt {
			pre = append(pre, p)
		} else {
			post = append(post, p)
		}
	}
	r.Baseline = rate(pre)
	if len(pre) == 0 || r.Baseline == 0 {
		// Fault before the first completed iteration: no baseline, so
		// "recovery" is undefined — report honestly as unrecovered.
		r.During = rate(post)
		return r
	}
	baseDur := 1 / r.Baseline // mean pre-fault iteration duration
	// Recovery must be sustained: one lucky iteration during a degraded
	// phase (a fast retransmit run, a window straddling a repair) must
	// not count, so the recovery point is the first iteration opening a
	// run of sustainIters consecutive at-target iterations (or reaching
	// the end of the run still at target).
	recoverAt := -1
	atTarget := func(p IterPoint) bool {
		return p.Dur > 0 && float64(p.Dur) <= baseDur/target
	}
	for i := range post {
		ok := true
		for j := i; j < len(post) && j < i+sustainIters; j++ {
			if !atTarget(post[j]) {
				ok = false
				break
			}
		}
		if ok {
			recoverAt = i
			break
		}
	}
	for _, p := range post {
		if excess := p.Dur - int64(baseDur); excess > 0 {
			r.Stall += excess
		}
	}
	if recoverAt < 0 {
		r.During = rate(post)
		return r
	}
	r.Recovered = true
	r.During = rate(post[:recoverAt])
	r.Post = rate(post[recoverAt:])
	r.RecoveryTime = post[recoverAt].End - t.faultAt
	r.RecoveryIter = post[recoverAt].Iter
	return r
}
