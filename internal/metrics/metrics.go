// Package metrics computes the evaluation statistics of §6: ROC
// curves over detection thresholds (Fig 5a), false-positive and
// false-negative rates (Fig 5b/5c), and summary statistics used across
// the experiment harness.
package metrics

import (
	"math"
	"sort"
)

// Sample is one classifier observation: the detector's score for one
// iteration (max absolute port deviation) and whether a fault was
// actually present.
type Sample struct {
	Score    float64
	Positive bool
}

// ROCPoint is the classifier's operating point at one threshold.
type ROCPoint struct {
	Threshold float64
	// TPR is the true-positive rate (1 − FNR).
	TPR float64
	// FPR is the false-positive rate.
	FPR float64
	// FNR is the false-negative rate.
	FNR float64
}

// RatesAt evaluates the classifier "score > threshold ⇒ fault" on the
// samples. Faultless sample sets return FPR; faulty ones FNR; both are
// 0 when the corresponding class is absent.
func RatesAt(samples []Sample, threshold float64) (fpr, fnr float64) {
	var pos, neg, fp, fn int
	for _, s := range samples {
		if s.Positive {
			pos++
			if !(s.Score > threshold) {
				fn++
			}
		} else {
			neg++
			if s.Score > threshold {
				fp++
			}
		}
	}
	if neg > 0 {
		fpr = float64(fp) / float64(neg)
	}
	if pos > 0 {
		fnr = float64(fn) / float64(pos)
	}
	return fpr, fnr
}

// ROC evaluates the classifier at each threshold, returning points in
// threshold order.
func ROC(samples []Sample, thresholds []float64) []ROCPoint {
	points := make([]ROCPoint, 0, len(thresholds))
	for _, th := range thresholds {
		fpr, fnr := RatesAt(samples, th)
		points = append(points, ROCPoint{Threshold: th, FPR: fpr, FNR: fnr, TPR: 1 - fnr})
	}
	return points
}

// AUC integrates the ROC curve (trapezoidal over FPR-sorted points).
// A perfect classifier scores 1, a random one 0.5.
func AUC(points []ROCPoint) float64 {
	pts := append([]ROCPoint(nil), points...)
	// Anchor the curve at (0,0) and (1,1).
	pts = append(pts, ROCPoint{FPR: 0, TPR: 0}, ROCPoint{FPR: 1, TPR: 1})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].TPR < pts[j].TPR
	})
	var auc float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		auc += dx * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return auc
}

// PerfectThresholds returns the sub-range of thresholds at which the
// classifier is perfect (FPR = FNR = 0), or nil. Fig 5a's claim is
// that 1% lies in this range for drop rates ≥ 1.5%.
func PerfectThresholds(samples []Sample, thresholds []float64) []float64 {
	var out []float64
	for _, th := range thresholds {
		fpr, fnr := RatesAt(samples, th)
		if fpr == 0 && fnr == 0 {
			out = append(out, th)
		}
	}
	return out
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N             int
	Mean, Std, CV float64
	Min, Max, Sum float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	if s.Mean != 0 {
		s.CV = s.Std / s.Mean
	}
	return s
}

// Quantile returns the q-quantile (0..1) of xs by linear
// interpolation. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
