package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRatesPerfectSeparation(t *testing.T) {
	samples := []Sample{
		{0.001, false}, {0.002, false}, {0.003, false},
		{0.02, true}, {0.03, true},
	}
	fpr, fnr := RatesAt(samples, 0.01)
	if fpr != 0 || fnr != 0 {
		t.Fatalf("fpr=%v fnr=%v, want 0,0", fpr, fnr)
	}
}

func TestRatesMixed(t *testing.T) {
	samples := []Sample{
		{0.02, false}, {0.005, false}, // one FP at θ=0.01
		{0.005, true}, {0.02, true}, // one FN
	}
	fpr, fnr := RatesAt(samples, 0.01)
	if fpr != 0.5 || fnr != 0.5 {
		t.Fatalf("fpr=%v fnr=%v, want 0.5,0.5", fpr, fnr)
	}
}

func TestRatesBoundaryIsNegative(t *testing.T) {
	// Score exactly at the threshold does NOT fire (score > threshold).
	samples := []Sample{{0.01, true}}
	_, fnr := RatesAt(samples, 0.01)
	if fnr != 1 {
		t.Fatalf("boundary score fired: fnr=%v", fnr)
	}
}

func TestRatesMissingClass(t *testing.T) {
	fpr, fnr := RatesAt([]Sample{{0.5, true}}, 0.1)
	if fpr != 0 || fnr != 0 {
		t.Fatalf("missing negative class: fpr=%v fnr=%v", fpr, fnr)
	}
	fpr, fnr = RatesAt(nil, 0.1)
	if fpr != 0 || fnr != 0 {
		t.Fatal("empty samples must be 0,0")
	}
}

func TestROCMonotoneThresholds(t *testing.T) {
	samples := []Sample{
		{0.002, false}, {0.004, false}, {0.008, false},
		{0.006, true}, {0.012, true}, {0.02, true},
	}
	ths := []float64{0.001, 0.005, 0.01, 0.05}
	pts := ROC(samples, ths)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// FPR must be non-increasing in threshold; FNR non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR > pts[i-1].FPR {
			t.Fatal("FPR increased with threshold")
		}
		if pts[i].FNR < pts[i-1].FNR {
			t.Fatal("FNR decreased with threshold")
		}
	}
	for _, p := range pts {
		if math.Abs(p.TPR-(1-p.FNR)) > 1e-12 {
			t.Fatal("TPR != 1-FNR")
		}
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	perfect := []Sample{{0.001, false}, {0.002, false}, {0.9, true}, {0.8, true}}
	ths := []float64{0.0005, 0.0015, 0.0025, 0.01, 0.1, 0.5, 0.85, 0.95}
	auc := AUC(ROC(perfect, ths))
	if auc < 0.99 {
		t.Fatalf("perfect classifier AUC = %v", auc)
	}
}

func TestPerfectThresholds(t *testing.T) {
	samples := []Sample{{0.004, false}, {0.006, false}, {0.014, true}, {0.02, true}}
	ths := []float64{0.002, 0.005, 0.008, 0.012, 0.016}
	got := PerfectThresholds(samples, ths)
	want := []float64{0.008, 0.012}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("perfect thresholds = %v, want %v", got, want)
	}
	if PerfectThresholds([]Sample{{0.5, false}, {0.4, true}}, ths) != nil {
		t.Fatal("inseparable samples reported a perfect threshold")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("summary extremes: %+v", s)
	}
	if math.Abs(s.CV-0.4) > 1e-12 {
		t.Fatalf("cv = %v", s.CV)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Fatal("quantile basics wrong")
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestROCEmptySamples(t *testing.T) {
	pts := ROC(nil, []float64{0.01, 0.05})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want one per threshold", len(pts))
	}
	for _, p := range pts {
		if p.FPR != 0 || p.FNR != 0 || p.TPR != 1 {
			t.Fatalf("empty-sample point not degenerate-clean: %+v", p)
		}
	}
	if pts := ROC([]Sample{{0.5, true}}, nil); len(pts) != 0 {
		t.Fatalf("no thresholds produced points: %v", pts)
	}
}

func TestRatesSingleClass(t *testing.T) {
	// All-negative: FNR has an empty denominator and must report 0,
	// while FPR is still meaningful.
	neg := []Sample{{0.02, false}, {0.005, false}, {0.03, false}}
	fpr, fnr := RatesAt(neg, 0.01)
	if fnr != 0 {
		t.Fatalf("all-negative fnr = %v, want 0", fnr)
	}
	if want := 2.0 / 3.0; math.Abs(fpr-want) > 1e-12 {
		t.Fatalf("all-negative fpr = %v, want %v", fpr, want)
	}
	// All-positive: the mirror case.
	pos := []Sample{{0.02, true}, {0.005, true}}
	fpr, fnr = RatesAt(pos, 0.01)
	if fpr != 0 {
		t.Fatalf("all-positive fpr = %v, want 0", fpr)
	}
	if fnr != 0.5 {
		t.Fatalf("all-positive fnr = %v, want 0.5", fnr)
	}
}

func TestRatesDuplicateScoresAtBoundary(t *testing.T) {
	// Several samples share the exact threshold score: detection is
	// strict (score > threshold), so every one of them stays silent
	// regardless of class.
	samples := []Sample{
		{0.01, true}, {0.01, true}, {0.01, false}, {0.01, false},
		{0.02, true}, {0.005, false},
	}
	fpr, fnr := RatesAt(samples, 0.01)
	if fpr != 0 {
		t.Fatalf("boundary negatives fired: fpr = %v", fpr)
	}
	if want := 2.0 / 3.0; math.Abs(fnr-want) > 1e-12 {
		t.Fatalf("fnr = %v, want %v (both boundary positives missed)", fnr, want)
	}
	// Nudging the threshold just below the tied score flips all four
	// tied samples at once.
	fpr, fnr = RatesAt(samples, 0.0099)
	if want := 2.0 / 3.0; math.Abs(fpr-want) > 1e-12 {
		t.Fatalf("fpr = %v, want %v (both tied negatives fire)", fpr, want)
	}
	if fnr != 0 {
		t.Fatalf("fnr = %v, want 0", fnr)
	}
}

// Property: FPR and FNR are always within [0,1] and AUC within [0,1].
func TestRatesBoundedProperty(t *testing.T) {
	f := func(scores []float64, mask uint64, th float64) bool {
		if len(scores) > 64 {
			scores = scores[:64]
		}
		samples := make([]Sample, len(scores))
		for i, sc := range scores {
			samples[i] = Sample{Score: math.Abs(sc), Positive: mask>>uint(i)&1 == 1}
		}
		fpr, fnr := RatesAt(samples, math.Abs(th))
		if fpr < 0 || fpr > 1 || fnr < 0 || fnr > 1 {
			return false
		}
		auc := AUC(ROC(samples, []float64{0.01, 0.1, 1}))
		return auc >= 0 && auc <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
