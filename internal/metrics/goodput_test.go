package metrics

import "testing"

func TestGoodputZeroLengthRun(t *testing.T) {
	var tl GoodputTimeline
	r := tl.Report(0.9)
	if r.Iterations != 0 || r.Faulted || r.Baseline != 0 || r.Stall != 0 {
		t.Fatalf("zero-length run: %+v", r)
	}
	if !r.Recovered {
		t.Fatalf("no fault was marked; a zero-length run is vacuously recovered: %+v", r)
	}

	// Zero-length but with a fault marked: nothing completed, nothing
	// recovered.
	tl.MarkFault(100)
	r = tl.Report(0.9)
	if !r.Faulted || r.Recovered || r.RecoveryTime != 0 {
		t.Fatalf("zero-length faulted run must be unrecovered: %+v", r)
	}
}

func TestGoodputSingleIteration(t *testing.T) {
	var tl GoodputTimeline
	tl.Add(1, 1000, 1000)
	r := tl.Report(0.9)
	if r.Iterations != 1 || !r.Recovered || r.Faulted {
		t.Fatalf("single clean iteration: %+v", r)
	}
	if want := 1.0 / 1000; r.Baseline != want {
		t.Fatalf("baseline rate = %v, want %v", r.Baseline, want)
	}

	// Same single iteration, fault after it: baseline exists but no
	// post-fault samples → unrecovered, zero stall.
	tl.MarkFault(1500)
	r = tl.Report(0.9)
	if r.Recovered || r.Stall != 0 || r.During != 0 {
		t.Fatalf("faulted single-iteration run must be unrecovered with zero stall: %+v", r)
	}
	if want := 1.0 / 1000; r.Baseline != want {
		t.Fatalf("baseline rate = %v, want %v", r.Baseline, want)
	}
}

func TestGoodputFaultAtIterationZero(t *testing.T) {
	var tl GoodputTimeline
	tl.MarkFault(0)
	tl.Add(1, 2000, 2000)
	tl.Add(2, 4000, 2000)
	r := tl.Report(0.9)
	if r.Baseline != 0 {
		t.Fatalf("no pre-fault iterations, baseline must be 0: %+v", r)
	}
	if r.Recovered || r.RecoveryTime != 0 {
		t.Fatalf("recovery is undefined without a baseline, must report unrecovered: %+v", r)
	}
	if want := 2.0 / 4000; r.During != want {
		t.Fatalf("during rate = %v, want %v", r.During, want)
	}
}

func TestGoodputNeverRecovers(t *testing.T) {
	var tl GoodputTimeline
	tl.Add(1, 1000, 1000)
	tl.Add(2, 2000, 1000)
	tl.MarkFault(2000)
	// Post-fault iterations stuck at 2x the baseline duration — 50% of
	// baseline goodput, below the 90% target forever.
	tl.Add(3, 4000, 2000)
	tl.Add(4, 6000, 2000)
	tl.Add(5, 8000, 2000)
	r := tl.Report(0.9)
	if r.Recovered {
		t.Fatalf("run never reached 90%% of baseline, must be unrecovered: %+v", r)
	}
	if r.RecoveryTime != 0 || r.Post != 0 {
		t.Fatalf("unrecovered run must not report a recovery time or post rate: %+v", r)
	}
	if want := int64(3 * 1000); r.Stall != want {
		t.Fatalf("stall = %d, want %d (three iterations each 1000 over baseline)", r.Stall, want)
	}
	if want := 3.0 / 6000; r.During != want {
		t.Fatalf("during rate = %v, want %v", r.During, want)
	}
}

func TestGoodputRecovery(t *testing.T) {
	var tl GoodputTimeline
	tl.Add(1, 1000, 1000)
	tl.Add(2, 2000, 1000)
	tl.MarkFault(2000)
	tl.Add(3, 7000, 5000) // stalled under the fault
	tl.Add(4, 8050, 1050) // quarantine + re-plan: back above 90%
	tl.Add(5, 9100, 1050)
	r := tl.Report(0.9)
	if !r.Recovered {
		t.Fatalf("must recover: %+v", r)
	}
	if r.RecoveryIter != 4 || r.RecoveryTime != 8050-2000 {
		t.Fatalf("recovery point: %+v", r)
	}
	if want := int64(4000 + 50 + 50); r.Stall != want {
		t.Fatalf("stall = %d, want %d", r.Stall, want)
	}
	if r.Post <= r.During {
		t.Fatalf("post rate must exceed the stalled rate: %+v", r)
	}
}
