package workload

import (
	"math"
	"testing"

	"flowpulse/internal/collective"
	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

type rig struct {
	topo  *topology.Topology
	eng   *sim.Engine
	net   *fabric.Network
	stack *transport.Stack
}

func newRig(t *testing.T, leaves, spines int, seed uint64) *rig {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: leaves, Spines: spines})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: seed})
	return &rig{topo: topo, eng: eng, net: net, stack: transport.NewStack(net, transport.Config{})}
}

func groupOf(topo *topology.Topology) []topology.HostID {
	g := make([]topology.HostID, len(topo.Hosts))
	for i := range g {
		g[i] = topology.HostID(i)
	}
	return g
}

func TestJobRunsIterationsSequentially(t *testing.T) {
	r := newRig(t, 4, 4, 1)
	var iters []uint32
	var times []sim.Time
	done := false
	StartJob(r.stack, JobConfig{
		Job:        1,
		Collective: &collective.RingAllReduce{Group: groupOf(r.topo), BytesPerRank: 256 << 10},
		Iterations: 4,
		Sentinel:   true,
		ComputeGap: 20 * sim.Microsecond,
		OnIteration: func(now sim.Time, iter uint32, _ *collective.Result) {
			iters = append(iters, iter)
			times = append(times, now)
		},
		OnDone: func(sim.Time) { done = true },
	})
	r.eng.Run()
	if !done || len(iters) != 4 {
		t.Fatalf("done=%v iters=%v", done, iters)
	}
	for i, it := range iters {
		if it != uint32(i+1) {
			t.Fatalf("iteration numbering: %v", iters)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) < 20*sim.Microsecond {
			t.Fatal("compute gap not honoured")
		}
	}
}

func TestJobValuesReduceEveryIteration(t *testing.T) {
	r := newRig(t, 4, 4, 2)
	n := 4
	var lastVals [][]float64
	StartJob(r.stack, JobConfig{
		Job:         1,
		Collective:  &collective.RingAllReduce{Group: groupOf(r.topo), BytesPerRank: 64 << 10},
		Iterations:  2,
		Sentinel:    true,
		TrackValues: true,
		OnIteration: func(_ sim.Time, _ uint32, res *collective.Result) {
			lastVals = res.Values
		},
	})
	r.eng.Run()
	if lastVals == nil {
		t.Fatal("no values")
	}
	// After iteration 1, rank values are chunk sums; iteration 2
	// re-reduces those sums: each chunk value = N * (sum over ranks of
	// initial chunk value)... verified structurally: all ranks agree.
	for c := 0; c < n; c++ {
		for rank := 1; rank < n; rank++ {
			if math.Abs(lastVals[rank][c]-lastVals[0][c]) > 1e-9 {
				t.Fatalf("ranks disagree on chunk %d after 2 iterations", c)
			}
		}
	}
}

func TestJobTagsIterations(t *testing.T) {
	r := newRig(t, 4, 4, 3)
	var windows []*telemetry.Window
	coll := telemetry.AttachAll(r.net, telemetry.JobAny, func(w *telemetry.Window) {
		windows = append(windows, w.Clone())
	})
	StartJob(r.stack, JobConfig{
		Job:        7,
		Collective: &collective.RingAllReduce{Group: groupOf(r.topo), BytesPerRank: 256 << 10},
		Iterations: 3,
		Sentinel:   true,
	})
	r.eng.Run()
	coll.FlushAll(r.eng.Now())
	// 4 leaves x 3 iterations.
	if len(windows) != 12 {
		t.Fatalf("windows = %d, want 12", len(windows))
	}
	for _, w := range windows {
		if w.Job != 7 {
			t.Fatalf("window job = %d", w.Job)
		}
		if w.Total() == 0 {
			t.Fatal("empty measured window")
		}
	}
}

func TestJobWithJitterStillCompletes(t *testing.T) {
	r := newRig(t, 4, 4, 4)
	done := false
	StartJob(r.stack, JobConfig{
		Job:        1,
		Collective: &collective.RingAllReduce{Group: groupOf(r.topo), BytesPerRank: 128 << 10},
		Iterations: 3,
		JitterMax:  10 * sim.Microsecond,
		Sentinel:   true,
		OnDone:     func(sim.Time) { done = true },
	})
	r.eng.Run()
	if !done {
		t.Fatal("jittered job incomplete")
	}
}

func TestTwoParallelJobs(t *testing.T) {
	// Jobs on disjoint host halves, different ids, sharing the fabric.
	r := newRig(t, 8, 4, 5)
	all := groupOf(r.topo)
	doneA, doneB := false, false
	StartJob(r.stack, JobConfig{
		Job:        1,
		Collective: &collective.RingAllReduce{Group: all[:4], BytesPerRank: 128 << 10},
		Iterations: 3,
		Sentinel:   true,
		OnDone:     func(sim.Time) { doneA = true },
	})
	StartJob(r.stack, JobConfig{
		Job:        2,
		Collective: &collective.RingAllReduce{Group: all[4:], BytesPerRank: 256 << 10},
		Iterations: 2,
		Sentinel:   true,
		OnDone:     func(sim.Time) { doneB = true },
	})

	// Job-filtered telemetry must only see its own job.
	var job1Windows int
	telemetry.AttachAll(r.net, 1, func(w *telemetry.Window) {
		if w.Job != 1 {
			t.Errorf("job filter leaked job %d", w.Job)
		}
		job1Windows++
	})
	r.eng.Run()
	if !doneA || !doneB {
		t.Fatalf("jobs incomplete: %v %v", doneA, doneB)
	}
	if job1Windows == 0 {
		t.Fatal("no job-1 windows")
	}
}

func TestBackgroundTrafficGeneratesAndStops(t *testing.T) {
	r := newRig(t, 4, 4, 6)
	b := StartBackground(r.stack, BackgroundConfig{
		Hosts:        groupOf(r.topo),
		MessageBytes: 16 << 10,
		MeanGap:      5 * sim.Microsecond,
		Until:        500 * 1000 * 1000, // 500 µs
		Seed:         6,
	})
	r.eng.Run()
	if b.MessagesSent < 50 {
		t.Fatalf("background sent only %d messages", b.MessagesSent)
	}
	// All background traffic is Low priority and unmeasured: a monitor
	// must see nothing.
	m := telemetry.NewLeafMonitor(r.topo, r.topo.Leaves()[0], telemetry.JobAny, nil)
	_ = m
	if r.net.Stats().Delivered == 0 {
		t.Fatal("background traffic not delivered")
	}
}

func TestBackgroundStopHalts(t *testing.T) {
	r := newRig(t, 2, 2, 7)
	b := StartBackground(r.stack, BackgroundConfig{Hosts: groupOf(r.topo), MeanGap: sim.Microsecond, Seed: 7})
	r.eng.RunUntil(50 * 1000 * 1000)
	b.Stop()
	sent := b.MessagesSent
	r.eng.Run()
	if b.MessagesSent > sent {
		t.Fatalf("generator kept sending after Stop: %d -> %d", sent, b.MessagesSent)
	}
}

func TestJobValidation(t *testing.T) {
	r := newRig(t, 2, 2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid job accepted")
		}
	}()
	StartJob(r.stack, JobConfig{Iterations: 0})
}
