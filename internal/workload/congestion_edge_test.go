package workload

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// Edge-case battery for the adversarial-traffic generators: minimum
// topologies, zero-value configs, mid-run Stop, and validation panics.

func TestIncastEdgeTopologies(t *testing.T) {
	cases := []struct {
		name           string
		leaves, spines int
		hostsPerLeaf   int
		fanout         int
	}{
		{"two-host minimum", 2, 1, 1, 0},
		{"same-leaf victim", 2, 1, 4, 2}, // sources share the victim's leaf: pure last-hop path
		{"fanout exceeds sources", 2, 2, 2, 99},
		{"single spine bottleneck", 4, 1, 1, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := topology.NewFatTree(topology.FatTreeConfig{
				Leaves: tc.leaves, Spines: tc.spines, HostsPerLeaf: tc.hostsPerLeaf,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngine()
			net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 31})
			stack := transport.NewStack(net, transport.Config{})
			hosts := groupOf(topo)
			in := StartIncast(stack, IncastConfig{
				Sources:      hosts,
				Victims:      hosts[:1],
				MessageBytes: 8 << 10,
				MeanGap:      20 * sim.Microsecond,
				Fanout:       tc.fanout,
				Until:        sim.Time(2 * sim.Millisecond),
				Seed:         31,
			})
			eng.Run()
			if in.BurstsSent == 0 || in.MessagesSent == 0 {
				t.Fatalf("bursts=%d messages=%d", in.BurstsSent, in.MessagesSent)
			}
			// The victim never fires at itself, so per-burst fanout is
			// capped at len(hosts)-1 even when Fanout asks for more.
			if max := in.BurstsSent * (len(hosts) - 1); in.MessagesSent > max {
				t.Fatalf("messages %d exceed %d bursts × %d eligible sources", in.MessagesSent, in.BurstsSent, len(hosts)-1)
			}
			if net.Stats().Delivered == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

func TestIncastZeroConfigDefaults(t *testing.T) {
	// Zero-value knobs must resolve to the documented defaults rather
	// than degenerate behavior (zero-byte messages, zero gaps).
	r := newRig(t, 2, 1, 32)
	hosts := groupOf(r.topo)
	in := StartIncast(r.stack, IncastConfig{Sources: hosts[1:], Victims: hosts[:1], Until: sim.Time(sim.Millisecond)})
	if in.cfg.MessageBytes != 128<<10 {
		t.Errorf("MessageBytes default = %d, want 128 KiB", in.cfg.MessageBytes)
	}
	if in.cfg.MeanGap != 100*sim.Microsecond {
		t.Errorf("MeanGap default = %v, want 100µs", in.cfg.MeanGap)
	}
	if in.cfg.Fanout != 1 {
		t.Errorf("Fanout default = %d, want all sources (1)", in.cfg.Fanout)
	}
	if in.cfg.Priority != fabric.Low {
		t.Errorf("Priority default = %v, want Low", in.cfg.Priority)
	}
	r.eng.Run()
	if in.BurstsSent == 0 {
		t.Fatal("default-config incast generated nothing")
	}
}

func TestStormZeroConfigDefaults(t *testing.T) {
	r := newRig(t, 2, 1, 33)
	st := StartStorm(r.stack, StormConfig{Hosts: groupOf(r.topo), Until: sim.Time(sim.Millisecond)})
	if st.cfg.MessageBytes != 256<<10 {
		t.Errorf("MessageBytes default = %d, want 256 KiB", st.cfg.MessageBytes)
	}
	if st.cfg.OnMean != 50*sim.Microsecond || st.cfg.OffMean != 150*sim.Microsecond {
		t.Errorf("on/off defaults = %v/%v, want 50µs/150µs", st.cfg.OnMean, st.cfg.OffMean)
	}
	if st.cfg.Priority != fabric.High {
		t.Errorf("Priority default = %v, want High", st.cfg.Priority)
	}
	r.eng.Run()
	if st.Bursts == 0 {
		t.Fatal("default-config storm generated nothing")
	}
}

func TestStormStopMidBurstDrains(t *testing.T) {
	// Stop lands inside a burst; already-scheduled pump events must
	// drain as no-ops and the engine must still go idle.
	r := newRig(t, 2, 2, 34)
	st := StartStorm(r.stack, StormConfig{
		Hosts:   groupOf(r.topo),
		OnMean:  500 * sim.Microsecond, // long bursts: Stop is near-certain to land mid-burst
		OffMean: 10 * sim.Microsecond,
		MeanGap: 2 * sim.Microsecond,
		Seed:    34,
	})
	r.eng.RunUntil(sim.Time(200 * sim.Microsecond))
	if st.MessagesSent == 0 {
		t.Fatal("no messages before Stop")
	}
	st.Stop()
	sent := st.MessagesSent
	r.eng.Run() // must terminate: no unbounded rescheduling after Stop
	if st.MessagesSent > sent {
		t.Fatalf("storm kept sending after Stop: %d -> %d", sent, st.MessagesSent)
	}
	if pending := r.eng.Pending(); pending != 0 {
		t.Fatalf("%d events still pending after drain", pending)
	}
}

func TestIncastStopHalts(t *testing.T) {
	r := newRig(t, 2, 2, 35)
	hosts := groupOf(r.topo)
	in := StartIncast(r.stack, IncastConfig{
		Sources: hosts[1:], Victims: hosts[:1],
		MessageBytes: 8 << 10, MeanGap: 10 * sim.Microsecond, Seed: 35,
	})
	r.eng.RunUntil(sim.Time(300 * sim.Microsecond))
	in.Stop()
	sent := in.MessagesSent
	r.eng.Run()
	if in.MessagesSent > sent {
		t.Fatalf("incast kept sending after Stop: %d -> %d", sent, in.MessagesSent)
	}
}

func TestCongestionValidationPanics(t *testing.T) {
	r := newRig(t, 2, 1, 36)
	hosts := groupOf(r.topo)
	cases := []struct {
		name string
		fn   func()
	}{
		{"incast no sources", func() { StartIncast(r.stack, IncastConfig{Victims: hosts[:1]}) }},
		{"incast no victims", func() { StartIncast(r.stack, IncastConfig{Sources: hosts}) }},
		{"storm one host", func() { StartStorm(r.stack, StormConfig{Hosts: hosts[:1]}) }},
		{"storm no hosts", func() { StartStorm(r.stack, StormConfig{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config accepted")
				}
			}()
			tc.fn()
		})
	}
}
