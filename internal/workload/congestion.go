package workload

import (
	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// IncastConfig describes an N→1 burst generator: every burst, Fanout
// sources fire one message each at a victim host in the same instant —
// the synchronized-reader pattern (distributed storage, parameter
// servers) that piles up in the victim leaf's downlink queue and mimics
// loss without any fault.
type IncastConfig struct {
	// Sources are the candidate senders.
	Sources []topology.HostID
	// Victims are the burst targets (typically the hosts of one leaf);
	// each burst picks one at random.
	Victims []topology.HostID
	// MessageBytes is the payload per source per burst. Defaults to
	// 128 KiB.
	MessageBytes int
	// MeanGap is the mean exponential gap between bursts. Defaults to
	// 100 µs.
	MeanGap sim.Duration
	// Fanout is how many sources fire per burst. Defaults to all.
	Fanout int
	// Priority is the traffic class. Defaults to Low (the ISSUE's
	// incast is background-tenant traffic, not the measured job).
	Priority fabric.Priority
	// Until stops generation at this simulated time.
	Until sim.Time
	// Seed feeds the generator's stream.
	Seed uint64
	// OnBurst, when set, observes every burst instant (statistics and
	// experiment hook).
	OnBurst func(now sim.Time)
}

// Incast is a running incast-storm generator.
type Incast struct {
	cfg   IncastConfig
	stack *transport.Stack
	eng   *sim.Engine
	rng   *sim.RNG

	// BurstsSent and MessagesSent count generated traffic.
	BurstsSent, MessagesSent int
	stopped                  bool
}

// StartIncast launches the generator. It stops at cfg.Until or when
// Stop is called.
func StartIncast(stack *transport.Stack, cfg IncastConfig) *Incast {
	if len(cfg.Sources) < 1 || len(cfg.Victims) < 1 {
		panic("workload: incast needs at least one source and one victim")
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 128 << 10
	}
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 100 * sim.Microsecond
	}
	if cfg.Fanout <= 0 || cfg.Fanout > len(cfg.Sources) {
		cfg.Fanout = len(cfg.Sources)
	}
	if cfg.Priority == 0 {
		cfg.Priority = fabric.Low
	}
	in := &Incast{
		cfg:   cfg,
		stack: stack,
		eng:   stackEngine(stack),
		rng:   sim.NewRNG(cfg.Seed, "incast"),
	}
	in.scheduleNext()
	return in
}

// Stop halts generation. Already-scheduled engine events drain as
// no-ops, so Pending reaches zero without cancellation surgery.
func (in *Incast) Stop() { in.stopped = true }

func (in *Incast) scheduleNext() {
	gap := in.rng.Exponential(in.cfg.MeanGap)
	in.eng.After(gap, func(now sim.Time) {
		if in.stopped || (in.cfg.Until > 0 && now >= in.cfg.Until) {
			return
		}
		in.burst()
		if in.cfg.OnBurst != nil {
			in.cfg.OnBurst(now)
		}
		in.scheduleNext()
	})
}

// burst fires Fanout sources at one victim in the same instant. The
// sender window starts at a random index so the burst membership
// rotates without per-burst shuffling allocations.
func (in *Incast) burst() {
	victim := in.cfg.Victims[in.rng.PickN(len(in.cfg.Victims))]
	start := in.rng.PickN(len(in.cfg.Sources))
	fired := 0
	for k := 0; k < len(in.cfg.Sources) && fired < in.cfg.Fanout; k++ {
		src := in.cfg.Sources[(start+k)%len(in.cfg.Sources)]
		if src == victim {
			continue
		}
		sendSharded(in.stack, &transport.Message{
			Src:      src,
			Dst:      victim,
			Bytes:    in.cfg.MessageBytes,
			Priority: in.cfg.Priority,
		})
		in.MessagesSent++
		fired++
	}
	in.BurstsSent++
}

// StormConfig describes a bursty on/off heavy-flow generator: a
// multi-tenant neighbor that alternates between saturating one random
// pair and going quiet. It defaults to High priority — sharing the
// measured class is precisely what perturbs the detector's per-port
// load model (Low-priority storms cannot shift High's spray decisions;
// see the fabric's per-class load estimator).
type StormConfig struct {
	// Hosts are the endpoints to pick burst pairs from.
	Hosts []topology.HostID
	// MessageBytes is the payload per message. Defaults to 256 KiB.
	MessageBytes int
	// OnMean and OffMean are the mean exponential burst and quiet
	// lengths. Defaults: 50 µs on, 150 µs off (25% duty cycle).
	OnMean, OffMean sim.Duration
	// MeanGap is the mean message gap inside a burst. Defaults to 5 µs.
	MeanGap sim.Duration
	// Priority is the traffic class. Defaults to High.
	Priority fabric.Priority
	// Until stops generation at this simulated time.
	Until sim.Time
	// Seed feeds the generator's stream.
	Seed uint64
}

// Storm is a running on/off storm generator.
type Storm struct {
	cfg   StormConfig
	stack *transport.Stack
	eng   *sim.Engine
	rng   *sim.RNG

	// Bursts and MessagesSent count generated traffic; OnTime
	// accumulates total burst time (the duty-cycle numerator).
	Bursts, MessagesSent int
	OnTime               sim.Duration

	src, dst topology.HostID
	burstEnd sim.Time
	stopped  bool
}

// StartStorm launches the generator. It stops at cfg.Until or when
// Stop is called (mid-burst included).
func StartStorm(stack *transport.Stack, cfg StormConfig) *Storm {
	if len(cfg.Hosts) < 2 {
		panic("workload: storm traffic needs at least 2 hosts")
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 256 << 10
	}
	if cfg.OnMean == 0 {
		cfg.OnMean = 50 * sim.Microsecond
	}
	if cfg.OffMean == 0 {
		cfg.OffMean = 150 * sim.Microsecond
	}
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 5 * sim.Microsecond
	}
	if cfg.Priority == 0 {
		cfg.Priority = fabric.High
	}
	st := &Storm{
		cfg:   cfg,
		stack: stack,
		eng:   stackEngine(stack),
		rng:   sim.NewRNG(cfg.Seed, "storm"),
	}
	st.scheduleBurst()
	return st
}

// Stop halts generation, mid-burst included.
func (st *Storm) Stop() { st.stopped = true }

// scheduleBurst waits out an off-phase, then opens a burst.
func (st *Storm) scheduleBurst() {
	gap := st.rng.Exponential(st.cfg.OffMean)
	st.eng.After(gap, func(now sim.Time) {
		if st.stopped || (st.cfg.Until > 0 && now >= st.cfg.Until) {
			return
		}
		st.src = st.cfg.Hosts[st.rng.PickN(len(st.cfg.Hosts))]
		st.dst = st.src
		for st.dst == st.src {
			st.dst = st.cfg.Hosts[st.rng.PickN(len(st.cfg.Hosts))]
		}
		on := st.rng.Exponential(st.cfg.OnMean)
		st.burstEnd = now.Add(on)
		st.OnTime += on
		st.Bursts++
		st.pump(now)
	})
}

// pump emits messages through the burst, then rolls into the next
// off-phase.
func (st *Storm) pump(now sim.Time) {
	if st.stopped || (st.cfg.Until > 0 && now >= st.cfg.Until) {
		return
	}
	if now >= st.burstEnd {
		st.scheduleBurst()
		return
	}
	sendSharded(st.stack, &transport.Message{
		Src:      st.src,
		Dst:      st.dst,
		Bytes:    st.cfg.MessageBytes,
		Priority: st.cfg.Priority,
	})
	st.MessagesSent++
	st.eng.After(st.rng.Exponential(st.cfg.MeanGap), st.pump)
}

// sendSharded injects a message honoring the sharded-engine ownership
// rule: the generator (and its RNG) lives on the control engine, but a
// sharded stack may only be entered from the domain owning the source
// host. The lax post rounds the injection instant up to the next window
// boundary — at most one lookahead late, and equally so for every
// worker count.
func sendSharded(stack *transport.Stack, m *transport.Message) {
	net := stack.Network()
	if g := net.Group(); g != nil {
		g.PostLax(0, net.DomainOf(m.Src), net.Engine().Now(), func(sim.Time) { stack.Send(m) })
	} else {
		stack.Send(m)
	}
}
