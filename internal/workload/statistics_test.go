package workload

import (
	"math"
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// Statistical regression tests for the adversarial-traffic generators
// and the DCQCN reaction point, in the style of the fault package's
// loss-process tests: fixed seeds make every run deterministic, and
// the bounds are far outside what a correct implementation lands on.

// ecnRig is a rig whose fabric marks aggressively and whose transport
// reacts — the full ECN/DCQCN loop on a small fat tree.
func ecnRig(t *testing.T, leaves, spines int, seed uint64) *rig {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: leaves, Spines: spines})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{
		Topo: topo, Engine: eng, Seed: seed,
		ECN: fabric.ECNConfig{Enabled: true, KMinBytes: 8 << 10, KMaxBytes: 32 << 10},
	})
	stack := transport.NewStack(net, transport.Config{DCQCN: transport.DCQCNConfig{Enabled: true}})
	return &rig{topo: topo, eng: eng, net: net, stack: stack}
}

func TestIncastInterArrivalExponential(t *testing.T) {
	// Burst gaps are drawn exponentially; chi-square the observed gap
	// histogram against the exponential law. A generator that fires at
	// the right mean rate but in a regular cadence fails here while
	// passing any count-based test.
	r := newRig(t, 4, 2, 21)
	const mean = 100 * sim.Microsecond
	var times []sim.Time
	in := StartIncast(r.stack, IncastConfig{
		Sources:      groupOf(r.topo)[1:],
		Victims:      groupOf(r.topo)[:1],
		MessageBytes: 16 << 10,
		MeanGap:      mean,
		Until:        sim.Time(400 * sim.Millisecond),
		Seed:         21,
		OnBurst:      func(now sim.Time) { times = append(times, now) },
	})
	r.eng.Run()
	if in.BurstsSent < 3000 {
		t.Fatalf("only %d bursts; too few for the histogram", in.BurstsSent)
	}
	// 10 equal-probability exponential bins plus the implicit tail:
	// bin k covers [F⁻¹(k/11), F⁻¹((k+1)/11)).
	const bins = 11
	counts := make([]int, bins)
	for i := 1; i < len(times); i++ {
		gap := float64(times[i].Sub(times[i-1])) / float64(mean)
		k := int(float64(bins) * (1 - math.Exp(-gap)))
		if k >= bins {
			k = bins - 1
		}
		counts[k]++
	}
	n := float64(len(times) - 1)
	exp := n / bins
	var chi2 float64
	for _, c := range counts {
		dev := float64(c) - exp
		chi2 += dev * dev / exp
	}
	// df = 10: χ² ∈ [1.48, 29.59] covers 99.8% two-sided.
	if chi2 < 1.478 || chi2 > 29.588 {
		t.Errorf("inter-burst gap χ² = %.2f outside [1.48, 29.59] (counts %v)", chi2, counts)
	}
}

func TestIncastBurstAccounting(t *testing.T) {
	// Every burst fires exactly Fanout messages, never at the victim.
	r := newRig(t, 4, 2, 22)
	hosts := groupOf(r.topo)
	in := StartIncast(r.stack, IncastConfig{
		Sources:      hosts, // victim included: burst must skip it
		Victims:      hosts[:1],
		MessageBytes: 8 << 10,
		MeanGap:      50 * sim.Microsecond,
		Fanout:       2,
		Until:        sim.Time(5 * sim.Millisecond),
		Seed:         22,
	})
	r.eng.Run()
	if in.BurstsSent == 0 {
		t.Fatal("no bursts")
	}
	if in.MessagesSent != 2*in.BurstsSent {
		t.Errorf("messages %d != fanout 2 × bursts %d", in.MessagesSent, in.BurstsSent)
	}
}

func TestStormDutyCycleTolerance(t *testing.T) {
	// The on/off generator's duty cycle is OnMean/(OnMean+OffMean);
	// OnTime accumulates the drawn burst lengths. 25% nominal, and a
	// 400 ms run averages ~500 on/off pairs — a loose ±40% relative
	// band catches an inverted or unscaled phase draw while never
	// flaking on seed luck.
	r := newRig(t, 4, 2, 23)
	const until = 400 * sim.Millisecond
	st := StartStorm(r.stack, StormConfig{
		Hosts:        groupOf(r.topo),
		MessageBytes: 16 << 10,
		OnMean:       50 * sim.Microsecond,
		OffMean:      150 * sim.Microsecond,
		MeanGap:      5 * sim.Microsecond,
		Until:        sim.Time(until),
		Seed:         23,
	})
	r.eng.Run()
	if st.Bursts < 1000 {
		t.Fatalf("only %d bursts", st.Bursts)
	}
	duty := float64(st.OnTime) / float64(until)
	if duty < 0.15 || duty > 0.35 {
		t.Errorf("duty cycle %.3f outside [0.15, 0.35] (want ≈0.25)", duty)
	}
	// The drawn burst length is exponential with mean OnMean.
	meanOn := float64(st.OnTime) / float64(st.Bursts) / float64(50*sim.Microsecond)
	if meanOn < 0.85 || meanOn > 1.15 {
		t.Errorf("mean burst length %.3f × OnMean outside [0.85, 1.15]", meanOn)
	}
}

func TestDCQCNRateRecoveryShape(t *testing.T) {
	// Saturate one victim with an in-class incast on a mark-happy
	// fabric, then stop the load and sample one pair's paced rate: the
	// loop must have cut below line during congestion, recover
	// monotonically while idle, and end back at line rate.
	r := ecnRig(t, 4, 2, 24)
	hosts := groupOf(r.topo)
	victim := hosts[0]
	in := StartIncast(r.stack, IncastConfig{
		Sources:      hosts[1:],
		Victims:      hosts[:1],
		MessageBytes: 64 << 10,
		MeanGap:      20 * sim.Microsecond,
		Priority:     fabric.High,
		Until:        sim.Time(2 * sim.Millisecond),
		Seed:         24,
	})
	line := float64(r.topo.Link(r.topo.Host(hosts[1]).Link).RateBPS)

	var cutRate float64 = line
	var samples []float64
	var sample func(now sim.Time)
	sample = func(now sim.Time) {
		rate := r.stack.PairRateBPS(hosts[1], victim)
		if now < sim.Time(2*sim.Millisecond) {
			if rate < cutRate {
				cutRate = rate
			}
		} else {
			samples = append(samples, rate)
		}
		if now < sim.Time(4*sim.Millisecond) {
			r.eng.After(25*sim.Microsecond, sample)
		}
	}
	r.eng.After(25*sim.Microsecond, sample)
	r.eng.Run()

	if in.BurstsSent == 0 {
		t.Fatal("no bursts")
	}
	if r.stack.Stats().RateCuts == 0 {
		t.Fatal("congestion never cut a rate: the ECN→ACK-echo→DCQCN loop is broken")
	}
	if cutRate >= 0.9*line {
		t.Errorf("paced rate never dropped below 90%% of line during congestion (min %.0f of %.0f)", cutRate, line)
	}
	// Idle recovery: monotone non-decreasing, ending at line rate.
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1]-1 {
			t.Fatalf("recovery not monotone: sample %d %.0f < %.0f", i, samples[i], samples[i-1])
		}
	}
	if got := samples[len(samples)-1]; got < 0.999*line {
		t.Errorf("pair ended at %.0f bps, want line %.0f", got, line)
	}
}
