// Package workload drives training traffic over the simulated fabric:
// iterating collectives with compute gaps and per-rank start jitter
// (the stragglers of §4), low-priority background flows (§5.1), and
// multiple concurrent jobs sharing the network (§7 "Parallel Jobs").
package workload

import (
	"fmt"

	"flowpulse/internal/collective"
	"flowpulse/internal/fabric"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// JobConfig describes one training job.
type JobConfig struct {
	// Job is the id carried in every tagged packet.
	Job uint16
	// Collective is the per-iteration communication pattern.
	Collective collective.Collective
	// Iterations is how many training iterations to run.
	Iterations int
	// ComputeGap separates an iteration's completion from the next
	// iteration's start (forward/backward pass time). Defaults to
	// 20 µs.
	ComputeGap sim.Duration
	// JitterMax is the per-rank, per-iteration uniform start delay —
	// zero disables jitter.
	JitterMax sim.Duration
	// StragglerOffsets adds a fixed per-rank start delay on top of the
	// jitter — the topology-asymmetric straggler: ranks on one leaf
	// consistently late skew the temporal symmetry the detector leans
	// on without any network fault. Nil disables; shorter slices pad
	// with zero.
	StragglerOffsets []sim.Duration
	// Priority is the traffic class; the measured collective runs
	// High (the default).
	Priority fabric.Priority
	// Sentinel tags packets for FlowPulse measurement. Defaults true
	// via StartJob.
	Sentinel bool
	// StartIter numbers the first iteration. Defaults to 1.
	StartIter uint32
	// TrackValues enables reduction-checksum bookkeeping.
	TrackValues bool
	// Seed feeds the jitter stream.
	Seed uint64
	// Goodput, when non-nil, receives one sample per completed
	// iteration (iteration number, completion time, duration) — the
	// training-throughput timeline the resilience experiments score.
	Goodput *metrics.GoodputTimeline

	// OnIteration fires after each completed iteration.
	OnIteration func(now sim.Time, iter uint32, res *collective.Result)
	// OnDone fires after the last iteration.
	OnDone func(now sim.Time)
}

// Job is a running training job.
type Job struct {
	cfg   JobConfig
	stack *transport.Stack
	eng   *sim.Engine
	rng   *sim.RNG

	iter      uint32
	remaining int
	values    [][]float64
	pending   collective.Collective

	// CompletedIterations counts finished iterations.
	CompletedIterations int
	// LastIterationTime is the wall-clock duration of the most recent
	// iteration (completion minus start).
	LastIterationTime sim.Duration

	started sim.Time
}

// StartJob begins running a job. Iterations are sequential: iteration
// k+1 starts ComputeGap after k completes, exactly the bulk-synchronous
// pattern whose repetition creates temporal symmetry (§4).
func StartJob(stack *transport.Stack, cfg JobConfig) *Job {
	if cfg.Collective == nil || cfg.Iterations <= 0 {
		panic("workload: job needs a collective and a positive iteration count")
	}
	if cfg.ComputeGap == 0 {
		cfg.ComputeGap = 20 * sim.Microsecond
	}
	if cfg.StartIter == 0 {
		cfg.StartIter = 1
	}
	j := &Job{
		cfg:       cfg,
		stack:     stack,
		eng:       stackEngine(stack),
		rng:       sim.NewRNG(cfg.Seed, fmt.Sprintf("jitter/job%d", cfg.Job)),
		iter:      cfg.StartIter,
		remaining: cfg.Iterations,
	}
	if cfg.TrackValues {
		n := j.ranks()
		j.values = make([][]float64, n)
		for i := range j.values {
			j.values[i] = make([]float64, n)
			for c := range j.values[i] {
				j.values[i][c] = float64(i*1000 + c)
			}
		}
	}
	j.startIteration()
	return j
}

func stackEngine(s *transport.Stack) *sim.Engine { return s.Engine() }

func (j *Job) ranks() int {
	return len(j.cfg.Collective.Demand().Hosts)
}

// Collective returns the plan currently driving iterations.
func (j *Job) Collective() collective.Collective { return j.cfg.Collective }

// Replan swaps the job onto a new collective at the next iteration
// barrier: the in-flight iteration completes under its original plan
// (its transport messages are already scheduled), and every subsequent
// iteration runs the new one. A second Replan before the barrier
// simply replaces the pending plan.
func (j *Job) Replan(c collective.Collective) {
	if c == nil {
		panic("workload: Replan needs a collective")
	}
	j.pending = c
}

// adoptPending installs a pending re-plan at the iteration barrier.
// Value tracking is per-plan (chunk ownership follows the group), so
// checksum bookkeeping restarts from the new membership.
func (j *Job) adoptPending() {
	if j.pending == nil {
		return
	}
	j.cfg.Collective = j.pending
	j.pending = nil
	if j.values != nil {
		n := j.ranks()
		j.values = make([][]float64, n)
		for i := range j.values {
			j.values[i] = make([]float64, n)
			for c := range j.values[i] {
				j.values[i][c] = float64(i*1000 + c)
			}
		}
	}
}

func (j *Job) startIteration() {
	j.adoptPending()
	j.started = j.eng.Now()
	n := j.ranks()
	var offsets []sim.Duration
	if j.cfg.JitterMax > 0 || j.cfg.StragglerOffsets != nil {
		offsets = make([]sim.Duration, n)
		if j.cfg.JitterMax > 0 {
			for i := range offsets {
				offsets[i] = j.rng.UniformDuration(j.cfg.JitterMax)
			}
		}
		for i, d := range j.cfg.StragglerOffsets {
			if i >= n {
				break
			}
			offsets[i] += d
		}
	}
	iter := j.iter
	j.cfg.Collective.Run(&collective.RunContext{
		Stack:        j.stack,
		Engine:       j.eng,
		Tag:          fabric.FlowTag{Sentinel: j.cfg.Sentinel, Job: j.cfg.Job, Iter: iter},
		Priority:     j.cfg.Priority,
		StartOffsets: offsets,
		Values:       j.values,
		OnComplete: func(now sim.Time, res *collective.Result) {
			j.onIterationDone(now, iter, res)
		},
	})
}

func (j *Job) onIterationDone(now sim.Time, iter uint32, res *collective.Result) {
	j.CompletedIterations++
	j.LastIterationTime = now.Sub(j.started)
	if j.cfg.Goodput != nil {
		j.cfg.Goodput.Add(iter, int64(now), int64(j.LastIterationTime))
	}
	if res.Values != nil {
		j.values = res.Values
	}
	if j.cfg.OnIteration != nil {
		j.cfg.OnIteration(now, iter, res)
	}
	j.remaining--
	if j.remaining == 0 {
		if j.cfg.OnDone != nil {
			j.cfg.OnDone(now)
		}
		return
	}
	j.iter++
	j.eng.After(j.cfg.ComputeGap, func(sim.Time) { j.startIteration() })
}

// BackgroundConfig describes low-priority filler traffic.
type BackgroundConfig struct {
	// Hosts are the endpoints to pick src/dst pairs from.
	Hosts []topology.HostID
	// MessageBytes is the payload per background message. Defaults to
	// 64 KiB.
	MessageBytes int
	// MeanGap is the mean exponential inter-arrival time of messages
	// (per generator). Defaults to 10 µs.
	MeanGap sim.Duration
	// Until stops generation at this simulated time.
	Until sim.Time
	// Seed feeds the generator's stream.
	Seed uint64
}

// Background is a running background-traffic generator.
type Background struct {
	cfg   BackgroundConfig
	stack *transport.Stack
	eng   *sim.Engine
	rng   *sim.RNG

	// MessagesSent counts generated messages.
	MessagesSent int
	stopped      bool
}

// StartBackground launches a Poisson-ish generator of Low-priority
// messages between random host pairs. It stops at cfg.Until or when
// Stop is called.
func StartBackground(stack *transport.Stack, cfg BackgroundConfig) *Background {
	if len(cfg.Hosts) < 2 {
		panic("workload: background traffic needs at least 2 hosts")
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 64 << 10
	}
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 10 * sim.Microsecond
	}
	b := &Background{
		cfg:   cfg,
		stack: stack,
		eng:   stackEngine(stack),
		rng:   sim.NewRNG(cfg.Seed, "background"),
	}
	b.scheduleNext()
	return b
}

// Stop halts generation.
func (b *Background) Stop() { b.stopped = true }

func (b *Background) scheduleNext() {
	gap := b.rng.Exponential(b.cfg.MeanGap)
	b.eng.After(gap, func(now sim.Time) {
		if b.stopped || (b.cfg.Until > 0 && now >= b.cfg.Until) {
			return
		}
		b.sendOne()
		b.scheduleNext()
	})
}

func (b *Background) sendOne() {
	src := b.cfg.Hosts[b.rng.PickN(len(b.cfg.Hosts))]
	dst := src
	for dst == src {
		dst = b.cfg.Hosts[b.rng.PickN(len(b.cfg.Hosts))]
	}
	m := &transport.Message{
		Src:      src,
		Dst:      dst,
		Bytes:    b.cfg.MessageBytes,
		Priority: fabric.Low,
	}
	// The generator (and its RNG) lives on the control engine, but a
	// sharded stack may only be entered from the domain owning the
	// source host. The lax post rounds the injection instant up to the
	// next window boundary — at most one lookahead late, and equally so
	// for every worker count.
	net := b.stack.Network()
	if g := net.Group(); g != nil {
		g.PostLax(0, net.DomainOf(src), b.eng.Now(), func(sim.Time) { b.stack.Send(m) })
	} else {
		b.stack.Send(m)
	}
	b.MessagesSent++
}
