package simtest

import (
	"runtime"
	"testing"
)

// TestCongestionShardedDeterminism: a congestion-laden spec — ECN
// marking, DCQCN pacing, incast/storm generators injecting through the
// lax cross-domain post — must produce the same fingerprint on the
// sharded engine regardless of worker count, and match shard count 1
// exactly (fingerprints depend on engine mode 0 vs >= 1, not on N).
// Congestion traffic is the adversarial case for shard determinism:
// generator RNGs live on the control engine while marks and pacing
// decisions happen inside per-switch domains.
func TestCongestionShardedDeterminism(t *testing.T) {
	want := 2
	if testing.Short() {
		want = 1
	}
	ran := 0
	for seed := uint64(0); seed < 200 && ran < want; seed++ {
		spec := WithCongestion(Generate(seed))
		if !spec.Congest.Active() {
			continue
		}
		base := Run(spec, Options{Shards: 1})
		if !base.OK() {
			t.Errorf("seed %d shards=1: %v", seed, base.Violations)
		}
		if base.Fingerprint == 0 {
			t.Fatalf("seed %d: degenerate zero fingerprint", seed)
		}
		for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
			r := Run(spec, Options{Shards: w})
			if r.Fingerprint != base.Fingerprint {
				t.Errorf("seed %d: shards=%d fingerprint %016x != shards=1 %016x\nspec: %s",
					seed, w, r.Fingerprint, base.Fingerprint, spec.MarshalCompact())
			}
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no active congestion spec in 200 seeds — generation broken")
	}
}
