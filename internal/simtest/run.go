package simtest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"flowpulse/internal/control"
	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/metrics"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/resilience"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/trace"
)

// Options tunes a fuzz run.
type Options struct {
	// Deadline is the number of iterations after fault onset within
	// which a persistent fault must be detected. Defaults to 4.
	Deadline int
	// MutateDetect, when set, perturbs the detector configuration
	// before attach. This is the self-test hook: plant a detector bug
	// (e.g. a 10× threshold) and the oracles must catch it.
	MutateDetect func(*detect.Config)
	// Shards selects the engine mode for every execution (see
	// core.Scenario.Shards): 0 is the classic single-threaded engine,
	// N >= 1 the sharded parallel engine with N workers. Fingerprints
	// depend on the mode (0 vs >= 1) but not on N, so a failure found
	// at one shard count reproduces at any other count >= 1.
	Shards int
}

func (o *Options) setDefaults() {
	if o.Deadline == 0 {
		o.Deadline = 4
	}
}

// Result is the outcome of fuzzing one spec.
type Result struct {
	Spec Spec
	// Violations lists every oracle failure; empty means the seed
	// passed.
	Violations []string
	// Fingerprint hashes the run's full metrics timeline (window
	// volumes, events, wire counters, remediation actions, final
	// simulation time). Equal specs must produce equal fingerprints.
	Fingerprint uint64
	// Windows, Alerts, Quarantines summarize activity for reporting.
	Windows, Alerts, Quarantines int
}

// OK reports whether every oracle held.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// runData is everything one execution exposes to the oracles.
type runData struct {
	fingerprint uint64
	audit       []string
	windows     int
	itersDone   int
	stats       fabric.Stats

	// Fat tree.
	events      []core.Event
	timeline    []remediate.Action
	quarantined []topology.LinkID
	blamedGroup []topology.LinkID // trunk group of the faulted pair
	// Divergence runs: the control plane's end-of-run view.
	divergent  []topology.LinkID // links where belief or intent != truth
	adminDown  []topology.LinkID // links admin-down on the fabric (truth)
	planeStats control.Stats
	// Resilience runs: the goodput report at the 90% recovery target.
	goodput metrics.GoodputReport

	// Shared plane (2-job fat tree): per-job pipeline events, in the
	// plane's registration order.
	jobIDs    []uint16
	jobEvents map[uint16][]core.Event

	// Three-level Clos.
	leafAlerts, spineAlerts []detect.Alert

	// Trace-replay oracle findings (fat-tree runs record to an
	// in-memory .fpt trace and replay it offline; the offline
	// event/action stream must match the online one bit-identically).
	traceViolations []string
}

// Run executes a spec twice — the replay oracle — and checks every
// invariant on the first execution.
func Run(spec Spec, opts Options) *Result {
	opts.setDefaults()
	spec.normalize()
	res := &Result{Spec: spec}

	first, err := execute(spec, opts)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("execute: %v", err))
		return res
	}
	second, err := execute(spec, opts)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("replay execute: %v", err))
		return res
	}

	res.Fingerprint = first.fingerprint
	res.Windows = first.windows
	res.Alerts = len(first.events) + len(first.leafAlerts) + len(first.spineAlerts)
	for _, job := range first.jobIDs {
		res.Alerts += len(first.jobEvents[job])
	}
	res.Quarantines = len(first.quarantined)

	res.Violations = append(res.Violations, checkOracles(spec, opts, first)...)
	if first.fingerprint != second.fingerprint {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"replay: fingerprint %016x != %016x — the same spec produced a different metrics timeline",
			first.fingerprint, second.fingerprint))
	}
	return res
}

func execute(spec Spec, opts Options) (*runData, error) {
	if spec.Topo.Kind == Clos3 {
		return executeClos3(spec, opts)
	}
	return executeFatTree(spec, opts)
}

func executeFatTree(spec Spec, opts Options) (*runData, error) {
	if spec.Work.Jobs == 2 {
		return executeSharedFatTree(spec, opts)
	}
	sc := core.Scenario{
		Leaves: spec.Topo.Leaves, Spines: spec.Topo.Spines,
		HostsPerLeaf: spec.Topo.HostsPerLeaf, Trunk: spec.Topo.Trunk,
		Collective:     spec.Work.Collective,
		InterleaveRing: spec.Work.Resilience,
		BytesPerRank:   spec.Work.BytesPerRank,
		Iterations:     spec.Work.Iterations,
		JitterMax:      sim.Duration(spec.Work.JitterPS),
		Seed:           spec.Seed,
		Shards:         opts.Shards,
		Congestion: core.CongestionSpec{
			ECN:           spec.Congest.ECN,
			DCQCN:         spec.Congest.DCQCN,
			Incast:        sim.Duration(spec.Congest.IncastGapPS),
			IncastLeaf:    spec.Congest.IncastLeaf,
			IncastFanout:  spec.Congest.IncastFanout,
			IncastBytes:   spec.Congest.IncastBytes,
			IncastHigh:    spec.Congest.IncastHigh,
			Storm:         sim.Duration(spec.Congest.StormGapPS),
			StormBytes:    spec.Congest.StormBytes,
			Straggler:     sim.Duration(spec.Congest.StragglerPS),
			StragglerLeaf: spec.Congest.StragglerLeaf,
		},
		Divergence: divergenceScenario(spec),
	}
	var refWindows []*telemetry.Window
	if spec.Work.Predictor == core.SimulationModel {
		var err error
		refWindows, err = core.ReferenceRun(sc, 0)
		if err != nil {
			return nil, fmt.Errorf("reference run: %w", err)
		}
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	detCfg := detect.Config{
		Threshold:  spec.DetectThreshold(),
		CEDiscount: spec.Congest.CEDiscount,
	}
	if opts.MutateDetect != nil {
		opts.MutateDetect(&detCfg)
	}
	var remCfg *remediate.Config
	if spec.Work.Remediate {
		remCfg = &remediate.Config{}
	}
	var resCfg *resilience.Config
	if spec.Work.Resilience {
		resCfg = &resilience.Config{}
		rt.Goodput = &metrics.GoodputTimeline{}
	}
	var traceBuf bytes.Buffer
	sys, err := core.Attach(core.Config{
		Net: rt.Net, Control: rt.Plane, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Kind: spec.Work.Predictor, ReferenceWindows: refWindows,
		Detect: detCfg, Job: int(sc.Job), Remediate: remCfg,
		Resilience: resCfg,
		Trace:      trace.NewWriter(&traceBuf), TraceLabel: "simtest",
	})
	if err != nil {
		return nil, err
	}

	data := &runData{}
	f := spec.Fault
	inject := func() {}
	if f.Kind != FaultNone {
		ref := core.LeafSpineLink{LeafOrd: f.Leaf, SpineOrd: f.Spine, Trunk: f.Trunk}
		spine := rt.Topo.Spines()[f.Spine]
		data.blamedGroup = rt.Topo.TrunkLinks(rt.Topo.Leaves()[f.Leaf], spine)
		if f.Kind == FaultFlap {
			// The flap faults both directions. Its upstream half drops
			// traffic from the faulted leaf's hosts toward their ring
			// successor, whose port has a single sender — the victim leaf
			// cannot tell that remote uplink from its own local link
			// (localize's single-sender ambiguity), so blaming the
			// successor's link to the same spine is equally correct.
			succ := rt.Topo.Leaves()[(f.Leaf+1)%spec.Topo.Leaves]
			data.blamedGroup = append(data.blamedGroup, rt.Topo.TrunkLinks(succ, spine)...)
		}
		inject = func() {
			if rt.Goodput != nil {
				rt.Goodput.MarkFault(int64(rt.Engine.Now()))
			}
			injectFatTree(rt, ref, f)
		}
	}
	if f.Kind != FaultNone && f.Onset == 0 {
		inject()
	}
	job := rt.StartTraining(func(_ sim.Time, iter uint32) {
		data.itersDone++
		if f.Kind != FaultNone && int(iter) == f.Onset && f.Onset > 0 {
			inject()
		}
	}, nil)
	if resCfg != nil {
		if err := sys.BindWorkload(job); err != nil {
			return nil, fmt.Errorf("bind workload: %w", err)
		}
	}
	rt.Run()
	sys.Flush(rt.Engine.Now())

	data.windows = sys.Windows
	data.events = sys.Events
	data.stats = rt.Net.Stats()
	data.audit = rt.Net.AuditConservation()
	if rem := sys.Remediator(); rem != nil {
		data.timeline = rem.Timeline
		data.quarantined = rem.Quarantined()
	}
	if rt.Goodput != nil {
		data.goodput = rt.Goodput.Report(0.9)
	}
	data.fingerprint = fingerprintFatTree(rt, sys)
	if spec.Diverge.Active() {
		data.divergent = rt.Plane.Divergent()
		data.planeStats = rt.Plane.Stats()
		for id := range rt.Topo.Links {
			if !rt.Net.LinkAdminUp(topology.LinkID(id)) {
				data.adminDown = append(data.adminDown, topology.LinkID(id))
			}
		}
		data.fingerprint = fingerprintDivergence(data.fingerprint, rt.Plane)
	} else {
		// Offline replay re-derives remediation from the recorded alert
		// stream; it cannot re-derive the control plane's reconcile
		// decisions (belief state is not in the trace — DESIGN.md
		// decision 15), so the replay oracle only runs without
		// divergence.
		data.traceViolations = checkTraceReplay(sys.TraceWriter(), &traceBuf)
	}
	return data, nil
}

// divergenceScenario maps a spec's divergence regime onto the scenario
// knobs (zero when off, so the build path is byte-identical).
func divergenceScenario(spec Spec) core.DivergenceSpec {
	d := spec.Diverge
	if !d.Active() {
		return core.DivergenceSpec{}
	}
	out := core.DivergenceSpec{
		FailSkip:   d.FailSkip,
		FailPushes: d.FailPushes,
		AuditEvery: sim.Duration(d.AuditPS),
	}
	for _, st := range d.Stale {
		if st.AtPS <= 0 {
			continue
		}
		out.Stale = append(out.Stale, core.StaleSpec{
			At:   sim.Time(st.AtPS),
			Link: core.LeafSpineLink{LeafOrd: st.Leaf, SpineOrd: st.Spine, Trunk: st.Trunk},
			Up:   false,
		})
	}
	return out
}

// fingerprintDivergence folds the control plane's observable state into
// the replay fingerprint — divergence runs only, so classic seeds keep
// their historical fingerprints.
func fingerprintDivergence(base uint64, plane *control.Plane) uint64 {
	f := newFP()
	f.u64(base)
	st := plane.Stats()
	f.i64(int64(st.ChangeSets))
	f.i64(int64(st.Committed))
	f.i64(int64(st.RolledBack))
	f.i64(int64(st.Pushed))
	f.i64(int64(st.PushesDropped))
	f.i64(int64(st.VerifyMismatches))
	f.i64(int64(st.Retries))
	f.i64(int64(st.StaleInjected))
	f.i64(int64(st.StaleAdopted))
	f.i64(int64(st.Reconciles))
	f.i64(int64(st.Audits))
	f.i64(int64(st.AuditRepairs))
	f.i64(int64(st.Divergences))
	f.i64(int64(st.Reconciled))
	f.i64(int64(st.TotalDiverged))
	for _, ep := range plane.Episodes() {
		f.i64(int64(ep))
	}
	for _, l := range plane.Divergent() {
		f.i64(int64(l))
	}
	return f.sum()
}

// checkTraceReplay is the record/replay oracle: the execution recorded
// itself to an in-memory trace; replaying that trace offline must
// reproduce the online event/action stream bit for bit (equal
// FNV-64a fingerprints).
func checkTraceReplay(w *trace.Writer, buf *bytes.Buffer) []string {
	if err := w.Err(); err != nil {
		return []string{fmt.Sprintf("trace: recording failed: %v", err)}
	}
	rr, err := trace.Replay(bytes.NewReader(buf.Bytes()), trace.ReplayOptions{})
	if err != nil {
		return []string{fmt.Sprintf("trace: replay failed: %v", err)}
	}
	if rr.Trailer == nil {
		return []string{"trace: recording has no trailer"}
	}
	if !rr.Matches() {
		return []string{fmt.Sprintf(
			"trace: offline replay fingerprint %016x != online %016x — replay diverged from the recorded run",
			rr.Fingerprint, rr.Trailer.Fingerprint)}
	}
	return nil
}

func injectFatTree(rt *core.Runtime, ref core.LeafSpineLink, f FaultSpec) {
	switch f.Kind {
	case FaultBernoulli:
		if f.Upstream {
			rt.InjectSilentDropUpstream(ref, f.Rate)
		} else {
			rt.InjectSilentDrop(ref, f.Rate)
		}
	case FaultBlackHole:
		link := rt.Link(ref)
		rt.Net.InjectFault(link, rt.Net.DirToward(link, rt.Topo.Leaves()[ref.LeafOrd]), fault.BlackHole{})
	case FaultGE:
		link := rt.Link(ref)
		toward := rt.Topo.Leaves()[ref.LeafOrd]
		if f.Upstream {
			toward = rt.Topo.Spines()[ref.SpineOrd]
		}
		// Rate is the target steady-state loss; solve for pGB given the
		// burst shape (piB·lossBad = Rate, piB = pGB/(pGB+pBG)).
		piB := f.Rate / f.GELossBad
		pGB := piB * f.GEPBG / (1 - piB)
		rt.Net.InjectFault(link, rt.Net.DirToward(link, toward),
			fault.NewGilbertElliott(pGB, f.GEPBG, 0, f.GELossBad,
				sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("simtest/ge/%d", link))))
	case FaultFlap:
		rt.InjectLossyFlap(ref, sim.Duration(f.FlapPeriodPS), sim.Duration(f.FlapDownPS),
			sim.Duration(f.FlapPhasePS), f.Rate)
	}
}

// executeSharedFatTree runs a 2-job spec on the shared monitoring
// plane: one tap per switch, one pipeline per job, aggregate-symmetry
// detection. The fault (when present) is a downstream Bernoulli drop
// keyed to job 1's iteration clock — normalize() pinned the envelope.
func executeSharedFatTree(spec Spec, opts Options) (*runData, error) {
	sc := core.Scenario{
		Leaves: spec.Topo.Leaves, Spines: spec.Topo.Spines,
		HostsPerLeaf: spec.Topo.HostsPerLeaf, Trunk: spec.Topo.Trunk,
		Collective:   spec.Work.Collective,
		BytesPerRank: spec.Work.BytesPerRank,
		Iterations:   spec.Work.Iterations,
		JitterMax:    sim.Duration(spec.Work.JitterPS),
		Seed:         spec.Seed,
		Shards:       opts.Shards,
		Jobs: []core.JobScenario{
			{Job: 1, HostIx: 0},
			{Job: 2, HostIx: 1},
		},
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	detCfg := detect.Config{Threshold: spec.DetectThreshold()}
	if opts.MutateDetect != nil {
		opts.MutateDetect(&detCfg)
	}
	var traceBuf bytes.Buffer
	scfg := core.SharedConfig{
		Net: rt.Net, Control: rt.Plane, Stack: rt.Stack,
		Trace: trace.NewWriter(&traceBuf), TraceLabel: "simtest-shared",
	}
	for _, jr := range rt.Jobs {
		scfg.Jobs = append(scfg.Jobs, core.SharedJobConfig{
			Job: jr.Spec.Job, Demand: jr.Coll.Demand(), Detect: detCfg,
		})
	}
	sys, err := core.AttachShared(scfg)
	if err != nil {
		return nil, err
	}

	data := &runData{jobEvents: map[uint16][]core.Event{}}
	f := spec.Fault
	ref := core.LeafSpineLink{LeafOrd: f.Leaf, SpineOrd: f.Spine, Trunk: f.Trunk}
	if f.Kind == FaultBernoulli && f.Onset == 0 {
		rt.InjectSilentDrop(ref, f.Rate)
	}
	first := rt.Jobs[0].Spec.Job
	rt.StartAllJobs(func(_ sim.Time, job uint16, iter uint32) {
		if job != first {
			return
		}
		data.itersDone++
		if f.Kind == FaultBernoulli && int(iter) == f.Onset && f.Onset > 0 {
			rt.InjectSilentDrop(ref, f.Rate)
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())

	for _, job := range sys.Jobs() {
		p := sys.Pipeline(job)
		data.jobIDs = append(data.jobIDs, job)
		data.jobEvents[job] = p.Events
		data.windows += p.Windows
	}
	data.stats = rt.Net.Stats()
	data.audit = rt.Net.AuditConservation()
	data.fingerprint = fingerprintShared(rt, sys)
	data.traceViolations = checkTraceReplay(sys.TraceWriter(), &traceBuf)
	return data, nil
}

func executeClos3(spec Spec, opts Options) (*runData, error) {
	sc := core.Clos3Scenario{
		Pods: spec.Topo.Pods, LeavesPerPod: spec.Topo.LeavesPerPod,
		SpinesPerPod: spec.Topo.SpinesPerPod, CoresPerGroup: spec.Topo.CoresPerGroup,
		BytesPerRank: spec.Work.BytesPerRank,
		Iterations:   spec.Work.Iterations,
		Seed:         spec.Seed,
		Shards:       opts.Shards,
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	detCfg := detect.Config{Threshold: spec.DetectThreshold()}
	if opts.MutateDetect != nil {
		opts.MutateDetect(&detCfg)
	}
	sys := core.AttachClos3(rt, detCfg, predict.LearnedConfig{})

	data := &runData{}
	f := spec.Fault
	inject := func() {
		if f.CoreSpine {
			rt.InjectCoreSpineDrop(f.Pod, f.SpineInPod, f.CoreIx, f.Rate)
		} else {
			rt.InjectSpineLeafDrop(f.Pod, f.LeafInPod, f.SpineInPod, f.Rate)
		}
	}
	if f.Kind != FaultNone && f.Onset == 0 {
		inject()
	}
	rt.StartTraining(func(_ sim.Time, iter uint32) {
		data.itersDone++
		if f.Kind != FaultNone && int(iter) == f.Onset && f.Onset > 0 {
			inject()
		}
	})
	rt.Run()
	sys.Flush(rt.Engine.Now())

	data.windows = sys.Windows
	data.leafAlerts = sys.LeafEvents
	data.spineAlerts = sys.SpineEvents
	data.stats = rt.Net.Stats()
	data.audit = rt.Net.AuditConservation()
	data.fingerprint = fingerprintClos3(rt, sys)
	return data, nil
}

// --- oracles ---

func checkOracles(spec Spec, opts Options, d *runData) []string {
	var bad []string
	add := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	// Oracle 1: byte conservation on every link, NIC, and switch port.
	for _, msg := range d.audit {
		add("conservation: %s", msg)
	}
	// Oracle 1b: offline replay of the run's own recording is
	// bit-identical (fat-tree runs; see checkTraceReplay).
	bad = append(bad, d.traceViolations...)
	if d.itersDone != spec.Work.Iterations {
		add("workload: completed %d of %d iterations", d.itersDone, spec.Work.Iterations)
	}

	if spec.Topo.Kind == Clos3 {
		return append(bad, checkClos3Oracles(spec, opts, d)...)
	}
	if spec.Work.Jobs == 2 {
		return append(bad, checkSharedOracles(spec, opts, d)...)
	}
	if spec.Diverge.Active() {
		// Divergence runs swap the detection/localization/remediation
		// oracles (a stale belief legitimately alerts on healthy links
		// and withholds quarantines) for the convergence pair below.
		return append(bad, checkDivergenceOracles(spec, d)...)
	}

	f := spec.Fault
	congested := spec.Congest.Active()
	if f.Kind == FaultNone {
		if congested {
			// Oracle 2 (congestion form): adversarial traffic may trip
			// deviation alerts — incast queues and storms genuinely skew
			// windows — but it must never *confirm* into a quarantine.
			// Quarantining a healthy link because tenants sent traffic is
			// exactly the false positive the paper's design forbids.
			for _, a := range d.timeline {
				if a.Kind == remediate.ActionQuarantine {
					add("congestion: pure congestion (no fault) quarantined link %d: %s", a.Link, a)
					break
				}
			}
			return bad
		}
		// Oracle 2: a healthy fabric is silent.
		for _, e := range d.events {
			add("clean run: alert %s", e.Alert)
			break
		}
		if len(d.timeline) != 0 {
			add("clean run: remediation acted: %s", d.timeline[0])
		}
		return bad
	}

	// Oracle 2 (prefix form): iterations strictly before onset are
	// clean. The fault injects when iteration Onset completes, but that
	// iteration's window only closes when the next iteration's traffic
	// arrives — so window Onset straddles the injection and may
	// legitimately catch the first retransmission spillover. Congested
	// runs waive this: the storm skews pre-onset windows by design, and
	// the quarantine/deadline oracles below carry the burden instead.
	if !congested {
		for _, e := range d.events {
			if int(e.Alert.Iter) < f.Onset {
				add("clean prefix: alert before fault onset %d: %s", f.Onset, e.Alert)
				break
			}
		}
	}

	// Oracle 3: the fault is detected (deficit alert) — persistent
	// kinds within the deadline, the flap by end of run — and some
	// deficit alert's verdict blames the true link's trunk group.
	deadline := f.Onset + opts.Deadline
	if f.Kind == FaultGE {
		// Bursty loss only matches its steady-state rate on average;
		// give the burst process twice the windows to show itself.
		deadline = f.Onset + 2*opts.Deadline
	}
	detected, localized := false, false
	for _, e := range d.events {
		a := e.Alert
		if int(a.Iter) <= f.Onset {
			continue
		}
		if a.Deviation < 0 {
			if int(a.Iter) <= deadline || f.Kind == FaultFlap {
				detected = true
			}
			for _, l := range e.Verdict.Links {
				if linkInGroup(l, d.blamedGroup) {
					localized = true
				}
			}
			continue
		}
		// An intermittent link under per-packet least-loaded spray can
		// hide its own deficit: dropped packets are retransmitted and
		// delivered before the window closes, while the rerouted retx
		// traffic lands as a *surplus* on the victim's sibling ports.
		// Depending on where the down window falls relative to window
		// closes, that surplus — on the faulted leaf or its ring
		// successor (the flap is bidirectional) — is the flap's only
		// signature, and it pins the loss to the same trunk group the
		// deficit would have.
		if f.Kind == FaultFlap && a.Deviation > 0 &&
			(a.LeafOrdinal == f.Leaf || a.LeafOrdinal == (f.Leaf+1)%spec.Topo.Leaves) {
			detected = true
			localized = true
		}
	}
	if !detected {
		if f.Kind == FaultFlap {
			add("detection: flap on leaf %d / spine %d never produced a deficit or sibling-surplus alert", f.Leaf, f.Spine)
		} else {
			add("detection: %s fault (rate %.3f, onset %d) not detected by iteration %d",
				f.Kind, f.Rate, f.Onset, deadline)
		}
	}
	if !localized {
		add("localization: no deficit alert blamed the faulted leaf %d / spine %d group", f.Leaf, f.Spine)
	}

	// Oracle 4: remediation quarantines converge on the faulted group
	// and flap damping bounds re-quarantine churn. Congested faulted
	// runs waive it: storm-shifted spray balance can implicate
	// bystanders the innocent-quarantine check would flag, and the
	// combined envelope's burden is the detection deadline above.
	if spec.Work.Remediate && !congested {
		bad = append(bad, checkRemediation(spec, d)...)
	}
	// Oracle 5: a quarantine that halved the victim leaf must have
	// re-planned the ring, and the workload must have recovered.
	// (normalize disables Resilience whenever congestion is active.)
	if spec.Work.Resilience {
		bad = append(bad, checkResilience(spec, d)...)
	}
	return bad
}

// checkResilience is the workload-repair oracle. It is conditional on
// the true link actually being quarantined (oracle 4 enforces that for
// persistent faults): once the control plane halves the victim leaf,
// the re-planner must fire, and the goodput timeline must show a
// sustained return to ≥90% of the pre-fault baseline — remediation
// that repairs the fabric but strands the workload is a failure. The
// clean-run side (no replan actions on a healthy fabric) is already
// covered by oracle 2's empty-timeline check.
func checkResilience(spec Spec, d *runData) []string {
	trueQuar := false
	for _, a := range d.timeline {
		if a.Kind == remediate.ActionQuarantine && linkInGroup(a.Link, d.blamedGroup) {
			trueQuar = true
			break
		}
	}
	if !trueQuar {
		return nil
	}
	var bad []string
	replans := 0
	for _, a := range d.timeline {
		if a.Kind == remediate.ActionReplan {
			replans++
		}
	}
	f := spec.Fault
	if replans == 0 {
		bad = append(bad, fmt.Sprintf(
			"resilience: quarantine halved leaf %d but the ring was never re-planned", f.Leaf))
	}
	if !d.goodput.Recovered {
		bad = append(bad, fmt.Sprintf(
			"resilience: goodput never recovered to 90%% of baseline after the leaf %d / spine %d quarantine (baseline %.4g it/ps, during %.4g)",
			f.Leaf, f.Spine, d.goodput.Baseline, d.goodput.During))
	}
	return bad
}

// checkDivergenceOracles asserts the control plane's convergence
// contract under injected belief/truth splits: by end of run the
// believed topology equals the live one (verify-own-writes repaired
// every dropped push; reconciliation or the audit adopted every stale
// advertisement), and no link is administratively down on the fabric
// without the remediator owning it — i.e. no healthy link was wrongly
// written down and left stranded.
func checkDivergenceOracles(spec Spec, d *runData) []string {
	var bad []string
	add := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	for _, l := range d.divergent {
		add("divergence: link %d belief/intent still split from truth at end of run (stats %+v)",
			l, d.planeStats)
	}
	quar := map[topology.LinkID]bool{}
	for _, l := range d.quarantined {
		quar[l] = true
	}
	for _, l := range d.adminDown {
		if !quar[l] {
			add("divergence: link %d is admin-down on the fabric but not quarantined — a wrong write was never rolled back", l)
		}
	}
	if st := d.planeStats; st.RolledBack > 0 {
		// The envelope pins FailPushes within the retry budget, so every
		// ChangeSet must commit; a rollback means verify gave up on a
		// push the injection schedule says should have landed.
		add("divergence: %d ChangeSets rolled back under an in-budget injection schedule (stats %+v)",
			st.RolledBack, st)
	}
	return bad
}

func checkRemediation(spec Spec, d *runData) []string {
	var bad []string
	add := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	f := spec.Fault

	// No innocent link is quarantined under a near-threshold steady
	// loss *before the true link is caught*. (A blackhole is exempt:
	// the retransmission storm it causes legitimately shifts spray
	// balance enough to implicate bystanders. After the true link is
	// admin-downed, the fleet-wide spray re-equilibration skews other
	// leaves' ingress splits by 1–2% — persistently, so the confirm
	// streak can trip on an innocent link. No static predictor can
	// model that shifted equilibrium, so post-remediation collateral
	// is accepted; damping still bounds the churn below.)
	trueQuarAt := sim.Time(0)
	for _, a := range d.timeline {
		if a.Kind == remediate.ActionQuarantine && linkInGroup(a.Link, d.blamedGroup) {
			trueQuarAt = a.At
			break
		}
	}
	quarCount := map[topology.LinkID]int{}
	for _, a := range d.timeline {
		if a.Kind != remediate.ActionQuarantine {
			continue
		}
		quarCount[a.Link]++
		if f.Kind == FaultBernoulli && !linkInGroup(a.Link, d.blamedGroup) &&
			(trueQuarAt == 0 || a.At < trueQuarAt) {
			add("remediation: quarantined innocent link %d (fault is on leaf %d / spine %d)",
				a.Link, f.Leaf, f.Spine)
		}
	}

	// Damping bound: with the default penalty 1000 / suppress 2200 and
	// a half-life far beyond these runs, a link can be quarantined at
	// most floor(suppress/penalty)+1 = 3 times before damping pins it.
	const dampBound = 3
	for link, n := range quarCount {
		if n > dampBound {
			add("remediation: link %d quarantined %d times — oscillating past the damping bound %d",
				link, n, dampBound)
		}
	}

	// A persistent fault must end quarantined: probes sample the same
	// loss process as data, so a Bernoulli or blackhole link cannot
	// earn M clean rounds. (Bursty and flapping links legitimately can,
	// while damping keeps the churn bounded above.)
	if f.Kind == FaultBernoulli || f.Kind == FaultBlackHole {
		if len(d.quarantined) == 0 {
			add("remediation: persistent %s fault never quarantined", f.Kind)
		}
		if f.Kind == FaultBernoulli {
			// Only innocents caught before the true link count — the
			// post-remediation equilibrium shift above can legitimately
			// hold a bystander down through the end of a short run.
			preTrue := map[topology.LinkID]bool{}
			for _, a := range d.timeline {
				if a.Kind == remediate.ActionQuarantine && !linkInGroup(a.Link, d.blamedGroup) &&
					(trueQuarAt == 0 || a.At < trueQuarAt) {
					preTrue[a.Link] = true
				}
			}
			for _, l := range d.quarantined {
				if preTrue[l] {
					add("remediation: innocent link %d still quarantined at end", l)
				}
			}
		}
	}
	return bad
}

// checkSharedOracles are the 2-job variants of oracles 2 and 3. Both
// jobs span every leaf, so a downstream Bernoulli drop is on both
// rings' paths: EACH job's pipeline must stay clean before onset and
// flag the faulted leaf within the deadline. Verdict links are not
// required — per-job sender signatures comb under shared spray, so the
// shared plane localizes at alert (leaf/uplink) granularity and leaves
// link blame to cross-job corroboration (not attached here).
func checkSharedOracles(spec Spec, opts Options, d *runData) []string {
	var bad []string
	add := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	f := spec.Fault

	if f.Kind == FaultNone {
		for _, job := range d.jobIDs {
			if evs := d.jobEvents[job]; len(evs) != 0 {
				add("clean shared run: job %d alert %s", job, evs[0].Alert)
			}
		}
		return bad
	}

	deadline := f.Onset + opts.Deadline
	for _, job := range d.jobIDs {
		detected := false
		for _, e := range d.jobEvents[job] {
			a := e.Alert
			if int(a.Iter) < f.Onset {
				add("clean prefix: job %d alert before fault onset %d: %s", job, f.Onset, a)
				break
			}
		}
		for _, e := range d.jobEvents[job] {
			a := e.Alert
			if int(a.Iter) > f.Onset && int(a.Iter) <= deadline &&
				a.Deviation < 0 && a.LeafOrdinal == f.Leaf {
				detected = true
				break
			}
		}
		if !detected {
			add("detection: job %d did not flag the %s fault on leaf %d (rate %.3f, onset %d) by iteration %d",
				job, f.Kind, f.Leaf, f.Rate, f.Onset, deadline)
		}
	}
	return bad
}

func checkClos3Oracles(spec Spec, opts Options, d *runData) []string {
	var bad []string
	add := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	f := spec.Fault

	if f.Kind == FaultNone {
		if n := len(d.leafAlerts) + len(d.spineAlerts); n != 0 {
			add("clean clos3 run: %d alerts (first: %s)", n, firstAlert(d))
		}
		return bad
	}
	for _, a := range append(append([]detect.Alert(nil), d.leafAlerts...), d.spineAlerts...) {
		if int(a.Iter) <= f.Onset {
			add("clean prefix: clos3 alert before onset %d: %s", f.Onset, a)
			break
		}
	}
	victim, level := d.leafAlerts, "leaf"
	if f.CoreSpine {
		victim, level = d.spineAlerts, "spine"
	}
	deadline := f.Onset + opts.Deadline
	detected := false
	for _, a := range victim {
		if int(a.Iter) > f.Onset && int(a.Iter) <= deadline && a.Deviation < 0 {
			detected = true
			break
		}
	}
	if !detected {
		add("detection: clos3 %s-level fault (rate %.3f, onset %d) not seen by %s monitors by iteration %d",
			faultLevelName(f), f.Rate, f.Onset, level, deadline)
	}
	return bad
}

func faultLevelName(f FaultSpec) string {
	if f.CoreSpine {
		return "core-spine"
	}
	return "spine-leaf"
}

func firstAlert(d *runData) detect.Alert {
	if len(d.leafAlerts) > 0 {
		return d.leafAlerts[0]
	}
	return d.spineAlerts[0]
}

func linkInGroup(l topology.LinkID, group []topology.LinkID) bool {
	for _, g := range group {
		if g == l {
			return true
		}
	}
	return false
}

// --- fingerprinting ---

// fp accumulates the replay fingerprint over the run's observable
// timeline.
type fp struct {
	h   hash.Hash64
	buf [8]byte
}

func newFP() *fp { return &fp{h: fnv.New64a()} }

func (f *fp) u64(v uint64) {
	binary.LittleEndian.PutUint64(f.buf[:], v)
	f.h.Write(f.buf[:])
}
func (f *fp) i64(v int64)   { f.u64(uint64(v)) }
func (f *fp) f64(v float64) { f.u64(math.Float64bits(v)) }
func (f *fp) str(s string)  { f.h.Write([]byte(s)); f.u64(uint64(len(s))) }
func (f *fp) sum() uint64   { return f.h.Sum64() }
func (f *fp) stats(s fabric.Stats) {
	f.u64(s.Sent)
	f.u64(s.SentBytes)
	f.u64(s.Delivered)
	f.u64(s.DeliveredBytes)
	f.u64(s.FaultDropped)
	f.u64(s.RouteDropped)
	f.u64(s.RouteDroppedBytes)
	f.u64(s.AdminDropped)
	f.u64(s.PFCPauses)
	f.u64(s.ProbesSent)
	f.u64(s.ProbesLost)
}

func (f *fp) links(net *fabric.Network) {
	topo := net.Topology()
	for id := range topo.Links {
		for _, dir := range []fabric.Direction{fabric.DirAtoB, fabric.DirBtoA} {
			ls := net.LinkStats(topology.LinkID(id), dir)
			f.u64(ls.Sent)
			f.u64(ls.SentBytes)
			f.u64(ls.Delivered)
			f.u64(ls.DeliveredBytes)
			f.u64(ls.FaultDropped)
			f.u64(ls.FaultDroppedBytes)
			f.u64(ls.AdminDropped)
			f.u64(ls.AdminDroppedBytes)
		}
	}
}

func (f *fp) alert(a detect.Alert) {
	f.i64(int64(a.Leaf))
	f.i64(int64(a.LeafOrdinal))
	f.i64(int64(a.Uplink))
	f.i64(int64(a.Iter))
	f.f64(a.Predicted)
	f.f64(a.Observed)
	f.f64(a.Deviation)
	f.i64(int64(a.At))
}

func fingerprintFatTree(rt *core.Runtime, sys *core.System) uint64 {
	f := newFP()
	f.i64(int64(rt.Engine.Now()))
	f.links(rt.Net)
	f.stats(rt.Net.Stats())
	for _, ws := range sys.Scores {
		w := ws.Window
		f.i64(int64(w.Leaf))
		f.i64(int64(w.Iter))
		f.i64(int64(w.OpenedAt))
		f.i64(int64(w.ClosedAt))
		for _, b := range w.PortBytes {
			f.i64(b)
		}
		f.f64(ws.Score)
	}
	for _, e := range sys.Events {
		f.alert(e.Alert)
		f.i64(int64(e.Verdict.Kind))
		for _, l := range e.Verdict.Links {
			f.i64(int64(l))
		}
	}
	if rem := sys.Remediator(); rem != nil {
		for _, a := range rem.Timeline {
			f.i64(int64(a.At))
			f.i64(int64(a.Kind))
			f.i64(int64(a.Link))
			f.str(a.Detail)
		}
	}
	return f.sum()
}

func fingerprintShared(rt *core.Runtime, sys *core.SharedSystem) uint64 {
	f := newFP()
	f.i64(int64(rt.Engine.Now()))
	f.links(rt.Net)
	f.stats(rt.Net.Stats())
	for _, job := range sys.Jobs() {
		p := sys.Pipeline(job)
		f.u64(uint64(job))
		for _, ws := range p.Scores {
			w := ws.Window
			f.i64(int64(w.Leaf))
			f.i64(int64(w.Job))
			f.i64(int64(w.Iter))
			f.i64(int64(w.OpenedAt))
			f.i64(int64(w.ClosedAt))
			for _, b := range w.PortBytes {
				f.i64(b)
			}
			for _, b := range w.AggPortBytes {
				f.i64(b)
			}
			f.f64(ws.Score)
		}
		for _, e := range p.Events {
			f.alert(e.Alert)
			f.i64(int64(e.Verdict.Kind))
			for _, l := range e.Verdict.Links {
				f.i64(int64(l))
			}
		}
	}
	return f.sum()
}

func fingerprintClos3(rt *core.Clos3Runtime, sys *core.Clos3System) uint64 {
	f := newFP()
	f.i64(int64(rt.Engine.Now()))
	f.links(rt.Net)
	f.stats(rt.Net.Stats())
	f.i64(int64(sys.Windows))
	for _, a := range sys.LeafEvents {
		f.alert(a)
	}
	for _, a := range sys.SpineEvents {
		f.alert(a)
	}
	return f.sum()
}
