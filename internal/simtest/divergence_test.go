package simtest

import "testing"

// TestWithDivergenceEnvelope: the -divergence sweep helper turns
// remediated single-job fat-tree seeds into normalized divergence
// specs inside the envelope the convergence oracles rest on, and
// leaves every other seed untouched.
func TestWithDivergenceEnvelope(t *testing.T) {
	forced, plain := 0, 0
	for seed := uint64(0); seed < 300; seed++ {
		spec := Generate(seed)
		got := WithDivergence(spec)
		if !spec.Work.Remediate || spec.Topo.Kind != FatTree2 || spec.Work.Jobs != 0 {
			plain++
			if got != spec {
				t.Fatalf("seed %d: WithDivergence changed a spec outside the envelope", seed)
			}
			continue
		}
		forced++
		d := got.Diverge
		if !d.Active() {
			t.Fatalf("seed %d: WithDivergence left a remediated spec without divergence: %s", seed, got.MarshalCompact())
		}
		norm := got
		norm.normalize()
		if norm != got {
			t.Fatalf("seed %d: WithDivergence returned a non-normalized spec: %s", seed, got.MarshalCompact())
		}
		if got.Work.Resilience || got.Congest.Active() {
			t.Fatalf("seed %d: divergence spec kept the resilience/congestion twists: %s", seed, got.MarshalCompact())
		}
		if got.Work.Iterations < 8 {
			t.Fatalf("seed %d: divergence spec too short (%d iterations)", seed, got.Work.Iterations)
		}
		if d.FailPushes < 1 || d.FailPushes > 2 {
			t.Fatalf("seed %d: FailPushes %d outside the retry budget", seed, d.FailPushes)
		}
		est := int64(estIterTime(&got))
		if d.AuditPS < est || d.AuditPS > 3*est {
			t.Fatalf("seed %d: AuditPS %d outside [est, 3·est] (est %d)", seed, d.AuditPS, est)
		}
		for i, st := range d.Stale {
			if st.AtPS == 0 {
				if st != (StaleFlip{}) {
					t.Fatalf("seed %d: unused stale slot %d carries fields: %+v", seed, i, st)
				}
				continue
			}
			// The last flip must leave ≥4 iterations of headroom so the
			// audit provably runs after it (real iterations are never
			// shorter than the estimate).
			if st.AtPS < est || st.AtPS > int64(got.Work.Iterations-4)*est {
				t.Fatalf("seed %d: stale flip %d at %dps outside [est, (iters-4)·est]", seed, i, st.AtPS)
			}
			if st.Leaf >= got.Topo.Leaves || st.Spine >= got.Topo.Spines || st.Trunk >= got.Topo.Trunk {
				t.Fatalf("seed %d: stale flip %d names a link outside the fabric: %+v", seed, i, st)
			}
		}
	}
	if forced == 0 || plain == 0 {
		t.Fatalf("degenerate sample: %d forced, %d plain", forced, plain)
	}
}

// TestDivergenceSpecJSONRoundTrip: divergence fields survive the
// compact repro encoding — a shrunk -divergence failure pasted back
// into -spec reruns the identical scenario.
func TestDivergenceSpecJSONRoundTrip(t *testing.T) {
	ran := 0
	for seed := uint64(0); seed < 200; seed++ {
		spec := WithDivergence(Generate(seed))
		if !spec.Diverge.Active() {
			continue
		}
		ran++
		back, err := ParseSpec(spec.MarshalCompact())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back != spec {
			t.Fatalf("seed %d: round trip changed the spec:\n%s\n%s", seed, spec.MarshalCompact(), back.MarshalCompact())
		}
	}
	if ran == 0 {
		t.Fatal("no divergence spec in 200 seeds — WithDivergence broken")
	}
}

// TestNormalizeClearsDivergenceOutsideEnvelope: divergence cannot
// escape its envelope — hand-written specs (or shrink candidates) that
// drop remediation, add a second job, or switch topologies lose the
// DivergeSpec entirely rather than running injections no oracle
// covers.
func TestNormalizeClearsDivergenceOutsideEnvelope(t *testing.T) {
	var base Spec
	for seed := uint64(0); seed < 300; seed++ {
		base = WithDivergence(Generate(seed))
		if base.Diverge.Active() {
			break
		}
	}
	if !base.Diverge.Active() {
		t.Fatal("no divergence spec in 300 seeds — WithDivergence broken")
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unremediated", func(s *Spec) { s.Work.Remediate = false }},
		{"two-job", func(s *Spec) { s.Work.Jobs = 2 }},
		{"clos3", func(s *Spec) { s.Topo.Kind = Clos3 }},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		spec.normalize()
		if spec.Diverge != (DivergeSpec{}) {
			t.Errorf("%s: normalize kept divergence outside the envelope: %+v", tc.name, spec.Diverge)
		}
	}
	// Inside the envelope the stale schedule is clamped, not cleared.
	spec := base
	spec.Diverge.Stale[0].AtPS = 1 // far below est
	spec.normalize()
	if est := int64(estIterTime(&spec)); spec.Diverge.Stale[0].AtPS < est {
		t.Errorf("normalize left a stale flip before the first iteration: %d < %d", spec.Diverge.Stale[0].AtPS, est)
	}
}

// TestDivergenceSeedsRun drives divergence specs through the full
// oracle set: every ChangeSet must commit through verification, every
// stale belief must reconverge by the audit, and no healthy link may
// end the run wrongly admin-down.
func TestDivergenceSeedsRun(t *testing.T) {
	want := 3
	if testing.Short() {
		want = 1
	}
	ran := 0
	for seed := uint64(0); seed < 300 && ran < want; seed++ {
		spec := WithDivergence(Generate(seed))
		if !spec.Diverge.Active() {
			continue
		}
		if res := Run(spec, Options{}); !res.OK() {
			t.Errorf("seed %d: %v", seed, res.Violations)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no divergence spec in 300 seeds — WithDivergence broken")
	}
}

// TestDivergenceFingerprintStable: a divergence run's fingerprint
// (which folds the plane's counters) is deterministic across repeated
// runs — the property the -divergence repro command rests on.
func TestDivergenceFingerprintStable(t *testing.T) {
	var spec Spec
	found := false
	for seed := uint64(0); seed < 300; seed++ {
		spec = WithDivergence(Generate(seed))
		if spec.Diverge.Active() {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no divergence spec in 300 seeds")
	}
	a, b := Run(spec, Options{}), Run(spec, Options{})
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("divergence fingerprint unstable: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
}
