package simtest

// Shrinking: a failing spec is simplified by a fixed list of
// transformations, each accepted only if the shrunken spec still fails
// some oracle (not necessarily the same one — any failure is a bug, and
// the smaller repro is always the better report). Transformations apply
// greedily to fixpoint under a run budget; normalize() keeps every
// candidate inside the valid envelope, so the shrinker cannot wander
// into specs the runner refuses.

import "flowpulse/internal/core"

// ShrinkBudget is the default number of Run invocations a shrink may
// spend.
const ShrinkBudget = 40

// shrinkStep is one candidate simplification. It returns false when it
// does not apply (already minimal).
type shrinkStep struct {
	name  string
	apply func(*Spec) bool
}

var shrinkSteps = []shrinkStep{
	{"fewer-iterations", func(s *Spec) bool {
		next := s.Work.Iterations / 2
		if next >= s.Work.Iterations {
			return false
		}
		s.Work.Iterations = next // normalize() restores the floor
		return true
	}},
	{"smaller-collective", func(s *Spec) bool {
		if s.Work.BytesPerRank <= 256<<10 {
			return false
		}
		s.Work.BytesPerRank /= 2
		return true
	}},
	{"fewer-leaves", func(s *Spec) bool {
		if s.Topo.Kind != FatTree2 || s.Topo.Leaves <= 4 {
			return false
		}
		s.Topo.Leaves = s.Topo.Leaves/2 + 2
		return true
	}},
	{"fewer-spines", func(s *Spec) bool {
		if s.Topo.Kind != FatTree2 || s.Topo.Spines <= 2 {
			return false
		}
		s.Topo.Spines = s.Topo.Spines/2 + 1
		return true
	}},
	{"single-job", func(s *Spec) bool {
		// Drop the shared plane first: a bug that survives as a plain
		// single-job run reproduces without the 2-job machinery (and
		// frees single-host-leaves below to shrink further).
		if s.Work.Jobs == 0 {
			return false
		}
		s.Work.Jobs = 0
		return true
	}},
	{"single-host-leaves", func(s *Spec) bool {
		if s.Topo.Kind != FatTree2 || s.Topo.HostsPerLeaf <= 1 {
			return false
		}
		s.Topo.HostsPerLeaf = 1
		return true
	}},
	{"untrunked", func(s *Spec) bool {
		if s.Topo.Kind != FatTree2 || s.Topo.Trunk <= 1 {
			return false
		}
		s.Topo.Trunk = 1
		s.Fault.Trunk = 0
		return true
	}},
	{"no-jitter", func(s *Spec) bool {
		if s.Work.JitterPS == 0 {
			return false
		}
		s.Work.JitterPS = 0
		return true
	}},
	{"ring-collective", func(s *Spec) bool {
		if s.Topo.Kind != FatTree2 || s.Work.Collective == core.RingAllReduce {
			return false
		}
		s.Work.Collective = core.RingAllReduce
		return true
	}},
	{"earlier-onset", func(s *Spec) bool {
		// The earliest-failing prefix of the fault schedule: pull the
		// onset to the front (normalize keeps learned-model warm-up).
		if s.Fault.Kind == FaultNone || s.Fault.Onset == 0 {
			return false
		}
		s.Fault.Onset = 0
		return true
	}},
	{"no-resilience", func(s *Spec) bool {
		// Drop the workload re-planner before the control loop: a bug
		// that survives as a plain remediated run reproduces without the
		// re-rank machinery (and frees the oversubscribed-shape pins).
		if !s.Work.Resilience {
			return false
		}
		s.Work.Resilience = false
		return true
	}},
	{"one-stale-flip", func(s *Spec) bool {
		if s.Diverge.Stale[1].AtPS <= 0 {
			return false
		}
		s.Diverge.Stale[1] = StaleFlip{}
		return true
	}},
	{"no-failed-pushes", func(s *Spec) bool {
		if s.Diverge.FailPushes == 0 {
			return false
		}
		s.Diverge.FailSkip, s.Diverge.FailPushes = 0, 0
		return true
	}},
	{"no-divergence", func(s *Spec) bool {
		// Drop the control-plane faults before the control loop itself:
		// a bug that survives as a plain remediated run reproduces
		// without the belief/truth machinery.
		if !s.Diverge.Active() {
			return false
		}
		s.Diverge = DivergeSpec{}
		return true
	}},
	{"no-remediation", func(s *Spec) bool {
		if !s.Work.Remediate {
			return false
		}
		s.Work.Remediate = false
		return true
	}},
	{"smaller-clos", func(s *Spec) bool {
		if s.Topo.Kind != Clos3 {
			return false
		}
		shrunk := false
		if s.Topo.Pods > 2 {
			s.Topo.Pods = 2
			shrunk = true
		}
		if s.Topo.LeavesPerPod > 2 {
			s.Topo.LeavesPerPod = 2
			shrunk = true
		}
		if s.Topo.CoresPerGroup > 2 {
			s.Topo.CoresPerGroup = 2
			shrunk = true
		}
		return shrunk
	}},
}

// Shrink minimizes a failing spec. It returns the smallest spec found
// that still violates an oracle, plus the number of Run invocations
// spent. The input spec is assumed failing; if budget is <= 0,
// ShrinkBudget applies.
func Shrink(spec Spec, opts Options, budget int) (Spec, int) {
	if budget <= 0 {
		budget = ShrinkBudget
	}
	spec.normalize()
	runs := 0
	for {
		improved := false
		for _, step := range shrinkSteps {
			if runs >= budget {
				return spec, runs
			}
			cand := spec
			if !step.apply(&cand) {
				continue
			}
			cand.normalize()
			if cand == spec {
				continue // the step bounced off normalize's floor
			}
			runs++
			if res := Run(cand, opts); !res.OK() {
				spec = cand
				improved = true
			}
		}
		if !improved {
			return spec, runs
		}
	}
}
