package simtest

import (
	"strings"
	"testing"

	"flowpulse/internal/core"
	"flowpulse/internal/detect"
)

// TestGenerateDeterministic: the seed→spec map is a pure function, and
// every generated spec is already normalized (normalize is idempotent
// on Generate's output — the property ReproCommand's seed-vs-spec
// decision rests on).
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a != b {
			t.Fatalf("seed %d: Generate is not deterministic:\n%s\n%s", seed, a.MarshalCompact(), b.MarshalCompact())
		}
		norm := a
		norm.normalize()
		if norm != a {
			t.Fatalf("seed %d: Generate output not normalized:\n%s\n%s", seed, a.MarshalCompact(), norm.MarshalCompact())
		}
	}
}

// TestSpecJSONRoundTrip: the compact encoding is lossless — a shrunk
// repro pasted back into -spec reruns the exact same scenario.
func TestSpecJSONRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		spec := Generate(seed)
		back, err := ParseSpec(spec.MarshalCompact())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back != spec {
			t.Fatalf("seed %d: round trip changed the spec:\n%s\n%s", seed, spec.MarshalCompact(), back.MarshalCompact())
		}
	}
}

// TestGenerateEnvelope: generated fault schedules respect the
// constraints the oracles rely on.
func TestGenerateEnvelope(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		spec := Generate(seed)
		thr := spec.DetectThreshold()
		f := spec.Fault
		switch f.Kind {
		case FaultNone:
			if f != (FaultSpec{Kind: FaultNone}) {
				t.Fatalf("seed %d: fault-free spec carries fault fields: %s", seed, spec.MarshalCompact())
			}
		case FaultBernoulli, FaultFlap:
			if f.Rate < 3*thr && f.Rate < 0.6 {
				t.Fatalf("seed %d: %s rate %.4f below 3×threshold %.4f", seed, f.Kind, f.Rate, thr)
			}
		case FaultGE:
			if f.Rate < 4*thr && f.Rate < 0.45 {
				t.Fatalf("seed %d: GE rate %.4f below 4×threshold %.4f", seed, f.Rate, thr)
			}
			if f.Rate >= 0.8*f.GELossBad {
				t.Fatalf("seed %d: GE steady-state %.4f too close to in-burst loss %.4f", seed, f.Rate, f.GELossBad)
			}
		}
		if f.Kind != FaultNone {
			if f.Onset > spec.Work.Iterations-4 {
				t.Fatalf("seed %d: onset %d leaves no deadline room in %d iterations", seed, f.Onset, spec.Work.Iterations)
			}
			if spec.Work.Predictor == core.LearnedModel && f.Onset < 4 {
				t.Fatalf("seed %d: onset %d inside the learned model's warm-up", seed, f.Onset)
			}
		}
		if f.Upstream && spec.Work.Collective != core.AllToAllKind {
			t.Fatalf("seed %d: upstream fault outside all-to-all: %s", seed, spec.MarshalCompact())
		}
		if spec.Work.Jobs != 0 {
			// The shared-plane envelope normalize() promises the runner.
			if spec.Work.Jobs != 2 || spec.Topo.Kind != FatTree2 ||
				spec.Topo.HostsPerLeaf != 2 ||
				spec.Work.Collective != core.RingAllReduce ||
				spec.Work.Predictor != core.AnalyticalModel ||
				spec.Work.Remediate {
				t.Fatalf("seed %d: 2-job spec outside the shared-plane envelope: %s", seed, spec.MarshalCompact())
			}
			if f.Kind != FaultNone && (f.Kind != FaultBernoulli || f.Upstream) {
				t.Fatalf("seed %d: 2-job spec with fault %s (upstream=%v): %s", seed, f.Kind, f.Upstream, spec.MarshalCompact())
			}
		}
		if spec.Work.Resilience {
			// The resilience envelope normalize() promises the runner.
			if !spec.Work.Remediate || spec.Topo.Kind != FatTree2 ||
				spec.Topo.Spines != 2 || spec.Topo.HostsPerLeaf != 4 ||
				spec.Topo.Trunk != 1 || spec.Work.BytesPerRank != 2<<20 {
				t.Fatalf("seed %d: resilience spec outside its envelope: %s", seed, spec.MarshalCompact())
			}
			if f.Kind != FaultNone && (f.Kind != FaultBernoulli || f.Upstream || f.Onset < 2) {
				t.Fatalf("seed %d: resilience spec with fault %s (upstream=%v, onset=%d): %s",
					seed, f.Kind, f.Upstream, f.Onset, spec.MarshalCompact())
			}
		}
	}
}

// TestRunSmoke fuzzes a handful of seeds end to end — every oracle
// must hold on an unmodified pipeline.
func TestRunSmoke(t *testing.T) {
	n := uint64(12)
	if testing.Short() {
		n = 4
	}
	for seed := uint64(0); seed < n; seed++ {
		res := Run(Generate(seed), Options{})
		if !res.OK() {
			t.Errorf("seed %d: %v", seed, res.Violations)
		}
	}
}

// TestSharedPlaneSeedsRun drives the 2-job specs through the full
// oracle set: both jobs' pipelines on one shared tap must stay clean
// before onset, flag the faulted leaf within the deadline, and replay
// bit-identically.
func TestSharedPlaneSeedsRun(t *testing.T) {
	want := 3
	if testing.Short() {
		want = 1
	}
	ran := 0
	for seed := uint64(0); seed < 300 && ran < want; seed++ {
		spec := Generate(seed)
		if spec.Work.Jobs != 2 || spec.Fault.Kind == FaultNone {
			continue
		}
		if res := Run(spec, Options{}); !res.OK() {
			t.Errorf("seed %d: %v", seed, res.Violations)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no faulted 2-job spec in 300 seeds — generation broken")
	}
}

// TestResilienceSeedsRun drives faulted resilience specs through the
// full oracle set: the quarantine must trigger a ring re-plan and the
// goodput timeline must show a sustained recovery to ≥90% of the
// pre-fault baseline (oracle 5), on top of every fabric-level oracle.
func TestResilienceSeedsRun(t *testing.T) {
	want := 3
	if testing.Short() {
		want = 1
	}
	ran := 0
	for seed := uint64(0); seed < 400 && ran < want; seed++ {
		spec := Generate(seed)
		if !spec.Work.Resilience || spec.Fault.Kind == FaultNone {
			continue
		}
		if res := Run(spec, Options{}); !res.OK() {
			t.Errorf("seed %d: %v", seed, res.Violations)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no faulted resilience spec in 400 seeds — generation broken")
	}
}

// TestWithResilienceForcesEnvelope: the -resilience sweep helper turns
// remediated seeds into normalized resilience specs and leaves the
// rest untouched.
func TestWithResilienceForcesEnvelope(t *testing.T) {
	forced, plain := 0, 0
	for seed := uint64(0); seed < 200; seed++ {
		spec := Generate(seed)
		got := WithResilience(spec)
		if !spec.Work.Remediate {
			plain++
			if got != spec {
				t.Fatalf("seed %d: WithResilience changed an unremediated spec", seed)
			}
			continue
		}
		forced++
		if !got.Work.Resilience {
			t.Fatalf("seed %d: WithResilience left a remediated spec un-replanned", seed)
		}
		norm := got
		norm.normalize()
		if norm != got {
			t.Fatalf("seed %d: WithResilience returned a non-normalized spec: %s", seed, got.MarshalCompact())
		}
	}
	if forced == 0 || plain == 0 {
		t.Fatalf("degenerate sample: %d forced, %d plain", forced, plain)
	}
}

// TestInjectedDetectorBugCaught is the self-test the fuzzer's value
// rests on: plant a detector bug — the threshold misconfigured 10×
// coarse — and the oracles must notice on some seed, and shrinking
// must still hand back a failing spec with a usable repro command.
func TestInjectedDetectorBugCaught(t *testing.T) {
	opts := Options{MutateDetect: func(c *detect.Config) {
		if c.Threshold == 0 {
			c.Threshold = 0.01
		}
		c.Threshold *= 10
	}}
	var failed *Result
	for seed := uint64(0); seed < 40 && failed == nil; seed++ {
		spec := Generate(seed)
		// A 10× threshold cannot mask a blackhole (the deficit is
		// −100%), so hunt on the rate-bounded fault kinds.
		switch spec.Fault.Kind {
		case FaultBernoulli, FaultGE:
		default:
			continue
		}
		if res := Run(spec, opts); !res.OK() {
			failed = res
		}
	}
	if failed == nil {
		t.Fatal("a 10× detection threshold was not caught by any oracle in 40 seeds")
	}
	joined := strings.Join(failed.Violations, "\n")
	if !strings.Contains(joined, "detection:") && !strings.Contains(joined, "remediation:") {
		t.Fatalf("expected a detection/remediation violation, got:\n%s", joined)
	}

	shrunk, runs := Shrink(failed.Spec, opts, 0)
	if runs == 0 {
		t.Fatal("shrink spent no runs")
	}
	if res := Run(shrunk, opts); res.OK() {
		t.Fatalf("shrunk spec no longer fails: %s", shrunk.MarshalCompact())
	}
	if cmd := shrunk.ReproCommand(); !strings.Contains(cmd, "flowpulse-check") {
		t.Fatalf("unusable repro command %q", cmd)
	}
	t.Logf("bug caught on seed %d, shrunk in %d runs: %s", failed.Spec.Seed, runs, shrunk.ReproCommand())
}

// TestReplayFingerprintStable: Run executes every spec twice and
// compares fingerprints internally; this additionally pins that two
// separate Run calls agree (no cross-call state).
func TestReplayFingerprintStable(t *testing.T) {
	spec := Generate(3)
	a, b := Run(spec, Options{}), Run(spec, Options{})
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ across Run calls: %016x != %016x", a.Fingerprint, b.Fingerprint)
	}
	if a.Fingerprint == 0 {
		t.Fatal("fingerprint is zero — nothing was hashed")
	}
}

// TestShrinkBudgetAndNormalization: under a detector broken badly
// enough that faulted specs keep failing (99% threshold), the shrinker
// must respect its run budget and return a normalized spec.
func TestShrinkBudgetAndNormalization(t *testing.T) {
	opts := Options{MutateDetect: func(c *detect.Config) { c.Threshold = 0.99 }}
	var failing Spec
	found := false
	for seed := uint64(0); seed < 40 && !found; seed++ {
		spec := Generate(seed)
		if spec.Fault.Kind != FaultBernoulli {
			continue
		}
		if res := Run(spec, opts); !res.OK() {
			failing, found = spec, true
		}
	}
	if !found {
		t.Skip("no bernoulli seed failed under a 99% threshold")
	}
	shrunk, runs := Shrink(failing, opts, 10)
	if runs > 10 {
		t.Fatalf("shrink overspent its budget: %d runs", runs)
	}
	norm := shrunk
	norm.normalize()
	if norm != shrunk {
		t.Fatalf("shrink returned a non-normalized spec: %s", shrunk.MarshalCompact())
	}
}
