// Package simtest is FlowPulse's deterministic simulation fuzzer — the
// VOPR/FoundationDB pattern applied to a network monitoring system.
// A single 64-bit seed derives a complete scenario (topology, workload,
// fault schedule); the full detect → localize → remediate pipeline runs
// over it twice; and a set of invariant oracles checks what no example-
// based test can: byte conservation on every link, silence on healthy
// fabrics, detection and localization of every persistent fault, damped
// remediation, and bit-identical replay. Failing seeds shrink to a
// minimal spec and print as a one-line repro command.
package simtest

import (
	"encoding/json"
	"fmt"

	"flowpulse/internal/core"
	"flowpulse/internal/sim"
)

// TopoKind selects the fabric family.
type TopoKind string

// The fabric families the fuzzer explores.
const (
	FatTree2 TopoKind = "fat-tree"
	Clos3    TopoKind = "clos3"
)

// PredictorKind mirrors core.PredictorKind (kept as its own string so a
// Spec is a self-contained JSON document).
type PredictorKind = core.PredictorKind

// FaultKind names a fault schedule entry.
type FaultKind string

// The fault processes the fuzzer injects.
const (
	FaultNone      FaultKind = "none"
	FaultBernoulli FaultKind = "bernoulli"
	FaultBlackHole FaultKind = "blackhole"
	FaultGE        FaultKind = "gilbert-elliott"
	FaultFlap      FaultKind = "flap"
)

// TopoSpec shapes the fabric. Fat-tree fields and Clos fields are
// mutually exclusive by Kind.
type TopoSpec struct {
	Kind TopoKind `json:"kind"`

	// Fat tree.
	Leaves       int `json:"leaves,omitempty"`
	Spines       int `json:"spines,omitempty"`
	HostsPerLeaf int `json:"hostsPerLeaf,omitempty"`
	Trunk        int `json:"trunk,omitempty"`

	// Three-level Clos.
	Pods          int `json:"pods,omitempty"`
	LeavesPerPod  int `json:"leavesPerPod,omitempty"`
	SpinesPerPod  int `json:"spinesPerPod,omitempty"`
	CoresPerGroup int `json:"coresPerGroup,omitempty"`
}

// WorkSpec shapes the training workload.
type WorkSpec struct {
	// Collective applies to fat trees; three-level runs are always
	// Ring-AllReduce (the only collective Clos3Scenario builds).
	Collective   core.CollectiveKind `json:"collective,omitempty"`
	BytesPerRank int64               `json:"bytesPerRank"`
	Iterations   int                 `json:"iterations"`
	// JitterPS is per-iteration start jitter in picoseconds.
	JitterPS int64 `json:"jitterPS,omitempty"`
	// Predictor selects the load model (fat tree; Clos runs learned at
	// both levels).
	Predictor PredictorKind `json:"predictor,omitempty"`
	// Remediate attaches the closed-loop control plane (fat tree only).
	Remediate bool `json:"remediate,omitempty"`
	// Jobs, when 2, runs two concurrent full-span training jobs on one
	// shared monitoring plane (§7 "Parallel Jobs"): one host column per
	// job, per-job pipelines, aggregate-symmetry detection. normalize()
	// pins the envelope the shared plane is specified for — fat tree,
	// ring, analytical model, no remediation, at most a downstream
	// Bernoulli fault. 0 is the classic single-job run.
	Jobs int `json:"jobs,omitempty"`
	// Resilience extends the remediation loop into the workload
	// (remediated fat-tree runs only): the ring is interleaved across
	// leaves, and a quarantine that cuts a leaf below the recovery
	// target re-ranks it contiguous at the next iteration barrier.
	// normalize() pins the envelope the re-planner is specified for —
	// the 2:1 oversubscribed shape (2 spines, 4 hosts/leaf, untrunked,
	// 2 MiB ranks) under at most a downstream Bernoulli fault with
	// onset ≥ 2, so the quarantine halves the victim leaf's uplink
	// capacity and the re-rank restores the uplink-gated baseline.
	Resilience bool `json:"resilience,omitempty"`
}

// DetectThreshold is the detection threshold a spec's pipeline runs at.
// It is derived, not drawn: a window of B bytes is quantized in MTU
// units by spray and scheduling, so thresholds below ~MTU/B alert on
// arithmetic noise, not faults (the paper's Fig 5c size–threshold
// tradeoff). The fuzzer therefore scales the threshold to 8 MTU of the
// smallest expected per-port window, floored at the paper's 1%, and
// normalize() keeps every fault rate a detectable multiple of it.
func (s Spec) DetectThreshold() float64 {
	const mtu = 4160
	d := float64(s.Work.BytesPerRank)
	var perPort float64
	if s.Topo.Kind == Clos3 {
		// The spine monitors see the inter-pod share spread over
		// spine-count × core-group ports — the smallest windows.
		perPort = 2 * d / float64(s.Topo.SpinesPerPod*s.Topo.CoresPerGroup)
	} else {
		st := float64(s.Topo.Spines * s.Topo.Trunk)
		if s.Work.Collective == core.RingAllReduce {
			// A contiguous ring crosses each leaf boundary once per
			// direction: ~2·D(N−1)/N ingress per leaf.
			perPort = 1.8 * d / st
			if s.Work.Resilience {
				// The interleaved ring crosses once per RANK, not once
				// per leaf: H× the contiguous ring's boundary traffic.
				perPort *= float64(s.Topo.HostsPerLeaf)
			}
		} else {
			perPort = 0.9 * float64(s.Topo.HostsPerLeaf) * d / st
		}
	}
	thr := 8 * mtu / perPort
	if thr < 0.01 {
		thr = 0.01
	}
	if thr > 0.25 {
		thr = 0.25
	}
	return thr
}

// FaultSpec is the fault schedule: at most one fault process, attached
// when the workload completes iteration Onset (0 = before training).
type FaultSpec struct {
	Kind FaultKind `json:"kind"`
	// Onset is the iteration after which the fault is live; iterations
	// 1..Onset are clean.
	Onset int `json:"onset,omitempty"`
	// Rate is the Bernoulli drop probability, the flap's in-burst loss,
	// or (for Gilbert–Elliott) the target steady-state loss.
	Rate float64 `json:"rate,omitempty"`

	// Fat-tree location (leaf-spine link by ordinals) and direction.
	Leaf     int  `json:"leaf,omitempty"`
	Spine    int  `json:"spine,omitempty"`
	Trunk    int  `json:"trunk,omitempty"`
	Upstream bool `json:"upstream,omitempty"`

	// Clos location: CoreSpine selects a core→spine fault (seen by
	// spine monitors) instead of spine→leaf (seen by leaf monitors).
	CoreSpine  bool `json:"coreSpine,omitempty"`
	Pod        int  `json:"pod,omitempty"`
	LeafInPod  int  `json:"leafInPod,omitempty"`
	SpineInPod int  `json:"spineInPod,omitempty"`
	CoreIx     int  `json:"coreIx,omitempty"`

	// Gilbert–Elliott shape (Rate fixes the steady-state loss).
	GEPBG     float64 `json:"gePBG,omitempty"`
	GELossBad float64 `json:"geLossBad,omitempty"`

	// Flap timing in picoseconds.
	FlapPeriodPS int64 `json:"flapPeriodPS,omitempty"`
	FlapDownPS   int64 `json:"flapDownPS,omitempty"`
	FlapPhasePS  int64 `json:"flapPhasePS,omitempty"`
}

// CongestSpec is a spec's congestion regime: the ECN/DCQCN transport
// loop, the detector's CE-discount mitigation, and the adversarial
// traffic generators whose queue build-up mimics loss without any
// fault. The zero value is fully off — the classic envelope every
// existing seed maps to. Specs only gain congestion through
// WithCongestion (the -congestion sweep), never from Generate, so the
// scenarios existing seeds produce are untouched.
type CongestSpec struct {
	// ECN enables fabric CE marking; DCQCN the transport reaction point.
	ECN   bool `json:"ecn,omitempty"`
	DCQCN bool `json:"dcqcn,omitempty"`
	// CEDiscount is the detector's congestion-mitigation weight.
	CEDiscount float64 `json:"ceDiscount,omitempty"`
	// IncastGapPS, when positive, runs the N→1 burst generator with
	// this mean inter-burst gap, targeting IncastLeaf's hosts:
	// IncastFanout sources (0: every non-victim host) firing
	// IncastBytes per burst (0: the generator's 128 KiB default).
	// IncastHigh runs the bursts in the measured traffic class, where
	// their queue build-up delays the collective and draws CE marks
	// onto measured packets.
	IncastGapPS  int64 `json:"incastGapPS,omitempty"`
	IncastLeaf   int   `json:"incastLeaf,omitempty"`
	IncastFanout int   `json:"incastFanout,omitempty"`
	IncastBytes  int   `json:"incastBytes,omitempty"`
	IncastHigh   bool  `json:"incastHigh,omitempty"`
	// StormGapPS, when positive, runs the on/off heavy-flow generator
	// (StormBytes per message) in the measured traffic class.
	StormGapPS int64 `json:"stormGapPS,omitempty"`
	StormBytes int   `json:"stormBytes,omitempty"`
	// StragglerPS, when positive, delays StragglerLeaf's ranks by this
	// fixed offset every iteration.
	StragglerPS   int64 `json:"stragglerPS,omitempty"`
	StragglerLeaf int   `json:"stragglerLeaf,omitempty"`
}

// Active reports whether any congestion source is configured.
func (c *CongestSpec) Active() bool {
	return c.IncastGapPS > 0 || c.StormGapPS > 0 || c.StragglerPS > 0
}

// DivergeSpec is a spec's control-plane fault regime: injected
// belief/truth splits (see fault.Divergence and core.DivergenceSpec).
// The zero value is fully off — the classic envelope every existing
// seed maps to. Specs only gain divergence through WithDivergence (the
// -divergence sweep), never from Generate, so the scenarios existing
// seeds produce are untouched. Stale is a fixed-size array (not a
// slice) so Spec stays comparable for ReproCommand.
type DivergeSpec struct {
	// FailSkip/FailPushes inject a failed-push fault: FailSkip
	// administrative pushes go through, then FailPushes silently drop.
	// normalize() caps FailPushes at the plane's retry budget, so every
	// ChangeSet still commits through verify-own-writes — the property
	// the convergence oracle rests on.
	FailSkip   int `json:"failSkip,omitempty"`
	FailPushes int `json:"failPushes,omitempty"`
	// Stale lists up to two advertise-down corruptions; an entry with
	// AtPS <= 0 is unused.
	Stale [2]StaleFlip `json:"stale"`
	// AuditPS is the periodic belief-vs-truth audit cadence — the
	// convergence backstop when a stale belief never produces a
	// confirmable deviation.
	AuditPS int64 `json:"auditPS,omitempty"`
}

// StaleFlip schedules one stale-LSDB corruption: at AtPS the named
// link's advertisement on one endpoint flips to "down" with no write
// involved.
type StaleFlip struct {
	AtPS  int64 `json:"atPS,omitempty"`
	Leaf  int   `json:"leaf,omitempty"`
	Spine int   `json:"spine,omitempty"`
	Trunk int   `json:"trunk,omitempty"`
}

// Active reports whether any divergence fault is injected.
func (d *DivergeSpec) Active() bool {
	return d.FailPushes > 0 || d.Stale[0].AtPS > 0 || d.Stale[1].AtPS > 0
}

// Spec is one complete fuzz scenario. The zero of every field is
// meaningful, so a Spec round-trips through JSON losslessly and the
// compact encoding is the repro format.
type Spec struct {
	Seed    uint64      `json:"seed"`
	Topo    TopoSpec    `json:"topo"`
	Work    WorkSpec    `json:"work"`
	Fault   FaultSpec   `json:"fault"`
	Congest CongestSpec `json:"congest,omitempty"`
	Diverge DivergeSpec `json:"diverge,omitempty"`
}

// Generate derives the Spec for a seed. Every draw comes from named
// streams of the seed, so adding a new knob never perturbs the
// scenarios existing seeds map to (same discipline as the simulator's
// own RNG use).
func Generate(seed uint64) Spec {
	s := Spec{Seed: seed}
	topoRNG := sim.NewRNG(seed, "simtest/topo")
	workRNG := sim.NewRNG(seed, "simtest/work")
	faultRNG := sim.NewRNG(seed, "simtest/fault")

	if topoRNG.Float64() < 0.8 {
		s.Topo = TopoSpec{
			Kind:         FatTree2,
			Leaves:       4 + topoRNG.IntN(7), // 4..10
			Spines:       2 + topoRNG.IntN(4), // 2..5
			HostsPerLeaf: 1,
			Trunk:        1,
		}
		if topoRNG.Float64() < 0.25 {
			s.Topo.HostsPerLeaf = 2
		}
		if topoRNG.Float64() < 0.25 {
			s.Topo.Trunk = 2
		}
	} else {
		s.Topo = TopoSpec{
			Kind:          Clos3,
			Pods:          2 + topoRNG.IntN(2), // 2..3
			LeavesPerPod:  2 + topoRNG.IntN(3), // 2..4
			SpinesPerPod:  2,
			CoresPerGroup: 2 + topoRNG.IntN(2), // 2..3
		}
	}

	sizes := []int64{1 << 20, 1 << 20, 2 << 20, 2 << 20, 4 << 20}
	s.Work.BytesPerRank = sizes[workRNG.IntN(len(sizes))]
	if s.Topo.Kind == FatTree2 {
		colls := []core.CollectiveKind{
			core.RingAllReduce, core.RingAllReduce,
			core.ReduceScatter, core.AllGatherKind, core.AllToAllKind,
		}
		s.Work.Collective = colls[workRNG.IntN(len(colls))]
		switch p := workRNG.Float64(); {
		case p < 0.5:
			s.Work.Predictor = core.AnalyticalModel
		case p < 0.7:
			s.Work.Predictor = core.SimulationModel
		default:
			s.Work.Predictor = core.LearnedModel
		}
		if s.Work.Collective == core.AllToAllKind {
			// Least-loaded spray balances each sender's aggregate egress,
			// not its per-destination split, so a receiver's per-port mix
			// in all-to-all is structurally imbalanced (±8–20% when
			// healthy). Only the iteration-aligned reference run predicts
			// through that; the uniform-split analytical model and the
			// warm-up-mean learned baseline both alert on clean fabrics.
			s.Work.Predictor = core.SimulationModel
		}
		s.Work.Iterations = 6 + workRNG.IntN(5) // 6..10
		if s.Work.Predictor == core.LearnedModel {
			s.Work.Iterations = 9 + workRNG.IntN(4) // warm-up headroom
		}
		if workRNG.Float64() < 0.5 {
			s.Work.JitterPS = int64((1 + workRNG.IntN(2)) * int(sim.Microsecond))
		}
		// The control plane's rebaseline path is wired to models that
		// implement Rebaseliner; the simulation model cannot refresh
		// its reference windows, so the loop only runs on the others.
		// Ring only: the quarantine shifts live load, and only the
		// ring's balanced per-port mix keeps the rebaselined model's
		// expectations tight enough to not implicate bystanders.
		if s.Work.Predictor == core.AnalyticalModel &&
			s.Work.Collective == core.RingAllReduce && workRNG.Float64() < 0.35 {
			s.Work.Remediate = true
		}
	} else {
		s.Work.Collective = core.RingAllReduce
		s.Work.Predictor = core.LearnedModel
		s.Work.Iterations = 9 + workRNG.IntN(4) // 9..12
	}

	s.Fault = generateFault(&s, faultRNG)

	// Two concurrent jobs on the shared monitoring plane. The draw
	// comes from its own named stream so adding the knob never
	// perturbed the topo/work/fault draws existing seeds map to, and
	// only seeds already inside the shared-plane envelope (see
	// WorkSpec.Jobs) opt in.
	jobsRNG := sim.NewRNG(seed, "simtest/jobs")
	if s.Topo.Kind == FatTree2 && s.Work.Predictor == core.AnalyticalModel &&
		s.Work.Collective == core.RingAllReduce && !s.Work.Remediate &&
		(s.Fault.Kind == FaultNone || (s.Fault.Kind == FaultBernoulli && !s.Fault.Upstream)) &&
		jobsRNG.Float64() < 0.3 {
		s.Work.Jobs = 2
	}

	// The workload re-planner rides on the control loop. Its own named
	// stream keeps every earlier draw stable, and only remediated seeds
	// (already analytical + ring) opt in.
	resRNG := sim.NewRNG(seed, "simtest/resilience")
	if s.Work.Remediate && resRNG.Float64() < 0.5 {
		s.Work.Resilience = true
	}

	s.normalize()
	return s
}

func generateFault(s *Spec, rng *sim.RNG) FaultSpec {
	// Rates are drawn as multiples of the spec's derived detection
	// threshold so every persistent fault is comfortably detectable and
	// the detection-deadline oracle is meaningful at any scale.
	thr := s.DetectThreshold()
	f := FaultSpec{Kind: FaultNone}
	if s.Topo.Kind == Clos3 {
		if rng.Float64() < 0.6 {
			f.Kind = FaultBernoulli
			f.Rate = thr * (3 + 2*rng.Float64())
			f.CoreSpine = rng.Float64() < 0.5
			f.Pod = rng.IntN(s.Topo.Pods)
			f.LeafInPod = rng.IntN(s.Topo.LeavesPerPod)
			f.SpineInPod = rng.IntN(s.Topo.SpinesPerPod)
			f.CoreIx = rng.IntN(s.Topo.CoresPerGroup)
			// The learned baseline forms over the warm-up windows; a
			// fault inside them is baked into the model, not detected.
			f.Onset = 4 + rng.IntN(2)
		}
		return f
	}

	switch p := rng.Float64(); {
	case p < 0.25:
		return f
	case p < 0.55:
		f.Kind = FaultBernoulli
		f.Rate = thr * (3 + 3*rng.Float64())
	case p < 0.65:
		f.Kind = FaultBlackHole
		f.Rate = 1
	case p < 0.82:
		f.Kind = FaultGE
		f.Rate = thr * (4 + 2*rng.Float64()) // steady-state loss
		f.GEPBG = 0.05 + 0.15*rng.Float64()
		f.GELossBad = 0.4 + 0.4*rng.Float64()
	default:
		f.Kind = FaultFlap
		// Per-packet least-loaded spray actively refills a lossy port
		// (drops drain its queue, so it looks *least* loaded), masking
		// duty-cycle-averaged loss below ~15% entirely. A 2/3-duty down
		// window at ≥30% in-burst loss keeps the port deficit well above
		// what the spray can compensate at any flap phase.
		f.Rate = 0.3 + 0.25*rng.Float64()
		if f.Rate < 3*thr {
			f.Rate = 3 * thr
		}
		est := estIterTime(s)
		f.FlapPeriodPS = int64(3 * est)
		f.FlapDownPS = int64(2 * est)
		f.FlapPhasePS = int64(rng.UniformDuration(3 * est))
	}
	f.Leaf = rng.IntN(s.Topo.Leaves)
	f.Spine = rng.IntN(s.Topo.Spines)
	f.Trunk = rng.IntN(s.Topo.Trunk)
	// Upstream (leaf→spine) loss is only cleanly observable in
	// all-to-all: a ring port has a single sender, so the victim leaf
	// cannot distinguish the remote uplink from its own local link,
	// while many-sender ports localize it exactly (one affected sender,
	// the rest clean). Port-level detection dilutes the deficit by the
	// sender count, so normalize() scales the rate up to match.
	if f.Kind == FaultBernoulli && s.Work.Collective == core.AllToAllKind &&
		s.Work.Predictor == core.SimulationModel {
		f.Upstream = rng.Float64() < 0.5
	}
	maxOnset := s.Work.Iterations / 2
	if f.Kind != FaultNone {
		f.Onset = rng.IntN(maxOnset + 1)
	}
	return f
}

// estIterTime is the rough wall time of one ring iteration: each rank
// moves ~2·D wire bytes per iteration at the default 400 Gb/s.
func estIterTime(s *Spec) sim.Duration {
	return sim.SerializationDelay(int(2*s.Work.BytesPerRank), 400e9)
}

// normalize clamps a Spec into the valid envelope. It runs after
// generation, after every shrink step, and on operator-supplied specs,
// so the runner only ever sees scenarios it can build.
func (s *Spec) normalize() {
	t, w, f := &s.Topo, &s.Work, &s.Fault
	if t.Kind == "" {
		t.Kind = FatTree2
	}
	if w.BytesPerRank < 256<<10 {
		w.BytesPerRank = 256 << 10
	}
	switch t.Kind {
	case FatTree2:
		t.Leaves = clamp(t.Leaves, 4, 32)
		t.Spines = clamp(t.Spines, 2, 16)
		t.HostsPerLeaf = clamp(t.HostsPerLeaf, 1, 2)
		t.Trunk = clamp(t.Trunk, 1, 2)
		t.Pods, t.LeavesPerPod, t.SpinesPerPod, t.CoresPerGroup = 0, 0, 0, 0
		if w.Collective == "" {
			w.Collective = core.RingAllReduce
		}
		if w.Predictor == "" {
			w.Predictor = core.AnalyticalModel
		}
		if w.Collective == core.AllToAllKind {
			w.Predictor = core.SimulationModel // see Generate
		}
		if w.Predictor != core.AnalyticalModel || w.Collective != core.RingAllReduce {
			w.Remediate = false
		}
		if f.Kind == FaultFlap {
			// Flap timing is phrased in iteration wall time, which only
			// the ring's fixed schedule makes predictable.
			w.Collective = core.RingAllReduce
			f.Upstream = false
			if f.FlapPeriodPS <= 0 {
				f.FlapPeriodPS = int64(3 * estIterTime(s))
			}
			f.FlapDownPS = clamp64(f.FlapDownPS, 1, f.FlapPeriodPS)
			f.FlapPhasePS = clamp64(f.FlapPhasePS, 0, f.FlapPeriodPS-1)
		}
		f.Leaf = clamp(f.Leaf, 0, t.Leaves-1)
		f.Spine = clamp(f.Spine, 0, t.Spines-1)
		f.Trunk = clamp(f.Trunk, 0, t.Trunk-1)
	case Clos3:
		t.Pods = clamp(t.Pods, 2, 4)
		t.LeavesPerPod = clamp(t.LeavesPerPod, 2, 4)
		t.SpinesPerPod = clamp(t.SpinesPerPod, 2, 2)
		t.CoresPerGroup = clamp(t.CoresPerGroup, 2, 4)
		t.Leaves, t.Spines, t.HostsPerLeaf, t.Trunk = 0, 0, 0, 0
		w.Collective = core.RingAllReduce
		w.Predictor = core.LearnedModel
		w.Remediate = false
		w.JitterPS = 0
		if f.Kind != FaultNone && f.Kind != FaultBernoulli {
			f.Kind = FaultBernoulli
			if f.Rate <= 0 || f.Rate >= 1 {
				f.Rate = 0.05
			}
		}
		f.Pod = clamp(f.Pod, 0, t.Pods-1)
		f.LeafInPod = clamp(f.LeafInPod, 0, t.LeavesPerPod-1)
		f.SpineInPod = clamp(f.SpineInPod, 0, t.SpinesPerPod-1)
		f.CoreIx = clamp(f.CoreIx, 0, t.CoresPerGroup-1)
	}

	// The shared-plane envelope (see WorkSpec.Jobs): two full-span
	// ring jobs, one host column each, analytical model, no
	// remediation, and at most a downstream Bernoulli fault. Per-job
	// sender signatures comb under shared spray, so this is exactly
	// the geometry the aggregate-symmetry basis is specified for (see
	// DESIGN.md).
	if w.Jobs != 0 {
		w.Jobs = 2
	}
	if t.Kind != FatTree2 {
		w.Jobs = 0
	}
	if w.Jobs == 2 {
		t.HostsPerLeaf = 2
		w.Collective = core.RingAllReduce
		w.Predictor = core.AnalyticalModel
		w.Remediate = false
		if f.Kind != FaultNone && f.Kind != FaultBernoulli {
			f.Kind = FaultBernoulli
		}
		f.Upstream = false
	}

	// The congestion envelope (see CongestSpec): adversarial traffic
	// on the single-job two-level fat tree only. Congestion never
	// rides the resilience sweep — storm-perturbed goodput makes the
	// recovery bound too noisy to oracle — but remediated seeds stay
	// in, because they give the no-quarantine-under-pure-congestion
	// oracle its teeth.
	c := &s.Congest
	if t.Kind != FatTree2 || w.Jobs != 0 {
		*c = CongestSpec{}
	}
	c.CEDiscount = clampF(c.CEDiscount, 0, 4)
	if c.IncastGapPS > 0 {
		c.IncastGapPS = clamp64(c.IncastGapPS, int64(20*sim.Microsecond), int64(sim.Millisecond))
		c.IncastLeaf = clamp(c.IncastLeaf, 0, t.Leaves-1)
		if c.IncastFanout != 0 {
			c.IncastFanout = clamp(c.IncastFanout, 1, (t.Leaves-1)*t.HostsPerLeaf)
		}
		if c.IncastBytes != 0 {
			c.IncastBytes = clamp(c.IncastBytes, 4<<10, 256<<10)
		}
		if c.IncastHigh {
			// In-class bursts contend with the collective directly; a
			// full-fanout 128 KiB barrage would starve the victim leaf
			// outright, so the adversarial-tenant shape is pinned to a
			// modest burst.
			c.IncastFanout = clamp(c.IncastFanout, 1, 3)
			c.IncastBytes = clamp(c.IncastBytes, 4<<10, 64<<10)
		}
	} else {
		c.IncastGapPS, c.IncastLeaf = 0, 0
		c.IncastFanout, c.IncastBytes, c.IncastHigh = 0, 0, false
	}
	if c.StormGapPS > 0 {
		c.StormGapPS = clamp64(c.StormGapPS, int64(2*sim.Microsecond), int64(sim.Millisecond))
		c.StormBytes = clamp(c.StormBytes, 4<<10, 256<<10)
	} else {
		c.StormGapPS, c.StormBytes = 0, 0
	}
	if c.StragglerPS > 0 {
		c.StragglerPS = clamp64(c.StragglerPS, int64(sim.Microsecond), int64(estIterTime(s)))
		c.StragglerLeaf = clamp(c.StragglerLeaf, 0, t.Leaves-1)
	} else {
		c.StragglerPS, c.StragglerLeaf = 0, 0
	}
	if c.Active() {
		w.Resilience = false
	}

	// The divergence envelope (see DivergeSpec): control-plane faults
	// ride the remediated single-job fat tree only — the plane's
	// Reconcile and audit paths are driven off the remediation tick, so
	// an unremediated run would never process the injections. The
	// resilience and congestion twists are shed: a stale belief
	// re-shapes the predictor's expectations mid-run, which breaks the
	// assumptions their recovery/false-positive oracles rest on.
	dv := &s.Diverge
	if !w.Remediate || t.Kind != FatTree2 || w.Jobs != 0 {
		*dv = DivergeSpec{}
	}
	if dv.Active() {
		w.Resilience = false
		s.Congest = CongestSpec{}
		if w.Iterations < 8 {
			w.Iterations = 8 // room for a stale flip plus the audit behind it
		}
		dv.FailSkip = clamp(dv.FailSkip, 0, 4)
		// FailPushes ≤ the plane's default retry budget (2): every
		// ChangeSet commits within one verify loop, so a dropped push is
		// repaired instantly and only stale-LSDB decay produces
		// observable divergence episodes.
		dv.FailPushes = clamp(dv.FailPushes, 0, 2)
		est := int64(estIterTime(s))
		for i := range dv.Stale {
			st := &dv.Stale[i]
			if st.AtPS <= 0 {
				*st = StaleFlip{}
				continue
			}
			// Land inside the run with ≥4 iterations of headroom: the
			// audit below is guaranteed a tick after the corruption, so
			// belief provably reconverges before the end-of-run oracle.
			st.AtPS = clamp64(st.AtPS, est, int64(w.Iterations-4)*est)
			st.Leaf = clamp(st.Leaf, 0, t.Leaves-1)
			st.Spine = clamp(st.Spine, 0, t.Spines-1)
			st.Trunk = clamp(st.Trunk, 0, t.Trunk-1)
		}
		if dv.AuditPS <= 0 {
			dv.AuditPS = 2 * est
		}
		dv.AuditPS = clamp64(dv.AuditPS, est, 3*est)
	} else {
		*dv = DivergeSpec{}
	}

	// The resilience envelope (see WorkSpec.Resilience): the workload
	// re-planner rides the control loop on the 2:1 oversubscribed
	// interleaved ring, under at most a downstream Bernoulli fault —
	// exactly the geometry where a quarantine halves the victim leaf's
	// capacity and the re-rank provably restores the uplink-gated
	// baseline (DESIGN.md decision 13).
	if !w.Remediate || t.Kind != FatTree2 {
		w.Resilience = false
	}
	if w.Resilience {
		t.Spines = 2
		t.HostsPerLeaf = 4
		t.Trunk = 1
		w.BytesPerRank = 2 << 20
		if f.Kind != FaultNone && f.Kind != FaultBernoulli {
			f.Kind = FaultBernoulli
		}
		f.Upstream = false
		f.Trunk = 0
		f.Spine = clamp(f.Spine, 0, 1)
	}

	switch f.Kind {
	case FaultNone, FaultBernoulli, FaultBlackHole, FaultGE, FaultFlap:
	default:
		f.Kind = FaultNone
	}
	// Rates are pinned to the derived threshold: ≥3× so the
	// detection-deadline oracle holds, capped so the collective still
	// completes through retransmission.
	thr := s.DetectThreshold()
	if f.Kind == FaultGE && thr > 0.12 {
		// GE's burst variance eats the detection margin at coarse
		// thresholds; the steady Bernoulli process keeps the oracle sound.
		f.Kind = FaultBernoulli
	}
	if f.Upstream && (f.Kind != FaultBernoulli || w.Collective != core.AllToAllKind ||
		w.Predictor != core.SimulationModel) {
		f.Upstream = false
	}
	switch f.Kind {
	case FaultBernoulli:
		if f.Rate <= 0 || f.Rate >= 1 {
			f.Rate = 0.05
		}
		lo, hi := 3*thr, 0.6
		if w.Remediate {
			// The control loop reroutes live traffic; keeping the fault
			// near-threshold avoids retransmission storms that shift the
			// spray balance and quarantine bystander links.
			hi = 4.5 * thr
		}
		if f.Upstream {
			// The port-level deficit is the rate diluted over the
			// senders sharing the port; scale the rate so the detector
			// still sees ≥3× threshold, or drop the upstream twist when
			// no survivable rate can clear that bar.
			lo = 3 * thr * float64(t.Leaves-1)
			if lo > hi {
				f.Upstream = false
				lo = 3 * thr
			}
		}
		f.Rate = clampF(f.Rate, lo, hi)
	case FaultBlackHole:
		f.Rate = 1
	case FaultGE:
		if f.GELossBad <= 0 || f.GELossBad > 1 {
			f.GELossBad = 0.5
		}
		if f.GEPBG <= 0 || f.GEPBG > 1 {
			f.GEPBG = 0.1
		}
		if f.Rate <= 0 {
			f.Rate = f.GELossBad / 2
		}
		// Bursty loss clears the threshold only on average; the extra
		// margin (and the doubled deadline in the oracle) covers windows
		// the burst process happens to spare.
		f.Rate = clampF(f.Rate, 4*thr, 0.45)
		// Rate is the steady-state loss; it must sit strictly inside
		// (0, lossBad) for the pGB solve in the runner to be valid.
		if f.Rate >= 0.8*f.GELossBad {
			f.GELossBad = clampF(f.Rate/0.7, 0, 0.9)
		}
	case FaultFlap:
		if f.Rate <= 0 || f.Rate >= 1 {
			f.Rate = 0.4
		}
		// ≥0.3 in-burst: below that, least-loaded spray masks the
		// duty-cycle-averaged deficit (see Generate).
		lo := 0.3
		if 3*thr > lo {
			lo = 3 * thr
		}
		f.Rate = clampF(f.Rate, lo, 0.6)
	}

	minIters := 4
	if w.Predictor == core.LearnedModel {
		minIters = 6
	}
	w.Iterations = clamp(w.Iterations, minIters, 32)
	if f.Kind == FaultNone {
		*f = FaultSpec{Kind: FaultNone}
		return
	}
	minOnset := 0
	if w.Predictor == core.LearnedModel {
		minOnset = 4 // past warm-up, so the baseline stays clean
	}
	if w.Resilience {
		minOnset = 2 // the goodput baseline needs pre-fault iterations
	}
	maxOnset := w.Iterations - 4 // leave the detection deadline room
	if w.Remediate {
		maxOnset = w.Iterations - 5 // confirmation takes K=3 windows
	}
	if w.Resilience {
		maxOnset = w.Iterations - 9 // confirm + re-plan + sustained recovery
	}
	if f.Kind == FaultGE {
		maxOnset = w.Iterations - 8 // the oracle doubles GE's deadline
	}
	if maxOnset < minOnset {
		w.Iterations += minOnset - maxOnset
		maxOnset = minOnset
	}
	f.Onset = clamp(f.Onset, minOnset, maxOnset)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampF applies the lower bound first, so when lo > hi (a 3×threshold
// floor above the completion cap) the cap wins and the rate stays
// survivable.
func clampF(v, lo, hi float64) float64 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// WithDivergence layers control-plane belief/truth faults onto a
// generated spec — the -divergence sweep of flowpulse-check. Only
// remediated seeds are inside the envelope (the plane's reconcile and
// audit paths ride the remediation tick); the rest pass through
// unchanged. The injection shape is drawn from the spec's own seed on a
// dedicated stream: a failed-push burst sized within the verify loop's
// retry budget, one or two stale-LSDB advertise-down flips mid-run, and
// an audit cadence that guarantees reconvergence before the end-of-run
// oracles check it.
func WithDivergence(s Spec) Spec {
	if !s.Work.Remediate || s.Topo.Kind != FatTree2 || s.Work.Jobs != 0 {
		return s
	}
	rng := sim.NewRNG(s.Seed, "simtest/divergence")
	d := &s.Diverge
	d.FailSkip = rng.IntN(3)
	d.FailPushes = 1 + rng.IntN(2)
	est := estIterTime(&s)
	iters := s.Work.Iterations
	if iters < 8 {
		iters = 8
	}
	n := 1 + rng.IntN(2)
	for i := 0; i < n; i++ {
		d.Stale[i] = StaleFlip{
			AtPS:  int64(est) + int64(rng.UniformDuration(sim.Duration(iters-5)*est)),
			Leaf:  rng.IntN(s.Topo.Leaves),
			Spine: rng.IntN(s.Topo.Spines),
			Trunk: rng.IntN(s.Topo.Trunk),
		}
	}
	d.AuditPS = int64(est) + int64(rng.UniformDuration(2*est))
	s.normalize()
	return s
}

// WithResilience forces the workload re-planner on for specs inside
// the remediated envelope (a no-op on the rest) — the -resilience
// sweep of flowpulse-check, which turns every control-loop seed into
// a full remediate → re-plan → recover exercise.
func WithResilience(s Spec) Spec {
	if s.Work.Remediate {
		s.Work.Resilience = true
		s.normalize()
	}
	return s
}

// WithCongestion layers the adversarial-congestion regime onto a
// generated spec — the -congestion sweep of flowpulse-check. The
// ECN/DCQCN transport loop and the detector's CE discount are always
// on; which traffic generators run is drawn from the spec's own seed
// on a dedicated stream, so the congestion shape is as reproducible
// as the rest of the scenario. Specs outside the single-job two-level
// fat-tree envelope pass through unchanged.
func WithCongestion(s Spec) Spec {
	if s.Topo.Kind != FatTree2 || s.Work.Jobs != 0 {
		return s
	}
	rng := sim.NewRNG(s.Seed, "simtest/congestion")
	c := &s.Congest
	c.ECN, c.DCQCN = true, true
	// Discount 2 keeps the combined envelope sound: a fault window's
	// deviation is multiplied by 1−2·ceFrac, and fault rates are
	// pinned ≥3× the threshold, so detection survives as long as under
	// a third of the fault leaf's bytes carry marks — congestion
	// concentrates its marks on its own victim leaf, not the fault's.
	c.CEDiscount = 2
	if rng.Float64() < 0.6 {
		c.IncastGapPS = int64(rng.Jitter(50*sim.Microsecond, 150*sim.Microsecond))
		c.IncastLeaf = rng.IntN(s.Topo.Leaves)
		if rng.Bernoulli(0.5) {
			// In-class incast: the adversarial tenant whose bursts both
			// delay the collective and draw CE marks onto measured
			// packets — the hardest false-positive shape the discount
			// must absorb. Kept to a modest burst (normalize pins the
			// ceiling) so the victim is perturbed, not starved.
			c.IncastHigh = true
			c.IncastFanout = 2
			c.IncastBytes = (32 + rng.IntN(3)*16) << 10 // 32/48/64 KiB
		}
	}
	if rng.Float64() < 0.6 {
		c.StormGapPS = int64(rng.Jitter(4*sim.Microsecond, 12*sim.Microsecond))
		c.StormBytes = 64 << 10
	}
	if rng.Float64() < 0.4 {
		// A fixed per-iteration delay of a third to a fifth of the
		// iteration's wire time — enough to skew any timing-sensitive
		// heuristic, invisible to the byte-conservation basis.
		div := 3 + rng.IntN(3)
		c.StragglerPS = int64(estIterTime(&s)) / int64(div)
		c.StragglerLeaf = rng.IntN(s.Topo.Leaves)
	}
	if !c.Active() {
		// Every congestion seed exercises at least one traffic source.
		c.StormGapPS = int64(8 * sim.Microsecond)
		c.StormBytes = 64 << 10
	}
	s.normalize()
	return s
}

// MarshalCompact renders the spec as the one-line JSON the repro
// command embeds.
func (s Spec) MarshalCompact() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // Spec contains only marshalable fields
	}
	return string(b)
}

// ParseSpec decodes a compact spec, normalizing it into the valid
// envelope.
func ParseSpec(data string) (Spec, error) {
	var s Spec
	if err := json.Unmarshal([]byte(data), &s); err != nil {
		return Spec{}, fmt.Errorf("simtest: bad spec: %w", err)
	}
	s.normalize()
	return s, nil
}

// ReproCommand is the one-line reproduction recipe for a spec. A spec
// that still equals Generate(seed) reproduces from the seed alone;
// otherwise (post-shrink) the full JSON is embedded.
func (s Spec) ReproCommand() string {
	if gen := Generate(s.Seed); gen == s {
		return fmt.Sprintf("go run ./cmd/flowpulse-check -seed %d", s.Seed)
	}
	return fmt.Sprintf("go run ./cmd/flowpulse-check -spec '%s'", s.MarshalCompact())
}
