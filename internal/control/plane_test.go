package control

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

func buildPlane(t testing.TB, cfg Config) (*Plane, *fabric.Network) {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 1, Trunk: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: sim.NewEngine(), Seed: 9})
	return New(cfg, net), net
}

func trunkLink(t testing.TB, net *fabric.Network, leaf, spine int) topology.LinkID {
	t.Helper()
	topo := net.Topology()
	return topo.TrunkLinks(topo.Leaves()[leaf], topo.Spines()[spine])[0]
}

// TestApplyCommitLifecycle: the happy path — a quarantine ChangeSet
// pushes, verifies, and commits, leaving belief == intent == truth.
func TestApplyCommitLifecycle(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true})
	link := trunkLink(t, net, 0, 1)

	if !p.Quarantine(100, link) {
		t.Fatal("clean quarantine did not commit")
	}
	if net.LinkAdminUp(link) {
		t.Error("truth: link still admin-up after quarantine")
	}
	if p.LinkAdminUp(link) {
		t.Error("belief: link still believed up after commit")
	}
	if div := p.Divergent(); len(div) != 0 {
		t.Errorf("divergent after clean commit: %v", div)
	}
	st := p.Stats()
	if st.ChangeSets != 1 || st.Committed != 1 || st.RolledBack != 0 || st.Pushed != 1 {
		t.Errorf("stats after one clean quarantine: %+v", st)
	}
	log := p.Log()
	if len(log) != 1 || log[0].Status != Committed || log[0].Reason != "quarantine" || log[0].At != 100 {
		t.Errorf("changeset log: %+v", log)
	}

	if !p.Readmit(200, link) {
		t.Fatal("readmit did not commit")
	}
	if !net.LinkAdminUp(link) || !p.LinkAdminUp(link) {
		t.Error("readmit did not restore truth and belief")
	}
}

// TestApplyRetriesFailedPush: one dropped push is caught by the
// read-back and healed within the retry budget — committed, with the
// repair work on the books.
func TestApplyRetriesFailedPush(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true})
	link := trunkLink(t, net, 1, 0)
	p.Inject(fault.Divergence{Kind: fault.DivergeFailedPush, Count: 1})

	if !p.Quarantine(100, link) {
		t.Fatal("quarantine with one dropped push should commit via retry")
	}
	if net.LinkAdminUp(link) || p.LinkAdminUp(link) {
		t.Error("retry did not land the quarantine on truth and belief")
	}
	st := p.Stats()
	if st.PushesDropped != 1 || st.VerifyMismatches != 1 || st.Retries != 1 {
		t.Errorf("repair accounting: %+v", st)
	}
	if div := p.Divergent(); len(div) != 0 {
		t.Errorf("divergent after healed push: %v", div)
	}
}

// TestApplyRollsBackExhaustedRetries: when the fabric eats the push
// and every retry, the ChangeSet rolls back, belief re-syncs to truth,
// and an alert fires — the plane refuses to believe a write it cannot
// read back.
func TestApplyRollsBackExhaustedRetries(t *testing.T) {
	var alerts []Alert
	p, net := buildPlane(t, Config{Verify: true, OnAlert: func(a Alert) { alerts = append(alerts, a) }})
	link := trunkLink(t, net, 1, 1)
	// Initial push + MaxRetries (default 2) re-pushes, all eaten.
	p.Inject(fault.Divergence{Kind: fault.DivergeFailedPush, Count: 3})

	if p.Quarantine(100, link) {
		t.Fatal("quarantine committed despite every push being dropped")
	}
	if !net.LinkAdminUp(link) {
		t.Error("truth changed even though every push was dropped")
	}
	if !p.LinkAdminUp(link) {
		t.Error("belief adopted the failed intent instead of truth")
	}
	if div := p.Divergent(); len(div) != 0 {
		t.Errorf("divergent after rollback: %v", div)
	}
	st := p.Stats()
	if st.RolledBack != 1 || st.Committed != 0 || st.Retries != 2 || st.PushesDropped != 3 {
		t.Errorf("rollback accounting: %+v", st)
	}
	if len(alerts) != 1 || len(p.Alerts()) != 1 {
		t.Fatalf("want exactly one rollback alert, got %v", alerts)
	}
	if log := p.Log(); len(log) != 1 || log[0].Status != RolledBack {
		t.Errorf("changeset log after rollback: %+v", log)
	}
}

// TestUnverifiedCommitsBlindly: without verification a dropped push
// still "commits" — belief and truth split, and Reconcile (a verified-
// plane capability) refuses to help. This is the divergence the
// experiment's baseline arm lives with.
func TestUnverifiedCommitsBlindly(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: false})
	link := trunkLink(t, net, 2, 0)
	p.Inject(fault.Divergence{Kind: fault.DivergeFailedPush, Count: 1})

	if !p.Quarantine(100, link) {
		t.Fatal("unverified apply should commit blindly")
	}
	if !net.LinkAdminUp(link) {
		t.Error("truth should be untouched — the push was dropped")
	}
	if p.LinkAdminUp(link) {
		t.Error("belief should hold the committed intent (down)")
	}
	div := p.Divergent()
	if len(div) != 1 || div[0] != link {
		t.Fatalf("divergent set: %v, want [%d]", div, link)
	}
	if p.Reconcile(200) {
		t.Error("unverified plane must never reconcile")
	}
	if !p.Diverged() {
		t.Error("episode should still be open")
	}
}

// TestReconcileRepushesLostIntent: truth drifts away from a committed
// intent behind the plane's back; Reconcile re-pushes the intent and
// closes the episode.
func TestReconcileRepushesLostIntent(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true})
	link := trunkLink(t, net, 0, 0)
	if !p.Quarantine(100, link) {
		t.Fatal("setup quarantine failed")
	}

	// The fabric flips the link back up without telling the plane — a
	// lost write surfacing late, or an out-of-band operator action.
	net.SetLinkAdmin(link, true)
	p.updateEpisode(150)
	if !p.Diverged() {
		t.Fatal("episode should open when truth leaves intent")
	}

	if !p.Reconcile(300) {
		t.Fatal("Reconcile found nothing despite truth≠intent")
	}
	if net.LinkAdminUp(link) {
		t.Error("Reconcile did not re-push the quarantine intent")
	}
	if div := p.Divergent(); len(div) != 0 {
		t.Errorf("divergent after reconcile: %v", div)
	}
	st := p.Stats()
	if st.Reconciles != 1 || st.Reconciled != 1 {
		t.Errorf("reconcile accounting: %+v", st)
	}
	if eps := p.Episodes(); len(eps) != 1 || eps[0] != 150 {
		t.Errorf("episodes: %v, want one of length 150", eps)
	}
	// A second call on a clean plane must report nothing to do.
	if p.Reconcile(400) {
		t.Error("Reconcile reported work on a clean plane")
	}
}

// TestStaleLSDBAuditRepair: a corrupted advertisement (no write
// involved) decays belief on its own; the periodic audit adopts truth
// and closes the episode.
func TestStaleLSDBAuditRepair(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true, AuditEvery: 1000})
	link := trunkLink(t, net, 3, 1)
	p.Inject(fault.Divergence{Kind: fault.DivergeStaleLSDB, At: 500, Link: link, Up: false})

	p.Tick(400)
	if p.Diverged() {
		t.Fatal("stale injection landed before its scheduled time")
	}
	p.Tick(500)
	if !p.Diverged() || p.LinkAdminUp(link) {
		t.Fatal("stale advertisement did not poison belief")
	}
	if !net.LinkAdminUp(link) {
		t.Fatal("stale LSDB must not touch truth")
	}

	p.Tick(1600) // next audit boundary
	st := p.Stats()
	if st.Audits == 0 || st.AuditRepairs != 1 || st.StaleAdopted != 1 {
		t.Errorf("audit accounting: %+v", st)
	}
	if !p.LinkAdminUp(link) || p.Diverged() {
		t.Error("audit did not adopt truth over the stale advertisement")
	}
	if st.MaxDiverged != 1100 {
		t.Errorf("MaxDiverged = %v, want 1100 (500 → 1600)", st.MaxDiverged)
	}
}

// TestPartialRolloutVerifiedHeals: a two-op ChangeSet whose second op
// stalls is healed by verification; unverified, the stall becomes a
// silent half-applied quarantine.
func TestPartialRolloutVerifiedHeals(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true})
	a, b := trunkLink(t, net, 2, 0), trunkLink(t, net, 2, 1)
	p.Inject(fault.Divergence{Kind: fault.DivergePartialRollout, Ops: 1})

	if !p.Apply(100, "quarantine", []Op{{Link: a, Up: false}, {Link: b, Up: false}}) {
		t.Fatal("verified partial rollout should heal and commit")
	}
	if net.LinkAdminUp(a) || net.LinkAdminUp(b) {
		t.Error("both ops should have landed after verification")
	}
	st := p.Stats()
	if st.OpsStalled != 1 || st.VerifyMismatches != 1 {
		t.Errorf("partial-rollout accounting: %+v", st)
	}
}

func TestPartialRolloutUnverifiedDiverges(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: false})
	a, b := trunkLink(t, net, 2, 0), trunkLink(t, net, 2, 1)
	p.Inject(fault.Divergence{Kind: fault.DivergePartialRollout, Ops: 1})

	p.Apply(100, "quarantine", []Op{{Link: a, Up: false}, {Link: b, Up: false}})
	if net.LinkAdminUp(a) {
		t.Error("first op should have landed")
	}
	if !net.LinkAdminUp(b) {
		t.Error("second op should have stalled")
	}
	div := p.Divergent()
	if len(div) != 1 || div[0] != b {
		t.Errorf("divergent set: %v, want [%d]", div, b)
	}
}

// TestBelievedFIBFollowsBelief: the plane's spray sets are computed
// from belief, not truth — a stale advertisement reroutes believed
// traffic even though the fabric still forwards on the real link.
func TestBelievedFIBFollowsBelief(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true})
	topo := net.Topology()
	link := trunkLink(t, net, 0, 1)
	src, dst := topo.Leaves()[0], topo.Leaves()[1]

	before := len(p.LeafUplinkCandidates(src, dst))
	p.Inject(fault.Divergence{Kind: fault.DivergeStaleLSDB, At: 10, Link: link, Up: false})
	p.Tick(10)
	after := len(p.LeafUplinkCandidates(src, dst))
	if after >= before {
		t.Errorf("believed spray set did not shrink: %d -> %d", before, after)
	}
	if got := len(net.LeafUplinkCandidates(src, dst)); got != before {
		t.Errorf("truth FIB changed under a belief-only fault: %d -> %d", before, got)
	}
}

// TestNoteAppendsOpLessEntry: workload mutations land in the audit log
// without touching the fabric.
func TestNoteAppendsOpLessEntry(t *testing.T) {
	p, _ := buildPlane(t, Config{Verify: true})
	p.Note(100, "replan", "ring drops quarantined trunk")
	if st := p.Stats(); st.Notes != 1 || st.Pushed != 0 || st.ChangeSets != 0 {
		t.Errorf("note accounting: %+v", st)
	}
	log := p.Log()
	if len(log) != 1 || len(log[0].Ops) != 0 || log[0].Status != Committed {
		t.Errorf("note log entry: %+v", log)
	}
}

// TestPlaneReadPathZeroAllocs: the predictor hits LinkAdminUp and
// LeafUplinkCandidates on every window close for every pair — the
// believed read path must not allocate.
func TestPlaneReadPathZeroAllocs(t *testing.T) {
	p, net := buildPlane(t, Config{Verify: true})
	topo := net.Topology()
	link := trunkLink(t, net, 0, 0)
	src, dst := topo.Leaves()[0], topo.Leaves()[2]
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.LinkAdminUp(link)
		_ = p.LeafUplinkCandidates(src, dst)
		p.Tick(0)
	})
	if allocs != 0 {
		t.Errorf("believed read path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkChangeSetApply measures the unverified mutation path: push
// + belief commit + believed-FIB reconvergence.
func BenchmarkChangeSetApply(b *testing.B) {
	p, net := buildPlane(b, Config{Verify: false})
	link := trunkLink(b, net, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(sim.Time(i), "bench", []Op{{Link: link, Up: i&1 == 1}})
	}
}

// BenchmarkChangeSetVerify measures the full verified lifecycle —
// push, read-back, commit — the price of never believing an unread
// write.
func BenchmarkChangeSetVerify(b *testing.B) {
	p, net := buildPlane(b, Config{Verify: true})
	link := trunkLink(b, net, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(sim.Time(i), "bench", []Op{{Link: link, Up: i&1 == 1}})
	}
}

// BenchmarkPlaneReadPath measures the believed view the predictor
// consumes every window: admin read + spray-set lookup + idle tick.
func BenchmarkPlaneReadPath(b *testing.B) {
	p, net := buildPlane(b, Config{Verify: true})
	topo := net.Topology()
	link := trunkLink(b, net, 0, 0)
	src, dst := topo.Leaves()[0], topo.Leaves()[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.LinkAdminUp(link)
		_ = p.LeafUplinkCandidates(src, dst)
		p.Tick(sim.Time(i))
	}
}
