package control

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// mutationCall matches a call through any of the raw fabric mutation
// surfaces. Method declarations don't match (no leading dot), so the
// fabric's own definitions are naturally exempt.
var mutationCall = regexp.MustCompile(`\.(SetLinkAdmin|DisconnectLink|ReconnectLink)\(`)

// TestPlaneIsTheOnlyMutationPath enforces the belief/truth seam at the
// source level: no non-test Go file outside internal/fabric (the truth)
// and internal/control (the only sanctioned mutator) may call
// SetLinkAdmin, DisconnectLink, or ReconnectLink. Everything else —
// remediator, resilience, scenarios, CLIs — must mutate the fabric
// through a ChangeSet on the control plane, where the write is
// verified, logged, and visible to reconciliation. A new call site is a
// new way for belief to silently diverge from truth; route it through
// Plane.Apply instead of extending the allowlist.
func TestPlaneIsTheOnlyMutationPath(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self))) // internal/control → repo root

	var offenders []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, "internal/fabric/") || strings.HasPrefix(rel, "internal/control/") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if mutationCall.MatchString(line) {
				offenders = append(offenders, fmt.Sprintf("%s:%d: %s", rel, i+1, strings.TrimSpace(line)))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Errorf("raw fabric mutations outside internal/fabric and internal/control — route these through control.Plane.Apply:\n  %s",
			strings.Join(offenders, "\n  "))
	}
}
