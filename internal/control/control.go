// Package control separates what the system believes about the fabric
// from what the fabric is. Plane owns the *believed* topology view —
// per-switch LSDB-style link advertisements plus the admin/quarantine
// overlay and a believed FIB — and is the only path that mutates the
// real fabric. Every mutation is a declarative ChangeSet: intent →
// push → verify-own-writes (read-back against live state) → commit,
// or bounded retries then rollback + alert.
//
// The split makes an entire fault class representable that direct
// fabric setters cannot: divergence between belief and truth (failed
// config pushes, stale LSDBs, partially applied rollouts — see
// fault.Divergence). The predictor consumes the plane's believed view,
// so an injected belief error propagates into wrong traffic
// expectations exactly the way a production controller's stale model
// would. Repair has three layers: verification catches bad writes at
// write time, Reconcile catches accumulated divergence when the
// remediator is about to act on a suspect deviation, and the periodic
// audit (Config.AuditEvery) bounds the lifetime of anything else.
//
// With no divergence injected the plane is invisible: pushes are the
// same SetLinkAdmin calls in the same order, read-back verification
// consumes no randomness and schedules no events, and the believed
// FIB runs the fabric's own table-build code against an identical
// predicate — runs are byte-identical to a planeless build.
package control

import (
	"fmt"
	"sort"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Fabric is the narrow push/read-back surface the plane drives — the
// only fabric mutation capability anything above the fabric holds.
type Fabric interface {
	Topology() *topology.Topology
	// SetLinkAdmin pushes an administrative state change to the fabric.
	SetLinkAdmin(link topology.LinkID, up bool)
	// LinkAdminUp reads the live administrative state back — the
	// verify-own-writes primitive.
	LinkAdminUp(link topology.LinkID) bool
	// ProbeLink sends one OAM liveness probe over a link direction.
	ProbeLink(link topology.LinkID, dir fabric.Direction, size int, onResult func(now sim.Time, delivered bool))
}

// Config tunes the plane.
type Config struct {
	// Verify enables verify-own-writes: after each push the plane
	// reads the live state back, re-pushes on mismatch (MaxRetries
	// times), and rolls the ChangeSet back if the write never lands.
	// When false the plane commits intent to belief blindly — the
	// baseline arm of the divergence experiment, and how divergence
	// persists.
	Verify bool
	// MaxRetries bounds re-pushes after a failed read-back. 0 means
	// the default (2); negative means no retries.
	MaxRetries int
	// AuditEvery runs a belief-vs-truth audit over every link at this
	// cadence (driven by window-close ticks, so it adds no engine
	// events). 0 disables; leave it 0 unless divergence is injected.
	AuditEvery sim.Duration
	// OnAlert observes rollback and divergence alerts.
	OnAlert func(Alert)
}

// Op is one declarative operation: drive a link to an administrative
// state.
type Op struct {
	Link topology.LinkID
	Up   bool
}

// Status is the terminal state of a ChangeSet.
type Status uint8

const (
	// Committed: every op verified (or, unverified, assumed) applied.
	Committed Status = iota
	// RolledBack: verification failed after retries; landed ops were
	// reverted and belief re-synced to truth.
	RolledBack
)

func (s Status) String() string {
	if s == RolledBack {
		return "rolled-back"
	}
	return "committed"
}

// ChangeSet is one verified mutation of the fabric: the declared
// intent, what happened to it, and the repair work it took.
type ChangeSet struct {
	ID      uint64
	At      sim.Time
	Reason  string
	Ops     []Op
	Status  Status
	Retries int
}

// Alert reports a mutation the plane could not realize or a
// divergence it repaired.
type Alert struct {
	At     sim.Time
	Reason string
	Detail string
}

// Stats counts the plane's work. Everything here is bookkeeping on
// top of the fabric's own counters; none of it feeds fingerprints.
type Stats struct {
	ChangeSets int // Apply calls
	Committed  int // ... that committed
	RolledBack int // ... that rolled back after failed verification
	Pushed     int // SetLinkAdmin calls issued
	Notes      int // op-less log entries (workload re-plans)

	PushesDropped    int // pushes eaten by injected failed-push faults
	OpsStalled       int // ops beyond an injected partial-rollout cap
	StaleInjected    int // LSDB advertisements corrupted by injection
	VerifyMismatches int // read-backs that contradicted the push
	Retries          int // re-pushes issued by verification
	StaleAdopted     int // belief entries re-synced to truth by repair
	Reconciles       int // Reconcile calls that found divergence
	Audits           int // periodic audits run
	AuditRepairs     int // ... that found and repaired divergence

	Divergences   int          // belief≠truth episodes opened
	Reconciled    int          // ... closed (belief converged back)
	TotalDiverged sim.Duration // summed episode lengths
	MaxDiverged   sim.Duration // longest episode
}

// advSlot addresses one switch's advertisement for a link.
type advSlot struct {
	sw  topology.SwitchID
	idx int
}

// staleInj is a pending timed LSDB corruption.
type staleInj struct {
	at   sim.Time
	link topology.LinkID
	up   bool
}

// Plane is the control plane: believed link state, believed FIB, the
// ChangeSet log, and the divergence-injection machinery.
type Plane struct {
	cfg  Config
	fab  Fabric
	topo *topology.Topology

	adv    [][]bool  // [switch][port] advertised link state (LSDB)
	slots  []advSlot // flattened per-link advertisement slots...
	slotAt []int     // ...indexed by slots[slotAt[link]:slotAt[link+1]]
	belief []bool    // derived believed admin state per link
	intent []bool    // last committed desired state per link
	fib    *fabric.BeliefFIB
	dirty  bool // belief changed since last FIB recompute

	skipPushes int // injected: pushes to let through before dropping
	dropPushes int // injected: pushes to silently drop
	partialOps int // injected: one-shot op cap for the next larger ChangeSet
	stale      []staleInj

	log      []ChangeSet
	alerts   []Alert
	stats    Stats
	episodes []sim.Duration

	diverged   bool
	divergedAt sim.Time
	lastAudit  sim.Time
	nextID     uint64
}

// New builds a plane over a fabric. Belief is initialized from the
// live state, so a fresh plane is always consistent.
func New(cfg Config, fab Fabric) *Plane {
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	topo := fab.Topology()
	p := &Plane{
		cfg:    cfg,
		fab:    fab,
		topo:   topo,
		adv:    make([][]bool, len(topo.Switches)),
		slotAt: make([]int, len(topo.Links)+1),
		belief: make([]bool, len(topo.Links)),
		intent: make([]bool, len(topo.Links)),
		fib:    fabric.NewBeliefFIB(topo),
	}
	for sw := range topo.Switches {
		p.adv[sw] = make([]bool, len(topo.Switches[sw].Ports))
	}
	ends := make([][]advSlot, len(topo.Links))
	for sw := range topo.Switches {
		for i, pd := range topo.Switches[sw].Ports {
			ends[pd.Link] = append(ends[pd.Link], advSlot{topology.SwitchID(sw), i})
		}
	}
	for l := range topo.Links {
		p.slotAt[l] = len(p.slots)
		p.slots = append(p.slots, ends[l]...)
	}
	p.slotAt[len(topo.Links)] = len(p.slots)
	for l := range topo.Links {
		truth := fab.LinkAdminUp(topology.LinkID(l))
		p.setAdv(topology.LinkID(l), truth)
		p.intent[l] = truth
	}
	p.dirty = true
	p.refreshFIB()
	return p
}

// Topology returns the fabric topology.
func (p *Plane) Topology() *topology.Topology { return p.topo }

// LinkAdminUp reports the *believed* administrative state — the
// predictor's view of routing (predict.FIBView). It can diverge from
// the fabric's own LinkAdminUp; that gap is exactly the injected
// fault.
func (p *Plane) LinkAdminUp(link topology.LinkID) bool { return p.belief[link] }

// FabricAdminUp reads the live state back — the truth side of every
// verification and audit.
func (p *Plane) FabricAdminUp(link topology.LinkID) bool { return p.fab.LinkAdminUp(link) }

// LeafUplinkCandidates returns the believed spray set (predict.FIBView).
func (p *Plane) LeafUplinkCandidates(leaf, dstLeaf topology.SwitchID) []int {
	return p.fib.LeafUplinkCandidates(leaf, dstLeaf)
}

// ProbeLink forwards an OAM liveness probe to the fabric: re-admission
// verification flows through the plane like every other control
// action.
func (p *Plane) ProbeLink(link topology.LinkID, dir fabric.Direction, size int, onResult func(now sim.Time, delivered bool)) {
	p.fab.ProbeLink(link, dir, size, onResult)
}

// Quarantine drives a link administratively down through a verified
// ChangeSet and reports whether the change committed. The remediator
// keeps the confirmation armed and retries when it fails.
func (p *Plane) Quarantine(now sim.Time, link topology.LinkID) bool {
	return p.Apply(now, "quarantine", []Op{{Link: link, Up: false}})
}

// Readmit drives a link administratively up through a verified
// ChangeSet and reports whether the change committed. On failure the
// remediator keeps the link quarantined and retries at the next clean
// probe round.
func (p *Plane) Readmit(now sim.Time, link topology.LinkID) bool {
	return p.Apply(now, "readmit", []Op{{Link: link, Up: true}})
}

// Note appends an op-less entry to the ChangeSet log — the audit
// trail for mutations that change the workload rather than the fabric
// (collective re-plans adopting a quarantine).
func (p *Plane) Note(now sim.Time, reason, detail string) {
	p.nextID++
	p.log = append(p.log, ChangeSet{ID: p.nextID, At: now, Reason: reason + ": " + detail, Status: Committed})
	p.stats.Notes++
}

// Apply runs one ChangeSet through the full lifecycle: record intent,
// push each op, verify-own-writes with bounded re-pushes, then commit
// belief — or roll the landed ops back, re-sync belief to truth, and
// alert. It reports whether the ChangeSet committed.
func (p *Plane) Apply(now sim.Time, reason string, ops []Op) bool {
	p.nextID++
	cs := ChangeSet{ID: p.nextID, At: now, Reason: reason, Ops: append([]Op(nil), ops...)}
	p.stats.ChangeSets++

	limit := len(ops)
	if p.partialOps > 0 && len(ops) > p.partialOps {
		limit = p.partialOps
		p.partialOps = 0
		p.stats.OpsStalled += len(ops) - limit
	}
	prior := make([]bool, len(ops))
	landed := make([]bool, len(ops))
	for i, op := range ops {
		prior[i] = p.fab.LinkAdminUp(op.Link)
		if i >= limit || p.dropPush() {
			continue
		}
		p.push(op)
		landed[i] = true
	}

	if p.cfg.Verify {
		failed := false
		for i, op := range ops {
			if p.fab.LinkAdminUp(op.Link) == op.Up {
				continue
			}
			p.stats.VerifyMismatches++
			for try := 0; try < p.cfg.MaxRetries && p.fab.LinkAdminUp(op.Link) != op.Up; try++ {
				cs.Retries++
				p.stats.Retries++
				if !p.dropPush() {
					p.push(op)
					landed[i] = true
				}
			}
			if p.fab.LinkAdminUp(op.Link) != op.Up {
				failed = true
			}
		}
		if failed {
			// Revert what landed and re-sync belief to truth. Rollback
			// pushes bypass injected push-drops: the injection models a
			// lost forward intent, and losing the revert too would
			// strand the fabric in a state that is neither old nor new.
			for i, op := range ops {
				if landed[i] && p.fab.LinkAdminUp(op.Link) != prior[i] {
					p.push(Op{Link: op.Link, Up: prior[i]})
				}
			}
			for _, op := range ops {
				p.adoptTruth(op.Link)
			}
			cs.Status = RolledBack
			p.stats.RolledBack++
			p.log = append(p.log, cs)
			p.alert(now, reason, fmt.Sprintf("changeset %d rolled back after %d retries", cs.ID, cs.Retries))
			p.refreshFIB()
			p.updateEpisode(now)
			return false
		}
	}

	// Commit: belief follows intent. Verified mode just proved truth
	// matches; unverified mode takes the leap of faith divergence
	// exploits.
	for _, op := range ops {
		p.setAdv(op.Link, op.Up)
		p.intent[op.Link] = op.Up
	}
	cs.Status = Committed
	p.stats.Committed++
	p.log = append(p.log, cs)
	p.refreshFIB()
	p.updateEpisode(now)
	return true
}

// Reconcile is the remediator's pre-quarantine check: when a deviation
// is consistent with "belief ≠ truth", repair the view instead of
// quarantining a healthy link. It scans every link (read-backs are
// free), re-pushes intents the fabric lost, adopts truth over stale
// advertisements, and reports whether it found anything — false means
// the belief is clean and the deviation deserves a real quarantine.
// An unverified plane trusts its own writes and never second-guesses:
// that asymmetry is the experiment.
func (p *Plane) Reconcile(now sim.Time) bool {
	if !p.cfg.Verify {
		return false
	}
	if !p.repair(now, "reconcile") {
		return false
	}
	p.stats.Reconciles++
	return true
}

// Tick drives time-based divergence machinery from window closes:
// pending stale-LSDB injections land, and the periodic audit runs.
// With nothing injected and no audit configured this is two compares.
func (p *Plane) Tick(now sim.Time) {
	for len(p.stale) > 0 && p.stale[0].at <= now {
		inj := p.stale[0]
		p.stale = p.stale[1:]
		p.corruptAdv(inj.link, inj.up)
		p.stats.StaleInjected++
		p.refreshFIB()
		p.updateEpisode(now)
	}
	if p.cfg.AuditEvery > 0 && sim.Duration(now-p.lastAudit) >= p.cfg.AuditEvery {
		p.lastAudit = now
		p.stats.Audits++
		if p.repair(now, "audit") {
			p.stats.AuditRepairs++
		}
	}
}

// Inject arms a control-plane divergence fault.
func (p *Plane) Inject(d fault.Divergence) {
	switch d.Kind {
	case fault.DivergeFailedPush:
		p.skipPushes += d.Skip
		p.dropPushes += d.Count
	case fault.DivergeStaleLSDB:
		p.stale = append(p.stale, staleInj{at: d.At, link: d.Link, up: d.Up})
		sort.SliceStable(p.stale, func(i, j int) bool { return p.stale[i].at < p.stale[j].at })
	case fault.DivergePartialRollout:
		p.partialOps = d.Ops
	}
}

// Divergent returns every link whose truth disagrees with belief or
// committed intent — the fuzz oracle's convergence check. Empty means
// the plane's model of the fabric is exact.
func (p *Plane) Divergent() []topology.LinkID {
	var out []topology.LinkID
	for l := range p.belief {
		link := topology.LinkID(l)
		truth := p.fab.LinkAdminUp(link)
		if truth != p.belief[l] || truth != p.intent[l] {
			out = append(out, link)
		}
	}
	return out
}

// Diverged reports whether a belief≠truth episode is currently open.
func (p *Plane) Diverged() bool { return p.diverged }

// Stats returns the plane's counters.
func (p *Plane) Stats() Stats { return p.stats }

// Episodes returns the length of every closed divergence episode.
func (p *Plane) Episodes() []sim.Duration { return append([]sim.Duration(nil), p.episodes...) }

// Log returns the ChangeSet log.
func (p *Plane) Log() []ChangeSet { return p.log }

// Alerts returns the rollback/divergence alerts raised so far.
func (p *Plane) Alerts() []Alert { return p.alerts }

// repair is the shared reconcile/audit pass. Lost intents are
// re-pushed through a verified ChangeSet; stale advertisements adopt
// truth. Reports whether any divergence was found.
func (p *Plane) repair(now sim.Time, reason string) bool {
	var repush []Op
	var adopt []topology.LinkID
	for l := range p.belief {
		link := topology.LinkID(l)
		truth := p.fab.LinkAdminUp(link)
		if truth != p.intent[l] {
			repush = append(repush, Op{Link: link, Up: p.intent[l]})
		} else if p.belief[l] != truth {
			adopt = append(adopt, link)
		}
	}
	if len(repush) == 0 && len(adopt) == 0 {
		return false
	}
	for _, link := range adopt {
		p.adoptTruth(link)
		p.stats.StaleAdopted++
	}
	if len(repush) > 0 {
		p.Apply(now, reason, repush)
	}
	p.refreshFIB()
	p.updateEpisode(now)
	return true
}

// push issues one SetLinkAdmin to the fabric.
func (p *Plane) push(op Op) {
	p.fab.SetLinkAdmin(op.Link, op.Up)
	p.stats.Pushed++
}

// dropPush consumes the failed-push injection state for one push and
// reports whether this push is silently lost.
func (p *Plane) dropPush() bool {
	if p.skipPushes > 0 {
		p.skipPushes--
		return false
	}
	if p.dropPushes > 0 {
		p.dropPushes--
		p.stats.PushesDropped++
		return true
	}
	return false
}

// setAdv writes every advertisement slot of a link and refreshes its
// believed state.
func (p *Plane) setAdv(link topology.LinkID, up bool) {
	for _, s := range p.slots[p.slotAt[link]:p.slotAt[link+1]] {
		p.adv[s.sw][s.idx] = up
	}
	p.refreshBelief(link)
}

// corruptAdv overwrites a single switch's advertisement — the
// stale-LSDB injection: one side of the link remembers a state the
// fabric has moved past.
func (p *Plane) corruptAdv(link topology.LinkID, up bool) {
	slots := p.slots[p.slotAt[link]:p.slotAt[link+1]]
	if len(slots) == 0 {
		return
	}
	p.adv[slots[0].sw][slots[0].idx] = up
	p.refreshBelief(link)
}

// adoptTruth re-syncs a link's advertisements (and so its belief) to
// the fabric's live state.
func (p *Plane) adoptTruth(link topology.LinkID) {
	p.setAdv(link, p.fab.LinkAdminUp(link))
}

// refreshBelief re-derives a link's believed state: up iff every
// terminating switch advertises it up.
func (p *Plane) refreshBelief(link topology.LinkID) {
	up := true
	for _, s := range p.slots[p.slotAt[link]:p.slotAt[link+1]] {
		up = up && p.adv[s.sw][s.idx]
	}
	if p.belief[link] != up {
		p.belief[link] = up
		p.dirty = true
	}
}

// refreshFIB reconverges the believed FIB if belief changed — the
// same full-rebuild semantics as the fabric's own recompute.
func (p *Plane) refreshFIB() {
	if !p.dirty {
		return
	}
	p.dirty = false
	p.fib.Recompute(func(l topology.LinkID) bool { return p.belief[l] })
}

// updateEpisode tracks belief≠truth episodes for the divergence
// metrics (time-to-reconcile).
func (p *Plane) updateEpisode(now sim.Time) {
	div := false
	for l := range p.belief {
		truth := p.fab.LinkAdminUp(topology.LinkID(l))
		if truth != p.belief[l] || truth != p.intent[l] {
			div = true
			break
		}
	}
	switch {
	case div && !p.diverged:
		p.diverged = true
		p.divergedAt = now
		p.stats.Divergences++
	case !div && p.diverged:
		p.diverged = false
		d := sim.Duration(now - p.divergedAt)
		p.episodes = append(p.episodes, d)
		p.stats.Reconciled++
		p.stats.TotalDiverged += d
		if d > p.stats.MaxDiverged {
			p.stats.MaxDiverged = d
		}
	}
}

func (p *Plane) alert(now sim.Time, reason, detail string) {
	a := Alert{At: now, Reason: reason, Detail: detail}
	p.alerts = append(p.alerts, a)
	if p.cfg.OnAlert != nil {
		p.cfg.OnAlert(a)
	}
}
