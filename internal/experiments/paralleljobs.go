package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
)

// ParallelJobsConfig exercises the shared monitoring plane (§7
// "Parallel Jobs"): two concurrent training jobs on one fabric, ONE
// telemetry tap per switch, per-job analysis pipelines, and one shared
// remediator. Three runs demonstrate the plane's contracts:
//
//   - shared fault, corroborated: both jobs' rings traverse the faulty
//     trunk; both pipelines flag it, the arbiter quarantines it ONCE,
//     and cross-job corroboration confirms after each job's 2nd
//     deviating window instead of the single-job K=3.
//   - shared fault, K=3: the same fault with corroboration disabled —
//     the classic confirmation path, for the time-to-quarantine delta.
//   - job-local fault: the jobs train on disjoint leaf spans and the
//     fault sits inside job 1's slice; job 2's pipeline must stay
//     silent (attribution does not leak across jobs).
type ParallelJobsConfig struct {
	// Leaves, Spines, BytesPerRank shape the fabric (defaults 8×4,
	// 8 MiB; HostsPerLeaf is 2 — one host column per job).
	Leaves, Spines int
	BytesPerRank   int64
	// Iterations is the per-job run length (default 10).
	Iterations int
	// DropRate is the injected silent loss (default 5%).
	DropRate float64
	// Onset is the job-1 iteration after which the fault activates
	// (default 2).
	Onset int
	// Seed roots the randomness.
	Seed uint64
}

func (c *ParallelJobsConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 8
	}
	if c.Spines == 0 {
		c.Spines = 4
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 8 << 20
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.DropRate == 0 {
		c.DropRate = 0.05
	}
	if c.Onset == 0 {
		c.Onset = 2
	}
}

// ParallelJobsRow is one run's outcome.
type ParallelJobsRow struct {
	Name string
	// AlertsByJob counts each job's pipeline events (job id → count).
	AlertsJob1, AlertsJob2 int
	// Quarantines and Corroborations are the shared arbiter's counters.
	Quarantines, Corroborations uint64
	// TimeToQuarantine is first quarantine minus fault onset (0 when
	// the run never quarantined).
	TimeToQuarantine sim.Duration
	// Detail is the confirmation's timeline detail (shows whether the
	// cross-job fast path fired).
	Detail string
}

// ParallelJobsResult is the experiment outcome.
type ParallelJobsResult struct {
	Config ParallelJobsConfig
	Rows   []ParallelJobsRow
}

// parallelRun builds a two-job scenario, attaches the shared plane,
// injects a fault at the onset iteration of job 1, and summarizes.
func parallelRun(name string, sc core.Scenario, rcfg remediate.Config, ref core.LeafSpineLink, cfg ParallelJobsConfig) (ParallelJobsRow, error) {
	row := ParallelJobsRow{Name: name}
	rt, err := sc.Build()
	if err != nil {
		return row, err
	}
	scfg := core.SharedConfig{Net: rt.Net, Stack: rt.Stack, Remediate: &rcfg}
	for _, jr := range rt.Jobs {
		scfg.Jobs = append(scfg.Jobs, core.SharedJobConfig{
			Job: jr.Spec.Job, Demand: jr.Coll.Demand(),
		})
	}
	sys, err := core.AttachShared(scfg)
	if err != nil {
		return row, err
	}
	var onsetAt sim.Time
	rt.StartAllJobs(func(now sim.Time, job uint16, iter uint32) {
		if job == rt.Jobs[0].Spec.Job && int(iter) == cfg.Onset {
			onsetAt = now
			rt.InjectSilentDrop(ref, cfg.DropRate)
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())

	row.AlertsJob1 = len(sys.Pipeline(rt.Jobs[0].Spec.Job).Events)
	row.AlertsJob2 = len(sys.Pipeline(rt.Jobs[1].Spec.Job).Events)
	st := sys.Remediator().Stats()
	row.Quarantines, row.Corroborations = st.Quarantines, st.Corroborations
	for _, a := range sys.Remediator().Timeline {
		switch a.Kind {
		case remediate.ActionConfirm:
			if row.Detail == "" {
				row.Detail = a.Detail
			}
		case remediate.ActionQuarantine:
			if row.TimeToQuarantine == 0 {
				row.TimeToQuarantine = sim.Duration(a.At - onsetAt)
			}
		}
	}
	return row, nil
}

// ParallelJobs runs all three scenarios.
func ParallelJobs(cfg ParallelJobsConfig) (*ParallelJobsResult, error) {
	cfg.setDefaults()
	base := core.Scenario{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: 2,
		BytesPerRank: cfg.BytesPerRank, Iterations: cfg.Iterations,
		Seed: cfg.Seed,
		Jobs: []core.JobScenario{
			{Job: 1, HostIx: 0},
			{Job: 2, HostIx: 1},
		},
	}
	res := &ParallelJobsResult{Config: cfg}
	sharedRef := core.LeafSpineLink{LeafOrd: cfg.Leaves / 2, SpineOrd: 1}

	// Both jobs span every leaf: the faulty trunk carries both rings.
	row, err := parallelRun("shared fault, corroborated", base, remediate.Config{}, sharedRef, cfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	row, err = parallelRun("shared fault, K=3", base, remediate.Config{CorroborateWindows: -1}, sharedRef, cfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// Disjoint leaf spans: the fault sits inside job 1's slice, out of
	// job 2's reach. (Spans must be identical or disjoint — a partial
	// overlap inherits the other job's spray comb at its private
	// leaves; see DESIGN.md.)
	local := base
	local.Jobs = []core.JobScenario{
		{Job: 1, HostIx: 0, LeafFirst: 0, LeafCount: cfg.Leaves / 2},
		{Job: 2, HostIx: 1, LeafFirst: cfg.Leaves / 2, LeafCount: cfg.Leaves - cfg.Leaves/2},
	}
	localRef := core.LeafSpineLink{LeafOrd: 0, SpineOrd: cfg.Spines / 2}
	row, err = parallelRun("job-local fault", local, remediate.Config{}, localRef, cfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// String renders the comparison.
func (r *ParallelJobsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel jobs on one shared monitoring plane — %dx%d fat tree, 2 jobs, %d MiB per rank, %s drop\n",
		r.Config.Leaves, r.Config.Spines, r.Config.BytesPerRank>>20, pct(r.Config.DropRate))
	fmt.Fprintf(&b, "%-28s %7s %7s %5s %7s %14s\n",
		"run", "j1", "j2", "quar", "corrob", "t-quarantine")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %7d %7d %5d %7d %14v\n",
			row.Name, row.AlertsJob1, row.AlertsJob2,
			row.Quarantines, row.Corroborations, row.TimeToQuarantine)
	}
	for _, row := range r.Rows {
		if row.Detail != "" {
			fmt.Fprintf(&b, "confirm (%s): %s\n", row.Name, row.Detail)
		}
	}
	return b.String()
}

// CSV renders plottable rows.
func (r *ParallelJobsResult) CSV() string {
	var b strings.Builder
	b.WriteString("run,alerts_job1,alerts_job2,quarantines,corroborations,time_to_quarantine_us\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%.3f\n",
			row.Name, row.AlertsJob1, row.AlertsJob2, row.Quarantines,
			row.Corroborations, float64(row.TimeToQuarantine)/float64(sim.Microsecond))
	}
	return b.String()
}
