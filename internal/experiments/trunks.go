package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
)

// TrunkConfig reproduces §7 "Parallel Links": fabrics often bond
// several parallel cables between a leaf-spine pair. FlowPulse treats
// each member as an independent virtual link — the monitor keeps one
// counter per physical port — so a single degraded member of a trunk
// is detected and named even though the trunk as a whole still
// forwards.
type TrunkConfig struct {
	// Trunk is the number of parallel links per leaf-spine pair
	// (default 2).
	Trunk int
	// Leaves, Spines, BytesPerRank (defaults 16×8, 16 MiB — half the
	// paper fabric, since the port count doubles with the trunk).
	Leaves, Spines int
	BytesPerRank   int64
	// DropRate on the single faulty trunk member (default 3%).
	DropRate float64
	// Threshold (default 1%).
	Threshold float64
	// Trials.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *TrunkConfig) setDefaults() {
	if c.Trunk == 0 {
		c.Trunk = 2
	}
	if c.Leaves == 0 {
		c.Leaves = 16
	}
	if c.Spines == 0 {
		c.Spines = 8
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.03
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 2
	}
	if c.FaultIters == 0 {
		c.FaultIters = 2
	}
}

// TrunkResult is the reproduced table.
type TrunkResult struct {
	Config TrunkConfig
	// FPR and FNR at the threshold.
	FPR, FNR float64
	// CorrectMember counts deficit alerts naming exactly the faulty
	// trunk member's port; WrongMember counts deficit alerts on other
	// ports.
	CorrectMember, WrongMember int
}

// Trunks runs the experiment: a fault on trunk member 1 of one
// leaf-spine pair.
func Trunks(cfg TrunkConfig) (*TrunkResult, error) {
	cfg.setDefaults()
	res := &TrunkResult{Config: cfg}
	var samples []metrics.Sample
	for tr := 0; tr < cfg.Trials; tr++ {
		sc := withNoise(core.Scenario{
			Leaves: cfg.Leaves, Spines: cfg.Spines, Trunk: cfg.Trunk,
			BytesPerRank: cfg.BytesPerRank,
			Seed:         cfg.Seed + uint64(tr)*631,
		})
		fault := faultLinkFor(sc, tr)
		fault.Trunk = 1 % cfg.Trunk
		trial := Trial{
			Scenario: sc, Fault: fault, DropRate: cfg.DropRate,
			CleanIters: cfg.CleanIters, FaultIters: cfg.FaultIters,
		}
		out, err := trial.Run()
		if err != nil {
			return nil, err
		}
		samples = append(samples, out.Samples...)
		// The faulty member's uplink index at the leaf: spine ordinal ×
		// trunk + member.
		wantUplink := fault.SpineOrd*cfg.Trunk + fault.Trunk
		for _, e := range out.Events {
			if e.Alert.Deviation >= 0 || int(e.Alert.Iter) <= cfg.CleanIters {
				continue
			}
			if e.Alert.LeafOrdinal == fault.LeafOrd && e.Alert.Uplink == wantUplink {
				res.CorrectMember++
			} else {
				res.WrongMember++
			}
		}
	}
	res.FPR, res.FNR = metrics.RatesAt(samples, cfg.Threshold)
	return res, nil
}

// String renders the result.
func (r *TrunkResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel links (§7) — %d-way trunks, %s fault on one member, %dx%d fat tree\n",
		r.Config.Trunk, pct(r.Config.DropRate), r.Config.Leaves, r.Config.Spines)
	fmt.Fprintf(&b, "FPR %s / FNR %s at θ=%s\n", pct(r.FPR), pct(r.FNR), pct(r.Config.Threshold))
	fmt.Fprintf(&b, "deficit alerts naming the faulty member: %d correct, %d elsewhere\n",
		r.CorrectMember, r.WrongMember)
	return b.String()
}
