package experiments

import (
	"fmt"
	"math"
	"strings"

	"flowpulse/internal/collective"
	"flowpulse/internal/core"
	"flowpulse/internal/predict"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// Fig2Config reproduces Figure 2: "Analytical prediction matches the
// simulation for a single flow." One bulk flow crosses the fabric
// repeatedly; the analytical per-port prediction is compared with the
// volume the simulated leaf switch actually measures, in the presence
// of pre-existing (known) faults that skew the expected distribution.
type Fig2Config struct {
	// Leaves, Spines shape the fabric (paper default 32×16).
	Leaves, Spines int
	// FlowBytes is the single flow's payload per iteration (default
	// 16 MiB).
	FlowBytes int64
	// Iterations averages the observation (default 4).
	Iterations int
	// PreExisting disconnects known-faulty links so the expected
	// distribution is non-uniform (default: two links on the
	// destination side).
	PreExisting []core.LeafSpineLink
	// Seed roots the randomness.
	Seed uint64
}

func (c *Fig2Config) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.FlowBytes == 0 {
		c.FlowBytes = 16 << 20
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.PreExisting == nil {
		// Known faults touching the flow's destination leaf and source
		// leaf, so the prediction must use d/(s−f).
		c.PreExisting = []core.LeafSpineLink{
			{LeafOrd: c.Leaves - 1, SpineOrd: 2},
			{LeafOrd: 0, SpineOrd: 7 % c.Spines},
		}
	}
}

// Fig2Port is one bar pair of the figure.
type Fig2Port struct {
	Uplink              int
	Predicted, Observed float64
	RelErr              float64 // |obs−pred|/pred, 0 when both ~0
}

// Fig2Result is the reproduced figure.
type Fig2Result struct {
	Config Fig2Config
	Ports  []Fig2Port
	// MaxRelErr is the worst per-port relative error across ports with
	// expected traffic — the figure's "close agreement" quantified.
	MaxRelErr float64
}

// Fig2 runs the experiment.
func Fig2(cfg Fig2Config) (*Fig2Result, error) {
	cfg.setDefaults()
	sc := core.Scenario{
		Leaves: cfg.Leaves, Spines: cfg.Spines,
		Iterations:  cfg.Iterations,
		PreExisting: cfg.PreExisting,
		Seed:        cfg.Seed,
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	// Replace the default collective with the single flow 0 → last.
	src := topology.HostID(0)
	dst := topology.HostID(len(rt.Group) - 1)
	rt.Coll = &collective.SingleFlow{Src: src, Dst: dst, Bytes: cfg.FlowBytes}

	dstLeafOrd := cfg.Leaves - 1
	pred := predict.NewAnalytical(rt.Topo, rt.Net, rt.Stack, rt.Coll.Demand())
	expected := pred.PortLoad(dstLeafOrd)

	observed := make([]float64, cfg.Spines)
	windows := 0
	coll := telemetry.AttachAll(rt.Net, int(sc.Job), func(w *telemetry.Window) {
		if w.LeafOrdinal != dstLeafOrd {
			return
		}
		windows++
		for u, b := range w.PortBytes {
			observed[u] += float64(b)
		}
	})
	rt.StartTraining(nil, nil)
	rt.Run()
	coll.FlushAll(rt.Engine.Now())
	if windows == 0 {
		return nil, fmt.Errorf("fig2: no measurement windows closed")
	}
	for u := range observed {
		observed[u] /= float64(windows)
	}

	res := &Fig2Result{Config: cfg}
	for u := 0; u < cfg.Spines; u++ {
		p := Fig2Port{Uplink: u, Predicted: expected[u], Observed: observed[u]}
		if expected[u] > 1 {
			p.RelErr = math.Abs(observed[u]-expected[u]) / expected[u]
			if p.RelErr > res.MaxRelErr {
				res.MaxRelErr = p.RelErr
			}
		}
		res.Ports = append(res.Ports, p)
	}
	return res, nil
}

// String renders the figure as the table of per-port bars.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — analytical prediction vs simulation, single %d MiB flow, %dx%d fat tree, %d known faults\n",
		r.Config.FlowBytes>>20, r.Config.Leaves, r.Config.Spines, len(r.Config.PreExisting))
	fmt.Fprintf(&b, "%-8s %14s %14s %8s\n", "uplink", "predicted B", "observed B", "err")
	for _, p := range r.Ports {
		fmt.Fprintf(&b, "%-8d %14.0f %14.0f %8s\n", p.Uplink, p.Predicted, p.Observed, pct(p.RelErr))
	}
	fmt.Fprintf(&b, "max relative error: %s\n", pct(r.MaxRelErr))
	return b.String()
}
