package experiments

import (
	"fmt"
	"strings"
)

// CSV renders Figure 5(a) as drop_rate,threshold,fpr,fnr rows for
// plotting.
func (r *Fig5aResult) CSV() string {
	var b strings.Builder
	b.WriteString("drop_rate,threshold,fpr,fnr\n")
	for _, c := range r.Curves {
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%g,%g,%g,%g\n", c.DropRate, p.Threshold, p.FPR, p.FNR)
		}
	}
	return b.String()
}

// CSV renders Figure 5(b) as radix,threshold,fpr,fnr rows.
func (r *Fig5bResult) CSV() string {
	var b strings.Builder
	b.WriteString("radix,leaves,spines,threshold,fpr,fnr\n")
	for _, row := range r.Rows {
		for i, th := range r.Config.Thresholds {
			fmt.Fprintf(&b, "%d,%d,%d,%g,%g,%g\n", row.Radix, row.Leaves, row.Spines, th, row.FPR[i], row.FNR[i])
		}
	}
	return b.String()
}

// CSV renders Figure 5(c) as size_bytes,drop_rate,fpr,fnr rows.
func (r *Fig5cResult) CSV() string {
	var b strings.Builder
	b.WriteString("size_bytes,drop_rate,fpr,fnr\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%d,%g,%g,%g\n", c.Bytes, c.DropRate, c.FPR, c.FNR)
	}
	return b.String()
}

// CSV renders Figure 2 as uplink,predicted,observed rows.
func (r *Fig2Result) CSV() string {
	var b strings.Builder
	b.WriteString("uplink,predicted_bytes,observed_bytes,rel_err\n")
	for _, p := range r.Ports {
		fmt.Fprintf(&b, "%d,%g,%g,%g\n", p.Uplink, p.Predicted, p.Observed, p.RelErr)
	}
	return b.String()
}

// CSV renders Figure 3 as iter,observed,baseline,alert rows.
func (r *Fig3Result) CSV() string {
	var b strings.Builder
	b.WriteString("iter,observed_bytes,baseline_bytes,alert\n")
	for _, pt := range r.Series {
		alert := 0
		if pt.Alerted {
			alert = 1
		}
		fmt.Fprintf(&b, "%d,%g,%g,%d\n", pt.Iter, pt.Observed, pt.Baseline, alert)
	}
	return b.String()
}
