package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
)

// HeadlineConfig reproduces the abstract's headline claim:
// "FlowPulse identifies a single faulty link with 1.5% corruption rate
// by checking temporal symmetry in a full two-level fat tree topology
// with 32 leaf switches while performing Ring-AllReduce on all nodes."
type HeadlineConfig struct {
	// DropRate of the single faulty link (default 1.5%).
	DropRate float64
	// BytesPerRank (default 64 MiB — the paper notes LLM collectives
	// reach GBs, "well beyond the amount needed").
	BytesPerRank int64
	// Threshold (default 1%).
	Threshold float64
	// CleanIters and FaultIters.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *HeadlineConfig) setDefaults() {
	if c.DropRate == 0 {
		c.DropRate = 0.015
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 64 << 20
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.CleanIters == 0 {
		c.CleanIters = 2
	}
	if c.FaultIters == 0 {
		c.FaultIters = 4
	}
}

// HeadlineResult is the reproduced claim.
type HeadlineResult struct {
	Config HeadlineConfig
	// Detected reports whether the fault alerted at all.
	Detected bool
	// DetectionLatencyIters is how many fault iterations passed before
	// the first alert (1 = the first faulty iteration's window).
	DetectionLatencyIters int
	// CorrectPort reports whether every deficit alert named the faulty
	// leaf/port.
	CorrectPort bool
	// FalseAlerts counts clean-phase alerts.
	FalseAlerts int
	// FPR and FNR over the per-iteration samples.
	FPR, FNR float64
}

// Headline runs the experiment on the paper's 32×16 fabric.
func Headline(cfg HeadlineConfig) (*HeadlineResult, error) {
	cfg.setDefaults()
	fault := core.LeafSpineLink{LeafOrd: 11, SpineOrd: 5}
	tr := Trial{
		Scenario: withNoise(core.Scenario{
			Leaves: 32, Spines: 16,
			BytesPerRank: cfg.BytesPerRank,
			Seed:         cfg.Seed,
		}),
		Fault:      fault,
		DropRate:   cfg.DropRate,
		CleanIters: cfg.CleanIters,
		FaultIters: cfg.FaultIters,
	}
	out, err := tr.Run()
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{Config: cfg, FalseAlerts: out.FalseAlerts, CorrectPort: true}
	if out.FirstDetection > 0 {
		res.Detected = true
		res.DetectionLatencyIters = int(out.FirstDetection) - cfg.CleanIters
	}
	for _, e := range out.Events {
		if e.Alert.Deviation < 0 && (e.Alert.LeafOrdinal != fault.LeafOrd || e.Alert.Uplink != fault.SpineOrd) {
			res.CorrectPort = false
		}
	}
	res.FPR, res.FNR = metrics.RatesAt(out.Samples, cfg.Threshold)
	return res, nil
}

// String renders the result.
func (r *HeadlineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline — single link at %s drop, 32x16 fat tree, Ring-AllReduce %d MiB per rank, θ=%s\n",
		pct(r.Config.DropRate), r.Config.BytesPerRank>>20, pct(r.Config.Threshold))
	fmt.Fprintf(&b, "detected: %v", r.Detected)
	if r.Detected {
		fmt.Fprintf(&b, " (latency %d iteration(s))", r.DetectionLatencyIters)
	}
	fmt.Fprintf(&b, "\ndeficit alerts at the faulty port only: %v\n", r.CorrectPort)
	fmt.Fprintf(&b, "clean-phase false alerts: %d\n", r.FalseAlerts)
	fmt.Fprintf(&b, "per-iteration FPR %s / FNR %s\n", pct(r.FPR), pct(r.FNR))
	return b.String()
}
