package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
	"flowpulse/internal/spray"
)

// AblationConfig quantifies DESIGN.md's spray-policy design choice:
// temporal symmetry is only as tight as the load balancer is smooth.
// For each policy, it measures the clean-network noise floor (max
// per-port deviation, which bounds the usable threshold) and the
// detectability of a 1.5% fault at the 1% threshold.
type AblationConfig struct {
	// Policies to compare (default: all built-ins).
	Policies []spray.Kind
	// Leaves, Spines, BytesPerRank (defaults 32×16, 16 MiB).
	Leaves, Spines int
	BytesPerRank   int64
	// DropRate for the fault phase (default 1.5%).
	DropRate float64
	// CleanIters and FaultIters.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *AblationConfig) setDefaults() {
	if c.Policies == nil {
		c.Policies = spray.Kinds()
	}
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.015
	}
	if c.CleanIters == 0 {
		c.CleanIters = 3
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
}

// AblationRow is one policy's outcome.
type AblationRow struct {
	Policy spray.Kind
	// CleanNoise is the max per-iteration score during the clean phase
	// — the floor below which no threshold is usable.
	CleanNoise float64
	// FPR and FNR at the 1% threshold.
	FPR, FNR float64
}

// AblationResult is the comparison table.
type AblationResult struct {
	Config AblationConfig
	Rows   []AblationRow
}

// Ablation runs the comparison.
func Ablation(cfg AblationConfig) (*AblationResult, error) {
	cfg.setDefaults()
	res := &AblationResult{Config: cfg}
	for _, policy := range cfg.Policies {
		sc := core.Scenario{
			Leaves: cfg.Leaves, Spines: cfg.Spines,
			BytesPerRank: cfg.BytesPerRank,
			Spray:        policy,
			Seed:         cfg.Seed + 17,
		}
		tr := Trial{
			Scenario:   withNoise(sc),
			Fault:      faultLinkFor(sc, 0),
			DropRate:   cfg.DropRate,
			CleanIters: cfg.CleanIters,
			FaultIters: cfg.FaultIters,
		}
		out, err := tr.Run()
		if err != nil {
			return nil, err
		}
		row := AblationRow{Policy: policy}
		for i, s := range out.Samples {
			if i < cfg.CleanIters && s.Score > row.CleanNoise {
				row.CleanNoise = s.Score
			}
		}
		row.FPR, row.FNR = metrics.RatesAt(out.Samples, 0.01)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — spray policy vs temporal-symmetry noise (%dx%d, %d MiB per rank, %s fault)\n",
		r.Config.Leaves, r.Config.Spines, r.Config.BytesPerRank>>20, pct(r.Config.DropRate))
	fmt.Fprintf(&b, "%-14s %12s %8s %8s\n", "policy", "clean noise", "FPR@1%", "FNR@1%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %12s %8s %8s\n", row.Policy, pct(row.CleanNoise), pct(row.FPR), pct(row.FNR))
	}
	return b.String()
}
