// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each experiment has a Config with paper
// defaults, a Result with the same rows/series the paper reports, and
// a String renderer the flowpulse-eval CLI prints. DESIGN.md maps each
// experiment to the paper figure it reproduces; EXPERIMENTS.md records
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/metrics"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/trace"
)

// Trial is one simulation run: CleanIters fault-free iterations
// followed by FaultIters iterations with a silent Bernoulli drop on
// one leaf-spine link.
type Trial struct {
	// Scenario shapes the network and workload. Iterations is
	// overridden to CleanIters+FaultIters.
	Scenario core.Scenario
	// Kind selects the load model (default analytical, as in §6).
	Kind core.PredictorKind
	// ReferenceIters sizes the reference run for the simulation model.
	ReferenceIters int
	// Fault locates the silently faulty link.
	Fault core.LeafSpineLink
	// DropRate is the Bernoulli drop probability; 0 runs fault-free.
	DropRate float64
	// Upstream faults the leaf→spine direction instead of spine→leaf.
	Upstream bool
	// CleanIters and FaultIters split the run.
	CleanIters, FaultIters int
	// Detect tunes the detector; the zero value keeps the paper
	// defaults. Experiments that sweep detector mitigations (the
	// congestion study's CE discount) set it per trial.
	Detect detect.Config
	// Remediate attaches the default closed-loop control plane.
	Remediate bool
	// TracePath records the run (windows, events, remediation, fault
	// schedule) to a .fpt trace for offline replay; TraceLabel
	// annotates its header.
	TracePath, TraceLabel string
}

// TrialResult is the outcome of one Trial.
type TrialResult struct {
	// Samples holds one classifier sample per iteration: the max
	// absolute deviation across all leaves and ports, labeled by
	// whether the fault was active.
	Samples []metrics.Sample
	// Events are the detections raised (with localization).
	Events []core.Event
	// FirstDetection is the iteration of the first fault-phase alert
	// (0 = never detected).
	FirstDetection uint32
	// FalseAlerts counts alerts raised during the clean phase.
	FalseAlerts int
	// Elapsed is the simulated duration of the whole run.
	Elapsed sim.Duration
}

// Run executes the trial.
func (tr Trial) Run() (*TrialResult, error) {
	sc := tr.Scenario
	sc.Iterations = tr.CleanIters + tr.FaultIters
	if tr.Kind == "" {
		tr.Kind = core.AnalyticalModel
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	cfg := core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Kind: tr.Kind, Detect: tr.Detect, Job: int(sc.Job),
		TracePath: tr.TracePath, TraceLabel: tr.TraceLabel,
		Control: rt.Plane,
	}
	if tr.Remediate {
		cfg.Remediate = &remediate.Config{}
	}
	if tr.Kind == core.SimulationModel {
		iters := tr.ReferenceIters
		if iters == 0 {
			iters = 3
		}
		ref, err := core.ReferenceRun(sc, iters)
		if err != nil {
			return nil, err
		}
		cfg.ReferenceWindows = ref
	}
	sys, err := core.Attach(cfg)
	if err != nil {
		return nil, err
	}

	inject := func() {
		if tr.DropRate <= 0 {
			return
		}
		if tr.Upstream {
			rt.InjectSilentDropUpstream(tr.Fault, tr.DropRate)
		} else {
			rt.InjectSilentDrop(tr.Fault, tr.DropRate)
		}
		if trc := sys.TraceWriter(); trc != nil {
			// Ground truth for the trace: the iteration label matches
			// the Samples construction below (faulty strictly after
			// CleanIters).
			trc.Fault(trace.FaultRecord{
				At:        rt.Engine.Now(),
				Kind:      "bernoulli",
				LeafOrd:   tr.Fault.LeafOrd,
				SpineOrd:  tr.Fault.SpineOrd,
				Trunk:     tr.Fault.Trunk,
				Upstream:  tr.Upstream,
				Rate:      tr.DropRate,
				OnsetIter: uint32(tr.CleanIters),
			})
		}
	}
	if tr.CleanIters == 0 {
		inject()
	}
	rt.StartTraining(func(_ sim.Time, iter uint32) {
		if int(iter) == tr.CleanIters {
			inject()
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())
	if trc := sys.TraceWriter(); trc != nil {
		if err := trc.Err(); err != nil {
			return nil, err
		}
	}

	res := &TrialResult{Events: sys.Events, Elapsed: sim.Duration(rt.Engine.Now())}
	scores := sys.IterationScores()
	for iter := 1; iter <= sc.Iterations; iter++ {
		res.Samples = append(res.Samples, metrics.Sample{
			Score:    scores[uint32(iter)],
			Positive: tr.DropRate > 0 && iter > tr.CleanIters,
		})
	}
	for _, e := range sys.Events {
		if int(e.Alert.Iter) <= tr.CleanIters {
			res.FalseAlerts++
		} else if res.FirstDetection == 0 {
			res.FirstDetection = e.Alert.Iter
		}
	}
	return res, nil
}

// RunAll executes trials concurrently (bounded by GOMAXPROCS) and
// returns results in input order.
func RunAll(trials []Trial) ([]*TrialResult, error) {
	results := make([]*TrialResult, len(trials))
	errs := make([]error, len(trials))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(trials) {
		workers = len(trials)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = trials[i].Run()
			}
		}()
	}
	for i := range trials {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// DefaultThresholds is the threshold sweep of the ROC analysis:
// 0.1% … 5%.
func DefaultThresholds() []float64 {
	return []float64{0.001, 0.002, 0.003, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03, 0.05}
}

// gatherSamples merges trial samples.
func gatherSamples(results []*TrialResult) []metrics.Sample {
	var out []metrics.Sample
	for _, r := range results {
		out = append(out, r.Samples...)
	}
	return out
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// withNoise enables the scenario's background-traffic generator when
// the caller did not choose one: the evaluation's false-positive
// branch needs the realistic spray perturbation background load
// provides (an idle fabric balances a single prioritized collective
// almost perfectly, which would make every FPR identically zero).
func withNoise(sc core.Scenario) core.Scenario {
	if sc.Background == 0 {
		sc.Background = 4 * sim.Microsecond
	}
	return sc
}
