package experiments

import "fmt"

// EvalOverrides are the knobs flowpulse-eval exposes, shared with the
// golden-file regression test so both drive the exact same
// configurations.
type EvalOverrides struct {
	// Quick selects the scaled-down smoke configuration of each
	// experiment (smaller fabric, smaller collectives, one trial).
	Quick bool
	// SizeMB overrides bytes-per-rank (MiB) where an experiment has a
	// single collective size; 0 keeps the experiment default.
	SizeMB int64
	// Drop overrides the injected drop rate for experiments with one
	// (headline, remediate); 0 keeps the default.
	Drop float64
	// Trials overrides trials-per-configuration; 0 keeps the default.
	Trials int
	// Seed is the root random seed.
	Seed uint64
	// TraceDir, when set, makes trace-capable experiments (currently
	// fig5a) record their trials as .fpt traces under this directory.
	TraceDir string
	// Shards selects the engine mode for experiments wired to the
	// sharded engine (fig5a, fig5b): 0 keeps the classic single-threaded
	// engine, N ≥ 1 runs the sharded parallel engine with N workers.
	// Results are bit-identical for every N ≥ 1 (DESIGN.md decision 12).
	Shards int
}

// EvalOrder is the canonical experiment order, matching the paper's
// presentation.
var EvalOrder = []string{
	"fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c", "preexisting",
	"headline", "faulttypes", "jitter", "trunks", "clos3", "blocking",
	"remediate", "resilience", "paralleljobs", "congestion", "divergence",
	"ablation",
}

// EvalExperiments returns the experiment registry under the given
// overrides. Every entry is safe to call independently; results
// implement fmt.Stringer (and CSV() string where plottable).
func EvalExperiments(o EvalOverrides) map[string]func() (fmt.Stringer, error) {
	return map[string]func() (fmt.Stringer, error){
		"fig2": func() (fmt.Stringer, error) {
			cfg := Fig2Config{Seed: o.Seed}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.FlowBytes = 8, 4, 4<<20
			}
			if o.SizeMB > 0 {
				cfg.FlowBytes = o.SizeMB << 20
			}
			return Fig2(cfg)
		},
		"fig3": func() (fmt.Stringer, error) {
			cfg := Fig3Config{Seed: o.Seed}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank = 8, 4, 4<<20
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Fig3(cfg)
		},
		"fig4": func() (fmt.Stringer, error) {
			cfg := Fig4Config{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 16<<20, 1
			}
			return Fig4(cfg)
		},
		"fig5a": func() (fmt.Stringer, error) {
			cfg := Fig5aConfig{Trials: o.Trials, TraceDir: o.TraceDir}
			cfg.Scenario.Seed = o.Seed
			cfg.Scenario.Shards = o.Shards
			if o.Quick {
				cfg.Scenario.Leaves, cfg.Scenario.Spines = 8, 4
				cfg.Scenario.BytesPerRank = 4 << 20
				cfg.Trials = 1
			}
			if o.SizeMB > 0 {
				cfg.Scenario.BytesPerRank = o.SizeMB << 20
			}
			return Fig5a(cfg)
		},
		"fig5b": func() (fmt.Stringer, error) {
			cfg := Fig5bConfig{Seed: o.Seed, Trials: o.Trials, Shards: o.Shards}
			if o.Quick {
				cfg.Radixes = []int{8, 16}
				cfg.BytesPerRank = 4 << 20
				cfg.Trials = 1
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Fig5b(cfg)
		},
		"fig5c": func() (fmt.Stringer, error) {
			cfg := Fig5cConfig{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines = 8, 4
				cfg.Sizes = []int64{1 << 20, 8 << 20}
				cfg.Trials = 1
			}
			return Fig5c(cfg)
		},
		"preexisting": func() (fmt.Stringer, error) {
			cfg := PreExistingConfig{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank = 8, 4, 8<<20
				cfg.Counts = []int{0, 2, 4}
				cfg.Trials = 1
			}
			return PreExisting(cfg)
		},
		"headline": func() (fmt.Stringer, error) {
			cfg := HeadlineConfig{Seed: o.Seed, DropRate: o.Drop}
			if o.Quick {
				cfg.BytesPerRank = 16 << 20
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Headline(cfg)
		},
		"faulttypes": func() (fmt.Stringer, error) {
			cfg := FaultTypesConfig{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return FaultTypes(cfg)
		},
		"jitter": func() (fmt.Stringer, error) {
			cfg := JitterConfig{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Jitter(cfg)
		},
		"trunks": func() (fmt.Stringer, error) {
			cfg := TrunkConfig{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Trunks(cfg)
		},
		"clos3": func() (fmt.Stringer, error) {
			cfg := Clos3Config{Seed: o.Seed}
			if o.Quick {
				cfg.Pods, cfg.LeavesPerPod, cfg.SpinesPerPod, cfg.CoresPerGroup = 2, 4, 2, 2
				cfg.Iterations, cfg.InjectAt = 8, 4
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Clos3(cfg)
		},
		"blocking": func() (fmt.Stringer, error) {
			cfg := BlockingConfig{Seed: o.Seed, Trials: o.Trials}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 8<<20, 1
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Blocking(cfg)
		},
		"remediate": func() (fmt.Stringer, error) {
			// Already small-scale (8×4): Quick needs no extra scaling.
			cfg := RemediationConfig{Seed: o.Seed, DropRate: o.Drop}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Remediation(cfg)
		},
		"resilience": func() (fmt.Stringer, error) {
			// Already small-scale (8×2×4); Quick only trims the run
			// length.
			cfg := ResilienceConfig{Seed: o.Seed, DropRate: o.Drop}
			if o.Quick {
				cfg.Iterations = 12
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Resilience(cfg)
		},
		"paralleljobs": func() (fmt.Stringer, error) {
			// Already small-scale (8×4); Quick only trims the collective.
			cfg := ParallelJobsConfig{Seed: o.Seed, DropRate: o.Drop}
			if o.Quick {
				cfg.BytesPerRank, cfg.Iterations = 4<<20, 8
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return ParallelJobs(cfg)
		},
		"congestion": func() (fmt.Stringer, error) {
			cfg := CongestionConfig{Seed: o.Seed, Trials: o.Trials, DropRate: o.Drop}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank, cfg.Trials = 8, 4, 4<<20, 1
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Congestion(cfg)
		},
		"divergence": func() (fmt.Stringer, error) {
			// Already small-scale (8×4); Quick only trims the run length.
			cfg := DivergenceConfig{Seed: o.Seed}
			if o.Quick {
				cfg.Iterations = 10
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Divergence(cfg)
		},
		"ablation": func() (fmt.Stringer, error) {
			cfg := AblationConfig{Seed: o.Seed}
			if o.Quick {
				cfg.Leaves, cfg.Spines, cfg.BytesPerRank = 8, 4, 4<<20
			}
			if o.SizeMB > 0 {
				cfg.BytesPerRank = o.SizeMB << 20
			}
			return Ablation(cfg)
		},
	}
}
