package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
)

// PreExistingConfig reproduces §6 "Effect of pre-existing faults":
// with known disconnected links already in the network, FlowPulse's
// model accounts for them, and new silent faults dropping ≥ 2.5% of
// packets are classified perfectly.
type PreExistingConfig struct {
	// Counts of pre-existing disconnected links to sweep.
	Counts []int
	// DropRates of the new silent fault.
	DropRates []float64
	// Threshold is the operating point (default 1%).
	Threshold float64
	// Leaves, Spines, BytesPerRank as usual (defaults 32×16, 16 MiB).
	Leaves, Spines int
	BytesPerRank   int64
	// Trials per cell.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *PreExistingConfig) setDefaults() {
	if c.Counts == nil {
		c.Counts = []int{0, 1, 2, 4, 8}
	}
	if c.DropRates == nil {
		c.DropRates = []float64{0.015, 0.025}
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 3
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
}

// PreExistingCell is one (count, drop rate) operating point.
type PreExistingCell struct {
	PreExisting int
	DropRate    float64
	FPR, FNR    float64
	Perfect     bool
}

// PreExistingResult is the reproduced table.
type PreExistingResult struct {
	Config PreExistingConfig
	Cells  []PreExistingCell
}

// preExistingLinks picks count distinct leaf-spine links to
// disconnect, avoiding the new-fault link and never removing a leaf's
// last uplink.
func preExistingLinks(count, leaves, spines int, avoid core.LeafSpineLink, seed uint64) []core.LeafSpineLink {
	rng := sim.NewRNG(seed, "preexisting")
	used := map[[2]int]bool{{avoid.LeafOrd, avoid.SpineOrd}: true}
	perLeaf := map[int]int{}
	var out []core.LeafSpineLink
	for len(out) < count {
		l, s := rng.PickN(leaves), rng.PickN(spines)
		if used[[2]int{l, s}] || perLeaf[l] >= spines-2 {
			continue
		}
		used[[2]int{l, s}] = true
		perLeaf[l]++
		out = append(out, core.LeafSpineLink{LeafOrd: l, SpineOrd: s})
	}
	return out
}

// PreExisting runs the experiment.
func PreExisting(cfg PreExistingConfig) (*PreExistingResult, error) {
	cfg.setDefaults()
	res := &PreExistingResult{Config: cfg}
	for _, count := range cfg.Counts {
		for _, rate := range cfg.DropRates {
			var trials []Trial
			for tr := 0; tr < cfg.Trials; tr++ {
				sc := core.Scenario{
					Leaves: cfg.Leaves, Spines: cfg.Spines,
					BytesPerRank: cfg.BytesPerRank,
					Seed:         cfg.Seed + uint64(count*100+tr) + uint64(rate*1e5),
				}
				fault := faultLinkFor(sc, tr)
				sc.PreExisting = preExistingLinks(count, cfg.Leaves, cfg.Spines, fault, sc.Seed)
				trials = append(trials, Trial{
					Scenario:   withNoise(sc),
					Fault:      fault,
					DropRate:   rate,
					CleanIters: cfg.CleanIters,
					FaultIters: cfg.FaultIters,
				})
			}
			results, err := RunAll(trials)
			if err != nil {
				return nil, err
			}
			samples := gatherSamples(results)
			fpr, fnr := metrics.RatesAt(samples, cfg.Threshold)
			res.Cells = append(res.Cells, PreExistingCell{
				PreExisting: count, DropRate: rate, FPR: fpr, FNR: fnr,
				Perfect: fpr == 0 && fnr == 0,
			})
		}
	}
	return res, nil
}

// String renders the table.
func (r *PreExistingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pre-existing faults — new-fault classification at %s threshold, %dx%d fat tree, %d MiB per rank\n",
		pct(r.Config.Threshold), r.Config.Leaves, r.Config.Spines, r.Config.BytesPerRank>>20)
	fmt.Fprintf(&b, "%-14s %-10s %8s %8s %8s\n", "pre-existing", "drop", "FPR", "FNR", "perfect")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-14d %-10s %8s %8s %8v\n", c.PreExisting, pct(c.DropRate), pct(c.FPR), pct(c.FNR), c.Perfect)
	}
	return b.String()
}
