package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/sim"
)

// Fig3Config reproduces Figure 3: "Learning-based prediction model
// update. FlowPulse learns an improved baseline after transient fault
// recovery." A transient fault is present from the start (so the
// warm-up baseline absorbs it); when the fault heals, the observed
// load re-balances, and the learned model replaces its baseline.
type Fig3Config struct {
	// Leaves, Spines shape the fabric (default 32×16).
	Leaves, Spines int
	// BytesPerRank is the collective size (default 8 MiB).
	BytesPerRank int64
	// Iterations is the series length (default 14).
	Iterations int
	// HealAfter is the iteration after which the transient fault
	// disappears (default 6).
	HealAfter int
	// Fault locates the transient fault (default leaf 5 / spine 3).
	Fault core.LeafSpineLink
	// DropRate of the transient fault (default 20%).
	DropRate float64
	// Seed roots the randomness.
	Seed uint64
}

func (c *Fig3Config) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 8 << 20
	}
	if c.Iterations == 0 {
		c.Iterations = 14
	}
	if c.HealAfter == 0 {
		c.HealAfter = 6
	}
	if c.Fault == (core.LeafSpineLink{}) {
		c.Fault = core.LeafSpineLink{LeafOrd: 5, SpineOrd: 3}
	}
	if c.DropRate == 0 {
		c.DropRate = 0.2
	}
}

// Fig3Point is one iteration of the series at the affected port.
type Fig3Point struct {
	Iter     uint32
	Observed float64 // measured bytes on the affected port
	Baseline float64 // the learned model's expectation at check time
	Alerted  bool    // did the detector fire this iteration
}

// Fig3Result is the reproduced figure.
type Fig3Result struct {
	Config Fig3Config
	Series []Fig3Point
	// RebaselinedAtIter is the iteration whose window triggered the
	// baseline replacement (0 = never — a reproduction failure).
	RebaselinedAtIter uint32
	// AlertsAfterRebaseline counts residual alerts once the new
	// baseline is in place (should be 0).
	AlertsAfterRebaseline int
}

// Fig3 runs the experiment.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg.setDefaults()
	sc := core.Scenario{
		Leaves: cfg.Leaves, Spines: cfg.Spines,
		BytesPerRank: cfg.BytesPerRank,
		Iterations:   cfg.Iterations,
		Seed:         cfg.Seed,
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	rt.InjectSilentDrop(cfg.Fault, cfg.DropRate)

	// Snapshot the baseline in effect at each window check.
	baselines := map[uint32]float64{}
	var sys *core.System
	sys, err = core.Attach(core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Kind: core.LearnedModel, Job: int(sc.Job),
		OnWindow: func(ws core.WindowScore) {
			if ws.Window.LeafOrdinal != cfg.Fault.LeafOrd {
				return
			}
			if l := sys.Learned(); l != nil && l.Ready(cfg.Fault.LeafOrd) {
				baselines[ws.Window.Iter] = l.PortLoad(cfg.Fault.LeafOrd)[cfg.Fault.SpineOrd]
			}
		},
	})
	if err != nil {
		return nil, err
	}

	rt.StartTraining(func(_ sim.Time, iter uint32) {
		if int(iter) == cfg.HealAfter {
			rt.ClearSilent(cfg.Fault)
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())

	res := &Fig3Result{Config: cfg}
	rebases := 0
	// Reconstruct the series from the recorded window scores of the
	// affected leaf.
	alertIters := map[uint32]bool{}
	for _, e := range sys.Events {
		if e.Alert.LeafOrdinal == cfg.Fault.LeafOrd && e.Alert.Uplink == cfg.Fault.SpineOrd {
			alertIters[e.Alert.Iter] = true
		}
	}
	for _, ws := range sys.Scores {
		w := ws.Window
		if w.LeafOrdinal != cfg.Fault.LeafOrd {
			continue
		}
		pt := Fig3Point{
			Iter:     w.Iter,
			Observed: float64(w.PortBytes[cfg.Fault.SpineOrd]),
			Baseline: baselines[w.Iter],
			Alerted:  alertIters[w.Iter],
		}
		res.Series = append(res.Series, pt)
	}
	if l := sys.Learned(); l != nil {
		rebases = l.Rebaselines
	}
	if rebases > 0 {
		// The rebaseline shows up as the first iteration whose baseline
		// differs from the warm-up baseline.
		var warm float64
		for _, pt := range res.Series {
			if pt.Baseline > 0 {
				warm = pt.Baseline
				break
			}
		}
		for _, pt := range res.Series {
			if pt.Baseline > 0 && pt.Baseline != warm {
				res.RebaselinedAtIter = pt.Iter
				break
			}
		}
	}
	for _, pt := range res.Series {
		if res.RebaselinedAtIter > 0 && pt.Iter > res.RebaselinedAtIter && pt.Alerted {
			res.AlertsAfterRebaseline++
		}
	}
	return res, nil
}

// String renders the series.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — learned baseline update after transient fault recovery (%s drop on leaf %d / spine %d, heals after iter %d)\n",
		pct(r.Config.DropRate), r.Config.Fault.LeafOrd, r.Config.Fault.SpineOrd, r.Config.HealAfter)
	fmt.Fprintf(&b, "%-6s %14s %14s %s\n", "iter", "observed B", "baseline B", "alert")
	for _, pt := range r.Series {
		mark := ""
		if pt.Alerted {
			mark = "ALERT"
		}
		fmt.Fprintf(&b, "%-6d %14.0f %14.0f %s\n", pt.Iter, pt.Observed, pt.Baseline, mark)
	}
	if r.RebaselinedAtIter > 0 {
		fmt.Fprintf(&b, "baseline replaced at iteration %d; %d alerts after\n", r.RebaselinedAtIter, r.AlertsAfterRebaseline)
	} else {
		fmt.Fprintf(&b, "baseline never replaced (reproduction failure)\n")
	}
	return b.String()
}
