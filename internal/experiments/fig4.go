package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/localize"
)

// Fig4Config reproduces Figure 4's localization logic end to end: by
// comparing per-sender volumes on the deviating port, the receiving
// leaf distinguishes a fault on its own (local) spine link from a
// fault on a remote sender's link to the same spine. The workload is
// AllToAll so each monitored port carries traffic from many senders.
type Fig4Config struct {
	// Leaves, Spines shape the fabric (default 16×8, kept modest: the
	// all-to-all workload is quadratic in leaves).
	Leaves, Spines int
	// BytesPerRank (default 32 MiB, split across peers).
	BytesPerRank int64
	// DropRate of the injected fault (default 5%). Much heavier rates
	// push the RTO-recovery transport into a duplicate-heavy regime
	// that smears volume surpluses across every port (see
	// EXPERIMENTS.md).
	DropRate float64
	// UpstreamDropRate is the severity of the remote-link case
	// (default 15%): an upstream fault's port-level deviation is
	// diluted by the number of senders sharing the port, so it must be
	// several times the detection threshold times the sender count to
	// alert at all.
	UpstreamDropRate float64
	// Trials per case (default 2).
	Trials int
	// Iterations per trial (default 4, fault present throughout).
	Iterations int
	// Seed roots the randomness.
	Seed uint64
}

func (c *Fig4Config) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 16
	}
	if c.Spines == 0 {
		c.Spines = 8
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 32 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.05
	}
	if c.UpstreamDropRate == 0 {
		c.UpstreamDropRate = 0.15
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
}

// Fig4Case is the outcome for one fault direction.
type Fig4Case struct {
	Name string
	// Verdicts counts localization outcomes by kind.
	Local, Remote, Indeterminate int
	// CorrectLink counts verdicts naming the actually faulty link.
	CorrectLink int
	// Accuracy = CorrectLink / all verdicts.
	Accuracy float64
}

// Fig4Result is the reproduced figure.
type Fig4Result struct {
	Config     Fig4Config
	Downstream Fig4Case // fault on spine→leaf: expect local-link verdicts
	Upstream   Fig4Case // fault on leaf→spine: expect remote-link verdicts
}

// Fig4 runs both cases.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	cfg.setDefaults()
	res := &Fig4Result{Config: cfg}

	runCase := func(name string, upstream bool, rate float64) (Fig4Case, error) {
		c := Fig4Case{Name: name}
		total := 0
		for tr := 0; tr < cfg.Trials; tr++ {
			sc := core.Scenario{
				Leaves: cfg.Leaves, Spines: cfg.Spines,
				Collective:   core.AllToAllKind,
				BytesPerRank: cfg.BytesPerRank,
				Seed:         cfg.Seed + uint64(tr)*101,
			}
			fault := faultLinkFor(sc, tr)
			trial := Trial{
				Scenario: sc, Fault: fault, DropRate: rate, Upstream: upstream,
				CleanIters: 0, FaultIters: cfg.Iterations,
			}
			out, err := trial.Run()
			if err != nil {
				return c, err
			}
			rt, err := sc.Build() // resolve the faulty link id for scoring
			if err != nil {
				return c, err
			}
			faultyLink := rt.Link(fault)
			for _, e := range out.Events {
				if e.Alert.Deviation >= 0 {
					continue
				}
				total++
				switch e.Verdict.Kind {
				case localize.LocalLink:
					c.Local++
				case localize.RemoteLink:
					c.Remote++
				default:
					c.Indeterminate++
				}
				for _, l := range e.Verdict.Links {
					if l == faultyLink {
						c.CorrectLink++
						break
					}
				}
			}
		}
		if total > 0 {
			c.Accuracy = float64(c.CorrectLink) / float64(total)
		}
		return c, nil
	}

	var err error
	if res.Downstream, err = runCase("downstream (local link)", false, cfg.DropRate); err != nil {
		return nil, err
	}
	if res.Upstream, err = runCase("upstream (remote link)", true, cfg.UpstreamDropRate); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the two cases.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — localization: local vs remote link, all-to-all on %dx%d, %s drop\n",
		r.Config.Leaves, r.Config.Spines, pct(r.Config.DropRate))
	for _, c := range []Fig4Case{r.Downstream, r.Upstream} {
		fmt.Fprintf(&b, "%-26s local=%d remote=%d indeterminate=%d correct-link=%s\n",
			c.Name+":", c.Local, c.Remote, c.Indeterminate, pct(c.Accuracy))
	}
	return b.String()
}
