package experiments

import (
	"strings"
	"testing"

	"flowpulse/internal/sim"
)

func TestFaultTypesAllDetected(t *testing.T) {
	res, err := FaultTypes(FaultTypesConfig{
		Leaves: 8, Spines: 4, BytesPerRank: 8 << 20,
		Trials: 1, CleanIters: 2, FaultIters: 2,
		Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FPR != 0 {
			t.Errorf("%s: FPR %v during clean phase\n%s", row.Name, row.FPR, res)
		}
		// Every §7 gray-fault type manifests as drops and must be
		// caught; all configured severities are ≥ 2.5% effective loss.
		if row.FNR != 0 {
			t.Errorf("%s: FNR %v, want 0\n%s", row.Name, row.FNR, res)
		}
		if row.MeanDetectionLatency == 0 || row.MeanDetectionLatency > 1.5 {
			t.Errorf("%s: detection latency %v iterations", row.Name, row.MeanDetectionLatency)
		}
	}
	if !strings.Contains(res.String(), "blackhole") {
		t.Fatal("renderer broken")
	}
}

func TestJitterDoesNotBreakSymmetry(t *testing.T) {
	// §7: jitter has no measurable effect on ring collectives.
	res, err := Jitter(JitterConfig{
		Leaves: 8, Spines: 4, BytesPerRank: 8 << 20,
		JitterMaxes: []sim.Duration{0, 10 * sim.Microsecond},
		DropRate:    0.03,
		Trials:      1, CleanIters: 2, FaultIters: 2,
		Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.CleanNoise >= 0.01 {
			t.Errorf("jitter %v pushed clean noise to %v (>= threshold)\n%s", row.JitterMax, row.CleanNoise, res)
		}
		if row.FPR != 0 || row.FNR != 0 {
			t.Errorf("jitter %v: FPR %v FNR %v, want 0/0 at 3%% drop\n%s", row.JitterMax, row.FPR, row.FNR, res)
		}
	}
}

func TestTrunkMemberFaultNamed(t *testing.T) {
	res, err := Trunks(TrunkConfig{
		Leaves: 8, Spines: 4, Trunk: 2, BytesPerRank: 16 << 20,
		DropRate: 0.04,
		Trials:   1, CleanIters: 2, FaultIters: 2,
		Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FPR != 0 {
		t.Fatalf("trunk clean phase FPR %v\n%s", res.FPR, res)
	}
	if res.FNR != 0 {
		t.Fatalf("trunk member fault missed: FNR %v\n%s", res.FNR, res)
	}
	if res.CorrectMember == 0 || res.WrongMember > 0 {
		t.Fatalf("member attribution wrong: %d correct, %d wrong\n%s", res.CorrectMember, res.WrongMember, res)
	}
}

func TestClos3ExperimentBothLevels(t *testing.T) {
	res, err := Clos3(Clos3Config{
		Pods: 2, LeavesPerPod: 4, SpinesPerPod: 2, CoresPerGroup: 2,
		BytesPerRank: 8 << 20,
		Iterations:   8, InjectAt: 4,
		Seed: 34,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SpineLeaf.Detected {
		t.Fatalf("spine->leaf fault missed:\n%s", res)
	}
	if !res.CoreSpine.Detected || res.CoreSpine.DetectionLevel != "spine" {
		t.Fatalf("core->spine fault not caught by spine monitors:\n%s", res)
	}
}

func TestBlockingNetworkPrioritizationHolds(t *testing.T) {
	res, err := Blocking(BlockingConfig{
		Leaves: 8, Spines: 4, HostsPerLeaf: 2,
		BytesPerRank: 8 << 20,
		Trials:       1, CleanIters: 2, FaultIters: 2,
		Seed: 35,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanNoise >= 0.01 {
		t.Fatalf("prioritization failed to isolate the collective: clean noise %v\n%s", res.CleanNoise, res)
	}
	if res.FPR != 0 || res.FNR != 0 {
		t.Fatalf("FPR %v FNR %v under blocking load, want 0/0\n%s", res.FPR, res.FNR, res)
	}
}

func TestRemediationExperiment(t *testing.T) {
	res, err := Remediation(RemediationConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	p, f := res.Rows[0], res.Rows[1]
	if p.Quarantines != 1 || p.Readmissions != 0 || p.FIBChurn != 1 {
		t.Errorf("persistent fault not pinned after one quarantine: %+v", p)
	}
	if p.TimeToQuarantine <= 0 || p.TimeToQuarantine > 8*res.IterDur {
		t.Errorf("persistent time-to-quarantine %v outside (0, 8 iterations]", p.TimeToQuarantine)
	}
	if p.PostQuarantineDeficits != 0 {
		t.Errorf("persistent row not quiet after re-baseline: %+v", p)
	}
	if f.Quarantines < 2 || f.Suppressed == 0 || f.Readmissions >= f.Quarantines {
		t.Errorf("flap damping did not engage: %+v", f)
	}
	if f.FIBChurn != f.Quarantines+f.Readmissions {
		t.Errorf("flap churn %d != quarantines+readmissions %d", f.FIBChurn, f.Quarantines+f.Readmissions)
	}
	out := res.String()
	if !strings.Contains(out, "persistent") || !strings.Contains(out, "quarantine link") {
		t.Fatalf("renderer broken:\n%s", out)
	}
	if !strings.HasPrefix(res.CSV(), "fault,time_to_quarantine_us,") {
		t.Fatal("csv header broken")
	}
}

func TestCSVRenderers(t *testing.T) {
	a := &Fig5aResult{Config: Fig5aConfig{}, Curves: []Fig5aCurve{{DropRate: 0.01}}}
	if !strings.HasPrefix(a.CSV(), "drop_rate,") {
		t.Fatal("fig5a csv header")
	}
	b := &Fig5bResult{Config: Fig5bConfig{Thresholds: []float64{0.01}},
		Rows: []Fig5bRow{{Radix: 8, Leaves: 8, Spines: 4, FPR: []float64{0}, FNR: []float64{1}}}}
	if !strings.Contains(b.CSV(), "8,8,4,0.01,0,1") {
		t.Fatalf("fig5b csv rows: %q", b.CSV())
	}
	c := &Fig5cResult{Cells: []Fig5cCell{{Bytes: 1024, DropRate: 0.02, FPR: 0, FNR: 0.5}}}
	if !strings.Contains(c.CSV(), "1024,0.02,0,0.5") {
		t.Fatalf("fig5c csv rows: %q", c.CSV())
	}
	d := &Fig2Result{Ports: []Fig2Port{{Uplink: 3, Predicted: 10, Observed: 11, RelErr: 0.1}}}
	if !strings.Contains(d.CSV(), "3,10,11,0.1") {
		t.Fatalf("fig2 csv rows: %q", d.CSV())
	}
	e := &Fig3Result{Series: []Fig3Point{{Iter: 2, Observed: 5, Baseline: 6, Alerted: true}}}
	if !strings.Contains(e.CSV(), "2,5,6,1") {
		t.Fatalf("fig3 csv rows: %q", e.CSV())
	}
}
