package experiments

import (
	"fmt"
	"path/filepath"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
)

// Fig5aConfig reproduces Figure 5(a): the ROC of the per-iteration
// classifier over detection thresholds, one curve per injected drop
// rate. The paper's claim: a 1% threshold is a perfect classifier for
// drop rates ≥ 1.5%.
type Fig5aConfig struct {
	// Scenario is the base network/workload (paper defaults).
	Scenario core.Scenario
	// DropRates are the fault severities, one ROC curve each.
	DropRates []float64
	// Thresholds is the ROC sweep.
	Thresholds []float64
	// Trials per drop rate.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// TraceDir, when set, records every trial to
	// TraceDir/fig5a-r<rate>-t<trial>.fpt; `flowpulse-trace sweep` then
	// reproduces any curve's ROC points from the recordings alone.
	TraceDir string
}

func (c *Fig5aConfig) setDefaults() {
	if c.Scenario.BytesPerRank == 0 {
		c.Scenario.BytesPerRank = 16 << 20
	}
	if c.DropRates == nil {
		c.DropRates = []float64{0.005, 0.008, 0.01, 0.015, 0.025, 0.05}
	}
	if c.Thresholds == nil {
		c.Thresholds = DefaultThresholds()
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.CleanIters == 0 {
		c.CleanIters = 3
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
}

// Fig5aCurve is one drop rate's operating curve.
type Fig5aCurve struct {
	DropRate float64
	Points   []metrics.ROCPoint
	// PerfectThresholds lists thresholds with FPR = FNR = 0.
	PerfectThresholds []float64
	// PerfectAtOnePercent is the paper's headline cell for this rate.
	PerfectAtOnePercent bool
}

// Fig5aResult is the reproduced figure.
type Fig5aResult struct {
	Config Fig5aConfig
	Curves []Fig5aCurve
}

// Fig5a runs the experiment.
func Fig5a(cfg Fig5aConfig) (*Fig5aResult, error) {
	cfg.setDefaults()
	res := &Fig5aResult{Config: cfg}
	for _, rate := range cfg.DropRates {
		var trials []Trial
		for tr := 0; tr < cfg.Trials; tr++ {
			sc := cfg.Scenario
			sc.Seed = cfg.Scenario.Seed + uint64(tr)*7919 + uint64(rate*1e5)
			trial := Trial{
				Scenario:   withNoise(sc),
				Fault:      faultLinkFor(sc, tr),
				DropRate:   rate,
				CleanIters: cfg.CleanIters,
				FaultIters: cfg.FaultIters,
			}
			if cfg.TraceDir != "" {
				trial.TracePath = filepath.Join(cfg.TraceDir, fmt.Sprintf("fig5a-r%.4f-t%d.fpt", rate, tr))
				trial.TraceLabel = fmt.Sprintf("fig5a rate=%.4f trial=%d", rate, tr)
			}
			trials = append(trials, trial)
		}
		results, err := RunAll(trials)
		if err != nil {
			return nil, err
		}
		samples := gatherSamples(results)
		curve := Fig5aCurve{
			DropRate:          rate,
			Points:            metrics.ROC(samples, cfg.Thresholds),
			PerfectThresholds: metrics.PerfectThresholds(samples, cfg.Thresholds),
		}
		fpr, fnr := metrics.RatesAt(samples, 0.01)
		curve.PerfectAtOnePercent = fpr == 0 && fnr == 0
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// faultLinkFor varies the faulted link across trials so results do not
// hinge on one location.
func faultLinkFor(sc core.Scenario, trial int) core.LeafSpineLink {
	leaves, spines := sc.Leaves, sc.Spines
	if leaves == 0 {
		leaves = 32
	}
	if spines == 0 {
		spines = 16
	}
	return core.LeafSpineLink{
		LeafOrd:  (3 + trial*5) % leaves,
		SpineOrd: (1 + trial*3) % spines,
	}
}

// String renders the curves.
func (r *Fig5aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5(a) — ROC over detection thresholds, %d trials per drop rate, %d MiB per rank\n",
		r.Config.Trials, r.Config.Scenario.BytesPerRank>>20)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "drop rate %s:\n", pct(c.DropRate))
		fmt.Fprintf(&b, "  %-10s %8s %8s\n", "threshold", "FPR", "FNR")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %-10s %8s %8s\n", pct(p.Threshold), pct(p.FPR), pct(p.FNR))
		}
		fmt.Fprintf(&b, "  perfect at 1%% threshold: %v\n", c.PerfectAtOnePercent)
	}
	return b.String()
}

// Fig5bConfig reproduces Figure 5(b): FPR/FNR across switch radixes at
// a fixed 0.8% drop rate. Radix R means R leaves and R/2 spines.
// Higher radixes spread each flow thinner, so the per-port
// measurement gets noisier while the per-port deficit stays ~0.8%:
// higher radixes are more challenging.
type Fig5bConfig struct {
	// Radixes to sweep (default 8, 16, 32, 64).
	Radixes []int
	// DropRate on the faulty link (default 0.8%).
	DropRate float64
	// Thresholds to report operating points at (default 0.5% and 1%).
	Thresholds []float64
	// BytesPerRank (default 16 MiB).
	BytesPerRank int64
	// Trials per radix.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
	// Shards selects the engine mode per trial (see core.Scenario.Shards).
	Shards int
}

func (c *Fig5bConfig) setDefaults() {
	if c.Radixes == nil {
		c.Radixes = []int{8, 16, 32, 64}
	}
	if c.DropRate == 0 {
		c.DropRate = 0.008
	}
	if c.Thresholds == nil {
		c.Thresholds = []float64{0.005, 0.01}
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.CleanIters == 0 {
		c.CleanIters = 3
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
}

// Fig5bRow is one radix's operating points.
type Fig5bRow struct {
	Radix          int
	Leaves, Spines int
	// FPR and FNR per configured threshold, same order.
	FPR, FNR []float64
}

// Fig5bResult is the reproduced figure.
type Fig5bResult struct {
	Config Fig5bConfig
	Rows   []Fig5bRow
}

// Fig5b runs the experiment.
func Fig5b(cfg Fig5bConfig) (*Fig5bResult, error) {
	cfg.setDefaults()
	res := &Fig5bResult{Config: cfg}
	for _, radix := range cfg.Radixes {
		leaves, spines := radix, radix/2
		var trials []Trial
		for tr := 0; tr < cfg.Trials; tr++ {
			sc := core.Scenario{
				Leaves: leaves, Spines: spines,
				BytesPerRank: cfg.BytesPerRank,
				Seed:         cfg.Seed + uint64(radix*1000+tr),
				Shards:       cfg.Shards,
			}
			trials = append(trials, Trial{
				Scenario:   withNoise(sc),
				Fault:      faultLinkFor(sc, tr),
				DropRate:   cfg.DropRate,
				CleanIters: cfg.CleanIters,
				FaultIters: cfg.FaultIters,
			})
		}
		results, err := RunAll(trials)
		if err != nil {
			return nil, err
		}
		samples := gatherSamples(results)
		row := Fig5bRow{Radix: radix, Leaves: leaves, Spines: spines}
		for _, th := range cfg.Thresholds {
			fpr, fnr := metrics.RatesAt(samples, th)
			row.FPR = append(row.FPR, fpr)
			row.FNR = append(row.FNR, fnr)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the rows.
func (r *Fig5bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5(b) — FPR/FNR vs switch radix at %s drop rate, %d MiB per rank\n",
		pct(r.Config.DropRate), r.Config.BytesPerRank>>20)
	fmt.Fprintf(&b, "%-8s %-14s", "radix", "leaves x spine")
	for _, th := range r.Config.Thresholds {
		fmt.Fprintf(&b, " %18s", "FPR/FNR @ "+pct(th))
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %-14s", row.Radix, fmt.Sprintf("%dx%d", row.Leaves, row.Spines))
		for i := range r.Config.Thresholds {
			fmt.Fprintf(&b, " %18s", pct(row.FPR[i])+" / "+pct(row.FNR[i]))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig5cConfig reproduces Figure 5(c): FPR/FNR across collective sizes
// for several drop rates at the 1% threshold. Larger collectives send
// more packets, raising the signal-to-noise ratio of the per-port
// measurement.
type Fig5cConfig struct {
	// Sizes are the per-rank collective sizes (default 1, 4, 16, 64 MiB).
	Sizes []int64
	// DropRates per curve (default 1%, 1.5%, 2.5%).
	DropRates []float64
	// Threshold is the operating point (default 1%).
	Threshold float64
	// Leaves and Spines (default 32×16).
	Leaves, Spines int
	// Trials per cell.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *Fig5cConfig) setDefaults() {
	if c.Sizes == nil {
		c.Sizes = []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	}
	if c.DropRates == nil {
		c.DropRates = []float64{0.01, 0.015, 0.025}
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 3
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
}

// Fig5cCell is one (size, drop rate) operating point.
type Fig5cCell struct {
	Bytes    int64
	DropRate float64
	FPR, FNR float64
}

// Fig5cResult is the reproduced figure.
type Fig5cResult struct {
	Config Fig5cConfig
	Cells  []Fig5cCell
}

// Fig5c runs the experiment.
func Fig5c(cfg Fig5cConfig) (*Fig5cResult, error) {
	cfg.setDefaults()
	res := &Fig5cResult{Config: cfg}
	for _, size := range cfg.Sizes {
		for _, rate := range cfg.DropRates {
			var trials []Trial
			for tr := 0; tr < cfg.Trials; tr++ {
				sc := core.Scenario{
					Leaves: cfg.Leaves, Spines: cfg.Spines,
					BytesPerRank: size,
					Seed:         cfg.Seed + uint64(size>>18) + uint64(rate*1e5) + uint64(tr)*31,
				}
				trials = append(trials, Trial{
					Scenario:   withNoise(sc),
					Fault:      faultLinkFor(sc, tr),
					DropRate:   rate,
					CleanIters: cfg.CleanIters,
					FaultIters: cfg.FaultIters,
				})
			}
			results, err := RunAll(trials)
			if err != nil {
				return nil, err
			}
			samples := gatherSamples(results)
			fpr, fnr := metrics.RatesAt(samples, cfg.Threshold)
			res.Cells = append(res.Cells, Fig5cCell{Bytes: size, DropRate: rate, FPR: fpr, FNR: fnr})
		}
	}
	return res, nil
}

// String renders the cells grouped by size.
func (r *Fig5cResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5(c) — FPR/FNR vs collective size at %s threshold, %dx%d fat tree\n",
		pct(r.Config.Threshold), r.Config.Leaves, r.Config.Spines)
	fmt.Fprintf(&b, "%-12s %-10s %8s %8s\n", "size", "drop", "FPR", "FNR")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %-10s %8s %8s\n",
			fmt.Sprintf("%d MiB", c.Bytes>>20), pct(c.DropRate), pct(c.FPR), pct(c.FNR))
	}
	return b.String()
}
