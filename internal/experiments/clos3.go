package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
)

// Clos3Config exercises §7's "Network Topology" extension: FlowPulse
// at both leaf and spine levels of a three-level Clos, catching faults
// on spine→leaf links (leaf monitors) and core→spine links (spine
// monitors — links a two-level deployment cannot see at all).
type Clos3Config struct {
	// Pods, LeavesPerPod, SpinesPerPod, CoresPerGroup shape the fabric.
	Pods, LeavesPerPod, SpinesPerPod, CoresPerGroup int
	// BytesPerRank (default 8 MiB).
	BytesPerRank int64
	// DropRate for both injected faults (default 5% leaf-level, 8%
	// core-level — the core fault's signal is diluted across pods).
	DropRate float64
	// Iterations per phase (default 10; learned warm-up included).
	Iterations int
	// InjectAt is the iteration after which the fault appears
	// (default 5).
	InjectAt int
	// Seed roots the randomness.
	Seed uint64
}

func (c *Clos3Config) setDefaults() {
	if c.Pods == 0 {
		c.Pods = 4
	}
	if c.LeavesPerPod == 0 {
		c.LeavesPerPod = 4
	}
	if c.SpinesPerPod == 0 {
		c.SpinesPerPod = 2
	}
	if c.CoresPerGroup == 0 {
		c.CoresPerGroup = 4
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 8 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.05
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.InjectAt == 0 {
		c.InjectAt = 5
	}
}

// Clos3Case is one fault level's outcome.
type Clos3Case struct {
	Name string
	// Detected reports whether the responsible monitor level alerted.
	Detected bool
	// DetectionLevel is which level caught it ("leaf" or "spine").
	DetectionLevel string
	// FirstAlertIter is the iteration of the first alert.
	FirstAlertIter uint32
	// FalseAlerts counts alerts before the injection or at the other
	// level.
	FalseAlerts int
}

// Clos3Result is the experiment outcome.
type Clos3Result struct {
	Config    Clos3Config
	SpineLeaf Clos3Case // fault on a spine→leaf link
	CoreSpine Clos3Case // fault on a core→spine link
}

// Clos3 runs both cases.
func Clos3(cfg Clos3Config) (*Clos3Result, error) {
	cfg.setDefaults()
	res := &Clos3Result{Config: cfg}

	runCase := func(name string, coreLevel bool) (Clos3Case, error) {
		c := Clos3Case{Name: name}
		sc := core.Clos3Scenario{
			Pods: cfg.Pods, LeavesPerPod: cfg.LeavesPerPod,
			SpinesPerPod: cfg.SpinesPerPod, CoresPerGroup: cfg.CoresPerGroup,
			BytesPerRank: cfg.BytesPerRank,
			Iterations:   cfg.Iterations,
			Seed:         cfg.Seed,
		}
		rt, err := sc.Build()
		if err != nil {
			return c, err
		}
		sys := core.AttachClos3(rt, detect.Config{}, predict.LearnedConfig{Warmup: 3})
		rt.StartTraining(func(_ sim.Time, iter uint32) {
			if int(iter) == cfg.InjectAt {
				if coreLevel {
					rt.InjectCoreSpineDrop(2%cfg.Pods, 1%cfg.SpinesPerPod, 0, cfg.DropRate*1.6)
				} else {
					rt.InjectSpineLeafDrop(1%cfg.Pods, 2%cfg.LeavesPerPod, 0, cfg.DropRate)
				}
			}
		})
		rt.Run()
		sys.Flush(rt.Engine.Now())

		expected, other := sys.LeafEvents, sys.SpineEvents
		c.DetectionLevel = "leaf"
		if coreLevel {
			expected, other = sys.SpineEvents, sys.LeafEvents
			c.DetectionLevel = "spine"
		}
		for _, a := range expected {
			if int(a.Iter) > cfg.InjectAt {
				if !c.Detected {
					c.Detected = true
					c.FirstAlertIter = a.Iter
				}
			} else {
				c.FalseAlerts++
			}
		}
		c.FalseAlerts += len(other)
		return c, nil
	}

	var err error
	if res.SpineLeaf, err = runCase("spine->leaf fault", false); err != nil {
		return nil, err
	}
	if res.CoreSpine, err = runCase("core->spine fault", true); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the two cases.
func (r *Clos3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Three-level Clos (§7) — dual-level monitoring, %d pods x %d leaves x %d spines, %d cores\n",
		r.Config.Pods, r.Config.LeavesPerPod, r.Config.SpinesPerPod,
		r.Config.SpinesPerPod*r.Config.CoresPerGroup)
	for _, c := range []Clos3Case{r.SpineLeaf, r.CoreSpine} {
		status := "MISSED"
		if c.Detected {
			status = fmt.Sprintf("detected by %s monitors at iteration %d", c.DetectionLevel, c.FirstAlertIter)
		}
		fmt.Fprintf(&b, "%-20s %s (false alerts elsewhere: %d)\n", c.Name+":", status, c.FalseAlerts)
	}
	return b.String()
}
