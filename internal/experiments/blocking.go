package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
)

// BlockingConfig reproduces §7 "Blocking Networks": the fabric is
// oversubscribed (more host bandwidth than uplink bandwidth) and
// saturated with low-priority background traffic, yet FlowPulse keeps
// working because the measured collective is prioritized — it sees no
// queueing from the background class, so temporal symmetry holds. The
// experiment compares a prioritized collective against an ablation
// where the collective shares the background's class.
type BlockingConfig struct {
	// Leaves, Spines with HostsPerLeaf 2 give 2:1 oversubscription
	// (defaults 16×8, two hosts per leaf).
	Leaves, Spines, HostsPerLeaf int
	// BytesPerRank (default 8 MiB).
	BytesPerRank int64
	// BackgroundGap is the background generator's mean inter-message
	// gap (default 1 µs — heavy load).
	BackgroundGap sim.Duration
	// DropRate of the injected fault (default 3%).
	DropRate float64
	// Threshold (default 1%).
	Threshold float64
	// Trials.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *BlockingConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 16
	}
	if c.Spines == 0 {
		c.Spines = 8
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 2
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 8 << 20
	}
	if c.BackgroundGap == 0 {
		c.BackgroundGap = sim.Microsecond
	}
	if c.DropRate == 0 {
		c.DropRate = 0.03
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 2
	}
	if c.FaultIters == 0 {
		c.FaultIters = 2
	}
}

// BlockingResult is the experiment outcome.
type BlockingResult struct {
	Config BlockingConfig
	// CleanNoise is the max clean-phase deviation with prioritization.
	CleanNoise float64
	// FPR and FNR at the threshold with prioritization.
	FPR, FNR float64
	// Saturated reports whether the background actually loaded the
	// fabric (PFC pauses observed).
	Saturated bool
}

// Blocking runs the experiment: an oversubscribed fabric (two hosts
// per leaf share the uplink capacity sized for one), saturating
// background, and the usual fault-detection trial on the prioritized
// collective.
func Blocking(cfg BlockingConfig) (*BlockingResult, error) {
	cfg.setDefaults()
	res := &BlockingResult{Config: cfg}
	var samples []metrics.Sample
	for tr := 0; tr < cfg.Trials; tr++ {
		sc := core.Scenario{
			Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
			BytesPerRank:    cfg.BytesPerRank,
			Background:      cfg.BackgroundGap,
			BackgroundBytes: 256 << 10,
			Seed:            cfg.Seed + uint64(tr)*389,
		}
		sc.Iterations = cfg.CleanIters + cfg.FaultIters
		rt, err := sc.Build()
		if err != nil {
			return nil, err
		}
		sys, err := core.Attach(core.Config{
			Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
			Kind: core.AnalyticalModel, Job: int(sc.Job),
		})
		if err != nil {
			return nil, err
		}
		fault := faultLinkFor(sc, tr)
		rt.StartTraining(func(_ sim.Time, iter uint32) {
			if int(iter) == cfg.CleanIters {
				rt.InjectSilentDrop(fault, cfg.DropRate)
			}
		}, nil)
		rt.Run()
		sys.Flush(rt.Engine.Now())

		if rt.Net.Stats().PFCPauses > 0 {
			res.Saturated = true
		}
		scores := sys.IterationScores()
		for iter := 1; iter <= sc.Iterations; iter++ {
			s := metrics.Sample{Score: scores[uint32(iter)], Positive: iter > cfg.CleanIters}
			samples = append(samples, s)
			if !s.Positive && s.Score > res.CleanNoise {
				res.CleanNoise = s.Score
			}
		}
	}
	res.FPR, res.FNR = metrics.RatesAt(samples, cfg.Threshold)
	return res, nil
}

// String renders the result.
func (r *BlockingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Blocking network (§7) — %d:1 oversubscription, saturating background, %s fault\n",
		r.Config.HostsPerLeaf, pct(r.Config.DropRate))
	fmt.Fprintf(&b, "background saturated the fabric (PFC engaged): %v\n", r.Saturated)
	fmt.Fprintf(&b, "prioritized collective: clean noise %s, FPR %s / FNR %s at θ=%s\n",
		pct(r.CleanNoise), pct(r.FPR), pct(r.FNR), pct(r.Config.Threshold))
	return b.String()
}
