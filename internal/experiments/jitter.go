package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
)

// JitterConfig reproduces §7 "Stragglers and Jitter": the paper's
// initial experiments found that inconsistent per-sender start jitter
// has no measurable effect on the expected load balance for
// ring-based collectives, because each leaf has a single non-local
// sender and spraying happens at the leaf. This experiment sweeps the
// jitter magnitude and reports the clean-network noise floor and the
// detectability of a reference fault.
type JitterConfig struct {
	// JitterMaxes are the uniform per-rank, per-iteration start delays
	// to sweep (default 0, 2 µs, 10 µs, 50 µs).
	JitterMaxes []sim.Duration
	// Leaves, Spines, BytesPerRank (defaults 32×16, 16 MiB).
	Leaves, Spines int
	BytesPerRank   int64
	// DropRate of the reference fault (default 1.5%).
	DropRate float64
	// Threshold (default 1%).
	Threshold float64
	// Trials per jitter level.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *JitterConfig) setDefaults() {
	if c.JitterMaxes == nil {
		c.JitterMaxes = []sim.Duration{0, 2 * sim.Microsecond, 10 * sim.Microsecond, 50 * sim.Microsecond}
	}
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.015
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 2
	}
	if c.FaultIters == 0 {
		c.FaultIters = 2
	}
}

// JitterRow is one jitter level's outcome.
type JitterRow struct {
	JitterMax sim.Duration
	// CleanNoise is the max per-iteration deviation during the clean
	// phase across trials.
	CleanNoise float64
	// FPR and FNR at the configured threshold.
	FPR, FNR float64
}

// JitterResult is the reproduced table.
type JitterResult struct {
	Config JitterConfig
	Rows   []JitterRow
}

// Jitter runs the experiment.
func Jitter(cfg JitterConfig) (*JitterResult, error) {
	cfg.setDefaults()
	res := &JitterResult{Config: cfg}
	for _, jmax := range cfg.JitterMaxes {
		var trials []Trial
		for tr := 0; tr < cfg.Trials; tr++ {
			sc := core.Scenario{
				Leaves: cfg.Leaves, Spines: cfg.Spines,
				BytesPerRank: cfg.BytesPerRank,
				JitterMax:    jmax,
				Seed:         cfg.Seed + uint64(jmax/1000) + uint64(tr)*131,
			}
			trials = append(trials, Trial{
				Scenario:   withNoise(sc),
				Fault:      faultLinkFor(sc, tr),
				DropRate:   cfg.DropRate,
				CleanIters: cfg.CleanIters,
				FaultIters: cfg.FaultIters,
			})
		}
		results, err := RunAll(trials)
		if err != nil {
			return nil, err
		}
		row := JitterRow{JitterMax: jmax}
		for _, r := range results {
			for i, s := range r.Samples {
				if i < cfg.CleanIters && s.Score > row.CleanNoise {
					row.CleanNoise = s.Score
				}
			}
		}
		row.FPR, row.FNR = metrics.RatesAt(gatherSamples(results), cfg.Threshold)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table.
func (r *JitterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Jitter sensitivity (§7) — ring collective, %s fault, θ=%s, %dx%d fat tree\n",
		pct(r.Config.DropRate), pct(r.Config.Threshold), r.Config.Leaves, r.Config.Spines)
	fmt.Fprintf(&b, "%-12s %12s %8s %8s\n", "jitter max", "clean noise", "FPR", "FNR")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %8s %8s\n", row.JitterMax.String(), pct(row.CleanNoise), pct(row.FPR), pct(row.FNR))
	}
	return b.String()
}
