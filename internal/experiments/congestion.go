package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/detect"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
)

// CongestionConfig quantifies the paper's congestion-vs-faults claim:
// queue build-up from adversarial traffic (incast bursts, background
// storms) looks like loss to any latency- or throughput-based monitor,
// but the byte-conservation detector should tell them apart — and
// where it cannot, the CE-discount mitigation (detect.Config.
// CEDiscount) should restore the separation, because congestion
// announces itself with ECN marks while silent faults never do.
//
// The sweep runs clean and faulted trials at each congestion level
// twice — detector mitigation off ("before") and on ("after") — over
// identical traffic (same seeds, ECN/DCQCN always enabled), so the
// two ROC curves differ only in how the detector weighs CE-marked
// windows.
type CongestionConfig struct {
	// Leaves and Spines shape the fabric (default 16×8).
	Leaves, Spines int
	// BytesPerRank sizes the measured collective (default 16 MiB).
	BytesPerRank int64
	// DropRate is the silent Bernoulli drop of the faulted trials
	// (default 12% — well above the whole threshold sweep even after incidental-mark discounting, so the study
	// isolates the congestion/fault separation question from the
	// small-fault sensitivity question fig5a answers).
	DropRate float64
	// Thresholds is the ROC sweep.
	Thresholds []float64
	// Trials per (level, clean/faulted) cell.
	Trials int
	// CleanIters and FaultIters split each faulted trial.
	CleanIters, FaultIters int
	// CEDiscount is the mitigation strength of the "after" arm
	// (default 1.5: congestion evidence saturates at two-thirds marked, while a lightly marked fault window keeps most of its deviation).
	CEDiscount float64
	// Seed roots the randomness.
	Seed uint64
}

func (c *CongestionConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 16
	}
	if c.Spines == 0 {
		c.Spines = 8
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.12
	}
	if c.Thresholds == nil {
		c.Thresholds = DefaultThresholds()
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 3
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
	if c.CEDiscount == 0 {
		c.CEDiscount = 1.5
	}
}

// congestionLevel is one intensity step of the sweep: the incast
// burst gap and message size, and the storm message gap (0 disables
// that generator). The incast runs in the measured traffic class
// (IncastHigh) so its queue build-up both skews the victim leaf's
// windows and draws CE marks onto the measured packets — the evidence
// the mitigation keys on.
type congestionLevel struct {
	Name        string
	Incast      sim.Duration
	IncastBytes int
	Storm       sim.Duration
}

func congestionLevels() []congestionLevel {
	return []congestionLevel{
		{"none", 0, 0, 0},
		{"low", 150 * sim.Microsecond, 32 << 10, 0},
		{"mid", 100 * sim.Microsecond, 48 << 10, 0},
		{"high", 60 * sim.Microsecond, 64 << 10, 12 * sim.Microsecond},
	}
}

// CongestionRow is one congestion level's operating points at the
// paper's 1% threshold, before and after the CE discount.
type CongestionRow struct {
	Level                string
	BeforeFPR, BeforeFNR float64
	AfterFPR, AfterFNR   float64
}

// CongestionResult is the reproduced study.
type CongestionResult struct {
	Config CongestionConfig
	Rows   []CongestionRow
	// BeforeROC/AfterROC pool every level's samples (congestion
	// intensities × clean/faulted) into one curve per arm.
	BeforeROC, AfterROC []metrics.ROCPoint
	BeforeAUC, AfterAUC float64
}

// Congestion runs the sweep.
func Congestion(cfg CongestionConfig) (*CongestionResult, error) {
	cfg.setDefaults()
	res := &CongestionResult{Config: cfg}
	discounts := []float64{0, cfg.CEDiscount}
	var pooled [2][]metrics.Sample
	for _, lvl := range congestionLevels() {
		var rates [2][2]float64
		for arm, discount := range discounts {
			var trials []Trial
			for tr := 0; tr < cfg.Trials; tr++ {
				for _, rate := range []float64{0, cfg.DropRate} {
					sc := core.Scenario{
						Leaves: cfg.Leaves, Spines: cfg.Spines,
						BytesPerRank: cfg.BytesPerRank,
						Seed:         cfg.Seed + uint64(tr)*7919,
						Congestion: core.CongestionSpec{
							ECN: true, DCQCN: true,
							// Sensitive marking knees: the adversarial
							// tenants here build tens-of-KiB queues, which
							// the 100 KiB default knee would pass unmarked
							// — congested windows must carry the evidence
							// the after-arm discounts.
							ECNKMin: 16 << 10, ECNKMax: 64 << 10,
							Incast: lvl.Incast, IncastLeaf: (1 + tr) % cfg.Leaves,
							IncastFanout: 2, IncastBytes: lvl.IncastBytes,
							IncastHigh: true,
							Storm:      lvl.Storm, StormBytes: 64 << 10,
						},
					}
					trials = append(trials, Trial{
						Scenario:   withNoise(sc),
						Fault:      faultLinkFor(sc, tr),
						DropRate:   rate,
						CleanIters: cfg.CleanIters,
						FaultIters: cfg.FaultIters,
						Detect:     detect.Config{CEDiscount: discount},
					})
				}
			}
			results, err := RunAll(trials)
			if err != nil {
				return nil, err
			}
			samples := gatherSamples(results)
			pooled[arm] = append(pooled[arm], samples...)
			fpr, fnr := metrics.RatesAt(samples, 0.01)
			rates[arm] = [2]float64{fpr, fnr}
		}
		res.Rows = append(res.Rows, CongestionRow{
			Level:     lvl.Name,
			BeforeFPR: rates[0][0], BeforeFNR: rates[0][1],
			AfterFPR: rates[1][0], AfterFNR: rates[1][1],
		})
	}
	res.BeforeROC = metrics.ROC(pooled[0], cfg.Thresholds)
	res.AfterROC = metrics.ROC(pooled[1], cfg.Thresholds)
	res.BeforeAUC = metrics.AUC(res.BeforeROC)
	res.AfterAUC = metrics.AUC(res.AfterROC)
	return res, nil
}

// String renders the study.
func (r *CongestionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Congestion vs. faults — ECN/DCQCN fabric, %d trials per cell, drop rate %s, CE discount %.1f\n",
		r.Config.Trials, pct(r.Config.DropRate), r.Config.CEDiscount)
	fmt.Fprintf(&b, "operating points at the 1%% threshold, before / after the CE discount:\n")
	fmt.Fprintf(&b, "  %-8s %12s %12s %12s %12s\n", "level", "FPR before", "FNR before", "FPR after", "FNR after")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8s %12s %12s %12s %12s\n",
			row.Level, pct(row.BeforeFPR), pct(row.BeforeFNR), pct(row.AfterFPR), pct(row.AfterFNR))
	}
	fmt.Fprintf(&b, "pooled ROC (all levels, clean and faulted):\n")
	fmt.Fprintf(&b, "  %-10s %9s %9s %9s %9s\n", "threshold", "FPR(pre)", "FNR(pre)", "FPR(post)", "FNR(post)")
	for i := range r.BeforeROC {
		pb, pa := r.BeforeROC[i], r.AfterROC[i]
		fmt.Fprintf(&b, "  %-10s %9s %9s %9s %9s\n",
			pct(pb.Threshold), pct(pb.FPR), pct(pb.FNR), pct(pa.FPR), pct(pa.FNR))
	}
	fmt.Fprintf(&b, "AUC before %.4f, after %.4f\n", r.BeforeAUC, r.AfterAUC)
	return b.String()
}

// CSV renders the pooled curves as arm,threshold,fpr,fnr rows.
func (r *CongestionResult) CSV() string {
	var b strings.Builder
	b.WriteString("arm,threshold,fpr,fnr\n")
	for _, p := range r.BeforeROC {
		fmt.Fprintf(&b, "before,%g,%g,%g\n", p.Threshold, p.FPR, p.FNR)
	}
	for _, p := range r.AfterROC {
		fmt.Fprintf(&b, "after,%g,%g,%g\n", p.Threshold, p.FPR, p.FNR)
	}
	return b.String()
}
