package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/control"
	"flowpulse/internal/core"
	"flowpulse/internal/fault"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
)

// DivergenceConfig measures what ChangeSet verification buys when the
// control plane's believed topology splits from fabric truth. Three
// injection scenarios — a silently dropped re-admission push, a stale
// LSDB advertisement, and a partially rolled-out multi-link ChangeSet —
// each run twice: once with the verified plane (verify-own-writes,
// reconciliation) and once with the unverified posture most production
// controllers ship (push and trust). No scenario injects a data-plane
// fault, so every quarantine the loop performs is an innocent link
// taken out of service purely because belief lied.
type DivergenceConfig struct {
	// Leaves, Spines, BytesPerRank shape the fabric (defaults 8×4,
	// 4 MiB — the experiment measures control-plane dynamics, not
	// detection accuracy, so it runs at small scale).
	Leaves, Spines int
	BytesPerRank   int64
	// Iterations is the run length per trial (default 14).
	Iterations int
	// Onset is the iteration at which the scripted mutation or
	// corruption lands (default 3).
	Onset int
	// Seed roots the randomness.
	Seed uint64
}

func (c *DivergenceConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 8
	}
	if c.Spines == 0 {
		c.Spines = 4
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 4 << 20
	}
	if c.Iterations == 0 {
		c.Iterations = 14
	}
	if c.Onset == 0 {
		c.Onset = 3
	}
}

// DivergenceRow is one scenario × posture outcome.
type DivergenceRow struct {
	Scenario, Arm string
	// InnocentQuarantines counts links admin-downed by the loop. The
	// fabric is fault-free in every scenario, so each one is healthy
	// hardware lost to a wrong belief.
	InnocentQuarantines uint64
	// Withheld counts quarantines the remediator converted into
	// belief repairs (reconcile-before-quarantine).
	Withheld uint64
	// Alerts is the detector's alert count.
	Alerts int
	// Converged reports belief == truth == intent at end of run.
	Converged bool
	// TimeToReconcile is the longest belief≠truth episode (0 when the
	// run never diverged; see Converged for the never-closed case).
	TimeToReconcile sim.Duration
	// Plane is the control plane's full counter set.
	Plane control.Stats
}

// DivergenceResult is the experiment outcome.
type DivergenceResult struct {
	Config DivergenceConfig
	Rows   []DivergenceRow
}

// divergenceTrial builds one scenario, attaches the monitored system
// with the closed loop on the runtime's own control plane, and runs it
// with an optional per-iteration script. The script receives the
// attached system so scripted operator actions can refresh the
// predictor baseline the way the remediator's own actions do.
func divergenceTrial(sc core.Scenario, script func(rt *core.Runtime, sys *core.System, now sim.Time, iter uint32)) (*core.Runtime, *core.System, error) {
	rt, err := sc.Build()
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.Attach(core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Job: int(sc.Job), Remediate: &remediate.Config{}, Control: rt.Plane,
	})
	if err != nil {
		rt.Close()
		return nil, nil, err
	}
	rt.StartTraining(func(now sim.Time, iter uint32) {
		if script != nil {
			script(rt, sys, now, iter)
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())
	return rt, sys, nil
}

// divergenceRow reduces one finished trial.
func divergenceRow(scenario, arm string, rt *core.Runtime, sys *core.System) DivergenceRow {
	ps := rt.Plane.Stats()
	rs := sys.Remediator().Stats()
	return DivergenceRow{
		Scenario: scenario, Arm: arm,
		InnocentQuarantines: rs.Quarantines,
		Withheld:            rs.Reconciliations,
		Alerts:              len(sys.Events),
		Converged:           len(rt.Plane.Divergent()) == 0,
		TimeToReconcile:     ps.MaxDiverged,
		Plane:               ps,
	}
}

// Divergence runs the three scenarios under both postures.
func Divergence(cfg DivergenceConfig) (*DivergenceResult, error) {
	cfg.setDefaults()
	res := &DivergenceResult{Config: cfg}
	base := core.Scenario{
		Leaves: cfg.Leaves, Spines: cfg.Spines,
		BytesPerRank: cfg.BytesPerRank, Iterations: cfg.Iterations,
		Seed: cfg.Seed,
	}
	target := core.LeafSpineLink{LeafOrd: cfg.Leaves / 2, SpineOrd: 1}

	for _, arm := range []struct {
		name       string
		unverified bool
	}{{"verified", false}, {"unverified", true}} {
		// Scenario 1 — failed push: link F sits admin-down
		// (pre-existing), and at Onset the operator re-admits it,
		// refreshing the predictor baseline the way any controller
		// action does. The push is silently eaten (FailSkip covers the
		// pre-existing ChangeSet's single push). The verified plane's
		// read-back catches the lie and re-pushes; the unverified plane
		// commits belief=up over truth=down, the predictor demands
		// traffic the dead link cannot carry, and the loop burns a full
		// detect → confirm → quarantine cycle re-learning what the
		// read-back would have said for free.
		sc := base
		sc.PreExisting = []core.LeafSpineLink{target}
		sc.Divergence = core.DivergenceSpec{
			FailSkip: 1, FailPushes: 1, Unverified: arm.unverified,
		}
		rt, sys, err := divergenceTrial(sc, func(rt *core.Runtime, sys *core.System, now sim.Time, iter uint32) {
			if int(iter) == cfg.Onset {
				rt.Plane.Readmit(now, rt.Link(target))
				sys.Rebaseline()
			}
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, divergenceRow("failed-push readmit", arm.name, rt, sys))
		rt.Close()

		// Scenario 2 — stale LSDB: a healthy link's advertisement is
		// corrupted to "down" mid-run, and the next periodic predictor
		// refresh (one iteration later) bakes the phantom outage into
		// the expected shares. No write is involved, so
		// verify-own-writes never sees it; the verified plane catches
		// it when the first confirmed deviation triggers
		// reconciliation, the unverified plane never reconciles and
		// quarantines the innocent siblings that inherit the phantom
		// deficit.
		sc = base
		sc.Divergence = core.DivergenceSpec{Unverified: arm.unverified}
		rt, sys, err = divergenceTrial(sc, func(rt *core.Runtime, sys *core.System, now sim.Time, iter uint32) {
			switch int(iter) {
			case cfg.Onset:
				rt.Plane.Inject(fault.Divergence{
					Kind: fault.DivergeStaleLSDB,
					At:   now, Link: rt.Link(target), Up: false,
				})
			case cfg.Onset + 1:
				sys.Rebaseline()
			}
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, divergenceRow("stale LSDB advert", arm.name, rt, sys))
		rt.Close()

		// Scenario 3 — partial rollout: a two-trunk quarantine lands
		// only its first operation on the fabric. Verification rolls
		// the stall forward (retry) before committing; the unverified
		// plane believes both trunks are dark while one still carries
		// traffic, and the belief never heals.
		sc = base
		sc.Trunk = 2
		sc.PreExisting = []core.LeafSpineLink{
			{LeafOrd: target.LeafOrd, SpineOrd: target.SpineOrd, Trunk: 0},
			{LeafOrd: target.LeafOrd, SpineOrd: target.SpineOrd, Trunk: 1},
		}
		sc.Divergence = core.DivergenceSpec{PartialOps: 1, Unverified: arm.unverified}
		rt, sys, err = divergenceTrial(sc, nil)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, divergenceRow("partial rollout", arm.name, rt, sys))
		rt.Close()
	}
	return res, nil
}

// String renders the comparison table plus per-row plane counters.
func (r *DivergenceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Belief vs truth — %dx%d fat tree, %d MiB per rank, %d iterations, fault-free fabric\n",
		r.Config.Leaves, r.Config.Spines, r.Config.BytesPerRank>>20, r.Config.Iterations)
	fmt.Fprintf(&b, "%-20s %-11s %9s %9s %7s %14s %10s\n",
		"scenario", "plane", "innocent", "withheld", "alerts", "t-reconcile", "converged")
	for _, row := range r.Rows {
		rec := row.TimeToReconcile.String()
		if !row.Converged {
			rec = "never"
		} else if row.TimeToReconcile == 0 {
			rec = "-"
		}
		conv := "yes"
		if !row.Converged {
			conv = "NO"
		}
		fmt.Fprintf(&b, "%-20s %-11s %9d %9d %7d %14s %10s\n",
			row.Scenario, row.Arm, row.InnocentQuarantines, row.Withheld,
			row.Alerts, rec, conv)
	}
	for _, row := range r.Rows {
		p := row.Plane
		fmt.Fprintf(&b, "plane (%s, %s): changesets=%d committed=%d rolled-back=%d retries=%d mismatches=%d stale-adopted=%d audits=%d episodes=%d/%d\n",
			row.Scenario, row.Arm, p.ChangeSets, p.Committed, p.RolledBack,
			p.Retries, p.VerifyMismatches, p.StaleAdopted, p.Audits,
			p.Reconciled, p.Divergences)
	}
	return b.String()
}

// CSV renders plottable rows.
func (r *DivergenceResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,arm,innocent_quarantines,withheld,alerts,time_to_reconcile_us,converged\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.3f,%t\n",
			row.Scenario, row.Arm, row.InnocentQuarantines, row.Withheld,
			row.Alerts, float64(row.TimeToReconcile)/float64(sim.Microsecond),
			row.Converged)
	}
	return b.String()
}
