package experiments

import (
	"strings"
	"testing"

	"flowpulse/internal/core"
	"flowpulse/internal/spray"
)

// Test configurations are scaled down (8 leaves × 4 spines, small
// collectives) so the suite runs in seconds; the flowpulse-eval CLI
// and benchmarks run the paper-scale versions.

func TestTrialCleanHasNoPositives(t *testing.T) {
	tr := Trial{
		Scenario:   core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 2 << 20, Seed: 1},
		CleanIters: 2, FaultIters: 0, DropRate: 0,
	}
	out, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("samples = %d", len(out.Samples))
	}
	for _, s := range out.Samples {
		if s.Positive {
			t.Fatal("clean trial labeled positive")
		}
	}
	if out.FirstDetection != 0 || out.FalseAlerts != 0 {
		t.Fatalf("clean trial alerted: %+v", out)
	}
}

func TestTrialLabelsFaultPhase(t *testing.T) {
	tr := Trial{
		Scenario:   core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Seed: 2},
		Fault:      core.LeafSpineLink{LeafOrd: 3, SpineOrd: 1},
		DropRate:   0.05,
		CleanIters: 2, FaultIters: 2,
	}
	out, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 4 {
		t.Fatalf("samples = %d", len(out.Samples))
	}
	for i, s := range out.Samples {
		if s.Positive != (i >= 2) {
			t.Fatalf("sample %d label wrong", i)
		}
	}
	if out.FirstDetection != 3 {
		t.Fatalf("first detection at iter %d, want 3", out.FirstDetection)
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	var trials []Trial
	for i := 0; i < 3; i++ {
		trials = append(trials, Trial{
			Scenario:   core.Scenario{Leaves: 4, Spines: 2, BytesPerRank: 1 << 20, Seed: uint64(i)},
			Fault:      core.LeafSpineLink{LeafOrd: 1, SpineOrd: 0},
			DropRate:   float64(i) * 0.05, // trial 0 is clean
			CleanIters: 1, FaultIters: 1,
		})
	}
	results, err := RunAll(trials)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Samples[1].Positive {
		t.Fatal("clean trial (index 0) mislabeled — order not preserved?")
	}
	if !results[2].Samples[1].Positive {
		t.Fatal("faulty trial (index 2) mislabeled")
	}
}

func TestFig2PredictionMatchesSimulation(t *testing.T) {
	res, err := Fig2(Fig2Config{Leaves: 8, Spines: 4, FlowBytes: 8 << 20, Iterations: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ports) != 4 {
		t.Fatalf("ports = %d", len(res.Ports))
	}
	// "Close agreement": within 2% per port.
	if res.MaxRelErr > 0.02 {
		t.Fatalf("max relative error %v, want <= 2%%\n%s", res.MaxRelErr, res)
	}
	// Pre-existing fault must zero out its port in both columns.
	zeroed := false
	for _, p := range res.Ports {
		if p.Predicted == 0 && p.Observed == 0 {
			zeroed = true
		}
	}
	if !zeroed {
		t.Fatalf("no port shows the known fault:\n%s", res)
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Fatal("renderer broken")
	}
}

func TestFig3RebaselineHappens(t *testing.T) {
	res, err := Fig3(Fig3Config{
		Leaves: 8, Spines: 4, BytesPerRank: 4 << 20,
		Iterations: 12, HealAfter: 5,
		Fault: core.LeafSpineLink{LeafOrd: 2, SpineOrd: 1},
		Seed:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RebaselinedAtIter == 0 {
		t.Fatalf("no rebaseline:\n%s", res)
	}
	if int(res.RebaselinedAtIter) <= res.Config.HealAfter {
		t.Fatalf("rebaseline at %d, before heal at %d", res.RebaselinedAtIter, res.Config.HealAfter)
	}
	if res.AlertsAfterRebaseline != 0 {
		t.Fatalf("%d alerts after rebaseline:\n%s", res.AlertsAfterRebaseline, res)
	}
	// The healed observation must be HIGHER than during the fault.
	var during, after float64
	for _, pt := range res.Series {
		if int(pt.Iter) == 3 {
			during = pt.Observed
		}
		if int(pt.Iter) == res.Config.Iterations {
			after = pt.Observed
		}
	}
	if after <= during {
		t.Fatalf("healed load %v not above faulty load %v", after, during)
	}
}

func TestFig5aSeverityOrdering(t *testing.T) {
	res, err := Fig5a(Fig5aConfig{
		Scenario:  core.Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Seed: 5},
		DropRates: []float64{0.005, 0.03},
		Trials:    2, CleanIters: 2, FaultIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	at1pct := func(c Fig5aCurve) (fpr, fnr float64) {
		for _, p := range c.Points {
			if p.Threshold == 0.01 {
				return p.FPR, p.FNR
			}
		}
		t.Fatal("no 1% threshold point")
		return 0, 0
	}
	fprLow, fnrLow := at1pct(res.Curves[0])   // 0.5% drop
	fprHigh, fnrHigh := at1pct(res.Curves[1]) // 3% drop
	if fprLow != 0 || fprHigh != 0 {
		t.Fatalf("FPR at 1%% threshold nonzero: %v %v", fprLow, fprHigh)
	}
	if fnrHigh != 0 {
		t.Fatalf("3%% drop not perfectly detected: FNR %v", fnrHigh)
	}
	if fnrLow <= fnrHigh {
		t.Fatalf("FNR ordering violated: %v (0.5%%) vs %v (3%%)", fnrLow, fnrHigh)
	}
	if !res.Curves[1].PerfectAtOnePercent {
		t.Fatal("3% drop should be perfect at the 1% threshold")
	}
}

func TestFig5cSizeOrdering(t *testing.T) {
	// With 4 spines, a drop rate r yields a port deficit of only
	// r(1-1/4) (retransmits re-spray a quarter of the loss back), so
	// 2.5%% gives mean deviation ~1.9%% — solidly past the threshold at
	// 16 MiB (Poisson σ small) but frequently missed at 1 MiB, where a
	// single dropped packet is 0.6%% of a port's volume.
	res, err := Fig5c(Fig5cConfig{
		Leaves: 8, Spines: 4,
		Sizes:     []int64{1 << 20, 16 << 20},
		DropRates: []float64{0.025},
		Trials:    3, CleanIters: 2, FaultIters: 2,
		Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	small, large := res.Cells[0], res.Cells[1]
	if small.Bytes > large.Bytes {
		small, large = large, small
	}
	if small.FNR < large.FNR {
		t.Fatalf("smaller collective has LOWER FNR: %v vs %v\n%s", small.FNR, large.FNR, res)
	}
	if large.FNR > 0.1 {
		t.Fatalf("16 MiB at 2.5%% drop should detect reliably, FNR=%v", large.FNR)
	}
}

func TestFig5bRuns(t *testing.T) {
	res, err := Fig5b(Fig5bConfig{
		Radixes:      []int{8, 16},
		BytesPerRank: 2 << 20,
		Trials:       1, CleanIters: 2, FaultIters: 2,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.FPR) != len(res.Config.Thresholds) {
			t.Fatal("per-threshold columns missing")
		}
		for i := range row.FPR {
			if row.FPR[i] < 0 || row.FPR[i] > 1 || row.FNR[i] < 0 || row.FNR[i] > 1 {
				t.Fatalf("rates out of range: %+v", row)
			}
		}
	}
	if !strings.Contains(res.String(), "radix") {
		t.Fatal("renderer broken")
	}
}

func TestPreExistingPerfectAtHighRate(t *testing.T) {
	res, err := PreExisting(PreExistingConfig{
		Leaves: 8, Spines: 4, BytesPerRank: 8 << 20,
		Counts:    []int{0, 2},
		DropRates: []float64{0.03},
		Trials:    1, CleanIters: 2, FaultIters: 2,
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if !c.Perfect {
			t.Fatalf("cell not perfect: %+v\n%s", c, res)
		}
	}
}

func TestHeadlineScaledDown(t *testing.T) {
	// The paper-scale headline (64 MiB per rank on 32×16) runs in the
	// CLI; here a scaled variant with the same claim structure.
	res, err := Headline(HeadlineConfig{
		DropRate:     0.015,
		BytesPerRank: 32 << 20,
		CleanIters:   1, FaultIters: 3,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("headline fault not detected:\n%s", res)
	}
	if !res.CorrectPort {
		t.Fatalf("deficit alerts at wrong port:\n%s", res)
	}
	if res.FalseAlerts != 0 {
		t.Fatalf("false alerts in clean phase:\n%s", res)
	}
}

func TestFig4LocalizationAccuracy(t *testing.T) {
	res, err := Fig4(Fig4Config{
		Leaves: 8, Spines: 4, BytesPerRank: 16 << 20,
		Trials: 1, Iterations: 3,
		Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Downstream.Local == 0 {
		t.Fatalf("downstream fault produced no local-link verdicts:\n%s", res)
	}
	if res.Downstream.Local <= res.Downstream.Remote {
		t.Fatalf("downstream fault mostly misclassified:\n%s", res)
	}
	if res.Upstream.Remote == 0 {
		t.Fatalf("upstream fault produced no remote-link verdicts:\n%s", res)
	}
	if res.Upstream.Accuracy < 0.5 {
		t.Fatalf("upstream localization accuracy %v:\n%s", res.Upstream.Accuracy, res)
	}
}

func TestAblationSprayPolicies(t *testing.T) {
	res, err := Ablation(AblationConfig{
		Policies: []spray.Kind{spray.LeastLoaded, spray.Random},
		Leaves:   8, Spines: 4, BytesPerRank: 4 << 20,
		CleanIters: 2, FaultIters: 2,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var adaptive, random AblationRow
	for _, row := range res.Rows {
		switch row.Policy {
		case spray.LeastLoaded:
			adaptive = row
		case spray.Random:
			random = row
		}
	}
	// The design-choice claim: adaptive spraying's clean noise sits
	// under the 1% threshold; uniform random spraying's does not.
	if adaptive.CleanNoise >= 0.01 {
		t.Fatalf("adaptive clean noise %v >= threshold\n%s", adaptive.CleanNoise, res)
	}
	if random.CleanNoise <= adaptive.CleanNoise {
		t.Fatalf("random spraying (%v) not noisier than adaptive (%v)", random.CleanNoise, adaptive.CleanNoise)
	}
}
