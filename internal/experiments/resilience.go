package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/metrics"
	"flowpulse/internal/remediate"
	"flowpulse/internal/resilience"
	"flowpulse/internal/sim"
)

// ResilienceConfig measures what remediation alone cannot repair: the
// workload. An interleaved (placement-oblivious) ring runs on a 2:1
// oversubscribed leaf-spine fabric, so every ring edge crosses leaves
// and each leaf's uplinks — not the host NICs — are the binding
// constraint. A persistent silent fault on one uplink is detected,
// confirmed, and quarantined, which routes around the fault but leaves
// the victim leaf at half its uplink capacity: the interleaved ring
// still pushes its full crossing demand through the surviving uplink
// and runs at ~50% goodput forever. The re-planner instead re-ranks
// the ring so the victim leaf's hosts are contiguous, cutting its
// crossing demand to what one uplink carries at the baseline rate —
// the other leaves remain the bottleneck and goodput returns to
// baseline. The experiment runs the identical fault twice, with the
// re-planner off and on, and reports the goodput timeline's
// before/during/after rates, total stall, and time-to-recovery.
//
// Oversubscription matters: on a non-blocking fabric the lost uplink
// is absorbed by latency slack (the NICs were the bottleneck) and both
// arms recover, leaving nothing to measure. The fabric keeps the
// default least-loaded adaptive spray: after the quarantine the
// fabric is asymmetric (the dead spine goes cold for the victim
// leaf), and adaptive spraying settles into a water-filling
// equilibrium across each leaf's ingress ports rather than an even
// split — the analytical predictor models exactly that equilibrium
// (see predict.Analytical), so detection stays quiet through the
// repair instead of cascading into false quarantines.
type ResilienceConfig struct {
	// Leaves, Spines, HostsPerLeaf shape the fabric (defaults 8×2×4: a
	// 2:1 oversubscribed leaf-spine where the interleaved ring's
	// crossing demand is twice what the uplinks carry at NIC rate, so
	// uplink capacity gates goodput and losing 1 of 2 uplinks halves
	// it).
	Leaves, Spines, HostsPerLeaf int
	// BytesPerRank is the collective size D (default 2 MiB: large
	// enough that the uplink bottleneck dominates the per-packet
	// constants, small enough that the post-repair seam — the one
	// congested trunk into the victim leaf — stays below the
	// retransmission-ambiguity regime that would mask the recovery).
	BytesPerRank int64
	// DropRate is the persistent silent fault's loss rate (default 5%:
	// heavy enough that the pre-quarantine drop phase itself stalls the
	// workload below the recovery bar, so "recovered" cleanly separates
	// the arms).
	DropRate float64
	// Onset is the iteration after which the fault activates (default 2).
	Onset int
	// Iterations is the run length (default 20: baseline, detect +
	// quarantine, then enough post-fault iterations to score recovery).
	Iterations int
	// RecoverTarget is the goodput fraction that counts as recovered,
	// for both the metric and the re-planner (default 0.9).
	RecoverTarget float64
	// Remediate tunes the fabric control loop (shared by both arms).
	Remediate remediate.Config
	// Seed roots the randomness; both arms run the same seed.
	Seed uint64
}

func (c *ResilienceConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 8
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 4
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 2 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.05
	}
	if c.Onset == 0 {
		c.Onset = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.RecoverTarget == 0 {
		c.RecoverTarget = 0.9
	}
}

// ResilienceArm is one run's outcome (re-plan off or on).
type ResilienceArm struct {
	Name string
	// Report is the goodput/stall/recovery summary at RecoverTarget.
	Report metrics.GoodputReport
	// Quarantines counts fabric-level repairs; Replans and Restores
	// count workload-level ones.
	Quarantines       uint64
	Replans, Restores int
	// Timeline is the full remediation action log (fabric + workload).
	Timeline []remediate.Action
	// Points is the raw per-iteration timeline for plotting.
	Points []metrics.IterPoint
}

// ResilienceResult is the experiment outcome: the same fault with the
// re-planner off, then on.
type ResilienceResult struct {
	Config ResilienceConfig
	Arms   []ResilienceArm
}

// resilienceArm runs the scenario once.
func resilienceArm(cfg ResilienceConfig, replan bool) (*ResilienceArm, error) {
	sc := core.Scenario{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
		InterleaveRing: true,
		BytesPerRank:   cfg.BytesPerRank,
		Iterations:     cfg.Iterations,
		Seed:           cfg.Seed,
	}
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	rcfg := cfg.Remediate
	coreCfg := core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Job: int(sc.Job), Remediate: &rcfg,
	}
	if replan {
		coreCfg.Resilience = &resilience.Config{RecoverTarget: cfg.RecoverTarget}
	}
	sys, err := core.Attach(coreCfg)
	if err != nil {
		return nil, err
	}
	rt.Goodput = &metrics.GoodputTimeline{}
	victim := core.LeafSpineLink{LeafOrd: cfg.Leaves / 2, SpineOrd: 0}
	job := rt.StartTraining(func(now sim.Time, iter uint32) {
		if int(iter) == cfg.Onset {
			rt.Goodput.MarkFault(int64(now))
			rt.InjectSilentDrop(victim, cfg.DropRate)
		}
	}, nil)
	if err := sys.BindWorkload(job); err != nil {
		return nil, err
	}
	rt.Run()
	sys.Flush(rt.Engine.Now())

	name := "re-plan off"
	if replan {
		name = "re-plan on"
	}
	arm := &ResilienceArm{
		Name:   name,
		Report: rt.Goodput.Report(cfg.RecoverTarget),
		Points: rt.Goodput.Points(),
	}
	r := sys.Remediator()
	arm.Quarantines = r.Stats().Quarantines
	arm.Timeline = r.Timeline
	for _, a := range r.Timeline {
		switch a.Kind {
		case remediate.ActionReplan:
			arm.Replans++
		case remediate.ActionRestore:
			arm.Restores++
		}
	}
	return arm, nil
}

// Resilience runs both arms over the identical fault and seed.
func Resilience(cfg ResilienceConfig) (*ResilienceResult, error) {
	cfg.setDefaults()
	res := &ResilienceResult{Config: cfg}
	for _, replan := range []bool{false, true} {
		arm, err := resilienceArm(cfg, replan)
		if err != nil {
			return nil, err
		}
		res.Arms = append(res.Arms, *arm)
	}
	return res, nil
}

// iterPerMS converts an iterations-per-picosecond rate to iter/ms.
func iterPerMS(rate float64) float64 { return rate * float64(sim.Millisecond) }

// String renders the two-arm comparison plus both timelines.
func (r *ResilienceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilient collectives — %dx%d fat tree, %d hosts/leaf, interleaved ring, %d MiB per rank, %s persistent drop after iter %d (recover target %.0f%%)\n",
		r.Config.Leaves, r.Config.Spines, r.Config.HostsPerLeaf,
		r.Config.BytesPerRank>>20, pct(r.Config.DropRate), r.Config.Onset,
		100*r.Config.RecoverTarget)
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %10s %6s %10s %5s %7s\n",
		"arm", "base it/ms", "during", "post", "stall", "quar", "recovery", "plans", "goodput")
	for _, a := range r.Arms {
		rec, recAt := "UNRECOVERED", "-"
		if a.Report.Recovered {
			rec = fmt.Sprintf("%v", sim.Duration(a.Report.RecoveryTime))
			recAt = fmt.Sprintf("i%d", a.Report.RecoveryIter)
		}
		post := a.Report.Post
		if !a.Report.Recovered {
			post = a.Report.During // steady degraded rate
		}
		fmt.Fprintf(&b, "%-12s %12.3f %12.3f %12.3f %10v %6d %10s %5s %6.0f%%\n",
			a.Name, iterPerMS(a.Report.Baseline), iterPerMS(a.Report.During),
			iterPerMS(a.Report.Post), sim.Duration(a.Report.Stall),
			a.Quarantines, rec, recAt,
			100*post/a.Report.Baseline)
	}
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "timeline (%s):\n", a.Name)
		for _, act := range a.Timeline {
			fmt.Fprintf(&b, "  %v\n", act)
		}
	}
	return b.String()
}

// CSV renders plottable rows: one per arm, then the raw per-iteration
// points of each arm for the recovery-timeline figure.
func (r *ResilienceResult) CSV() string {
	var b strings.Builder
	b.WriteString("arm,baseline_iter_per_ms,during_iter_per_ms,post_iter_per_ms,stall_us,recovered,recovery_time_us,recovery_iter,quarantines,replans,restores\n")
	for _, a := range r.Arms {
		recovered := 0
		if a.Report.Recovered {
			recovered = 1
		}
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.3f,%d,%.3f,%d,%d,%d,%d\n",
			a.Name, iterPerMS(a.Report.Baseline), iterPerMS(a.Report.During),
			iterPerMS(a.Report.Post),
			float64(a.Report.Stall)/float64(sim.Microsecond), recovered,
			float64(a.Report.RecoveryTime)/float64(sim.Microsecond),
			a.Report.RecoveryIter, a.Quarantines, a.Replans, a.Restores)
	}
	b.WriteString("arm,iter,end_us,dur_us\n")
	for _, a := range r.Arms {
		for _, p := range a.Points {
			fmt.Fprintf(&b, "%s,%d,%.3f,%.3f\n", a.Name, p.Iter,
				float64(p.End)/float64(sim.Microsecond), float64(p.Dur)/float64(sim.Microsecond))
		}
	}
	return b.String()
}
