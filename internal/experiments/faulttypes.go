package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/fault"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
)

// FaultTypesConfig reproduces §7 "Fault Types": the paper argues
// FlowPulse catches most gray faults because they all manifest as
// packet drops — steady random loss, routing black holes, bursty
// transceiver degradation, and uncorrectable bit errors alike. This
// experiment injects each model on the same link and reports detection
// at the 1% threshold.
type FaultTypesConfig struct {
	// Leaves, Spines, BytesPerRank (defaults 32×16, 16 MiB).
	Leaves, Spines int
	BytesPerRank   int64
	// Threshold is the operating point (default 1%).
	Threshold float64
	// Trials per fault type.
	Trials int
	// CleanIters and FaultIters per trial.
	CleanIters, FaultIters int
	// Seed roots the randomness.
	Seed uint64
}

func (c *FaultTypesConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 32
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.CleanIters == 0 {
		c.CleanIters = 2
	}
	if c.FaultIters == 0 {
		c.FaultIters = 3
	}
}

// FaultTypeRow is one fault model's outcome.
type FaultTypeRow struct {
	Name string
	// EffectiveLoss is the model's average packet-loss probability on
	// the faulted link (what the deviation should track).
	EffectiveLoss float64
	// FPR and FNR at the configured threshold.
	FPR, FNR float64
	// MeanDetectionLatency is the average fault iterations until the
	// first alert (0 when never detected).
	MeanDetectionLatency float64
}

// FaultTypesResult is the reproduced table.
type FaultTypesResult struct {
	Config FaultTypesConfig
	Rows   []FaultTypeRow
}

// faultSpec builds a model instance per trial (fresh RNG streams).
type faultSpec struct {
	name string
	loss float64
	make func(seed uint64) fault.Model
}

func faultSpecs(cfg FaultTypesConfig) []faultSpec {
	return []faultSpec{
		{
			name: "bernoulli-2.5%",
			loss: 0.025,
			make: func(seed uint64) fault.Model {
				return fault.NewBernoulliDrop(0.025, sim.NewRNG(seed, "ft/bern"))
			},
		},
		{
			name: "blackhole",
			loss: 1.0,
			make: func(uint64) fault.Model { return fault.BlackHole{} },
		},
		{
			name: "gilbert-elliott",
			// Bursty: mostly clean, 30% loss bursts; steady state ~2.7%.
			loss: func() float64 {
				g := fault.NewGilbertElliott(0.01, 0.1, 0, 0.3, sim.NewRNG(0, "x"))
				return g.SteadyStateLoss()
			}(),
			make: func(seed uint64) fault.Model {
				return fault.NewGilbertElliott(0.01, 0.1, 0, 0.3, sim.NewRNG(seed, "ft/ge"))
			},
		},
		{
			name: "bit-error-1e-6",
			// BER 1e-6 on 4160-byte frames ≈ 3.3% frame loss.
			loss: func() float64 {
				b := fault.NewBitError(1e-6, sim.NewRNG(0, "x"))
				return b.DropProbability(4160)
			}(),
			make: func(seed uint64) fault.Model {
				return fault.NewBitError(1e-6, sim.NewRNG(seed, "ft/ber"))
			},
		},
	}
}

// FaultTypes runs the experiment.
func FaultTypes(cfg FaultTypesConfig) (*FaultTypesResult, error) {
	cfg.setDefaults()
	res := &FaultTypesResult{Config: cfg}
	for _, spec := range faultSpecs(cfg) {
		var samples []metrics.Sample
		var latencySum float64
		detected := 0
		for tr := 0; tr < cfg.Trials; tr++ {
			sc := withNoise(core.Scenario{
				Leaves: cfg.Leaves, Spines: cfg.Spines,
				BytesPerRank: cfg.BytesPerRank,
				Seed:         cfg.Seed + uint64(tr)*977,
			})
			sc.Iterations = cfg.CleanIters + cfg.FaultIters
			rt, err := sc.Build()
			if err != nil {
				return nil, err
			}
			sys, err := core.Attach(core.Config{
				Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
				Kind: core.AnalyticalModel, Job: int(sc.Job),
			})
			if err != nil {
				return nil, err
			}
			link := rt.Link(faultLinkFor(sc, tr))
			dir := rt.Net.DirToward(link, rt.Topo.Leaves()[faultLinkFor(sc, tr).LeafOrd])
			model := spec.make(sc.Seed)
			rt.StartTraining(func(_ sim.Time, iter uint32) {
				if int(iter) == cfg.CleanIters {
					rt.Net.InjectFault(link, dir, model)
				}
			}, nil)
			rt.Run()
			sys.Flush(rt.Engine.Now())

			scores := sys.IterationScores()
			for iter := 1; iter <= sc.Iterations; iter++ {
				samples = append(samples, metrics.Sample{
					Score:    scores[uint32(iter)],
					Positive: iter > cfg.CleanIters,
				})
			}
			for _, e := range sys.Events {
				if int(e.Alert.Iter) > cfg.CleanIters {
					latencySum += float64(int(e.Alert.Iter) - cfg.CleanIters)
					detected++
					break
				}
			}
		}
		fpr, fnr := metrics.RatesAt(samples, cfg.Threshold)
		row := FaultTypeRow{Name: spec.name, EffectiveLoss: spec.loss, FPR: fpr, FNR: fnr}
		if detected > 0 {
			row.MeanDetectionLatency = latencySum / float64(detected)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table.
func (r *FaultTypesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault types (§7) — detection at %s threshold, %dx%d fat tree, %d MiB per rank\n",
		pct(r.Config.Threshold), r.Config.Leaves, r.Config.Spines, r.Config.BytesPerRank>>20)
	fmt.Fprintf(&b, "%-18s %12s %8s %8s %10s\n", "fault", "eff. loss", "FPR", "FNR", "latency")
	for _, row := range r.Rows {
		lat := "-"
		if row.MeanDetectionLatency > 0 {
			lat = fmt.Sprintf("%.1f iter", row.MeanDetectionLatency)
		}
		fmt.Fprintf(&b, "%-18s %12s %8s %8s %10s\n", row.Name, pct(row.EffectiveLoss), pct(row.FPR), pct(row.FNR), lat)
	}
	return b.String()
}
