package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/eval_quick.golden from the current output")

// goldenSubset is the quick-scale slice of the eval suite pinned by
// the golden file: enough coverage (fat tree, Clos, trunking,
// blocking, ablation) to catch an output or behavior drift, small
// enough to run in seconds.
var goldenSubset = []string{"fig2", "fig3", "fig4", "fig5b", "trunks", "clos3", "blocking", "congestion", "ablation", "paralleljobs"}

// TestEvalGolden pins the exact text flowpulse-eval prints for a
// quick-scale run at seed 1. The whole pipeline is deterministic, so
// any diff is a real behavior change: either a regression, or an
// intentional change to be blessed with
//
//	go test ./internal/experiments -run TestEvalGolden -update
func TestEvalGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale eval run is still a multi-second simulation")
	}
	runs := EvalExperiments(EvalOverrides{Quick: true, Seed: 1})
	var b strings.Builder
	for _, name := range goldenSubset {
		res, err := runs[name]()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 72))
		b.WriteString(res.String())
	}
	got := b.String()

	path := filepath.Join("testdata", "eval_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("eval output drifted from %s — diff:\n%s\n(bless intentional changes with -update)",
			path, diffLines(string(want), got))
	}
}

// diffLines renders a compact first-divergence diff so a golden
// failure points at the changed experiment, not a 200-line dump.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, wl, gl)
		}
	}
	return "(lengths differ only)"
}
