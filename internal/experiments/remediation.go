package experiments

import (
	"fmt"
	"strings"

	"flowpulse/internal/core"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
)

// RemediationConfig exercises the closed remediation loop end to end:
// detect → confirm → quarantine → re-baseline → probe → re-admit, with
// flap damping. Two scenarios share one fabric shape: a persistent
// 1.5% silent fault (quarantined once, never re-admitted) and a
// periodically degraded link (quarantine/re-admission cycles until
// damping pins it down).
type RemediationConfig struct {
	// Leaves, Spines, BytesPerRank shape the fabric (defaults 8×4,
	// 8 MiB — the experiment measures control-loop dynamics, not
	// detection accuracy, so it runs at small scale).
	Leaves, Spines int
	BytesPerRank   int64
	// DropRate is the persistent fault's loss rate (default 1.5%).
	DropRate float64
	// FlapLoss is the flapping link's down-phase loss (default 30%).
	FlapLoss float64
	// Onset is the iteration after which faults activate (default 2).
	Onset int
	// PersistIters and FlapIters are the run lengths (defaults 12, 36).
	PersistIters, FlapIters int
	// Remediate tunes the loop. The flapping run tightens Suppress to
	// 1500 when left at zero, so the second quarantine already pins
	// the link and the run stays short.
	Remediate remediate.Config
	// Seed roots the randomness.
	Seed uint64
}

func (c *RemediationConfig) setDefaults() {
	if c.Leaves == 0 {
		c.Leaves = 8
	}
	if c.Spines == 0 {
		c.Spines = 4
	}
	if c.BytesPerRank == 0 {
		c.BytesPerRank = 8 << 20
	}
	if c.DropRate == 0 {
		c.DropRate = 0.015
	}
	if c.FlapLoss == 0 {
		c.FlapLoss = 0.3
	}
	if c.Onset == 0 {
		c.Onset = 2
	}
	if c.PersistIters == 0 {
		c.PersistIters = 12
	}
	if c.FlapIters == 0 {
		c.FlapIters = 36
	}
}

// RemediationRow is one fault scenario's closed-loop outcome.
type RemediationRow struct {
	Name string
	// TimeToQuarantine is first quarantine minus fault onset.
	TimeToQuarantine sim.Duration
	// IterationsDegraded counts distinct iterations that raised alerts
	// before the first quarantine took effect.
	IterationsDegraded int
	// PostQuarantineDeficits counts deficit alerts two or more
	// iterations after the last quarantine — a deficit there means the
	// quarantine failed to restore temporal symmetry (the straddling
	// iteration is excused; borderline surplus noise is the detector's
	// ambient FPR, measured by the fig5 experiments, not a remediation
	// outcome).
	PostQuarantineDeficits int
	// Quarantines, Readmissions, Suppressed summarize the loop.
	Quarantines, Readmissions, Suppressed uint64
	// FIBChurn counts fabric reconvergences (one per admin change).
	FIBChurn uint64
	// Timeline is the full remediation action log.
	Timeline []remediate.Action
}

// RemediationResult is the experiment outcome.
type RemediationResult struct {
	Config RemediationConfig
	// IterDur is the calibrated clean iteration duration.
	IterDur sim.Duration
	Rows    []RemediationRow
}

// remediationRun is one scenario driven with the remediator attached.
func remediationRun(sc core.Scenario, rcfg remediate.Config,
	setup func(rt *core.Runtime), onIter func(rt *core.Runtime, now sim.Time, iter uint32)) (*core.Runtime, *core.System, map[uint32]sim.Time, error) {
	rt, err := sc.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := core.Attach(core.Config{
		Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
		Job: int(sc.Job), Remediate: &rcfg,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if setup != nil {
		setup(rt)
	}
	iterEnd := map[uint32]sim.Time{}
	rt.StartTraining(func(now sim.Time, iter uint32) {
		iterEnd[iter] = now
		if onIter != nil {
			onIter(rt, now, iter)
		}
	}, nil)
	rt.Run()
	sys.Flush(rt.Engine.Now())
	return rt, sys, iterEnd, nil
}

// summarize reduces one run to a row. onsetAt is when the fault
// activated.
func summarize(name string, rt *core.Runtime, sys *core.System, onsetAt sim.Time) RemediationRow {
	r := sys.Remediator()
	st := r.Stats()
	row := RemediationRow{
		Name:        name,
		Quarantines: st.Quarantines, Readmissions: st.Readmissions,
		Suppressed: st.SuppressedReadmits,
		FIBChurn:   rt.Net.FIBRecomputes(),
		Timeline:   r.Timeline,
	}
	var firstQ, lastQ sim.Time
	for _, a := range r.Timeline {
		if a.Kind != remediate.ActionQuarantine {
			continue
		}
		if firstQ == 0 {
			firstQ = a.At
		}
		lastQ = a.At
	}
	if firstQ > 0 {
		row.TimeToQuarantine = sim.Duration(firstQ - onsetAt)
	}
	degraded := map[uint32]bool{}
	var lastQIter uint32
	for _, e := range sys.Events {
		if firstQ > 0 && e.Alert.At <= firstQ {
			degraded[e.Alert.Iter] = true
		}
		if e.Alert.At <= lastQ && e.Alert.Iter > lastQIter {
			lastQIter = e.Alert.Iter
		}
	}
	row.IterationsDegraded = len(degraded)
	for _, e := range sys.Events {
		if e.Alert.Iter >= lastQIter+2 && e.Alert.Deviation < 0 {
			row.PostQuarantineDeficits++
		}
	}
	return row
}

// Remediation runs both scenarios.
func Remediation(cfg RemediationConfig) (*RemediationResult, error) {
	cfg.setDefaults()
	base := core.Scenario{
		Leaves: cfg.Leaves, Spines: cfg.Spines,
		BytesPerRank: cfg.BytesPerRank, Seed: cfg.Seed,
	}
	ref := core.LeafSpineLink{LeafOrd: cfg.Leaves / 2, SpineOrd: 1}

	// Calibrate the clean iteration duration (sizes the flap cycle).
	cal := base
	cal.Iterations = 2
	_, _, calEnd, err := remediationRun(cal, cfg.Remediate, nil, nil)
	if err != nil {
		return nil, err
	}
	iterDur := sim.Duration(calEnd[2] - calEnd[1])
	if iterDur <= 0 {
		return nil, fmt.Errorf("experiments: iteration calibration failed")
	}
	res := &RemediationResult{Config: cfg, IterDur: iterDur}

	// Persistent fault: quarantined once, probes keep failing, no
	// re-admission.
	persist := base
	persist.Iterations = cfg.PersistIters
	var onsetAt sim.Time
	rt, sys, _, err := remediationRun(persist, cfg.Remediate, nil,
		func(rt *core.Runtime, now sim.Time, iter uint32) {
			if int(iter) == cfg.Onset {
				onsetAt = now
				rt.InjectSilentDrop(ref, cfg.DropRate)
			}
		})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, summarize(fmt.Sprintf("persistent %s", pct(cfg.DropRate)), rt, sys, onsetAt))

	// Flapping link: degraded half the time, cycle sized in iteration
	// units so down phases span whole windows.
	flapCfg := cfg.Remediate
	if flapCfg.Suppress == 0 {
		flapCfg.Suppress = 1500
	}
	flap := base
	flap.Iterations = cfg.FlapIters
	rt, sys, _, err = remediationRun(flap, flapCfg, func(rt *core.Runtime) {
		rt.InjectLossyFlap(ref, 6*iterDur, 3*iterDur, sim.Duration(cfg.Onset)*iterDur, cfg.FlapLoss)
	}, nil)
	if err != nil {
		return nil, err
	}
	flapRow := summarize(fmt.Sprintf("flapping %s duty 0.50", pct(cfg.FlapLoss)), rt, sys,
		sim.Time(sim.Duration(cfg.Onset)*iterDur))
	res.Rows = append(res.Rows, flapRow)
	return res, nil
}

// String renders the comparison plus both timelines.
func (r *RemediationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Closed-loop remediation — %dx%d fat tree, %d MiB per rank, iteration %v\n",
		r.Config.Leaves, r.Config.Spines, r.Config.BytesPerRank>>20, r.IterDur)
	fmt.Fprintf(&b, "%-22s %14s %9s %6s %7s %9s %6s %6s\n",
		"fault", "t-quarantine", "degraded", "quar", "readmit", "suppress", "churn", "quiet")
	for _, row := range r.Rows {
		quiet := "yes"
		if row.PostQuarantineDeficits > 0 {
			quiet = fmt.Sprintf("%d deficits", row.PostQuarantineDeficits)
		}
		fmt.Fprintf(&b, "%-22s %14v %9s %6d %7d %9d %6d %6s\n",
			row.Name, row.TimeToQuarantine,
			fmt.Sprintf("%d iter", row.IterationsDegraded),
			row.Quarantines, row.Readmissions, row.Suppressed, row.FIBChurn, quiet)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "timeline (%s):\n", row.Name)
		for _, a := range row.Timeline {
			fmt.Fprintf(&b, "  %v\n", a)
		}
	}
	return b.String()
}

// CSV renders plottable rows.
func (r *RemediationResult) CSV() string {
	var b strings.Builder
	b.WriteString("fault,time_to_quarantine_us,iterations_degraded,quarantines,readmissions,suppressed,fib_churn,post_quarantine_deficits\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.3f,%d,%d,%d,%d,%d,%d\n",
			row.Name, float64(row.TimeToQuarantine)/float64(sim.Microsecond),
			row.IterationsDegraded, row.Quarantines, row.Readmissions,
			row.Suppressed, row.FIBChurn, row.PostQuarantineDeficits)
	}
	return b.String()
}
