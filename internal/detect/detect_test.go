package detect

import (
	"math"
	"testing"

	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// stubPred is a fixed prediction table.
type stubPred struct {
	ports [][]float64
	ready []bool
}

func (s *stubPred) Name() string                  { return "stub" }
func (s *stubPred) Ready(lo int) bool             { return s.ready[lo] }
func (s *stubPred) PortLoad(lo int) []float64     { return s.ports[lo] }
func (s *stubPred) SenderLoad(lo int) [][]float64 { return nil }

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func window(lo int, iter uint32, ports []int64) *telemetry.Window {
	return &telemetry.Window{LeafOrdinal: lo, Iter: iter, PortBytes: ports, ClosedAt: 1000}
}

func TestDetectorFlagsDeficitAndSurplus(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6, 1e6, 1e6, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01})

	var seen []Alert
	d.OnAlert = func(a Alert) { seen = append(seen, a) }

	// Port 1 down 2%, port 3 up 5%, others within threshold.
	alerts := d.Check(window(0, 7, []int64{1_000_000, 980_000, 1_005_000, 1_050_000}))
	if len(alerts) != 2 || len(seen) != 2 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].Uplink != 1 || math.Abs(alerts[0].Deviation+0.02) > 1e-9 {
		t.Fatalf("first alert: %+v", alerts[0])
	}
	if alerts[1].Uplink != 3 || math.Abs(alerts[1].Deviation-0.05) > 1e-9 {
		t.Fatalf("second alert: %+v", alerts[1])
	}
	if alerts[0].Iter != 7 || alerts[0].At != 1000 {
		t.Fatalf("alert metadata: %+v", alerts[0])
	}
	st := d.Stats()
	if st.WindowsChecked != 1 || st.Alerts != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDetectorCleanWindowSilent(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6, 1e6, 1e6, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01})
	// All within 1%.
	if alerts := d.Check(window(0, 1, []int64{995_000, 1_004_000, 1_000_000, 999_999})); alerts != nil {
		t.Fatalf("false alerts: %v", alerts)
	}
}

func TestDetectorExactThresholdNotCrossed(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01})
	// Exactly 1% is NOT beyond the threshold.
	if alerts := d.Check(window(0, 1, []int64{990_000})); alerts != nil {
		t.Fatalf("boundary crossed: %v", alerts)
	}
	if alerts := d.Check(window(0, 2, []int64{989_999})); len(alerts) != 1 {
		t.Fatal("just beyond boundary not flagged")
	}
}

func TestDetectorNotReadySkips(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{nil}, ready: []bool{false}}
	d := New(topo, pred, Config{})
	if alerts := d.Check(window(0, 1, []int64{123})); alerts != nil {
		t.Fatal("unready predictor produced alerts")
	}
	if d.Stats().WindowsSkipped != 1 {
		t.Fatal("skip not counted")
	}
}

func TestDetectorGhostTraffic(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{0, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01})
	// Port 0 expects nothing but carries a megabyte: +Inf deviation.
	alerts := d.Check(window(0, 1, []int64{1_000_000, 1_000_000}))
	if len(alerts) != 1 || !math.IsInf(alerts[0].Deviation, 1) {
		t.Fatalf("ghost traffic: %v", alerts)
	}
	// Port 0 expecting nothing and carrying nothing is fine.
	if alerts := d.Check(window(0, 2, []int64{0, 1_000_000})); alerts != nil {
		t.Fatalf("empty idle port alerted: %v", alerts)
	}
}

func TestScoreIsMaxAbsDeviation(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6, 1e6, 1e6, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{})
	score, ok := d.Score(window(0, 1, []int64{970_000, 1_010_000, 1_000_000, 1_000_000}))
	if !ok || math.Abs(score-0.03) > 1e-9 {
		t.Fatalf("score = %v ok=%v, want 0.03", score, ok)
	}
	pred.ready[0] = false
	if _, ok := d.Score(window(0, 1, []int64{1})); ok {
		t.Fatal("score ok despite unready predictor")
	}
}

func TestDeviationHelper(t *testing.T) {
	if dev, ok := Deviation(98, 100, 1); !ok || math.Abs(dev+0.02) > 1e-12 {
		t.Fatalf("basic deviation wrong: %v %v", dev, ok)
	}
	if _, ok := Deviation(0.5, 0.2, 10); ok {
		t.Fatal("sub-floor prediction should be not-ok for tiny observed")
	}
	if dev, ok := Deviation(100, 0.2, 10); !ok || !math.IsInf(dev, 1) {
		t.Fatal("ghost traffic should be +Inf")
	}
}

func TestSubscribeFanOutAndOrder(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6, 1e6, 1e6, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01})

	var order []string
	d.OnAlert = func(a Alert) { order = append(order, "legacy") }
	d.Subscribe(func(a Alert) { order = append(order, "first") })
	var uplinks []int
	d.Subscribe(func(a Alert) {
		order = append(order, "second")
		uplinks = append(uplinks, a.Uplink)
	})

	// Two deviating ports: each alert fans out to OnAlert then the
	// subscribers in subscription order.
	d.Check(window(0, 1, []int64{900_000, 1_000_000, 1_100_000, 1_000_000}))
	want := []string{"legacy", "first", "second", "legacy", "first", "second"}
	if len(order) != len(want) {
		t.Fatalf("fan-out calls: %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fan-out order: %v", order)
		}
	}
	if len(uplinks) != 2 || uplinks[0] != 0 || uplinks[1] != 2 {
		t.Fatalf("uplink order within window: %v", uplinks)
	}
}

func TestSubscribeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil subscriber")
		}
	}()
	New(testTopo(t), &stubPred{ports: [][]float64{nil}, ready: []bool{true}}, Config{}).Subscribe(nil)
}

func TestAlertString(t *testing.T) {
	a := Alert{LeafOrdinal: 3, Uplink: 5, Iter: 9, Predicted: 1000, Observed: 900, Deviation: -0.1}
	if s := a.String(); s == "" {
		t.Fatal("empty alert string")
	}
}

func ceWindow(ports []int64, ce int64) *telemetry.Window {
	w := window(0, 1, ports)
	w.CEBytes = ce
	return w
}

func TestCEDiscountScalesDeviation(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6, 1e6, 1e6, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01, CEDiscount: 2})

	// Quarter of the bytes marked: scale = 1 − 2·0.25 = 0.5. A 4%
	// deficit survives at 2% effective; a 1.5% deficit is absorbed.
	ports := []int64{960_000, 1_000_000, 1_000_000, 1_000_000}
	alerts := d.Check(ceWindow(ports, sum64(ports)/4))
	if len(alerts) != 1 || math.Abs(alerts[0].Deviation+0.02) > 1e-9 {
		t.Fatalf("quarter-marked 4%% deficit: %+v", alerts)
	}
	mild := []int64{985_000, 1_000_000, 1_000_000, 1_000_000}
	if alerts := d.Check(ceWindow(mild, sum64(mild)/4)); alerts != nil {
		t.Fatalf("quarter-marked 1.5%% deficit should be absorbed: %v", alerts)
	}

	// Half marked at strength 2: fully congestion-attributed, Check is
	// silent and Score reports a clean zero for ANY deviation.
	heavy := []int64{500_000, 1_000_000, 1_000_000, 1_000_000}
	if alerts := d.Check(ceWindow(heavy, sum64(heavy)/2)); alerts != nil {
		t.Fatalf("fully attributed window alerted: %v", alerts)
	}
	if score, ok := d.Score(ceWindow(heavy, sum64(heavy)/2)); !ok || score != 0 {
		t.Fatalf("fully attributed score = %v ok=%v, want 0", score, ok)
	}

	// Score scales the max |deviation| by the same multiplier.
	if score, ok := d.Score(ceWindow(ports, sum64(ports)/4)); !ok || math.Abs(score-0.02) > 1e-9 {
		t.Fatalf("quarter-marked score = %v ok=%v, want 0.02", score, ok)
	}
}

func TestCEDiscountGhostPortNoNaN(t *testing.T) {
	// A ghost port (+Inf deviation) inside a fully marked window: the
	// zero scale must short-circuit, not produce 0·Inf = NaN — NaN
	// fails every threshold compare and would fire a bogus alert.
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{0, 1e6}}, ready: []bool{true}}
	d := New(topo, pred, Config{Threshold: 0.01, CEDiscount: 2})
	w := ceWindow([]int64{1_000_000, 1_000_000}, 2_000_000)
	if alerts := d.Check(w); alerts != nil {
		t.Fatalf("NaN leak: %v", alerts)
	}
	if score, ok := d.Score(w); !ok || score != 0 {
		t.Fatalf("score = %v ok=%v", score, ok)
	}
}

func TestCEDiscountDisabledAndUnmarked(t *testing.T) {
	topo := testTopo(t)
	pred := &stubPred{ports: [][]float64{{1e6}}, ready: []bool{true}}
	// Discount off: marks are ignored entirely.
	d := New(topo, pred, Config{Threshold: 0.01})
	if alerts := d.Check(ceWindow([]int64{960_000}, 960_000)); len(alerts) != 1 {
		t.Fatal("zero discount must not suppress")
	}
	// Discount on, no marks: full deviation passes through.
	d2 := New(topo, pred, Config{Threshold: 0.01, CEDiscount: 2})
	alerts := d2.Check(ceWindow([]int64{960_000}, 0))
	if len(alerts) != 1 || math.Abs(alerts[0].Deviation+0.04) > 1e-9 {
		t.Fatalf("unmarked window scaled: %+v", alerts)
	}
	// Straggler marks can push CEBytes past Total; frac clamps at 1 and
	// the window is attributed, not inverted into a negative scale.
	if alerts := d2.Check(ceWindow([]int64{960_000}, 2_000_000)); alerts != nil {
		t.Fatalf("over-full CE fraction alerted: %v", alerts)
	}
}

func sum64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
