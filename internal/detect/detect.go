// Package detect implements §5.3's fault identification: at the close
// of every iteration window, each leaf switch compares the observed
// per-port volume with the load model's prediction and declares a
// fault when the relative discrepancy exceeds a threshold (1% in the
// paper).
package detect

import (
	"fmt"
	"math"

	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// Config tunes the detector.
type Config struct {
	// Threshold is the relative deviation that declares a fault.
	// Defaults to 0.01 (the paper's 1%).
	Threshold float64
	// MinPredicted ignores ports whose prediction is below this many
	// bytes — a port no model expects traffic on cannot produce a
	// meaningful relative deviation. Observed traffic above
	// MinPredicted on such a port still alerts (ghost traffic).
	// Defaults to 4160 (one default-MTU packet).
	MinPredicted float64
	// AggregateSymmetry switches the comparison basis from the job's
	// own per-port bytes (against the load model) to the window's
	// aggregate all-jobs counts (Window.AggPortBytes) against the
	// model's per-port shape scaled to the aggregate total. When
	// several jobs share a leaf's uplinks, adaptive spraying balances
	// only the union of their packets — each job's own shares comb
	// unpredictably across ports — so the shared monitoring plane (§7
	// "Parallel Jobs") detects on the aggregate, where the paper's
	// per-port symmetry still holds. The load model keeps supplying
	// the shape (routing-aware, e.g. a remotely quarantined trunk
	// zeroing an ingress port here), readiness, and the localization
	// references. A uniform all-ports degradation is invisible to this
	// basis; it is not a localizable single-link fault.
	AggregateSymmetry bool
	// CEDiscount attributes deviations in congestion-marked windows to
	// the congestion the fabric itself vouches for: each port deviation
	// is multiplied by max(0, 1 − CEDiscount·ceFrac), where ceFrac is
	// the fraction of the window's tagged bytes that carried the ECN
	// congestion-experienced codepoint. A window whose bytes were
	// (almost) all marked had its volume shaped by queue build-up and
	// PFC pauses, not loss — its deviation is explained away entirely —
	// while silent faults drop without marking (ceFrac ≈ 0) and keep
	// their full deviation. With the default strength 2, windows with
	// at least half their bytes marked are fully suppressed. Zero
	// disables (the default).
	CEDiscount float64
}

func (c *Config) setDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.MinPredicted == 0 {
		c.MinPredicted = 4160
	}
}

// Alert is one port's deviation beyond the threshold.
type Alert struct {
	// Leaf and LeafOrdinal identify the reporting switch (for
	// spine-level monitors — the §7 three-level extension — they hold
	// the spine's id and ordinal, with Level set to topology.Spine).
	Leaf        topology.SwitchID
	LeafOrdinal int
	// Level is the reporting switch's layer (zero value: leaf).
	Level topology.SwitchKind
	// Uplink is the deviating ingress port (uplink index).
	Uplink int
	// Job and Iter identify the measured collective iteration.
	Job  uint16
	Iter uint32
	// Predicted and Observed are wire-byte volumes for the window.
	Predicted, Observed float64
	// Deviation is the signed relative deviation
	// (Observed−Predicted)/Predicted; ±Inf when Predicted ≈ 0.
	Deviation float64
	// At is the window close time.
	At sim.Time
}

// String formats the alert for operator logs.
func (a Alert) String() string {
	return fmt.Sprintf("%s %d uplink %d iter %d: observed %.0fB vs predicted %.0fB (%+.2f%%)",
		a.Level, a.LeafOrdinal, a.Uplink, a.Iter, a.Observed, a.Predicted, 100*a.Deviation)
}

// Stats counts detector activity.
type Stats struct {
	// WindowsChecked counts windows with an available prediction.
	WindowsChecked uint64
	// WindowsSkipped counts windows dropped because the predictor was
	// not ready (learned-model warm-up).
	WindowsSkipped uint64
	// Alerts counts threshold crossings.
	Alerts uint64
}

// Detector checks telemetry windows against a load model. One
// Detector serves all leaves (state is per call; the comparison is
// in-switch and coordination-free, exactly as each leaf would run it).
type Detector struct {
	cfg    Config
	pred   predict.Predictor
	topo   *topology.Topology
	stats  Stats
	faults *predict.FaultSet

	// OnAlert, when set, receives every alert as it is raised. It runs
	// before any Subscribe callbacks.
	OnAlert func(a Alert)

	subs []func(a Alert)
}

// New builds a detector over a prediction model.
func New(topo *topology.Topology, pred predict.Predictor, cfg Config) *Detector {
	cfg.setDefaults()
	return &Detector{cfg: cfg, pred: pred, topo: topo}
}

// Threshold returns the active detection threshold.
func (d *Detector) Threshold() float64 { return d.cfg.Threshold }

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Predictor returns the underlying load model.
func (d *Detector) Predictor() predict.Predictor { return d.pred }

// Stats returns a snapshot of detector counters.
func (d *Detector) Stats() Stats { return d.stats }

// SetKnownFaults attaches the control plane's known-fault set: leaf
// ports whose uplink is in the set are skipped by Check and Score. A
// quarantined link legitimately carries nothing, so alerting on its
// port (ghost traffic from the window straddling the quarantine, then
// a permanent 100% deficit) would be noise, not detection.
func (d *Detector) SetKnownFaults(fs *predict.FaultSet) { d.faults = fs }

// portQuarantined reports whether a window's uplink port sits on a
// known-faulty link. Only leaf windows are mapped (spine windows — the
// §7 extension — use a different port layout).
func (d *Detector) portQuarantined(w *telemetry.Window, u int) bool {
	if d.faults == nil || d.faults.Len() == 0 || w.SwitchKind != topology.Leaf {
		return false
	}
	p := u + len(d.topo.HostsOf(w.Leaf))
	return d.faults.Has(d.topo.Switch(w.Leaf).Ports[p].Link)
}

// Subscribe registers a callback for every alert the detector raises.
// Callbacks run synchronously from Check, in subscription order, after
// OnAlert; within one window, alerts arrive in ascending uplink order.
// Subscribe must not be called from inside a callback.
func (d *Detector) Subscribe(fn func(a Alert)) {
	if fn == nil {
		panic("detect: Subscribe(nil)")
	}
	d.subs = append(d.subs, fn)
}

// portLoadFor resolves the model's expectation for one window,
// preferring the iteration-exact prediction when the model offers one
// (predict.IterPredictor — the simulation model's reference windows).
func (d *Detector) portLoadFor(w *telemetry.Window) []float64 {
	if ip, ok := d.pred.(predict.IterPredictor); ok {
		return ip.PortLoadAt(w.LeafOrdinal, w.Iter)
	}
	return d.pred.PortLoad(w.LeafOrdinal)
}

// basis resolves the observation vector and per-port expectation for
// one window: the job's own counts against the load model, or — in
// AggregateSymmetry mode — the all-jobs aggregate counts against the
// model's per-port SHAPE scaled to the aggregate total. The shape
// (rather than a flat cross-port mean) matters after remediation: a
// quarantined trunk elsewhere in the fabric legitimately zeroes some
// ingress ports here (the re-baselined model knows, a uniform mean
// does not). Quarantined ports are excluded from the scaling sums —
// they carry nothing, so including them would depress every healthy
// port's expectation.
func (d *Detector) basis(w *telemetry.Window) (obs []int64, pred []float64) {
	if d.cfg.AggregateSymmetry && len(w.AggPortBytes) == len(w.PortBytes) {
		shape := d.portLoadFor(w)
		var obsSum int64
		var shapeSum float64
		for u := range w.AggPortBytes {
			if d.portQuarantined(w, u) {
				continue
			}
			obsSum += w.AggPortBytes[u]
			shapeSum += shape[u]
		}
		pred = make([]float64, len(w.AggPortBytes))
		if shapeSum > 0 {
			scale := float64(obsSum) / shapeSum
			for u := range pred {
				pred[u] = shape[u] * scale
			}
		}
		return w.AggPortBytes, pred
	}
	return w.PortBytes, d.portLoadFor(w)
}

// ceScale returns the deviation multiplier for one window under the
// CEDiscount mitigation: max(0, 1 − CEDiscount·(CEBytes/Total)). The
// marked fraction is the share of the window the fabric certifies was
// shaped by congestion; the remainder keeps its full evidentiary
// weight. Windows without marks — every window on a fabric without
// ECN — scale by 1, keeping the detector byte-identical with the
// discount unset.
func (d *Detector) ceScale(w *telemetry.Window) float64 {
	if d.cfg.CEDiscount <= 0 || w.CEBytes == 0 {
		return 1
	}
	total := w.Total()
	if total <= 0 {
		return 1
	}
	frac := float64(w.CEBytes) / float64(total)
	if frac > 1 {
		frac = 1
	}
	if s := 1 - d.cfg.CEDiscount*frac; s > 0 {
		return s
	}
	return 0
}

// Check compares one closed window against the model and returns the
// alerts (nil if the window is clean or the model is not ready).
func (d *Detector) Check(w *telemetry.Window) []Alert {
	if !d.pred.Ready(w.LeafOrdinal) {
		d.stats.WindowsSkipped++
		return nil
	}
	d.stats.WindowsChecked++
	obsPorts, pred := d.basis(w)
	scale := d.ceScale(w)
	if scale == 0 {
		// Fully congestion-attributed window (and 0·±Inf on a ghost
		// port would be NaN, not suppression).
		return nil
	}
	var alerts []Alert
	for u, obs := range obsPorts {
		if d.portQuarantined(w, u) {
			continue
		}
		dev, ok := Deviation(float64(obs), pred[u], d.cfg.MinPredicted)
		dev *= scale
		if !ok || math.Abs(dev) <= d.cfg.Threshold {
			continue
		}
		a := Alert{
			Leaf:        w.Leaf,
			LeafOrdinal: w.LeafOrdinal,
			Level:       w.SwitchKind,
			Uplink:      u,
			Job:         w.Job,
			Iter:        w.Iter,
			Predicted:   pred[u],
			Observed:    float64(obs),
			Deviation:   dev,
			At:          w.ClosedAt,
		}
		alerts = append(alerts, a)
		d.stats.Alerts++
		if d.OnAlert != nil {
			d.OnAlert(a)
		}
		for _, fn := range d.subs {
			fn(a)
		}
	}
	return alerts
}

// Score returns the window's maximum absolute relative deviation
// across ports — the statistic the ROC analysis thresholds (Fig 5a).
// ok is false when the model is not ready for the leaf.
func (d *Detector) Score(w *telemetry.Window) (score float64, ok bool) {
	if !d.pred.Ready(w.LeafOrdinal) {
		return 0, false
	}
	obsPorts, pred := d.basis(w)
	scale := d.ceScale(w)
	if scale == 0 {
		return 0, true
	}
	for u, obs := range obsPorts {
		if d.portQuarantined(w, u) {
			continue
		}
		dev, valid := Deviation(float64(obs), pred[u], d.cfg.MinPredicted)
		if valid && math.Abs(dev)*scale > score {
			score = math.Abs(dev) * scale
		}
	}
	return score, true
}

// Deviation computes the signed relative deviation of observed from
// predicted. When predicted is below minPredicted the relative measure
// is meaningless: the port is unexpectedly loaded only if observed
// itself exceeds minPredicted (deviation +Inf); otherwise ok is false.
func Deviation(observed, predicted, minPredicted float64) (dev float64, ok bool) {
	if predicted < minPredicted {
		if observed > minPredicted {
			return math.Inf(1), true
		}
		return 0, false
	}
	return (observed - predicted) / predicted, true
}
