// Package fault implements the link-fault processes FlowPulse must
// detect (§6 "To inject new faults, we configure a single leaf-spine
// link to drop packets at a set rate") and the pre-existing fault
// population (§1/§6: disconnected links awaiting a maintenance
// window).
//
// Models are per-traversal packet-loss processes attached to one
// direction of a link by the fabric. They are deliberately silent: the
// fabric's counters never see a model's drops (that is what makes the
// fault "silent"), only FlowPulse's volume deviation can.
package fault

import (
	"fmt"
	"math"

	"flowpulse/internal/sim"
)

// Verdict is a fault model's decision for one packet traversal.
type Verdict uint8

const (
	// Deliver lets the packet through unharmed.
	Deliver Verdict = iota
	// Drop silently discards the packet.
	Drop
)

// Model is a packet-loss process on one direction of one link. Apply
// is consulted once per packet traversal. Implementations must be
// deterministic given their RNG stream.
type Model interface {
	// Apply decides the fate of a packet of the given size crossing
	// the link at the given time.
	Apply(now sim.Time, sizeBytes int) Verdict
	// String describes the model for logs and experiment records.
	String() string
}

// None is the absence of a fault; it delivers everything.
type None struct{}

// Apply implements Model.
func (None) Apply(sim.Time, int) Verdict { return Deliver }

func (None) String() string { return "none" }

// BernoulliDrop drops each packet independently with a fixed
// probability — the paper's primary injected fault ("drop packets at a
// set rate").
type BernoulliDrop struct {
	Rate float64
	RNG  *sim.RNG
}

// NewBernoulliDrop returns a drop process with the given rate, drawing
// from the given stream.
func NewBernoulliDrop(rate float64, rng *sim.RNG) *BernoulliDrop {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("fault: drop rate %v out of [0,1]", rate))
	}
	return &BernoulliDrop{Rate: rate, RNG: rng}
}

// Apply implements Model.
func (b *BernoulliDrop) Apply(sim.Time, int) Verdict {
	if b.RNG.Bernoulli(b.Rate) {
		return Drop
	}
	return Deliver
}

func (b *BernoulliDrop) String() string { return fmt.Sprintf("bernoulli(%.4g)", b.Rate) }

// BlackHole drops every packet — the transient routing black hole of a
// corrupted FIB entry (§1), as seen from the affected path.
type BlackHole struct{}

// Apply implements Model.
func (BlackHole) Apply(sim.Time, int) Verdict { return Drop }

func (BlackHole) String() string { return "blackhole" }

// Window activates an inner model only inside [Start, End) — a
// transient fault such as a link flap (§5.2 Learning, Fig 3).
type Window struct {
	Start, End sim.Time
	Inner      Model
}

// Apply implements Model.
func (w *Window) Apply(now sim.Time, size int) Verdict {
	if now >= w.Start && now < w.End {
		return w.Inner.Apply(now, size)
	}
	return Deliver
}

func (w *Window) String() string {
	return fmt.Sprintf("window[%v,%v) %s", w.Start, w.End, w.Inner)
}

// BitError drops a packet if any of its bits is corrupted beyond FEC,
// modeling an elevated bit-error-rate transceiver (§7 "Fault Types":
// corrupted packets are dropped in switches when the error cannot be
// corrected). The per-packet drop probability is 1-(1-BER)^(8*size),
// so large packets — exactly the large flows the paper notes are
// disproportionately affected [44] — are hit harder than small probes.
type BitError struct {
	BER float64
	RNG *sim.RNG
}

// NewBitError returns a bit-error process with the given bit error
// rate.
func NewBitError(ber float64, rng *sim.RNG) *BitError {
	if ber < 0 || ber > 1 {
		panic(fmt.Sprintf("fault: BER %v out of [0,1]", ber))
	}
	return &BitError{BER: ber, RNG: rng}
}

// DropProbability returns the packet-loss probability for a packet of
// the given size under this BER.
func (b *BitError) DropProbability(sizeBytes int) float64 {
	bits := float64(8 * sizeBytes)
	return 1 - math.Pow(1-b.BER, bits)
}

// Apply implements Model.
func (b *BitError) Apply(_ sim.Time, sizeBytes int) Verdict {
	if b.RNG.Bernoulli(b.DropProbability(sizeBytes)) {
		return Drop
	}
	return Deliver
}

func (b *BitError) String() string { return fmt.Sprintf("biterror(%.3g)", b.BER) }

// GilbertElliott is a two-state Markov loss process modeling bursty
// gray faults: a mostly-clean Good state and a lossy Bad state, with
// per-packet state transitions.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-packet transition
	// probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are per-packet loss probabilities in each
	// state.
	LossGood, LossBad float64
	RNG               *sim.RNG

	bad bool
}

// NewGilbertElliott returns a bursty loss process starting in the Good
// state.
func NewGilbertElliott(pGB, pBG, lossGood, lossBad float64, rng *sim.RNG) *GilbertElliott {
	for _, p := range []float64{pGB, pBG, lossGood, lossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("fault: Gilbert-Elliott probability %v out of [0,1]", p))
		}
	}
	return &GilbertElliott{PGoodToBad: pGB, PBadToGood: pBG, LossGood: lossGood, LossBad: lossBad, RNG: rng}
}

// SteadyStateLoss returns the long-run average loss rate of the
// process.
func (g *GilbertElliott) SteadyStateLoss() float64 {
	den := g.PGoodToBad + g.PBadToGood
	if den == 0 {
		return g.LossGood
	}
	pBad := g.PGoodToBad / den
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// Apply implements Model.
func (g *GilbertElliott) Apply(sim.Time, int) Verdict {
	if g.bad {
		if g.RNG.Bernoulli(g.PBadToGood) {
			g.bad = false
		}
	} else {
		if g.RNG.Bernoulli(g.PGoodToBad) {
			g.bad = true
		}
	}
	loss := g.LossGood
	if g.bad {
		loss = g.LossBad
	}
	if g.RNG.Bernoulli(loss) {
		return Drop
	}
	return Deliver
}

func (g *GilbertElliott) String() string {
	return fmt.Sprintf("gilbert-elliott(ss=%.3g)", g.SteadyStateLoss())
}

// LinkFlap is a periodically flapping link: a square wave that drops
// every packet while the link is down and delivers while it is up. It
// is the adversary of naive closed-loop remediation ("The Ghost in the
// Datacenter"): each down phase looks like a hard fault, each up phase
// looks like a clean link, and a controller without damping would
// quarantine and re-admit it forever.
type LinkFlap struct {
	// Period is the full flap cycle length.
	Period sim.Duration
	// DownFor is the leading portion of each cycle spent down
	// (drop-everything). The duty cycle is DownFor/Period.
	DownFor sim.Duration
	// Phase shifts the cycle start; at now == Phase a cycle begins
	// (down first).
	Phase sim.Duration
	// Inner, when set, decides packet fates during the down portion
	// instead of dropping everything — an intermittently *degraded*
	// link (flaky optics) rather than an intermittently dead one.
	Inner Model
}

// NewLinkFlap returns a flapping process with the given cycle.
func NewLinkFlap(period, downFor, phase sim.Duration) *LinkFlap {
	if period <= 0 || downFor < 0 || downFor > period {
		panic(fmt.Sprintf("fault: flap cycle downFor %v out of (0, period %v]", downFor, period))
	}
	return &LinkFlap{Period: period, DownFor: downFor, Phase: phase}
}

// Down reports whether the link is in the drop phase at the given time.
// Before the first cycle starts the link is up.
func (f *LinkFlap) Down(now sim.Time) bool {
	since := sim.Duration(now) - f.Phase
	if since < 0 {
		return false
	}
	return since%f.Period < f.DownFor
}

// DutyCycle returns the long-run fraction of time spent down.
func (f *LinkFlap) DutyCycle() float64 { return float64(f.DownFor) / float64(f.Period) }

// Apply implements Model.
func (f *LinkFlap) Apply(now sim.Time, size int) Verdict {
	if !f.Down(now) {
		return Deliver
	}
	if f.Inner != nil {
		return f.Inner.Apply(now, size)
	}
	return Drop
}

func (f *LinkFlap) String() string {
	return fmt.Sprintf("linkflap(period=%v duty=%.2f)", f.Period, f.DutyCycle())
}

// Chain applies models in order and drops if any of them drops,
// composing independent fault processes on the same link direction.
type Chain []Model

// Apply implements Model.
func (c Chain) Apply(now sim.Time, size int) Verdict {
	for _, m := range c {
		if m.Apply(now, size) == Drop {
			return Drop
		}
	}
	return Deliver
}

func (c Chain) String() string {
	s := "chain["
	for i, m := range c {
		if i > 0 {
			s += ", "
		}
		s += m.String()
	}
	return s + "]"
}
