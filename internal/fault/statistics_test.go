package fault

import (
	"math"
	"testing"

	"flowpulse/internal/sim"
)

// Statistical regression tests for the loss processes the fuzzer's
// oracles lean on. The empirical-rate tests elsewhere in this package
// check the mean; these check the *shape* — independence over time for
// Bernoulli (chi-square on block counts and on the inter-drop gap
// distribution) and the size-dependence law for BitError (joint
// chi-square across packet sizes). All draws come from fixed seeds, so
// the tests are deterministic; the bounds are the χ² 0.001/0.999
// quantiles, far outside what a correct implementation lands on.

// chiSquareBinomialBlocks partitions n Bernoulli trials into blocks
// and returns Σ (observed−np)²/(np(1−p)) over the blocks — χ² with
// one degree of freedom per block for an independent process.
func chiSquareBinomialBlocks(m Model, p float64, blocks, perBlock int) float64 {
	var chi2 float64
	for b := 0; b < blocks; b++ {
		drops := 0
		for i := 0; i < perBlock; i++ {
			if m.Apply(0, 4096) == Drop {
				drops++
			}
		}
		exp := float64(perBlock) * p
		dev := float64(drops) - exp
		chi2 += dev * dev / (exp * (1 - p))
	}
	return chi2
}

func TestBernoulliDropChiSquareBlocks(t *testing.T) {
	// 20 blocks of 10k trials at each rate. df=20: χ²∈[5.92, 45.31]
	// covers 99.8% two-sided; outside means the process drifted (rate
	// wrong) or is over-regular (drops not independent).
	const lo, hi = 5.921, 45.315
	for _, rate := range []float64{0.02, 0.05, 0.2, 0.5} {
		m := NewBernoulliDrop(rate, sim.NewRNG(11, "chi/bernoulli"))
		chi2 := chiSquareBinomialBlocks(m, rate, 20, 10000)
		if chi2 < lo || chi2 > hi {
			t.Errorf("rate %v: block χ² = %.2f outside [%v, %v]", rate, chi2, lo, hi)
		}
	}
}

func TestBernoulliInterDropGapsGeometric(t *testing.T) {
	// Under independence, the gap between consecutive drops is
	// geometric: P(gap=k) = p(1−p)^k. Chi-square the observed gap
	// histogram (10 bins + tail) against that pmf. A process that
	// drops at the right rate but in a correlated pattern (bursts,
	// periodicity) fails here while passing every mean-rate test.
	const p = 0.05
	m := NewBernoulliDrop(p, sim.NewRNG(12, "chi/gaps"))
	const n = 400000
	const bins = 10
	counts := make([]int, bins+1) // counts[bins] = tail
	gap, gaps := 0, 0
	for i := 0; i < n; i++ {
		if m.Apply(0, 4096) == Drop {
			if gap < bins {
				counts[gap]++
			} else {
				counts[bins]++
			}
			gaps++
			gap = 0
		} else {
			gap++
		}
	}
	var chi2 float64
	tailP := 1.0
	for k := 0; k < bins; k++ {
		pk := p * math.Pow(1-p, float64(k))
		tailP -= pk
		exp := float64(gaps) * pk
		dev := float64(counts[k]) - exp
		chi2 += dev * dev / exp
	}
	expTail := float64(gaps) * tailP
	devTail := float64(counts[bins]) - expTail
	chi2 += devTail * devTail / expTail
	// df = 10 (11 cells, total constrained): χ² ∈ [1.48, 29.59].
	if chi2 < 1.479 || chi2 > 29.588 {
		t.Fatalf("gap distribution χ² = %.2f outside [1.48, 29.59] over %d gaps", chi2, gaps)
	}
}

func TestBitErrorSizeLawChiSquare(t *testing.T) {
	// The model's whole point is that loss compounds per bit:
	// p(size) = 1−(1−BER)^(8·size). Check the empirical rate at each
	// size against that law jointly — one χ² cell per size, df=4:
	// χ² ∈ [0.091, 18.47].
	b := NewBitError(2e-6, sim.NewRNG(13, "chi/biterror"))
	sizes := []int{256, 1024, 4096, 9000}
	const n = 40000
	var chi2 float64
	for _, size := range sizes {
		drops := 0
		for i := 0; i < n; i++ {
			if b.Apply(0, size) == Drop {
				drops++
			}
		}
		p := b.DropProbability(size)
		exp := float64(n) * p
		dev := float64(drops) - exp
		chi2 += dev * dev / (exp * (1 - p))
	}
	if chi2 < 0.0908 || chi2 > 18.467 {
		t.Fatalf("size-law χ² = %.2f outside [0.091, 18.47]", chi2)
	}
}

func TestBitErrorToleranceBounds(t *testing.T) {
	// Per-size tolerance bounds: each empirical rate within 5σ of the
	// analytic drop probability, and strictly increasing in size.
	b := NewBitError(1e-6, sim.NewRNG(14, "tol/biterror"))
	sizes := []int{64, 512, 4096, 16384}
	const n = 60000
	prev := -1.0
	for _, size := range sizes {
		drops := 0
		for i := 0; i < n; i++ {
			if b.Apply(0, size) == Drop {
				drops++
			}
		}
		got := float64(drops) / n
		want := b.DropProbability(size)
		tol := 5 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol {
			t.Errorf("size %d: empirical %.5f vs analytic %.5f (tol %.5f)", size, got, want, tol)
		}
		if want <= prev {
			t.Errorf("size %d: drop probability %.6f not increasing", size, want)
		}
		prev = want
	}
}
