package fault

import (
	"math"
	"testing"
	"testing/quick"

	"flowpulse/internal/sim"
)

func TestNoneDeliversEverything(t *testing.T) {
	var m None
	for i := 0; i < 100; i++ {
		if m.Apply(sim.Time(i), 4096) != Deliver {
			t.Fatal("None dropped a packet")
		}
	}
}

func TestBlackHoleDropsEverything(t *testing.T) {
	var m BlackHole
	for i := 0; i < 100; i++ {
		if m.Apply(sim.Time(i), 64) != Drop {
			t.Fatal("BlackHole delivered a packet")
		}
	}
}

func TestBernoulliDropRate(t *testing.T) {
	for _, rate := range []float64{0.008, 0.015, 0.05, 0.5} {
		m := NewBernoulliDrop(rate, sim.NewRNG(3, "drop"))
		const n = 100000
		drops := 0
		for i := 0; i < n; i++ {
			if m.Apply(0, 4096) == Drop {
				drops++
			}
		}
		got := float64(drops) / n
		// 5-sigma binomial bound.
		tol := 5 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol {
			t.Errorf("rate %v: empirical %v (tol %v)", rate, got, tol)
		}
	}
}

func TestBernoulliDropValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rate > 1")
		}
	}()
	NewBernoulliDrop(1.5, sim.NewRNG(1, "x"))
}

func TestWindowActivation(t *testing.T) {
	w := &Window{Start: 100, End: 200, Inner: BlackHole{}}
	cases := []struct {
		at   sim.Time
		want Verdict
	}{
		{0, Deliver}, {99, Deliver}, {100, Drop}, {150, Drop}, {199, Drop}, {200, Deliver}, {500, Deliver},
	}
	for _, c := range cases {
		if got := w.Apply(c.at, 100); got != c.want {
			t.Errorf("Window at %v: got %v, want %v", c.at, got, c.want)
		}
	}
}

func TestBitErrorDropProbability(t *testing.T) {
	b := NewBitError(1e-6, sim.NewRNG(5, "ber"))
	// 4096-byte packet: 32768 bits; p = 1-(1-1e-6)^32768 ≈ 0.0322.
	p := b.DropProbability(4096)
	if math.Abs(p-0.03222) > 0.001 {
		t.Fatalf("DropProbability(4096) = %v", p)
	}
	// Larger packets must be more likely to drop (the paper's point
	// about probes vs large flows).
	if b.DropProbability(64) >= b.DropProbability(4096) {
		t.Fatal("small packet drop probability not lower than large packet's")
	}
}

func TestBitErrorEmpirical(t *testing.T) {
	b := NewBitError(1e-6, sim.NewRNG(6, "ber2"))
	const n = 50000
	drops := 0
	for i := 0; i < n; i++ {
		if b.Apply(0, 4096) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	want := b.DropProbability(4096)
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
		t.Fatalf("empirical %v, want %v", got, want)
	}
}

func TestGilbertElliottSteadyState(t *testing.T) {
	g := NewGilbertElliott(0.01, 0.1, 0.001, 0.3, sim.NewRNG(7, "ge"))
	want := g.SteadyStateLoss()
	const n = 500000
	drops := 0
	for i := 0; i < n; i++ {
		if g.Apply(0, 4096) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("steady-state loss: empirical %v, analytic %v", got, want)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With sticky states, losses must cluster: the conditional loss
	// probability after a loss should exceed the marginal loss rate.
	g := NewGilbertElliott(0.005, 0.05, 0.0, 0.5, sim.NewRNG(8, "ge2"))
	const n = 300000
	losses := make([]bool, n)
	total := 0
	for i := range losses {
		losses[i] = g.Apply(0, 4096) == Drop
		if losses[i] {
			total++
		}
	}
	afterLoss, afterLossDrop := 0, 0
	for i := 1; i < n; i++ {
		if losses[i-1] {
			afterLoss++
			if losses[i] {
				afterLossDrop++
			}
		}
	}
	marginal := float64(total) / n
	conditional := float64(afterLossDrop) / float64(afterLoss)
	if conditional < 2*marginal {
		t.Fatalf("losses not bursty: conditional %v vs marginal %v", conditional, marginal)
	}
}

func TestChainDropsIfAnyDrops(t *testing.T) {
	c := Chain{None{}, &Window{Start: 10, End: 20, Inner: BlackHole{}}, None{}}
	if c.Apply(5, 100) != Deliver {
		t.Fatal("chain dropped outside window")
	}
	if c.Apply(15, 100) != Drop {
		t.Fatal("chain delivered inside blackhole window")
	}
}

// Property: a Bernoulli model with rate 0 never drops and rate 1
// always drops, regardless of packet size or time.
func TestBernoulliEdgesProperty(t *testing.T) {
	zero := NewBernoulliDrop(0, sim.NewRNG(9, "z"))
	one := NewBernoulliDrop(1, sim.NewRNG(9, "o"))
	f := func(at int64, size uint16) bool {
		tm := sim.Time(at & 0x7fffffffffffffff)
		return zero.Apply(tm, int(size)) == Deliver && one.Apply(tm, int(size)) == Drop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModelStrings(t *testing.T) {
	models := []Model{
		None{}, BlackHole{},
		NewBernoulliDrop(0.015, sim.NewRNG(1, "a")),
		&Window{Start: 0, End: 10, Inner: BlackHole{}},
		NewBitError(1e-7, sim.NewRNG(1, "b")),
		NewGilbertElliott(0.1, 0.1, 0, 0.5, sim.NewRNG(1, "c")),
		Chain{None{}, BlackHole{}},
	}
	for _, m := range models {
		if m.String() == "" {
			t.Errorf("%T has empty String()", m)
		}
	}
}
