package fault

import (
	"math"
	"testing"
	"testing/quick"

	"flowpulse/internal/sim"
)

func TestNoneDeliversEverything(t *testing.T) {
	var m None
	for i := 0; i < 100; i++ {
		if m.Apply(sim.Time(i), 4096) != Deliver {
			t.Fatal("None dropped a packet")
		}
	}
}

func TestBlackHoleDropsEverything(t *testing.T) {
	var m BlackHole
	for i := 0; i < 100; i++ {
		if m.Apply(sim.Time(i), 64) != Drop {
			t.Fatal("BlackHole delivered a packet")
		}
	}
}

func TestBernoulliDropRate(t *testing.T) {
	for _, rate := range []float64{0.008, 0.015, 0.05, 0.5} {
		m := NewBernoulliDrop(rate, sim.NewRNG(3, "drop"))
		const n = 100000
		drops := 0
		for i := 0; i < n; i++ {
			if m.Apply(0, 4096) == Drop {
				drops++
			}
		}
		got := float64(drops) / n
		// 5-sigma binomial bound.
		tol := 5 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol {
			t.Errorf("rate %v: empirical %v (tol %v)", rate, got, tol)
		}
	}
}

func TestBernoulliDropValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rate > 1")
		}
	}()
	NewBernoulliDrop(1.5, sim.NewRNG(1, "x"))
}

func TestWindowActivation(t *testing.T) {
	w := &Window{Start: 100, End: 200, Inner: BlackHole{}}
	cases := []struct {
		at   sim.Time
		want Verdict
	}{
		{0, Deliver}, {99, Deliver}, {100, Drop}, {150, Drop}, {199, Drop}, {200, Deliver}, {500, Deliver},
	}
	for _, c := range cases {
		if got := w.Apply(c.at, 100); got != c.want {
			t.Errorf("Window at %v: got %v, want %v", c.at, got, c.want)
		}
	}
}

// TestGilbertElliottLongRunLoss checks the empirical loss rate of the
// two-state Markov process against the analytic steady-state value.
// Samples are correlated (the chain mixes over ≈ 1/pGB + 1/pBG
// packets), so the binomial bound uses an effective sample size
// deflated by the mixing time.
func TestGilbertElliottLongRunLoss(t *testing.T) {
	const (
		pGB, pBG          = 0.01, 0.1
		lossGood, lossBad = 0.001, 0.3
		n                 = 2_000_000
	)
	g := NewGilbertElliott(pGB, pBG, lossGood, lossBad, sim.NewRNG(7, "ge"))
	want := g.SteadyStateLoss()

	drops := 0
	for i := 0; i < n; i++ {
		if g.Apply(sim.Time(i), 4096) == Drop {
			drops++
		}
	}
	got := float64(drops) / n

	neff := n / (1/pGB + 1/pBG)
	tol := 6 * math.Sqrt(want*(1-want)/neff)
	if math.Abs(got-want) > tol {
		t.Errorf("long-run loss %v, analytic %v (tol %v)", got, want, tol)
	}
}

// TestGilbertElliottBurstLength checks the mean Bad-state sojourn
// against the analytic geometric mean 1/pBG.
func TestGilbertElliottBurstLength(t *testing.T) {
	const (
		pGB, pBG = 0.01, 0.1
		n        = 2_000_000
	)
	g := NewGilbertElliott(pGB, pBG, 0, 1, sim.NewRNG(11, "ge-burst"))
	want := 1 / pBG

	var bursts, total int
	run := 0
	for i := 0; i < n; i++ {
		g.Apply(sim.Time(i), 4096)
		if g.bad {
			run++
		} else if run > 0 {
			bursts++
			total += run
			run = 0
		}
	}
	if bursts < 1000 {
		t.Fatalf("only %d bursts observed; test underpowered", bursts)
	}
	got := float64(total) / float64(bursts)
	// Geometric sojourns: std ≈ sqrt(1-p)/p ≈ mean for small p.
	tol := 6 * (math.Sqrt(1-pBG) / pBG) / math.Sqrt(float64(bursts))
	if math.Abs(got-want) > tol {
		t.Errorf("mean burst length %v, analytic %v (tol %v, %d bursts)", got, want, tol, bursts)
	}
}

func TestLinkFlapDutyCycle(t *testing.T) {
	f := NewLinkFlap(100*sim.Microsecond, 35*sim.Microsecond, 7*sim.Microsecond)
	if got, want := f.DutyCycle(), 0.35; got != want {
		t.Fatalf("DutyCycle = %v, want %v", got, want)
	}

	// Empirical duty cycle from uniform random sample times over many
	// periods: binomial confidence bound around the analytic value.
	rng := sim.NewRNG(13, "flap")
	const n = 200_000
	span := 1000 * 100 * sim.Microsecond
	down := 0
	for i := 0; i < n; i++ {
		at := sim.Time(7*sim.Microsecond) + sim.Time(rng.UniformDuration(span))
		if f.Apply(at, 256) == Drop {
			down++
		}
	}
	got := float64(down) / n
	tol := 5 * math.Sqrt(0.35*0.65/n)
	if math.Abs(got-0.35) > tol {
		t.Errorf("empirical duty cycle %v, want 0.35 (tol %v)", got, tol)
	}
}

func TestLinkFlapEdges(t *testing.T) {
	f := NewLinkFlap(100, 30, 50)
	cases := []struct {
		at   sim.Time
		want Verdict
	}{
		{0, Deliver},  // before the first cycle: up
		{49, Deliver}, // still before phase
		{50, Drop},    // cycle start: down
		{79, Drop},    // last down instant
		{80, Deliver}, // up portion
		{149, Deliver},
		{150, Drop}, // second cycle
	}
	for _, c := range cases {
		if got := f.Apply(c.at, 64); got != c.want {
			t.Errorf("LinkFlap at %v: got %v, want %v", c.at, got, c.want)
		}
	}
}

func TestLinkFlapInnerModel(t *testing.T) {
	// A flap with an inner model degrades instead of dying: during the
	// down phase the inner process decides, outside it everything
	// delivers.
	f := NewLinkFlap(100, 50, 0)
	f.Inner = NewBernoulliDrop(0.5, sim.NewRNG(17, "flap-inner"))
	const n = 100000
	downDrops, downTotal := 0, 0
	for i := 0; i < n; i++ {
		at := sim.Time(i % 100)
		v := f.Apply(at, 256)
		if !f.Down(at) {
			if v != Deliver {
				t.Fatal("up phase dropped with inner model")
			}
			continue
		}
		downTotal++
		if v == Drop {
			downDrops++
		}
	}
	got := float64(downDrops) / float64(downTotal)
	tol := 5 * math.Sqrt(0.5*0.5/float64(downTotal))
	if math.Abs(got-0.5) > tol {
		t.Errorf("down-phase loss %v, want 0.5 (tol %v)", got, tol)
	}
}

func TestLinkFlapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for downFor > period")
		}
	}()
	NewLinkFlap(100, 200, 0)
}

func TestBitErrorDropProbability(t *testing.T) {
	b := NewBitError(1e-6, sim.NewRNG(5, "ber"))
	// 4096-byte packet: 32768 bits; p = 1-(1-1e-6)^32768 ≈ 0.0322.
	p := b.DropProbability(4096)
	if math.Abs(p-0.03222) > 0.001 {
		t.Fatalf("DropProbability(4096) = %v", p)
	}
	// Larger packets must be more likely to drop (the paper's point
	// about probes vs large flows).
	if b.DropProbability(64) >= b.DropProbability(4096) {
		t.Fatal("small packet drop probability not lower than large packet's")
	}
}

func TestBitErrorEmpirical(t *testing.T) {
	b := NewBitError(1e-6, sim.NewRNG(6, "ber2"))
	const n = 50000
	drops := 0
	for i := 0; i < n; i++ {
		if b.Apply(0, 4096) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	want := b.DropProbability(4096)
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
		t.Fatalf("empirical %v, want %v", got, want)
	}
}

func TestGilbertElliottSteadyState(t *testing.T) {
	g := NewGilbertElliott(0.01, 0.1, 0.001, 0.3, sim.NewRNG(7, "ge"))
	want := g.SteadyStateLoss()
	const n = 500000
	drops := 0
	for i := 0; i < n; i++ {
		if g.Apply(0, 4096) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("steady-state loss: empirical %v, analytic %v", got, want)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With sticky states, losses must cluster: the conditional loss
	// probability after a loss should exceed the marginal loss rate.
	g := NewGilbertElliott(0.005, 0.05, 0.0, 0.5, sim.NewRNG(8, "ge2"))
	const n = 300000
	losses := make([]bool, n)
	total := 0
	for i := range losses {
		losses[i] = g.Apply(0, 4096) == Drop
		if losses[i] {
			total++
		}
	}
	afterLoss, afterLossDrop := 0, 0
	for i := 1; i < n; i++ {
		if losses[i-1] {
			afterLoss++
			if losses[i] {
				afterLossDrop++
			}
		}
	}
	marginal := float64(total) / n
	conditional := float64(afterLossDrop) / float64(afterLoss)
	if conditional < 2*marginal {
		t.Fatalf("losses not bursty: conditional %v vs marginal %v", conditional, marginal)
	}
}

func TestChainDropsIfAnyDrops(t *testing.T) {
	c := Chain{None{}, &Window{Start: 10, End: 20, Inner: BlackHole{}}, None{}}
	if c.Apply(5, 100) != Deliver {
		t.Fatal("chain dropped outside window")
	}
	if c.Apply(15, 100) != Drop {
		t.Fatal("chain delivered inside blackhole window")
	}
}

// Property: a Bernoulli model with rate 0 never drops and rate 1
// always drops, regardless of packet size or time.
func TestBernoulliEdgesProperty(t *testing.T) {
	zero := NewBernoulliDrop(0, sim.NewRNG(9, "z"))
	one := NewBernoulliDrop(1, sim.NewRNG(9, "o"))
	f := func(at int64, size uint16) bool {
		tm := sim.Time(at & 0x7fffffffffffffff)
		return zero.Apply(tm, int(size)) == Deliver && one.Apply(tm, int(size)) == Drop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModelStrings(t *testing.T) {
	models := []Model{
		None{}, BlackHole{},
		NewBernoulliDrop(0.015, sim.NewRNG(1, "a")),
		&Window{Start: 0, End: 10, Inner: BlackHole{}},
		NewBitError(1e-7, sim.NewRNG(1, "b")),
		NewGilbertElliott(0.1, 0.1, 0, 0.5, sim.NewRNG(1, "c")),
		Chain{None{}, BlackHole{}},
	}
	for _, m := range models {
		if m.String() == "" {
			t.Errorf("%T has empty String()", m)
		}
	}
}
