// Control-plane divergence faults: errors in what the system
// *believes* about the fabric rather than in what the links do. A
// packet-loss model (fault.Model) corrupts the data plane; a
// Divergence corrupts the control plane's model of the data plane —
// "The Ghost in the Datacenter" class of failure. They are injected
// into control.Plane, which owns the believed topology view, and are
// repaired by verify-own-writes, reconciliation, or the periodic
// belief-vs-truth audit.
package fault

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// DivergenceKind enumerates the ways belief and truth can split.
type DivergenceKind uint8

const (
	// DivergeFailedPush silently drops administrative config pushes:
	// the controller issues SetLinkAdmin, the switch never applies it.
	// An unverified control plane commits its intent to belief anyway.
	DivergeFailedPush DivergenceKind = iota
	// DivergeStaleLSDB corrupts one switch's link-state advertisement
	// without any write happening: the belief decays on its own, as
	// after a flap whose recovery notification was lost.
	DivergeStaleLSDB
	// DivergePartialRollout lands only a prefix of a multi-operation
	// ChangeSet on the fabric — a quarantine of a trunk group that
	// half-applied.
	DivergePartialRollout
)

func (k DivergenceKind) String() string {
	switch k {
	case DivergeFailedPush:
		return "failed-push"
	case DivergeStaleLSDB:
		return "stale-lsdb"
	case DivergePartialRollout:
		return "partial-rollout"
	}
	return fmt.Sprintf("divergence(%d)", k)
}

// Divergence describes one injectable control-plane fault. Fields are
// kind-specific; unused fields are ignored.
type Divergence struct {
	Kind DivergenceKind

	// Skip and Count drive DivergeFailedPush: let Skip pushes through
	// untouched, then silently drop the next Count.
	Skip, Count int

	// At, Link, and Up drive DivergeStaleLSDB: at simulated time At the
	// advertisement for Link on one of its terminating switches is
	// overwritten with Up. The corruption lands on the plane's next
	// tick at or after At.
	At   sim.Time
	Link topology.LinkID
	Up   bool

	// Ops drives DivergePartialRollout: the next ChangeSet with more
	// than Ops operations lands only its first Ops on the fabric.
	Ops int
}

func (d Divergence) String() string {
	switch d.Kind {
	case DivergeFailedPush:
		return fmt.Sprintf("failed-push(skip %d, drop %d)", d.Skip, d.Count)
	case DivergeStaleLSDB:
		return fmt.Sprintf("stale-lsdb(link %d -> up=%v at %v)", d.Link, d.Up, sim.Duration(d.At))
	case DivergePartialRollout:
		return fmt.Sprintf("partial-rollout(first %d ops)", d.Ops)
	}
	return d.Kind.String()
}
