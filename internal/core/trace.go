package core

import (
	"fmt"

	"flowpulse/internal/remediate"
	"flowpulse/internal/topology"
	"flowpulse/internal/trace"
)

// attachTrace resolves Config's trace fields into a begun Writer on
// s.trc (a no-op when tracing is off).
func (s *System) attachTrace(topo *topology.Topology, cfg Config) error {
	trc, err := resolveTraceWriter(cfg.TracePath, cfg.Trace)
	if trc == nil || err != nil {
		return err
	}
	dc := s.detector.Config()
	hdr, err := traceHeader(topo, cfg.TraceLabel, false, s.remediator, []trace.JobHeader{{
		Job:               traceJobID(cfg.Job),
		Predictor:         s.pred.Name(),
		Threshold:         dc.Threshold,
		MinPredicted:      dc.MinPredicted,
		AggregateSymmetry: dc.AggregateSymmetry,
		CEDiscount:        dc.CEDiscount,
	}})
	if err != nil {
		return err
	}
	if err := trc.Begin(hdr); err != nil {
		return err
	}
	s.trc = trc
	return nil
}

// resolveTraceWriter maps the (TracePath, Trace) config pair to one
// writer; at most one may be set.
func resolveTraceWriter(path string, w *trace.Writer) (*trace.Writer, error) {
	switch {
	case w != nil && path != "":
		return nil, fmt.Errorf("core: set TracePath or Trace, not both")
	case w != nil:
		return w, nil
	case path != "":
		return trace.Create(path)
	}
	return nil, nil
}

// traceHeader derives the trace header from the monitored fabric and
// the effective pipeline configurations. Trace v1 records two-level
// leaf/spine systems: the header's four topology numbers rebuild the
// exact same fabric — and therefore the exact same link and switch
// IDs — offline.
func traceHeader(topo *topology.Topology, label string, shared bool,
	rem *remediate.Remediator, jobs []trace.JobHeader) (trace.Header, error) {
	if topo.Levels != 2 {
		return trace.Header{}, fmt.Errorf("core: tracing supports two-level fat trees only (got %d levels)", topo.Levels)
	}
	leaves := topo.Leaves()
	hosts := len(topo.HostsOf(leaves[0]))
	uplink := topo.Switch(leaves[0]).Ports[hosts].Link
	hdr := trace.Header{
		Label:        label,
		Leaves:       len(leaves),
		Spines:       len(topo.Spines()),
		HostsPerLeaf: hosts,
		Trunk:        topo.Trunk,
		LinkRateBPS:  topo.Link(uplink).RateBPS,
		Shared:       shared,
		Jobs:         jobs,
	}
	if rem != nil {
		cfg := rem.Config()
		hdr.Remediate = &cfg
	}
	return hdr, nil
}

// traceJobID narrows the collector's job filter to the header field
// (telemetry.JobAny and other non-job filters record as 0).
func traceJobID(job int) uint16 {
	if job < 0 || job > 0xffff {
		return 0
	}
	return uint16(job)
}

// TraceWriter returns the attached trace writer, or nil when the
// system is not recording. Harnesses use it to append ground-truth
// fault records and to check Err after Flush.
func (s *System) TraceWriter() *trace.Writer { return s.trc }
