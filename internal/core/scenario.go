package core

import (
	"fmt"

	"flowpulse/internal/collective"
	"flowpulse/internal/control"
	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/metrics"
	"flowpulse/internal/sim"
	"flowpulse/internal/spray"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
	"flowpulse/internal/workload"
)

// CollectiveKind names the workload patterns a Scenario can run.
type CollectiveKind string

// Supported collective kinds.
const (
	RingAllReduce CollectiveKind = "ring-allreduce"
	ReduceScatter CollectiveKind = "reduce-scatter"
	AllGatherKind CollectiveKind = "all-gather"
	AllToAllKind  CollectiveKind = "all-to-all"
)

// LeafSpineLink names a leaf-spine link by ordinals (stable across
// rebuilds of the same scenario, unlike raw LinkIDs).
type LeafSpineLink struct {
	LeafOrd, SpineOrd, Trunk int
}

// Scenario is a complete, reproducible experiment description: build
// the same Scenario twice and the fabrics are identical (the
// simulation-based predictor depends on this).
type Scenario struct {
	// Leaves, Spines, HostsPerLeaf, Trunk shape the fat tree.
	// Defaults: the paper's 32×16, one host per leaf, single links.
	Leaves, Spines, HostsPerLeaf, Trunk int
	// LinkRateBPS defaults to 400 Gb/s.
	LinkRateBPS int64
	// Spray selects the load-balancing policy (default least-loaded).
	Spray spray.Kind
	// Transport tunes the RoCE-like transport.
	Transport transport.Config
	// Collective selects the workload (default RingAllReduce).
	Collective CollectiveKind
	// InterleaveRing orders the (single-job) collective's ranks
	// column-major across leaves — host (leaf, ix) gets rank
	// ix·Leaves + leaf — instead of the default leaf-major order. Every
	// ring edge then crosses leaves: the placement-oblivious schedule
	// whose goodput a leaf's uplink capacity actually gates, and the
	// regime where resilience re-planning has something to repair (a
	// leaf-major ring keeps each leaf at two crossing edges and is
	// NIC-bound; see internal/resilience).
	InterleaveRing bool
	// BytesPerRank is the collective size D (default 4 MiB).
	BytesPerRank int64
	// Iterations is the training length (default 8).
	Iterations int
	// ComputeGap and JitterMax shape the iteration timing.
	ComputeGap, JitterMax sim.Duration
	// PreExisting lists disconnected (known-faulty) links.
	PreExisting []LeafSpineLink
	// Background, when positive, runs a Low-priority random-pair
	// traffic generator with this mean inter-message gap. Background
	// load does not enter the measurement (it is untagged and
	// deprioritized, §5.1) but it does perturb the spray decisions the
	// collective's packets see — the realistic noise source behind
	// nonzero false-positive rates at low thresholds.
	Background sim.Duration
	// BackgroundBytes is the background message payload (default 64 KiB).
	BackgroundBytes int
	// Congestion bundles the adversarial-traffic and ECN/DCQCN knobs.
	// The zero value is fully off, and a scenario with it off builds
	// byte-identically to earlier releases.
	Congestion CongestionSpec
	// Divergence bundles the control-plane fault knobs: injected
	// belief/truth splits and the plane's verification posture. The
	// zero value is fully off — a verified plane whose belief tracks
	// truth exactly — and runs byte-identically to earlier releases.
	Divergence DivergenceSpec
	// Job is the training job id.
	Job uint16
	// Jobs, when non-empty, makes this a multi-job scenario (§7
	// "Parallel Jobs"): each entry is one concurrent training job on
	// its own host slice. Scenario-level workload fields (Collective,
	// BytesPerRank, Iterations, …) become per-job defaults, and
	// Scenario.Job names Jobs[0] when that entry leaves Job zero.
	Jobs []JobScenario
	// Seed roots every random stream in the scenario.
	Seed uint64
	// Shards selects the event-engine execution mode. 0 (the default)
	// runs the classic single-threaded engine, byte-compatible with
	// earlier releases. N ≥ 1 runs the sharded conservative-parallel
	// engine — one event-heap domain per switch, N workers — whose
	// results are bit-identical for EVERY N ≥ 1 (worker count only
	// changes packing, never the schedule) but differ microscopically
	// from the single-threaded schedule; see DESIGN.md decision 12.
	// Sharded runtimes must be driven via Runtime.Run/RunUntil and
	// released with Runtime.Close.
	Shards int
}

// CongestionSpec describes a scenario's congestion regime: transport
// congestion control (ECN marking + DCQCN reaction) and the adversarial
// traffic generators whose queue build-up mimics loss without any
// fault. Generators start with training and stop when the last job
// finishes, like the Background generator.
type CongestionSpec struct {
	// ECN enables RED-style CE marking at every switch egress queue
	// (fabric.ECNConfig defaults: 100 KiB / 400 KiB knees, 20% max
	// probability — under the PFC Xoff threshold, so marking reacts
	// before pauses). ECNKMin/ECNKMax override the knees (bytes; zero
	// keeps the defaults): sensitive fabrics mark mild queue build-up
	// that the default knee lets pass unmarked, trading mark volume for
	// congestion evidence on lightly perturbed windows.
	ECN              bool
	ECNKMin, ECNKMax int64
	// DCQCN enables the transport's per-pair rate limiter, the reaction
	// point of the ECN loop. Meaningful only with ECN (no marks, no
	// cuts).
	DCQCN bool
	// Incast, when positive, runs an N→1 burst generator with this mean
	// inter-burst gap: IncastFanout sources (default: every non-victim
	// host) each fire IncastBytes (default 128 KiB) at a random host of
	// leaf IncastLeaf. IncastHigh runs the bursts in the measured
	// traffic class instead of Low — the adversarial tenant whose queue
	// build-up both delays the collective (mimicking loss) and draws CE
	// marks onto the measured packets behind it, which is exactly the
	// signal detect.Config.CEDiscount keys on.
	Incast       sim.Duration
	IncastLeaf   int
	IncastFanout int
	IncastBytes  int
	IncastHigh   bool
	// Storm, when positive, runs a bursty on/off heavy-flow generator —
	// a multi-tenant neighbor in the measured traffic class — with this
	// mean in-burst message gap (StormBytes per message, default
	// 256 KiB; default 50 µs on / 150 µs off phases).
	Storm      sim.Duration
	StormBytes int
	// Straggler, when positive, delays the ranks hosted on leaf
	// StragglerLeaf by this fixed offset at every iteration start — the
	// topology-asymmetric straggler that skews temporal symmetry with
	// no network involvement at all.
	Straggler     sim.Duration
	StragglerLeaf int
}

// Active reports whether any congestion source (traffic generator or
// straggler) is configured; ECN/DCQCN alone are transport features,
// not congestion sources.
func (c *CongestionSpec) Active() bool {
	return c.Incast > 0 || c.Storm > 0 || c.Straggler > 0
}

// DivergenceSpec describes a scenario's control-plane fault regime:
// which belief/truth splits to inject (see fault.Divergence) and how
// the control plane defends itself. Links are named by ordinals so the
// spec survives rebuilds, like PreExisting.
type DivergenceSpec struct {
	// FailSkip and FailPushes drive fault.DivergeFailedPush: let
	// FailSkip administrative pushes through untouched, then silently
	// drop the next FailPushes. FailPushes 0 injects nothing.
	FailSkip, FailPushes int
	// PartialOps, when positive, drives fault.DivergePartialRollout:
	// the next ChangeSet with more operations lands only its first
	// PartialOps on the fabric.
	PartialOps int
	// Stale lists fault.DivergeStaleLSDB injections: advertisement
	// corruptions that land at their times with no write involved.
	Stale []StaleSpec
	// Unverified disables verify-own-writes AND reconciliation: the
	// control plane trusts that every push landed, committing intent
	// straight to belief. This is the baseline arm of the divergence
	// experiment — the posture most production controllers ship with.
	Unverified bool
	// AuditEvery, when positive, runs the periodic belief-vs-truth
	// audit at this cadence on the remediation tick (verified planes
	// only). The backstop that catches stale-LSDB decay even when no
	// deviation ever reaches the remediator.
	AuditEvery sim.Duration
	// MaxRetries overrides the per-operation re-push budget during
	// verification (0 keeps the control package default; negative
	// means no retries).
	MaxRetries int
}

// StaleSpec is one scheduled advertisement corruption.
type StaleSpec struct {
	// At is when the corruption lands (on the plane's next tick).
	At sim.Time
	// Link names the link whose advertisement is overwritten.
	Link LeafSpineLink
	// Up is the (wrong) advertised state.
	Up bool
}

// Enabled reports whether any divergence is injected or the plane's
// verification posture differs from the default. False means the run
// is byte-identical to one built before this knob existed.
func (d *DivergenceSpec) Enabled() bool {
	return d.FailPushes > 0 || d.PartialOps > 0 || len(d.Stale) > 0 || d.Unverified
}

// JobScenario describes one training job of a multi-job scenario.
// Zero-valued workload fields inherit the scenario-level values.
type JobScenario struct {
	// Job is the job id. Jobs[0] defaults to Scenario.Job; entry i>0
	// defaults to id i. Ids must be distinct across entries.
	Job uint16
	// Collective, BytesPerRank, Iterations, ComputeGap, and JitterMax
	// override the scenario-level fields for this job.
	Collective   CollectiveKind
	BytesPerRank int64
	Iterations   int
	ComputeGap   sim.Duration
	JitterMax    sim.Duration
	// HostIx selects which host on each leaf carries this job's ranks
	// (0 ≤ HostIx < HostsPerLeaf): jobs sharing a leaf span stay on
	// disjoint hosts.
	HostIx int
	// LeafFirst and LeafCount restrict the job's ranks to a
	// contiguous span of leaves. LeafCount 0 spans every leaf from
	// LeafFirst on.
	LeafFirst, LeafCount int
}

func (sc *Scenario) setDefaults() {
	if sc.Leaves == 0 {
		sc.Leaves = 32
	}
	if sc.Spines == 0 {
		sc.Spines = 16
	}
	if sc.HostsPerLeaf == 0 {
		sc.HostsPerLeaf = 1
	}
	if sc.Trunk == 0 {
		sc.Trunk = 1
	}
	if sc.Collective == "" {
		sc.Collective = RingAllReduce
	}
	if sc.BytesPerRank == 0 {
		sc.BytesPerRank = 4 << 20
	}
	if sc.Iterations == 0 {
		sc.Iterations = 8
	}
	// The paper's 5 µs retransmission timeout assumes the ring's
	// single-sender-per-leaf property (§5.1): no fan-in, so queueing
	// never approaches the timeout. All-to-all concentrates several
	// senders on one downlink, where tens of microseconds of
	// legitimate queueing would otherwise read as loss and flood the
	// fabric with duplicates (the paper defers congestion control and
	// dynamic-demand collectives to future work, §7).
	if sc.Transport.RTO == 0 && sc.Collective == AllToAllKind {
		sc.Transport.RTO = 100 * sim.Microsecond
	}
}

// Runtime is a built scenario: the live simulation objects.
type Runtime struct {
	Scenario Scenario
	Topo     *topology.Topology
	Engine   *sim.Engine
	// EngineGroup is the sharded engine group (nil when Shards == 0);
	// Engine is then its control engine.
	EngineGroup *sim.Group
	Net         *fabric.Network
	// Plane is the control plane holding the believed topology view.
	// Pass it as Config.Control when attaching a monitor so injected
	// divergence reaches the predictor and remediator.
	Plane *control.Plane
	Stack *transport.Stack
	Group []topology.HostID
	Coll  collective.Collective
	// Jobs holds the per-job runtimes of a multi-job scenario (empty
	// for the classic single-job form).
	Jobs []JobRuntime
	// Goodput, when set before StartTraining, receives every completed
	// iteration of the (single-job) training loop — the raw material of
	// the goodput/stall/recovery metric family. Call MarkFault on it at
	// fault onset to split the timeline.
	Goodput *metrics.GoodputTimeline

	bg      *workload.Background
	incast  *workload.Incast
	storm   *workload.Storm
	running int // jobs still training (multi-job Background gating)
}

// JobRuntime is one job of a multi-job scenario, built: its normalized
// spec, host group, and collective.
type JobRuntime struct {
	Spec  JobScenario
	Group []topology.HostID
	Coll  collective.Collective
}

// Build constructs the fabric, transport, and collective for a
// scenario, applying pre-existing faults as administrative
// disconnections (routing converges around them before training
// starts, as in §6).
func (sc Scenario) Build() (*Runtime, error) {
	sc.setDefaults()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{
		Leaves: sc.Leaves, Spines: sc.Spines, HostsPerLeaf: sc.HostsPerLeaf,
		Trunk: sc.Trunk, LinkRateBPS: sc.LinkRateBPS,
	})
	if err != nil {
		return nil, err
	}
	var (
		eng  *sim.Engine
		grp  *sim.Group
		part *topology.Partition
	)
	if sc.Shards >= 1 {
		part = topology.NewPartition(topo)
		grp = sim.NewGroup(sim.GroupConfig{Domains: part.NumDomains, Lookahead: part.Lookahead, Workers: sc.Shards})
		eng = grp.Control()
	} else {
		eng = sim.NewEngine()
	}
	net, err := fabric.New(fabric.Config{
		Topo: topo, Engine: eng, Group: grp, Partition: part, Spray: sc.Spray, Seed: sc.Seed,
		ECN: fabric.ECNConfig{
			Enabled:   sc.Congestion.ECN,
			KMinBytes: sc.Congestion.ECNKMin,
			KMaxBytes: sc.Congestion.ECNKMax,
		},
	})
	if err != nil {
		if grp != nil {
			grp.Close()
		}
		return nil, err
	}
	// The control plane is built (and armed with any divergence faults)
	// before the pre-existing disconnections are pushed, so a scenario
	// can direct a failed push or partial rollout at the initial
	// quarantine itself.
	plane := control.New(control.Config{
		Verify:     !sc.Divergence.Unverified,
		MaxRetries: sc.Divergence.MaxRetries,
		AuditEvery: sc.Divergence.AuditEvery,
	}, net)
	if sc.Divergence.FailPushes > 0 {
		plane.Inject(fault.Divergence{Kind: fault.DivergeFailedPush, Skip: sc.Divergence.FailSkip, Count: sc.Divergence.FailPushes})
	}
	if sc.Divergence.PartialOps > 0 {
		plane.Inject(fault.Divergence{Kind: fault.DivergePartialRollout, Ops: sc.Divergence.PartialOps})
	}
	for _, st := range sc.Divergence.Stale {
		link, err := resolveLink(topo, st.Link)
		if err != nil {
			if grp != nil {
				grp.Close()
			}
			return nil, err
		}
		plane.Inject(fault.Divergence{Kind: fault.DivergeStaleLSDB, At: st.At, Link: link, Up: st.Up})
	}
	if len(sc.PreExisting) > 0 {
		// One multi-op ChangeSet: the pre-existing disconnections are a
		// single administrative decision, pushed link by link in spec
		// order (the same SetLinkAdmin sequence earlier releases issued
		// directly).
		ops := make([]control.Op, 0, len(sc.PreExisting))
		for _, pf := range sc.PreExisting {
			link, err := resolveLink(topo, pf)
			if err != nil {
				if grp != nil {
					grp.Close()
				}
				return nil, err
			}
			ops = append(ops, control.Op{Link: link, Up: false})
		}
		plane.Apply(0, "pre-existing", ops)
	}
	if sc.Congestion.DCQCN {
		sc.Transport.DCQCN.Enabled = true
	}
	stack := transport.NewStack(net, sc.Transport)

	group := make([]topology.HostID, len(topo.Hosts))
	if sc.InterleaveRing {
		// Column-major: hosts are leaf-major (leaf*HostsPerLeaf + ix),
		// ranks walk leaves fastest.
		k := 0
		for ix := 0; ix < sc.HostsPerLeaf; ix++ {
			for leaf := 0; leaf < sc.Leaves; leaf++ {
				group[k] = topology.HostID(leaf*sc.HostsPerLeaf + ix)
				k++
			}
		}
	} else {
		for i := range group {
			group[i] = topology.HostID(i)
		}
	}
	coll, err := buildCollective(sc.Collective, group, sc.BytesPerRank)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{Scenario: sc, Topo: topo, Engine: eng, EngineGroup: grp, Net: net, Plane: plane, Stack: stack, Group: group, Coll: coll}
	if err := rt.buildJobs(); err != nil {
		rt.Close()
		return nil, err
	}
	return rt, nil
}

// Run drives the simulation until every event has drained, returning
// the final simulated time. It dispatches to the sharded group when
// the scenario was built with Shards ≥ 1.
func (rt *Runtime) Run() sim.Time {
	if rt.EngineGroup != nil {
		return rt.EngineGroup.Run()
	}
	return rt.Engine.Run()
}

// RunUntil drives the simulation up to the deadline.
func (rt *Runtime) RunUntil(deadline sim.Time) sim.Time {
	if rt.EngineGroup != nil {
		return rt.EngineGroup.RunUntil(deadline)
	}
	return rt.Engine.RunUntil(deadline)
}

// Close releases the sharded engine's worker pool. It is a no-op for
// single-threaded runtimes, and safe to call more than once.
func (rt *Runtime) Close() {
	if rt.EngineGroup != nil {
		rt.EngineGroup.Close()
	}
}

// buildCollective constructs one collective over a host group.
func buildCollective(kind CollectiveKind, group []topology.HostID, bytesPerRank int64) (collective.Collective, error) {
	switch kind {
	case RingAllReduce:
		return &collective.RingAllReduce{Group: group, BytesPerRank: bytesPerRank}, nil
	case ReduceScatter:
		return &collective.ReduceScatter{Group: group, BytesPerRank: bytesPerRank}, nil
	case AllGatherKind:
		return &collective.AllGather{Group: group, BytesPerRank: bytesPerRank}, nil
	case AllToAllKind:
		return &collective.AllToAll{Group: group, BytesPerPair: bytesPerRank / int64(len(group)-1)}, nil
	}
	return nil, fmt.Errorf("core: unknown collective %q", kind)
}

// buildJobs materializes Scenario.Jobs: normalizes each spec against
// the scenario-level defaults, carves the host groups, and builds the
// collectives.
func (rt *Runtime) buildJobs() error {
	sc := rt.Scenario
	if len(sc.Jobs) == 0 {
		return nil
	}
	seen := map[uint16]bool{}
	for i, spec := range sc.Jobs {
		if spec.Job == 0 {
			if i == 0 {
				spec.Job = sc.Job
			} else {
				spec.Job = uint16(i)
			}
		}
		if seen[spec.Job] {
			return fmt.Errorf("core: duplicate job id %d in Scenario.Jobs", spec.Job)
		}
		seen[spec.Job] = true
		if spec.Collective == "" {
			spec.Collective = sc.Collective
		}
		if spec.BytesPerRank == 0 {
			spec.BytesPerRank = sc.BytesPerRank
		}
		if spec.Iterations == 0 {
			spec.Iterations = sc.Iterations
		}
		if spec.ComputeGap == 0 {
			spec.ComputeGap = sc.ComputeGap
		}
		if spec.JitterMax == 0 {
			spec.JitterMax = sc.JitterMax
		}
		if spec.HostIx < 0 || spec.HostIx >= sc.HostsPerLeaf {
			return fmt.Errorf("core: job %d HostIx %d outside HostsPerLeaf %d", spec.Job, spec.HostIx, sc.HostsPerLeaf)
		}
		if spec.LeafCount == 0 {
			spec.LeafCount = sc.Leaves - spec.LeafFirst
		}
		if spec.LeafFirst < 0 || spec.LeafCount < 2 || spec.LeafFirst+spec.LeafCount > sc.Leaves {
			return fmt.Errorf("core: job %d leaf span [%d,%d) invalid for %d leaves",
				spec.Job, spec.LeafFirst, spec.LeafFirst+spec.LeafCount, sc.Leaves)
		}
		// Fat-tree hosts are leaf-major: host = leaf*HostsPerLeaf + ix.
		group := make([]topology.HostID, spec.LeafCount)
		for j := range group {
			group[j] = topology.HostID((spec.LeafFirst+j)*sc.HostsPerLeaf + spec.HostIx)
		}
		coll, err := buildCollective(spec.Collective, group, spec.BytesPerRank)
		if err != nil {
			return err
		}
		rt.Jobs = append(rt.Jobs, JobRuntime{Spec: spec, Group: group, Coll: coll})
	}
	return nil
}

func resolveLink(topo *topology.Topology, ref LeafSpineLink) (topology.LinkID, error) {
	if ref.LeafOrd < 0 || ref.LeafOrd >= len(topo.Leaves()) ||
		ref.SpineOrd < 0 || ref.SpineOrd >= len(topo.Spines()) {
		return 0, fmt.Errorf("core: link %+v outside topology", ref)
	}
	trunks := topo.TrunkLinks(topo.Leaves()[ref.LeafOrd], topo.Spines()[ref.SpineOrd])
	if ref.Trunk < 0 || ref.Trunk >= len(trunks) {
		return 0, fmt.Errorf("core: trunk %d of %+v outside range", ref.Trunk, ref)
	}
	return trunks[ref.Trunk], nil
}

// Link resolves a leaf-spine link reference against this runtime.
func (rt *Runtime) Link(ref LeafSpineLink) topology.LinkID {
	link, err := resolveLink(rt.Topo, ref)
	if err != nil {
		panic(err)
	}
	return link
}

// InjectSilentDrop attaches a Bernoulli drop process to the downstream
// (spine→leaf) direction of the referenced link — §6's "configure a
// single leaf-spine link to drop packets at a set rate".
func (rt *Runtime) InjectSilentDrop(ref LeafSpineLink, rate float64) {
	link := rt.Link(ref)
	leaf := rt.Topo.Leaves()[ref.LeafOrd]
	rt.Net.InjectFault(link, rt.Net.DirToward(link, leaf),
		fault.NewBernoulliDrop(rate, sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("silent/%d", link))))
}

// InjectSilentDropUpstream faults the leaf→spine direction instead —
// the "remote link" case of Fig 4 as seen by downstream receivers.
func (rt *Runtime) InjectSilentDropUpstream(ref LeafSpineLink, rate float64) {
	link := rt.Link(ref)
	spine := rt.Topo.Spines()[ref.SpineOrd]
	rt.Net.InjectFault(link, rt.Net.DirToward(link, spine),
		fault.NewBernoulliDrop(rate, sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("silentup/%d", link))))
}

// InjectFlap attaches a periodic up/down fault to both directions of
// the referenced link: down for downFor out of every period, starting
// at phase. While "down" the link silently blackholes — the FIB does
// not know, which is what makes an intermittent cable the worst case
// for any remediation loop (quarantine, probe clean, re-admit, fail
// again).
func (rt *Runtime) InjectFlap(ref LeafSpineLink, period, downFor, phase sim.Duration) {
	link := rt.Link(ref)
	rt.Net.InjectFault(link, fabric.DirBoth, fault.NewLinkFlap(period, downFor, phase))
}

// InjectLossyFlap is InjectFlap with a Bernoulli loss process during
// the down phase instead of a full blackhole: an intermittently
// degraded link. Unlike a dead link — which stalls the collective's
// barrier until the flap lifts, collapsing each down phase into one
// stretched iteration — a degraded link lets iterations complete, so
// each down phase produces the consecutive deviating windows that
// confirmation logic keys on.
func (rt *Runtime) InjectLossyFlap(ref LeafSpineLink, period, downFor, phase sim.Duration, rate float64) {
	link := rt.Link(ref)
	if rt.EngineGroup != nil {
		// Sharded fabrics sample each direction's fault process in the
		// domain that owns the receiving endpoint — two different
		// domains for a leaf-spine link — so the directions cannot share
		// one Bernoulli stream. Give each its own.
		for i, dir := range []fabric.Direction{fabric.DirAtoB, fabric.DirBtoA} {
			f := fault.NewLinkFlap(period, downFor, phase)
			f.Inner = fault.NewBernoulliDrop(rate, sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("flap/%d/%d", link, i)))
			rt.Net.InjectFault(link, dir, f)
		}
		return
	}
	f := fault.NewLinkFlap(period, downFor, phase)
	f.Inner = fault.NewBernoulliDrop(rate, sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("flap/%d", link)))
	rt.Net.InjectFault(link, fabric.DirBoth, f)
}

// ClearSilent removes silent faults from the referenced link.
func (rt *Runtime) ClearSilent(ref LeafSpineLink) { rt.Net.ClearFault(rt.Link(ref)) }

// StartTraining launches the scenario's training job (plus the
// background generator when the scenario asks for one). For a
// multi-job scenario it launches every job; onIter then reports the
// iterations of Jobs[0] and onDone fires once ALL jobs finish.
func (rt *Runtime) StartTraining(onIter func(now sim.Time, iter uint32), onDone func(now sim.Time)) *workload.Job {
	if len(rt.Jobs) > 0 {
		first := rt.Jobs[0].Spec.Job
		jobs := rt.StartAllJobs(func(now sim.Time, job uint16, iter uint32) {
			if onIter != nil && job == first {
				onIter(now, iter)
			}
		}, onDone)
		return jobs[0]
	}
	rt.startBackground()
	rt.running = 1
	job := workload.StartJob(rt.Stack, workload.JobConfig{
		Job:              rt.Scenario.Job,
		Collective:       rt.Coll,
		Iterations:       rt.Scenario.Iterations,
		ComputeGap:       rt.Scenario.ComputeGap,
		JitterMax:        rt.Scenario.JitterMax,
		Priority:         fabric.High,
		Sentinel:         true,
		Seed:             rt.Scenario.Seed,
		StragglerOffsets: rt.stragglerOffsets(rt.Group),
		Goodput:          rt.Goodput,
		OnIteration: func(now sim.Time, iter uint32, _ *collective.Result) {
			if onIter != nil {
				onIter(now, iter)
			}
		},
		OnDone: func(now sim.Time) {
			rt.jobDone(now, onDone)
		},
	})
	return job
}

// StartAllJobs launches every job of a multi-job scenario. onIter
// fires per completed iteration of any job; onDone fires once after
// the last job finishes (also stopping the background generator).
func (rt *Runtime) StartAllJobs(onIter func(now sim.Time, job uint16, iter uint32), onDone func(now sim.Time)) []*workload.Job {
	if len(rt.Jobs) == 0 {
		panic("core: StartAllJobs without Scenario.Jobs")
	}
	rt.startBackground()
	rt.running = len(rt.Jobs)
	jobs := make([]*workload.Job, len(rt.Jobs))
	for i, jr := range rt.Jobs {
		spec := jr.Spec
		jobs[i] = workload.StartJob(rt.Stack, workload.JobConfig{
			Job:              spec.Job,
			Collective:       jr.Coll,
			Iterations:       spec.Iterations,
			ComputeGap:       spec.ComputeGap,
			JitterMax:        spec.JitterMax,
			Priority:         fabric.High,
			Sentinel:         true,
			Seed:             rt.Scenario.Seed, // streams are per-job-id inside workload
			StragglerOffsets: rt.stragglerOffsets(jr.Group),
			OnIteration: func(now sim.Time, iter uint32, _ *collective.Result) {
				if onIter != nil {
					onIter(now, spec.Job, iter)
				}
			},
			OnDone: func(now sim.Time) {
				rt.jobDone(now, onDone)
			},
		})
	}
	return jobs
}

func (rt *Runtime) startBackground() {
	if rt.Scenario.Background > 0 && rt.bg == nil {
		rt.bg = workload.StartBackground(rt.Stack, workload.BackgroundConfig{
			Hosts:        rt.Group,
			MessageBytes: rt.Scenario.BackgroundBytes,
			MeanGap:      rt.Scenario.Background,
			Seed:         rt.Scenario.Seed + 1,
		})
	}
	rt.startCongestion()
}

// startCongestion launches the scenario's adversarial traffic
// generators (idempotent, like startBackground; they stop with the
// last job). Seeds are offset from the scenario seed the same way the
// background generator's is, and each generator draws from its own
// named stream, so enabling one never perturbs another.
func (rt *Runtime) startCongestion() {
	cg := rt.Scenario.Congestion
	if cg.Incast > 0 && rt.incast == nil {
		victimLeaf := rt.Topo.Leaves()[cg.IncastLeaf]
		victims := rt.Topo.HostsOf(victimLeaf)
		var sources []topology.HostID
		for h := range rt.Topo.Hosts {
			if rt.Topo.LeafOf(topology.HostID(h)) != victimLeaf {
				sources = append(sources, topology.HostID(h))
			}
		}
		prio := fabric.Low
		if cg.IncastHigh {
			prio = fabric.High
		}
		rt.incast = workload.StartIncast(rt.Stack, workload.IncastConfig{
			Sources:      sources,
			Victims:      victims,
			MessageBytes: cg.IncastBytes,
			MeanGap:      cg.Incast,
			Fanout:       cg.IncastFanout,
			Priority:     prio,
			Seed:         rt.Scenario.Seed + 2,
		})
	}
	if cg.Storm > 0 && rt.storm == nil {
		rt.storm = workload.StartStorm(rt.Stack, workload.StormConfig{
			Hosts:        rt.Group,
			MessageBytes: cg.StormBytes,
			MeanGap:      cg.Storm,
			Seed:         rt.Scenario.Seed + 3,
		})
	}
}

// stragglerOffsets maps the scenario's straggler spec onto one job's
// rank order: every rank hosted under the straggler leaf starts late.
// Nil when the scenario has no straggler (the offsets-free fast path).
func (rt *Runtime) stragglerOffsets(group []topology.HostID) []sim.Duration {
	cg := rt.Scenario.Congestion
	if cg.Straggler <= 0 {
		return nil
	}
	leaf := rt.Topo.Leaves()[cg.StragglerLeaf]
	var offs []sim.Duration
	for i, h := range group {
		if rt.Topo.LeafOf(h) == leaf {
			if offs == nil {
				offs = make([]sim.Duration, len(group))
			}
			offs[i] = cg.Straggler
		}
	}
	return offs
}

// IncastGen and StormGen expose the running congestion generators for
// harness assertions (nil when off or training has not started).
func (rt *Runtime) IncastGen() *workload.Incast { return rt.incast }

// StormGen returns the running storm generator, or nil.
func (rt *Runtime) StormGen() *workload.Storm { return rt.storm }

// jobDone gates shared teardown on the last job's completion.
func (rt *Runtime) jobDone(now sim.Time, onDone func(now sim.Time)) {
	rt.running--
	if rt.running > 0 {
		return
	}
	if rt.bg != nil {
		rt.bg.Stop()
	}
	if rt.incast != nil {
		rt.incast.Stop()
	}
	if rt.storm != nil {
		rt.storm.Stop()
	}
	if onDone != nil {
		onDone(now)
	}
}

// ReferenceRun produces the simulation-based predictor's input: it
// rebuilds the scenario from scratch — same topology, same known
// faults, same seed, NO silent faults — runs the given number of
// iterations, and returns every closed telemetry window. This is the
// paper's "simulation before every training job" (§5.2).
func ReferenceRun(sc Scenario, iterations int) ([]*telemetry.Window, error) {
	sc.setDefaults()
	if iterations > 0 {
		sc.Iterations = iterations
	}
	// The reference predicts CLEAN conditions: congestion generators and
	// stragglers are environmental noise, excluded exactly as silent
	// faults are. ECN and DCQCN stay on — they are properties of the
	// fabric and transport that shape the healthy run's windows too.
	sc.Congestion.Incast, sc.Congestion.Storm, sc.Congestion.Straggler = 0, 0, 0
	rt, err := sc.Build()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	var windows []*telemetry.Window
	coll := telemetry.AttachAll(rt.Net, int(sc.Job), func(w *telemetry.Window) {
		windows = append(windows, w.Clone())
	})
	rt.StartTraining(nil, nil)
	rt.Run()
	coll.FlushAll(rt.Engine.Now()) // close the final iteration's windows
	return windows, nil
}
