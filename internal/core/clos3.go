package core

import (
	"fmt"

	"flowpulse/internal/collective"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
	"flowpulse/internal/workload"
)

// Clos3Scenario describes a three-level Clos experiment — the §7
// "Network Topology" extension: FlowPulse deployed at both leaf and
// spine levels to monitor spine→leaf and core→spine links.
type Clos3Scenario struct {
	// Pods, LeavesPerPod, SpinesPerPod, CoresPerGroup shape the fabric
	// (defaults 4 pods × 4 leaves × 2 spines, 4 cores per group).
	Pods, LeavesPerPod, SpinesPerPod, CoresPerGroup int
	// HostsPerLeaf is the number of hosts under each leaf (default 1).
	// Raising it is how datacenter-scale runs reach tens of thousands
	// of ranks without an unrealistic switch count.
	HostsPerLeaf int
	// BytesPerRank is the Ring-AllReduce size per rank (default 8 MiB).
	BytesPerRank int64
	// Iterations (default 10 — the learned model needs warm-up).
	Iterations int
	// ComputeGap and JitterMax as in Scenario.
	ComputeGap, JitterMax sim.Duration
	// Job id.
	Job uint16
	// Seed roots the randomness.
	Seed uint64
	// Shards selects the engine mode, as in Scenario.Shards: 0 is the
	// classic single-threaded engine, N ≥ 1 the sharded parallel engine
	// with N workers (bit-identical for every N ≥ 1).
	Shards int
}

func (sc *Clos3Scenario) setDefaults() {
	if sc.Pods == 0 {
		sc.Pods = 4
	}
	if sc.LeavesPerPod == 0 {
		sc.LeavesPerPod = 4
	}
	if sc.SpinesPerPod == 0 {
		sc.SpinesPerPod = 2
	}
	if sc.CoresPerGroup == 0 {
		sc.CoresPerGroup = 4
	}
	if sc.BytesPerRank == 0 {
		sc.BytesPerRank = 8 << 20
	}
	if sc.Iterations == 0 {
		sc.Iterations = 10
	}
}

// Clos3Runtime is a built three-level scenario.
type Clos3Runtime struct {
	Scenario Clos3Scenario
	Topo     *topology.Topology
	Engine   *sim.Engine
	// EngineGroup is the sharded engine group (nil when Shards == 0).
	EngineGroup *sim.Group
	Net         *fabric.Network
	Stack       *transport.Stack
	Group       []topology.HostID
	Coll        collective.Collective
}

// Run drives the simulation to completion (sharded or not).
func (rt *Clos3Runtime) Run() sim.Time {
	if rt.EngineGroup != nil {
		return rt.EngineGroup.Run()
	}
	return rt.Engine.Run()
}

// Close releases a sharded engine's worker pool; no-op otherwise.
func (rt *Clos3Runtime) Close() {
	if rt.EngineGroup != nil {
		rt.EngineGroup.Close()
	}
}

// Build constructs the three-level fabric and workload.
func (sc Clos3Scenario) Build() (*Clos3Runtime, error) {
	sc.setDefaults()
	topo, err := topology.NewClos3(topology.Clos3Config{
		Pods: sc.Pods, LeavesPerPod: sc.LeavesPerPod,
		SpinesPerPod: sc.SpinesPerPod, CoresPerGroup: sc.CoresPerGroup,
		HostsPerLeaf: sc.HostsPerLeaf,
	})
	if err != nil {
		return nil, err
	}
	var (
		eng  *sim.Engine
		grp  *sim.Group
		part *topology.Partition
	)
	if sc.Shards >= 1 {
		part = topology.NewPartition(topo)
		grp = sim.NewGroup(sim.GroupConfig{Domains: part.NumDomains, Lookahead: part.Lookahead, Workers: sc.Shards})
		eng = grp.Control()
	} else {
		eng = sim.NewEngine()
	}
	net, err := fabric.New(fabric.Config{Topo: topo, Engine: eng, Group: grp, Partition: part, Seed: sc.Seed})
	if err != nil {
		if grp != nil {
			grp.Close()
		}
		return nil, err
	}
	stack := transport.NewStack(net, transport.Config{})
	group := make([]topology.HostID, len(topo.Hosts))
	for i := range group {
		group[i] = topology.HostID(i)
	}
	coll := &collective.RingAllReduce{Group: group, BytesPerRank: sc.BytesPerRank}
	return &Clos3Runtime{Scenario: sc, Topo: topo, Engine: eng, EngineGroup: grp, Net: net, Stack: stack, Group: group, Coll: coll}, nil
}

// InjectSpineLeafDrop silently faults a spine→leaf link (detected by
// the LEAF monitors).
func (rt *Clos3Runtime) InjectSpineLeafDrop(pod, leafInPod, spineInPod int, rate float64) topology.LinkID {
	leaf := rt.Topo.LeavesOfPod(pod)[leafInPod]
	spine := rt.Topo.SpinesOfPod(pod)[spineInPod]
	link := rt.Topo.TrunkLinks(spine, leaf)[0]
	rt.Net.InjectFault(link, rt.Net.DirToward(link, leaf),
		fault.NewBernoulliDrop(rate, sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("c3sl/%d", link))))
	return link
}

// InjectCoreSpineDrop silently faults a core→spine link (detected by
// the SPINE monitors — the level a two-level deployment cannot see).
func (rt *Clos3Runtime) InjectCoreSpineDrop(pod, spineInPod, coreInGroup int, rate float64) topology.LinkID {
	spine := rt.Topo.SpinesOfPod(pod)[spineInPod]
	spineOrd := -1
	for i, s := range rt.Topo.SpinesOfPod(pod) {
		if s == spine {
			spineOrd = i
		}
	}
	core := rt.Topo.Cores()[spineOrd*rt.Scenario.CoresPerGroup+coreInGroup]
	link := rt.Topo.TrunkLinks(spine, core)[0]
	rt.Net.InjectFault(link, rt.Net.DirToward(link, spine),
		fault.NewBernoulliDrop(rate, sim.NewRNG(rt.Scenario.Seed, fmt.Sprintf("c3cs/%d", link))))
	return link
}

// StartTraining launches the ring job.
func (rt *Clos3Runtime) StartTraining(onIter func(now sim.Time, iter uint32)) *workload.Job {
	return workload.StartJob(rt.Stack, workload.JobConfig{
		Job:        rt.Scenario.Job,
		Collective: rt.Coll,
		Iterations: rt.Scenario.Iterations,
		ComputeGap: rt.Scenario.ComputeGap,
		JitterMax:  rt.Scenario.JitterMax,
		Priority:   fabric.High,
		Sentinel:   true,
		Seed:       rt.Scenario.Seed,
		OnIteration: func(now sim.Time, iter uint32, _ *collective.Result) {
			if onIter != nil {
				onIter(now, iter)
			}
		},
	})
}

// Clos3System is FlowPulse deployed at both levels of a three-level
// Clos. Both levels use the learned load model: §5.2's analytical
// model is specific to the two-level spray geometry, while the
// measurement-based baseline works at any level unchanged.
type Clos3System struct {
	collector *telemetry.Clos3Collector

	leafPred  *predict.Learned
	spinePred *predict.Learned
	leafDet   *detect.Detector
	spineDet  *detect.Detector

	// LeafEvents and SpineEvents accumulate detections per level.
	LeafEvents  []detect.Alert
	SpineEvents []detect.Alert
	// Windows counts processed windows across both levels.
	Windows int
}

// AttachClos3 deploys both monitor levels with learned baselines.
func AttachClos3(rt *Clos3Runtime, det detect.Config, learned predict.LearnedConfig) *Clos3System {
	s := &Clos3System{
		leafPred:  predict.NewLearned(len(rt.Topo.Leaves()), learned),
		spinePred: predict.NewLearned(len(rt.Topo.Spines()), learned),
	}
	s.leafDet = detect.New(rt.Topo, s.leafPred, det)
	s.spineDet = detect.New(rt.Topo, s.spinePred, det)
	s.collector = telemetry.AttachClos3(rt.Net, int(rt.Scenario.Job), s.onWindow)
	return s
}

func (s *Clos3System) onWindow(w *telemetry.Window) {
	s.Windows++
	wc := w.Clone()
	if wc.SwitchKind == topology.Spine {
		s.SpineEvents = append(s.SpineEvents, s.spineDet.Check(wc)...)
		s.spinePred.Observe(wc)
		return
	}
	s.LeafEvents = append(s.LeafEvents, s.leafDet.Check(wc)...)
	s.leafPred.Observe(wc)
}

// Flush closes all open windows.
func (s *Clos3System) Flush(now sim.Time) { s.collector.FlushAll(now) }

// LeafDetector and SpineDetector expose the per-level detectors.
func (s *Clos3System) LeafDetector() *detect.Detector  { return s.leafDet }
func (s *Clos3System) SpineDetector() *detect.Detector { return s.spineDet }
