// Package core assembles FlowPulse (§5, Fig 1): per-leaf telemetry
// monitors feeding a load model, a deviation detector, and a
// localizer — continuous, in-switch, coordination-free monitoring of a
// training job for silent network faults.
package core

import (
	"fmt"

	"flowpulse/internal/collective"
	"flowpulse/internal/control"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/monitor"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/resilience"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/trace"
	"flowpulse/internal/transport"
	"flowpulse/internal/workload"
)

// PredictorKind selects one of §5.2's load models.
type PredictorKind string

// The three prediction methods of §5.2.
const (
	// AnalyticalModel is the closed-form d/(s−f) model.
	AnalyticalModel PredictorKind = "analytical"
	// SimulationModel replays a reference simulation with known faults
	// only.
	SimulationModel PredictorKind = "simulation"
	// LearnedModel measures the first iterations and re-baselines
	// after transient faults heal.
	LearnedModel PredictorKind = "learned"
)

// Event is one detection, optionally localized (an alias of the
// monitor package's Event: core assembles the pipeline stages that
// package defines).
type Event = monitor.Event

// Config assembles a System.
type Config struct {
	// Net and Stack are the fabric and transport under observation.
	Net   *fabric.Network
	Stack *transport.Stack
	// Demand is the measured collective's demand matrix (required for
	// the analytical model; used by all for localization references).
	Demand *collective.DemandMatrix
	// Kind selects the load model. Defaults to AnalyticalModel.
	Kind PredictorKind
	// ReferenceWindows feed the simulation model (see ReferenceRun).
	ReferenceWindows []*telemetry.Window
	// Learned tunes the learned model.
	Learned predict.LearnedConfig
	// Detect tunes the detector (threshold defaults to the paper's 1%).
	Detect detect.Config
	// Job filters measurement to one job id; telemetry.JobAny measures
	// all sentinel-tagged traffic.
	Job int
	// Control is the control plane holding the believed topology view;
	// the predictor consults its believed FIB and the remediator
	// mutates the fabric only through it. Nil builds a fresh verified
	// plane over Net (belief initialized from live state) — equivalent
	// for every run that does not inject divergence. Scenario runs pass
	// Runtime.Plane so injected divergence reaches the monitor.
	Control *control.Plane
	// OnEvent receives every localized detection as it happens.
	OnEvent func(e Event)
	// OnWindow receives every closed window after scoring but before
	// the learned model observes it — the hook experiment harnesses use
	// to snapshot the baseline in effect when the window was checked.
	OnWindow func(ws WindowScore)
	// Remediate, when set, attaches the closed-loop control plane:
	// alert confirmation, link quarantine, re-baseline, and probed
	// re-admission with flap damping. Use &remediate.Config{} for the
	// defaults.
	Remediate *remediate.Config
	// Resilience, when set (requires Remediate), extends the loop into
	// the workload: quarantines that degrade a leaf below the recovery
	// target re-plan the collective (re-rank or degraded-mode ring) on
	// the job bound via BindWorkload, and the predictors re-baseline
	// against the new demand matrix. Use &resilience.Config{} for the
	// defaults. Not supported with the simulation model, whose
	// reference run cannot be re-derived for a new schedule.
	Resilience *resilience.Config
	// TracePath, when set, records the run — windows with their live
	// predictions, events, remediation, fault schedule — to a .fpt
	// trace file for offline replay (see internal/trace). Trace streams
	// to an existing Writer instead (the caller keeps ownership); set
	// at most one of the two. TraceLabel annotates the trace header.
	TracePath  string
	Trace      *trace.Writer
	TraceLabel string
}

// System is a running FlowPulse deployment over one network: one
// job's monitor.Pipeline (embedded — Events, Windows, Scores, and
// Subscribe are the pipeline's) fed by a per-leaf telemetry collector.
type System struct {
	cfg        Config
	collector  *telemetry.Collector
	detector   *detect.Detector
	localizer  *localize.Localizer
	learned    *predict.Learned // nil unless Kind == LearnedModel
	pred       predict.Predictor
	faults     *predict.FaultSet
	remediator *remediate.Remediator // nil unless Config.Remediate set
	plane      *control.Plane
	trc        *trace.Writer // nil unless tracing

	replanner *resilience.Replanner // nil unless Config.Resilience set
	job       *workload.Job         // set by BindWorkload

	*monitor.Pipeline
}

// WindowScore pairs a window with its detector score (an alias of the
// monitor package's WindowScore).
type WindowScore = monitor.WindowScore

// Attach deploys FlowPulse on a network. It registers telemetry hooks
// on every leaf; the caller then runs the workload and reads Events.
func Attach(cfg Config) (*System, error) {
	if cfg.Net == nil || cfg.Stack == nil {
		return nil, fmt.Errorf("core: Config.Net and Config.Stack are required")
	}
	if cfg.Kind == "" {
		cfg.Kind = AnalyticalModel
	}
	topo := cfg.Net.Topology()
	if cfg.Control == nil {
		cfg.Control = control.New(control.Config{Verify: true}, cfg.Net)
	}

	s := &System{cfg: cfg, faults: predict.NewFaultSet(), plane: cfg.Control}
	var err error
	// The predictor reads the control plane's *believed* FIB, not the
	// fabric's: that seam is what lets an injected belief error
	// propagate into wrong expectations the way a production
	// controller's stale model would. Belief and truth are identical
	// (bit for bit — same table-build code, same predicate) unless
	// divergence is injected.
	s.pred, s.learned, err = buildPredictor(topo, s.plane, cfg.Stack, cfg.Kind, predictorOptions{
		Demand: cfg.Demand, ReferenceWindows: cfg.ReferenceWindows, Learned: cfg.Learned,
	}, s.faults)
	if err != nil {
		return nil, err
	}

	s.detector = detect.New(topo, s.pred, cfg.Detect)
	s.detector.SetKnownFaults(s.faults)
	s.localizer = localize.New(topo, s.detector.Threshold(), 0)
	if cfg.Remediate != nil {
		s.remediator = remediate.New(s.plane, s.faults, func() { s.Rebaseline() }, *cfg.Remediate)
	}
	if cfg.Resilience != nil {
		if s.remediator == nil {
			return nil, fmt.Errorf("core: Config.Resilience requires Config.Remediate (re-plans are quarantine-triggered)")
		}
		if cfg.Kind == SimulationModel {
			return nil, fmt.Errorf("core: Resilience is not supported with the simulation model: its reference run was recorded for the original schedule and cannot be re-derived mid-job")
		}
		// A re-plan migrates flows onto surviving paths whose RTTs the
		// transport's per-pair estimators have not seen; without pair-
		// level timer backoff the stale timeouts melt down into a
		// self-sustaining spurious-retransmission storm on the repair
		// seam (see transport.Config.PairBackoff).
		cfg.Stack.EnableMigrationHardening()
		// The hooks fire before the remediation loop's own rebaseline,
		// so the re-planned demand matrix is what the single
		// post-quarantine (or post-re-admission) rebaseline computes
		// from. They no-op until BindWorkload supplies the job.
		s.remediator.OnQuarantine = func(now sim.Time, link topology.LinkID) {
			if s.replanner != nil {
				s.applyPlan(s.replanner.NoteQuarantine(now, link), link)
			}
		}
		s.remediator.OnReadmit = func(now sim.Time, link topology.LinkID) {
			if s.replanner != nil {
				s.applyPlan(s.replanner.NoteReadmit(now, link), link)
			}
		}
	}
	if err := s.attachTrace(topo, cfg); err != nil {
		return nil, err
	}
	if s.trc != nil {
		// The trace hooks wrap the caller's: the window record is
		// written (with the prediction the detector is about to
		// consume) before detection runs, and every event/action folds
		// into the writer's fingerprint as it is emitted.
		userEvent, userWindow := cfg.OnEvent, cfg.OnWindow
		cfg.OnEvent = func(e Event) {
			s.trc.Event(e)
			if userEvent != nil {
				userEvent(e)
			}
		}
		cfg.OnWindow = func(ws WindowScore) {
			s.trc.WindowOf(s.pred, ws.Window)
			if userWindow != nil {
				userWindow(ws)
			}
		}
		if s.remediator != nil {
			s.remediator.OnAction = s.trc.Action
			s.remediator.OnProbeRound = s.trc.ProbeRound
		}
	}
	pc := monitor.PipelineConfig{
		Pred:     s.pred,
		Detect:   s.detector,
		Localize: s.localizer,
		OnEvent:  cfg.OnEvent,
		OnWindow: cfg.OnWindow,
	}
	if s.learned != nil {
		pc.Observer = s.learned
	}
	if s.remediator != nil {
		pc.Remediate = s.remediator
	}
	s.Pipeline = monitor.NewPipeline(pc)
	s.collector = telemetry.AttachAll(cfg.Net, cfg.Job, s.Pipeline.OnWindow)
	return s, nil
}

// predictorOptions carries the model-specific knobs of buildPredictor.
type predictorOptions struct {
	Demand           *collective.DemandMatrix
	ReferenceWindows []*telemetry.Window
	Learned          predict.LearnedConfig
}

// buildPredictor constructs one of §5.2's load models; faults is the
// known-fault set the analytical model consults.
func buildPredictor(topo *topology.Topology, fib predict.FIBView, stack *transport.Stack,
	kind PredictorKind, o predictorOptions, faults *predict.FaultSet) (predict.Predictor, *predict.Learned, error) {
	switch kind {
	case AnalyticalModel:
		if o.Demand == nil {
			return nil, nil, fmt.Errorf("core: analytical model needs Config.Demand")
		}
		a := predict.NewAnalytical(topo, fib, stack, o.Demand)
		a.SetFaults(faults)
		return a, nil, nil
	case SimulationModel:
		sp, err := predict.NewSimulation(len(topo.Leaves()), o.ReferenceWindows)
		if err != nil {
			return nil, nil, fmt.Errorf("core: simulation model: %w", err)
		}
		return sp, nil, nil
	case LearnedModel:
		l := predict.NewLearned(len(topo.Leaves()), o.Learned)
		return l, l, nil
	}
	return nil, nil, fmt.Errorf("core: unknown predictor kind %q", kind)
}

// MustAttach is Attach for statically valid configurations.
func MustAttach(cfg Config) *System {
	s, err := Attach(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Predictor returns the active load model.
func (s *System) Predictor() predict.Predictor { return s.pred }

// Detector returns the deviation detector.
func (s *System) Detector() *detect.Detector { return s.detector }

// Learned returns the learned model, or nil for other kinds.
func (s *System) Learned() *predict.Learned { return s.learned }

// Remediator returns the closed-loop remediation engine, or nil when
// Config.Remediate was not set.
func (s *System) Remediator() *remediate.Remediator { return s.remediator }

// ControlPlane returns the control plane holding the believed topology
// view. Never nil: Attach builds a verified plane when the caller does
// not supply one.
func (s *System) ControlPlane() *control.Plane { return s.plane }

// Replanner returns the workload re-planner, or nil until a job is
// bound (or when Config.Resilience was not set).
func (s *System) Replanner() *resilience.Replanner { return s.replanner }

// BindWorkload connects the training job the resilience loop repairs.
// The re-planner is armed with the job's current ring order; from then
// on a quarantine that degrades a leaf below the recovery target
// re-plans the collective at the job's next iteration barrier. A no-op
// when Config.Resilience was not set; errors when the job's collective
// cannot be re-planned.
func (s *System) BindWorkload(j *workload.Job) error {
	if s.cfg.Resilience == nil {
		return nil
	}
	coll := j.Collective()
	if _, ok := coll.(collective.Replannable); !ok {
		return fmt.Errorf("core: resilience needs a re-plannable collective, %s is not", coll.Name())
	}
	s.job = j
	s.replanner = resilience.New(s.cfg.Net.Topology(), coll.Demand().Hosts, *s.cfg.Resilience)
	return nil
}

// applyPlan executes one re-plan decision: record it on the
// remediation timeline (and in the trace), swap the job's collective
// at its next iteration barrier, and point the analytical model at the
// new demand matrix. The caller is the quarantine/re-admission hook,
// which fires before the remediation loop's own rebaseline — that
// single rebaseline then recomputes the baseline for the new schedule.
func (s *System) applyPlan(p *resilience.Plan, link topology.LinkID) {
	if p == nil || s.job == nil {
		return
	}
	kind := remediate.ActionReplan
	if p.Kind == resilience.PlanRestore {
		kind = remediate.ActionRestore
	}
	s.remediator.RecordWorkload(remediate.Action{At: p.At, Kind: kind, Link: link, Detail: p.Detail})
	// Re-plans change no fabric state, but they are control-plane
	// decisions: log them on the ChangeSet ledger so an audit of "what
	// did the controller decide and when" reads one source.
	s.plane.Note(p.At, kind.String(), p.Detail)
	next := s.job.Collective().(collective.Replannable).Replan(p.Group)
	s.job.Replan(next)
	if ds, ok := s.pred.(interface {
		SetDemand(*collective.DemandMatrix)
	}); ok {
		ds.SetDemand(next.Demand())
	}
}

// KnownFaults returns the control plane's known-fault set: links
// confirmed faulty and currently quarantined. The analytical model and
// the detector consult it; quarantine mutates it.
func (s *System) KnownFaults() *predict.FaultSet { return s.faults }

// Rebaseline asks the active load model to recompute its baseline
// against the current routing state, known-fault set, and demand
// matrix, and reports whether the model supports it. The simulation
// model responds by discarding its stale per-iteration reference
// windows (falling back to its run-average profile) — honest
// blindness, since its reference run cannot be re-derived online.
func (s *System) Rebaseline() bool {
	rb, ok := s.pred.(predict.Rebaseliner)
	if ok {
		rb.Rebaseline()
	}
	return ok
}

// Flush closes all open telemetry windows (end of training) and, when
// recording, seals the trace (trailer + fingerprint; check
// TraceWriter().Err for I/O errors).
func (s *System) Flush(now sim.Time) {
	s.collector.FlushAll(now)
	if s.trc != nil {
		s.trc.Finish(now)
	}
}
