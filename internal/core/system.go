// Package core assembles FlowPulse (§5, Fig 1): per-leaf telemetry
// monitors feeding a load model, a deviation detector, and a
// localizer — continuous, in-switch, coordination-free monitoring of a
// training job for silent network faults.
package core

import (
	"fmt"

	"flowpulse/internal/collective"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/transport"
)

// PredictorKind selects one of §5.2's load models.
type PredictorKind string

// The three prediction methods of §5.2.
const (
	// AnalyticalModel is the closed-form d/(s−f) model.
	AnalyticalModel PredictorKind = "analytical"
	// SimulationModel replays a reference simulation with known faults
	// only.
	SimulationModel PredictorKind = "simulation"
	// LearnedModel measures the first iterations and re-baselines
	// after transient faults heal.
	LearnedModel PredictorKind = "learned"
)

// Event is one detection, optionally localized.
type Event struct {
	Alert   detect.Alert
	Verdict localize.Verdict
}

// Config assembles a System.
type Config struct {
	// Net and Stack are the fabric and transport under observation.
	Net   *fabric.Network
	Stack *transport.Stack
	// Demand is the measured collective's demand matrix (required for
	// the analytical model; used by all for localization references).
	Demand *collective.DemandMatrix
	// Kind selects the load model. Defaults to AnalyticalModel.
	Kind PredictorKind
	// ReferenceWindows feed the simulation model (see ReferenceRun).
	ReferenceWindows []*telemetry.Window
	// Learned tunes the learned model.
	Learned predict.LearnedConfig
	// Detect tunes the detector (threshold defaults to the paper's 1%).
	Detect detect.Config
	// Job filters measurement to one job id; telemetry.JobAny measures
	// all sentinel-tagged traffic.
	Job int
	// OnEvent receives every localized detection as it happens.
	OnEvent func(e Event)
	// OnWindow receives every closed window after scoring but before
	// the learned model observes it — the hook experiment harnesses use
	// to snapshot the baseline in effect when the window was checked.
	OnWindow func(ws WindowScore)
	// Remediate, when set, attaches the closed-loop control plane:
	// alert confirmation, link quarantine, re-baseline, and probed
	// re-admission with flap damping. Use &remediate.Config{} for the
	// defaults.
	Remediate *remediate.Config
}

// System is a running FlowPulse deployment over one network.
type System struct {
	cfg        Config
	collector  *telemetry.Collector
	detector   *detect.Detector
	localizer  *localize.Localizer
	learned    *predict.Learned // nil unless Kind == LearnedModel
	pred       predict.Predictor
	faults     *predict.FaultSet
	remediator *remediate.Remediator // nil unless Config.Remediate set
	subs       []func(e Event)

	// Events accumulates every detection with its localization.
	Events []Event
	// Windows counts closed windows processed.
	Windows int
	// Scores holds (per closed window, in arrival order) the max
	// absolute deviation and the window itself — the ROC analysis
	// input.
	Scores []WindowScore
}

// WindowScore pairs a window with its detector score.
type WindowScore struct {
	Window *telemetry.Window
	Score  float64
	// Scored is false while the model is warming up.
	Scored bool
}

// Attach deploys FlowPulse on a network. It registers telemetry hooks
// on every leaf; the caller then runs the workload and reads Events.
func Attach(cfg Config) (*System, error) {
	if cfg.Net == nil || cfg.Stack == nil {
		return nil, fmt.Errorf("core: Config.Net and Config.Stack are required")
	}
	if cfg.Kind == "" {
		cfg.Kind = AnalyticalModel
	}
	topo := cfg.Net.Topology()

	s := &System{cfg: cfg, faults: predict.NewFaultSet()}
	switch cfg.Kind {
	case AnalyticalModel:
		if cfg.Demand == nil {
			return nil, fmt.Errorf("core: analytical model needs Config.Demand")
		}
		a := predict.NewAnalytical(topo, cfg.Net, cfg.Stack, cfg.Demand)
		a.SetFaults(s.faults)
		s.pred = a
	case SimulationModel:
		sp, err := predict.NewSimulation(len(topo.Leaves()), cfg.ReferenceWindows)
		if err != nil {
			return nil, fmt.Errorf("core: simulation model: %w", err)
		}
		s.pred = sp
	case LearnedModel:
		s.learned = predict.NewLearned(len(topo.Leaves()), cfg.Learned)
		s.pred = s.learned
	default:
		return nil, fmt.Errorf("core: unknown predictor kind %q", cfg.Kind)
	}

	s.detector = detect.New(topo, s.pred, cfg.Detect)
	s.detector.SetKnownFaults(s.faults)
	s.localizer = localize.New(topo, s.detector.Threshold(), 0)
	if cfg.Remediate != nil {
		s.remediator = remediate.New(cfg.Net, s.faults, func() { s.Rebaseline() }, *cfg.Remediate)
	}
	s.collector = telemetry.AttachAll(cfg.Net, cfg.Job, s.onWindow)
	return s, nil
}

// MustAttach is Attach for statically valid configurations.
func MustAttach(cfg Config) *System {
	s, err := Attach(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Predictor returns the active load model.
func (s *System) Predictor() predict.Predictor { return s.pred }

// Detector returns the deviation detector.
func (s *System) Detector() *detect.Detector { return s.detector }

// Learned returns the learned model, or nil for other kinds.
func (s *System) Learned() *predict.Learned { return s.learned }

// Remediator returns the closed-loop control plane, or nil when
// Config.Remediate was not set.
func (s *System) Remediator() *remediate.Remediator { return s.remediator }

// KnownFaults returns the control plane's known-fault set: links
// confirmed faulty and currently quarantined. The analytical model and
// the detector consult it; quarantine mutates it.
func (s *System) KnownFaults() *predict.FaultSet { return s.faults }

// Subscribe registers a callback for every localized detection.
// Ordering guarantee: callbacks run synchronously from the window-close
// path — after the event is appended to Events and after Config.OnEvent
// — in subscription order; events arrive in window-close order (per
// leaf, ascending iteration) and, within one window, in ascending
// uplink order. Subscribe must not be called from inside a callback.
func (s *System) Subscribe(fn func(e Event)) {
	if fn == nil {
		panic("core: Subscribe(nil)")
	}
	s.subs = append(s.subs, fn)
}

// Rebaseline asks the active load model to recompute its baseline
// against the current routing state and known-fault set. It reports
// false for the simulation model, whose reference windows were
// recorded under the old routing state and cannot be refreshed.
func (s *System) Rebaseline() bool {
	rb, ok := s.pred.(predict.Rebaseliner)
	if ok {
		rb.Rebaseline()
	}
	return ok
}

// Flush closes all open telemetry windows (end of training).
func (s *System) Flush(now sim.Time) { s.collector.FlushAll(now) }

// onWindow is the per-leaf window-close path: score, detect, localize,
// then let the learned model observe.
func (s *System) onWindow(w *telemetry.Window) {
	s.Windows++
	wc := w.Clone()
	score, ok := s.detector.Score(wc)
	ws := WindowScore{Window: wc, Score: score, Scored: ok}
	s.Scores = append(s.Scores, ws)
	if s.cfg.OnWindow != nil {
		s.cfg.OnWindow(ws)
	}

	alerts := s.detector.Check(wc)
	for _, a := range alerts {
		e := Event{Alert: a}
		if s.pred.Ready(a.LeafOrdinal) {
			senders := s.pred.SenderLoad(a.LeafOrdinal)
			if ip, ok := s.pred.(predict.IterPredictor); ok {
				senders = ip.SenderLoadAt(a.LeafOrdinal, a.Iter)
			}
			e.Verdict = s.localizer.Localize(a, wc, senders)
		}
		s.Events = append(s.Events, e)
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(e)
		}
		for _, fn := range s.subs {
			fn(e)
		}
		if s.remediator != nil {
			s.remediator.Observe(e.Alert, e.Verdict)
		}
	}

	if s.learned != nil {
		s.learned.Observe(wc)
	}
	if s.remediator != nil {
		s.remediator.Tick(wc.ClosedAt)
	}
}

// IterationScores aggregates window scores per iteration across all
// leaves: the system-level statistic "was any port on any leaf
// deviant during iteration k" (the classifier the evaluation rates).
func (s *System) IterationScores() map[uint32]float64 {
	out := map[uint32]float64{}
	for _, ws := range s.Scores {
		if !ws.Scored {
			continue
		}
		if ws.Score > out[ws.Window.Iter] {
			out[ws.Window.Iter] = ws.Score
		}
	}
	return out
}
