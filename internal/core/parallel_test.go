package core

import (
	"hash/fnv"
	"os"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"flowpulse/internal/collective"
	"flowpulse/internal/fabric"
	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/workload"
)

// fp64 is a running FNV-64a over uint64 words.
type fp64 struct{ h interface{ Sum64() uint64 } }

func newFP() (*fp64, func(v uint64)) {
	h := fnv.New64a()
	write := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return &fp64{h: h}, write
}

// fatTreeFingerprint runs one full scenario — training, jitter,
// background noise, a mid-run silent fault, telemetry — at the given
// shard count and fingerprints the whole observable surface: every
// closed window, the final clock, and the fabric/transport counters.
func fatTreeFingerprint(t *testing.T, sc Scenario, shards int) uint64 {
	t.Helper()
	sc.Shards = shards
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	fp, u64 := newFP()
	coll := telemetry.AttachAll(rt.Net, int(sc.Job), func(w *telemetry.Window) {
		u64(uint64(w.Leaf))
		u64(uint64(w.Job))
		u64(uint64(w.Iter))
		u64(uint64(w.OpenedAt))
		u64(uint64(w.ClosedAt))
		u64(uint64(w.Packets))
		for _, b := range w.PortBytes {
			u64(uint64(b))
		}
		for _, b := range w.AggPortBytes {
			u64(uint64(b))
		}
	})

	rt.InjectSilentDrop(LeafSpineLink{LeafOrd: 1, SpineOrd: 0}, 0.02)
	rt.StartTraining(nil, nil)
	final := rt.Run()
	coll.FlushAll(rt.Engine.Now())

	if bad := rt.Net.AuditConservation(); len(bad) != 0 {
		t.Fatalf("shards=%d: conservation violated: %v", shards, bad)
	}
	u64(uint64(final))
	st := rt.Net.Stats()
	u64(st.Sent)
	u64(st.SentBytes)
	u64(st.Delivered)
	u64(st.DeliveredBytes)
	u64(st.PFCPauses)
	ts := rt.Stack.Stats()
	u64(ts.MessagesDelivered)
	u64(ts.DataPacketsSent)
	u64(ts.Retransmits)
	u64(ts.DuplicatesReceived)
	u64(ts.AcksSent)
	return fp.h.Sum64()
}

// TestShardedFingerprintAcrossWorkers is the end-to-end determinism
// contract: a sharded scenario produces bit-identical results for
// EVERY worker count — 1, 2, 3, GOMAXPROCS, and oversubscribed.
func TestShardedFingerprintAcrossWorkers(t *testing.T) {
	sc := Scenario{
		Leaves: 4, Spines: 3, HostsPerLeaf: 2,
		BytesPerRank: 64 << 10, Iterations: 3,
		JitterMax:  2 * sim.Microsecond,
		Background: 8 * sim.Microsecond,
		Seed:       11,
	}
	want := fatTreeFingerprint(t, sc, 1)
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		if got := fatTreeFingerprint(t, sc, w); got != want {
			t.Fatalf("shards=%d: fingerprint %x, want %x", w, got, want)
		}
	}
}

// TestShardedPropertyRandomFatTrees is the satellite testing/quick
// property: on randomly drawn fat-tree shapes and seeds, the event
// stream fingerprint is identical for shards ∈ {1, 2, GOMAXPROCS}.
func TestShardedPropertyRandomFatTrees(t *testing.T) {
	f := func(leavesSeed, spinesSeed, hostsSeed uint8, seed uint64) bool {
		sc := Scenario{
			Leaves:       2 + int(leavesSeed)%4,
			Spines:       2 + int(spinesSeed)%3,
			HostsPerLeaf: 1 + int(hostsSeed)%2,
			BytesPerRank: 32 << 10, Iterations: 2,
			JitterMax: sim.Microsecond,
			Seed:      seed%64 + 1,
		}
		want := fatTreeFingerprint(t, sc, 1)
		for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
			if fatTreeFingerprint(t, sc, w) != want {
				t.Logf("mismatch on %+v", sc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// clos3Fingerprint is fatTreeFingerprint for the three-level fabric,
// exercising both monitor levels and the core→spine fault path.
func clos3Fingerprint(t *testing.T, sc Clos3Scenario, shards int) uint64 {
	t.Helper()
	sc.Shards = shards
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	fp, u64 := newFP()
	coll := telemetry.AttachClos3(rt.Net, int(sc.Job), func(w *telemetry.Window) {
		u64(uint64(w.Leaf))
		u64(uint64(w.SwitchKind))
		u64(uint64(w.Iter))
		u64(uint64(w.ClosedAt))
		u64(uint64(w.Packets))
		for _, b := range w.PortBytes {
			u64(uint64(b))
		}
	})
	rt.InjectCoreSpineDrop(0, 0, 0, 0.03)
	rt.StartTraining(nil)
	final := rt.Run()
	coll.FlushAll(rt.Engine.Now())

	u64(uint64(final))
	st := rt.Net.Stats()
	u64(st.Sent)
	u64(st.Delivered)
	u64(st.DeliveredBytes)
	return fp.h.Sum64()
}

// TestShardedPropertyRandomClos3 draws random three-level Clos shapes
// and checks the same shards ∈ {1, 2, GOMAXPROCS} property.
func TestShardedPropertyRandomClos3(t *testing.T) {
	f := func(podsSeed, widthSeed uint8, seed uint64) bool {
		sc := Clos3Scenario{
			Pods:         2 + int(podsSeed)%2,
			LeavesPerPod: 2, SpinesPerPod: 2,
			CoresPerGroup: 1 + int(widthSeed)%2,
			BytesPerRank:  32 << 10, Iterations: 2,
			Seed: seed%64 + 1,
		}
		want := clos3Fingerprint(t, sc, 1)
		for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
			if clos3Fingerprint(t, sc, w) != want {
				t.Logf("mismatch on %+v", sc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSystemDetectsAndRemediates drives the FULL closed loop —
// telemetry, detection, localization, quarantine, probing, re-admission
// — on a sharded engine, checking that a silent fault is detected and
// that the control plane's actions are identical for every worker
// count.
func TestShardedSystemDetectsAndRemediates(t *testing.T) {
	run := func(shards int) (uint64, int) {
		sc := Scenario{
			Leaves: 6, Spines: 3, BytesPerRank: 256 << 10,
			Iterations: 8, Seed: 9, Shards: shards,
		}
		rt, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		sys, err := Attach(Config{
			Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(),
			Kind: AnalyticalModel, Job: int(sc.Job),
			Remediate: &remediate.Config{},
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.StartTraining(func(_ sim.Time, iter uint32) {
			if iter == 2 {
				rt.InjectSilentDrop(LeafSpineLink{LeafOrd: 2, SpineOrd: 1}, 0.05)
			}
		}, nil)
		rt.Run()
		sys.Flush(rt.Engine.Now())

		fp, u64 := newFP()
		for _, e := range sys.Events {
			u64(uint64(e.Alert.Leaf))
			u64(uint64(e.Alert.Uplink))
			u64(uint64(e.Alert.Iter))
		}
		u64(rt.Net.FIBRecomputes())
		u64(uint64(rt.Engine.Now()))
		return fp.h.Sum64(), len(sys.Events)
	}

	want, events := run(1)
	if events == 0 {
		t.Fatal("sharded system raised no detection events")
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if got, _ := run(w); got != want {
			t.Fatalf("shards=%d: control-plane fingerprint %x, want %x", w, got, want)
		}
	}
}

// TestShardedLargeClos3 is the scale smoke: a three-level Clos with a
// few thousand ranks runs a full ring iteration on the sharded engine
// without falling over — completes, conserves bytes, delivers every
// message. The datacenter-scale variant (tens of thousands of hosts,
// EXPERIMENTS.md "Large Clos") is the same scenario with
// FLOWPULSE_SCALE=big, kept out of the default suite for time.
func TestShardedLargeClos3(t *testing.T) {
	sc := Clos3Scenario{
		Pods: 4, LeavesPerPod: 8, SpinesPerPod: 4, CoresPerGroup: 2,
		HostsPerLeaf: 32, BytesPerRank: 64 << 10, Iterations: 1, Seed: 3,
		Shards: runtime.GOMAXPROCS(0),
	}
	if os.Getenv("FLOWPULSE_SCALE") == "big" {
		sc.Pods, sc.LeavesPerPod, sc.SpinesPerPod, sc.CoresPerGroup = 16, 16, 8, 4
		sc.HostsPerLeaf = 64
		sc.BytesPerRank = 16 << 20
	}
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	hosts := len(rt.Topo.Hosts)
	iters := 0
	t0 := time.Now()
	rt.StartTraining(func(sim.Time, uint32) { iters++ })
	final := rt.Run()
	t.Logf("%d hosts (%d domains, %d workers): %d iteration(s), %v simulated, %d messages, %v wall",
		hosts, rt.EngineGroup.Domains(), rt.EngineGroup.Workers(),
		iters, sim.Duration(final), rt.Stack.Stats().MessagesSent, time.Since(t0).Round(time.Millisecond))
	if iters != sc.Iterations {
		t.Fatalf("completed %d iterations, want %d", iters, sc.Iterations)
	}
	if bad := rt.Net.AuditConservation(); len(bad) != 0 {
		t.Fatalf("conservation violated: %v", bad[:min(len(bad), 3)])
	}
	if st := rt.Stack.Stats(); st.MessagesDelivered != st.MessagesSent {
		t.Fatalf("delivered %d of %d messages", st.MessagesDelivered, st.MessagesSent)
	}
}

// TestShardedAgreesWithLegacyInvariants compares the sharded schedule
// against the classic single-threaded one. The two schedules are NOT
// byte-identical (DESIGN.md decision 12: per-host message ids change
// the spray draws), but every schedule-independent quantity must
// agree: iterations completed, the reduced checksums (the reduction
// order is the ring's step order, not arrival order), and byte
// conservation.
func TestShardedAgreesWithLegacyInvariants(t *testing.T) {
	run := func(shards int) (iters int, vals [][]float64) {
		sc := Scenario{Leaves: 4, Spines: 2, BytesPerRank: 64 << 10, Iterations: 3, Seed: 5, Shards: shards}
		rt, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		job := workload.StartJob(rt.Stack, workload.JobConfig{
			Job: sc.Job, Collective: rt.Coll, Iterations: sc.Iterations,
			Priority: fabric.High, Sentinel: true, Seed: sc.Seed, TrackValues: true,
			OnIteration: func(_ sim.Time, _ uint32, res *collective.Result) {
				vals = res.Values
			},
		})
		rt.Run()
		if bad := rt.Net.AuditConservation(); len(bad) != 0 {
			t.Fatalf("shards=%d: conservation violated: %v", shards, bad)
		}
		return job.CompletedIterations, vals
	}

	legacyIters, legacyVals := run(0)
	shardIters, shardVals := run(runtime.GOMAXPROCS(0))
	if legacyIters != shardIters {
		t.Fatalf("iterations: legacy %d, sharded %d", legacyIters, shardIters)
	}
	if legacyIters != 3 {
		t.Fatalf("completed %d iterations, want 3", legacyIters)
	}
	if len(shardVals) != len(legacyVals) {
		t.Fatalf("value rows: legacy %d, sharded %d", len(legacyVals), len(shardVals))
	}
	for r := range legacyVals {
		for c := range legacyVals[r] {
			if legacyVals[r][c] != shardVals[r][c] {
				t.Fatalf("checksum [%d][%d]: legacy %v, sharded %v", r, c, legacyVals[r][c], shardVals[r][c])
			}
		}
	}
}
