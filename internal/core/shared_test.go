package core

import (
	"testing"

	"flowpulse/internal/remediate"
	"flowpulse/internal/sim"
)

// twoJobs is an 8×4 fat tree with two hosts per leaf and two
// concurrent full-span ring jobs, one per host column.
func twoJobs(seed uint64) Scenario {
	return Scenario{
		Leaves: 8, Spines: 4, HostsPerLeaf: 2,
		BytesPerRank: 4 << 20, Iterations: 5, Seed: seed,
		Jobs: []JobScenario{
			{Job: 1, HostIx: 0},
			{Job: 2, HostIx: 1},
		},
	}
}

func attachShared(t *testing.T, rt *Runtime, remCfg *remediate.Config) *SharedSystem {
	t.Helper()
	cfg := SharedConfig{Net: rt.Net, Stack: rt.Stack, Remediate: remCfg}
	for _, jr := range rt.Jobs {
		cfg.Jobs = append(cfg.Jobs, SharedJobConfig{
			Job: jr.Spec.Job, Demand: jr.Coll.Demand(), Kind: AnalyticalModel,
		})
	}
	sys, err := AttachShared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSharedPlaneCleanTwoJobs(t *testing.T) {
	sc := twoJobs(3)
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := attachShared(t, rt, nil)
	rt.StartAllJobs(nil, nil)
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())

	for _, job := range sys.Jobs() {
		p := sys.Pipeline(job)
		if p.Windows != sc.Leaves*sc.Iterations {
			t.Errorf("job %d: windows = %d, want %d", job, p.Windows, sc.Leaves*sc.Iterations)
		}
		if len(p.Events) != 0 {
			t.Errorf("job %d: clean run produced %d alerts: %v", job, len(p.Events), p.Events[0].Alert)
		}
	}
	if sys.Plane().UnroutedWindows() != 0 {
		t.Errorf("unrouted windows: %d", sys.Plane().UnroutedWindows())
	}
}

func TestSharedPlaneSharedFaultSeenByBothQuarantinedOnce(t *testing.T) {
	sc := twoJobs(5)
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := attachShared(t, rt, &remediate.Config{})

	bad := LeafSpineLink{LeafOrd: 4, SpineOrd: 1}
	rt.StartAllJobs(func(_ sim.Time, job uint16, iter uint32) {
		if job == 1 && iter == 2 {
			rt.InjectSilentDrop(bad, 0.05)
		}
	}, nil)
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())

	for _, job := range sys.Jobs() {
		if len(sys.Pipeline(job).Events) == 0 {
			t.Errorf("job %d did not see the shared fault", job)
		}
	}
	st := sys.Remediator().Stats()
	if st.Quarantines != 1 {
		t.Fatalf("shared fault quarantined %d times, want exactly once: %+v", st.Quarantines, st)
	}
	if sys.KnownFaults().Len() != 1 {
		t.Fatalf("known faults: %d, want 1", sys.KnownFaults().Len())
	}
}

func TestSharedPlaneJobLocalFaultFlagsOwnerOnly(t *testing.T) {
	sc := twoJobs(7)
	// Disjoint spans: job 1 on leaves 0–3, job 2 on leaves 4–7. A
	// fault at leaf 0 lives outside job 2's slice entirely. (Spans
	// must be identical or disjoint: a partially-overlapping span
	// inherits the other job's spray comb at its private leaves — see
	// DESIGN.md decision 10.)
	sc.Jobs[0].LeafCount = 4
	sc.Jobs[1].LeafFirst, sc.Jobs[1].LeafCount = 4, 4
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := attachShared(t, rt, nil)

	local := LeafSpineLink{LeafOrd: 0, SpineOrd: 2}
	rt.StartAllJobs(func(_ sim.Time, job uint16, iter uint32) {
		if job == 1 && iter == 2 {
			rt.InjectSilentDrop(local, 0.05)
		}
	}, nil)
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())

	if len(sys.Pipeline(1).Events) == 0 {
		t.Error("owning job missed its local fault")
	}
	if n := len(sys.Pipeline(2).Events); n != 0 {
		t.Errorf("bystander job raised %d alerts for a fault outside its ring", n)
	}
}

func TestScenarioJobsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(sc *Scenario)
	}{
		{"duplicate ids", func(sc *Scenario) { sc.Jobs[1].Job = 1 }},
		{"HostIx out of range", func(sc *Scenario) { sc.Jobs[1].HostIx = 2 }},
		{"leaf span too wide", func(sc *Scenario) { sc.Jobs[0].LeafFirst = 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := twoJobs(1)
			// Pin span so LeafFirst mutations overflow.
			sc.Jobs[0].LeafCount = 8
			tc.mut(&sc)
			if _, err := sc.Build(); err == nil {
				t.Fatal("invalid Jobs accepted")
			}
		})
	}
}
