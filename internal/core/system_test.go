package core

import (
	"math"
	"testing"

	"flowpulse/internal/localize"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
)

// small is a fast test scenario: 8 leaves, 4 spines, 4 MiB per rank.
// Per-port volume is ~496 packets, so the one-packet noise quantum is
// ~0.2% — comfortably under the 1% threshold.
func small(seed uint64) Scenario {
	return Scenario{Leaves: 8, Spines: 4, BytesPerRank: 4 << 20, Iterations: 5, Seed: seed}
}

func run(t *testing.T, sc Scenario, kind PredictorKind, refIters int,
	setup func(rt *Runtime, sys *System), onIter func(rt *Runtime, now sim.Time, iter uint32)) (*Runtime, *System) {
	t.Helper()
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(), Kind: kind, Job: int(sc.Job)}
	if kind == SimulationModel {
		ref, err := ReferenceRun(sc, refIters)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ReferenceWindows = ref
	}
	sys, err := Attach(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(rt, sys)
	}
	rt.StartTraining(func(now sim.Time, iter uint32) {
		if onIter != nil {
			onIter(rt, now, iter)
		}
	}, nil)
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())
	return rt, sys
}

func TestCleanRunRaisesNoAlerts(t *testing.T) {
	sc := small(1)
	sc.JitterMax = 5 * sim.Microsecond
	sc.Background = 4 * sim.Microsecond
	_, sys := run(t, sc, AnalyticalModel, 0, nil, nil)
	if len(sys.Events) != 0 {
		t.Fatalf("clean run produced %d alerts: %v", len(sys.Events), sys.Events[0].Alert)
	}
	if sys.Windows != sc.Leaves*sc.Iterations {
		t.Fatalf("windows = %d, want %d", sys.Windows, sc.Leaves*sc.Iterations)
	}
	// Temporal symmetry: every scored deviation is tiny.
	for _, ws := range sys.Scores {
		if ws.Scored && ws.Score > 0.01 {
			t.Fatalf("clean window score %v exceeds threshold", ws.Score)
		}
	}
}

func TestAnalyticalDetectsSilentFault(t *testing.T) {
	sc := small(2)
	ref := LeafSpineLink{LeafOrd: 3, SpineOrd: 1}
	_, sys := run(t, sc, AnalyticalModel, 0, func(rt *Runtime, _ *System) {
		rt.InjectSilentDrop(ref, 0.03)
	}, nil)
	if len(sys.Events) == 0 {
		t.Fatal("3% silent fault not detected")
	}
	// Every deficit alert must be at leaf 3's spine-1 port.
	deficits := 0
	for _, e := range sys.Events {
		if e.Alert.Deviation >= 0 {
			continue // retransmit spillover surpluses are possible
		}
		deficits++
		if e.Alert.LeafOrdinal != 3 || e.Alert.Uplink != 1 {
			t.Fatalf("deficit at leaf %d uplink %d, want 3/1", e.Alert.LeafOrdinal, e.Alert.Uplink)
		}
	}
	if deficits == 0 {
		t.Fatal("no deficit alerts")
	}
}

func TestDetectionIsImmediate(t *testing.T) {
	// A fault injected before iteration 3 must alert in iteration 3's
	// window — detection latency is one iteration by construction.
	sc := small(3)
	ref := LeafSpineLink{LeafOrd: 5, SpineOrd: 2}
	_, sys := run(t, sc, AnalyticalModel, 0, nil, func(rt *Runtime, _ sim.Time, iter uint32) {
		if iter == 2 {
			rt.InjectSilentDrop(ref, 0.05)
		}
	})
	if len(sys.Events) == 0 {
		t.Fatal("fault not detected")
	}
	first := sys.Events[0].Alert
	if first.Iter != 3 {
		t.Fatalf("first alert in iteration %d, want 3", first.Iter)
	}
	// Iterations 1-2 must be clean.
	for _, e := range sys.Events {
		if e.Alert.Iter < 3 {
			t.Fatalf("alert before fault injection: %v", e.Alert)
		}
	}
}

func TestSimulationModelDetects(t *testing.T) {
	sc := small(4)
	sc.Background = 4 * sim.Microsecond // reference captures noisy conditions too
	ref := LeafSpineLink{LeafOrd: 2, SpineOrd: 3}
	_, sys := run(t, sc, SimulationModel, 3, func(rt *Runtime, _ *System) {
		rt.InjectSilentDrop(ref, 0.03)
	}, nil)
	if len(sys.Events) == 0 {
		t.Fatal("simulation model missed the fault")
	}
	for _, e := range sys.Events {
		if e.Alert.Deviation < 0 && (e.Alert.LeafOrdinal != 2 || e.Alert.Uplink != 3) {
			t.Fatalf("deficit at wrong port: %v", e.Alert)
		}
	}
}

func TestSimulationModelCleanRunSilent(t *testing.T) {
	sc := small(5)
	_, sys := run(t, sc, SimulationModel, 3, nil, nil)
	if len(sys.Events) != 0 {
		t.Fatalf("simulation model false-alerted: %v", sys.Events[0].Alert)
	}
}

func TestLearnedModelWarmupThenDetect(t *testing.T) {
	sc := small(6)
	sc.Iterations = 8
	ref := LeafSpineLink{LeafOrd: 1, SpineOrd: 0}
	_, sys := run(t, sc, LearnedModel, 0, nil, func(rt *Runtime, _ sim.Time, iter uint32) {
		if iter == 5 {
			rt.InjectSilentDrop(ref, 0.05)
		}
	})
	if len(sys.Events) == 0 {
		t.Fatal("learned model missed the fault")
	}
	for _, e := range sys.Events {
		if e.Alert.Iter <= 5 {
			t.Fatalf("alert during warmup/clean phase: %v", e.Alert)
		}
	}
}

func TestLearnedModelRebaselinesAfterTransient(t *testing.T) {
	// Fig 3 end to end: a fault present from the start (during warmup)
	// heals after iteration 6. The learned baseline absorbed the fault,
	// so the healed network looks anomalous — until the model observes
	// the healthier distribution and re-baselines.
	sc := small(7)
	sc.Iterations = 14
	ref := LeafSpineLink{LeafOrd: 4, SpineOrd: 2}
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Heavy transient fault so the warmup baseline is clearly skewed.
	rt.InjectSilentDrop(ref, 0.2)
	sys := MustAttach(Config{Net: rt.Net, Stack: rt.Stack, Demand: rt.Coll.Demand(), Kind: LearnedModel, Job: int(sc.Job)})
	rt.StartTraining(func(_ sim.Time, iter uint32) {
		if iter == 6 {
			rt.ClearSilent(ref)
		}
	}, nil)
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())

	if sys.Learned().Rebaselines == 0 {
		t.Fatal("learned model never re-baselined after the transient healed")
	}
	// After re-baselining, later iterations must be quiet again.
	last := sys.Events[len(sys.Events)-1].Alert
	if last.Iter >= 13 {
		t.Fatalf("still alerting at iteration %d after rebaseline", last.Iter)
	}
}

func TestPreExistingFaultsThenNewFault(t *testing.T) {
	// §6 "Effect of pre-existing faults": known disconnections skew the
	// expected distribution but the model accounts for them; only the
	// NEW silent fault alerts.
	sc := small(8)
	sc.PreExisting = []LeafSpineLink{
		{LeafOrd: 0, SpineOrd: 0},
		{LeafOrd: 6, SpineOrd: 2},
	}
	newFault := LeafSpineLink{LeafOrd: 3, SpineOrd: 3}
	_, sys := run(t, sc, AnalyticalModel, 0, nil, func(rt *Runtime, _ sim.Time, iter uint32) {
		if iter == 2 {
			rt.InjectSilentDrop(newFault, 0.04)
		}
	})
	if len(sys.Events) == 0 {
		t.Fatal("new fault not detected among pre-existing ones")
	}
	for _, e := range sys.Events {
		if e.Alert.Iter <= 2 {
			t.Fatalf("pre-existing faults caused an alert: %v", e.Alert)
		}
		if e.Alert.Deviation < 0 && (e.Alert.LeafOrdinal != 3 || e.Alert.Uplink != 3) {
			t.Fatalf("deficit at wrong location: %v", e.Alert)
		}
	}
}

func TestLocalizationLocalVsRemote(t *testing.T) {
	// Fig 4 end to end, using AllToAll so each ingress port carries
	// multiple senders.
	base := Scenario{Leaves: 8, Spines: 4, Collective: AllToAllKind, BytesPerRank: 8 << 20, Iterations: 4, Seed: 9}

	t.Run("local", func(t *testing.T) {
		ref := LeafSpineLink{LeafOrd: 5, SpineOrd: 1}
		rt, sys := run(t, base, AnalyticalModel, 0, func(rt *Runtime, _ *System) {
			rt.InjectSilentDrop(ref, 0.2) // downstream: all senders affected
		}, nil)
		verdictCount := 0
		for _, e := range sys.Events {
			if e.Alert.Deviation >= 0 || e.Alert.LeafOrdinal != 5 {
				continue
			}
			verdictCount++
			if e.Verdict.Kind != localize.LocalLink {
				t.Fatalf("verdict %v, want local-link", e.Verdict)
			}
			if len(e.Verdict.Links) != 1 || e.Verdict.Links[0] != rt.Link(ref) {
				t.Fatalf("blamed %v, want link %d", e.Verdict.Links, rt.Link(ref))
			}
		}
		if verdictCount == 0 {
			t.Fatal("no localized deficit alerts")
		}
	})

	t.Run("remote", func(t *testing.T) {
		ref := LeafSpineLink{LeafOrd: 2, SpineOrd: 1}
		rt, sys := run(t, base, AnalyticalModel, 0, func(rt *Runtime, _ *System) {
			rt.InjectSilentDropUpstream(ref, 0.2) // upstream: only leaf 2's traffic suffers
		}, nil)
		// The per-sender noise floor under all-to-all makes occasional
		// misattributions possible; the correct remote link must win by
		// majority.
		right, wrong := 0, 0
		for _, e := range sys.Events {
			if e.Verdict.Kind != localize.RemoteLink {
				continue
			}
			found := false
			for _, l := range e.Verdict.Links {
				if l == rt.Link(ref) {
					found = true
				}
			}
			if found {
				right++
			} else {
				wrong++
			}
		}
		if right == 0 {
			t.Fatal("no remote-link verdicts blame the faulty link")
		}
		if wrong >= right {
			t.Fatalf("misattributions (%d) outnumber correct verdicts (%d)", wrong, right)
		}
	})
}

func TestIterationScores(t *testing.T) {
	sc := small(10)
	ref := LeafSpineLink{LeafOrd: 3, SpineOrd: 1}
	_, sys := run(t, sc, AnalyticalModel, 0, func(rt *Runtime, _ *System) {
		rt.InjectSilentDrop(ref, 0.05)
	}, nil)
	scores := sys.IterationScores()
	if len(scores) == 0 {
		t.Fatal("no iteration scores")
	}
	for iter, s := range scores {
		if s < 0.01 {
			t.Fatalf("iteration %d score %v under threshold despite 5%% fault", iter, s)
		}
		if math.IsNaN(s) {
			t.Fatal("NaN score")
		}
	}
}

func TestAttachValidation(t *testing.T) {
	if _, err := Attach(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	sc := small(11)
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(Config{Net: rt.Net, Stack: rt.Stack, Kind: AnalyticalModel}); err == nil {
		t.Error("analytical without demand accepted")
	}
	if _, err := Attach(Config{Net: rt.Net, Stack: rt.Stack, Kind: "bogus", Demand: rt.Coll.Demand()}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Attach(Config{Net: rt.Net, Stack: rt.Stack, Kind: SimulationModel}); err == nil {
		t.Error("simulation without reference accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := (Scenario{Leaves: 1}).Build(); err == nil {
		t.Error("degenerate topology accepted")
	}
	if _, err := (Scenario{Collective: "nope"}).Build(); err == nil {
		t.Error("unknown collective accepted")
	}
	if _, err := (Scenario{PreExisting: []LeafSpineLink{{LeafOrd: 99, SpineOrd: 0}}}).Build(); err == nil {
		t.Error("out-of-range pre-existing link accepted")
	}
}

func TestReferenceRunDeterministic(t *testing.T) {
	sc := small(12)
	a, err := ReferenceRun(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReferenceRun(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("window counts differ: %d vs %d", len(a), len(b))
	}
	key := func(w *telemetry.Window) [4]int64 {
		return [4]int64{int64(w.LeafOrdinal), int64(w.Iter), w.Total(), w.Packets}
	}
	for i := range a {
		if key(a[i]) != key(b[i]) {
			t.Fatalf("reference runs diverge at window %d", i)
		}
	}
}
