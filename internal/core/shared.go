package core

import (
	"fmt"

	"flowpulse/internal/collective"
	"flowpulse/internal/control"
	"flowpulse/internal/detect"
	"flowpulse/internal/fabric"
	"flowpulse/internal/localize"
	"flowpulse/internal/monitor"
	"flowpulse/internal/predict"
	"flowpulse/internal/remediate"
	"flowpulse/internal/resilience"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
	"flowpulse/internal/trace"
	"flowpulse/internal/transport"
	"flowpulse/internal/workload"
)

// SharedJobConfig configures one job's pipeline on the shared
// monitoring plane: its load model and detector tuning. The fields
// mirror the job-scoped subset of Config.
type SharedJobConfig struct {
	// Job is the job id this pipeline owns.
	Job uint16
	// Demand is this job's demand matrix (required for the analytical
	// model).
	Demand *collective.DemandMatrix
	// Kind selects the load model. Defaults to AnalyticalModel.
	Kind PredictorKind
	// ReferenceWindows feed the simulation model.
	ReferenceWindows []*telemetry.Window
	// Learned tunes the learned model.
	Learned predict.LearnedConfig
	// Detect tunes the detector.
	Detect detect.Config
	// OnEvent and OnWindow are this job's pipeline hooks.
	OnEvent  func(e Event)
	OnWindow func(ws WindowScore)
}

// SharedConfig assembles a SharedSystem: one tap, many pipelines, one
// arbiter.
type SharedConfig struct {
	// Net and Stack are the fabric and transport under observation.
	Net   *fabric.Network
	Stack *transport.Stack
	// Jobs lists the monitored jobs. Order is the plane's registration
	// order (deterministic fan-out and flush).
	Jobs []SharedJobConfig
	// Remediate, when set, attaches ONE closed-loop control plane
	// shared by every pipeline: quarantine is fabric-scoped (an
	// admin-down reroutes everyone), so a link confirmed through any
	// job's windows — or corroborated across jobs — is quarantined
	// exactly once.
	Remediate *remediate.Config
	// Resilience, when set (requires Remediate), re-plans every bound
	// job's collective when a quarantine degrades a leaf below the
	// recovery target. Quarantine is fabric-scoped, so one event can
	// re-plan several jobs; each keeps its own re-planner (its own ring,
	// its own capacity exposure). Bind jobs with BindWorkload. Not
	// supported for jobs on the simulation model.
	Resilience *resilience.Config
	// Control is the (single, fabric-scoped) control plane holding the
	// believed topology view. Exactly one per fabric: every job's
	// predictor reads its believed FIB and the shared remediator
	// mutates links only through it. Nil builds a fresh verified plane
	// over Net.
	Control *control.Plane
	// TracePath records the whole plane — every job's windows, events,
	// and the shared remediation stream — to one .fpt trace file (see
	// internal/trace); Trace streams to an existing Writer instead. Set
	// at most one. TraceLabel annotates the trace header.
	TracePath  string
	Trace      *trace.Writer
	TraceLabel string
}

// SharedSystem is FlowPulse deployed over a multi-job fabric (§7
// "Parallel Jobs"): one telemetry tap per switch feeding per-job
// monitor.Pipelines through a monitor.Plane, with a single shared
// known-fault set and (optionally) a single shared remediator.
type SharedSystem struct {
	cfg        SharedConfig
	plane      *monitor.Plane
	ctrl       *control.Plane
	faults     *predict.FaultSet
	remediator *remediate.Remediator // nil unless SharedConfig.Remediate set
	trc        *trace.Writer         // nil unless tracing
	preds      map[uint16]predict.Predictor

	// bound tracks the jobs wired into the resilience loop, in binding
	// order (deterministic multi-job re-plan fan-out).
	bound []*sharedBinding
}

// sharedBinding pairs one bound job with its re-planner.
type sharedBinding struct {
	job    uint16
	j      *workload.Job
	replan *resilience.Replanner
	pred   predict.Predictor
}

// AttachShared deploys the shared monitoring plane. Every job's
// predictor consults the same known-fault set, and quarantine
// re-baselines every job's load model (the fabric changed for all of
// them).
func AttachShared(cfg SharedConfig) (*SharedSystem, error) {
	if cfg.Net == nil || cfg.Stack == nil {
		return nil, fmt.Errorf("core: SharedConfig.Net and SharedConfig.Stack are required")
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("core: SharedConfig.Jobs is empty")
	}
	topo := cfg.Net.Topology()
	if cfg.Control == nil {
		cfg.Control = control.New(control.Config{Verify: true}, cfg.Net)
	}
	s := &SharedSystem{cfg: cfg, ctrl: cfg.Control, faults: predict.NewFaultSet(), preds: map[uint16]predict.Predictor{}}

	// Predictors first: the remediator's rebaseline closure spans all
	// of them.
	jobs := make([]uint16, 0, len(cfg.Jobs))
	for _, jc := range cfg.Jobs {
		if s.preds[jc.Job] != nil {
			return nil, fmt.Errorf("core: duplicate job id %d in SharedConfig.Jobs", jc.Job)
		}
		kind := jc.Kind
		if kind == "" {
			kind = AnalyticalModel
		}
		pred, _, err := buildPredictor(topo, s.ctrl, cfg.Stack, kind, predictorOptions{
			Demand: jc.Demand, ReferenceWindows: jc.ReferenceWindows, Learned: jc.Learned,
		}, s.faults)
		if err != nil {
			return nil, fmt.Errorf("core: job %d: %w", jc.Job, err)
		}
		s.preds[jc.Job] = pred
		jobs = append(jobs, jc.Job)
	}
	if cfg.Remediate != nil {
		s.remediator = remediate.New(s.ctrl, s.faults, func() { s.Rebaseline() }, *cfg.Remediate)
	}
	if cfg.Resilience != nil {
		if s.remediator == nil {
			return nil, fmt.Errorf("core: SharedConfig.Resilience requires SharedConfig.Remediate")
		}
		// Re-plans migrate paths mid-job; see the same call in Attach.
		cfg.Stack.EnableMigrationHardening()
		// One fabric event fans out to every bound job, in binding
		// order; the hooks fire before the loop's shared rebaseline.
		s.remediator.OnQuarantine = func(now sim.Time, link topology.LinkID) {
			for _, b := range s.bound {
				s.applySharedPlan(b, b.replan.NoteQuarantine(now, link), link)
			}
		}
		s.remediator.OnReadmit = func(now sim.Time, link topology.LinkID) {
			for _, b := range s.bound {
				s.applySharedPlan(b, b.replan.NoteReadmit(now, link), link)
			}
		}
	}
	trc, err := resolveTraceWriter(cfg.TracePath, cfg.Trace)
	if err != nil {
		return nil, err
	}

	jobHeaders := make([]trace.JobHeader, 0, len(cfg.Jobs))
	pipelines := make(map[uint16]*monitor.Pipeline, len(cfg.Jobs))
	for _, jc := range cfg.Jobs {
		pred := s.preds[jc.Job]
		// Jobs sharing a leaf's uplinks comb each other's spray shares;
		// only the all-jobs aggregate keeps per-port symmetry, so
		// shared-plane pipelines always detect on that basis (see
		// detect.Config.AggregateSymmetry).
		jc.Detect.AggregateSymmetry = true
		det := detect.New(topo, pred, jc.Detect)
		det.SetKnownFaults(s.faults)
		pc := monitor.PipelineConfig{
			Pred:     pred,
			Detect:   det,
			Localize: localize.New(topo, det.Threshold(), 0),
			OnEvent:  jc.OnEvent,
			OnWindow: jc.OnWindow,
		}
		if l, ok := pred.(*predict.Learned); ok {
			pc.Observer = l
		}
		if s.remediator != nil {
			pc.Remediate = s.remediator
		}
		if trc != nil {
			dc := det.Config()
			jobHeaders = append(jobHeaders, trace.JobHeader{
				Job:               jc.Job,
				Predictor:         pred.Name(),
				Threshold:         dc.Threshold,
				MinPredicted:      dc.MinPredicted,
				AggregateSymmetry: dc.AggregateSymmetry,
				CEDiscount:        dc.CEDiscount,
			})
			jobPred, userEvent, userWindow := pred, jc.OnEvent, jc.OnWindow
			pc.OnEvent = func(e Event) {
				trc.Event(e)
				if userEvent != nil {
					userEvent(e)
				}
			}
			pc.OnWindow = func(ws WindowScore) {
				trc.WindowOf(jobPred, ws.Window)
				if userWindow != nil {
					userWindow(ws)
				}
			}
		}
		pipelines[jc.Job] = monitor.NewPipeline(pc)
	}
	if trc != nil {
		hdr, err := traceHeader(topo, cfg.TraceLabel, true, s.remediator, jobHeaders)
		if err != nil {
			return nil, err
		}
		if err := trc.Begin(hdr); err != nil {
			return nil, err
		}
		if s.remediator != nil {
			s.remediator.OnAction = trc.Action
			s.remediator.OnProbeRound = trc.ProbeRound
		}
		s.trc = trc
	}
	s.plane = monitor.NewPlane(cfg.Net, jobs, pipelines)
	return s, nil
}

// MustAttachShared is AttachShared for statically valid configurations.
func MustAttachShared(cfg SharedConfig) *SharedSystem {
	s, err := AttachShared(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Jobs returns the monitored job ids in registration order.
func (s *SharedSystem) Jobs() []uint16 { return s.plane.Jobs() }

// Pipeline returns one job's analysis pipeline (nil if the job is not
// monitored).
func (s *SharedSystem) Pipeline(job uint16) *monitor.Pipeline { return s.plane.Pipeline(job) }

// Plane returns the underlying monitoring plane.
func (s *SharedSystem) Plane() *monitor.Plane { return s.plane }

// Remediator returns the shared remediation engine, or nil when
// SharedConfig.Remediate was not set.
func (s *SharedSystem) Remediator() *remediate.Remediator { return s.remediator }

// ControlPlane returns the fabric-scoped control plane shared by every
// pipeline. Never nil.
func (s *SharedSystem) ControlPlane() *control.Plane { return s.ctrl }

// KnownFaults returns the shared known-fault set.
func (s *SharedSystem) KnownFaults() *predict.FaultSet { return s.faults }

// BindWorkload connects one monitored job's training loop to the
// resilience re-planner. Each bound job gets its own re-planner over
// its own ring; a fabric-scoped quarantine then re-plans every bound
// job it degrades, in binding order. A no-op when
// SharedConfig.Resilience was not set.
func (s *SharedSystem) BindWorkload(job uint16, j *workload.Job) error {
	if s.cfg.Resilience == nil {
		return nil
	}
	pred, ok := s.preds[job]
	if !ok {
		return fmt.Errorf("core: BindWorkload: job %d is not monitored", job)
	}
	if _, ok := pred.(*predict.Simulation); ok {
		return fmt.Errorf("core: job %d: resilience is not supported with the simulation model", job)
	}
	coll := j.Collective()
	if _, ok := coll.(collective.Replannable); !ok {
		return fmt.Errorf("core: job %d: resilience needs a re-plannable collective, %s is not", job, coll.Name())
	}
	s.bound = append(s.bound, &sharedBinding{
		job:    job,
		j:      j,
		replan: resilience.New(s.cfg.Net.Topology(), coll.Demand().Hosts, *s.cfg.Resilience),
		pred:   pred,
	})
	return nil
}

// applySharedPlan executes one bound job's re-plan decision; see
// System.applyPlan for the single-job flow it mirrors.
func (s *SharedSystem) applySharedPlan(b *sharedBinding, p *resilience.Plan, link topology.LinkID) {
	if p == nil {
		return
	}
	kind := remediate.ActionReplan
	if p.Kind == resilience.PlanRestore {
		kind = remediate.ActionRestore
	}
	detail := fmt.Sprintf("job %d: %s", b.job, p.Detail)
	s.remediator.RecordWorkload(remediate.Action{At: p.At, Kind: kind, Link: link, Detail: detail})
	s.ctrl.Note(p.At, kind.String(), detail)
	next := b.j.Collective().(collective.Replannable).Replan(p.Group)
	b.j.Replan(next)
	if ds, ok := b.pred.(interface {
		SetDemand(*collective.DemandMatrix)
	}); ok {
		ds.SetDemand(next.Demand())
	}
}

// Rebaseline recomputes every job's load-model baseline against the
// current routing state; it reports false if any model could not
// refresh. Quarantine and re-admission call this: the fabric changed
// for every job, not just the one whose windows confirmed the fault.
func (s *SharedSystem) Rebaseline() bool {
	all := true
	for _, job := range s.plane.Jobs() {
		rb, ok := s.preds[job].(predict.Rebaseliner)
		if ok {
			rb.Rebaseline()
		}
		all = all && ok
	}
	return all
}

// Flush closes all open telemetry windows (end of training) and, when
// recording, seals the trace.
func (s *SharedSystem) Flush(now sim.Time) {
	s.plane.Flush(now)
	if s.trc != nil {
		s.trc.Finish(now)
	}
}

// TraceWriter returns the attached trace writer, or nil when the
// plane is not recording.
func (s *SharedSystem) TraceWriter() *trace.Writer { return s.trc }
