package core

import (
	"testing"

	"flowpulse/internal/detect"
	"flowpulse/internal/predict"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

func clos3Scenario(seed uint64) Clos3Scenario {
	return Clos3Scenario{
		Pods: 4, LeavesPerPod: 4, SpinesPerPod: 2, CoresPerGroup: 4,
		BytesPerRank: 8 << 20,
		Iterations:   10,
		Seed:         seed,
	}
}

func runClos3(t *testing.T, sc Clos3Scenario, inject func(rt *Clos3Runtime), injectAt uint32) (*Clos3Runtime, *Clos3System) {
	t.Helper()
	rt, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := AttachClos3(rt, detect.Config{}, predict.LearnedConfig{Warmup: 3})
	rt.StartTraining(func(_ sim.Time, iter uint32) {
		if inject != nil && iter == injectAt {
			inject(rt)
		}
	})
	rt.Engine.Run()
	sys.Flush(rt.Engine.Now())
	return rt, sys
}

func TestClos3CleanBothLevelsSilent(t *testing.T) {
	_, sys := runClos3(t, clos3Scenario(1), nil, 0)
	if len(sys.LeafEvents) != 0 {
		t.Fatalf("clean 3-level run: leaf alerts %v", sys.LeafEvents[0])
	}
	if len(sys.SpineEvents) != 0 {
		t.Fatalf("clean 3-level run: spine alerts %v", sys.SpineEvents[0])
	}
	// 16 leaves + 8 spines, 10 iterations each... every leaf window
	// plus every spine window that saw cross-pod traffic.
	if sys.Windows < 16*10 {
		t.Fatalf("windows = %d, want >= 160", sys.Windows)
	}
}

func TestClos3SpineLeafFaultSeenByLeafMonitor(t *testing.T) {
	var faulty topology.LinkID
	_, sys := runClos3(t, clos3Scenario(2), func(rt *Clos3Runtime) {
		faulty = rt.InjectSpineLeafDrop(1, 2, 0, 0.05)
	}, 5)
	_ = faulty
	if len(sys.LeafEvents) == 0 {
		t.Fatal("spine->leaf fault not seen by leaf monitors")
	}
	for _, a := range sys.LeafEvents {
		if a.Iter <= 5 {
			t.Fatalf("alert before injection: %v", a)
		}
	}
	// The deficit must be at the right leaf: pod 1, leaf-in-pod 2 →
	// global leaf ordinal 1*4+2 = 6, uplink 0 (spine-in-pod 0).
	foundDeficit := false
	for _, a := range sys.LeafEvents {
		if a.Deviation < 0 {
			foundDeficit = true
			if a.LeafOrdinal != 6 || a.Uplink != 0 {
				t.Fatalf("deficit at leaf %d uplink %d, want 6/0", a.LeafOrdinal, a.Uplink)
			}
		}
	}
	if !foundDeficit {
		t.Fatal("no deficit alert")
	}
}

func TestClos3CoreSpineFaultSeenBySpineMonitor(t *testing.T) {
	_, sys := runClos3(t, clos3Scenario(3), func(rt *Clos3Runtime) {
		rt.InjectCoreSpineDrop(2, 1, 0, 0.08)
	}, 5)
	if len(sys.SpineEvents) == 0 {
		t.Fatal("core->spine fault not seen by spine monitors")
	}
	for _, a := range sys.SpineEvents {
		if a.Iter <= 5 {
			t.Fatalf("spine alert before injection: %v", a)
		}
	}
	// The faulted spine is pod 2, spine-in-pod 1 → global spine
	// ordinal 2*2+1 = 5; core-in-group 0 → core port index 0.
	foundDeficit := false
	for _, a := range sys.SpineEvents {
		if a.Deviation < 0 {
			foundDeficit = true
			if a.LeafOrdinal != 5 || a.Uplink != 0 {
				t.Fatalf("spine deficit at ordinal %d port %d, want 5/0", a.LeafOrdinal, a.Uplink)
			}
		}
	}
	if !foundDeficit {
		t.Fatal("no spine deficit alert")
	}
}

func TestClos3SpineWindowsCarryKind(t *testing.T) {
	rt, err := clos3Scenario(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	leafK, spineK := 0, 0
	coll := attachCounter(rt, func(kind topology.SwitchKind) {
		if kind == topology.Spine {
			spineK++
		} else {
			leafK++
		}
	})
	rt.Scenario.Iterations = 2
	rt.StartTraining(nil)
	rt.Engine.Run()
	coll.FlushAll(rt.Engine.Now())
	if leafK == 0 || spineK == 0 {
		t.Fatalf("window kinds: leaf=%d spine=%d", leafK, spineK)
	}
}

// attachCounter is a tiny helper for the kind test.
func attachCounter(rt *Clos3Runtime, f func(topology.SwitchKind)) interface{ FlushAll(sim.Time) } {
	return telemetry.AttachClos3(rt.Net, int(rt.Scenario.Job), func(w *telemetry.Window) {
		f(w.SwitchKind)
	})
}
