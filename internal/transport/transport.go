// Package transport implements the paper's end-host transport (§6): a
// RoCE-like message transport tolerant to per-packet reordering (APS
// delivers wildly out of order), with per-packet acknowledgements, a
// retransmission timeout (5 µs in the paper) as the only loss-recovery
// mechanism, and no congestion control — losslessness is the fabric's
// job (PFC), and collectives are congestion-aware by construction.
//
// Retransmitted packets re-enter the spray pipeline and are load-
// balanced independently of the original, which is what redistributes
// a faulty link's deficit across the healthy ports — the second-order
// signal FlowPulse's detector sees.
package transport

import (
	"fmt"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Config parameterizes a Stack.
type Config struct {
	// MTU is the payload bytes per data packet. Defaults to 4096.
	MTU int
	// HeaderBytes is the per-packet wire overhead. Defaults to 64.
	HeaderBytes int
	// AckBytes is the wire size of an acknowledgement. Defaults to 64.
	AckBytes int
	// RTO is the minimum retransmission timeout, measured from the
	// instant a packet leaves the NIC. Defaults to 5 µs (§6). Unless
	// FixedRTO is set, an SRTT+4·RTTVAR estimator (per src-dst pair,
	// like a RoCE queue pair; Karn-sampled) raises the effective
	// timeout above this floor when measured round-trip times demand
	// it — with a hard 5 µs timeout, any queue spike beyond the RTT
	// headroom triggers spurious retransmissions that amplify the
	// spike.
	RTO sim.Duration
	// FixedRTO disables the RTT estimator (ablation: the paper's
	// constant timeout).
	FixedRTO bool
	// MaxRetries bounds retransmissions per packet; beyond it the
	// packet is abandoned and the message never completes (the
	// application-visible hang a persistent black hole causes).
	// Defaults to 64.
	MaxRetries int
	// DisableBackoff turns off exponential RTO backoff. With a fixed
	// RTO, a transient queue spike that pushes RTT past the RTO makes
	// every outstanding packet retransmit at once, which deepens the
	// spike — a retransmission meltdown. Backoff (RTO doubling per
	// retry, capped at 64x) breaks the feedback loop; disabling it
	// exists for ablation.
	DisableBackoff bool
	// PairBackoff extends RTO backoff from per-packet to per-pair (the
	// TCP discipline: timer backoff is connection state, cleared by the
	// next unambiguous sample). Without it, a routing change that
	// lengthens a pair's RTT past its learned RTO — a quarantine
	// funneling the pair onto one congested path — is a stable
	// meltdown: every packet is retransmitted at least once, so Karn's
	// rule starves the estimator of samples and the RTO never rises;
	// each NEW packet restarts from the stale timeout no matter how
	// high its predecessors backed off. Per-pair backoff lets new
	// packets inherit the pair's backoff, their first copies then
	// survive to a clean ACK, and the estimator re-learns the path.
	// Off by default to keep historical runs byte-identical; the
	// resilience loop enables it (re-plans migrate paths mid-job).
	PairBackoff bool
	// TimestampRTT samples RTT from a wire-out timestamp echoed in
	// every ACK (the TCP-timestamps discipline) instead of Karn's
	// rule. Karn's sampling is systematically biased under congestion:
	// a packet whose RTT exceeded the RTO was retransmitted, so its
	// sample is discarded — the estimator only ever sees uncongested
	// round trips and re-arms the same too-short timeout at the head
	// of every collective burst. The echo removes the retransmission
	// ambiguity, so congested round trips feed the estimator too. Off
	// by default for byte-identity with historical runs; enabled with
	// PairBackoff by the resilience loop.
	TimestampRTT bool
	// DCQCN configures the per-pair ECN-reacting rate limiter (see
	// DCQCNConfig). It only has an effect when the fabric marks CE
	// (fabric.Config.ECN); disabled by default for byte-identity with
	// historical runs.
	DCQCN DCQCNConfig
}

func (c *Config) setDefaults() {
	if c.MTU == 0 {
		c.MTU = 4096
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 64
	}
	if c.AckBytes == 0 {
		c.AckBytes = 64
	}
	if c.RTO == 0 {
		c.RTO = 5 * sim.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 64
	}
}

// Stats counts transport-level events across all hosts.
type Stats struct {
	// MessagesSent counts messages submitted.
	MessagesSent uint64
	// MessagesDelivered counts messages fully received.
	MessagesDelivered uint64
	// DataPacketsSent counts first transmissions.
	DataPacketsSent uint64
	// Retransmits counts RTO-triggered retransmissions.
	Retransmits uint64
	// SpuriousRetransmits counts retransmissions of packets that had
	// in fact arrived (late ACK).
	SpuriousRetransmits uint64
	// DuplicatesReceived counts data packets discarded by receiver
	// dedup.
	DuplicatesReceived uint64
	// AcksSent counts acknowledgements transmitted.
	AcksSent uint64
	// Abandoned counts packets dropped after MaxRetries.
	Abandoned uint64
	// RateCuts counts DCQCN multiplicative rate cuts (0 unless
	// Config.DCQCN is enabled and the fabric marked CE).
	RateCuts uint64
}

// Message is a one-way bulk transfer between two hosts.
type Message struct {
	// Src and Dst are the endpoints.
	Src, Dst topology.HostID
	// Bytes is the payload length.
	Bytes int
	// Priority is the fabric traffic class (High for measured
	// collectives).
	Priority fabric.Priority
	// Tag is the FlowPulse collective marking carried by every data
	// packet.
	Tag fabric.FlowTag
	// Value is an application checksum (the collective layer uses it
	// to verify reduction semantics end to end).
	Value float64
	// OnDelivered fires at the receiver when every payload byte has
	// arrived (out-of-order tolerant: arrival order is irrelevant).
	OnDelivered func(now sim.Time, m *Message)
	// OnAcked fires at the sender when every packet has been
	// acknowledged.
	OnAcked func(now sim.Time, m *Message)

	id      uint64
	packets int
}

// ID returns the message's transport identifier (valid after Send).
func (m *Message) ID() uint64 { return m.id }

// Packets returns how many data packets the message occupies (valid
// after Send).
func (m *Message) Packets() int { return m.packets }

// sendState tracks one in-flight message at the sender. Loss recovery
// is NIC-style: instead of one scheduled closure per outstanding
// packet, the state keeps a per-sequence deadline slice and a single
// engine timer armed at the earliest deadline. ACKs clear their
// deadline lazily (no timer surgery); a fire that finds nothing
// expired simply rearms at the new minimum. sendState implements
// sim.Timer, so rearming never allocates.
type sendState struct {
	s        *Stack
	eng      *sim.Engine // the source host's engine
	msg      *Message
	acked    []bool
	nAcked   int
	deadline []sim.Time // per seq; Never when no RTO outstanding
	retries  []int
	wireOut  []sim.Time
	finished bool

	timer   sim.EventRef // the message's single RTO timer
	timerAt sim.Time     // instant timer is armed for
}

// armAt ensures the message timer fires no later than d.
func (st *sendState) armAt(d sim.Time) {
	if d == sim.Never {
		return
	}
	if st.timer.Valid() {
		if st.timerAt <= d {
			return
		}
		st.eng.Cancel(st.timer)
	}
	st.timer = st.eng.AtTimer(d, st)
	st.timerAt = d
}

// Fire handles RTO expiry: retransmit every sequence whose deadline
// passed, then rearm at the new earliest deadline (if any).
func (st *sendState) Fire(now sim.Time) {
	st.timer = sim.EventRef{}
	if st.finished {
		return
	}
	for seq, d := range st.deadline {
		if d <= now && !st.acked[seq] {
			// Clear before retransmitting: the retransmission's own
			// wire-out re-arms this sequence with a fresh deadline.
			st.deadline[seq] = sim.Never
			st.s.onTimeout(st, seq, now)
		}
	}
	min := sim.Never
	for _, d := range st.deadline {
		if d < min {
			min = d
		}
	}
	st.armAt(min)
}

type recvState struct {
	msg  *Message
	got  []bool
	nGot int
}

// rttEstimator is the standard SRTT/RTTVAR filter (RFC 6298 style),
// plus the pair's timer-backoff exponent (used only under PairBackoff:
// bumped on every timeout, cleared by the next Karn-unambiguous ACK).
type rttEstimator struct {
	srtt, rttvar float64
	valid        bool
	backoff      int
}

func (e *rttEstimator) observe(rtt float64) {
	if !e.valid {
		e.srtt, e.rttvar, e.valid = rtt, rtt/2, true
		return
	}
	const alpha, beta = 0.125, 0.25
	d := e.srtt - rtt
	if d < 0 {
		d = -d
	}
	e.rttvar = (1-beta)*e.rttvar + beta*d
	e.srtt = (1-alpha)*e.srtt + alpha*rtt
}

// rto computes the pair's retransmission timeout. With tailMargin the
// smoothed term is doubled: RTO is this transport's only loss-recovery
// mechanism, and near a saturated queue the RTT distribution grows a
// bursty tail that RTTVAR — tracking the mostly-smooth bulk, decayed
// by every quiet sample — systematically underestimates (TCP's answer
// is the same shape: a minimum variance term so the timer never
// converges onto the mean). The margin scales with the path's queue
// depth instead of a fixed constant.
func (e *rttEstimator) rto(floor sim.Duration, tailMargin bool) sim.Duration {
	if !e.valid {
		return floor
	}
	srtt := e.srtt
	if tailMargin {
		srtt *= 2
	}
	if est := sim.Duration(srtt + 4*e.rttvar); est > floor {
		return est
	}
	return floor
}

// hostTP is one host's slice of the sharded transport: its own message
// numbering, in-flight maps, and counters, touched only by events on
// the host's domain engine.
type hostTP struct {
	eng     *sim.Engine
	dom     int
	nextSeq uint64
	sends   map[uint64]*sendState
	recvs   map[uint64]*recvState
	// recvDone tombstones completed receptions: straggler duplicates
	// still get an ACK (the original ACK may be lost) without
	// recreating state or re-firing OnDelivered. In legacy mode the
	// sender's final ACK reaps receive state instead; sharded mode
	// cannot — that would mutate another domain's map.
	recvDone map[uint64]bool
	stats    Stats
}

// Stack is the transport layer over one fabric. In legacy mode it is
// single-threaded within its engine; over a sharded fabric every
// host's state lives on the host's domain engine.
type Stack struct {
	cfg Config
	net *fabric.Network
	eng *sim.Engine // control engine in sharded mode
	par bool

	// Legacy (single-threaded) state. The sharded per-host message-id
	// scheme cannot reproduce the global nextID sequence (it would
	// serialize every Send), and message ids feed the spray hash, so
	// keeping the historical scheme here keeps legacy runs
	// byte-identical with pre-sharding builds.
	nextID uint64
	sends  map[uint64]*sendState
	recvs  map[uint64]*recvState

	hosts []hostTP // sharded mode only

	rtts   []rttEstimator // per (src, dst) pair, src*nHosts+dst; only src-side events touch a row
	pacers []*dcqcnState  // per pair like rtts; nil unless Config.DCQCN is enabled
	nHosts int

	stats Stats
}

// NewStack attaches a transport to every host of the network. It takes
// over the hosts' receive and NIC-dequeue hooks.
func NewStack(net *fabric.Network, cfg Config) *Stack {
	cfg.setDefaults()
	s := &Stack{
		cfg:    cfg,
		net:    net,
		eng:    net.Engine(),
		par:    net.Group() != nil,
		rtts:   make([]rttEstimator, len(net.Topology().Hosts)*len(net.Topology().Hosts)),
		nHosts: len(net.Topology().Hosts),
	}
	if cfg.DCQCN.Enabled {
		h0 := net.Topology().Host(0)
		s.cfg.DCQCN.setDefaults(float64(net.Topology().Link(h0.Link).RateBPS))
		s.pacers = make([]*dcqcnState, s.nHosts*s.nHosts)
	}
	if s.par {
		s.hosts = make([]hostTP, s.nHosts)
		for h := range s.hosts {
			s.hosts[h] = hostTP{
				eng:      net.EngineOf(topology.HostID(h)),
				dom:      net.DomainOf(topology.HostID(h)),
				sends:    make(map[uint64]*sendState),
				recvs:    make(map[uint64]*recvState),
				recvDone: make(map[uint64]bool),
			}
		}
	} else {
		s.sends = make(map[uint64]*sendState)
		s.recvs = make(map[uint64]*recvState)
	}
	for h := range net.Topology().Hosts {
		host := topology.HostID(h)
		net.SetReceiver(host, s.onReceive)
		net.SetDequeueHook(host, s.onWireOut)
	}
	return s
}

// Config returns the stack's effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// EnableMigrationHardening switches on the two loss-recovery
// disciplines a path-migrating workload needs — per-pair RTO backoff
// and timestamp-echo RTT sampling (see Config.PairBackoff and
// Config.TimestampRTT) — on an already-built stack. The resilience
// loop calls it at attach time, before any traffic; calling it mid-run
// is not supported (sharded hosts read cfg unsynchronized).
func (s *Stack) EnableMigrationHardening() {
	s.cfg.PairBackoff = true
	s.cfg.TimestampRTT = true
}

// Engine returns the engine driving this stack's network (the control
// engine over a sharded fabric).
func (s *Stack) Engine() *sim.Engine { return s.eng }

// EngineFor returns the engine executing one host's transport events.
func (s *Stack) EngineFor(h topology.HostID) *sim.Engine { return s.net.EngineOf(h) }

// Network returns the fabric beneath this stack.
func (s *Stack) Network() *fabric.Network { return s.net }

// Stats returns a snapshot of the transport counters, summed over
// hosts in sharded mode. Do not call concurrently with a running
// group window.
func (s *Stack) Stats() Stats {
	if !s.par {
		return s.stats
	}
	var t Stats
	for h := range s.hosts {
		st := &s.hosts[h].stats
		t.MessagesSent += st.MessagesSent
		t.MessagesDelivered += st.MessagesDelivered
		t.DataPacketsSent += st.DataPacketsSent
		t.Retransmits += st.Retransmits
		t.SpuriousRetransmits += st.SpuriousRetransmits
		t.DuplicatesReceived += st.DuplicatesReceived
		t.AcksSent += st.AcksSent
		t.Abandoned += st.Abandoned
		t.RateCuts += st.RateCuts
	}
	return t
}

// PacketsFor returns the number of data packets a payload of the given
// size occupies under this stack's MTU.
func (s *Stack) PacketsFor(bytes int) int {
	return (bytes + s.cfg.MTU - 1) / s.cfg.MTU
}

// WireBytesFor returns the total wire bytes (headers included) of a
// payload of the given size, excluding retransmissions and ACKs. The
// load predictors use this to convert demand to expected port volume.
func (s *Stack) WireBytesFor(bytes int) int64 {
	return int64(bytes) + int64(s.PacketsFor(bytes))*int64(s.cfg.HeaderBytes)
}

// Send submits a message. All packets enter the source NIC queue
// immediately (no congestion window); the NIC drains them at line
// rate, and each packet's RTO starts when it leaves the NIC.
func (s *Stack) Send(m *Message) uint64 {
	if m.Bytes <= 0 {
		panic(fmt.Sprintf("transport: message of %d bytes", m.Bytes))
	}
	if m.Src == m.Dst {
		panic("transport: loopback messages are not modeled")
	}
	eng := s.eng
	if s.par {
		// Per-source message ids: host-unique without shared state.
		// The id feeds the spray flow key, so sharded and legacy runs
		// draw different (but each internally deterministic) spray
		// sequences — see DESIGN.md decision 12.
		h := &s.hosts[m.Src]
		h.nextSeq++
		m.id = (uint64(m.Src)+1)<<40 | h.nextSeq
		eng = h.eng
	} else {
		s.nextID++
		m.id = s.nextID
	}
	m.packets = s.PacketsFor(m.Bytes)

	st := &sendState{
		s:        s,
		eng:      eng,
		msg:      m,
		acked:    make([]bool, m.packets),
		deadline: make([]sim.Time, m.packets),
		retries:  make([]int, m.packets),
		wireOut:  make([]sim.Time, m.packets),
	}
	for i := range st.deadline {
		st.deadline[i] = sim.Never
	}
	if s.par {
		s.hosts[m.Src].sends[m.id] = st
	} else {
		s.sends[m.id] = st
	}
	s.statsAt(m.Src).MessagesSent++

	if s.pacers != nil {
		// DCQCN: first transmissions flow through the pair's pacer at
		// its current rate instead of flooding the NIC queue.
		s.pacerEnqueue(st)
	} else {
		for seq := 0; seq < m.packets; seq++ {
			s.sendData(st, seq, false)
		}
	}
	return m.id
}

// statsAt returns the counter block a host's events update.
func (s *Stack) statsAt(h topology.HostID) *Stats {
	if s.par {
		return &s.hosts[h].stats
	}
	return &s.stats
}

// sendsAt returns the in-flight send map owned by a source host.
func (s *Stack) sendsAt(h topology.HostID) map[uint64]*sendState {
	if s.par {
		return s.hosts[h].sends
	}
	return s.sends
}

func (s *Stack) payloadBytes(m *Message, seq int) int {
	if seq == m.packets-1 {
		return m.Bytes - s.cfg.MTU*(m.packets-1)
	}
	return s.cfg.MTU
}

func (s *Stack) sendData(st *sendState, seq int, retx bool) {
	m := st.msg
	if retx {
		s.statsAt(m.Src).Retransmits++
	} else {
		s.statsAt(m.Src).DataPacketsSent++
	}
	s.net.Send(fabric.SendSpec{
		Src:      m.Src,
		Dst:      m.Dst,
		Size:     s.payloadBytes(m, seq) + s.cfg.HeaderBytes,
		Priority: m.Priority,
		Kind:     fabric.Data,
		Tag:      m.Tag,
		Msg:      m.id,
		Seq:      seq,
		Retx:     retx,
		// The message rides along so a sharded receiver can build its
		// state without reaching into the sender's domain. Immutable
		// once the first packet is on the wire.
		Ctx: m,
	})
}

// onWireOut starts a packet's RTO when the NIC puts it on the wire.
func (s *Stack) onWireOut(now sim.Time, p *fabric.Packet) {
	if p.Kind != fabric.Data {
		return
	}
	// Stamp this copy's wire-out instant; the receiver echoes it in
	// the ACK (see Config.TimestampRTT).
	p.Stamp = now
	st := s.sendsAt(p.Src)[p.Msg]
	if st == nil || st.acked[p.Seq] {
		return
	}
	seq := p.Seq
	st.wireOut[seq] = now
	pair := &s.rtts[int(st.msg.Src)*s.nHosts+int(st.msg.Dst)]
	rto := s.cfg.RTO
	if !s.cfg.FixedRTO {
		rto = pair.rto(s.cfg.RTO, s.cfg.TimestampRTT)
	}
	if !s.cfg.DisableBackoff {
		shift := st.retries[seq]
		if s.cfg.PairBackoff && pair.backoff > shift {
			shift = pair.backoff
		}
		if shift > 6 {
			shift = 6
		}
		rto <<= shift
	}
	st.deadline[seq] = now.Add(rto)
	st.armAt(st.deadline[seq])
}

func (s *Stack) onTimeout(st *sendState, seq int, _ sim.Time) {
	if st.acked[seq] || st.finished {
		return
	}
	if st.retries[seq] >= s.cfg.MaxRetries {
		s.statsAt(st.msg.Src).Abandoned++
		return
	}
	st.retries[seq]++
	if s.cfg.PairBackoff {
		if pair := &s.rtts[int(st.msg.Src)*s.nHosts+int(st.msg.Dst)]; pair.backoff < 6 {
			pair.backoff++
		}
	}
	if DebugTimeout != nil {
		pair := s.rtts[int(st.msg.Src)*s.nHosts+int(st.msg.Dst)]
		DebugTimeout(st.eng.Now(), st.msg.Src, st.msg.Dst, seq, st.retries[seq], pair.backoff, pair.srtt, pair.rttvar)
	}
	if DebugRetx != nil {
		DebugRetx(st.eng.Now(), st.msg.ID(), seq, st.retries[seq])
	}
	s.sendData(st, seq, true)
}

func (s *Stack) onReceive(now sim.Time, p *fabric.Packet) {
	switch p.Kind {
	case fabric.Data:
		s.onData(now, p)
	case fabric.Ack:
		s.onAck(now, p)
	}
}

func (s *Stack) onData(now sim.Time, p *fabric.Packet) {
	if s.par {
		s.onDataSharded(now, p)
		return
	}
	st := s.recvs[p.Msg]
	if st == nil {
		// First packet of the message to arrive. Look up the sender's
		// metadata (in a real deployment this is the pre-established
		// queue pair).
		send := s.sends[p.Msg]
		if send == nil {
			return // stale packet of a completed, reaped message
		}
		st = &recvState{msg: send.msg, got: make([]bool, send.msg.packets)}
		s.recvs[p.Msg] = st
	}
	fresh := !st.got[p.Seq]
	if fresh {
		st.got[p.Seq] = true
		st.nGot++
	} else {
		s.stats.DuplicatesReceived++
	}
	// Always acknowledge, even duplicates: the original ACK may have
	// been lost, and an unacked sender retransmits forever.
	s.stats.AcksSent++
	s.sendAck(p)
	if fresh && st.nGot == st.msg.packets {
		s.stats.MessagesDelivered++
		if st.msg.OnDelivered != nil {
			st.msg.OnDelivered(now, st.msg)
		}
	}
}

// onDataSharded is the receive path over a sharded fabric: it runs on
// the destination host's engine and touches only that host's state.
// Message metadata comes from the packet's Ctx instead of the sender's
// send map (another domain), and reception state is reaped here when
// the last payload byte lands rather than by the sender's final ACK.
func (s *Stack) onDataSharded(now sim.Time, p *fabric.Packet) {
	h := &s.hosts[p.Dst]
	st := h.recvs[p.Msg]
	if st == nil {
		if h.recvDone[p.Msg] {
			// Straggler duplicate of a fully received message: ACK it
			// again (the copy that completed the message may have been
			// a retransmit whose original ACK was lost).
			h.stats.DuplicatesReceived++
			h.stats.AcksSent++
			s.sendAck(p)
			return
		}
		msg, _ := p.Ctx.(*Message)
		if msg == nil {
			return
		}
		st = &recvState{msg: msg, got: make([]bool, msg.packets)}
		h.recvs[p.Msg] = st
	}
	fresh := !st.got[p.Seq]
	if fresh {
		st.got[p.Seq] = true
		st.nGot++
	} else {
		h.stats.DuplicatesReceived++
	}
	h.stats.AcksSent++
	s.sendAck(p)
	if fresh && st.nGot == st.msg.packets {
		h.stats.MessagesDelivered++
		if st.msg.OnDelivered != nil {
			st.msg.OnDelivered(now, st.msg)
		}
		delete(h.recvs, p.Msg)
		h.recvDone[p.Msg] = true
	}
}

// sendAck acknowledges one data packet back to its source.
func (s *Stack) sendAck(p *fabric.Packet) {
	s.net.Send(fabric.SendSpec{
		Src:      p.Dst,
		Dst:      p.Src,
		Size:     s.cfg.AckBytes,
		Priority: fabric.Ctrl,
		Kind:     fabric.Ack,
		Tag:      fabric.FlowTag{}, // ACKs are never part of the measured collective
		Msg:      p.Msg,
		Seq:      p.Seq,
		CE:       p.CE,    // ECN echo: the sender's DCQCN reacts to it
		Stamp:    p.Stamp, // timestamp echo: which copy, sent when
	})
}

func (s *Stack) onAck(now sim.Time, p *fabric.Packet) {
	if s.pacers != nil && p.CE {
		// A CE-echoed ACK is a congestion notification whether or not
		// the send state still exists (late ACKs of reaped messages
		// still describe real queue buildup on the pair's path).
		s.onCongestionNotification(now, p)
	}
	// ACKs arrive at the message's source host, which owns the send
	// state in sharded mode.
	sends := s.sendsAt(p.Dst)
	st := sends[p.Msg]
	if st == nil || st.finished {
		return
	}
	if st.acked[p.Seq] {
		return
	}
	if DebugAck != nil {
		DebugAck(now, p.Msg, p.Seq, now.Sub(st.wireOut[p.Seq]))
	}
	// RTT sampling. Every sample also decays the pair's timer backoff
	// — by one step, not to zero: a collective re-bursts every
	// iteration, and a backoff cleared outright by the quiet tail of
	// one burst would melt down again at the head of the next.
	pair := &s.rtts[int(st.msg.Src)*s.nHosts+int(st.msg.Dst)]
	switch {
	case s.cfg.TimestampRTT && p.Stamp > 0:
		// Timestamp echo: the ACK names the copy it acknowledges and
		// that copy's wire-out instant, so even a retransmitted packet
		// yields an unambiguous — and, crucially, possibly congested —
		// RTT sample.
		if !s.cfg.FixedRTO {
			pair.observe(float64(now.Sub(p.Stamp)))
		}
		if pair.backoff > 0 {
			pair.backoff--
		}
	case st.retries[p.Seq] == 0:
		// Karn's rule: only unambiguous (never-retransmitted) packets
		// feed the RTT estimator.
		if !s.cfg.FixedRTO {
			pair.observe(float64(now.Sub(st.wireOut[p.Seq])))
		}
		if pair.backoff > 0 {
			pair.backoff--
		}
	}
	st.acked[p.Seq] = true
	st.nAcked++
	// Lazy cancellation: clear the deadline but leave the message
	// timer armed. If this sequence held the earliest deadline, the
	// timer fires spuriously, finds nothing expired, and rearms.
	st.deadline[p.Seq] = sim.Never
	if st.retries[p.Seq] > 0 {
		// The packet was retransmitted at least once before this first
		// ACK came back; receiver-side dedup measures how many of those
		// copies were unnecessary.
		s.statsAt(st.msg.Src).SpuriousRetransmits++
	}
	if st.nAcked == st.msg.packets {
		st.finished = true
		if st.timer.Valid() {
			st.eng.Cancel(st.timer)
			st.timer = sim.EventRef{}
		}
		if st.msg.OnAcked != nil {
			st.msg.OnAcked(now, st.msg)
		}
		// Reap transport state. Straggler duplicates of this message
		// (already-acked retransmits in flight) are ignored on arrival.
		// The receiver's state is reaped here in legacy mode, at
		// reception completion in sharded mode (another domain).
		delete(sends, p.Msg)
		if !s.par {
			delete(s.recvs, p.Msg)
		}
	}
}

// DebugRetx, when non-nil, observes every retransmission (test hook).
var DebugRetx func(now sim.Time, msg uint64, seq, retries int)

// DebugTimeout, when non-nil, observes every timeout with the pair's
// estimator state (test hook).
var DebugTimeout func(now sim.Time, src, dst topology.HostID, seq, retries, backoff int, srtt, rttvar float64)

// DebugAck, when non-nil, observes every first ACK with its RTT from
// the latest wire-out (test hook).
var DebugAck func(now sim.Time, msg uint64, seq int, rtt sim.Duration)
