package transport

import (
	"testing"
	"testing/quick"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

type rig struct {
	topo  *topology.Topology
	eng   *sim.Engine
	net   *fabric.Network
	stack *Stack
}

func newRig(t *testing.T, cfg topology.FatTreeConfig, seed uint64, tc Config) *rig {
	t.Helper()
	topo, err := topology.NewFatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: seed})
	return &rig{topo: topo, eng: eng, net: net, stack: NewStack(net, tc)}
}

func TestMessageDeliveryCleanNetwork(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 1, Config{})
	var deliveredAt, ackedAt sim.Time
	delivered, acked := false, false
	m := &Message{
		Src: 0, Dst: 3, Bytes: 1 << 20, Priority: fabric.High,
		OnDelivered: func(now sim.Time, _ *Message) { delivered, deliveredAt = true, now },
		OnAcked:     func(now sim.Time, _ *Message) { acked, ackedAt = true, now },
	}
	r.stack.Send(m)
	r.eng.Run()
	if !delivered || !acked {
		t.Fatalf("delivered=%v acked=%v", delivered, acked)
	}
	if ackedAt < deliveredAt {
		t.Fatal("sender completed before receiver")
	}
	st := r.stack.Stats()
	if st.MessagesDelivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Retransmits != 0 {
		t.Fatalf("clean network caused %d retransmits", st.Retransmits)
	}
	// 1 MiB / 4096 = 256 packets.
	if m.Packets() != 256 || st.DataPacketsSent != 256 {
		t.Fatalf("packets = %d, sent = %d, want 256", m.Packets(), st.DataPacketsSent)
	}
	if st.AcksSent != 256 {
		t.Fatalf("acks = %d, want 256", st.AcksSent)
	}
}

func TestMessageCompletionTimeNearLineRate(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 2, Config{})
	const bytes = 4 << 20
	var done sim.Time
	m := &Message{Src: 0, Dst: 3, Bytes: bytes,
		OnDelivered: func(now sim.Time, _ *Message) { done = now }}
	r.stack.Send(m)
	r.eng.Run()
	// Serialization of payload+headers at 400 Gb/s dominates.
	wire := r.stack.WireBytesFor(bytes)
	ideal := sim.SerializationDelay(int(wire), 400e9)
	if done < sim.Time(ideal) {
		t.Fatalf("finished faster than line rate: %v < %v", done, ideal)
	}
	if done > sim.Time(ideal)*12/10 {
		t.Fatalf("completion %v is >20%% over ideal %v; transport is stalling", done, ideal)
	}
}

func TestRecoveryFromSilentDrops(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 3, Config{})
	// 20% drop toward the destination leaf on one spine: heavy but
	// recoverable loss.
	dstLeaf := r.topo.LeafOf(3)
	link := r.topo.TrunkLinks(r.topo.Spines()[0], dstLeaf)[0]
	r.net.InjectFault(link, r.net.DirToward(link, dstLeaf), fault.NewBernoulliDrop(0.2, sim.NewRNG(3, "f")))

	delivered := false
	m := &Message{Src: 0, Dst: 3, Bytes: 2 << 20,
		OnDelivered: func(sim.Time, *Message) { delivered = true }}
	r.stack.Send(m)
	r.eng.Run()
	if !delivered {
		t.Fatal("message not recovered despite retransmission")
	}
	st := r.stack.Stats()
	if st.Retransmits == 0 {
		t.Fatal("drops occurred but no retransmits recorded")
	}
	if fs := r.net.Stats(); fs.FaultDropped == 0 {
		t.Fatal("fault model never fired")
	}
}

func TestRecoveryFromAckLoss(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 4, Config{})
	// Fault the reverse direction: data flows clean, ACKs drop.
	srcLeaf := r.topo.LeafOf(0)
	link := r.topo.TrunkLinks(r.topo.Spines()[1], srcLeaf)[0]
	r.net.InjectFault(link, r.net.DirToward(link, srcLeaf), fault.NewBernoulliDrop(0.3, sim.NewRNG(4, "f")))

	acked := false
	m := &Message{Src: 0, Dst: 3, Bytes: 1 << 20,
		OnAcked: func(sim.Time, *Message) { acked = true }}
	r.stack.Send(m)
	r.eng.Run()
	if !acked {
		t.Fatal("sender never completed despite duplicate-ack recovery")
	}
	if st := r.stack.Stats(); st.DuplicatesReceived == 0 {
		t.Fatal("ack loss should have produced duplicate data at the receiver")
	}
}

func TestBlackHolePathEventuallyRecovers(t *testing.T) {
	// A full black hole on ONE spine path: every packet landing there
	// dies, but re-spraying finds another spine within a few tries.
	r := newRig(t, topology.FatTreeConfig{Leaves: 2, Spines: 4}, 5, Config{})
	dstLeaf := r.topo.LeafOf(1)
	link := r.topo.TrunkLinks(r.topo.Spines()[2], dstLeaf)[0]
	r.net.InjectFault(link, r.net.DirToward(link, dstLeaf), fault.BlackHole{})

	delivered := false
	m := &Message{Src: 0, Dst: 1, Bytes: 1 << 20,
		OnDelivered: func(sim.Time, *Message) { delivered = true }}
	r.stack.Send(m)
	r.eng.Run()
	if !delivered {
		t.Fatal("message not delivered around a single-path black hole")
	}
}

func TestUnreachableDestinationAbandons(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 6, Config{MaxRetries: 3})
	for _, spine := range r.topo.Spines() {
		link := r.topo.TrunkLinks(spine, r.topo.LeafOf(1))[0]
		r.net.InjectFault(link, r.net.DirToward(link, r.topo.LeafOf(1)), fault.BlackHole{})
	}
	delivered := false
	m := &Message{Src: 0, Dst: 1, Bytes: 64 << 10,
		OnDelivered: func(sim.Time, *Message) { delivered = true }}
	r.stack.Send(m)
	r.eng.Run()
	if delivered {
		t.Fatal("message delivered through a total black hole")
	}
	if st := r.stack.Stats(); st.Abandoned == 0 {
		t.Fatal("no packets abandoned after MaxRetries")
	}
}

func TestSmallMessageSinglePacket(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 7, Config{})
	delivered := false
	m := &Message{Src: 0, Dst: 1, Bytes: 100,
		OnDelivered: func(sim.Time, *Message) { delivered = true }}
	r.stack.Send(m)
	r.eng.Run()
	if !delivered || m.Packets() != 1 {
		t.Fatalf("delivered=%v packets=%d", delivered, m.Packets())
	}
}

func TestPacketsForAndWireBytes(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 8, Config{MTU: 1000, HeaderBytes: 50})
	cases := []struct {
		bytes, packets int
		wire           int64
	}{
		{1, 1, 51},
		{1000, 1, 1050},
		{1001, 2, 1101},
		{10000, 10, 10500},
	}
	for _, c := range cases {
		if got := r.stack.PacketsFor(c.bytes); got != c.packets {
			t.Errorf("PacketsFor(%d) = %d, want %d", c.bytes, got, c.packets)
		}
		if got := r.stack.WireBytesFor(c.bytes); got != c.wire {
			t.Errorf("WireBytesFor(%d) = %d, want %d", c.bytes, got, c.wire)
		}
	}
}

func TestManyConcurrentMessages(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 8, Spines: 4}, 9, Config{})
	done := 0
	const per = 256 << 10
	for src := 0; src < 8; src++ {
		dst := (src + 1) % 8
		r.stack.Send(&Message{
			Src: topology.HostID(src), Dst: topology.HostID(dst), Bytes: per,
			OnDelivered: func(sim.Time, *Message) { done++ },
		})
	}
	r.eng.Run()
	if done != 8 {
		t.Fatalf("delivered %d/8 concurrent messages", done)
	}
}

func TestSendValidation(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 10, Config{})
	for _, m := range []*Message{
		{Src: 0, Dst: 1, Bytes: 0},
		{Src: 0, Dst: 0, Bytes: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%+v) did not panic", m)
				}
			}()
			r.stack.Send(m)
		}()
	}
}

func TestTaggedPacketsCarryTag(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 11, Config{})
	tag := fabric.FlowTag{Sentinel: true, Job: 3, Iter: 17}
	dstLeaf := r.topo.LeafOf(1)
	taggedData, untaggedAcksSeen := 0, 0
	r.net.SetIngressHook(dstLeaf, func(_ sim.Time, port int, p *fabric.Packet) {
		if p.Kind == fabric.Data && p.Tag == tag {
			taggedData++
		}
		if p.Kind == fabric.Ack && p.Tag.Sentinel {
			untaggedAcksSeen++
		}
	})
	r.stack.Send(&Message{Src: 0, Dst: 1, Bytes: 64 << 10, Tag: tag})
	r.eng.Run()
	if taggedData == 0 {
		t.Fatal("no tagged data packets observed")
	}
	if untaggedAcksSeen != 0 {
		t.Fatal("ACKs must not carry the collective sentinel")
	}
}

// Property: delivery succeeds for arbitrary message sizes and drop
// rates below 50%, and the receiver sees every payload byte exactly
// once (dedup works for any loss pattern).
func TestDeliveryUnderLossProperty(t *testing.T) {
	f := func(seed uint64, sizeKB uint16, dropPct uint8) bool {
		size := (int(sizeKB)%512 + 1) * 1024
		rate := float64(dropPct%50) / 100
		topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 4})
		if err != nil {
			return false
		}
		eng := sim.NewEngine()
		net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: seed})
		stack := NewStack(net, Config{})
		link := topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0]
		net.InjectFault(link, net.DirToward(link, topo.LeafOf(1)), fault.NewBernoulliDrop(rate, sim.NewRNG(seed, "p")))
		delivered := false
		stack.Send(&Message{Src: 0, Dst: 1, Bytes: size,
			OnDelivered: func(sim.Time, *Message) { delivered = true }})
		eng.Run()
		return delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// White-box test of the per-message RTO timer: one engine timer
// follows the earliest outstanding deadline, fires expiries in
// deadline order, survives lazy (ACK-side) deadline clearing with a
// spurious fire, and disarms once nothing is outstanding.
func TestEarliestDeadlineTimerMechanics(t *testing.T) {
	r := newRig(t, topology.FatTreeConfig{Leaves: 4, Spines: 2}, 9, Config{})
	s := r.stack
	m := &Message{Src: 0, Dst: 3, Bytes: 3 * 4096, packets: 3, id: 77}
	st := &sendState{
		s: s, eng: s.eng, msg: m,
		acked:    make([]bool, 3),
		deadline: []sim.Time{300, 100, 200},
		retries:  make([]int, 3),
		wireOut:  make([]sim.Time, 3),
	}

	// Arming at a later deadline first, then an earlier one, must
	// leave the timer at the minimum.
	st.armAt(st.deadline[0])
	st.armAt(st.deadline[2])
	st.armAt(st.deadline[1])
	if !st.timer.Valid() || st.timerAt != 100 {
		t.Fatalf("timer armed at %v, want earliest deadline 100", st.timerAt)
	}
	// Arming at a later instant than the current one is a no-op.
	st.armAt(250)
	if st.timerAt != 100 {
		t.Fatalf("later armAt moved the timer to %v", st.timerAt)
	}

	var retxOrder []int
	DebugRetx = func(_ sim.Time, msg uint64, seq, _ int) {
		if msg == 77 {
			retxOrder = append(retxOrder, seq)
		}
	}
	defer func() { DebugRetx = nil }()

	// Lazily "ack" seq 2 the way onAck does: clear the deadline, leave
	// the timer alone. The fire at 200 becomes spurious.
	st.acked[2] = true
	st.deadline[2] = sim.Never

	r.eng.Run()
	// Expiries must fire in deadline order (seq 1 at 100, seq 0 at
	// 300) and the acked seq 2 must never retransmit.
	if len(retxOrder) != 2 || retxOrder[0] != 1 || retxOrder[1] != 0 {
		t.Fatalf("retransmit order %v, want [1 0]", retxOrder)
	}
	if st.retries[2] != 0 {
		t.Fatal("lazily acked sequence was retransmitted")
	}
	// All deadlines consumed: the timer must be disarmed (retransmits
	// of an unregistered message never re-arm via onWireOut).
	if st.timer.Valid() {
		t.Fatal("timer still armed with no outstanding deadlines")
	}
	if got := s.Stats().Retransmits; got != 2 {
		t.Fatalf("Retransmits = %d, want 2", got)
	}
}
