package transport

import (
	"math"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// DCQCNConfig parameterizes the per-pair DCQCN-style rate limiter (the
// reaction point of the ECN loop: switches mark CE above a queue
// threshold, receivers echo the mark on ACKs, and the sender cuts its
// injection rate). Zero value = disabled: Send pushes every packet into
// the NIC queue immediately, byte-identical to pre-DCQCN builds.
type DCQCNConfig struct {
	Enabled bool
	// G is the alpha EWMA gain (default 1/16).
	G float64
	// CutInterval is the minimum spacing between rate cuts — one cut
	// per congestion notification window, however many marked ACKs
	// arrive inside it (default 50 µs).
	CutInterval sim.Duration
	// AlphaDecay is the alpha-decay period while no marks arrive
	// (default 55 µs).
	AlphaDecay sim.Duration
	// IncPeriod is the rate-increase period (default 25 µs).
	IncPeriod sim.Duration
	// FastRecovery is the number of increase rounds that halve toward
	// the pre-cut target before additive increase starts (default 5).
	FastRecovery int
	// AIRateBPS is the additive-increase step in bits/s (default
	// line rate / 50); hyper increase (5x the step) starts after
	// 3x FastRecovery uncut rounds.
	AIRateBPS float64
	// MinRateBPS floors the paced rate (default line rate / 1000).
	MinRateBPS float64
}

func (c *DCQCNConfig) setDefaults(lineBPS float64) {
	if !c.Enabled {
		return
	}
	if c.G == 0 {
		c.G = 1.0 / 16
	}
	if c.CutInterval == 0 {
		c.CutInterval = 50 * sim.Microsecond
	}
	if c.AlphaDecay == 0 {
		c.AlphaDecay = 55 * sim.Microsecond
	}
	if c.IncPeriod == 0 {
		c.IncPeriod = 25 * sim.Microsecond
	}
	if c.FastRecovery == 0 {
		c.FastRecovery = 5
	}
	if c.AIRateBPS == 0 {
		c.AIRateBPS = lineBPS / 50
	}
	if c.MinRateBPS == 0 {
		c.MinRateBPS = lineBPS / 1000
	}
}

// pacedRef is one queued first transmission awaiting its pacing slot.
// Retransmissions bypass the pacer entirely: RTO recovery must not sit
// behind a throttled queue, and DCQCN reacts to marks, not losses.
type pacedRef struct {
	st  *sendState
	seq int
}

// dcqcnState is one (src, dst) pair's rate limiter. It lives entirely
// on the source host's engine — Send, the pacer timer, and the ACK path
// all execute there — so sharded runs need no synchronization and stay
// bit-identical across worker counts. Alpha decay and rate recovery are
// computed lazily from elapsed time at each pacer or ACK event instead
// of standing timers, so an idle pair costs nothing.
type dcqcnState struct {
	s        *Stack
	eng      *sim.Engine
	src      topology.HostID
	line     float64 // source NIC line rate, bits/s
	rc, rt    float64 // current / target rate, bits/s
	alpha     float64
	lastCut   sim.Time // spacing clock: at most one cut per CutInterval
	lastAlpha sim.Time // decay clock: alpha halves-toward-0 while unmarked
	lastInc   sim.Time
	incStage  int

	queue      []pacedRef
	head       int
	timerArmed bool
}

// Fire releases the next paced packet.
func (d *dcqcnState) Fire(now sim.Time) {
	d.timerArmed = false
	d.s.pacerKick(d, now)
}

// advance applies the alpha decay and rate increases accrued since the
// pair's last event. Fully recovered pairs snap their clocks forward so
// long idle gaps never loop.
func (d *dcqcnState) advance(now sim.Time) {
	cfg := &d.s.cfg.DCQCN
	if elapsed := now.Sub(d.lastAlpha); d.alpha > 0 && elapsed >= cfg.AlphaDecay {
		d.alpha *= math.Pow(1-cfg.G, float64(elapsed/cfg.AlphaDecay))
		if d.alpha < 1e-9 {
			d.alpha = 0
		}
		d.lastAlpha = now.Add(-(elapsed % cfg.AlphaDecay))
	}
	if d.rc >= d.line {
		d.rc, d.rt = d.line, d.line
		d.lastInc = now
		return
	}
	for now.Sub(d.lastInc) >= cfg.IncPeriod {
		d.lastInc = d.lastInc.Add(cfg.IncPeriod)
		d.incStage++
		switch {
		case d.incStage <= cfg.FastRecovery:
			// Fast recovery: halve toward the pre-cut target.
		case d.incStage > 3*cfg.FastRecovery:
			d.rt += 5 * cfg.AIRateBPS // hyper increase
		default:
			d.rt += cfg.AIRateBPS // additive increase
		}
		if d.rt > d.line {
			d.rt = d.line
		}
		d.rc = (d.rt + d.rc) / 2
		if d.rc >= d.line {
			d.rc, d.rt = d.line, d.line
			d.lastInc = now
			return
		}
	}
}

// cut reacts to one congestion notification (a CE-echoed ACK): EWMA the
// congestion estimate up and multiplicatively cut the rate, at most
// once per CutInterval.
func (d *dcqcnState) cut(now sim.Time) {
	cfg := &d.s.cfg.DCQCN
	d.advance(now)
	if d.lastCut != 0 && now.Sub(d.lastCut) < cfg.CutInterval {
		return
	}
	d.alpha = (1-cfg.G)*d.alpha + cfg.G
	d.rt = d.rc
	d.rc *= 1 - d.alpha/2
	if d.rc < cfg.MinRateBPS {
		d.rc = cfg.MinRateBPS
	}
	d.incStage = 0
	d.lastCut = now
	d.lastAlpha = now
	d.lastInc = now
	d.s.statsAt(d.src).RateCuts++
}

// pacer returns (creating on first use) the rate limiter of a pair.
func (s *Stack) pacer(src, dst topology.HostID) *dcqcnState {
	ix := int(src)*s.nHosts + int(dst)
	d := s.pacers[ix]
	if d == nil {
		line := float64(s.net.Topology().Link(s.net.Topology().Host(src).Link).RateBPS)
		d = &dcqcnState{
			s: s, eng: s.net.EngineOf(src), src: src,
			line: line, rc: line, rt: line,
		}
		s.pacers[ix] = d
	}
	return d
}

// pacerEnqueue queues every first transmission of a message behind the
// pair's pacer and starts it if idle.
func (s *Stack) pacerEnqueue(st *sendState) {
	d := s.pacer(st.msg.Src, st.msg.Dst)
	for seq := 0; seq < st.msg.packets; seq++ {
		d.queue = append(d.queue, pacedRef{st: st, seq: seq})
	}
	if !d.timerArmed {
		s.pacerKick(d, d.eng.Now())
	}
}

// pacerKick releases the next sendable packet and re-arms the pacer one
// serialization-at-current-rate gap later. At line rate the gap equals
// the NIC's own serialization time, so an unthrottled pair flows at
// full speed; after a cut the gap stretches proportionally.
func (s *Stack) pacerKick(d *dcqcnState, now sim.Time) {
	for d.head < len(d.queue) {
		ref := d.queue[d.head]
		d.head++
		if ref.st.finished || ref.st.acked[ref.seq] {
			continue
		}
		d.advance(now)
		size := s.payloadBytes(ref.st.msg, ref.seq) + s.cfg.HeaderBytes
		s.sendData(ref.st, ref.seq, false)
		d.timerArmed = true
		d.eng.AfterTimer(sim.SerializationDelay(size, int64(d.rc)), d)
		return
	}
	d.queue = d.queue[:0]
	d.head = 0
}

// onCongestionNotification is the ACK-path hook: a CE-echoed ACK cuts
// the pair's rate. Runs on the source host's engine.
func (s *Stack) onCongestionNotification(now sim.Time, p *fabric.Packet) {
	// The ACK arrived at the original sender: p.Dst is the message
	// source, p.Src its destination.
	s.pacer(p.Dst, p.Src).cut(now)
}

// PairRateBPS reports a pair's current paced rate in bits/s (the line
// rate when DCQCN is disabled or the pair has never sent). Test and
// experiment hook.
func (s *Stack) PairRateBPS(src, dst topology.HostID) float64 {
	if s.pacers == nil {
		return float64(s.net.Topology().Link(s.net.Topology().Host(src).Link).RateBPS)
	}
	d := s.pacer(src, dst)
	d.advance(s.net.EngineOf(src).Now())
	return d.rc
}
